#!/bin/sh
# Repo health check: full build, test suite, and a CLI smoke test of the
# instrumented evaluation path.  Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @default @runtest =="
dune build @default @runtest

echo
echo "== CLI smoke test: EXPLAIN ANALYZE on a TPC-H EXISTS subquery =="
out=$(dune exec bin/olap_cli.exe -- run \
  --workload tpc --scale 0.002 --engine gmdj-opt --explain-analyze --limit 1 \
  "SELECT c.c_custkey FROM Customer c WHERE EXISTS (SELECT * FROM Orders o WHERE o.o_custkey = c.c_custkey AND o.o_orderpriority = '1-URGENT')")
echo "$out"

# The annotated tree must show the coalesced GMDJ doing exactly one
# detail scan.
echo "$out" | grep -q "detail-scans=1" || {
  echo "FAIL: expected detail-scans=1 in the EXPLAIN ANALYZE output" >&2
  exit 1
}
echo "$out" | grep -q "rows-out=" || {
  echo "FAIL: expected rows-out annotations in the EXPLAIN ANALYZE output" >&2
  exit 1
}

echo
echo "check.sh: OK"
