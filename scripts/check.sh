#!/bin/sh
# Repo health check: full build, test suite, and a CLI smoke test of the
# instrumented evaluation path.  Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all (warnings are errors) =="
# @all also builds targets no test depends on; any compiler output
# (warnings included) fails the check.
build_out=$(dune build @all 2>&1) || {
  echo "$build_out"
  echo "FAIL: dune build @all failed" >&2
  exit 1
}
if [ -n "$build_out" ]; then
  echo "$build_out"
  echo "FAIL: dune build @all produced warnings" >&2
  exit 1
fi

echo
echo "== dune build @default @runtest =="
dune build @default @runtest

echo
echo "== CLI smoke test: EXPLAIN ANALYZE on a TPC-H EXISTS subquery =="
out=$(dune exec bin/olap_cli.exe -- run \
  --workload tpc --scale 0.002 --engine gmdj-opt --explain-analyze --limit 1 \
  "SELECT c.c_custkey FROM Customer c WHERE EXISTS (SELECT * FROM Orders o WHERE o.o_custkey = c.c_custkey AND o.o_orderpriority = '1-URGENT')")
echo "$out"

# The annotated tree must show the coalesced GMDJ doing exactly one
# detail scan.
echo "$out" | grep -q "detail-scans=1" || {
  echo "FAIL: expected detail-scans=1 in the EXPLAIN ANALYZE output" >&2
  exit 1
}
echo "$out" | grep -q "rows-out=" || {
  echo "FAIL: expected rows-out annotations in the EXPLAIN ANALYZE output" >&2
  exit 1
}

echo
echo "== CLI smoke test: batch with cross-query sharing and a warm cache =="
batch_sql=$(mktemp /tmp/check_batch_XXXXXX.sql)
trap 'rm -f "$batch_sql"' EXIT
cat > "$batch_sql" <<'SQL'
SELECT u.UserName FROM User u
WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress);
SELECT u.UserName FROM User u
WHERE NOT EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress
                  AND f.NumBytes > u.Quota);
SELECT u.UserName FROM User u
WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress)
SQL
bout=$(dune exec bin/olap_cli.exe -- batch "$batch_sql" --repeat 2)
echo "$bout"

# Round 1 must share the three same-detail GMDJs into fewer scans than
# the naive one-scan-per-query baseline; round 2 must be all cache hits.
echo "$bout" | grep -q "detail scans: 1 (naive baseline: 3)" || {
  echo "FAIL: expected the cold batch to share 3 queries into 1 detail scan" >&2
  exit 1
}
echo "$bout" | grep -q "cache: 3 hits, 0 misses" || {
  echo "FAIL: expected the second round to be served entirely from cache" >&2
  exit 1
}

echo
echo "== static analysis: every zoo template must be diagnostic-error-free =="
# analyze exits non-zero if any template yields an error-severity
# diagnostic (the optimizer self-check is live during the run).
dune exec bin/olap_cli.exe -- analyze --zoo all

echo
echo "== static analysis: --json output stays machine-readable =="
analyze_json=$(mktemp /tmp/check_analyze_XXXXXX.json)
dune exec bin/olap_cli.exe -- analyze --zoo all --json > "$analyze_json"
ANALYZE_JSON="$analyze_json" python3 - <<'PY'
import json, os, sys
with open(os.environ["ANALYZE_JSON"]) as f:
    reports = json.load(f)
if len(reports) < 20:
    sys.exit(f"FAIL: expected a report per zoo template, got {len(reports)}")
for r in reports:
    for key in ("label", "errors", "warnings", "diagnostics"):
        if key not in r:
            sys.exit(f"FAIL: analyze --json report missing key {key!r}")
    if r["errors"] != 0:
        sys.exit(f"FAIL: template {r['label']!r} has error diagnostics")
print(f"analyze --json: {len(reports)} reports, all error-free")
PY
rm -f "$analyze_json"

echo
echo "== static analysis: --certify proves finite memory bounds for the zoo =="
# The certificate passes (interval cardinality analysis, parallel-merge
# lawfulness, delta-maintainability effects) must certify every zoo
# template with zero error-severity diagnostics — analyze exits
# non-zero otherwise — and every certified memory bound must be finite.
certify_json=$(mktemp /tmp/check_certify_XXXXXX.json)
dune exec bin/olap_cli.exe -- analyze --certify --zoo all --json > "$certify_json"
CERTIFY_JSON="$certify_json" python3 - <<'PY'
import json, os, sys
with open(os.environ["CERTIFY_JSON"]) as f:
    reports = json.load(f)
if len(reports) < 20:
    sys.exit(f"FAIL: expected a certificate per zoo template, got {len(reports)}")
for r in reports:
    if r["certified_errors"] != 0:
        sys.exit(f"FAIL: template {r['label']!r} fails certification")
    cert = r.get("certificate")
    if not cert:
        sys.exit(f"FAIL: template {r['label']!r} has no certificate")
    if not isinstance(cert["bound"], (int, float)):
        sys.exit(f"FAIL: template {r['label']!r} certified bound is not finite "
                 f"({cert['bound']!r})")
print(f"analyze --certify: {len(reports)} templates, all certified with "
      f"finite bounds (max {max(c['certificate']['bound'] for c in reports):.0f} rows)")
PY
rm -f "$certify_json"

echo
echo "== static analysis: certified output is byte-stable under --domains =="
# The per-worker Diag.Scratch buffers merge through the total order, so
# the certified report may not depend on worker scheduling.
c1=$(mktemp /tmp/check_certify1_XXXXXX.txt)
c4=$(mktemp /tmp/check_certify4_XXXXXX.txt)
dune exec bin/olap_cli.exe -- analyze --certify --zoo all --domains 1 > "$c1"
dune exec bin/olap_cli.exe -- analyze --certify --zoo all --domains 4 > "$c4"
cmp -s "$c1" "$c4" || {
  echo "FAIL: analyze --certify output differs between --domains 1 and 4" >&2
  diff "$c1" "$c4" | head -20 >&2
  exit 1
}
rm -f "$c1" "$c4"
echo "analyze --certify: --domains 1 and --domains 4 outputs identical"

echo
echo "== bench smoke test: mqo target keeps BENCH_mqo.json well-formed =="
dune exec bench/main.exe -- mqo > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_mqo.json") as f:
    doc = json.load(f)
for key in ("benchmark", "solo", "cold", "warm", "verified"):
    if key not in doc:
        sys.exit(f"FAIL: BENCH_mqo.json missing key {key!r}")
if doc["verified"] is not True:
    sys.exit("FAIL: BENCH_mqo.json reports verified != true")
if not doc["cold"]["detail_scans"] < doc["solo"]["detail_scans"]:
    sys.exit("FAIL: shared batch did not reduce detail scans")
print("BENCH_mqo.json: well-formed, verified, scans %d -> %d"
      % (doc["solo"]["detail_scans"], doc["cold"]["detail_scans"]))
PY

echo
echo "== bench smoke test: exec target gates streaming-executor regressions =="
# The exec benchmark self-verifies (streamed == in-memory results, peak
# independent of |detail|); on top of that, gate its memory and I/O
# numbers against the committed baseline: >10% worse on peak
# materialized rows or page reads fails the check.
dune exec bench/main.exe -- exec > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_exec.json") as f:
    fresh = json.load(f)
with open("bench/BENCH_exec.baseline.json") as f:
    base = json.load(f)
if fresh["verified"] is not True:
    sys.exit("FAIL: BENCH_exec.json reports verified != true")
for key in ("peak_rows", "peak_rows_2x", "chained_page_reads", "coalesced_page_reads"):
    if fresh[key] > base[key] * 1.1:
        sys.exit(f"FAIL: {key} regressed >10%: {base[key]} -> {fresh[key]}")
print("BENCH_exec.json: verified, peak %d rows (2x detail: %d), page reads %d chained / %d coalesced"
      % (fresh["peak_rows"], fresh["peak_rows_2x"],
         fresh["chained_page_reads"], fresh["coalesced_page_reads"]))
PY

echo
echo "== bench smoke test: par target gates parallel-executor regressions =="
# The par benchmark self-verifies (parallel and spilling results ==
# serial in-memory results) and self-gates the 10x-detail memory bound.
# On top of that: the 4-domain speedup must reach 2.5x — skipped, with a
# note, when the machine has fewer than 4 cores (the JSON records the
# core count; wall-clock scaling is physically impossible there) — and
# the spill numbers may not regress against the committed baseline.
dune exec bench/main.exe -- par > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_par.json") as f:
    fresh = json.load(f)
with open("bench/BENCH_par.baseline.json") as f:
    base = json.load(f)
if fresh["verified"] is not True:
    sys.exit("FAIL: BENCH_par.json reports verified != true")
if fresh["cores"] >= 4:
    if fresh["speedup_4"] < 2.5:
        sys.exit(f"FAIL: 4-domain speedup {fresh['speedup_4']:.2f}x < 2.5x "
                 f"on a {fresh['cores']}-core machine")
    print(f"speedup: {fresh['speedup_4']:.2f}x at 4 domains ({fresh['cores']} cores)")
else:
    print(f"speedup gate skipped: only {fresh['cores']} core(s) recommended, "
          f"measured {fresh['speedup_4']:.2f}x at 4 domains")
if fresh["spilled_rows_10x"] == 0:
    sys.exit("FAIL: the 10x-detail run never spilled")
if fresh["peak_rows_10x"] > fresh["peak_rows_1x"] * 1.2:
    sys.exit(f"FAIL: spilling peak grew with the detail: "
             f"{fresh['peak_rows_1x']} -> {fresh['peak_rows_10x']} rows")
if fresh["peak_rows_10x"] > base["peak_rows_10x"] * 1.1:
    sys.exit(f"FAIL: 10x-detail peak regressed >10% vs baseline: "
             f"{base['peak_rows_10x']} -> {fresh['peak_rows_10x']} rows")
print("BENCH_par.json: verified, 10x-detail peak %d rows (1x: %d), %d rows spilled"
      % (fresh["peak_rows_10x"], fresh["peak_rows_1x"], fresh["spilled_rows_10x"]))
PY

echo
echo "== CLI smoke test: run --domains routes through the exchange =="
pout=$(dune exec bin/olap_cli.exe -- run --flows 30000 --users 300 --domains 4 \
  --engine gmdj-opt --metrics --limit 1 \
  "SELECT u.UserName FROM User u WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress)")
echo "$pout" | grep -E "exec\.domains|exchange\."
echo "$pout" | grep -Eq "exec.domains +4" || {
  echo "FAIL: expected exec.domains = 4 in --metrics after run --domains 4" >&2
  exit 1
}
echo "$pout" | grep -Eq "exchange.rows +[1-9][0-9]*" || {
  echo "FAIL: expected exchange.rows > 0 — the run never went through the exchange" >&2
  exit 1
}

echo
echo "== CLI smoke test: run --spill-budget pushes breaker state to disk =="
sout=$(dune exec bin/olap_cli.exe -- run --flows 20000 --users 300 --spill-budget 64 \
  --engine unnest --metrics --limit 1 \
  "SELECT u.UserName FROM User u WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress)")
echo "$sout" | grep -E "exec\.spill"
echo "$sout" | grep -Eq "exec.spilled_bytes +[1-9][0-9]*" || {
  echo "FAIL: expected exec.spilled_bytes > 0 in --metrics after run --spill-budget" >&2
  exit 1
}

echo
echo "== bench smoke test: serve target gates serving-layer regressions =="
# The serve benchmark self-verifies (warm server answers == solo
# evaluation, steady-state detail scans per query < 1); on top of that,
# gate against the committed baseline: >10% worse on steady-state p99
# (plus 5ms absolute slack for wall-clock jitter in the measured
# evaluation times) or on steady-state detail scans per query fails.
dune exec bench/main.exe -- serve > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_serve.json") as f:
    fresh = json.load(f)
with open("bench/BENCH_serve.baseline.json") as f:
    base = json.load(f)
if fresh["verified"] is not True:
    sys.exit("FAIL: BENCH_serve.json reports verified != true")
if fresh["steady_scans_per_query_max"] >= 1.0:
    sys.exit("FAIL: steady-state detail scans per query >= 1 "
             f"({fresh['steady_scans_per_query_max']:.3f})")
base_rates = {r["rate"]: r for r in base["rates"]}
for r in fresh["rates"]:
    b = base_rates.get(r["rate"])
    if b is None:
        continue
    fs, bs = r["steady"], b["steady"]
    if fs["scans_per_query"] > bs["scans_per_query"] + 0.05:
        sys.exit(f"FAIL: steady scans/query regressed at rate {r['rate']:.0f}: "
                 f"{bs['scans_per_query']:.3f} -> {fs['scans_per_query']:.3f}")
    limit = bs["p99_ms"] * 1.1 + 5.0
    if fs["p99_ms"] > limit:
        sys.exit(f"FAIL: steady p99 regressed >10% at rate {r['rate']:.0f}: "
                 f"{bs['p99_ms']:.1f}ms -> {fs['p99_ms']:.1f}ms (limit {limit:.1f}ms)")
print("BENCH_serve.json: verified, steady scans/query %.3f, steady p99 %s"
      % (fresh["steady_scans_per_query_max"],
         ", ".join("%.1fms@%.0f/s" % (r["steady"]["p99_ms"], r["rate"])
                   for r in fresh["rates"])))
PY

echo
echo "== bench smoke test: ingest target gates delta-maintenance regressions =="
# The ingest benchmark self-gates (delta-maintained results == full
# recompute everywhere, every append delta-maintained, wall-clock
# speedup >= 5x at a 1% append ratio); on top of that, gate the
# staleness sweep against the committed baseline: any stale read fails
# outright, and per-cell p99 may not regress >25% (plus 100ms absolute
# slack — the sweep runs the server saturated, where queueing amplifies
# wall-clock jitter in the measured evaluation times).
dune exec bench/main.exe -- ingest > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_ingest.json") as f:
    fresh = json.load(f)
with open("bench/BENCH_ingest.baseline.json") as f:
    base = json.load(f)
if fresh["verified"] is not True:
    sys.exit("FAIL: BENCH_ingest.json reports verified != true")
h = fresh["headline"]
if h["all_delta"] is not True:
    sys.exit("FAIL: headline appends fell back to recompute")
if h["speedup"] < 5.0:
    sys.exit(f"FAIL: delta maintenance speedup {h['speedup']:.1f}x < 5x at "
             f"append ratio {h['append_ratio']:.0%}")
base_cells = {(c["policy"], c["ingest_multiplier"]): c
              for c in base["staleness"]["cells"]}
for c in fresh["staleness"]["cells"]:
    if c["fresh"] is not True:
        sys.exit(f"FAIL: stale read under policy {c['policy']} at "
                 f"ingest multiplier {c['ingest_multiplier']}")
    b = base_cells.get((c["policy"], c["ingest_multiplier"]))
    if b is None:
        continue
    limit = b["p99_ms"] * 1.25 + 100.0
    if c["p99_ms"] > limit:
        sys.exit(f"FAIL: p99 regressed under {c['policy']} x{c['ingest_multiplier']}: "
                 f"{b['p99_ms']:.1f}ms -> {c['p99_ms']:.1f}ms (limit {limit:.1f}ms)")
print("BENCH_ingest.json: verified, delta speedup %.1fx wall / %.1fx rows, "
      "%d staleness cells all fresh"
      % (h["speedup"], h["rows_speedup"], len(fresh["staleness"]["cells"])))
PY

echo
echo "== CLI smoke test: serve batches piped statements through one scan =="
serve_sql=$(mktemp /tmp/check_serve_XXXXXX.sql)
cat > "$serve_sql" <<'SQL'
SELECT u.UserName FROM User u
WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress);
SELECT u.UserName FROM User u
WHERE NOT EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress
                  AND f.NumBytes > u.Quota);
SELECT u.UserName FROM User u
WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = u.IPAddress)
SQL
sout=$(dune exec bin/olap_cli.exe -- serve --batch-window 0.05 < "$serve_sql")
rm -f "$serve_sql"
echo "$sout"
echo "$sout" | grep -q "batch of 3: 1 detail scans (naive 3)" || {
  echo "FAIL: expected serve to share 3 piped queries into 1 detail scan" >&2
  exit 1
}
echo "$sout" | grep -q "served 3 queries in 1 batches" || {
  echo "FAIL: expected the serve summary to report 3 queries in 1 batch" >&2
  exit 1
}

echo
echo "== CLI smoke test: drive replays deterministic traffic =="
dout=$(dune exec bin/olap_cli.exe -- drive --queries 60 --rate 400 --outer 24 --inner 1000)
echo "$dout"
echo "$dout" | grep -q "latency p50" || {
  echo "FAIL: expected a latency summary line from drive" >&2
  exit 1
}

echo
echo "== CLI smoke test: ingest maintains cached results across appends =="
iout=$(dune exec bin/olap_cli.exe -- ingest --flows 4000 --users 300 --batches 3 --batch-rows 200)
echo "$iout"
echo "$iout" | grep -q "ingested 600 rows in 3 batches" || {
  echo "FAIL: expected the ingest summary to count 3 batches of 200 rows" >&2
  exit 1
}
echo "$iout" | grep -Eq "maintain: [1-9][0-9]* delta" || {
  echo "FAIL: expected at least one append to be delta-maintained" >&2
  exit 1
}
# Every post-append query must be answered from the repaired entry.
if [ "$(echo "$iout" | grep -c "query: .*cache hit")" != 3 ]; then
  echo "FAIL: expected all 3 post-append queries to hit the repaired cache" >&2
  exit 1
fi

echo
echo "== CLI smoke test: drive interleaves ingest with live traffic =="
dout=$(dune exec bin/olap_cli.exe -- drive --queries 60 --rate 200 --outer 24 --inner 1000 \
  --ingest-rate 20 --ingest-batch 100 --staleness on-read)
echo "$dout"
echo "$dout" | grep -Eq "ingest: [1-9][0-9]* batches" || {
  echo "FAIL: expected interleaved append batches in the drive output" >&2
  exit 1
}
echo "$dout" | grep -q "completed 60" || {
  echo "FAIL: expected all 60 queries to complete under interleaved ingest" >&2
  exit 1
}
echo "$dout" | grep -Eq "repaired [1-9][0-9]*" || {
  echo "FAIL: expected lazy maintenance to repair cached results" >&2
  exit 1
}

echo
echo "== bench smoke test: codec target gates decode-specialization regressions =="
# The codec benchmark self-verifies (both decode modes reconstruct the
# source relation exactly); on top of that, the schema-specialized
# decode must beat the generic tag-dispatch codec by the 1.3x
# acceptance floor and stay within 30% of the committed baseline.
dune exec bench/main.exe -- codec > /dev/null
python3 - <<'PY'
import json, sys
with open("BENCH_codec.json") as f:
    fresh = json.load(f)
with open("bench/BENCH_codec.baseline.json") as f:
    base = json.load(f)
if fresh["verified"] is not True:
    sys.exit("FAIL: BENCH_codec.json reports verified != true")
if fresh["speedup"] < 1.3:
    sys.exit(f"FAIL: specialized decode speedup {fresh['speedup']:.2f}x < 1.3x floor")
if fresh["speedup"] < base["speedup"] * 0.7:
    sys.exit(f"FAIL: speedup regressed >30% vs baseline: "
             f"{base['speedup']:.2f}x -> {fresh['speedup']:.2f}x")
print("BENCH_codec.json: verified, specialized decode %.2fx vs generic (baseline %.2fx)"
      % (fresh["speedup"], base["speedup"]))
PY

echo
echo "== CLI smoke test: schema-gen output compiles and round-trips its catalog =="
# Emit typed modules for the netflow catalog into a scratch dune
# directory, compile them with warnings-as-errors, and run a round-trip
# over every generated table: of_tuple/to_tuple must be the identity on
# each stored row.
smoke_dir="scripts/schema_gen_smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
trap 'rm -f "$batch_sql"; rm -rf "$smoke_dir"' EXIT
dune exec bin/olap_cli.exe -- schema-gen --flows 500 --users 50 --out "$smoke_dir/netflow_gen.ml"
cat > "$smoke_dir/dune" <<'DUNE'
(executable
 (name smoke)
 (libraries subql_relational subql_workload subql_typed))
DUNE
cat > "$smoke_dir/smoke.ml" <<'ML'
(* Smoke for freshly emitted [schema-gen] modules: rebuild the catalog
   the modules were generated from and push every stored row through
   the generated of_tuple/to_tuple pair. *)
open Subql_relational

let () =
  let catalog =
    Subql_workload.Netflow.generate
      {
        Subql_workload.Netflow.default_config with
        Subql_workload.Netflow.n_flows = 500;
        n_users = 50;
        seed = 42L;
      }
  in
  let check name schema of_to =
    let rel = Catalog.find catalog name in
    assert (Schema.equal schema (Relation.schema rel));
    Relation.iter (fun t -> assert (Tuple.equal t (of_to t))) rel
  in
  check "Flow" Netflow_gen.Flow.schema (fun t -> Netflow_gen.Flow.(to_tuple (of_tuple t)));
  check "Hours" Netflow_gen.Hours.schema (fun t -> Netflow_gen.Hours.(to_tuple (of_tuple t)));
  check "User" Netflow_gen.User.schema (fun t -> Netflow_gen.User.(to_tuple (of_tuple t)));
  print_endline "schema-gen smoke: 3 generated modules round-trip their catalog"
ML
dune build "$smoke_dir/smoke.exe"
dune exec "$smoke_dir/smoke.exe"
rm -rf "$smoke_dir"

echo
echo "check.sh: OK"
