(* Query fuzzer: random nested queries over random databases, checked
   across every engine.  This goes beyond the fixed zoo: subquery kinds,
   nesting depth, predicate structure, correlation targets (including
   non-neighboring references) and comparison operators are all drawn at
   random. *)

open Subql_relational
open Subql_nested
module N = Nested_ast
module G = QCheck2.Gen

let ( let* ) = G.bind

let attr = Expr.attr

(* Tables available to the fuzzer and their integer columns. *)
let inner_tables = [ ("I", [ "k"; "y" ]); ("J", [ "k"; "y" ]) ]

type scope_entry = { alias : string; cols : string list }

let gen_cmp = G.oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

(* A scalar expression over the scope: mostly local references, sometimes
   an enclosing alias (possibly non-neighboring), sometimes a constant. *)
let gen_scalar (scope : scope_entry list) : Expr.t G.t =
  let ref_of entry = G.map (fun col -> attr ~rel:entry.alias col) (G.oneofl entry.cols) in
  let rev = List.rev scope in
  let local = List.hd rev in
  let outers = List.tl rev in
  G.frequency
    ((6, ref_of local)
    :: (2, G.map (fun i -> Expr.int i) (G.int_range (-3) 6))
    :: List.map (fun entry -> (2, ref_of entry)) outers)

let gen_atom scope =
  let* op = gen_cmp in
  let* a = gen_scalar scope in
  let* b = gen_scalar scope in
  G.return (N.atom (Expr.cmp op a b))

(* [gen_pred ~depth ~path scope] builds a predicate whose subqueries may
   nest down to [depth]; [path] keeps generated aliases unique. *)
let rec gen_pred ~depth ~path (scope : scope_entry list) : N.pred G.t =
  let atom = gen_atom scope in
  if depth = 0 then atom
  else
    G.frequency
      [
        (3, atom);
        (4, gen_sub ~depth ~path scope);
        ( 2,
          let* a = gen_pred ~depth:(depth - 1) ~path:(path ^ "a") scope in
          let* b = gen_pred ~depth:(depth - 1) ~path:(path ^ "b") scope in
          let* which = G.bool in
          G.return (if which then N.pand a b else N.por a b) );
        ( 1,
          let* p = gen_pred ~depth:(depth - 1) ~path:(path ^ "n") scope in
          G.return (N.pnot p) );
      ]

and gen_sub ~depth ~path scope : N.pred G.t =
  let* table, cols = G.oneofl inner_tables in
  let alias = Printf.sprintf "s%s" path in
  let child_scope = scope @ [ { alias; cols } ] in
  let* where =
    if depth <= 1 then gen_atom child_scope
    else gen_pred ~depth:(depth - 1) ~path:(path ^ "w") child_scope
  in
  (* Bias towards a correlated conjunct so subqueries are rarely
     vacuous. *)
  let* correlate = G.frequencyl [ (4, true); (1, false) ] in
  let* where =
    if not correlate then G.return where
    else
      let* outer_entry = G.oneofl scope in
      let* outer_col = G.oneofl outer_entry.cols in
      let* local_col = G.oneofl cols in
      G.return
        (N.pand
           (N.atom
              (Expr.eq (attr ~rel:alias local_col) (attr ~rel:outer_entry.alias outer_col)))
           where)
  in
  let* lhs = gen_scalar scope in
  let* col = G.oneofl cols in
  let source = N.table table in
  let* kind =
    G.frequencyl
      [
        (3, `Exists);
        (2, `Not_exists);
        (2, `Some_);
        (2, `All);
        (1, `In);
        (1, `Not_in);
        (1, `Scalar);
        (2, `Agg);
      ]
  in
  match kind with
  | `Exists -> G.return (N.exists ~where source alias)
  | `Not_exists -> G.return (N.not_exists ~where source alias)
  | `Some_ ->
    let* op = gen_cmp in
    G.return (N.some_ lhs op ~where source alias ~col)
  | `All ->
    let* op = gen_cmp in
    G.return (N.all_ lhs op ~where source alias ~col)
  | `In -> G.return (N.in_ lhs ~where source alias ~col)
  | `Not_in -> G.return (N.not_in lhs ~where source alias ~col)
  | `Scalar ->
    let* op = gen_cmp in
    G.return (N.scalar_cmp lhs op ~where source alias ~col)
  | `Agg ->
    let* op = gen_cmp in
    let* func =
      G.oneofl
        [
          Aggregate.Count_star;
          Aggregate.Count (attr ~rel:alias col);
          Aggregate.Sum (attr ~rel:alias col);
          Aggregate.Min (attr ~rel:alias col);
          Aggregate.Max (attr ~rel:alias col);
          Aggregate.Avg (attr ~rel:alias col);
        ]
    in
    G.return (N.agg_cmp lhs op func ~where source alias)

let gen_query : N.query G.t =
  let* depth = G.int_range 1 3 in
  let* multi_from = G.frequencyl [ (3, false); (1, true) ] in
  let base, alias, scope =
    if multi_from then
      ( N.Bproduct (N.Balias ("o1", N.table "O"), N.Balias ("o2", N.table "I")),
        "",
        [ { alias = "o1"; cols = [ "k"; "x" ] }; { alias = "o2"; cols = [ "k"; "y" ] } ] )
    else (N.table "O", "o", [ { alias = "o"; cols = [ "k"; "x" ] } ])
  in
  let* where = gen_pred ~depth ~path:"0" scope in
  G.return (N.query ~base ~alias where)

let gen_case = G.pair gen_query Query_zoo.db_gen

(* The agreement property across every engine.  The naive evaluator is
   the executable specification. *)
let engines_agree (query, db) =
  let catalog = Query_zoo.mk_catalog db in
  let reference = Naive_eval.eval ~mode:Naive_eval.Plain catalog query in
  let check name result =
    if Relation.equal_as_multiset reference result then true
    else begin
      Format.eprintf "@.fuzz disagreement (%s) on:@.%a@." name N.pp_query query;
      false
    end
  in
  check "naive-smart" (Naive_eval.eval ~mode:Naive_eval.Smart catalog query)
  && check "gmdj" (Subql.Eval.eval catalog (Subql.Transform.to_algebra query))
  && check "gmdj-scan"
       (Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
          (Subql.Transform.to_algebra query))
  && check "gmdj-opt"
       (Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra query)))
  && check "gmdj-exec"
       ((* Streamed in small anonymous chunks: [Chunk.Source.map] drops the
           whole-relation origin, so every operator takes its genuinely
           chunked path instead of the zero-copy shortcut. *)
        let sources table =
          Catalog.find_opt catalog table
          |> Option.map (fun rel ->
                 Chunk.Source.map Fun.id (Chunk.Source.of_relation ~chunk_rows:3 rel))
        in
        fst
          (Subql.Eval.eval_exec ~sources catalog
             (Subql.Optimize.optimize (Subql.Transform.to_algebra query))))
  && check "unnest-joins"
       (Subql.Eval.eval catalog (Subql_unnest.Unnest.via_joins catalog query))
  && (match Subql_unnest.Unnest.via_semijoins catalog query with
     | plan -> check "unnest-semijoins" (Subql.Eval.eval catalog plan)
     | exception Subql_unnest.Unnest.Not_applicable _ -> true)
  && check "planner" (Subql.Planner.run catalog query)

(* Parallel execution and spilling are pure execution modes: for any
   random query, database, degree of parallelism (1–4) and spill budget
   (including forced 1-row budgets that push everything through temp
   heap files), the answer is multiset-equal to the serial in-memory
   evaluation. *)
let gen_exec_mode =
  let* domains = G.int_range 1 4 in
  let* budget = G.oneofl [ None; Some 1; Some 3; Some 16; Some 256 ] in
  G.return (domains, budget)

let gen_parallel_case = G.triple gen_query Query_zoo.db_gen gen_exec_mode

let parallel_spill_agree (query, db, (domains, spill_budget_rows)) =
  let catalog = Query_zoo.mk_catalog db in
  let config = { Subql.Eval.default_config with Subql.Eval.domains; spill_budget_rows } in
  let check name plan =
    let reference = Subql.Eval.eval catalog plan in
    if Relation.equal_as_multiset reference (Subql.Eval.eval ~config catalog plan) then
      true
    else begin
      Format.eprintf
        "@.parallel/spill disagreement (%s, %d domains, budget %s) on:@.%a@." name
        domains
        (match spill_budget_rows with Some b -> string_of_int b | None -> "none")
        N.pp_query query;
      false
    end
  in
  check "gmdj-opt" (Subql.Optimize.optimize (Subql.Transform.to_algebra query))
  && check "unnest-joins" (Subql_unnest.Unnest.via_joins catalog query)

(* Render-parse round trip: the SQL renderer must produce text the
   parser accepts, with identical semantics. *)
let roundtrip (query, db) =
  match Subql_sql.Render.query_to_sql query with
  | exception Subql_sql.Render.Unrepresentable _ -> true
  | sql -> (
    match Subql_sql.Parser.parse sql with
    | exception Subql_sql.Parser.Parse_error (msg, off) ->
      Format.eprintf "@.roundtrip parse error at %d: %s@.SQL: %s@." off msg sql;
      false
    | stmt ->
      let catalog = Query_zoo.mk_catalog db in
      let a = Naive_eval.eval catalog query in
      let b = Naive_eval.eval catalog stmt.Subql_sql.Parser.query in
      if Relation.equal_as_multiset a b then true
      else begin
        Format.eprintf "@.roundtrip semantic drift on:@.%s@." sql;
        false
      end)

(* --- Fingerprint invariance properties ------------------------------ *)

(* Rewrite every fuzzer-generated subquery alias ([s<path>]) to a fresh
   name, consistently across binders and references.  The result is the
   same query up to alpha-renaming, so its fingerprint must not move. *)
let rename_alias a = if String.length a > 0 && a.[0] = 's' then "t" ^ a else a

let rename_expr e =
  Expr.map_attrs (fun (q, n) -> Expr.Attr (Option.map rename_alias q, n)) e

let rec rename_pred = function
  | N.Ptrue -> N.Ptrue
  | N.Atom e -> N.Atom (rename_expr e)
  | N.Pand (a, b) -> N.Pand (rename_pred a, rename_pred b)
  | N.Por (a, b) -> N.Por (rename_pred a, rename_pred b)
  | N.Pnot p -> N.Pnot (rename_pred p)
  | N.Sub s ->
    let kind =
      match s.N.kind with
      | N.Exists -> N.Exists
      | N.Not_exists -> N.Not_exists
      | N.Cmp_scalar (lhs, op, col) -> N.Cmp_scalar (rename_expr lhs, op, col)
      | N.Cmp_agg (lhs, op, func) ->
        let func =
          match func with
          | Aggregate.Count_star -> Aggregate.Count_star
          | Aggregate.Count e -> Aggregate.Count (rename_expr e)
          | Aggregate.Sum e -> Aggregate.Sum (rename_expr e)
          | Aggregate.Min e -> Aggregate.Min (rename_expr e)
          | Aggregate.Max e -> Aggregate.Max (rename_expr e)
          | Aggregate.Avg e -> Aggregate.Avg (rename_expr e)
          | Aggregate.First e -> Aggregate.First (rename_expr e)
        in
        N.Cmp_agg (rename_expr lhs, op, func)
      | N.Quant (lhs, op, q, col) -> N.Quant (rename_expr lhs, op, q, col)
      | N.In_ (lhs, col) -> N.In_ (rename_expr lhs, col)
      | N.Not_in (lhs, col) -> N.Not_in (rename_expr lhs, col)
    in
    N.Sub
      {
        kind;
        source = s.N.source;
        s_alias = rename_alias s.N.s_alias;
        s_where = rename_pred s.N.s_where;
      }

let rename_query (q : N.query) = { q with N.q_where = rename_pred q.N.q_where }

let fp_alpha_invariant (query, _db) =
  let a = Subql_mqo.Fingerprint.of_query query
  and b = Subql_mqo.Fingerprint.of_query (rename_query query) in
  if String.equal a b then true
  else begin
    Format.eprintf "@.fingerprint moved under alpha-renaming:@.%a@." N.pp_query query;
    false
  end

(* Commute conjunctions and disjunctions of the outer WHERE clause.
   Only subquery-free subtrees outside any subquery are swapped:
   reordering a subquery (or the conjuncts inside one) permutes the
   translation's generated aggregate names and its correlated-column
   threading order, both of which are schema-affecting and deliberately
   not normalized by fingerprinting. *)
let rec sub_free = function
  | N.Ptrue | N.Atom _ -> true
  | N.Pand (a, b) | N.Por (a, b) -> sub_free a && sub_free b
  | N.Pnot p -> sub_free p
  | N.Sub _ -> false

let rec commute_expr = function
  | Expr.And (a, b) -> Expr.And (commute_expr b, commute_expr a)
  | Expr.Or (a, b) -> Expr.Or (commute_expr b, commute_expr a)
  | e -> e

let rec commute_pred = function
  | N.Ptrue -> N.Ptrue
  | N.Atom e -> N.Atom (commute_expr e)
  | N.Pand (a, b) when sub_free a && sub_free b ->
    N.Pand (commute_pred b, commute_pred a)
  | N.Pand (a, b) -> N.Pand (commute_pred a, commute_pred b)
  | N.Por (a, b) when sub_free a && sub_free b ->
    N.Por (commute_pred b, commute_pred a)
  | N.Por (a, b) -> N.Por (commute_pred a, commute_pred b)
  | N.Pnot p -> N.Pnot (commute_pred p)
  | N.Sub _ as s -> s

let fp_commute_invariant (query, _db) =
  let commuted = { query with N.q_where = commute_pred query.N.q_where } in
  let a = Subql_mqo.Fingerprint.of_query query
  and b = Subql_mqo.Fingerprint.of_query commuted in
  if String.equal a b then true
  else begin
    Format.eprintf "@.fingerprint moved under commutation:@.%a@." N.pp_query query;
    false
  end

(* --- Analyzer invariance under optimization ------------------------- *)

(* Whatever subset of rewrites fires, the analyzer's verdict must not
   degrade: an error-free translation stays error-free, the schema is
   unchanged, and per-column nullability only narrows (Nullability.leq
   pointwise).  The database varies too, so the instance-derived base
   nullability the dataflow starts from is itself fuzzed. *)
let gen_flags =
  let* coalesce = QCheck2.Gen.bool in
  let* pushdown = QCheck2.Gen.bool in
  let* completion = QCheck2.Gen.bool in
  G.return (Subql.Optimize.only ~coalesce ~pushdown ~completion ())

let gen_analysis_case = G.triple gen_query Query_zoo.db_gen gen_flags

let analyzer_verdict_invariant (query, db, flags) =
  let catalog = Query_zoo.mk_catalog db in
  let env = Subql_analysis.Typing.env_of_catalog catalog in
  let raw = Subql.Transform.to_algebra query in
  let optimized = Subql.Optimize.optimize ~flags raw in
  let v_raw = Subql_analysis.Typing.infer env raw in
  let v_opt = Subql_analysis.Typing.infer env optimized in
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        Format.eprintf "@.analyzer verdict drift (%s) on:@.%a@." msg N.pp_query query;
        false)
      fmt
  in
  match (v_raw, v_opt) with
  | { Subql_analysis.Typing.schema = Some sa; nulls = Some na; diags = da },
    { Subql_analysis.Typing.schema = Some sb; nulls = Some nb; diags = db } ->
    if Diag.has_errors da then fail "raw plan has errors"
    else if Diag.has_errors db then fail "optimized plan has errors"
    else if not (Schema.equal_names sa sb) then fail "schema drift"
    else if
      not
        (Array.for_all2 (fun after before -> Subql_analysis.Nullability.leq after before) nb na)
    then fail "nullability widened"
    else true
  | _ -> fail "inference failed fatally"

(* --- Certified interval containment ----------------------------------- *)

module C = Subql.Cost

(* Soundness of the interval abstract interpretation: the per-operator
   output cardinality the instrumented evaluator measures lies inside
   the certified [lo, hi] at every node of the plan — in every execution
   mode (serial, worker domains, forced 1-row spill budgets, chunked
   streaming) and again after random appends grow the detail tables
   (with the statistics refreshed from the grown catalog). *)
let rec contained (iv : C.Interval.tree) (ex : Subql_obs.Explain.node) =
  C.Interval.contains iv.C.Interval.ival
    (float_of_int ex.Subql_obs.Explain.rows_out)
  && List.length iv.C.Interval.children = List.length ex.Subql_obs.Explain.children
  && List.for_all2 contained iv.C.Interval.children ex.Subql_obs.Explain.children

let gen_containment_case =
  let row2 = G.list_repeat 2 Helpers.Gen.value_with_nulls in
  let* query = gen_query in
  let* db = Query_zoo.db_gen in
  let* domains = G.int_range 1 4 in
  let* budget = G.oneofl [ None; Some 1; Some 16 ] in
  let* batches =
    G.list_size (G.int_range 0 2) (G.pair G.bool (G.list_size (G.int_range 0 6) row2))
  in
  G.return (query, db, (domains, budget), batches)

let certified_contains_observed (query, db, (domains, spill_budget_rows), batches) =
  let catalog = Query_zoo.mk_catalog db in
  let plan = Subql.Optimize.optimize (Subql.Transform.to_algebra query) in
  let config =
    { Subql.Eval.default_config with Subql.Eval.domains; spill_budget_rows }
  in
  let check_once () =
    let stats = C.Stats.of_catalog catalog in
    let tree = C.intervals stats plan in
    let _, ex = Subql.Eval.eval_analyzed ~config catalog plan in
    (if not (contained tree ex) then begin
       Format.eprintf "@.interval containment violated on:@.%a@." N.pp_query query;
       raise Exit
     end);
    (* chunked streaming reaches different operator paths; the root
       cardinality must still obey the root interval *)
    let sources table =
      Catalog.find_opt catalog table
      |> Option.map (fun rel ->
             Chunk.Source.map Fun.id (Chunk.Source.of_relation ~chunk_rows:3 rel))
    in
    let rel = fst (Subql.Eval.eval_exec ~sources catalog plan) in
    if
      not
        (C.Interval.contains tree.C.Interval.ival
           (float_of_int (Relation.cardinality rel)))
    then begin
      Format.eprintf "@.chunked root cardinality escaped interval on:@.%a@."
        N.pp_query query;
      raise Exit
    end
  in
  match
    check_once ();
    List.iter
      (fun (to_i, batch) ->
        let table = if to_i then "I" else "J" in
        let rel = Catalog.find catalog table in
        let all = ref [] in
        Relation.iter (fun t -> all := t :: !all) rel;
        let grown =
          Array.append
            (Array.of_list (List.rev !all))
            (Array.of_list (List.map Array.of_list batch))
        in
        Catalog.add catalog table
          (Relation.create ~check:false (Relation.schema rel) grown);
        check_once ())
      batches
  with
  | () -> true
  | exception Exit -> false

(* --- Incremental GMDJ maintenance under appends ---------------------- *)

module Gmdj = Subql_gmdj.Gmdj

let base_schema = Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ]

let detail_schema =
  Schema.of_list [ Schema.attr ~rel:"R" "k" Value.Tint; Schema.attr ~rel:"R" "y" Value.Tint ]

let corr_br = Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k")

(* Block shapes spanning the aggregate kinds (MIN/MAX have no inverse, so
   insert-maintenance must recompute their extremes lazily or track them
   exactly), NULL-sensitive predicates, and multi-block coalescing. *)
let maintain_block_sets =
  [
    [ Gmdj.block [ Aggregate.count_star "cnt" ] corr_br ];
    [
      Gmdj.block
        [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
        corr_br;
      Gmdj.block
        [ Aggregate.min_ (attr ~rel:"R" "y") "mn"; Aggregate.max_ (attr ~rel:"R" "y") "mx" ]
        (Expr.and_ corr_br (Expr.Is_not_null (attr ~rel:"R" "y")));
    ];
    [
      Gmdj.block
        [ Aggregate.avg (attr ~rel:"R" "y") "a" ]
        (Expr.cmp Expr.Le (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
    ];
  ]

let gen_maintain_case =
  let row2 = G.list_repeat 2 Helpers.Gen.value_with_nulls in
  let* brows = G.list_size (G.int_range 0 8) (G.list_repeat 1 Helpers.Gen.value_with_nulls) in
  let* drows = G.list_size (G.int_range 0 12) row2 in
  let* batches =
    G.list_size (G.int_range 1 5) (G.pair G.bool (G.list_size (G.int_range 0 8) row2))
  in
  let* bi = G.int_range 0 (List.length maintain_block_sets - 1) in
  G.return (brows, drows, batches, bi)

(* After every append — folded either as a relation or streamed in small
   chunks — the maintained view must equal re-evaluating the GMDJ from
   scratch over the accumulated detail. *)
let maintain_matches_recompute (brows, drows, batches, bi) =
  let blocks = List.nth maintain_block_sets bi in
  let mk schema rows = Relation.of_list schema (List.map Array.of_list rows) in
  let base = mk base_schema brows in
  let state = Gmdj.Maintain.create ~base ~detail:(mk detail_schema drows) blocks in
  let all = ref drows in
  List.for_all
    (fun (via_chunks, batch) ->
      let delta = mk detail_schema batch in
      (if via_chunks then
         ignore
           (Gmdj.Maintain.insert_source state (Chunk.Source.of_relation ~chunk_rows:3 delta))
       else Gmdj.Maintain.insert_detail state delta);
      all := !all @ batch;
      let fresh = Gmdj.eval ~base ~detail:(mk detail_schema !all) blocks in
      if Relation.equal_as_multiset fresh (Gmdj.Maintain.result state) then true
      else begin
        Format.eprintf "@.maintained view drifted (blocks %d, %d appends)@." bi
          (List.length batches);
        false
      end)
    batches

let relation_rows rel =
  let acc = ref [] in
  Relation.iter (fun t -> acc := t :: !acc) rel;
  Array.of_list (List.rev !acc)

let gen_append_case =
  let row2 = G.list_repeat 2 Helpers.Gen.value_with_nulls in
  let* query = gen_query in
  let* db = Query_zoo.db_gen in
  let* batches =
    G.list_size (G.int_range 1 4) (G.pair G.bool (G.list_size (G.int_range 0 8) row2))
  in
  G.return (query, db, batches)

(* Query-level closure: register a random query with the maintenance
   planner, seed the cache, append random batches to the detail tables,
   and require the repaired cache entry to match the naive oracle on the
   grown catalog after every sync.  Which route the planner takes (delta
   fold, accumulator rebuild, or plain recompute for unmaintainable
   plans — local detail predicates, multiple subqueries, completion
   shapes) is its own business; the answer may not drift.  The entry
   itself was admitted from the batch layer's {e completed} plan, so
   agreement also pins the completion-free repair plan to the completion
   variant it stands in for. *)
let maintained_cache_matches_oracle (query, db, batches) =
  let catalog = Query_zoo.mk_catalog db in
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. () in
  let maint = Subql_ingest.Maintenance.create ~catalog ~cache () in
  ignore (Subql_ingest.Maintenance.register_query maint query);
  let fp = Subql_mqo.Batch.fingerprint (Subql_mqo.Batch.prepare query) in
  ignore (Subql_mqo.Batch.run ~cache catalog [ query ]);
  let rows table = Some (Relation.cardinality (Catalog.find catalog table)) in
  let delta ~table ~from_row =
    let rel = Catalog.find catalog table in
    let all = relation_rows rel in
    if from_row > Array.length all then None
    else
      Some
        (Chunk.Source.of_relation ~chunk_rows:3
           (Relation.create ~check:false (Relation.schema rel)
              (Array.sub all from_row (Array.length all - from_row))))
  in
  List.for_all
    (fun (to_i, batch) ->
      let table = if to_i then "I" else "J" in
      let rel = Catalog.find catalog table in
      let grown =
        Array.append (relation_rows rel) (Array.of_list (List.map Array.of_list batch))
      in
      Catalog.add catalog table (Relation.create ~check:false (Relation.schema rel) grown);
      ignore (Subql_ingest.Maintenance.sync maint ~rows ~delta);
      let oracle = Naive_eval.eval catalog query in
      match Subql_mqo.Result_cache.peek cache fp with
      | None ->
        Format.eprintf "@.maintained entry vanished on:@.%a@." N.pp_query query;
        false
      | Some served ->
        if Relation.equal_as_multiset oracle served then true
        else begin
          Format.eprintf "@.maintained cache entry drifted from oracle on:@.%a@."
            N.pp_query query;
          false
        end)
    batches

(* The zoo's queries are pairwise semantically different with one
   exception: "negated-some" (NOT (x ≤ SOME S)) and "all-gt-correlated"
   (x > ALL S) are the same query in two syntaxes — and the translation
   maps them to the same canonical plan, so their fingerprints coincide.
   Every other pair must stay distinct. *)
let zoo_fingerprints_distinct () =
  let same_query = [ ("negated-some", "all-gt-correlated") ] in
  let fps =
    List.map
      (fun (name, q) -> (name, Subql_mqo.Fingerprint.of_query q))
      Subql_workload.Zoo.queries
  in
  List.iteri
    (fun i (na, fa) ->
      List.iteri
        (fun j (nb, fb) ->
          if i < j then
            let expect_equal =
              List.mem (na, nb) same_query || List.mem (nb, na) same_query
            in
            if expect_equal then begin
              if not (String.equal fa fb) then
                Alcotest.failf "%s and %s should share a fingerprint" na nb
            end
            else if String.equal fa fb then
              Alcotest.failf "%s and %s collide" na nb)
        fps)
    fps

let () =
  Alcotest.run "fuzz"
    [
      ( "random-queries",
        [
          Helpers.qtest ~count:400 "all engines agree" gen_case engines_agree;
          Helpers.qtest ~count:150 "parallel/spill modes agree with serial"
            gen_parallel_case parallel_spill_agree;
          Helpers.qtest ~count:400 "sql render/parse round trip" gen_case roundtrip;
        ] );
      ( "maintenance",
        [
          Helpers.qtest ~count:300 "maintained GMDJ = recompute after appends"
            gen_maintain_case maintain_matches_recompute;
          Helpers.qtest ~count:200 "repaired cache entry = naive oracle"
            gen_append_case maintained_cache_matches_oracle;
        ] );
      ( "analysis",
        [
          Helpers.qtest ~count:300 "analyzer verdict invariant under optimize"
            gen_analysis_case analyzer_verdict_invariant;
          Helpers.qtest ~count:150 "observed rows contained in certified intervals"
            gen_containment_case certified_contains_observed;
        ] );
      ( "fingerprints",
        [
          Helpers.qtest ~count:300 "invariant under alpha-renaming" gen_case
            fp_alpha_invariant;
          Helpers.qtest ~count:300 "invariant under commutation" gen_case
            fp_commute_invariant;
          Alcotest.test_case "zoo queries stay distinct" `Quick
            zoo_fingerprints_distinct;
        ] );
    ]
