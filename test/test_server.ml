(* The serving layer: admission control (memory budgets, queue
   backpressure, shutdown), the time/size-bounded batch scheduler, the
   traffic generator, and the virtual-time driver. *)

open Subql_relational
module Zoo = Subql_workload.Zoo
module Traffic = Subql_workload.Traffic
module Admission = Subql_server.Admission
module Server = Subql_server.Server
module Driver = Subql_server.Driver
module Metrics = Subql_obs.Metrics
module Ingest = Subql_ingest.Ingest

let catalog () = Zoo.catalog ~outer:24 ~inner:512 ~key_range:16 ()

let reference cat q =
  Subql.Eval.eval cat (Subql.Optimize.optimize (Subql.Transform.to_algebra q))

let check_rel msg expected actual =
  if not (Relation.equal_as_multiset expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Relation.pp expected Relation.pp
      actual

let config ?(batch_window = 10.) ?(batch_max = 16) ?(mem_budget = infinity)
    ?(queue_cap = 64) () =
  {
    Server.batch_window;
    batch_max;
    policy = { Admission.mem_budget_rows = mem_budget; queue_cap };
    eval_config = Subql.Eval.default_config;
  }

let make ?batch_window ?batch_max ?mem_budget ?queue_cap ?registry cat =
  let registry = match registry with Some r -> r | None -> Metrics.create () in
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. ~registry () in
  Server.create ~config:(config ?batch_window ?batch_max ?mem_budget ?queue_cap ())
    ~cache ~registry cat

let submit_ok server ~now name =
  match Server.submit server ~now ~label:name (Zoo.find_query name) with
  | Ok t -> t
  | Error r -> Alcotest.failf "%s unexpectedly rejected: %s" name (Diag.to_string r.Admission.diag)

(* --- admission ------------------------------------------------------- *)

let test_over_budget_rejected_not_executed () =
  let cat = catalog () in
  let registry = Metrics.create () in
  (* Every plan materializes at least its result: a fractional budget is
     unsatisfiable, so admission must reject everything. *)
  let server = make ~mem_budget:0.5 ~registry cat in
  (match Server.submit server ~now:0. (Zoo.find_query "agg-sum") with
  | Ok _ -> Alcotest.fail "over-budget plan admitted"
  | Error r ->
    Alcotest.(check string) "ADM001" Admission.code_over_budget r.Admission.diag.Diag.code;
    Alcotest.(check bool) "error severity" true (Diag.is_error r.Admission.diag);
    Alcotest.(check bool) "structural: no retry hint" true
      (r.Admission.retry_after = None));
  Alcotest.(check int) "nothing queued" 0 (Server.queue_depth server);
  Alcotest.(check bool) "nothing to run" true (Server.drain server ~now:100. = []);
  Alcotest.(check int) "rejection counted" 1
    (Metrics.counter_value_by_name registry "server.rejected.budget");
  Alcotest.(check int) "nothing served" 0
    (Metrics.counter_value_by_name registry "server.queries_served")

let test_budget_admits_fitting_plans () =
  let cat = catalog () in
  (* A generous budget admits the same query the tight one refused. *)
  let server = make ~mem_budget:1e9 cat in
  ignore (submit_ok server ~now:0. "agg-sum");
  Alcotest.(check int) "queued" 1 (Server.queue_depth server)

let test_queue_cap_sheds_with_retry_hint () =
  let cat = catalog () in
  let server = make ~queue_cap:2 ~batch_max:100 ~batch_window:10. cat in
  ignore (submit_ok server ~now:0. "exists");
  ignore (submit_ok server ~now:0. "in");
  match Server.submit server ~now:0. (Zoo.find_query "some") with
  | Ok _ -> Alcotest.fail "third submit should hit the queue cap"
  | Error r ->
    Alcotest.(check string) "ADM002" Admission.code_queue_full r.Admission.diag.Diag.code;
    (match r.Admission.retry_after with
    | Some after ->
      Alcotest.(check (float 1e-9)) "hint is one batch window" 10. after
    | None -> Alcotest.fail "transient shed must carry a retry hint")

let test_shutdown_drains_then_refuses () =
  let cat = catalog () in
  let server = make ~batch_window:1e6 cat in
  ignore (submit_ok server ~now:0. "exists");
  ignore (submit_ok server ~now:0. "not-exists");
  let drained = Server.shutdown server ~now:1. in
  let completions = List.concat_map (fun b -> b.Server.completions) drained in
  Alcotest.(check int) "both in-flight queries answered" 2 (List.length completions);
  List.iter
    (fun (c : Server.completion) ->
      check_rel c.Server.ticket.Server.label
        (reference cat (Zoo.find_query c.Server.ticket.Server.label))
        c.Server.result)
    completions;
  Alcotest.(check bool) "marked down" true (Server.is_shut_down server);
  match Server.submit server ~now:2. (Zoo.find_query "exists") with
  | Ok _ -> Alcotest.fail "submit after shutdown admitted"
  | Error r ->
    Alcotest.(check string) "ADM003" Admission.code_shutdown r.Admission.diag.Diag.code

(* --- batch scheduling ------------------------------------------------ *)

let test_window_seals_batches () =
  let cat = catalog () in
  let server = make ~batch_window:5. ~batch_max:100 cat in
  ignore (submit_ok server ~now:0. "exists");
  Alcotest.(check bool) "not due before the window" true
    (Server.step server ~now:4.9 = None);
  Alcotest.(check (option (float 1e-9))) "deadline = submit + window" (Some 5.)
    (Server.next_deadline server);
  match Server.step server ~now:5. with
  | None -> Alcotest.fail "due batch not sealed"
  | Some b ->
    Alcotest.(check int) "one completion" 1 (List.length b.Server.completions);
    Alcotest.(check (float 1e-9)) "sealed at now" 5. b.Server.closed_at;
    let c = List.hd b.Server.completions in
    Alcotest.(check bool) "completion after sealing" true (c.Server.completed >= 5.)

let test_batch_max_seals_early () =
  let cat = catalog () in
  let server = make ~batch_window:1e6 ~batch_max:2 cat in
  ignore (submit_ok server ~now:0. "exists");
  ignore (submit_ok server ~now:0. "in");
  ignore (submit_ok server ~now:0. "some");
  match Server.step server ~now:0. with
  | None -> Alcotest.fail "full batch not sealed"
  | Some b ->
    Alcotest.(check int) "batch capped at batch_max" 2 (List.length b.Server.completions);
    Alcotest.(check int) "third query still queued" 1 (Server.queue_depth server)

let test_batch_shares_and_answers_correctly () =
  let cat = catalog () in
  let server = make cat in
  List.iter
    (fun t -> ignore (submit_ok server ~now:0. t))
    Zoo.same_detail_templates;
  match Server.step server ~now:100. with
  | None -> Alcotest.fail "batch not sealed"
  | Some b ->
    let k = List.length Zoo.same_detail_templates in
    Alcotest.(check int) "whole batch completed" k (List.length b.Server.completions);
    List.iter
      (fun (c : Server.completion) ->
        check_rel c.Server.ticket.Server.label
          (reference cat (Zoo.find_query c.Server.ticket.Server.label))
          c.Server.result)
      b.Server.completions;
    if b.Server.report.Subql_mqo.Batch.shared_detail_scans >= k then
      Alcotest.failf "no sharing under traffic: %d scans for %d queries"
        b.Server.report.Subql_mqo.Batch.shared_detail_scans k

let test_warm_steady_state_scans_nothing () =
  let cat = catalog () in
  let server = make cat in
  let round now =
    List.iter (fun t -> ignore (submit_ok server ~now t)) Zoo.same_detail_templates;
    match Server.drain server ~now with
    | [ b ] -> b.Server.report
    | bs -> Alcotest.failf "expected one batch, got %d" (List.length bs)
  in
  let cold = round 0. in
  Alcotest.(check int) "cold round misses" 0 cold.Subql_mqo.Batch.cache_hits;
  let warm = round 10. in
  Alcotest.(check int) "warm round all hits"
    (List.length Zoo.same_detail_templates)
    warm.Subql_mqo.Batch.cache_hits;
  Alcotest.(check int) "warm round: zero detail scans" 0
    warm.Subql_mqo.Batch.shared_detail_scans

let test_metrics_published () =
  let cat = catalog () in
  let registry = Metrics.create () in
  let server = make ~registry ~queue_cap:1 cat in
  ignore (submit_ok server ~now:0. "exists");
  (match Server.submit server ~now:0. (Zoo.find_query "in") with
  | Ok _ -> Alcotest.fail "expected shed"
  | Error _ -> ());
  ignore (Server.drain server ~now:1.);
  let snap = Metrics.snapshot registry in
  Alcotest.(check int) "admitted" 1
    (Metrics.counter_value_by_name registry "server.admitted");
  Alcotest.(check int) "served" 1
    (Metrics.counter_value_by_name registry "server.queries_served");
  Alcotest.(check int) "rejected" 1
    (Metrics.counter_value_by_name registry "server.rejected");
  Alcotest.(check (float 1e-9)) "queue drained" 0.
    (match List.assoc_opt "server.queue_depth" snap.Metrics.gauges with
    | Some v -> v
    | None -> Alcotest.fail "no queue_depth gauge");
  (match List.assoc_opt "server.latency_seconds" snap.Metrics.histograms with
  | Some h ->
    Alcotest.(check int) "one latency observation" 1 h.Metrics.count;
    Alcotest.(check bool) "latency includes the queue wait" true
      (Metrics.quantile h 0.5 >= 0.)
  | None -> Alcotest.fail "no latency histogram");
  match List.assoc_opt "server.batch_size" snap.Metrics.histograms with
  | Some h -> Alcotest.(check int) "one batch observed" 1 h.Metrics.count
  | None -> Alcotest.fail "no batch_size histogram"

(* --- traffic generator ---------------------------------------------- *)

let test_traffic_deterministic () =
  let t1 = Traffic.open_loop ~seed:9L ~rate:100. ~count:50 ~skew:0.5 () in
  let t2 = Traffic.open_loop ~seed:9L ~rate:100. ~count:50 ~skew:0.5 () in
  Alcotest.(check bool) "same seed, same trace" true (t1 = t2);
  let t3 = Traffic.open_loop ~seed:10L ~rate:100. ~count:50 ~skew:0.5 () in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

let test_traffic_arrivals_ordered_at_rate () =
  let rate = 200. and count = 400 in
  let trace = Traffic.open_loop ~seed:3L ~rate ~count ~skew:0.5 () in
  Alcotest.(check int) "count honoured" count (List.length trace);
  let rec ordered = function
    | (a : Traffic.arrival) :: (b :: _ as rest) ->
      a.Traffic.at <= b.Traffic.at && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing arrival times" true (ordered trace);
  let last = List.nth trace (count - 1) in
  let measured = float_of_int count /. last.Traffic.at in
  if measured < rate /. 2. || measured > rate *. 2. then
    Alcotest.failf "arrival rate %f too far from %f" measured rate

let test_traffic_skew_clusters_shareable () =
  let all_shareable =
    Traffic.open_loop ~seed:5L ~rate:100. ~count:200 ~skew:1. ()
  in
  List.iter
    (fun (a : Traffic.arrival) ->
      if not (List.mem a.Traffic.template Zoo.same_detail_templates) then
        Alcotest.failf "skew 1.0 drew non-shareable template %s" a.Traffic.template)
    all_shareable;
  let uniform = Traffic.open_loop ~seed:5L ~rate:100. ~count:200 ~skew:0. () in
  let outside =
    List.exists
      (fun (a : Traffic.arrival) ->
        not (List.mem a.Traffic.template Zoo.same_detail_templates))
      uniform
  in
  Alcotest.(check bool) "skew 0.0 reaches the whole zoo" true outside

let test_traffic_closed_loop_shape () =
  let streams = Traffic.closed_loop ~seed:4L ~clients:3 ~per_client:7 ~skew:0.5 () in
  Alcotest.(check int) "one stream per client" 3 (List.length streams);
  List.iter
    (fun s -> Alcotest.(check int) "stream length" 7 (List.length s))
    streams;
  let again = Traffic.closed_loop ~seed:4L ~clients:3 ~per_client:7 ~skew:0.5 () in
  Alcotest.(check bool) "deterministic" true (streams = again)

(* --- driver ---------------------------------------------------------- *)

let zoo_events trace =
  List.map
    (fun (a : Traffic.arrival) ->
      {
        Driver.at = a.Traffic.at;
        label = a.Traffic.template;
        query = Zoo.find_query a.Traffic.template;
      })
    trace

let test_replay_completes_everything () =
  let cat = catalog () in
  let server = make ~batch_window:0.01 ~batch_max:8 ~queue_cap:1024 cat in
  let trace = Traffic.open_loop ~seed:11L ~rate:500. ~count:60 ~skew:0.9 () in
  let s = Driver.replay server (zoo_events trace) in
  Alcotest.(check int) "all offered" 60 s.Driver.offered;
  Alcotest.(check int) "all completed (queue never capped)" 60 s.Driver.completed;
  Alcotest.(check int) "no sheds" 0 s.Driver.shed;
  Alcotest.(check int) "latency per completion" 60 (Array.length s.Driver.latencies);
  Array.iter
    (fun l -> if l < 0. then Alcotest.failf "negative latency %f" l)
    s.Driver.latencies;
  if s.Driver.detail_scans >= s.Driver.naive_detail_scans then
    Alcotest.failf "traffic did not share/cache: %d scans vs %d naive"
      s.Driver.detail_scans s.Driver.naive_detail_scans;
  Alcotest.(check bool) "virtual makespan covers the trace" true
    (s.Driver.duration >= (List.nth trace 59).Traffic.at)

let test_replay_sheds_over_cap () =
  let cat = catalog () in
  (* A 1-deep queue under a burst: most of the burst must shed, and the
     server must survive it. *)
  let server = make ~batch_window:10. ~batch_max:100 ~queue_cap:1 cat in
  let events =
    List.init 10 (fun i ->
        { Driver.at = 0.001 *. float_of_int i; label = "exists";
          query = Zoo.find_query "exists" })
  in
  let s = Driver.replay server events in
  Alcotest.(check int) "one admitted" 1 s.Driver.completed;
  Alcotest.(check int) "rest shed" 9 s.Driver.shed

let test_closed_loop_retries_and_finishes () =
  let cat = catalog () in
  let server = make ~batch_window:0.005 ~batch_max:4 ~queue_cap:2 cat in
  let streams =
    Traffic.closed_loop ~seed:2L ~clients:5 ~per_client:8 ~skew:0.9 ()
    |> List.map (List.map (fun t -> (t, Zoo.find_query t)))
  in
  let s = Driver.run_closed server ~clients:streams ~think:0.001 in
  Alcotest.(check int) "every client query eventually served" 40 s.Driver.completed;
  Alcotest.(check int) "sheds were retried, not lost" s.Driver.shed s.Driver.retries;
  Alcotest.(check int) "nothing structurally rejected" 0 s.Driver.rejected_budget

let test_percentiles () =
  let sorted = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  Alcotest.(check (float 1e-9)) "p50" 5. (Driver.percentile sorted 50.);
  Alcotest.(check (float 1e-9)) "p99" 10. (Driver.percentile sorted 99.);
  Alcotest.(check (float 1e-9)) "p0 is the min" 1. (Driver.percentile sorted 0.);
  Alcotest.(check (float 1e-9)) "empty is 0" 0. (Driver.percentile [||] 99.)

let test_metrics_quantile_interpolates () =
  let registry = Metrics.create () in
  let h = Metrics.histogram ~buckets:[ 1.; 2.; 4. ] registry "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.5; 3. ];
  let snap = Metrics.snapshot registry in
  let hs = List.assoc "h" snap.Metrics.histograms in
  let q50 = Metrics.quantile hs 0.5 in
  if q50 < 1. || q50 > 2. then Alcotest.failf "p50 %f outside its bucket [1, 2]" q50;
  let q100 = Metrics.quantile hs 1. in
  if q100 < 2. || q100 > 4. then Alcotest.failf "p100 %f outside its bucket (2, 4]" q100

(* --- prepared batch entries ------------------------------------------ *)

let test_prepared_entries_match_plain_run () =
  let cat = catalog () in
  let queries = List.map Zoo.find_query Zoo.same_detail_templates in
  let plain =
    Subql_mqo.Batch.run ~cache:(Subql_mqo.Result_cache.create ~min_cost:0. ()) cat
      queries
  in
  let prepared =
    Subql_mqo.Batch.run_prepared
      ~cache:(Subql_mqo.Result_cache.create ~min_cost:0. ())
      cat
      (List.map Subql_mqo.Batch.prepare queries)
  in
  Alcotest.(check int) "same scan count" plain.Subql_mqo.Batch.shared_detail_scans
    prepared.Subql_mqo.Batch.shared_detail_scans;
  List.iter2
    (fun (i, a) (j, b) ->
      Alcotest.(check int) "same key" i j;
      check_rel "prepared result" a b)
    plain.Subql_mqo.Batch.results prepared.Subql_mqo.Batch.results

(* --- ingest under live traffic --------------------------------------- *)

(* A database small enough to reason about exactly: "not-exists" keeps
   the O rows with no matching I key, so appending one I row visibly
   changes the answer. *)
let mini_catalog () =
  let rel cols rows =
    Relation.of_list
      (Schema.of_list (List.map (fun c -> Schema.attr c Value.Tint) cols))
      (List.map Array.of_list rows)
  in
  Catalog.of_list
    [
      ( "O",
        rel [ "k"; "x" ]
          [
            [ Value.Int 1; Value.Int 10 ];
            [ Value.Int 2; Value.Int 20 ];
            [ Value.Int 3; Value.Int 30 ];
          ] );
      ("I", rel [ "k"; "y" ] [ [ Value.Int 1; Value.Int 5 ] ]);
      ("J", rel [ "k"; "y" ] [ [ Value.Int 1; Value.Int 7 ] ]);
    ]

let only_completion msg = function
  | [ { Server.completions = [ c ]; _ } ] -> c
  | bs ->
    Alcotest.failf "%s: expected one batch with one completion, got %d batches" msg
      (List.length bs)

let test_ingest_interleave_no_stale_reads () =
  let cat = mini_catalog () in
  let registry = Metrics.create () in
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. ~registry () in
  let server = Server.create ~config:(config ()) ~cache ~registry cat in
  let ing = Ingest.create ~policy:Ingest.Maintain_on_write ~registry ~catalog:cat ~cache () in
  let q = Zoo.find_query "not-exists" in
  ignore (Ingest.register_query ing q);
  let pre = reference cat q in
  (* A query queued before the write: [Server.ingest] drains it first,
     so it is answered against the pre-append snapshot. *)
  ignore (submit_ok server ~now:0. "not-exists");
  let r =
    match
      Server.ingest server ~now:0.5 ~label:"append-I"
        ~apply:(fun () ->
          ignore (Ingest.append ing ~table:"I" [| [| Value.Int 2; Value.Int 6 |] |]);
          1)
        ()
    with
    | Ok r -> r
    | Error rej -> Alcotest.failf "ingest rejected: %s" (Diag.to_string rej.Admission.diag)
  in
  Alcotest.(check int) "rows counted through the server" 1 r.Server.ingested_rows;
  check_rel "queued query answered from the pre-append snapshot" pre
    (only_completion "flushed" r.Server.flushed).Server.result;
  (* The append changed the answer — and a query submitted after it must
     see the change, served from the entry the write repaired in place. *)
  let post = reference cat q in
  Alcotest.(check bool) "the append visibly changed the answer" false
    (Relation.equal_as_multiset pre post);
  ignore (submit_ok server ~now:1. "not-exists");
  (match Server.drain server ~now:2. with
  | [ b ] ->
    check_rel "post-append query sees the write"
      post
      (only_completion "post" [ b ]).Server.result;
    Alcotest.(check int) "served from the repaired entry" 1
      b.Server.report.Subql_mqo.Batch.cache_hits
  | bs -> Alcotest.failf "expected one post-append batch, got %d" (List.length bs));
  Alcotest.(check int) "repair, not re-admission" 1
    (Metrics.counter_value_by_name registry "mqo.cache.repaired");
  Ingest.close ing

let test_replay_mixed_stays_fresh () =
  let cat = catalog () in
  let registry = Metrics.create () in
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. ~registry () in
  let server =
    Server.create ~config:(config ~batch_window:0.01 ~batch_max:8 ~queue_cap:1024 ())
      ~cache ~registry cat
  in
  let ing = Ingest.create ~policy:Ingest.Maintain_on_read ~registry ~catalog:cat ~cache () in
  List.iter
    (fun t -> ignore (Ingest.register_query ing (Zoo.find_query t)))
    Zoo.same_detail_templates;
  Server.set_before_batch server (Some (fun ~now:_ -> Ingest.before_batch ing ~now:0.));
  let batch = ref 0 in
  let events =
    Traffic.open_loop ~seed:11L ~rate:100. ~count:60 ~skew:1.0 ()
    |> Traffic.with_ingest ~rows:16 ~every:0.1
    |> List.map (function
         | Traffic.Query (a : Traffic.arrival) ->
           Driver.Query
             {
               Driver.at = a.Traffic.at;
               label = a.Traffic.template;
               query = Zoo.find_query a.Traffic.template;
             }
         | Traffic.Append (i : Traffic.ingest_arrival) ->
           Driver.Ingest
             {
               Driver.at = i.Traffic.at;
               label = "append";
               apply =
                 (fun () ->
                   incr batch;
                   ignore
                     (Ingest.append ing ~table:"I"
                        (Zoo.detail_rows ~seed:(Int64.of_int !batch) i.Traffic.rows));
                   i.Traffic.rows);
             })
  in
  let ms = Driver.replay_mixed server events in
  Alcotest.(check int) "every query completed" 60 ms.Driver.queries.Driver.completed;
  Alcotest.(check bool) "appends interleaved the run" true (ms.Driver.ingest_batches > 0);
  Alcotest.(check int) "rows accounted per batch" (16 * ms.Driver.ingest_batches)
    ms.Driver.ingest_rows;
  (* Whatever was cached, repaired, or invalidated along the way, the
     cache must now answer every template exactly like solo evaluation
     of the final catalog — no stale entry survived the interleaving. *)
  List.iter
    (fun t ->
      let q = Zoo.find_query t in
      let report = Subql_mqo.Batch.run ~cache cat [ q ] in
      check_rel (t ^ " fresh after interleaved run") (reference cat q)
        (List.assoc 0 report.Subql_mqo.Batch.results))
    Zoo.same_detail_templates;
  Alcotest.(check bool) "lazy maintenance actually ran under the hook" true
    (Metrics.counter_value_by_name registry "mqo.cache.repaired" > 0);
  Ingest.close ing

let () =
  Alcotest.run "server"
    [
      ( "admission",
        [
          Alcotest.test_case "over-budget rejected, never executed" `Quick
            test_over_budget_rejected_not_executed;
          Alcotest.test_case "fitting plans admitted" `Quick
            test_budget_admits_fitting_plans;
          Alcotest.test_case "queue cap sheds with retry hint" `Quick
            test_queue_cap_sheds_with_retry_hint;
          Alcotest.test_case "shutdown drains then refuses" `Quick
            test_shutdown_drains_then_refuses;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "window seals batches" `Quick test_window_seals_batches;
          Alcotest.test_case "batch_max seals early" `Quick test_batch_max_seals_early;
          Alcotest.test_case "batches share and answer correctly" `Quick
            test_batch_shares_and_answers_correctly;
          Alcotest.test_case "warm steady state scans nothing" `Quick
            test_warm_steady_state_scans_nothing;
          Alcotest.test_case "metrics published" `Quick test_metrics_published;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "deterministic in the seed" `Quick
            test_traffic_deterministic;
          Alcotest.test_case "ordered arrivals at the rate" `Quick
            test_traffic_arrivals_ordered_at_rate;
          Alcotest.test_case "skew clusters shareable templates" `Quick
            test_traffic_skew_clusters_shareable;
          Alcotest.test_case "closed-loop stream shape" `Quick
            test_traffic_closed_loop_shape;
        ] );
      ( "driver",
        [
          Alcotest.test_case "open-loop replay completes" `Quick
            test_replay_completes_everything;
          Alcotest.test_case "open-loop sheds over the cap" `Quick
            test_replay_sheds_over_cap;
          Alcotest.test_case "closed loop retries sheds" `Quick
            test_closed_loop_retries_and_finishes;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "histogram quantile" `Quick
            test_metrics_quantile_interpolates;
        ] );
      ( "mqo-entries",
        [
          Alcotest.test_case "prepared entries match plain run" `Quick
            test_prepared_entries_match_plain_run;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "interleaved writes never serve stale reads" `Quick
            test_ingest_interleave_no_stale_reads;
          Alcotest.test_case "mixed replay stays fresh" `Quick
            test_replay_mixed_stays_fresh;
        ] );
    ]
