(* The static analyzer: diagnostics corpus (each seeded defect produces
   its expected rule code), nullability dataflow facts, the rewrite
   verifier, the planner self-check gate, and NOT IN / NOT EXISTS 3VL
   regressions against the naive oracle. *)

open Subql_relational
open Subql_gmdj
module A = Subql.Algebra
module N = Subql_nested.Nested_ast
module T = Subql_analysis.Typing
module V = Subql_analysis.Verify
module L = Subql_analysis.Lint
module An = Subql_analysis.Analyze
module Nul = Subql_analysis.Nullability

let attr = Expr.attr

(* O(k,x) and I(k,y) both carry a NULL; J is clean. *)
let catalog =
  Query_zoo.mk_catalog
    ( [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Null ] ],
      [ [ Value.Int 1; Value.Int 5 ]; [ Value.Int 2; Value.Null ] ],
      [ [ Value.Int 1; Value.Int 7 ] ] )

let env = T.env_of_catalog catalog

let codes diags = List.map (fun d -> d.Diag.code) diags

let has code diags = List.mem code (codes diags)

let o = A.Rename ("o", A.Table "O")

let i = A.Rename ("i", A.Table "I")

let count_md =
  A.Md
    {
      base = o;
      detail = i;
      blocks =
        [
          Gmdj.block
            [ Aggregate.count_star "cnt"; Aggregate.max_ (attr ~rel:"i" "y") "mx" ]
            (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k"));
        ];
    }

(* --- Seeded-defect corpus: one plan per rule code -------------------- *)

let corpus : (string * A.t * string) list =
  [
    ( "SCH001",
      A.Select (Expr.eq (attr ~rel:"o" "nope") (Expr.int 1), o),
      "SCH001" );
    ( "SCH002",
      A.Select
        ( Expr.eq (attr "k") (Expr.int 1),
          A.Product (A.Rename ("a", A.Table "O"), A.Rename ("b", A.Table "O")) ),
      "SCH002" );
    ( "SCH003",
      A.Project ([ (attr ~rel:"o" "k", "a"); (attr ~rel:"o" "x", "a") ], o),
      "SCH003" );
    ("SCH004", A.Table "Nope", "SCH004");
    ("TYP001", A.Select (Expr.Arith (Expr.Add, attr ~rel:"o" "k", Expr.int 1), o), "TYP001");
    ("TYP002", A.Select (Expr.eq (attr ~rel:"o" "k") (Expr.str "s"), o), "TYP002");
    ( "TYP003",
      A.Aggregate_all ([ Aggregate.sum (Expr.str "s") "s" ], o),
      "TYP003" );
    ( "NUL002",
      A.Select (Expr.gt (attr "mx") (Expr.int 3), count_md),
      "NUL002" );
    ("LNT001", A.Product (o, i), "LNT001");
    ( "LNT002",
      A.Md
        {
          base =
            A.Md
              {
                base = o;
                detail = A.Rename ("i1", A.Table "I");
                blocks = [ Gmdj.block [ Aggregate.count_star "c1" ] (Expr.bool true) ];
              };
          detail = A.Rename ("i2", A.Table "I");
          blocks = [ Gmdj.block [ Aggregate.count_star "c2" ] (Expr.bool true) ];
        },
      "LNT002" );
    ( "LNT003",
      A.Project_cols
        {
          cols = [ (None, "a") ];
          distinct = false;
          input = A.Project ([ (attr ~rel:"o" "k", "a"); (attr ~rel:"o" "x", "b") ], o);
        },
      "LNT003" );
  ]

let test_corpus () =
  List.iter
    (fun (name, plan, expected) ->
      let r = An.analyze_plan env ~label:name plan in
      if not (has expected r.An.diags) then
        Alcotest.failf "%s: expected %s, got [%s]" name expected
          (String.concat "; " (List.map Diag.to_string r.An.diags)))
    corpus

(* Counting conditions guarded by a COUNT column are the NULL-sound
   pattern the translation emits — no NUL002. *)
let test_guarded_count_condition () =
  let guarded =
    A.Select
      ( Expr.or_ (Expr.eq (attr "cnt") (Expr.int 0)) (Expr.gt (attr "mx") (Expr.int 3)),
        count_md )
  in
  let r = An.analyze_plan env ~label:"guarded" guarded in
  Alcotest.(check bool) "no NUL002" false (has "NUL002" r.An.diags);
  Alcotest.(check int) "no errors" 0 (An.errors r)

(* --- Query-level rules ------------------------------------------------ *)

let test_query_rules () =
  let not_in_trap =
    N.query ~base:(N.table "O") ~alias:"o"
      (N.not_in (attr ~rel:"o" "k") (N.table "I") "i" ~col:"y")
  in
  Alcotest.(check bool) "NUL001 fires" true (has "NUL001" (L.query_lints env not_in_trap));
  let filtered =
    N.query ~base:(N.table "O") ~alias:"o"
      (N.not_in (attr ~rel:"o" "k")
         ~where:(N.atom (Expr.Is_not_null (attr ~rel:"i" "y")))
         (N.table "I") "i" ~col:"y")
  in
  Alcotest.(check bool) "IS NOT NULL filter suppresses NUL001" false
    (has "NUL001" (L.query_lints env filtered));
  let non_neighboring = Subql_workload.Zoo.find_query "non-neighboring" in
  Alcotest.(check bool) "LNT004 fires" true
    (has "LNT004" (L.query_lints env non_neighboring));
  (* a correlation against an alias no scope binds survives translation
     (the reference flows through unresolved) but must be reported as an
     error by the end-to-end analysis, never crash it *)
  let bad =
    N.query ~base:(N.table "O") ~alias:"o"
      (N.exists
         ~where:(N.atom (Expr.eq (attr ~rel:"zzz" "k") (Expr.int 1)))
         (N.table "I") "i")
  in
  let r = An.analyze_query catalog ~label:"bad" bad in
  Alcotest.(check bool) "unbound alias is an error" true (An.errors r > 0);
  Alcotest.(check bool) "reported as SCH001" true (has "SCH001" r.An.diags)

(* --- Nullability dataflow facts --------------------------------------- *)

let test_nullability () =
  let verdict plan =
    let v = T.infer env plan in
    (Option.get v.T.schema, Option.get v.T.nulls)
  in
  (* base columns reflect the instance: O.x has a NULL *)
  let _, nulls = verdict o in
  Alcotest.(check bool) "o.k non-null" true (nulls.(0) = Nul.Non_null);
  Alcotest.(check bool) "o.x maybe-null" true (nulls.(1) = Nul.Maybe_null);
  (* the certified GMDJ fact: count columns are non-NULL, value
     aggregates over a possibly-empty range are not *)
  let schema, nulls = verdict count_md in
  let slot name = Schema.find schema name in
  Alcotest.(check bool) "cnt non-null" true (nulls.(slot "cnt") = Nul.Non_null);
  Alcotest.(check bool) "mx maybe-null" true (nulls.(slot "mx") = Nul.Maybe_null);
  (* selections narrow: a satisfied comparison proves its operands *)
  let _, nulls =
    verdict (A.Select (Expr.gt (attr ~rel:"o" "x") (Expr.int 0), o))
  in
  Alcotest.(check bool) "comparison narrows o.x" true (nulls.(1) = Nul.Non_null);
  let _, nulls = verdict (A.Select (Expr.Is_not_null (attr ~rel:"o" "x"), o)) in
  Alcotest.(check bool) "IS NOT NULL narrows o.x" true (nulls.(1) = Nul.Non_null);
  (* outer joins widen the inner side *)
  let _, nulls =
    verdict
      (A.Join
         {
           kind = A.Left_outer;
           cond = Expr.eq (attr ~rel:"o" "k") (attr ~rel:"i" "k");
           left = o;
           right = i;
         })
  in
  Alcotest.(check bool) "left side kept" true (nulls.(0) = Nul.Non_null);
  Alcotest.(check bool) "right side widened" true (nulls.(2) = Nul.Maybe_null)

(* --- The rewrite verifier --------------------------------------------- *)

let test_verifier () =
  (* schema drift *)
  let narrowed =
    A.Project_cols { cols = [ (Some "o", "k") ]; distinct = false; input = o }
  in
  Alcotest.(check bool) "VER001 on schema drift" true
    (has "VER001" (V.check_rewrite env ~label:"t" ~before:o ~after:narrowed));
  (* widened nullability *)
  let selective = A.Select (Expr.Is_not_null (attr ~rel:"o" "x"), o) in
  Alcotest.(check bool) "VER002 on widening" true
    (has "VER002" (V.check_rewrite env ~label:"t" ~before:selective ~after:o));
  (* narrowing in the other direction is allowed *)
  Alcotest.(check int) "narrowing verifies" 0
    (List.length (V.check_rewrite env ~label:"t" ~before:o ~after:selective));
  (* the real optimizer verifies over the whole zoo *)
  let zcat = Subql_workload.Zoo.catalog () in
  V.install_optimizer_check zcat;
  Fun.protect ~finally:V.clear_optimizer_check (fun () ->
      List.iter
        (fun (_, q) -> ignore (Subql.Optimize.optimize (Subql.Transform.to_algebra q)))
        Subql_workload.Zoo.queries)

(* --- Planner self-check gate ------------------------------------------ *)

let restore_unnest_providers () =
  Subql.Planner.set_unnest_providers
    ~semijoin:(fun catalog query ->
      match Subql_unnest.Unnest.via_semijoins catalog query with
      | alg -> Some alg
      | exception Subql_unnest.Unnest.Not_applicable _ -> None)
    ~outerjoin:(fun catalog query ->
      match Subql_unnest.Unnest.via_joins catalog query with
      | alg -> Some alg
      | exception Subql.Transform.Unsupported _ -> None)

let test_planner_gate () =
  let zcat = Subql_workload.Zoo.catalog () in
  let query = Subql_workload.Zoo.find_query "exists" in
  (* one schema-drifting candidate, one ill-typed candidate *)
  let drifting =
    A.Project_cols { cols = [ (Some "o", "k") ]; distinct = false; input = o }
  in
  Subql.Planner.set_unnest_providers
    ~semijoin:(fun _ _ -> Some drifting)
    ~outerjoin:(fun _ _ -> Some (A.Table "Nope"));
  V.install_planner_gate ();
  Fun.protect
    ~finally:(fun () ->
      V.clear_planner_gate ();
      restore_unnest_providers ())
    (fun () ->
      let rejected label =
        Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default
          ("planner.self_check.rejected." ^ label)
      in
      let before = rejected "semijoin-unnest" + rejected "outerjoin-unnest" in
      let cands = Subql.Planner.candidates zcat query in
      let labels = List.map (fun c -> c.Subql.Planner.label) cands in
      Alcotest.(check (list string)) "only the sound candidate survives" [ "gmdj" ] labels;
      let after = rejected "semijoin-unnest" + rejected "outerjoin-unnest" in
      Alcotest.(check int) "both rejections counted" (before + 2) after;
      (* gate off: the well-typed (if drifting) candidate flows through *)
      Subql.Planner.set_self_check false;
      Subql.Planner.set_unnest_providers
        ~semijoin:(fun _ _ -> Some drifting)
        ~outerjoin:(fun _ _ -> None);
      let labels =
        List.map (fun c -> c.Subql.Planner.label) (Subql.Planner.candidates zcat query)
      in
      Alcotest.(check bool) "gate off lets it through" true
        (List.mem "semijoin-unnest" labels);
      Subql.Planner.set_self_check true)

(* --- The whole zoo analyzes clean ------------------------------------- *)

let test_zoo_clean () =
  let zcat = Subql_workload.Zoo.catalog () in
  List.iter
    (fun (name, q) ->
      let r = An.analyze_query zcat ~label:name q in
      if An.errors r > 0 then
        Alcotest.failf "%s: %s" name
          (String.concat "; "
             (List.map Diag.to_string (List.filter Diag.is_error r.An.diags))))
    Subql_workload.Zoo.queries

(* --- Diagnostic ordering is deterministic ----------------------------- *)

let test_diag_order () =
  let w = Diag.warning ~path:[ "A" ] ~code:"LNT001" "w" in
  let e = Diag.error ~path:[ "Z" ] ~code:"SCH001" "e" in
  let i = Diag.info ~path:[ "A" ] ~code:"LNT004" "i" in
  Alcotest.(check (list string)) "errors first, then severity"
    [ "SCH001"; "LNT001"; "LNT004" ]
    (codes (Diag.sort [ i; w; e; w ]));
  Alcotest.(check int) "duplicates dropped" 3 (List.length (Diag.sort [ i; w; e; w ]))

(* --- NOT IN / NOT EXISTS 3VL regressions vs the naive oracle ---------- *)

let agree_and_count name query expected =
  let oracle = Subql_nested.Naive_eval.eval catalog query in
  let check engine result =
    if not (Relation.equal_as_multiset oracle result) then
      Alcotest.failf "%s: %s disagrees with the naive oracle" name engine
  in
  check "gmdj" (Subql.Eval.eval catalog (Subql.Transform.to_algebra query));
  check "gmdj-opt"
    (Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra query)));
  check "planner" (Subql.Planner.run catalog query);
  Alcotest.(check int) (name ^ " cardinality") expected (Relation.cardinality oracle)

let test_3vl_null_semantics () =
  let q pred = N.query ~base:(N.table "O") ~alias:"o" pred in
  (* one NULL in I.y poisons NOT IN for every outer row *)
  agree_and_count "not-in over NULL column"
    (q (N.not_in (attr ~rel:"o" "k") (N.table "I") "i" ~col:"y"))
    0;
  (* the standard fix: filter the NULLs inside the subquery *)
  agree_and_count "not-in with IS NOT NULL"
    (q
       (N.not_in (attr ~rel:"o" "k")
          ~where:(N.atom (Expr.Is_not_null (attr ~rel:"i" "y")))
          (N.table "I") "i" ~col:"y"))
    2;
  (* NOT EXISTS is count-based, not 3VL-poisoned: the row of O whose
     correlated range is emptied by an unknown comparison survives *)
  agree_and_count "not-exists under 3VL"
    (q
       (N.not_exists
          ~where:
            (N.pand
               (N.atom (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k")))
               (N.atom (Expr.gt (attr ~rel:"i" "y") (Expr.int 3))))
          (N.table "I") "i"))
    1;
  (* ALL over a range containing NULL is unknown for every outer row *)
  agree_and_count "all over NULL column"
    (q (N.all_ (attr ~rel:"o" "x") Expr.Gt (N.table "I") "i" ~col:"y"))
    0

(* --- Parallel-merge lawfulness (PAR) ---------------------------------- *)

module M = Subql_analysis.Mergeable
module D = Subql_analysis.Deltaable

(* The seeded unlawful aggregate: FIRST merges associatively (earliest
   non-NULL in concatenation order) but not commutatively. *)
let first_md =
  A.Md
    {
      base = o;
      detail = i;
      blocks =
        [
          Gmdj.block
            [ Aggregate.count_star "cnt"; Aggregate.first (attr ~rel:"i" "y") "fst" ]
            (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k"));
        ];
    }

let test_mergeable () =
  (* law derivation *)
  let l = M.laws_of (Aggregate.First (attr ~rel:"i" "y")) in
  Alcotest.(check bool) "FIRST is a monoid" true (l.M.has_identity && l.M.associative);
  Alcotest.(check bool) "FIRST is not commutative" false l.M.commutative;
  Alcotest.(check bool) "SUM is lawful" true
    (M.laws_of (Aggregate.Sum (attr ~rel:"i" "y"))).M.commutative;
  (* standard aggregates certify clean *)
  Alcotest.(check (list string)) "count/max MD certifies" [] (codes (M.certify count_md));
  Alcotest.(check bool) "certified for parallel" true (M.certified_for_parallel count_md);
  (* FIRST in a GMDJ block: cross-domain accumulator merge -> error *)
  let diags = M.certify first_md in
  Alcotest.(check (list string)) "PAR001 on FIRST in MD" [ "PAR001" ] (codes diags);
  Alcotest.(check bool) "errors refuse parallelism" false
    (M.certified_for_parallel first_md);
  (* FIRST under hash-partitioned GROUP BY: warning, still certified *)
  let gb =
    A.Group_by
      {
        keys = [ (Some "i", "k") ];
        aggs = [ Aggregate.first (attr ~rel:"i" "y") "fst" ];
        input = i;
      }
  in
  Alcotest.(check (list string)) "PAR003 under GROUP BY" [ "PAR003" ] (codes (M.certify gb));
  Alcotest.(check bool) "warnings do not refuse" true (M.certified_for_parallel gb);
  (* a hypothetical non-monoid state is refused everywhere *)
  let broken _ = { M.has_identity = false; associative = false; commutative = false } in
  Alcotest.(check bool) "PAR002 for non-monoid" true
    (has "PAR002" (M.certify ~laws_of:broken gb))

(* The planner consults the certificate before fanning out: an unlawful
   plan raises PAR001 instead of computing a nondeterministic merge. *)
let test_merge_gate () =
  (* enough detail rows that the work estimate clears the planner's
     serial cutoff and the certificate actually gets consulted *)
  let zcat = Subql_workload.Zoo.catalog ~inner:20_000 () in
  let stats = Subql.Cost.Stats.of_catalog zcat in
  let config = Subql.Eval.default_config in
  V.install_planner_gate ();
  Fun.protect
    ~finally:(fun () -> V.clear_planner_gate ())
    (fun () ->
      (* lawful plan: parallelizes *)
      let cfg = Subql.Planner.parallel_config ~domains:4 stats config count_md in
      Alcotest.(check bool) "lawful plan fans out" true (cfg.Subql.Eval.domains > 1);
      (* unlawful plan: enough work to want domains, refused with PAR001 *)
      let before =
        Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default
          "planner.merge_certificate.rejected"
      in
      (match Subql.Planner.parallel_config ~domains:4 stats config first_md with
      | _ -> Alcotest.fail "expected Diag.Fail for the FIRST plan"
      | exception Diag.Fail d ->
        Alcotest.(check string) "PAR001 raised" "PAR001" d.Diag.code);
      let after =
        Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default
          "planner.merge_certificate.rejected"
      in
      Alcotest.(check int) "rejection counted" (before + 1) after;
      (* serial execution of the same plan is never refused *)
      let cfg = Subql.Planner.parallel_config ~domains:1 stats config first_md in
      Alcotest.(check int) "serial still allowed" 1 cfg.Subql.Eval.domains)

(* --- Delta-maintainability (ING) -------------------------------------- *)

let test_deltaable () =
  (* the classic shape is maintainable, no diagnostics *)
  let v = D.analyze count_md in
  Alcotest.(check bool) "plain MD maintainable" true (Option.is_some v.D.maintainable);
  Alcotest.(check (list string)) "no refusal" [] (codes v.D.diags);
  let m = Option.get v.D.maintainable in
  Alcotest.(check string) "detail table" "I" m.D.detail_table;
  (* the widened class: a row-local chain on the detail side *)
  let widened =
    A.Md
      {
        base = o;
        detail = A.Select (Expr.gt (attr ~rel:"i" "y") (Expr.int 2), i);
        blocks =
          [ Gmdj.block [ Aggregate.count_star "cnt" ] (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k")) ];
      }
  in
  Alcotest.(check bool) "filtered detail maintainable" true
    (Option.is_some (D.analyze widened).D.maintainable);
  (* the delta pipeline replays the detail chain on a suffix *)
  let pipe = (Option.get (D.analyze widened).D.maintainable).D.delta_pipeline in
  let raw = Catalog.find catalog "I" in
  let out = Chunk.Source.to_relation (pipe (Chunk.Source.of_relation raw)) in
  let expect =
    Subql.Eval.eval catalog (A.Select (Expr.gt (attr ~rel:"i" "y") (Expr.int 2), i))
  in
  Alcotest.(check bool) "pipeline = detail chain" true
    (Relation.equal_as_multiset expect out);
  (* refusals carry their ING codes *)
  Alcotest.(check bool) "no MD -> ING001" true (has "ING001" (D.analyze o).D.diags);
  let both_sides =
    A.Md
      {
        base = A.Rename ("o", A.Table "I");
        detail = i;
        blocks = [ Gmdj.block [ Aggregate.count_star "c" ] (Expr.bool true) ];
      }
  in
  Alcotest.(check bool) "detail feeds base -> ING001" true
    (has "ING001" (D.analyze both_sides).D.diags);
  let rownum_detail =
    A.Md
      {
        base = o;
        detail = A.Add_rownum ("rn", i);
        blocks = [ Gmdj.block [ Aggregate.count_star "c" ] (Expr.bool true) ];
      }
  in
  Alcotest.(check bool) "rownum detail -> ING003" true
    (has "ING003" (D.analyze rownum_detail).D.diags);
  let completed = Subql.Optimize.optimize (Subql.Transform.to_algebra
    (N.query ~base:(N.table "O") ~alias:"o" (N.exists (N.table "I") "i"))) in
  Alcotest.(check bool) "completed form -> ING002" true
    (has "ING002" (D.analyze completed).D.diags)

(* --- Interval certificates -------------------------------------------- *)

let test_intervals () =
  let zcat = Subql_workload.Zoo.catalog () in
  let stats = Subql.Cost.Stats.of_catalog zcat in
  let config = Subql.Eval.default_config in
  (* exact leaves, sound MD bound *)
  let tree = Subql.Cost.intervals stats count_md in
  Alcotest.(check bool) "MD interval = base interval" true
    (tree.Subql.Cost.Interval.ival = { Subql.Cost.Interval.lo = 64.; hi = 64. });
  (* a contradictory selection is proven dead *)
  let dead =
    A.Select
      ( Expr.and_
          (Expr.gt (attr ~rel:"o" "x") (Expr.int 5))
          (Expr.lt (attr ~rel:"o" "x") (Expr.int 3)),
        o )
  in
  let t = Subql.Cost.intervals stats dead in
  Alcotest.(check bool) "contradiction -> [0,0]" true
    (t.Subql.Cost.Interval.ival.Subql.Cost.Interval.hi = 0.);
  (* a satisfiable range keeps the input's upper bound *)
  let alive = A.Select (Expr.gt (attr ~rel:"o" "x") (Expr.int 5), o) in
  let t = Subql.Cost.intervals stats alive in
  Alcotest.(check bool) "sound hi kept" true
    (t.Subql.Cost.Interval.ival.Subql.Cost.Interval.hi = 64.);
  (* unknown table -> top -> infinite certified bound, IVL001 *)
  let unknown = A.Distinct (A.Rename ("z", A.Table "Zzz")) in
  let c = Subql_analysis.Interval.certify ~config stats unknown in
  Alcotest.(check bool) "infinite bound" false
    (Float.is_finite c.Subql_analysis.Interval.certificate.Subql.Cost.bound);
  Alcotest.(check bool) "IVL001 names the table" true
    (has "IVL001" c.Subql_analysis.Interval.diags)

(* The certified bound admits plans the point estimate over-rejects:
   the contradictory selection's breaker is provably empty, but the
   heuristic still prices it at sel * |O| rows. *)
let test_certified_admission () =
  let zcat = Subql_workload.Zoo.catalog () in
  let stats = Subql.Cost.Stats.of_catalog zcat in
  let config = Subql.Eval.default_config in
  let module Adm = Subql_server.Admission in
  let policy = { Adm.unlimited with Adm.mem_budget_rows = 2. } in
  let dead_distinct =
    A.Distinct
      (A.Select
         ( Expr.and_
             (Expr.gt (attr ~rel:"o" "x") (Expr.int 5))
             (Expr.lt (attr ~rel:"o" "x") (Expr.int 3)),
           o ))
  in
  (* the point estimate alone over-rejects this plan... *)
  let point = Subql.Cost.memory_height stats ~config dead_distinct in
  Alcotest.(check bool) "point estimate exceeds budget" true (point > 2.);
  (* ...the certificate proves it empty and admits it *)
  (match Adm.check_budget policy ~stats ~config ~label:"dead" dead_distinct with
  | Ok rows -> Alcotest.(check (float 1e-9)) "certified footprint 0" 0. rows
  | Error _ -> Alcotest.fail "certificate should admit the dead plan");
  (* and the plan really is that small when run *)
  let result = Subql.Eval.eval ~config zcat dead_distinct in
  Alcotest.(check int) "provably empty" 0 (Relation.cardinality result);
  (* a genuinely big breaker is still rejected, and the ADM001 message
     names the certificate's argmax operator *)
  let big = A.Distinct (A.Rename ("i", A.Table "I")) in
  match Adm.check_budget policy ~stats ~config ~label:"big" big with
  | Ok _ -> Alcotest.fail "big distinct must be rejected"
  | Error r ->
    Alcotest.(check string) "ADM001" "ADM001" r.Adm.diag.Diag.code;
    let msg = r.Adm.diag.Diag.message in
    let mentions s =
      Alcotest.(check bool) (Printf.sprintf "message mentions %S" s) true
        (try
           ignore (Str.search_forward (Str.regexp_string s) msg 0);
           true
         with Not_found -> false)
    in
    mentions "certified bound";
    mentions "Distinct"

(* --- Certification over the zoo: clean, finite, byte-stable ----------- *)

let test_certify_zoo () =
  let zcat = Subql_workload.Zoo.catalog () in
  let render (certs, combined) =
    String.concat "\n"
      (List.map
         (fun c ->
           Format.asprintf "%a" An.pp_certified c)
         certs)
    ^ "\n--\n"
    ^ String.concat "\n" (List.map Diag.to_string combined)
  in
  let serial = An.certify_all ~domains:1 zcat Subql_workload.Zoo.queries in
  let parallel = An.certify_all ~domains:4 zcat Subql_workload.Zoo.queries in
  Alcotest.(check string) "byte-stable under domains" (render serial) (render parallel);
  List.iter
    (fun c ->
      Alcotest.(check int)
        (c.An.report.An.label ^ " certifies clean")
        0 (An.certified_errors c);
      match c.An.certificate with
      | Some cert ->
        Alcotest.(check bool)
          (c.An.report.An.label ^ " bound finite")
          true
          (Float.is_finite cert.Subql.Cost.bound)
      | None -> Alcotest.failf "%s: no certificate" c.An.report.An.label)
    (fst serial)

(* --- Diag.Scratch merge is scheduling-independent --------------------- *)

let test_scratch () =
  let d1 = Diag.error ~path:[ "A" ] ~code:"SCH001" "e" in
  let d2 = Diag.warning ~path:[ "B" ] ~code:"LNT001" "w" in
  let d3 = Diag.info ~path:[ "C" ] ~code:"ING001" "i" in
  let order1 =
    let s = [| Diag.Scratch.create (); Diag.Scratch.create () |] in
    Diag.Scratch.add s.(0) d2;
    Diag.Scratch.add_list s.(1) [ d3; d1 ];
    Diag.Scratch.merge s
  in
  let order2 =
    let s = [| Diag.Scratch.create (); Diag.Scratch.create (); Diag.Scratch.create () |] in
    Diag.Scratch.add s.(0) d1;
    Diag.Scratch.add s.(1) d3;
    Diag.Scratch.add s.(2) d2;
    Alcotest.(check int) "length counts adds" 1 (Diag.Scratch.length s.(2));
    Diag.Scratch.merge s
  in
  Alcotest.(check (list string)) "merge is buffer-order independent"
    (codes order1) (codes order2);
  Alcotest.(check (list string)) "merged in total order"
    [ "SCH001"; "LNT001"; "ING001" ] (codes order1)

(* --- Cross-query sharing still verifies ------------------------------- *)

let test_share_verified () =
  let zcat = Subql_workload.Zoo.catalog () in
  let queries =
    List.map Subql_workload.Zoo.find_query
      (match Subql_workload.Zoo.same_detail_templates with
      | a :: b :: c :: _ -> [ a; b; c ]
      | short -> short)
  in
  let report = Subql_mqo.Batch.run zcat queries in
  Alcotest.(check bool) "sharing survives the verifier" true
    (report.Subql_mqo.Batch.grouped >= 2)

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "seeded-defect corpus" `Quick test_corpus;
          Alcotest.test_case "guarded count condition" `Quick test_guarded_count_condition;
          Alcotest.test_case "query rules" `Quick test_query_rules;
          Alcotest.test_case "deterministic ordering" `Quick test_diag_order;
        ] );
      ( "nullability",
        [
          Alcotest.test_case "dataflow facts" `Quick test_nullability;
          Alcotest.test_case "3vl null semantics vs oracle" `Quick test_3vl_null_semantics;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "rewrite verifier" `Quick test_verifier;
          Alcotest.test_case "planner self-check gate" `Quick test_planner_gate;
          Alcotest.test_case "sharing verified" `Quick test_share_verified;
        ] );
      ("zoo", [ Alcotest.test_case "all templates clean" `Quick test_zoo_clean ]);
      ( "certificates",
        [
          Alcotest.test_case "merge lawfulness" `Quick test_mergeable;
          Alcotest.test_case "planner merge gate" `Quick test_merge_gate;
          Alcotest.test_case "delta maintainability" `Quick test_deltaable;
          Alcotest.test_case "interval soundness" `Quick test_intervals;
          Alcotest.test_case "certified admission" `Quick test_certified_admission;
          Alcotest.test_case "zoo certifies finite" `Quick test_certify_zoo;
          Alcotest.test_case "scratch merge determinism" `Quick test_scratch;
        ] );
    ]
