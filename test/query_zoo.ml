(* The zoo queries themselves live in Subql_workload.Zoo (shared with the
   benchmark harness); this module keeps the QCheck random-database
   generator the equivalence suites layer on top. *)

open Subql_relational

(* --- random database ------------------------------------------------- *)

let db_gen =
  let open QCheck2.Gen in
  let rows = list_size (int_range 0 14) (list_repeat 2 Helpers.Gen.value_with_nulls) in
  triple rows rows rows

let mk_catalog (orows, irows, jrows) =
  let mk cols rows =
    Relation.of_list
      (Schema.of_list (List.map (fun c -> Schema.attr c Value.Tint) cols))
      (List.map Array.of_list rows)
  in
  Catalog.of_list
    [
      ("O", mk [ "k"; "x" ] orows);
      ("I", mk [ "k"; "y" ] irows);
      ("J", mk [ "k"; "y" ] jrows);
    ]

(* --- the query zoo --------------------------------------------------- *)

let attr = Expr.attr

let q = Subql_workload.Zoo.q

let corr = Subql_workload.Zoo.corr

let local_i = Subql_workload.Zoo.local_i

let queries = Subql_workload.Zoo.queries
