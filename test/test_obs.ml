(* Observability: metrics registry semantics, trace spans and the
   Chrome exporter, and the EXPLAIN ANALYZE plan annotation — including
   the headline property that a coalesced GMDJ reports exactly one
   detail scan where the chained plan reports k. *)

open Subql_relational
open Subql_obs
module N = Subql_nested.Nested_ast

(* --- Metrics ------------------------------------------------------------ *)

let test_counters_gauges () =
  let r = Metrics.create () in
  let c = Metrics.counter r "requests" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value c);
  Alcotest.(check int) "find-or-create shares the instrument" 5
    (Metrics.counter_value (Metrics.counter r "requests"));
  Alcotest.(check int) "by-name read" 5 (Metrics.counter_value_by_name r "requests");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter_value_by_name r "nope");
  (match Metrics.incr ~by:(-1) c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment must be rejected");
  let g = Metrics.gauge r "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.)) "gauge holds last value" 3.5 (Metrics.gauge_value g);
  (match Metrics.gauge r "requests" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must be rejected");
  let snap = Metrics.snapshot r in
  Metrics.incr ~by:100 c;
  Alcotest.(check int) "snapshot is a deep copy" 5 (List.assoc "requests" snap.Metrics.counters);
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "reset zeroes gauges" 0. (Metrics.gauge_value g)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[ 5.; 1.; 2.; 2. ] r "lat" in
  (* Buckets are sorted and de-duplicated; upper bounds are closed, so a
     value equal to a bound lands in that bucket, and everything above
     the last bound lands in the implicit +inf bucket. *)
  List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 5.0; 7.0 ];
  let s =
    match (Metrics.snapshot r).Metrics.histograms with
    | [ ("lat", s) ] -> s
    | _ -> Alcotest.fail "expected exactly one histogram"
  in
  Alcotest.(check (array (float 0.))) "sorted bounds + overflow"
    [| 1.; 2.; 5.; infinity |] s.Metrics.upper_bounds;
  Alcotest.(check (array int)) "closed upper bounds" [| 1; 2; 1; 1 |] s.Metrics.bucket_counts;
  Alcotest.(check int) "count" 5 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 16.5 s.Metrics.sum;
  (match Metrics.histogram ~buckets:[] r "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty bucket list must be rejected");
  (* Re-registering ignores the new bucket list. *)
  let h2 = Metrics.histogram ~buckets:[ 1000. ] r "lat" in
  Metrics.observe h2 1.0;
  let s2 =
    match (Metrics.snapshot r).Metrics.histograms with
    | [ ("lat", s) ] -> s
    | _ -> Alcotest.fail "expected exactly one histogram"
  in
  Alcotest.(check int) "same instrument" 6 s2.Metrics.count

(* --- Per-domain scratch counters ---------------------------------------- *)

let test_scratch_semantics () =
  let s = Metrics.Scratch.create () in
  Metrics.Scratch.incr s "a";
  Metrics.Scratch.incr ~by:4 s "a";
  Alcotest.(check int) "delta accumulates" 5 (Metrics.Scratch.counter_value s "a");
  Alcotest.(check int) "unknown name reads 0" 0 (Metrics.Scratch.counter_value s "b");
  (match Metrics.Scratch.incr ~by:(-1) s "a" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment must be rejected");
  let r = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter r "a");
  Metrics.Scratch.merge_into r s;
  Alcotest.(check int) "merge folds into existing counters" 12
    (Metrics.counter_value_by_name r "a")

(* The headline parallel-safety property: 4 domains hammer their private
   scratches, the coordinator merges after the joins, and not a single
   count is lost — while the registry itself only ever saw single-domain
   writes. *)
let test_scratch_no_lost_counts_4_domains () =
  let r = Metrics.create () in
  let n = 4 and per = 25_000 in
  let workers =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let s = Metrics.Scratch.create () in
            for _ = 1 to per do
              Metrics.Scratch.incr s "work.items";
              Metrics.Scratch.incr ~by:2 s (Printf.sprintf "work.d%d" i)
            done;
            s))
  in
  Array.iter (fun d -> Metrics.Scratch.merge_into r (Domain.join d)) workers;
  Alcotest.(check int) "shared series: no count lost" (n * per)
    (Metrics.counter_value_by_name r "work.items");
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "per-domain series d%d complete" i)
      (2 * per)
      (Metrics.counter_value_by_name r (Printf.sprintf "work.d%d" i))
  done

(* --- Trace spans -------------------------------------------------------- *)

let with_tracing f =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    f

let test_span_nesting () =
  with_tracing (fun () ->
      let x =
        Trace.with_ ~attrs:[ ("phase", "outer") ] "parent" (fun () ->
            Trace.with_ "first" (fun () -> ());
            Trace.with_ "second" (fun () -> Trace.add_attr "rows" "7");
            41 + 1)
      in
      Alcotest.(check int) "with_ returns the thunk's value" 42 x;
      (match Trace.roots () with
      | [ p ] ->
        Alcotest.(check string) "root name" "parent" p.Trace.name;
        Alcotest.(check (list string)) "children in start order" [ "first"; "second" ]
          (List.map (fun s -> s.Trace.name) p.Trace.children);
        Alcotest.(check (option string)) "declared attr" (Some "outer")
          (List.assoc_opt "phase" p.Trace.attrs);
        let second = List.nth p.Trace.children 1 in
        Alcotest.(check (option string)) "late attr lands on the open span" (Some "7")
          (List.assoc_opt "rows" second.Trace.attrs);
        Alcotest.(check bool) "parent spans its children" true
          (p.Trace.dur_us +. 1e-6
          >= second.Trace.start_us +. second.Trace.dur_us -. p.Trace.start_us)
      | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots));
      (* A raising thunk still completes its span. *)
      (match Trace.with_ "boom" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      Alcotest.(check int) "raising span recorded" 2 (List.length (Trace.roots ())));
  (* Disabled tracing records nothing. *)
  Trace.clear ();
  Trace.with_ "ghost" (fun () -> ());
  Alcotest.(check int) "no-op when disabled" 0 (List.length (Trace.roots ()))

(* Trace state is domain-local: workers trace on their own domains
   (invisible to the coordinator until handed over), [drain_local] takes
   their completed roots, and [absorb] re-parents them under the
   coordinator's open span — the exchange join protocol. *)
let test_trace_domain_local_absorb () =
  with_tracing (fun () ->
      let handed =
        Trace.with_ "coordinator" (fun () ->
            let workers =
              Array.init 4 (fun i ->
                  Domain.spawn (fun () ->
                      Trace.with_ "invisible" (fun () -> ());
                      (* The coordinator's set_enabled did not leak here. *)
                      let leaked = List.length (Trace.roots ()) in
                      Trace.set_enabled true;
                      Trace.with_ (Printf.sprintf "worker-%d" i) (fun () ->
                          Trace.with_ "inner" (fun () -> ()));
                      (leaked, Trace.drain_local ())))
            in
            let spans =
              Array.to_list workers
              |> List.concat_map (fun d ->
                     let leaked, spans = Domain.join d in
                     Alcotest.(check int) "fresh domain starts disabled" 0 leaked;
                     spans)
            in
            Trace.absorb spans;
            List.length spans)
      in
      Alcotest.(check int) "each worker handed over one root" 4 handed;
      match Trace.roots () with
      | [ root ] ->
        Alcotest.(check string) "coordinator root" "coordinator" root.Trace.name;
        Alcotest.(check int) "worker spans re-parented under it" 4
          (List.length root.Trace.children);
        List.iter
          (fun c ->
            Alcotest.(check int) "worker structure preserved" 1
              (List.length c.Trace.children))
          root.Trace.children
      | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots))

(* --- A minimal strict JSON reader (the image has no JSON library; this
   is only what validating the exporter needs). ------------------------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "JSON error at byte %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
          Buffer.add_char buf c;
          advance ();
          go ()
        | Some 'n' | Some 't' | Some 'r' | Some 'b' | Some 'f' ->
          Buffer.add_char buf ' ';
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          Buffer.add_char buf '?';
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Jstr (string_lit ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value expected"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Jobj [])
    else
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((k, v) :: acc)
        | Some '}' ->
          advance ();
          Jobj (List.rev ((k, v) :: acc))
        | _ -> fail "expected , or }"
      in
      members []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      advance ();
      Jlist [])
    else
      let rec elements acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements (v :: acc)
        | Some ']' ->
          advance ();
          Jlist (List.rev (v :: acc))
        | _ -> fail "expected , or ]"
      in
      elements []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_export () =
  with_tracing (fun () ->
      Trace.with_ "outer" (fun () ->
          Trace.with_ ~attrs:[ ("k", "va\"l\\ue\n") ] "in ner" (fun () -> ()));
      Trace.with_ "solo" (fun () -> ());
      let events =
        match parse_json (Trace.to_chrome_json ()) with
        | Jlist events -> events
        | _ -> Alcotest.fail "exporter must produce a JSON array"
      in
      Alcotest.(check int) "one event per span" 3 (List.length events);
      List.iter
        (fun ev ->
          match ev with
          | Jobj fields ->
            let str k =
              match List.assoc_opt k fields with
              | Some (Jstr s) -> s
              | _ -> Alcotest.failf "event missing string field %S" k
            in
            let num k =
              match List.assoc_opt k fields with
              | Some (Jnum f) -> f
              | _ -> Alcotest.failf "event missing numeric field %S" k
            in
            Alcotest.(check string) "complete event" "X" (str "ph");
            ignore (str "name");
            ignore (num "ts");
            Alcotest.(check bool) "non-negative duration" true (num "dur" >= 0.);
            ignore (num "pid");
            ignore (num "tid")
          | _ -> Alcotest.fail "every event must be an object")
        events;
      let names =
        List.filter_map (function Jobj f -> List.assoc_opt "name" f | _ -> None) events
      in
      Alcotest.(check bool) "escaped attr survives the round trip" true
        (List.exists (function Jstr "in ner" -> true | _ -> false) names))

(* --- EXPLAIN ANALYZE: coalescing visible as 1 scan vs k ---------------- *)

let mk_catalog () =
  let c = Catalog.create () in
  Catalog.add c "User"
    (Relation.of_list
       (Schema.of_list [ Schema.attr "ip" Value.Tint ])
       (List.init 10 (fun i -> [| Value.Int i |])));
  Catalog.add c "Flow"
    (Relation.of_list
       (Schema.of_list [ Schema.attr "src" Value.Tint; Schema.attr "dst" Value.Tint ])
       (List.init 100 (fun i -> [| Value.Int (i mod 13); Value.Int ((i + 3) mod 7) |])));
  c

(* Two EXISTS over the same detail table — the coalescable shape of the
   paper's Figure 5. *)
let two_exists_query =
  N.query ~base:(N.table "User") ~alias:"u"
    (N.pand
       (N.exists
          ~where:(N.atom (Expr.eq (Expr.attr ~rel:"f" "src") (Expr.attr ~rel:"u" "ip")))
          (N.table "Flow") "f")
       (N.exists
          ~where:(N.atom (Expr.eq (Expr.attr ~rel:"g" "dst") (Expr.attr ~rel:"u" "ip")))
          (N.table "Flow") "g"))

let test_explain_analyze_coalescing () =
  let catalog = mk_catalog () in
  let chained_plan = Subql.Transform.to_algebra two_exists_query in
  let coalesced_plan =
    Subql.Optimize.optimize ~flags:(Subql.Optimize.only ~coalesce:true ()) chained_plan
  in
  let registry_scans () = Metrics.counter_value_by_name Metrics.default "gmdj.detail_passes" in
  let analyze plan =
    let before = registry_scans () in
    let result, tree = Subql.Eval.eval_analyzed catalog plan in
    (result, tree, registry_scans () - before)
  in
  let chained_result, chained_tree, chained_published = analyze chained_plan in
  let coalesced_result, coalesced_tree, coalesced_published = analyze coalesced_plan in
  Helpers.check_multiset_equal "same answers" chained_result coalesced_result;
  Alcotest.(check int) "chained plan: one scan per subquery" 2
    (Explain.sum_attr chained_tree "detail-scans");
  Alcotest.(check int) "coalesced plan: exactly one scan" 1
    (Explain.sum_attr coalesced_tree "detail-scans");
  Alcotest.(check int) "registry agrees (chained)" 2 chained_published;
  Alcotest.(check int) "registry agrees (coalesced)" 1 coalesced_published;
  (* The tree mirrors the work: both plans look at every detail row per
     scan, so the coalesced plan touches half the rows. *)
  Alcotest.(check int) "chained detail rows" 200
    (Explain.sum_attr chained_tree "detail-rows");
  Alcotest.(check int) "coalesced detail rows" 100
    (Explain.sum_attr coalesced_tree "detail-rows")

let test_explain_tree_shape () =
  let catalog = mk_catalog () in
  let plan = Subql.Optimize.optimize (Subql.Transform.to_algebra two_exists_query) in
  let result, tree = Subql.Eval.eval_analyzed catalog plan in
  Alcotest.(check int) "root rows-out is the result cardinality"
    (Relation.cardinality result) tree.Explain.rows_out;
  let nodes = Explain.fold (fun acc _ -> acc + 1) 0 tree in
  Alcotest.(check bool) "several operators" true (nodes >= 4);
  Alcotest.(check bool) "self times are non-negative" true
    (Explain.fold (fun ok n -> ok && n.Explain.elapsed_s >= 0.) true tree);
  Alcotest.(check bool) "total elapsed adds up" true (Explain.total_elapsed tree >= 0.);
  (* rows_in of every internal node equals its children's rows_out. *)
  Alcotest.(check bool) "rows_in consistent" true
    (Explain.fold
       (fun ok n ->
         ok
         && (n.Explain.children = []
            || n.Explain.rows_in
               = List.fold_left (fun a k -> a + k.Explain.rows_out) 0 n.Explain.children))
       true tree);
  (* The JSON rendering of the tree is itself well-formed. *)
  match parse_json (Json.to_string (Explain.to_json tree)) with
  | Jobj fields ->
    Alcotest.(check bool) "label present" true (List.mem_assoc "label" fields)
  | _ -> Alcotest.fail "Explain.to_json must produce an object"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "scratch delta semantics" `Quick test_scratch_semantics;
          Alcotest.test_case "scratch: no lost counts over 4 domains" `Quick
            test_scratch_no_lost_counts_4_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export;
          Alcotest.test_case "domain-local spans absorb at join" `Quick
            test_trace_domain_local_absorb;
        ] );
      ( "explain-analyze",
        [
          Alcotest.test_case "coalescing: 1 scan vs k" `Quick test_explain_analyze_coalescing;
          Alcotest.test_case "tree shape" `Quick test_explain_tree_shape;
        ] );
    ]
