(* Relational substrate: values, 3VL, schemas, expressions, aggregates,
   indexes and the operator suite. *)

open Subql_relational

let attr = Expr.attr

(* --- Bool3: Kleene algebra laws -------------------------------------- *)

let bool3_all = [ Bool3.True; Bool3.False; Bool3.Unknown ]

let bool3_gen = QCheck2.Gen.oneofl bool3_all

let test_bool3_tables () =
  let open Bool3 in
  Alcotest.(check bool) "t&&u" true (equal (and_ True Unknown) Unknown);
  Alcotest.(check bool) "f&&u" true (equal (and_ False Unknown) False);
  Alcotest.(check bool) "t||u" true (equal (or_ True Unknown) True);
  Alcotest.(check bool) "f||u" true (equal (or_ False Unknown) Unknown);
  Alcotest.(check bool) "not u" true (equal (not_ Unknown) Unknown);
  Alcotest.(check bool) "truncation" false (to_bool Unknown)

let bool3_props =
  let open Bool3 in
  [
    Helpers.qtest "de morgan" (QCheck2.Gen.pair bool3_gen bool3_gen) (fun (a, b) ->
        equal (not_ (and_ a b)) (or_ (not_ a) (not_ b)));
    Helpers.qtest "and commutes" (QCheck2.Gen.pair bool3_gen bool3_gen) (fun (a, b) ->
        equal (and_ a b) (and_ b a));
    Helpers.qtest "or distributes" (QCheck2.Gen.triple bool3_gen bool3_gen bool3_gen)
      (fun (a, b, c) -> equal (or_ a (and_ b c)) (and_ (or_ a b) (or_ a c)));
    Helpers.qtest "double negation" bool3_gen (fun a -> equal (not_ (not_ a)) a);
  ]

(* --- Value ------------------------------------------------------------ *)

let test_value_compare () =
  Alcotest.(check int) "null first" (-1)
    (compare (Value.compare Value.Null (Value.Int 0)) 0);
  Alcotest.(check bool) "int/float promote" true (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "hash consistent with promote" true
    (Value.hash (Value.Int 3) = Value.hash (Value.Float 3.0));
  Alcotest.(check bool) "null equal for grouping" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "cmp3 null is unknown" true
    (Value.cmp3 Value.Null (Value.Int 1) = None);
  (match Value.cmp3 (Value.Str "a") (Value.Int 1) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error on string vs int")

(* Float printing is canonical: both NaN payloads (the sign bit of a
   NaN is noise) print as "nan", negative zero keeps its sign, and the
   CSV cell form is bit-exact.  The engine's sort/group/dedup order
   relies on the matching [compare]/[hash] conventions. *)
let test_value_printing () =
  Alcotest.(check string) "nan" "nan" (Value.to_string (Value.Float Float.nan));
  Alcotest.(check string) "negative nan" "nan" (Value.to_string (Value.Float (-.Float.nan)));
  Alcotest.(check string) "inf" "inf" (Value.to_string (Value.Float Float.infinity));
  Alcotest.(check string) "-inf" "-inf" (Value.to_string (Value.Float Float.neg_infinity));
  Alcotest.(check string) "negative zero keeps its sign" "-0"
    (Value.to_string (Value.Float (-0.)));
  Alcotest.(check string) "csv nan is canonical" "nan"
    (Value.to_csv_string (Value.Float (-.Float.nan)));
  (* The documented total order: NaN equals itself and sits below every
     number; -0. and 0. are the same point, also under [hash]. *)
  Alcotest.(check bool) "NaN = NaN" true
    (Value.equal (Value.Float Float.nan) (Value.Float Float.nan));
  Alcotest.(check bool) "NaN below numbers" true
    (Value.compare (Value.Float Float.nan) (Value.Float neg_infinity) < 0);
  Alcotest.(check bool) "-0 = 0" true (Value.equal (Value.Float (-0.)) (Value.Float 0.));
  Alcotest.(check bool) "-0/0 hash together" true
    (Value.hash (Value.Float (-0.)) = Value.hash (Value.Float 0.));
  Alcotest.(check bool) "NaN hashes consistently" true
    (Value.hash (Value.Float Float.nan) = Value.hash (Value.Float (-.Float.nan)));
  (* CSV cells round-trip the awkward floats bit-for-bit (modulo the
     NaN payload, which [equal] already identifies). *)
  List.iter
    (fun f ->
      let v = Value.Float f in
      let round = Value.of_csv_string Value.Tfloat (Value.to_csv_string v) in
      Alcotest.(check bool)
        (Printf.sprintf "csv roundtrip %h" f)
        true
        (Value.equal round v && Value.is_null round = Value.is_null v))
    [ -0.; 0.1; Float.nan; Float.infinity; Float.neg_infinity; 1e-300; -1.5e300 ]

let test_value_arith () =
  Alcotest.(check bool) "div by zero is null" true (Value.is_null (Value.div (Value.Int 1) (Value.Int 0)));
  Alcotest.(check bool) "mod by zero is null" true
    (Value.is_null (Value.modulo (Value.Int 1) (Value.Int 0)));
  Alcotest.(check bool) "null propagates" true (Value.is_null (Value.add Value.Null (Value.Int 1)));
  Alcotest.(check bool) "mixed promotes" true
    (Value.equal (Value.add (Value.Int 1) (Value.Float 0.5)) (Value.Float 1.5))

let test_value_csv_roundtrip () =
  let cases =
    [
      (Value.Tint, Value.Int 42);
      (Value.Tint, Value.Null);
      (Value.Tfloat, Value.Float 3.25);
      (Value.Tstring, Value.Str "hello");
      (Value.Tbool, Value.Bool true);
    ]
  in
  List.iter
    (fun (ty, v) ->
      let round = Value.of_csv_string ty (Value.to_csv_string v) in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal round v && Value.is_null round = Value.is_null v))
    cases

(* --- Schema ----------------------------------------------------------- *)

let abc =
  Schema.of_list
    [ Schema.attr ~rel:"r" "a" Value.Tint; Schema.attr ~rel:"r" "b" Value.Tint; Schema.attr ~rel:"s" "a" Value.Tint ]

let test_schema_lookup () =
  Alcotest.(check int) "qualified" 2 (Schema.find abc ~rel:"s" "a");
  Alcotest.(check int) "bare unique" 1 (Schema.find abc "b");
  (match Schema.find abc "a" with
  | exception Schema.Ambiguous_attribute _ -> ()
  | _ -> Alcotest.fail "bare a should be ambiguous");
  (match Schema.find abc "zz" with
  | exception Schema.Unknown_attribute _ -> ()
  | _ -> Alcotest.fail "zz should be unknown");
  (match Schema.of_list [ Schema.attr "x" Value.Tint; Schema.attr "x" Value.Tint ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate attribute should be rejected")

let test_schema_fresh_name () =
  Alcotest.(check string) "fresh" "a_2" (Schema.fresh_name abc "a");
  Alcotest.(check string) "untouched" "zz" (Schema.fresh_name abc "zz")

let test_schema_rename () =
  let renamed = Schema.rename_rel "t" abc in
  Alcotest.(check int) "all requalified" 3
    (List.length (List.filter (fun a -> a.Schema.rel = "t") (Schema.to_list renamed)));
  Alcotest.(check bool) "rels" true (Schema.rels renamed = [ "t" ])

(* --- Expr ------------------------------------------------------------- *)

let rs =
  Schema.of_list [ Schema.attr ~rel:"r" "x" Value.Tint; Schema.attr ~rel:"r" "y" Value.Tint ]

let eval1 e row = Expr.compile rs e (Array.of_list row)

let test_expr_3vl () =
  let x = attr ~rel:"r" "x" and y = attr ~rel:"r" "y" in
  let v = eval1 (Expr.lt x y) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "cmp null -> unknown" true (Value.is_null v);
  let v = eval1 (Expr.and_ (Expr.lt x (Expr.int 0)) (Expr.lt x y)) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "false && unknown = false" true (Value.equal v (Value.Bool false));
  let v = eval1 (Expr.or_ (Expr.gt x (Expr.int 0)) (Expr.lt x y)) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "true || unknown = true" true (Value.equal v (Value.Bool true));
  let v = eval1 (Expr.Is_null y) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "is null" true (Value.equal v (Value.Bool true));
  let v = eval1 (Expr.Is_true (Expr.lt x y)) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "unknown is not true" true (Value.equal v (Value.Bool false));
  let v = eval1 (Expr.Not (Expr.Is_true (Expr.lt x y))) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "not(is-true unknown)" true (Value.equal v (Value.Bool true));
  let v = eval1 (Expr.Null_safe_eq (y, Expr.null)) [ Value.Int 1; Value.Null ] in
  Alcotest.(check bool) "null-safe eq" true (Value.equal v (Value.Bool true))

let test_expr_scoping () =
  (* Innermost frame wins for bare names; qualifiers disambiguate. *)
  let outer = Schema.of_list [ Schema.attr ~rel:"o" "x" Value.Tint ] in
  let inner = Schema.of_list [ Schema.attr ~rel:"i" "x" Value.Tint ] in
  let f = Expr.compile_frames [| outer; inner |] (attr "x") in
  let v = f [| [| Value.Int 1 |]; [| Value.Int 2 |] |] in
  Alcotest.(check bool) "bare resolves innermost" true (Value.equal v (Value.Int 2));
  let f = Expr.compile_frames [| outer; inner |] (attr ~rel:"o" "x") in
  let v = f [| [| Value.Int 1 |]; [| Value.Int 2 |] |] in
  Alcotest.(check bool) "qualified reaches outer" true (Value.equal v (Value.Int 1))

let test_expr_typecheck () =
  (match Expr.typecheck_bool [| rs |] (Expr.eq (attr ~rel:"r" "x") (Expr.str "s")) with
  | exception Value.Type_error _ -> ()
  | () -> Alcotest.fail "int = string should be rejected");
  (match Expr.typecheck_bool [| rs |] (attr ~rel:"r" "x") with
  | exception Value.Type_error _ -> ()
  | () -> Alcotest.fail "bare int is not a predicate");
  Expr.typecheck_bool [| rs |] (Expr.eq (attr ~rel:"r" "x") Expr.null)

let test_expr_split_equi () =
  let left = Schema.of_list [ Schema.attr ~rel:"l" "a" Value.Tint ] in
  let right = Schema.of_list [ Schema.attr ~rel:"r" "b" Value.Tint; Schema.attr ~rel:"r" "c" Value.Tint ] in
  let cond =
    Expr.conjoin
      [
        Expr.eq (attr ~rel:"l" "a") (attr ~rel:"r" "b");
        Expr.gt (attr ~rel:"r" "c") (Expr.int 0);
        Expr.ne (attr ~rel:"l" "a") (attr ~rel:"r" "c");
      ]
  in
  let pairs, residual = Expr.split_equi ~left ~right cond in
  Alcotest.(check (list (pair int int))) "one pair" [ (0, 0) ] pairs;
  Alcotest.(check bool) "residual has two conjuncts" true
    (match residual with Some r -> List.length (Expr.conjuncts r) = 2 | None -> false)

let test_expr_utilities () =
  let e = Expr.and_ (Expr.eq (attr ~rel:"a" "x") (attr ~rel:"b" "y")) (Expr.gt (attr "z") (Expr.int 1)) in
  Alcotest.(check (list string)) "qualifiers" [ "a"; "b" ] (Expr.qualifiers e);
  Alcotest.(check int) "attrs" 3 (List.length (Expr.attrs e));
  let e' = Expr.rewrite_qualifier ~from_rel:"a" ~to_rel:"q" e in
  Alcotest.(check (list string)) "rewritten" [ "q"; "b" ] (Expr.qualifiers e');
  Alcotest.(check bool) "equal reflexive" true (Expr.equal e e);
  Alcotest.(check bool) "not equal" false (Expr.equal e e')

(* --- Operators --------------------------------------------------------- *)

let rel_of cols rows name =
  Relation.rename name
    (Relation.of_list
       (Schema.of_list (List.map (fun c -> Schema.attr c Value.Tint) cols))
       (List.map Array.of_list rows))

let join_props =
  let gen =
    QCheck2.Gen.pair
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15)
         (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 15)
         (QCheck2.Gen.list_repeat 2 Helpers.Gen.value_with_nulls))
  in
  let cond =
    Expr.and_ (Expr.eq (attr ~rel:"l" "k") (attr ~rel:"r" "k"))
      (Expr.le (attr ~rel:"l" "v") (attr ~rel:"r" "v"))
  in
  let with_rels (lrows, rrows) f =
    f (rel_of [ "k"; "v" ] lrows "l") (rel_of [ "k"; "v" ] rrows "r")
  in
  [
    Helpers.qtest "hash join = nested loop join" gen (fun db ->
        with_rels db (fun l r ->
            Relation.equal_as_multiset
              (Ops.join ~strategy:`Hash cond l r)
              (Ops.join ~strategy:`Nested_loop cond l r)));
    Helpers.qtest "sort-merge join = nested loop join" gen (fun db ->
        with_rels db (fun l r ->
            Relation.equal_as_multiset
              (Ops.join ~strategy:`Sort_merge cond l r)
              (Ops.join ~strategy:`Nested_loop cond l r)));
    Helpers.qtest "sort-merge semi/anti = hash semi/anti" gen (fun db ->
        with_rels db (fun l r ->
            Relation.equal_as_multiset
              (Ops.semi_join ~strategy:`Sort_merge cond l r)
              (Ops.semi_join ~strategy:`Hash cond l r)
            && Relation.equal_as_multiset
                 (Ops.anti_join ~strategy:`Sort_merge cond l r)
                 (Ops.anti_join ~strategy:`Hash cond l r)));
    Helpers.qtest "hash outer join = nl outer join" gen (fun db ->
        with_rels db (fun l r ->
            Relation.equal_as_multiset
              (Ops.left_outer_join ~strategy:`Hash cond l r)
              (Ops.left_outer_join ~strategy:`Nested_loop cond l r)));
    Helpers.qtest "semi + anti partition the left" gen (fun db ->
        with_rels db (fun l r ->
            let semi = Ops.semi_join cond l r and anti = Ops.anti_join cond l r in
            Relation.equal_as_multiset l (Ops.union_all semi anti)));
    Helpers.qtest "outer join covers every left row" gen (fun db ->
        with_rels db (fun l r ->
            let oj = Ops.left_outer_join cond l r in
            let keys = Ops.project_cols [ (Some "l", "k"); (Some "l", "v") ] oj in
            Relation.equal_as_multiset (Ops.distinct keys) (Ops.distinct l)));
    Helpers.qtest "union = distinct union_all" gen (fun (lrows, rrows) ->
        let l = rel_of [ "k"; "v" ] lrows "t" and r = rel_of [ "k"; "v" ] rrows "t" in
        Relation.equal_as_multiset (Ops.union l r) (Ops.distinct (Ops.union_all l r)));
    Helpers.qtest "diff_all cancels one-for-one" gen (fun (lrows, rrows) ->
        let l = rel_of [ "k"; "v" ] lrows "t" and r = rel_of [ "k"; "v" ] rrows "t" in
        let d = Ops.diff_all l r in
        (* monus: |l - r| >= |l| - |r| and removing r again changes nothing new *)
        Relation.cardinality d >= Relation.cardinality l - Relation.cardinality r
        && Relation.cardinality d <= Relation.cardinality l);
  ]

let test_group_by () =
  let r =
    rel_of [ "k"; "v" ]
      Value.
        [
          [ Int 1; Int 10 ];
          [ Int 1; Int 20 ];
          [ Int 2; Null ];
          [ Null; Int 5 ];
          [ Null; Int 7 ];
        ]
      "t"
  in
  let g =
    Ops.group_by
      ~keys:[ (Some "t", "k") ]
      ~aggs:
        [
          Aggregate.count_star "n";
          Aggregate.sum (attr ~rel:"t" "v") "s";
          Aggregate.count (attr ~rel:"t" "v") "nv";
        ]
      r
  in
  Alcotest.(check int) "3 groups (NULL keys group together)" 3 (Relation.cardinality g);
  let by_key k =
    match
      Relation.fold (fun acc row -> if Value.equal row.(0) k then Some row else acc) None g
    with
    | Some row -> row
    | None -> Alcotest.failf "missing group %s" (Value.to_string k)
  in
  let g1 = by_key (Value.Int 1) in
  Alcotest.(check bool) "count" true (Value.equal g1.(1) (Value.Int 2));
  Alcotest.(check bool) "sum" true (Value.equal g1.(2) (Value.Int 30));
  let g2 = by_key (Value.Int 2) in
  Alcotest.(check bool) "sum of nulls is null" true (Value.is_null g2.(2));
  Alcotest.(check bool) "count of nulls is 0" true (Value.equal g2.(3) (Value.Int 0));
  let gn = by_key Value.Null in
  Alcotest.(check bool) "null group aggregates" true (Value.equal gn.(2) (Value.Int 12))

let test_aggregate_all_on_empty () =
  let r = rel_of [ "v" ] [] "t" in
  let a =
    Ops.aggregate_all
      [
        Aggregate.count_star "n";
        Aggregate.sum (attr ~rel:"t" "v") "s";
        Aggregate.min_ (attr ~rel:"t" "v") "mn";
        Aggregate.avg (attr ~rel:"t" "v") "av";
      ]
      r
  in
  Alcotest.(check int) "one row" 1 (Relation.cardinality a);
  let row = Relation.row a 0 in
  Alcotest.(check bool) "count 0" true (Value.equal row.(0) (Value.Int 0));
  Alcotest.(check bool) "sum null" true (Value.is_null row.(1));
  Alcotest.(check bool) "min null" true (Value.is_null row.(2));
  Alcotest.(check bool) "avg null" true (Value.is_null row.(3))

let test_distinct_and_sort () =
  let r = rel_of [ "v" ] Value.[ [ Int 2 ]; [ Null ]; [ Int 1 ]; [ Int 2 ]; [ Null ] ] "t" in
  Alcotest.(check int) "distinct groups nulls" 3 (Relation.cardinality (Ops.distinct r));
  let sorted = Ops.sort ~by:[ ((Some "t", "v"), `Asc) ] r in
  Alcotest.(check bool) "nulls sort first" true (Value.is_null (Relation.row sorted 0).(0));
  let desc = Ops.sort ~by:[ ((Some "t", "v"), `Desc) ] r in
  Alcotest.(check bool) "desc" true (Value.equal (Relation.row desc 0).(0) (Value.Int 2))

let test_add_rownum_and_limit () =
  let r = rel_of [ "v" ] Value.[ [ Int 5 ]; [ Int 6 ]; [ Int 7 ] ] "t" in
  let numbered = Ops.add_rownum "rid" r in
  Alcotest.(check bool) "rownum" true (Value.equal (Relation.row numbered 2).(1) (Value.Int 2));
  Alcotest.(check int) "limit" 2 (Relation.cardinality (Ops.limit 2 r));
  Alcotest.(check int) "limit over" 3 (Relation.cardinality (Ops.limit 10 r))

(* --- Index ------------------------------------------------------------- *)

let test_index_null_exclusion () =
  let r = rel_of [ "k"; "v" ] Value.[ [ Int 1; Int 0 ]; [ Null; Int 1 ]; [ Int 1; Int 2 ] ] "t" in
  let idx = Index.build r [| 0 |] in
  Alcotest.(check (list int)) "probe 1" [ 0; 2 ] (Index.probe idx [| Value.Int 1 |]);
  Alcotest.(check (list int)) "probe null finds nothing" [] (Index.probe idx [| Value.Null |]);
  Alcotest.(check int) "one distinct key" 1 (Index.cardinality idx)

(* --- Vec ---------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "fold" (4950 + 1000 - 42) (Vec.fold_left ( + ) 0 v);
  (match Vec.get v 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds");
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

(* --- CSV round trip ------------------------------------------------------ *)

let test_csv_roundtrip () =
  let r =
    Relation.of_list
      (Schema.of_list
         [
           Schema.attr ~rel:"t" "a" Value.Tint;
           Schema.attr ~rel:"t" "b" Value.Tstring;
           Schema.attr ~rel:"t" "c" Value.Tfloat;
         ])
      Value.
        [
          [| Int 1; Str "x"; Float 1.5 |];
          [| Null; Str "y"; Null |];
          [| Int (-3); Null; Float 0.25 |];
        ]
  in
  let path = Filename.temp_file "subql" ".csv" in
  Table_io.to_csv_file path r;
  let r' = Table_io.of_csv_file (Relation.schema r) path in
  Sys.remove path;
  Helpers.check_multiset_equal "csv roundtrip" r r'

let () =
  Alcotest.run "relational"
    [
      ("bool3", Alcotest.test_case "truth tables" `Quick test_bool3_tables :: bool3_props);
      ( "value",
        [
          Alcotest.test_case "compare/equal/hash" `Quick test_value_compare;
          Alcotest.test_case "canonical float printing" `Quick test_value_printing;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "csv cells" `Quick test_value_csv_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "fresh names" `Quick test_schema_fresh_name;
          Alcotest.test_case "rename" `Quick test_schema_rename;
        ] );
      ( "expr",
        [
          Alcotest.test_case "three-valued logic" `Quick test_expr_3vl;
          Alcotest.test_case "frame scoping" `Quick test_expr_scoping;
          Alcotest.test_case "typecheck" `Quick test_expr_typecheck;
          Alcotest.test_case "split equi" `Quick test_expr_split_equi;
          Alcotest.test_case "analysis utilities" `Quick test_expr_utilities;
        ] );
      ( "operators",
        [
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "aggregate over empty" `Quick test_aggregate_all_on_empty;
          Alcotest.test_case "distinct and sort" `Quick test_distinct_and_sort;
          Alcotest.test_case "rownum and limit" `Quick test_add_rownum_and_limit;
        ]
        @ join_props );
      ("index", [ Alcotest.test_case "null exclusion" `Quick test_index_null_exclusion ]);
      ("vec", [ Alcotest.test_case "basic operations" `Quick test_vec ]);
      ("io", [ Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip ]);
    ]
