(* The ingest subsystem: per-table catalog epochs, appendable tables,
   staleness policies, the delta-vs-recompute decision, and in-place
   repair of cached results. *)

open Subql_relational
module Ingest = Subql_ingest.Ingest
module Maintenance = Subql_ingest.Maintenance
module Cache = Subql_mqo.Result_cache
module Metrics = Subql_obs.Metrics
module Zoo = Subql_workload.Zoo

(* A hand-rolled zoo-shaped database small enough to reason about
   exactly: "not-exists" answers {o2, o3} (no I row with k=2 or 3). *)
let mini_catalog () =
  let rel cols rows =
    Relation.of_list
      (Schema.of_list (List.map (fun c -> Schema.attr c Value.Tint) cols))
      (List.map Array.of_list rows)
  in
  Catalog.of_list
    [
      ( "O",
        rel [ "k"; "x" ]
          [
            [ Value.Int 1; Value.Int 10 ];
            [ Value.Int 2; Value.Int 20 ];
            [ Value.Int 3; Value.Int 30 ];
          ] );
      ("I", rel [ "k"; "y" ] [ [ Value.Int 1; Value.Int 5 ] ]);
      ("J", rel [ "k"; "y" ] [ [ Value.Int 1; Value.Int 7 ] ]);
    ]

let row k y = [| Value.Int k; Value.Int y |]

let solo catalog q =
  Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra q))

let fp_of q = Subql_mqo.Batch.fingerprint (Subql_mqo.Batch.prepare q)

(* --- catalog epochs --------------------------------------------------- *)

let test_catalog_epochs () =
  let c = mini_catalog () in
  let e_i = Catalog.epoch c "I" and e_j = Catalog.epoch c "J" in
  Catalog.add c "I" (Catalog.find c "I");
  Alcotest.(check int) "re-registration bumps the table's epoch" (e_i + 1)
    (Catalog.epoch c "I");
  Alcotest.(check int) "other tables untouched" e_j (Catalog.epoch c "J");
  Alcotest.(check int) "unknown tables sit at zero" 0 (Catalog.epoch c "nope")

let test_append_bumps_epoch_once_per_batch () =
  let c = mini_catalog () in
  let cache = Cache.create ~min_cost:0. () in
  let ing = Ingest.create ~catalog:c ~cache () in
  let e0 = Catalog.epoch c "I" in
  ignore (Ingest.append ing ~table:"I" [| row 2 6; row 3 9; row 4 1 |]);
  Alcotest.(check int) "one epoch bump per batch, not per row" (e0 + 1)
    (Catalog.epoch c "I");
  Alcotest.(check (option int)) "appendable table tracks its rows" (Some 4)
    (Ingest.table_rows ing "I");
  Alcotest.(check int) "the catalog serves the grown relation" 4
    (Relation.cardinality (Catalog.find c "I"));
  (match Ingest.append ing ~table:"nope" [| row 1 1 |] with
  | exception Catalog.Unknown_table _ -> ()
  | _ -> Alcotest.fail "unknown table must be rejected");
  Ingest.close ing

(* --- epoch semantics: stale entries are never served ------------------ *)

let test_stale_entry_never_served () =
  let c = mini_catalog () in
  let registry = Metrics.create () in
  let cache = Cache.create ~min_cost:0. ~registry () in
  let ing = Ingest.create ~policy:Ingest.Recompute_on_miss ~catalog:c ~cache () in
  let fp = "stale-entry-test" in
  ignore (Cache.store cache ~fingerprint:fp ~cost:1e9 (Catalog.find c "O"));
  Alcotest.(check bool) "served while fresh" true (Option.is_some (Cache.lookup cache fp));
  ignore (Ingest.append ing ~table:"I" [| row 9 9 |]);
  (* Planners may peek at the stale body; queries must never get it. *)
  Alcotest.(check bool) "peek still sees the stale body" true
    (Option.is_some (Cache.peek cache fp));
  Alcotest.(check bool) "never served after the append" true
    (Option.is_none (Cache.lookup cache fp));
  Alcotest.(check int) "the drop is counted as an invalidation" 1
    (Metrics.counter_value_by_name registry "mqo.cache.invalidated");
  Ingest.close ing

(* --- repair and restamp ----------------------------------------------- *)

let test_repair_and_restamp () =
  let c = mini_catalog () in
  let cache = Cache.create ~min_cost:0. () in
  let q = Zoo.find_query "not-exists" in
  let fp = fp_of q in
  let ing = Ingest.create ~policy:Ingest.Maintain_on_write ~catalog:c ~cache () in
  ignore (Ingest.register_query ing q);
  ignore (Subql_mqo.Batch.run ~cache c [ q ]);
  (* An append to the detail table re-answers the plan and restamps the
     entry in place — the next lookup is a hit with the new answer. *)
  ignore (Ingest.append ing ~table:"I" [| row 2 6 |]);
  (match Cache.lookup cache fp with
  | None -> Alcotest.fail "entry was dropped instead of repaired"
  | Some rel ->
    if not (Relation.equal_as_multiset (solo c q) rel) then
      Alcotest.fail "repaired entry differs from recomputation");
  (* An append to a table the plan never reads only restamps. *)
  (match Ingest.append ing ~table:"J" [| row 5 5 |] with
  | Some rep ->
    Alcotest.(check int) "restamped, not recomputed" 1 rep.Maintenance.restamped;
    Alcotest.(check int) "no recompute" 0 rep.Maintenance.recomputed
  | None -> Alcotest.fail "maintain-on-write append must report");
  Alcotest.(check bool) "still served after the unrelated append" true
    (Option.is_some (Cache.lookup cache fp));
  (* Repair is not admission. *)
  Alcotest.(check bool) "repair refuses unknown fingerprints" false
    (Cache.repair cache ~fingerprint:"absent" (Catalog.find c "O"));
  Ingest.close ing

(* --- staleness policies ----------------------------------------------- *)

let test_policy_spellings () =
  Alcotest.(check bool) "CLI spellings resolve" true
    (Ingest.policy_of_string "on-write" = Some Ingest.Maintain_on_write
    && Ingest.policy_of_string "on-read" = Some Ingest.Maintain_on_read
    && Ingest.policy_of_string "recompute" = Some Ingest.Recompute_on_miss
    && Ingest.policy_of_string "bogus" = None)

let test_maintain_on_read_is_lazy () =
  let c = mini_catalog () in
  let cache = Cache.create ~min_cost:0. () in
  let ing = Ingest.create ~policy:Ingest.Maintain_on_read ~catalog:c ~cache () in
  let q = Zoo.find_query "not-exists" in
  ignore (Ingest.register_query ing q);
  ignore (Subql_mqo.Batch.run ~cache c [ q ]);
  Alcotest.(check bool) "clean before any append" false (Ingest.dirty ing);
  (match Ingest.append ing ~table:"I" [| row 2 6 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "on-read append must defer maintenance");
  Alcotest.(check bool) "append marks dirty" true (Ingest.dirty ing);
  Ingest.before_batch ing ~now:0.;
  Alcotest.(check bool) "the serving hook repairs" false (Ingest.dirty ing);
  (* The repaired entry serves the post-append answer. *)
  (match Cache.lookup cache (fp_of q) with
  | None -> Alcotest.fail "hook did not repair the entry"
  | Some rel ->
    if not (Relation.equal_as_multiset (solo c q) rel) then
      Alcotest.fail "lazily repaired entry differs from recomputation");
  (* Back-to-back appends coalesce into one repair per view. *)
  ignore (Ingest.append ing ~table:"I" [| row 3 1 |]);
  ignore (Ingest.append ing ~table:"I" [| row 4 2 |]);
  (match Ingest.sync ing with
  | Some rep ->
    Alcotest.(check int) "one refresh covers both appends" 1
      (rep.Maintenance.delta_maintained + rep.Maintenance.recomputed)
  | None -> Alcotest.fail "dirty sync must report");
  Alcotest.(check bool) "sync with nothing pending is a no-op" true
    (Ingest.sync ing = None);
  Ingest.close ing

(* --- the delta-vs-recompute decision ---------------------------------- *)

let test_delta_decision_is_cost_based () =
  let run ~delta_row_cost =
    let catalog = Zoo.catalog ~outer:16 ~inner:2_000 ~seed:5L () in
    let cache = Cache.create ~min_cost:0. () in
    let ing =
      Ingest.create ~policy:Ingest.Maintain_on_write ~delta_row_cost ~catalog ~cache ()
    in
    let q = Zoo.find_query "not-exists" in
    ignore (Ingest.register_query ing q);
    ignore (Subql_mqo.Batch.run ~cache catalog [ q ]);
    (* First append builds the accumulators (a full rebuild)... *)
    ignore (Ingest.append ing ~table:"I" (Zoo.detail_rows ~seed:1L 20));
    (* ...the second is where the planner has a real choice. *)
    let r = Option.get (Ingest.append ing ~table:"I" (Zoo.detail_rows ~seed:2L 20)) in
    let served =
      match Cache.lookup cache (fp_of q) with
      | Some rel -> Relation.equal_as_multiset (solo catalog q) rel
      | None -> false
    in
    Ingest.close ing;
    (r, served)
  in
  let cheap, served = run ~delta_row_cost:0.5 in
  Alcotest.(check int) "cheap per-row cost folds the delta" 1
    cheap.Maintenance.delta_maintained;
  Alcotest.(check int) "exactly the appended rows folded" 20 cheap.Maintenance.delta_rows;
  Alcotest.(check bool) "folding avoided a full detail scan" true
    (cheap.Maintenance.avoided_rows > 1_000);
  Alcotest.(check bool) "delta-maintained entry equals recompute" true served;
  let costly, served = run ~delta_row_cost:1e12 in
  Alcotest.(check int) "prohibitive per-row cost recomputes" 1
    costly.Maintenance.recomputed;
  Alcotest.(check int) "no delta folded" 0 costly.Maintenance.delta_maintained;
  Alcotest.(check bool) "recomputed entry equals recompute" true served

(* --- widened delta maintenance: row-local detail chains ---------------- *)

(* The "exists" template carries the local predicate [i.y > 2], so its
   registered plan filters the detail side: Select over I under the MD.
   The old single-MD pattern match refused any non-bare detail and
   recomputed on every append; the effect analysis proves the chain
   row-local and delta-maintains it, replaying the filter on just the
   appended suffix. *)
let test_widened_detail_chain () =
  let catalog = Zoo.catalog ~outer:16 ~inner:2_000 ~seed:5L () in
  let cache = Cache.create ~min_cost:0. () in
  let ing =
    Ingest.create ~policy:Ingest.Maintain_on_write ~delta_row_cost:0.5 ~catalog ~cache ()
  in
  let q = Zoo.find_query "exists" in
  let fp = fp_of q in
  ignore (Ingest.register_query ing q);
  let maint = Ingest.maintenance ing in
  Alcotest.(check bool) "filtered detail chain is maintainable" true
    (Maintenance.is_maintainable maint ~fingerprint:fp);
  Alcotest.(check (list string)) "no ING refusals" []
    (List.map
       (fun d -> d.Diag.code)
       (Maintenance.why_not_maintainable maint ~fingerprint:fp));
  ignore (Subql_mqo.Batch.run ~cache catalog [ q ]);
  (* the first append rebuilds the accumulators; the second is a real
     delta fold through the Select chain *)
  ignore (Ingest.append ing ~table:"I" (Zoo.detail_rows ~seed:1L 25));
  let r = Option.get (Ingest.append ing ~table:"I" (Zoo.detail_rows ~seed:2L 25)) in
  Alcotest.(check int) "delta-maintained, not recomputed" 1
    r.Maintenance.delta_maintained;
  Alcotest.(check int) "no recompute" 0 r.Maintenance.recomputed;
  Alcotest.(check bool) "folded at most the appended suffix" true
    (r.Maintenance.delta_rows <= 25);
  Alcotest.(check bool) "avoided rescanning the detail table" true
    (r.Maintenance.avoided_rows > 1_000);
  (match Cache.lookup cache fp with
  | None -> Alcotest.fail "entry not served after the delta fold"
  | Some rel ->
    Alcotest.(check bool) "delta-folded entry equals recompute" true
      (Relation.equal_as_multiset (solo catalog q) rel));
  (* a shape the analysis still refuses explains itself with ING codes *)
  let nested = Zoo.find_query "linear-nesting" in
  ignore (Ingest.register_query ing nested);
  Alcotest.(check bool) "nested-MD plan still refused" false
    (Maintenance.is_maintainable maint ~fingerprint:(fp_of nested));
  Alcotest.(check bool) "refusal explains itself" true
    (Maintenance.why_not_maintainable maint ~fingerprint:(fp_of nested) <> []);
  Ingest.close ing

(* --- metrics ----------------------------------------------------------- *)

let test_metrics_surfaced () =
  let registry = Metrics.create () in
  let c = mini_catalog () in
  let cache = Cache.create ~min_cost:0. ~registry () in
  let ing = Ingest.create ~registry ~catalog:c ~cache () in
  let q = Zoo.find_query "not-exists" in
  ignore (Ingest.register_query ing q);
  ignore (Subql_mqo.Batch.run ~cache c [ q ]);
  ignore (Ingest.append ing ~table:"I" [| row 2 6 |]);
  ignore (Ingest.append ing ~table:"I" [| row 3 6; row 4 1 |]);
  let v name = Metrics.counter_value_by_name registry name in
  Alcotest.(check int) "ingest.rows_appended" 3 (v "ingest.rows_appended");
  Alcotest.(check int) "ingest.batches" 2 (v "ingest.batches");
  Alcotest.(check int) "mqo.cache.repaired" 2 (v "mqo.cache.repaired");
  Alcotest.(check bool) "maintenance decisions counted" true
    (v "ingest.maintain.delta" + v "ingest.maintain.recompute"
     + v "ingest.maintain.restamp"
    >= 2);
  Ingest.close ing

let () =
  Alcotest.run "ingest"
    [
      ( "epochs",
        [
          Alcotest.test_case "catalog epochs are per table" `Quick test_catalog_epochs;
          Alcotest.test_case "append bumps once per batch" `Quick
            test_append_bumps_epoch_once_per_batch;
          Alcotest.test_case "stale entries are never served" `Quick
            test_stale_entry_never_served;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "repair in place, restamp when unrelated" `Quick
            test_repair_and_restamp;
          Alcotest.test_case "delta vs recompute is cost-based" `Quick
            test_delta_decision_is_cost_based;
          Alcotest.test_case "row-local detail chains delta-maintain" `Quick
            test_widened_detail_chain;
        ] );
      ( "policies",
        [
          Alcotest.test_case "CLI spellings" `Quick test_policy_spellings;
          Alcotest.test_case "maintain-on-read defers to the read path" `Quick
            test_maintain_on_read_is_lazy;
        ] );
      ("metrics", [ Alcotest.test_case "counters surfaced" `Quick test_metrics_surfaced ]);
    ]
