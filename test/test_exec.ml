(* Tests for the streaming chunk executor.

   The four public entry points ([eval], [eval_exec], [eval_analyzed],
   [eval_traced]) are thin wrappers over one skeleton — so they must
   agree on every zoo query, under both physical configurations, whether
   tables arrive as catalog relations or as anonymous chunk streams.  A
   heap-file-backed run must additionally stay within a peak that does
   not track the detail cardinality, and [eval_with_overrides] must
   reject overrides whose schema contradicts the node (EVL001). *)

open Subql_relational
module Zoo = Subql_workload.Zoo

let plan q = Subql.Optimize.optimize (Subql.Transform.to_algebra q)

(* Tables as small anonymous chunk streams: [Chunk.Source.map] drops the
   whole-relation origin, forcing every operator down its genuinely
   chunked path instead of the zero-copy shortcut. *)
let chunked_sources catalog table =
  Catalog.find_opt catalog table
  |> Option.map (fun rel ->
         Chunk.Source.map Fun.id (Chunk.Source.of_relation ~chunk_rows:5 rel))

let test_entry_points_agree () =
  let catalog = Zoo.catalog () in
  List.iter
    (fun (name, q) ->
      let p = plan q in
      let reference = Subql.Eval.eval catalog p in
      Helpers.check_multiset_equal (name ^ ": eager analyzed driver") reference
        (fst (Subql.Eval.eval_analyzed catalog p));
      Helpers.check_multiset_equal (name ^ ": traced driver") reference
        (fst (Subql.Eval.eval_traced catalog p));
      Helpers.check_multiset_equal (name ^ ": chunked sources") reference
        (fst (Subql.Eval.eval_exec ~sources:(chunked_sources catalog) catalog p));
      Helpers.check_multiset_equal (name ^ ": unindexed config") reference
        (Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog p);
      Helpers.check_multiset_equal (name ^ ": unindexed chunked") reference
        (fst
           (Subql.Eval.eval_exec ~config:Subql.Eval.unindexed_config
              ~sources:(chunked_sources catalog) catalog p)))
    Zoo.queries

(* Stream the detail table I off a heap file through a 4-frame pool: the
   same-detail templates must produce the in-memory result while the
   executor's peak stays far below the detail cardinality. *)
let test_heap_streaming_bounded () =
  let inner = 4000 in
  let catalog = Zoo.catalog ~outer:32 ~inner () in
  let path = Filename.temp_file "subql_exec_test" ".heap" in
  let hf = Subql_storage.Heap_file.write ~path (Catalog.find catalog "I") in
  Fun.protect
    ~finally:(fun () ->
      Subql_storage.Heap_file.close hf;
      Sys.remove path)
    (fun () ->
      let pool = Subql_storage.Buffer_pool.create ~frames:4 in
      List.iter
        (fun name ->
          let p = plan (Zoo.find_query name) in
          let sources table =
            if table = "I" then Some (Subql_storage.Heap_file.source hf ~pool) else None
          in
          let streamed, report = Subql.Eval.eval_exec ~sources catalog p in
          Helpers.check_multiset_equal (name ^ ": heap-streamed result")
            (Subql.Eval.eval catalog p) streamed;
          Alcotest.(check bool)
            (name ^ ": peak below detail cardinality")
            true
            (report.Subql.Eval.peak_materialized_rows < inner / 2);
          Alcotest.(check bool) (name ^ ": chunks counted") true (report.Subql.Eval.chunks > 0))
        Zoo.same_detail_templates)

(* Override validation: a well-typed override splices in transparently;
   one whose schema contradicts the node's inferred schema is rejected
   with a structured EVL001 diagnostic, not a downstream crash. *)
let test_override_schema_validation () =
  let catalog = Zoo.catalog ~outer:16 ~inner:64 () in
  let p = plan (Zoo.find_query "exists") in
  let good = function
    | Subql.Algebra.Table "O" -> Some (Catalog.find catalog "O")
    | _ -> None
  in
  Helpers.check_multiset_equal "well-typed override accepted" (Subql.Eval.eval catalog p)
    (Subql.Eval.eval_with_overrides ~override:good catalog p);
  let bad = function
    | Subql.Algebra.Table "O" -> Some (Catalog.find catalog "I")
    | _ -> None
  in
  match Subql.Eval.eval_with_overrides ~override:bad catalog p with
  | _ -> Alcotest.fail "wrong-schema override must be rejected"
  | exception Diag.Fail d -> Alcotest.(check string) "diagnostic code" "EVL001" d.Diag.code

let () =
  Alcotest.run "exec"
    [
      ( "streaming",
        [
          Alcotest.test_case "entry points agree over the zoo" `Quick test_entry_points_agree;
          Alcotest.test_case "heap-file detail stays bounded" `Quick
            test_heap_streaming_bounded;
        ] );
      ( "overrides",
        [
          Alcotest.test_case "schema validation (EVL001)" `Quick
            test_override_schema_validation;
        ] );
    ]
