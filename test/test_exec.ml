(* Tests for the streaming chunk executor.

   The four public entry points ([eval], [eval_exec], [eval_analyzed],
   [eval_traced]) are thin wrappers over one skeleton — so they must
   agree on every zoo query, under both physical configurations, whether
   tables arrive as catalog relations or as anonymous chunk streams.  A
   heap-file-backed run must additionally stay within a peak that does
   not track the detail cardinality, and [eval_with_overrides] must
   reject overrides whose schema contradicts the node (EVL001). *)

open Subql_relational
module Zoo = Subql_workload.Zoo

let plan q = Subql.Optimize.optimize (Subql.Transform.to_algebra q)

(* Tables as small anonymous chunk streams: [Chunk.Source.map] drops the
   whole-relation origin, forcing every operator down its genuinely
   chunked path instead of the zero-copy shortcut. *)
let chunked_sources catalog table =
  Catalog.find_opt catalog table
  |> Option.map (fun rel ->
         Chunk.Source.map Fun.id (Chunk.Source.of_relation ~chunk_rows:5 rel))

let test_entry_points_agree () =
  let catalog = Zoo.catalog () in
  List.iter
    (fun (name, q) ->
      let p = plan q in
      let reference = Subql.Eval.eval catalog p in
      Helpers.check_multiset_equal (name ^ ": eager analyzed driver") reference
        (fst (Subql.Eval.eval_analyzed catalog p));
      Helpers.check_multiset_equal (name ^ ": traced driver") reference
        (fst (Subql.Eval.eval_traced catalog p));
      Helpers.check_multiset_equal (name ^ ": chunked sources") reference
        (fst (Subql.Eval.eval_exec ~sources:(chunked_sources catalog) catalog p));
      Helpers.check_multiset_equal (name ^ ": unindexed config") reference
        (Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog p);
      Helpers.check_multiset_equal (name ^ ": unindexed chunked") reference
        (fst
           (Subql.Eval.eval_exec ~config:Subql.Eval.unindexed_config
              ~sources:(chunked_sources catalog) catalog p)))
    Zoo.queries

(* Stream the detail table I off a heap file through a 4-frame pool: the
   same-detail templates must produce the in-memory result while the
   executor's peak stays far below the detail cardinality. *)
let test_heap_streaming_bounded () =
  let inner = 4000 in
  let catalog = Zoo.catalog ~outer:32 ~inner () in
  let path = Filename.temp_file "subql_exec_test" ".heap" in
  let hf = Subql_storage.Heap_file.write ~path (Catalog.find catalog "I") in
  Fun.protect
    ~finally:(fun () ->
      Subql_storage.Heap_file.close hf;
      Sys.remove path)
    (fun () ->
      let pool = Subql_storage.Buffer_pool.create ~frames:4 in
      List.iter
        (fun name ->
          let p = plan (Zoo.find_query name) in
          let sources table =
            if table = "I" then Some (Subql_storage.Heap_file.source hf ~pool) else None
          in
          let streamed, report = Subql.Eval.eval_exec ~sources catalog p in
          Helpers.check_multiset_equal (name ^ ": heap-streamed result")
            (Subql.Eval.eval catalog p) streamed;
          Alcotest.(check bool)
            (name ^ ": peak below detail cardinality")
            true
            (report.Subql.Eval.peak_materialized_rows < inner / 2);
          Alcotest.(check bool) (name ^ ": chunks counted") true (report.Subql.Eval.chunks > 0))
        Zoo.same_detail_templates)

(* Override validation: a well-typed override splices in transparently;
   one whose schema contradicts the node's inferred schema is rejected
   with a structured EVL001 diagnostic, not a downstream crash. *)
let test_override_schema_validation () =
  let catalog = Zoo.catalog ~outer:16 ~inner:64 () in
  let p = plan (Zoo.find_query "exists") in
  let good = function
    | Subql.Algebra.Table "O" -> Some (Catalog.find catalog "O")
    | _ -> None
  in
  Helpers.check_multiset_equal "well-typed override accepted" (Subql.Eval.eval catalog p)
    (Subql.Eval.eval_with_overrides ~override:good catalog p);
  let bad = function
    | Subql.Algebra.Table "O" -> Some (Catalog.find catalog "I")
    | _ -> None
  in
  match Subql.Eval.eval_with_overrides ~override:bad catalog p with
  | _ -> Alcotest.fail "wrong-schema override must be rejected"
  | exception Diag.Fail d -> Alcotest.(check string) "diagnostic code" "EVL001" d.Diag.code

(* --- Parallel exchange execution -------------------------------------- *)

let parallel_config domains = { Subql.Eval.default_config with Subql.Eval.domains }

let spill_config budget =
  { Subql.Eval.default_config with Subql.Eval.spill_budget_rows = Some budget }

(* Every zoo query, at 2 and 4 domains, whether inputs are catalog
   relations or anonymous chunk streams, must be multiset-equal to the
   serial evaluation — exchange routing and accumulator merging are
   invisible in the answer. *)
let test_parallel_agrees_with_serial () =
  let catalog = Zoo.catalog () in
  List.iter
    (fun (name, q) ->
      let p = plan q in
      let reference = Subql.Eval.eval catalog p in
      List.iter
        (fun domains ->
          Helpers.check_multiset_equal
            (Printf.sprintf "%s: %d domains" name domains)
            reference
            (Subql.Eval.eval ~config:(parallel_config domains) catalog p);
          Helpers.check_multiset_equal
            (Printf.sprintf "%s: %d domains, chunked sources" name domains)
            reference
            (fst
               (Subql.Eval.eval_exec ~config:(parallel_config domains)
                  ~sources:(chunked_sources catalog) catalog p)))
        [ 2; 4 ])
    Zoo.queries

(* Exchange accounting: with 4 workers pulling a genuinely chunked
   stream, the workers between them see every row exactly once, and the
   merged scratches land the same total in the registry's
   [exchange.rows] series. *)
let test_exchange_row_accounting () =
  let rows = 1000 in
  let catalog = Zoo.catalog ~outer:8 ~inner:rows () in
  let rel = Catalog.find catalog "I" in
  let src () = Chunk.Source.map Fun.id (Chunk.Source.of_relation ~chunk_rows:7 rel) in
  let registry_rows () =
    Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default "exchange.rows"
  in
  let before = registry_rows () in
  let counts =
    Chunk.Exchange.fold ~domains:4
      ~init:(fun _ -> 0)
      ~fold:(fun acc chunk -> acc + Chunk.length chunk)
      ~finish:Fun.id (src ())
  in
  Alcotest.(check int) "4 workers" 4 (List.length counts);
  Alcotest.(check int) "round-robin: workers saw every row once" rows
    (List.fold_left ( + ) 0 counts);
  Alcotest.(check int) "no exchange.rows count lost" rows (registry_rows () - before);
  (* Hash partitioning: equal keys always meet on the same worker, so the
     per-worker key sets are pairwise disjoint. *)
  let key t = match t.(0) with Value.Int k -> k | _ -> 0 in
  let keysets =
    Chunk.Exchange.fold ~domains:4
      ~partition:(fun t -> key t)
      ~init:(fun _ -> Hashtbl.create 64)
      ~fold:(fun seen chunk ->
        Chunk.iter (fun t -> Hashtbl.replace seen (key t) ()) chunk;
        seen)
      ~finish:Fun.id (src ())
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Hashtbl.iter
              (fun k () ->
                if Hashtbl.mem b k then
                  Alcotest.failf "key %d met on workers %d and %d" k i j)
              a)
        keysets)
    keysets

(* The optimizer rewrites EXISTS-style zoo queries to [Md_completed]
   (completion rules, Thms 4.1–4.2) — that path must also ride the
   exchange when domains are configured, pushing every detail row
   through a worker exactly once. *)
let test_completed_plans_ride_the_exchange () =
  let inner = 600 in
  let catalog = Zoo.catalog ~outer:16 ~inner () in
  let p = plan (Zoo.find_query "exists") in
  let registry_rows () =
    Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default "exchange.rows"
  in
  let reference = Subql.Eval.eval catalog p in
  let before = registry_rows () in
  Helpers.check_multiset_equal "exists: 4 domains" reference
    (Subql.Eval.eval ~config:(parallel_config 4) catalog p);
  Alcotest.(check int) "whole detail crossed the exchange" inner
    (registry_rows () - before)

(* --- Spill-to-disk pipeline breakers ----------------------------------- *)

let temp_spill_files () =
  Sys.readdir (Filename.get_temp_dir_name ())
  |> Array.to_list
  |> List.filter (fun f -> String.starts_with ~prefix:"subql_spill" f)
  |> List.sort String.compare

(* Forcing breaker state through temp heap files — down to a 1-row
   resident budget — must not change any answer, must actually spill on
   the join-bearing plans, and must leave no temp file behind. *)
let test_spill_agrees_and_cleans_up () =
  let catalog = Zoo.catalog ~outer:24 ~inner:400 () in
  let files_before = temp_spill_files () in
  let spills () =
    Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default "exec.spills"
  in
  let spilled_before = spills () in
  List.iter
    (fun (name, q) ->
      (* The GMDJ translation never spills (its state is |B|-bounded);
         the unnest plans carry the joins the spill path exists for. *)
      let plans =
        (Printf.sprintf "%s/gmdj" name, plan q)
        :: (match Subql_unnest.Unnest.best catalog q with
           | p -> [ (Printf.sprintf "%s/unnest" name, p) ]
           | exception _ -> [])
      in
      List.iter
        (fun (label, p) ->
          let reference = Subql.Eval.eval catalog p in
          List.iter
            (fun budget ->
              Helpers.check_multiset_equal
                (Printf.sprintf "%s: spill budget %d" label budget)
                reference
                (Subql.Eval.eval ~config:(spill_config budget) catalog p))
            [ 1; 7; 64 ])
        plans)
    Zoo.queries;
  Alcotest.(check bool) "tiny budgets actually spilled" true (spills () > spilled_before);
  Alcotest.(check (list string)) "no temp heap file left behind" files_before
    (temp_spill_files ())

(* Spill and exchange compose: an explicit budget wins at the breakers
   (serial spilling), while everything else still rides the exchange. *)
let test_spill_with_domains () =
  let catalog = Zoo.catalog ~outer:24 ~inner:400 () in
  List.iter
    (fun (name, q) ->
      let p = plan q in
      let config =
        { Subql.Eval.default_config with
          Subql.Eval.domains = 4;
          spill_budget_rows = Some 8
        }
      in
      Helpers.check_multiset_equal
        (name ^ ": 4 domains + 8-row spill budget")
        (Subql.Eval.eval catalog p)
        (Subql.Eval.eval ~config catalog p))
    Zoo.queries

let () =
  Alcotest.run "exec"
    [
      ( "streaming",
        [
          Alcotest.test_case "entry points agree over the zoo" `Quick test_entry_points_agree;
          Alcotest.test_case "heap-file detail stays bounded" `Quick
            test_heap_streaming_bounded;
        ] );
      ( "overrides",
        [
          Alcotest.test_case "schema validation (EVL001)" `Quick
            test_override_schema_validation;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "parallel agrees with serial over the zoo" `Quick
            test_parallel_agrees_with_serial;
          Alcotest.test_case "exchange row accounting" `Quick test_exchange_row_accounting;
          Alcotest.test_case "completed plans ride the exchange" `Quick
            test_completed_plans_ride_the_exchange;
        ] );
      ( "spill",
        [
          Alcotest.test_case "spill agrees and cleans up temp files" `Quick
            test_spill_agrees_and_cleans_up;
          Alcotest.test_case "spill composes with domains" `Quick test_spill_with_domains;
        ] );
    ]
