(* The typed schema layer: derived accessors, the embedded DSL, and
   code generation.

   The load-bearing property is DSL/SQL front-end agreement: every zoo
   template rebuilt in the DSL must elaborate to an AST with the same
   MQO fingerprint as the hand-written (SQL-shaped) original, and must
   evaluate to the same relation through the full optimize/plan/eval
   pipeline.  The acceptance floor is 12 of the 24 templates; the DSL
   expresses all 24. *)

open Subql_relational
open Subql_typed
module N = Subql_nested.Nested_ast
module Zoo = Subql_workload.Zoo
module Fp = Subql_mqo.Fingerprint

(* Small enough that the naive-evaluation oracle stays fast, big enough
   that every template returns a non-trivial answer. *)
let catalog = Zoo.catalog ~outer:16 ~inner:256 ~seed:5L ()

let o_tbl = Derive.of_catalog catalog "O"

let i_tbl = Derive.of_catalog catalog "I"

let j_tbl = Derive.of_catalog catalog "J"

(* Zoo cells are 5% NULL, so the instance-derived nullability is
   [nullable]; the [_opt] lookups accept either. *)
let ok = Derive.int_opt o_tbl "k"

let ox = Derive.int_opt o_tbl "x"

let ik = Derive.int_opt i_tbl "k"

let iy = Derive.int_opt i_tbl "y"

let jk = Derive.int_opt j_tbl "k"

let jy = Derive.int_opt j_tbl "y"

(* Every zoo template, rebuilt with the typed combinators.  Correlation
   is host-language scoping: an inner callback simply uses an enclosing
   scope's variable. *)
let dsl_queries : (string * Dsl.query) list =
  let open Dsl in
  let corr so si = col si ik ==. col so ok in
  let local_i si = col si iy >. int 2 in
  [
    ( "exists",
      from o_tbl "o" (fun so -> exists i_tbl "i" ~where:(fun si -> corr so si &&. local_i si))
    );
    ("not-exists", from o_tbl "o" (fun so -> not_exists i_tbl "i" ~where:(corr so)));
    ( "some",
      from o_tbl "o" (fun so ->
          some_ (col so ox) Expr.Lt ~where:(corr so) i_tbl "i" ~col:iy) );
    ( "all-ne",
      from o_tbl "o" (fun so -> all_ (col so ox) Expr.Ne ~where:local_i i_tbl "i" ~col:iy) );
    ( "all-gt-correlated",
      from o_tbl "o" (fun so ->
          all_ (col so ox) Expr.Gt ~where:(corr so) i_tbl "i" ~col:iy) );
    ( "scalar",
      from o_tbl "o" (fun so ->
          scalar_cmp (col so ox) Expr.Eq ~where:(corr so) i_tbl "i" ~col:iy) );
    ( "agg-sum",
      from o_tbl "o" (fun so ->
          agg_cmp (col so ox) Expr.Lt (fun si -> sum (col si iy)) ~where:(corr so) i_tbl "i")
    );
    ( "agg-count",
      from o_tbl "o" (fun so ->
          agg_cmp (col so ox) Expr.Ge (fun si -> count (col si iy)) ~where:(corr so) i_tbl "i")
    );
    ( "agg-max-uncorrelated",
      from o_tbl "o" (fun so ->
          agg_cmp (col so ox) Expr.Gt (fun si -> max_ (col si iy)) i_tbl "i") );
    ( "in",
      from o_tbl "o" (fun so -> in_ (col so ox) ~where:local_i i_tbl "i" ~col:iy) );
    ("not-in", from o_tbl "o" (fun so -> not_in (col so ox) i_tbl "i" ~col:iy));
    ( "negated-exists",
      from o_tbl "o" (fun so ->
          not_ (exists i_tbl "i" ~where:(fun si -> corr so si &&. local_i si))) );
    ( "negated-some",
      from o_tbl "o" (fun so ->
          not_ (some_ (col so ox) Expr.Le ~where:(corr so) i_tbl "i" ~col:iy)) );
    ( "disjunction",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(fun si -> corr so si &&. local_i si)
          ||. (col so ox >. int 3)) );
    ( "two-subqueries-same-table",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(fun si -> corr so si &&. local_i si)
          &&. not_exists i_tbl "i2" ~where:(fun si2 -> col si2 ik ==. col so ox)) );
    ( "two-subqueries-or",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(corr so)
          ||. exists j_tbl "j" ~where:(fun sj -> col sj jk ==. col so ox)) );
    ( "linear-nesting",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(fun si ->
              corr so si
              &&. exists j_tbl "j" ~where:(fun sj ->
                      (col sj jk ==. col si ik) &&. (col sj jy <. col si iy)))) );
    ( "non-neighboring",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(fun si ->
              corr so si
              &&. not_exists j_tbl "j" ~where:(fun sj ->
                      (col sj jk ==. col si ik) &&. (col sj jy ==. col so ox)))) );
    ( "double-negation-division",
      from o_tbl "o" (fun so ->
          not_exists i_tbl "i" ~where:(fun si ->
              local_i si
              &&. not_exists j_tbl "j" ~where:(fun sj ->
                      (col sj jk ==. col si ik) &&. (col sj jy ==. col so ok)))) );
    ( "nested-agg",
      from o_tbl "o" (fun so ->
          exists i_tbl "i" ~where:(fun si ->
              corr so si
              &&. agg_cmp_num (col si iy) Expr.Gt
                    (fun sj -> avg (col sj jy))
                    ~where:(fun sj -> col sj jk ==. col si ik)
                    j_tbl "j")) );
    ( "distinct-base",
      from_distinct o_tbl ~cols:[ P ok ] "o" (fun so ->
          exists i_tbl "i" ~where:(fun si -> col si ik ==. col so ok)) );
    ( "multi-from",
      from_product (o_tbl, "a") (i_tbl, "b") (fun sa sb ->
          (col sa ok ==. col sb ik)
          &&. exists j_tbl "j" ~where:(fun sj ->
                  (col sj jk ==. col sa ok) &&. (col sj jy >. col sb iy))) );
    ( "multi-from-non-neighboring",
      from_product (o_tbl, "a") (o_tbl, "b") (fun sa sb ->
          exists i_tbl "i" ~where:(fun si ->
              (col si ik ==. col sa ok)
              &&. not_exists j_tbl "j" ~where:(fun sj ->
                      (col sj jk ==. col si ik) &&. (col sj jy ==. col sb ox)))) );
    ( "mixed-atoms",
      from o_tbl "o" (fun so ->
          is_not_null (col so ok)
          &&. (exists i_tbl "i" ~where:(corr so) &&. (col so ox <>. int 0))) );
  ]

let acceptance_floor = 12

(* --- DSL / SQL front-end agreement ----------------------------------- *)

let test_fingerprints_match_zoo () =
  Alcotest.(check bool) "covers the acceptance floor" true
    (List.length dsl_queries >= acceptance_floor);
  List.iter
    (fun (name, dq) ->
      let dsl_fp = Fp.of_query (Dsl.to_query dq) in
      let zoo_fp = Fp.of_query (Zoo.find_query name) in
      Alcotest.(check string) (Printf.sprintf "%s fingerprint" name) zoo_fp dsl_fp)
    dsl_queries;
  Alcotest.(check int) "every template is expressible" (List.length Zoo.queries)
    (List.length dsl_queries)

let test_results_match_zoo () =
  List.iter
    (fun (name, dq) ->
      let via_dsl =
        Subql.Eval.eval catalog
          (Subql.Optimize.optimize (Subql.Transform.to_algebra (Dsl.to_query dq)))
      in
      let oracle = Subql_nested.Naive_eval.eval catalog (Zoo.find_query name) in
      Helpers.check_multiset_equal (Printf.sprintf "%s result" name) oracle via_dsl)
    dsl_queries

(* Render the DSL's AST to SQL text, parse it back, and compare
   fingerprints: a DSL query is a first-class citizen of the SQL
   front-end.  [distinct-base] is the one shape the SQL dialect cannot
   spell (a DISTINCT projection as a FROM item). *)
let test_sql_roundtrip () =
  let skipped = ref 0 in
  List.iter
    (fun (name, dq) ->
      let q = Dsl.to_query dq in
      match Subql_sql.Render.query_to_sql q with
      | exception Subql_sql.Render.Unrepresentable _ -> incr skipped
      | sql ->
        let parsed = (Subql_sql.Parser.parse sql).Subql_sql.Parser.query in
        Alcotest.(check string)
          (Printf.sprintf "%s sql roundtrip" name)
          (Fp.of_query q) (Fp.of_query parsed))
    dsl_queries;
  Alcotest.(check int) "only distinct-base is unrenderable" 1 !skipped

(* --- Derived accessors and their diagnostics -------------------------- *)

let t_schema =
  Schema.of_list
    [
      Schema.attr ~rel:"T" "a" Value.Tint;
      Schema.attr ~rel:"T" "b" Value.Tint;
      Schema.attr ~rel:"T" "s" Value.Tstring;
    ]

let t_rows = [ [| Value.Int 1; Value.Null; Value.Str "x" |]; [| Value.Int 2; Value.Int 5; Value.Str "y" |] ]

let t_catalog = Catalog.of_list [ ("T", Relation.of_list t_schema t_rows) ]

let expect_tyd code f =
  match f () with
  | exception Diag.Fail d -> Alcotest.(check string) "diagnostic code" code d.Diag.code
  | _ -> Alcotest.failf "expected a %s failure" code

let test_derive_accessors () =
  let t = Derive.of_catalog t_catalog "T" in
  Alcotest.(check string) "table name" "T" (Derive.name t);
  (match Derive.of_catalog t_catalog "NOPE" with
  | exception Catalog.Unknown_table _ -> ()
  | _ -> Alcotest.fail "unknown table must be rejected");
  (* Instance nullability: [a] and [s] never hold NULL, [b] does. *)
  let a = Derive.int_col t "a" in
  let s = Derive.str_col t "s" in
  let b = Derive.int_opt t "b" in
  let row0 = List.nth t_rows 0 and row1 = List.nth t_rows 1 in
  Alcotest.(check int) "get a" 1 (Col.get a row0);
  Alcotest.(check string) "get s" "x" (Col.get s row0);
  Alcotest.(check (option int)) "get_opt NULL" None (Col.get_opt b row0);
  Alcotest.(check (option int)) "get_opt value" (Some 5) (Col.get_opt b row1);
  Alcotest.(check (option int)) "widened non-null get_opt" (Some 1)
    (Col.get_opt (Col.opt a) row0);
  (* The typed lookups refuse wrong names, types, and nullability. *)
  expect_tyd "TYD001" (fun () -> Derive.int_col t "nope");
  expect_tyd "TYD002" (fun () -> Derive.str_col t "a");
  expect_tyd "TYD003" (fun () -> Derive.int_col t "b");
  (* Handles used against rows they do not describe fail structurally. *)
  expect_tyd "TYD004" (fun () -> Col.get a [||]);
  expect_tyd "TYD005" (fun () -> Col.get a [| Value.Str "lie"; Value.Null; Value.Null |]);
  (* The derived codec plan carries the per-column NULL-freedom. *)
  let plan = Derive.codec t in
  let open Subql_storage in
  Alcotest.(check bool) "a is non-null in the plan" true plan.Codec.columns.(0).Codec.non_null;
  Alcotest.(check bool) "b is nullable in the plan" false plan.Codec.columns.(1).Codec.non_null

let test_dsl_scope_errors () =
  let open Dsl in
  (* A column of I read through a scope ranging over O. *)
  expect_tyd "TYD006" (fun () -> from o_tbl "o" (fun so -> col so ik ==. int 1));
  (* A column projected away by DISTINCT. *)
  expect_tyd "TYD006" (fun () ->
      from_distinct o_tbl ~cols:[ P ok ] "o" (fun so -> col so ox ==. int 1));
  (* A subquery [~col] that belongs to a different table. *)
  expect_tyd "TYD006" (fun () ->
      from o_tbl "o" (fun so -> in_ (col so ox) i_tbl "i" ~col:jy))

(* --- Code generation --------------------------------------------------- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_codegen () =
  Alcotest.(check string) "uncapitalized" "sourceIP" (Codegen.ident "SourceIP");
  Alcotest.(check string) "keyword suffixed" "type_" (Codegen.ident "type");
  Alcotest.(check string) "reserved suffixed" "row_" (Codegen.ident "row");
  Alcotest.(check string) "illegal chars mangled" "num_bytes" (Codegen.ident "num bytes");
  Alcotest.(check string) "digit prefixed" "c9lives" (Codegen.ident "9lives");
  Alcotest.(check string) "module name" "Flow" (Codegen.module_name "flow");
  let src = Codegen.table_source (Derive.of_catalog t_catalog "T") in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "emits %S" needle) true (contains ~needle src))
    [
      "module T = struct";
      "let of_tuple";
      "let to_tuple";
      "type row = {";
      (* [a] derived non-null: a bare [int] field; [b] nullable: option. *)
      "a : int;";
      "b : int option;";
      "Subql_typed.Col.Rint\n";
      "Subql_typed.Col.Rint_opt";
    ];
  let whole = Codegen.catalog_source t_catalog in
  Alcotest.(check bool) "header present" true
    (contains ~needle:"Generated by [olap_cli schema-gen]" whole)

let () =
  Alcotest.run "typed"
    [
      ( "dsl-sql-agreement",
        [
          Alcotest.test_case "fingerprints match the zoo templates" `Quick
            test_fingerprints_match_zoo;
          Alcotest.test_case "results match the naive oracle" `Quick test_results_match_zoo;
          Alcotest.test_case "SQL round-trip preserves the fingerprint" `Quick
            test_sql_roundtrip;
        ] );
      ( "derive",
        [
          Alcotest.test_case "typed accessors and diagnostics" `Quick test_derive_accessors;
          Alcotest.test_case "scope violations are TYD006" `Quick test_dsl_scope_errors;
        ] );
      ("codegen", [ Alcotest.test_case "emitted source shape" `Quick test_codegen ]);
    ]
