(* The multi-query subsystem: fingerprinting, cross-query GMDJ sharing,
   and the cost-aware result cache. *)

open Subql_relational
module N = Subql_nested.Nested_ast
module Zoo = Subql_workload.Zoo
module Fingerprint = Subql_mqo.Fingerprint
module Epoch = Subql_mqo.Epoch
module Result_cache = Subql_mqo.Result_cache
module Share = Subql_mqo.Share
module Batch = Subql_mqo.Batch

let attr = Expr.attr

let check_rel msg expected actual =
  if not (Relation.equal_as_multiset expected actual) then
    Alcotest.failf "%s:@.expected %a@.got %a" msg Relation.pp expected Relation.pp
      actual

let reference catalog query =
  Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra query))

(* --- Fingerprinting ------------------------------------------------- *)

let exists_with_alias a =
  Zoo.q
    (N.exists
       ~where:
         (N.atom
            (Expr.and_
               (Expr.eq (attr ~rel:a "k") (attr ~rel:"o" "k"))
               (Expr.gt (attr ~rel:a "y") (Expr.int 2))))
       (N.table "I") a)

let test_fp_alpha_rename () =
  Alcotest.(check string)
    "alias choice does not change the fingerprint"
    (Fingerprint.of_query (exists_with_alias "i"))
    (Fingerprint.of_query (exists_with_alias "z"))

let exists_with_conjuncts conj =
  Zoo.q (N.exists ~where:(N.atom conj) (N.table "I") "i")

let test_fp_commuted_conjuncts () =
  Alcotest.(check string)
    "commuted WHERE conjuncts share a fingerprint"
    (Fingerprint.of_query (exists_with_conjuncts (Expr.and_ Zoo.corr Zoo.local_i)))
    (Fingerprint.of_query (exists_with_conjuncts (Expr.and_ Zoo.local_i Zoo.corr)))

let test_fp_swapped_comparison () =
  let flipped = Expr.eq (attr ~rel:"o" "k") (attr ~rel:"i" "k") in
  Alcotest.(check string)
    "mirrored comparison operands share a fingerprint"
    (Fingerprint.of_query (exists_with_conjuncts (Expr.and_ Zoo.corr Zoo.local_i)))
    (Fingerprint.of_query (exists_with_conjuncts (Expr.and_ flipped Zoo.local_i)))

let test_fp_distinct_queries () =
  (* Pairs that are semantically different must not collide.  (Not every
     zoo pair qualifies: "not-exists" and "negated-exists" are the same
     query in different syntax.) *)
  let distinct_pairs =
    [
      ("exists", "not-exists");
      ("exists", "in");
      ("some", "all-ne");
      ("agg-sum", "agg-count");
      ("in", "not-in");
      ("scalar", "agg-sum");
    ]
  in
  List.iter
    (fun (a, b) ->
      let fa = Fingerprint.of_query (Zoo.find_query a)
      and fb = Fingerprint.of_query (Zoo.find_query b) in
      if String.equal fa fb then Alcotest.failf "%s and %s collide" a b)
    distinct_pairs

let test_fp_syntactic_variants_of_same_query () =
  Alcotest.(check string)
    "NOT (EXISTS) and NOT EXISTS translate to the same canonical plan"
    (Fingerprint.of_query (Zoo.find_query "not-exists"))
    (Fingerprint.of_query
       (Zoo.q (N.pnot (N.exists ~where:(N.atom Zoo.corr) (N.table "I") "i"))))

(* --- Cross-query sharing ------------------------------------------- *)

let small_catalog () = Zoo.catalog ~outer:24 ~inner:512 ~key_range:16 ()

let batch_queries = List.map Zoo.find_query Zoo.same_detail_templates

let test_batch_matches_solo_evaluation () =
  let catalog = small_catalog () in
  let cache = Result_cache.create ~min_cost:0. () in
  let report = Batch.run ~cache catalog batch_queries in
  Alcotest.(check int) "one result per query" (List.length batch_queries)
    (List.length report.Batch.results);
  List.iteri
    (fun i q ->
      check_rel
        (Printf.sprintf "query %d (%s)" i (List.nth Zoo.same_detail_templates i))
        (reference catalog q)
        (List.assoc i report.Batch.results))
    batch_queries

let test_batch_shares_detail_scans () =
  let catalog = small_catalog () in
  let cache = Result_cache.create ~min_cost:0. () in
  let report = Batch.run ~cache catalog batch_queries in
  let k = List.length batch_queries in
  Alcotest.(check int) "naive baseline scans once per query" k
    report.Batch.naive_detail_scans;
  if report.Batch.shared_detail_scans >= k then
    Alcotest.failf "no sharing: %d scans for %d queries"
      report.Batch.shared_detail_scans k;
  if report.Batch.grouped < 2 then
    Alcotest.failf "expected at least one shared group, got %d grouped members"
      report.Batch.grouped

let test_batch_repeat_hits_cache () =
  let catalog = small_catalog () in
  let cache = Result_cache.create ~min_cost:0. () in
  let cold = Batch.run ~cache catalog batch_queries in
  Alcotest.(check int) "cold run misses everywhere" 0 cold.Batch.cache_hits;
  let warm = Batch.run ~cache catalog batch_queries in
  Alcotest.(check int)
    "warm run answers the whole batch from cache"
    (List.length batch_queries) warm.Batch.cache_hits;
  Alcotest.(check int) "warm run scans nothing" 0 warm.Batch.shared_detail_scans;
  List.iter2
    (fun (i, cold_r) (j, warm_r) ->
      Alcotest.(check int) "same key order" i j;
      check_rel "warm result identical to cold" cold_r warm_r)
    cold.Batch.results warm.Batch.results

let test_batch_deduplicates_identical_queries () =
  let catalog = small_catalog () in
  let q = Zoo.find_query "exists" in
  (* Same query under a different subquery alias: distinct syntax, one
     fingerprint — the batch must compute it once. *)
  let report =
    Batch.run ~cache:(Result_cache.create ~min_cost:0. ()) catalog
      [ q; exists_with_alias "z"; q ]
  in
  Alcotest.(check int) "two of three deduplicated" 2 report.Batch.deduplicated;
  let expected = reference catalog q in
  List.iter (fun (_, r) -> check_rel "deduplicated result" expected r)
    report.Batch.results

(* --- Result cache policies ------------------------------------------ *)

let int_schema name = Schema.of_list [ Schema.attr ~rel:name "a" Value.Tint ]

let int_rel name n =
  Relation.of_list (int_schema name)
    (List.init n (fun i -> [| Value.Int i |]))

let test_cache_admission_is_cost_aware () =
  let cache = Result_cache.create ~min_cost:1000. () in
  let rel = int_rel "T" 4 in
  Alcotest.(check bool) "cheap result rejected" false
    (Result_cache.store cache ~fingerprint:"cheap" ~cost:1. rel);
  Alcotest.(check int) "nothing admitted" 0 (Result_cache.entries cache);
  Alcotest.(check bool) "expensive result admitted" true
    (Result_cache.store cache ~fingerprint:"dear" ~cost:5000. rel);
  Alcotest.(check bool) "admitted result served" true
    (Option.is_some (Result_cache.lookup cache "dear"))

let test_cache_lru_eviction () =
  let r = int_rel "T" 10 in
  let bytes = Result_cache.approx_bytes r in
  (* Room for exactly two entries. *)
  let cache = Result_cache.create ~min_cost:0. ~max_bytes:((2 * bytes) + 1) () in
  assert (Result_cache.store cache ~fingerprint:"a" ~cost:1. r);
  assert (Result_cache.store cache ~fingerprint:"b" ~cost:1. r);
  ignore (Result_cache.lookup cache "a");
  (* "b" is now least recently used; storing "c" must evict it. *)
  assert (Result_cache.store cache ~fingerprint:"c" ~cost:1. r);
  Alcotest.(check int) "still two entries" 2 (Result_cache.entries cache);
  Alcotest.(check bool) "recently used entry survives" true
    (Option.is_some (Result_cache.lookup cache "a"));
  Alcotest.(check bool) "LRU entry evicted" false
    (Option.is_some (Result_cache.lookup cache "b"));
  Alcotest.(check bool) "new entry resident" true
    (Option.is_some (Result_cache.lookup cache "c"))

let test_cache_invalidated_by_catalog_mutation () =
  let cache = Result_cache.create ~min_cost:0. () in
  let rel = int_rel "T" 4 in
  assert (Result_cache.store cache ~fingerprint:"fp" ~cost:1. rel);
  Alcotest.(check bool) "hit before mutation" true
    (Option.is_some (Result_cache.lookup cache "fp"));
  Catalog.add (Catalog.create ()) "T" rel;
  Alcotest.(check bool) "stale after Catalog.add" false
    (Option.is_some (Result_cache.lookup cache "fp"));
  Alcotest.(check int) "stale entry dropped" 0 (Result_cache.entries cache)

let test_cache_invalidated_by_manual_bump () =
  let cache = Result_cache.create ~min_cost:0. () in
  assert (Result_cache.store cache ~fingerprint:"fp" ~cost:1. (int_rel "T" 2));
  Epoch.bump ();
  Alcotest.(check bool) "stale after Epoch.bump" false
    (Option.is_some (Result_cache.lookup cache "fp"))

(* Satellite: view maintenance changes the effective detail content, so
   fold/retract must advance the epoch — a cached result computed before
   the delta can never be served after it. *)
let test_cache_invalidated_by_view_maintenance () =
  let open Subql_gmdj in
  let base = int_rel "B" 3 in
  let detail_schema = int_schema "D" in
  let detail = Relation.of_list detail_schema [ [| Value.Int 1 |] ] in
  let view =
    Gmdj.Maintain.create ~base ~detail
      [ Gmdj.block [ Aggregate.count_star "c" ] (Expr.bool true) ]
  in
  let cache = Result_cache.create ~min_cost:0. () in
  let delta = Relation.of_list detail_schema [ [| Value.Int 7 |] ] in
  assert (Result_cache.store cache ~fingerprint:"fold" ~cost:1. base);
  Gmdj.Maintain.insert_detail view delta;
  Alcotest.(check bool) "stale after insert_detail" false
    (Option.is_some (Result_cache.lookup cache "fold"));
  assert (Result_cache.store cache ~fingerprint:"retract" ~cost:1. base);
  Gmdj.Maintain.delete_detail view delta;
  Alcotest.(check bool) "stale after delete_detail" false
    (Option.is_some (Result_cache.lookup cache "retract"))

(* --- Planner integration -------------------------------------------- *)

let test_planner_serves_cache_hits () =
  let catalog = small_catalog () in
  let query = Zoo.find_query "exists" in
  let cache = Result_cache.create ~min_cost:0. () in
  Batch.install_planner_cache cache;
  Fun.protect ~finally:Subql.Planner.clear_result_cache (fun () ->
      let cold, fb_cold = Subql.Planner.run_with_feedback catalog query in
      if String.equal fb_cold.Subql.Planner.candidate.Subql.Planner.label "cache"
      then Alcotest.fail "first run cannot be a cache hit";
      let warm, fb_warm = Subql.Planner.run_with_feedback catalog query in
      Alcotest.(check string) "second run served from cache" "cache"
        fb_warm.Subql.Planner.candidate.Subql.Planner.label;
      Alcotest.(check (float 0.)) "cache candidate is free" 0.
        fb_warm.Subql.Planner.candidate.Subql.Planner.estimate.Subql.Cost.cost;
      check_rel "cached result identical" cold warm)

let () =
  Alcotest.run "mqo"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "alpha-renamed aliases" `Quick test_fp_alpha_rename;
          Alcotest.test_case "commuted conjuncts" `Quick test_fp_commuted_conjuncts;
          Alcotest.test_case "swapped comparison" `Quick test_fp_swapped_comparison;
          Alcotest.test_case "distinct queries stay distinct" `Quick
            test_fp_distinct_queries;
          Alcotest.test_case "syntactic variants coincide" `Quick
            test_fp_syntactic_variants_of_same_query;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "batch equals solo evaluation" `Quick
            test_batch_matches_solo_evaluation;
          Alcotest.test_case "fewer detail scans than queries" `Quick
            test_batch_shares_detail_scans;
          Alcotest.test_case "repeat batch served from cache" `Quick
            test_batch_repeat_hits_cache;
          Alcotest.test_case "identical queries deduplicated" `Quick
            test_batch_deduplicates_identical_queries;
        ] );
      ( "result-cache",
        [
          Alcotest.test_case "cost-aware admission" `Quick
            test_cache_admission_is_cost_aware;
          Alcotest.test_case "LRU eviction by bytes" `Quick test_cache_lru_eviction;
          Alcotest.test_case "catalog mutation invalidates" `Quick
            test_cache_invalidated_by_catalog_mutation;
          Alcotest.test_case "manual bump invalidates" `Quick
            test_cache_invalidated_by_manual_bump;
          Alcotest.test_case "view maintenance invalidates" `Quick
            test_cache_invalidated_by_view_maintenance;
        ] );
      ( "planner",
        [
          Alcotest.test_case "cache hit is a zero-cost candidate" `Quick
            test_planner_serves_cache_hits;
        ] );
    ]
