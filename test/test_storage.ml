(* Paged storage: tuple codec, heap files, buffer pool, and disk-resident
   GMDJ evaluation with exact I/O accounting. *)

open Subql_relational
open Subql_gmdj
open Subql_storage

let attr = Expr.attr

let tmp_path () = Filename.temp_file "subql_hf" ".dat"

(* --- Codec ------------------------------------------------------------- *)

let value_gen =
  QCheck2.Gen.(
    frequency
      [
        (1, return Value.Null);
        (3, map (fun i -> Value.Int i) int);
        (2, map (fun f -> Value.Float f) (float_range (-1e12) 1e12));
        (2, map (fun s -> Value.Str s) (string_size ~gen:char (int_range 0 40)));
        (1, map (fun b -> Value.Bool b) bool);
      ])

let codec_roundtrip values =
  let buf = Buffer.create 64 in
  let tuple = Array.of_list values in
  Codec.encode_tuple buf tuple;
  let bytes = Buffer.to_bytes buf in
  let pos = ref 0 in
  let decoded = Codec.decode_tuple bytes ~pos ~arity:(Array.length tuple) in
  !pos = Bytes.length bytes
  && Bytes.length bytes = Codec.tuple_bytes tuple
  && Array.length decoded = Array.length tuple
  && Array.for_all2
       (fun a b ->
         match a, b with
         | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
         | _ -> Value.equal a b && Value.is_null a = Value.is_null b)
       tuple decoded

(* --- Schema-compiled codec plans --------------------------------------- *)

let value_eq a b =
  match a, b with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> Value.equal a b && Value.is_null a = Value.is_null b

let ty_gen = QCheck2.Gen.oneofl [ Value.Tint; Value.Tfloat; Value.Tstring; Value.Tbool ]

let typed_value_gen ty =
  QCheck2.Gen.(
    let v =
      match ty with
      | Value.Tint -> map (fun i -> Value.Int i) int
      | Value.Tfloat -> map (fun f -> Value.Float f) (float_range (-1e12) 1e12)
      | Value.Tstring -> map (fun s -> Value.Str s) (string_size ~gen:char (int_range 0 12))
      | Value.Tbool -> map (fun b -> Value.Bool b) bool
    in
    frequency [ (1, return Value.Null); (5, v) ])

(* A random schema (arity 1-6) plus schema-conformant rows with NULLs. *)
let plan_case_gen =
  QCheck2.Gen.(
    list_size (int_range 1 6) ty_gen >>= fun tys ->
    list_size (int_range 1 10) (flatten_l (List.map typed_value_gen tys)) >>= fun rows ->
    return (tys, List.map Array.of_list rows))

(* The specialized codec must be a drop-in for the generic one on
   schema-conformant data: byte-identical encodings, and every decode
   path returns the original tuples. *)
let plan_codec_agrees (tys, rows) =
  let schema =
    Schema.of_list (List.mapi (fun i ty -> Schema.attr (Printf.sprintf "c%d" i) ty) tys)
  in
  let plan = Codec.plan_of_schema schema in
  let generic = Buffer.create 256 in
  let planned = Buffer.create 256 in
  List.iter (Codec.encode_tuple generic) rows;
  List.iter (Codec.encode_tuple_plan plan planned) rows;
  let bytes = Buffer.to_bytes generic in
  let same_bytes = Buffer.contents generic = Buffer.contents planned in
  let tuples_eq a b = Array.length a = Array.length b && Array.for_all2 value_eq a b in
  let pos = ref 0 in
  let batch = Codec.decode_rows_plan plan bytes ~pos ~count:(List.length rows) in
  let batch_ok =
    !pos = Bytes.length bytes && List.for_all2 tuples_eq rows (Array.to_list batch)
  in
  let pos = ref 0 in
  let one_ok =
    List.for_all (fun row -> tuples_eq row (Codec.decode_tuple_plan plan bytes ~pos)) rows
  in
  same_bytes && batch_ok && one_ok

let expect_diag code f =
  match f () with
  | exception Subql_relational.Diag.Fail d ->
    Alcotest.(check string) "diagnostic code" code d.Subql_relational.Diag.code;
    d
  | _ -> Alcotest.failf "expected a %s failure" code

let test_codec_structured_errors () =
  let int_schema = Schema.of_list [ Schema.attr "n" Value.Tint ] in
  let int_plan = Codec.plan_of_schema int_schema in
  (* Truncated payload: an int tag with only two payload bytes. *)
  let truncated = Bytes.of_string "\001\042\000" in
  ignore (expect_diag "STO002" (fun () -> Codec.decode_value truncated ~pos:(ref 0)));
  ignore (expect_diag "STO002" (fun () -> Codec.decode_tuple_plan int_plan truncated ~pos:(ref 0)));
  (* Unknown tag byte: generic says STO001, the plan reports the clash
     against the declared column (STO003). *)
  let bad_tag = Bytes.of_string "\250" in
  ignore (expect_diag "STO001" (fun () -> Codec.decode_value bad_tag ~pos:(ref 0)));
  ignore (expect_diag "STO003" (fun () -> Codec.decode_tuple_plan int_plan bad_tag ~pos:(ref 0)));
  (* Type lie: stored int bytes decoded under a float column. *)
  let buf = Buffer.create 16 in
  Codec.encode_tuple buf [| Value.Int 7 |];
  let int_bytes = Buffer.to_bytes buf in
  let float_plan = Codec.plan_of_schema (Schema.of_list [ Schema.attr "n" Value.Tfloat ]) in
  ignore (expect_diag "STO003" (fun () -> Codec.decode_tuple_plan float_plan int_bytes ~pos:(ref 0)));
  (* A NULL under a non-NULL plan is corruption on decode and
     [Invalid_argument] on encode. *)
  let nn_plan = Codec.plan_of_schema ~non_null:[| true |] int_schema in
  let buf = Buffer.create 16 in
  Codec.encode_tuple buf [| Value.Null |];
  let null_bytes = Buffer.to_bytes buf in
  ignore (expect_diag "STO003" (fun () -> Codec.decode_tuple_plan nn_plan null_bytes ~pos:(ref 0)));
  (match Codec.encode_tuple_plan nn_plan (Buffer.create 16) [| Value.Null |] with
  | exception Invalid_argument msg ->
    Alcotest.(check string) "encode message" "Codec: NULL in non-NULL column n" msg
  | () -> Alcotest.fail "NULL under a non-NULL plan must be rejected");
  (* The nullable default accepts the NULL. *)
  Alcotest.(check bool) "nullable plan accepts NULL" true
    (Codec.decode_tuple_plan int_plan null_bytes ~pos:(ref 0) = [| Value.Null |])

(* --- Heap files ---------------------------------------------------------- *)

let mk_rel n =
  Relation.of_list
    (Schema.of_list
       [
         Schema.attr ~rel:"R" "k" Value.Tint;
         Schema.attr ~rel:"R" "name" Value.Tstring;
         Schema.attr ~rel:"R" "y" Value.Tint;
       ])
    (List.init n (fun i ->
         [|
           Value.Int (i mod 17);
           (if i mod 5 = 0 then Value.Null else Value.Str (Printf.sprintf "row-%d" i));
           Value.Int (i * 3);
         |]))

let with_file rel ?page_size f =
  let path = tmp_path () in
  let hf = Heap_file.write ~path ?page_size rel in
  Fun.protect
    ~finally:(fun () ->
      Heap_file.close hf;
      Sys.remove path)
    (fun () -> f path hf)

let test_heap_roundtrip () =
  let rel = mk_rel 1000 in
  with_file rel ~page_size:512 (fun path hf ->
      Alcotest.(check int) "row count" 1000 (Heap_file.row_count hf);
      Alcotest.(check bool) "multiple pages" true (Heap_file.pages hf > 10);
      let pool = Buffer_pool.create ~frames:4 in
      Helpers.check_multiset_equal "write/scan roundtrip" rel (Heap_file.to_relation hf ~pool);
      (* Reopen from disk and scan again. *)
      let reopened = Heap_file.openfile ~path ~schema:(Relation.schema rel) () in
      Helpers.check_multiset_equal "reopen roundtrip" rel (Heap_file.to_relation reopened ~pool);
      Heap_file.close reopened)

let test_heap_errors () =
  let rel = mk_rel 3 in
  with_file rel (fun path hf ->
      ignore hf;
      (match
         Heap_file.openfile ~path
           ~schema:(Schema.of_list [ Schema.attr "only_one" Value.Tint ])
           ()
       with
      | exception Invalid_argument _ -> ()
      | hf2 ->
        Heap_file.close hf2;
        Alcotest.fail "arity mismatch must be rejected");
      let big =
        Relation.of_list
          (Schema.of_list [ Schema.attr "s" Value.Tstring ])
          [ [| Value.Str (String.make 600 'x') |] ]
      in
      match Heap_file.write ~path:(tmp_path ()) ~page_size:128 big with
      | exception Invalid_argument _ -> ()
      | hf2 ->
        Heap_file.close hf2;
        Alcotest.fail "oversized tuple must be rejected")

(* Both codec modes must read the same file identically — the format is
   shared; only the decode loop differs. *)
let test_codec_modes_agree () =
  let rel = mk_rel 500 in
  with_file rel ~page_size:512 (fun path _hf ->
      let pool = Buffer_pool.create ~frames:8 in
      let generic = Heap_file.openfile ~path ~codec:Codec.Generic ~schema:(Relation.schema rel) () in
      let plan = Heap_file.openfile ~path ~codec:Codec.Specialized ~schema:(Relation.schema rel) () in
      Alcotest.(check bool) "generic mode recorded" true (Heap_file.codec_mode generic = Codec.Generic);
      Alcotest.(check bool) "specialized mode recorded" true
        (Heap_file.codec_mode plan = Codec.Specialized);
      Helpers.check_multiset_equal "generic reads the relation" rel
        (Heap_file.to_relation generic ~pool);
      Helpers.check_multiset_equal "specialized reads the relation" rel
        (Heap_file.to_relation plan ~pool);
      Heap_file.close generic;
      Heap_file.close plan)

(* Flip one stored tag byte on disk: both decoders must refuse the page
   with a structured diagnostic that names the file and page. *)
let test_corrupt_page_is_diagnosed () =
  let rel = mk_rel 50 in
  with_file rel ~page_size:512 (fun path _hf ->
      (* First data page lives at [page_size]; its first tuple's first
         tag byte sits right after the 2-byte tuple count. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 514 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\250') 0 1);
      Unix.close fd;
      let scan_with codec =
        let hf = Heap_file.openfile ~path ~codec ~schema:(Relation.schema rel) () in
        Fun.protect
          ~finally:(fun () -> Heap_file.close hf)
          (fun () -> Heap_file.scan hf ~pool:(Buffer_pool.create ~frames:4) (fun _ -> ()))
      in
      let has_page_context d =
        List.exists
          (fun p -> String.length p > 0 && p = Printf.sprintf "%s: page 0" path)
          d.Diag.path
      in
      let d = expect_diag "STO003" (fun () -> scan_with Codec.Specialized) in
      Alcotest.(check bool) "specialized names the page" true (has_page_context d);
      let d = expect_diag "STO001" (fun () -> scan_with Codec.Generic) in
      Alcotest.(check bool) "generic names the page" true (has_page_context d))

(* The three read paths — tuple-at-a-time [scan], page-at-a-time
   [scan_pages] and the pull [source] — must deliver the same tuples in
   the same (file) order, and the source must complete on a pool smaller
   than the file without growing past its frame budget. *)
let test_source_matches_scan () =
  let rel = mk_rel 1200 in
  with_file rel ~page_size:512 (fun _path hf ->
      let frames = 3 in
      Alcotest.(check bool) "file exceeds pool" true (Heap_file.pages hf > frames);
      let via_scan =
        let pool = Buffer_pool.create ~frames in
        let acc = ref [] in
        Heap_file.scan hf ~pool (fun t -> acc := t :: !acc);
        List.rev !acc
      in
      let via_pages =
        let pool = Buffer_pool.create ~frames in
        let acc = ref [] in
        Heap_file.scan_pages hf ~pool (fun page ->
            Array.iter (fun t -> acc := t :: !acc) page);
        List.rev !acc
      in
      let via_source, resident =
        let pool = Buffer_pool.create ~frames in
        let rows =
          Chunk.Source.fold
            (fun acc chunk -> Chunk.fold (fun acc t -> t :: acc) acc chunk)
            [] (Heap_file.source hf ~pool)
        in
        (List.rev rows, Buffer_pool.resident pool)
      in
      let same_order a b = List.length a = List.length b && List.for_all2 Tuple.equal a b in
      Alcotest.(check bool) "scan_pages order matches scan" true (same_order via_scan via_pages);
      Alcotest.(check bool) "source order matches scan" true (same_order via_scan via_source);
      Alcotest.(check int) "all rows delivered" 1200 (List.length via_source);
      Alcotest.(check bool) "pool stays within frames" true (resident <= frames))

(* --- Appends --------------------------------------------------------------- *)

let rows_of rel =
  let acc = ref [] in
  Relation.iter (fun t -> acc := t :: !acc) rel;
  Array.of_list (List.rev !acc)

let fresh_rows ~from n =
  Array.init n (fun i ->
      let i = from + i in
      [|
        Value.Int (i mod 17);
        (if i mod 5 = 0 then Value.Null else Value.Str (Printf.sprintf "row-%d" i));
        Value.Int (i * 3);
      |])

let test_append_roundtrip () =
  let rel = mk_rel 100 in
  with_file rel ~page_size:512 (fun path hf ->
      let pool = Buffer_pool.create ~frames:8 in
      (* Two batches: the first finishes inside the last page's free
         payload, the second spills onto fresh pages. *)
      let d1 = Heap_file.append hf (fresh_rows ~from:100 3) in
      let d2 = Heap_file.append hf (fresh_rows ~from:103 400) in
      Alcotest.(check int) "rows counted" 503 (Heap_file.row_count hf);
      Alcotest.(check int) "deltas counted" 3 d1.Heap_file.rows;
      Alcotest.(check int) "deltas counted 2" 400 d2.Heap_file.rows;
      let expected =
        Relation.of_list (Relation.schema rel)
          (Array.to_list (Array.append (rows_of rel) (fresh_rows ~from:100 403)))
      in
      Helpers.check_multiset_equal "grown file scans whole relation" expected
        (Heap_file.to_relation hf ~pool);
      (* Reopen from disk: the rewritten header and tail persisted. *)
      let reopened = Heap_file.openfile ~path ~schema:(Relation.schema rel) () in
      Alcotest.(check int) "reopened row count" 503 (Heap_file.row_count reopened);
      Helpers.check_multiset_equal "reopen after append" expected
        (Heap_file.to_relation reopened ~pool);
      Heap_file.close reopened)

let test_append_validates_batch () =
  let rel = mk_rel 10 in
  with_file rel ~page_size:512 (fun _path hf ->
      let bad_arity = [| [| Value.Int 1 |] |] in
      let bad_type =
        [| fresh_rows ~from:10 1 |> fun a -> a.(0) |> Array.copy |]
      in
      bad_type.(0).(2) <- Value.Str "not an int";
      (match Heap_file.append hf bad_arity with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "arity-invalid row must be rejected");
      (match Heap_file.append hf bad_type with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "type-invalid row must be rejected");
      (* The whole batch is checked before any page is written: a good
         prefix ahead of a bad row must not land either. *)
      let mixed = Array.append (fresh_rows ~from:10 2) bad_arity in
      (match Heap_file.append hf mixed with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "mixed batch must be rejected");
      Alcotest.(check int) "file untouched" 10 (Heap_file.row_count hf);
      let pool = Buffer_pool.create ~frames:4 in
      Helpers.check_multiset_equal "contents untouched" rel (Heap_file.to_relation hf ~pool))

(* Regression: a pool that cached the last page before an append must
   not serve the stale image afterwards — the append packed new rows
   into that very page. *)
let test_append_invalidates_shared_pool () =
  let rel = mk_rel 100 in
  with_file rel ~page_size:512 (fun path hf ->
      let pool = Buffer_pool.create ~frames:64 in
      Heap_file.scan hf ~pool (fun _ -> ());
      let before = (Buffer_pool.stats pool).Buffer_pool.page_reads in
      let d = Heap_file.append hf (fresh_rows ~from:100 50) in
      Alcotest.(check bool) "append reuses the cached tail page" true
        (d.Heap_file.first_page < Heap_file.pages hf);
      let seen = ref 0 in
      Heap_file.scan hf ~pool (fun _ -> incr seen);
      (* All 150 rows visible through the same pool: the stale frames were
         dropped and re-read, the untouched prefix stayed cached. *)
      Alcotest.(check int) "no stale last-page image" 150 !seen;
      let after = (Buffer_pool.stats pool).Buffer_pool.page_reads in
      Alcotest.(check bool) "only the rewritten tail was re-read" true
        (after - before >= 1 && after - before < Heap_file.pages hf);
      (* A manual invalidate on an unrelated path is a no-op. *)
      Alcotest.(check int) "unrelated path untouched" 0
        (Buffer_pool.invalidate pool ~path:(path ^ ".other") ~from_page:0))

let test_source_range_streams_exact_delta () =
  let rel = mk_rel 100 in
  with_file rel ~page_size:512 (fun _path hf ->
      let pool = Buffer_pool.create ~frames:8 in
      let batch = fresh_rows ~from:100 123 in
      let d = Heap_file.append hf batch in
      let streamed =
        Chunk.Source.fold
          (fun acc chunk -> Chunk.fold (fun acc t -> t :: acc) acc chunk)
          []
          (Heap_file.source_range hf ~pool ~first_page:d.Heap_file.first_page
             ~skip:d.Heap_file.skip)
        |> List.rev
      in
      Alcotest.(check int) "exactly the appended rows" (Array.length batch)
        (List.length streamed);
      Alcotest.(check bool) "in append order" true
        (List.for_all2 Tuple.equal (Array.to_list batch) streamed))

(* --- Buffer pool ---------------------------------------------------------- *)

let test_pool_caching () =
  let rel = mk_rel 2000 in
  with_file rel ~page_size:512 (fun _path hf ->
      let n_pages = Heap_file.pages hf in
      (* Pool larger than the file: the second scan is all hits. *)
      let pool = Buffer_pool.create ~frames:(n_pages + 4) in
      Heap_file.scan hf ~pool (fun _ -> ());
      let cold = Buffer_pool.stats pool in
      Alcotest.(check int) "cold scan reads every page" n_pages cold.Buffer_pool.page_reads;
      (* [stats] is a snapshot: the cold-scan copy must not change... *)
      Heap_file.scan hf ~pool (fun _ -> ());
      Alcotest.(check int) "snapshot unaffected by warm scan" 0 cold.Buffer_pool.hits;
      (* ...while a fresh snapshot sees the warm scan. *)
      let warm = Buffer_pool.stats pool in
      Alcotest.(check int) "warm scan reads nothing" n_pages warm.Buffer_pool.page_reads;
      Alcotest.(check int) "warm scan hits every page" n_pages warm.Buffer_pool.hits;
      Alcotest.(check (float 1e-9)) "hit rate is hits over accesses" 0.5
        (Buffer_pool.hit_rate pool);
      (* Pool smaller than the file: sequential scans miss every page but
         never grow beyond the frame budget. *)
      let small = Buffer_pool.create ~frames:4 in
      Heap_file.scan hf ~pool:small (fun _ -> ());
      Heap_file.scan hf ~pool:small (fun _ -> ());
      let s = Buffer_pool.stats small in
      Alcotest.(check int) "bounded residency" 4 (Buffer_pool.resident small);
      Alcotest.(check int) "two cold scans" (2 * n_pages) s.Buffer_pool.page_reads;
      Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions > 0))

(* --- Paged GMDJ ------------------------------------------------------------ *)

let gmdj_base =
  Relation.of_list
    (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
    (List.init 17 (fun i -> [| Value.Int i |]))

let gmdj_blocks =
  [
    Gmdj.block
      [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
      (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
    Gmdj.block
      [ Aggregate.max_ (attr ~rel:"R" "y") "mx" ]
      (Expr.and_
         (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"))
         (Expr.Is_not_null (attr ~rel:"R" "name")));
  ]

let test_paged_gmdj_equivalence () =
  let rel = mk_rel 3000 in
  with_file rel ~page_size:1024 (fun _path hf ->
      let pool = Buffer_pool.create ~frames:8 in
      let on_disk = Paged_gmdj.eval ~pool ~base:gmdj_base ~detail:hf gmdj_blocks in
      let in_memory = Gmdj.eval ~base:gmdj_base ~detail:(Relation.rename "R" rel) gmdj_blocks in
      Helpers.check_multiset_equal "paged = in-memory" in_memory on_disk)

let test_coalescing_halves_io () =
  let rel = mk_rel 3000 in
  with_file rel ~page_size:512 (fun _path hf ->
      let n_pages = Heap_file.pages hf in
      let b1 = [ List.nth gmdj_blocks 0 ] and b2 = [ List.nth gmdj_blocks 1 ] in
      (* Chained (un-coalesced) GMDJs: two scans of the detail file. *)
      let pool = Buffer_pool.create ~frames:4 in
      let chained = Paged_gmdj.eval_chained ~pool ~base:gmdj_base ~detail:hf [ b1; b2 ] in
      Alcotest.(check int) "two scans" (2 * n_pages)
        (Buffer_pool.stats pool).Buffer_pool.page_reads;
      (* Coalesced: one scan. *)
      let pool = Buffer_pool.create ~frames:4 in
      let coalesced = Paged_gmdj.eval ~pool ~base:gmdj_base ~detail:hf gmdj_blocks in
      Alcotest.(check int) "one scan" n_pages (Buffer_pool.stats pool).Buffer_pool.page_reads;
      Helpers.check_multiset_equal "same answers" chained coalesced)

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          Helpers.qtest ~count:300 "tuple roundtrip"
            (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8) value_gen)
            codec_roundtrip;
          Helpers.qtest ~count:300 "specialized plan agrees with the generic codec" plan_case_gen
            plan_codec_agrees;
          Alcotest.test_case "corruption raises structured diagnostics" `Quick
            test_codec_structured_errors;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "write/scan/reopen" `Quick test_heap_roundtrip;
          Alcotest.test_case "validation" `Quick test_heap_errors;
          Alcotest.test_case "codec modes read identically" `Quick test_codec_modes_agree;
          Alcotest.test_case "a corrupt page names its file and page" `Quick
            test_corrupt_page_is_diagnosed;
          Alcotest.test_case "source matches scan on a small pool" `Quick
            test_source_matches_scan;
        ] );
      ( "append",
        [
          Alcotest.test_case "append grows pages and survives reopen" `Quick
            test_append_roundtrip;
          Alcotest.test_case "batch is schema-checked before writing" `Quick
            test_append_validates_batch;
          Alcotest.test_case "shared pool never serves a stale tail" `Quick
            test_append_invalidates_shared_pool;
          Alcotest.test_case "source_range streams exactly the delta" `Quick
            test_source_range_streams_exact_delta;
        ] );
      ("buffer-pool", [ Alcotest.test_case "caching and eviction" `Quick test_pool_caching ]);
      ( "paged-gmdj",
        [
          Alcotest.test_case "matches in-memory evaluation" `Quick test_paged_gmdj_equivalence;
          Alcotest.test_case "coalescing halves page I/O" `Quick test_coalescing_halves_io;
        ] );
    ]
