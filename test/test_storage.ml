(* Paged storage: tuple codec, heap files, buffer pool, and disk-resident
   GMDJ evaluation with exact I/O accounting. *)

open Subql_relational
open Subql_gmdj
open Subql_storage

let attr = Expr.attr

let tmp_path () = Filename.temp_file "subql_hf" ".dat"

(* --- Codec ------------------------------------------------------------- *)

let value_gen =
  QCheck2.Gen.(
    frequency
      [
        (1, return Value.Null);
        (3, map (fun i -> Value.Int i) int);
        (2, map (fun f -> Value.Float f) (float_range (-1e12) 1e12));
        (2, map (fun s -> Value.Str s) (string_size ~gen:char (int_range 0 40)));
        (1, map (fun b -> Value.Bool b) bool);
      ])

let codec_roundtrip values =
  let buf = Buffer.create 64 in
  let tuple = Array.of_list values in
  Codec.encode_tuple buf tuple;
  let bytes = Buffer.to_bytes buf in
  let pos = ref 0 in
  let decoded = Codec.decode_tuple bytes ~pos ~arity:(Array.length tuple) in
  !pos = Bytes.length bytes
  && Bytes.length bytes = Codec.tuple_bytes tuple
  && Array.length decoded = Array.length tuple
  && Array.for_all2
       (fun a b ->
         match a, b with
         | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
         | _ -> Value.equal a b && Value.is_null a = Value.is_null b)
       tuple decoded

(* --- Heap files ---------------------------------------------------------- *)

let mk_rel n =
  Relation.of_list
    (Schema.of_list
       [
         Schema.attr ~rel:"R" "k" Value.Tint;
         Schema.attr ~rel:"R" "name" Value.Tstring;
         Schema.attr ~rel:"R" "y" Value.Tint;
       ])
    (List.init n (fun i ->
         [|
           Value.Int (i mod 17);
           (if i mod 5 = 0 then Value.Null else Value.Str (Printf.sprintf "row-%d" i));
           Value.Int (i * 3);
         |]))

let with_file rel ?page_size f =
  let path = tmp_path () in
  let hf = Heap_file.write ~path ?page_size rel in
  Fun.protect
    ~finally:(fun () ->
      Heap_file.close hf;
      Sys.remove path)
    (fun () -> f path hf)

let test_heap_roundtrip () =
  let rel = mk_rel 1000 in
  with_file rel ~page_size:512 (fun path hf ->
      Alcotest.(check int) "row count" 1000 (Heap_file.row_count hf);
      Alcotest.(check bool) "multiple pages" true (Heap_file.pages hf > 10);
      let pool = Buffer_pool.create ~frames:4 in
      Helpers.check_multiset_equal "write/scan roundtrip" rel (Heap_file.to_relation hf ~pool);
      (* Reopen from disk and scan again. *)
      let reopened = Heap_file.openfile ~path ~schema:(Relation.schema rel) in
      Helpers.check_multiset_equal "reopen roundtrip" rel (Heap_file.to_relation reopened ~pool);
      Heap_file.close reopened)

let test_heap_errors () =
  let rel = mk_rel 3 in
  with_file rel (fun path hf ->
      ignore hf;
      (match
         Heap_file.openfile ~path
           ~schema:(Schema.of_list [ Schema.attr "only_one" Value.Tint ])
       with
      | exception Invalid_argument _ -> ()
      | hf2 ->
        Heap_file.close hf2;
        Alcotest.fail "arity mismatch must be rejected");
      let big =
        Relation.of_list
          (Schema.of_list [ Schema.attr "s" Value.Tstring ])
          [ [| Value.Str (String.make 600 'x') |] ]
      in
      match Heap_file.write ~path:(tmp_path ()) ~page_size:128 big with
      | exception Invalid_argument _ -> ()
      | hf2 ->
        Heap_file.close hf2;
        Alcotest.fail "oversized tuple must be rejected")

(* The three read paths — tuple-at-a-time [scan], page-at-a-time
   [scan_pages] and the pull [source] — must deliver the same tuples in
   the same (file) order, and the source must complete on a pool smaller
   than the file without growing past its frame budget. *)
let test_source_matches_scan () =
  let rel = mk_rel 1200 in
  with_file rel ~page_size:512 (fun _path hf ->
      let frames = 3 in
      Alcotest.(check bool) "file exceeds pool" true (Heap_file.pages hf > frames);
      let via_scan =
        let pool = Buffer_pool.create ~frames in
        let acc = ref [] in
        Heap_file.scan hf ~pool (fun t -> acc := t :: !acc);
        List.rev !acc
      in
      let via_pages =
        let pool = Buffer_pool.create ~frames in
        let acc = ref [] in
        Heap_file.scan_pages hf ~pool (fun page ->
            Array.iter (fun t -> acc := t :: !acc) page);
        List.rev !acc
      in
      let via_source, resident =
        let pool = Buffer_pool.create ~frames in
        let rows =
          Chunk.Source.fold
            (fun acc chunk -> Chunk.fold (fun acc t -> t :: acc) acc chunk)
            [] (Heap_file.source hf ~pool)
        in
        (List.rev rows, Buffer_pool.resident pool)
      in
      let same_order a b = List.length a = List.length b && List.for_all2 Tuple.equal a b in
      Alcotest.(check bool) "scan_pages order matches scan" true (same_order via_scan via_pages);
      Alcotest.(check bool) "source order matches scan" true (same_order via_scan via_source);
      Alcotest.(check int) "all rows delivered" 1200 (List.length via_source);
      Alcotest.(check bool) "pool stays within frames" true (resident <= frames))

(* --- Buffer pool ---------------------------------------------------------- *)

let test_pool_caching () =
  let rel = mk_rel 2000 in
  with_file rel ~page_size:512 (fun _path hf ->
      let n_pages = Heap_file.pages hf in
      (* Pool larger than the file: the second scan is all hits. *)
      let pool = Buffer_pool.create ~frames:(n_pages + 4) in
      Heap_file.scan hf ~pool (fun _ -> ());
      let cold = Buffer_pool.stats pool in
      Alcotest.(check int) "cold scan reads every page" n_pages cold.Buffer_pool.page_reads;
      (* [stats] is a snapshot: the cold-scan copy must not change... *)
      Heap_file.scan hf ~pool (fun _ -> ());
      Alcotest.(check int) "snapshot unaffected by warm scan" 0 cold.Buffer_pool.hits;
      (* ...while a fresh snapshot sees the warm scan. *)
      let warm = Buffer_pool.stats pool in
      Alcotest.(check int) "warm scan reads nothing" n_pages warm.Buffer_pool.page_reads;
      Alcotest.(check int) "warm scan hits every page" n_pages warm.Buffer_pool.hits;
      Alcotest.(check (float 1e-9)) "hit rate is hits over accesses" 0.5
        (Buffer_pool.hit_rate pool);
      (* Pool smaller than the file: sequential scans miss every page but
         never grow beyond the frame budget. *)
      let small = Buffer_pool.create ~frames:4 in
      Heap_file.scan hf ~pool:small (fun _ -> ());
      Heap_file.scan hf ~pool:small (fun _ -> ());
      let s = Buffer_pool.stats small in
      Alcotest.(check int) "bounded residency" 4 (Buffer_pool.resident small);
      Alcotest.(check int) "two cold scans" (2 * n_pages) s.Buffer_pool.page_reads;
      Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions > 0))

(* --- Paged GMDJ ------------------------------------------------------------ *)

let gmdj_base =
  Relation.of_list
    (Schema.of_list [ Schema.attr ~rel:"B" "k" Value.Tint ])
    (List.init 17 (fun i -> [| Value.Int i |]))

let gmdj_blocks =
  [
    Gmdj.block
      [ Aggregate.count_star "cnt"; Aggregate.sum (attr ~rel:"R" "y") "s" ]
      (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"));
    Gmdj.block
      [ Aggregate.max_ (attr ~rel:"R" "y") "mx" ]
      (Expr.and_
         (Expr.eq (attr ~rel:"B" "k") (attr ~rel:"R" "k"))
         (Expr.Is_not_null (attr ~rel:"R" "name")));
  ]

let test_paged_gmdj_equivalence () =
  let rel = mk_rel 3000 in
  with_file rel ~page_size:1024 (fun _path hf ->
      let pool = Buffer_pool.create ~frames:8 in
      let on_disk = Paged_gmdj.eval ~pool ~base:gmdj_base ~detail:hf gmdj_blocks in
      let in_memory = Gmdj.eval ~base:gmdj_base ~detail:(Relation.rename "R" rel) gmdj_blocks in
      Helpers.check_multiset_equal "paged = in-memory" in_memory on_disk)

let test_coalescing_halves_io () =
  let rel = mk_rel 3000 in
  with_file rel ~page_size:512 (fun _path hf ->
      let n_pages = Heap_file.pages hf in
      let b1 = [ List.nth gmdj_blocks 0 ] and b2 = [ List.nth gmdj_blocks 1 ] in
      (* Chained (un-coalesced) GMDJs: two scans of the detail file. *)
      let pool = Buffer_pool.create ~frames:4 in
      let chained = Paged_gmdj.eval_chained ~pool ~base:gmdj_base ~detail:hf [ b1; b2 ] in
      Alcotest.(check int) "two scans" (2 * n_pages)
        (Buffer_pool.stats pool).Buffer_pool.page_reads;
      (* Coalesced: one scan. *)
      let pool = Buffer_pool.create ~frames:4 in
      let coalesced = Paged_gmdj.eval ~pool ~base:gmdj_base ~detail:hf gmdj_blocks in
      Alcotest.(check int) "one scan" n_pages (Buffer_pool.stats pool).Buffer_pool.page_reads;
      Helpers.check_multiset_equal "same answers" chained coalesced)

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          Helpers.qtest ~count:300 "tuple roundtrip"
            (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 8) value_gen)
            codec_roundtrip;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "write/scan/reopen" `Quick test_heap_roundtrip;
          Alcotest.test_case "validation" `Quick test_heap_errors;
          Alcotest.test_case "source matches scan on a small pool" `Quick
            test_source_matches_scan;
        ] );
      ("buffer-pool", [ Alcotest.test_case "caching and eviction" `Quick test_pool_caching ]);
      ( "paged-gmdj",
        [
          Alcotest.test_case "matches in-memory evaluation" `Quick test_paged_gmdj_equivalence;
          Alcotest.test_case "coalescing halves page I/O" `Quick test_coalescing_halves_io;
        ] );
    ]
