(* olap_cli — generate warehouse data, run SQL with any engine, explain
   plans.

   Examples:
     olap_cli generate --workload netflow --flows 100000 --out /tmp/warehouse
     olap_cli run "SELECT * FROM User u WHERE EXISTS (SELECT * FROM Flow f \
                   WHERE f.SourceIP = u.IPAddress)" --engine gmdj-opt --time
     olap_cli explain "SELECT ..." *)

open Subql_relational
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Data sources                                                         *)
(* ------------------------------------------------------------------ *)

let netflow_catalog ~flows ~users ~seed =
  Subql_workload.Netflow.generate
    {
      Subql_workload.Netflow.default_config with
      Subql_workload.Netflow.n_flows = flows;
      n_users = users;
      seed = Int64.of_int seed;
    }

let tpc_catalog ~scale ~seed =
  let config = Subql_workload.Tpc.scaled scale in
  Subql_workload.Tpc.generate { config with Subql_workload.Tpc.seed = Int64.of_int seed }

(* On-disk format: <table>.csv plus <table>.schema with one
   "<name> <type>" line per column. *)

let ty_of_string = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstring
  | "bool" -> Value.Tbool
  | other -> failwith (Printf.sprintf "unknown column type %S in schema file" other)

let save_catalog dir catalog =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name ->
      let rel = Catalog.find catalog name in
      Table_io.to_csv_file (Filename.concat dir (name ^ ".csv")) rel;
      let oc = open_out (Filename.concat dir (name ^ ".schema")) in
      Schema.to_list (Relation.schema rel)
      |> List.iter (fun a ->
             Printf.fprintf oc "%s %s\n" a.Schema.name (Value.ty_to_string a.Schema.ty));
      close_out oc;
      Printf.printf "wrote %s (%d rows)\n" (name ^ ".csv") (Relation.cardinality rel))
    (Catalog.tables catalog)

let load_catalog dir =
  let catalog = Catalog.create () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".schema")
  |> List.iter (fun schema_file ->
         let table = Filename.chop_suffix schema_file ".schema" in
         let attrs =
           In_channel.with_open_text (Filename.concat dir schema_file) In_channel.input_lines
           |> List.filter (fun l -> String.trim l <> "")
           |> List.map (fun line ->
                  match String.split_on_char ' ' (String.trim line) with
                  | [ name; ty ] -> Schema.attr name (ty_of_string ty)
                  | _ -> failwith (Printf.sprintf "malformed schema line %S" line))
         in
         let schema = Schema.of_list attrs in
         let rel = Table_io.of_csv_file schema (Filename.concat dir (table ^ ".csv")) in
         Catalog.add catalog table rel);
  catalog

let resolve_catalog data workload flows users scale seed =
  match data with
  | Some dir -> load_catalog dir
  | None -> (
    match workload with
    | "netflow" -> netflow_catalog ~flows ~users ~seed
    | "tpc" -> tpc_catalog ~scale ~seed
    | other -> failwith (Printf.sprintf "unknown workload %S (use netflow or tpc)" other))

(* ------------------------------------------------------------------ *)
(* Engines                                                              *)
(* ------------------------------------------------------------------ *)

let engine_names =
  [ "auto"; "native"; "native-plain"; "unnest"; "unnest-noidx"; "gmdj"; "gmdj-scan"; "gmdj-opt" ]

(* [config] carries the execution mode (join/GMDJ strategy, domains, spill
   budget); the native engines do not go through the algebra and ignore it. *)
let run_engine ~config engine catalog query =
  match engine with
  | "auto" -> Subql.Planner.run ~config catalog query
  | "native" -> Subql_nested.Naive_eval.eval ~mode:Subql_nested.Naive_eval.Smart catalog query
  | "native-plain" ->
    Subql_nested.Naive_eval.eval ~mode:Subql_nested.Naive_eval.Plain catalog query
  | "unnest" | "unnest-noidx" ->
    Subql.Eval.eval ~config catalog (Subql_unnest.Unnest.best catalog query)
  | "gmdj" | "gmdj-scan" ->
    Subql.Eval.eval ~config catalog (Subql.Transform.to_algebra query)
  | "gmdj-opt" ->
    Subql.Eval.eval ~config catalog
      (Subql.Optimize.optimize (Subql.Transform.to_algebra query))
  | other ->
    failwith
      (Printf.sprintf "unknown engine %S (known: %s)" other (String.concat ", " engine_names))

let parse_sql sql =
  match Subql_sql.Parser.parse sql with
  | stmt -> stmt
  | exception Subql_sql.Parser.Parse_error _ ->
    prerr_endline (Subql_sql.Parser.parse_exn_to_string sql);
    exit 1

(* ------------------------------------------------------------------ *)
(* Common options                                                       *)
(* ------------------------------------------------------------------ *)

let data_arg =
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR" ~doc:"Load tables from $(docv) (as written by $(b,generate)).")

let workload_arg =
  Arg.(value & opt string "netflow" & info [ "workload" ] ~docv:"NAME" ~doc:"Built-in workload: $(b,netflow) or $(b,tpc).")

let flows_arg =
  Arg.(value & opt int 50_000 & info [ "flows" ] ~doc:"Number of Flow rows (netflow).")

let users_arg =
  Arg.(value & opt int 500 & info [ "users" ] ~doc:"Number of User rows (netflow).")

let scale_arg =
  Arg.(value & opt float 0.001 & info [ "scale" ] ~doc:"Scale factor (tpc).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let default_domains = min (Domain.recommended_domain_count ()) 4

let domains_arg =
  Arg.(value & opt int default_domains & info [ "domains" ] ~docv:"N"
         ~doc:"Execute pipeline breakers and GMDJs across $(docv) domains \
               (default: the machine's recommended count, capped at 4). \
               1 disables the exchange.")

let spill_budget_arg =
  Arg.(value & opt int 0 & info [ "spill-budget" ] ~docv:"ROWS"
         ~doc:"Cap pipeline-breaker hash state at $(docv) resident rows; the \
               excess is partitioned through temp heap files and merged in a \
               second pass. 0 keeps everything in memory.")

(* Apply the execution-mode flags to a base config.  --spill-budget 0 means
   "never spill"; Eval gives an explicit budget precedence over the exchange
   at breakers, so both flags compose. *)
let exec_config base ~domains ~spill_budget =
  {
    base with
    Subql.Eval.domains;
    spill_budget_rows = (if spill_budget <= 0 then None else Some spill_budget);
  }

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run workload flows users scale seed out =
    let catalog = resolve_catalog None workload flows users scale seed in
    save_catalog out catalog
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a workload and write it as CSV files")
    Term.(const run $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg $ out_arg)

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"The query.")

let run_cmd =
  let engine_arg =
    Arg.(value & opt string "gmdj-opt" & info [ "engine" ] ~docv:"ENGINE"
           ~doc:(Printf.sprintf "One of: %s." (String.concat ", " engine_names)))
  in
  let time_arg = Arg.(value & flag & info [ "time" ] ~doc:"Report evaluation time.") in
  let analyze_arg =
    Arg.(value & flag & info [ "analyze" ] ~doc:"Print the instrumented operator tree (gmdj engines only).")
  in
  let explain_analyze_arg =
    Arg.(value & flag & info [ "explain-analyze" ]
           ~doc:"Evaluate with full instrumentation and print the annotated plan tree \
                 (rows in/out, timings, buffer-pool hits/reads, GMDJ detail-scan counts).")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"After the query, dump the process metrics registry (counters, gauges, \
                 histograms).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json"
           ~doc:"Record execution spans and export them as Chrome-tracing JSON to $(docv) \
                 (open with chrome://tracing or Perfetto).")
  in
  let limit_arg =
    Arg.(value & opt int 50 & info [ "limit" ] ~doc:"Print at most this many rows.")
  in
  let run data workload flows users scale seed domains spill_budget engine timed analyze
      explain_analyze metrics trace_file limit sql =
    let catalog = resolve_catalog data workload flows users scale seed in
    let stmt = parse_sql sql in
    Option.iter (fun _ -> Subql_obs.Trace.set_enabled true) trace_file;
    let query = stmt.Subql_sql.Parser.query in
    (* The instrumented paths need an algebra plan; engines that do not go
       through the algebra (the native engines) analyze the optimized GMDJ plan. *)
    let plan_for_analysis () =
      match engine with
      | "auto" ->
        let c = Subql.Planner.choose catalog query in
        Format.printf "planner: chose %s (est. cost %.0f, est. rows %.0f)@."
          c.Subql.Planner.label c.Subql.Planner.estimate.Subql.Cost.cost
          c.Subql.Planner.estimate.Subql.Cost.rows;
        c.Subql.Planner.plan
      | "unnest" | "unnest-noidx" -> Subql_unnest.Unnest.best catalog query
      | "gmdj" | "gmdj-scan" -> Subql.Transform.to_algebra query
      | _ -> Subql.Optimize.optimize (Subql.Transform.to_algebra query)
    in
    let config =
      let base =
        if engine = "gmdj-scan" || engine = "unnest-noidx" then Subql.Eval.unindexed_config
        else Subql.Eval.default_config
      in
      exec_config base ~domains ~spill_budget
    in
    let t0 = Unix.gettimeofday () in
    let feedback = ref None in
    let result =
      if explain_analyze then begin
        let result, node = Subql.Eval.eval_analyzed ~config catalog (plan_for_analysis ()) in
        Format.printf "%a@." Subql_obs.Explain.pp node;
        result
      end
      else if analyze then begin
        let result, trace = Subql.Eval.eval_traced ~config catalog (plan_for_analysis ()) in
        Format.printf "%a@." Subql.Eval.pp_trace trace;
        result
      end
      else if engine = "auto" then begin
        let result, fb = Subql.Planner.run_with_feedback ~config catalog query in
        feedback := Some fb;
        result
      end
      else run_engine ~config engine catalog query
    in
    let result = Subql_sql.Parser.apply_grouping stmt result in
    let result = Subql_sql.Parser.apply_post stmt result in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%a" Relation.pp (Ops.limit limit result);
    if Relation.cardinality result > limit then
      Format.printf "(%d rows total, showing %d)@." (Relation.cardinality result) limit;
    if timed then begin
      Format.printf "engine %s: %.3fs" engine dt;
      (match !feedback with
      | Some fb ->
        Format.printf " (plan %s, q-error %.2f)" fb.Subql.Planner.candidate.Subql.Planner.label
          fb.Subql.Planner.q_error
      | None -> ());
      let peak =
        Subql_obs.Metrics.gauge_value
          (Subql_obs.Metrics.gauge Subql_obs.Metrics.default "eval.peak_materialized_rows")
      in
      if peak > 0.0 then Format.printf ", peak %.0f materialized rows" peak;
      Format.printf "@."
    end;
    Option.iter
      (fun path ->
        Subql_obs.Trace.export path;
        Format.printf "trace written to %s@." path)
      trace_file;
    if metrics then
      Format.printf "@.== metrics ==@.%s" (Subql_obs.Metrics.render Subql_obs.Metrics.default)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Parse and evaluate a SQL query")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ domains_arg $ spill_budget_arg $ engine_arg $ time_arg $ analyze_arg
      $ explain_analyze_arg $ metrics_arg $ trace_arg $ limit_arg $ sql_arg)

let explain_cmd =
  let run data workload flows users scale seed sql =
    let stmt = parse_sql sql in
    let query = stmt.Subql_sql.Parser.query in
    Format.printf "Nested query expression:@.  %a@.@." Subql_nested.Nested_ast.pp_query query;
    let plan = Subql.Transform.to_algebra query in
    Format.printf "SubqueryToGMDJ translation:@.@[<v 2>  %a@]@.@." Subql.Algebra.pp plan;
    Format.printf "After coalescing and completion:@.@[<v 2>  %a@]@.@." Subql.Algebra.pp
      (Subql.Optimize.optimize plan);
    (match Subql_unnest.Unnest.via_semijoins (Catalog.create ()) query with
    | alg -> Format.printf "Classical join unnesting:@.@[<v 2>  %a@]@.@." Subql.Algebra.pp alg
    | exception Subql_unnest.Unnest.Not_applicable reason ->
      Format.printf "Classical join unnesting: not applicable (%s)@.@." reason);
    let catalog = resolve_catalog data workload flows users scale seed in
    Format.printf "Cost-based ranking over this catalog:@.";
    let stats = Subql.Cost.Stats.of_catalog catalog in
    List.iter
      (fun c ->
        Format.printf "  %-18s cost %12.0f, est. rows %8.0f, mem height %8.0f@."
          c.Subql.Planner.label c.Subql.Planner.estimate.Subql.Cost.cost
          c.Subql.Planner.estimate.Subql.Cost.rows
          (Subql.Cost.memory_height stats ~config:Subql.Eval.default_config
             c.Subql.Planner.plan))
      (Subql.Planner.candidates catalog query)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the plans every engine would run")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ sql_arg)

let batch_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"File of SQL queries separated by semicolons.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Run the whole batch $(docv) times against one result cache — later \
                 rounds demonstrate cache hits.")
  in
  let min_cost_arg =
    Arg.(value & opt float 0. & info [ "cache-min-cost" ] ~docv:"COST"
           ~doc:"Cost-aware admission threshold: only results whose plan cost estimate \
                 is at least $(docv) enter the cache.")
  in
  let run data workload flows users scale seed file repeat min_cost =
    let catalog = resolve_catalog data workload flows users scale seed in
    let text = In_channel.with_open_text file In_channel.input_all in
    let stmts =
      String.split_on_char ';' text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map parse_sql
    in
    if stmts = [] then failwith (Printf.sprintf "no queries in %s" file);
    let queries = List.map (fun s -> s.Subql_sql.Parser.query) stmts in
    let cache = Subql_mqo.Result_cache.create ~min_cost () in
    for round = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let report = Subql_mqo.Batch.run ~cache catalog queries in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "round %d: %d queries in %.3fs@." round (List.length queries) dt;
      List.iter2
        (fun stmt (i, result) ->
          let result = Subql_sql.Parser.apply_grouping stmt result in
          let result = Subql_sql.Parser.apply_post stmt result in
          Format.printf "  q%d: %d rows@." i (Relation.cardinality result))
        stmts report.Subql_mqo.Batch.results;
      Format.printf "  cache: %d hits, %d misses (%d deduplicated in batch); %d entries, %d bytes resident@."
        report.Subql_mqo.Batch.cache_hits report.Subql_mqo.Batch.cache_misses
        report.Subql_mqo.Batch.deduplicated
        (Subql_mqo.Result_cache.entries cache)
        (Subql_mqo.Result_cache.resident_bytes cache);
      Format.printf "  sharing: %d queries in %d shared GMDJ groups@."
        report.Subql_mqo.Batch.grouped report.Subql_mqo.Batch.groups;
      Format.printf "  detail scans: %d (naive baseline: %d)@."
        report.Subql_mqo.Batch.shared_detail_scans
        report.Subql_mqo.Batch.naive_detail_scans
    done
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Evaluate a file of queries as one batch: fingerprint deduplication, \
             cross-query GMDJ sharing, and a result cache across repeats")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ file_arg $ repeat_arg $ min_cost_arg)

let analyze_cmd =
  let sql_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL"
           ~doc:"The query to analyze (omit when using $(b,--zoo)).")
  in
  let zoo_arg =
    Arg.(value & opt (some string) None & info [ "zoo" ] ~docv:"NAME"
           ~doc:"Analyze a query-zoo template by name, or $(b,all) for the whole zoo \
                 (over the deterministic O/I/J database).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the reports as a JSON array.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ]
           ~doc:"Skip the rewrite verifier (typing and lints only).")
  in
  let certify_arg =
    Arg.(value & flag & info [ "certify" ]
           ~doc:"Run the certificate passes on top of analysis: sound cardinality \
                 intervals and the certified memory bound, parallel-merge lawfulness \
                 ($(b,PAR00x)), and delta-maintainability ($(b,ING00x)).")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Certify templates across N worker domains (output is byte-stable \
                 regardless of N).  Only meaningful with $(b,--certify).")
  in
  let run data workload flows users scale seed zoo json no_verify certify domains sql =
    let targets, catalog =
      match zoo, sql with
      | Some "all", _ ->
        Subql_workload.Zoo.queries, Subql_workload.Zoo.catalog ()
      | Some name, _ ->
        [ (name, Subql_workload.Zoo.find_query name) ], Subql_workload.Zoo.catalog ()
      | None, Some sql ->
        let stmt = parse_sql sql in
        ( [ ("query", stmt.Subql_sql.Parser.query) ],
          resolve_catalog data workload flows users scale seed )
      | None, None -> failwith "pass a SQL query or --zoo NAME|all"
    in
    if not no_verify then Subql_analysis.Verify.install_optimizer_check catalog;
    let errors =
      Fun.protect
        ~finally:(fun () ->
          if not no_verify then Subql_analysis.Verify.clear_optimizer_check ())
        (fun () ->
          if certify then begin
            let certs, _combined =
              Subql_analysis.Analyze.certify_all ~domains catalog targets
            in
            if json then
              print_endline
                (Subql_obs.Json.to_string
                   (Subql_obs.Json.List
                      (List.map Subql_analysis.Analyze.certified_to_json certs)))
            else
              List.iter
                (fun c -> Format.printf "%a@." Subql_analysis.Analyze.pp_certified c)
                certs;
            List.fold_left
              (fun n c -> n + Subql_analysis.Analyze.certified_errors c)
              0 certs
          end
          else begin
            let reports =
              List.map
                (fun (label, query) ->
                  Subql_analysis.Analyze.analyze_query catalog ~label query)
                targets
            in
            if json then
              print_endline
                (Subql_obs.Json.to_string
                   (Subql_obs.Json.List
                      (List.map Subql_analysis.Analyze.report_to_json reports)))
            else
              List.iter
                (fun r -> Format.printf "%a@." Subql_analysis.Analyze.pp_report r)
                reports;
            List.fold_left (fun n r -> n + Subql_analysis.Analyze.errors r) 0 reports
          end)
    in
    if errors > 0 then begin
      Format.eprintf "analyze: %d error-severity diagnostic(s)@." errors;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis of a query's plans: schema/type checking, nullability \
             dataflow, rewrite verification, lint rules, and (with $(b,--certify)) \
             resource and soundness certificates")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ zoo_arg $ json_arg $ no_verify_arg $ certify_arg $ domains_arg $ sql_opt_arg)

(* ------------------------------------------------------------------ *)
(* Serving loop                                                         *)
(* ------------------------------------------------------------------ *)

module Server = Subql_server.Server
module Admission = Subql_server.Admission
module Driver = Subql_server.Driver

let batch_window_arg =
  Arg.(value & opt float 0.02 & info [ "batch-window" ] ~docv:"SECONDS"
         ~doc:"Seal a batch once its oldest request has waited $(docv).")

let batch_max_arg =
  Arg.(value & opt int 16 & info [ "batch-max" ] ~docv:"N"
         ~doc:"Seal a batch early once $(docv) requests are queued.")

let mem_budget_arg =
  Arg.(value & opt float 0. & info [ "mem-budget" ] ~docv:"ROWS"
         ~doc:"Per-query memory budget: reject plans whose predicted peak of \
               materialized rows (Cost.memory_height) exceeds $(docv); 0 disables \
               the gate.")

let queue_cap_arg =
  Arg.(value & opt int 128 & info [ "queue-cap" ] ~docv:"N"
         ~doc:"Request-queue depth cap; submits against a full queue are shed with \
               a retry hint.")

let serve_min_cost_arg =
  Arg.(value & opt float 0. & info [ "cache-min-cost" ] ~docv:"COST"
         ~doc:"Result-cache admission threshold (plan cost estimate).")

let serve_metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"On exit, dump the metrics registry (includes the server.* series).")

let server_config window bmax mem_budget qcap ~domains ~spill_budget =
  {
    Server.batch_window = window;
    batch_max = bmax;
    policy =
      {
        Admission.mem_budget_rows = (if mem_budget <= 0. then infinity else mem_budget);
        queue_cap = qcap;
      };
    eval_config = exec_config Subql.Eval.default_config ~domains ~spill_budget;
  }

let pp_rejection ppf (r : Admission.rejection) =
  Format.fprintf ppf "rejected [%s] %s%s" r.Admission.diag.Diag.code
    r.Admission.diag.Diag.message
    (match r.Admission.retry_after with
    | Some s -> Printf.sprintf " (retry in %.3fs)" s
    | None -> "")

let print_batch (b : Server.batch_result) =
  List.iter
    (fun (c : Server.completion) ->
      Format.printf "%s: %d rows in %.3fs@." c.Server.ticket.Server.label
        (Relation.cardinality c.Server.result)
        (c.Server.completed -. c.Server.ticket.Server.submitted))
    b.Server.completions;
  let r = b.Server.report in
  Format.printf "batch of %d: %d detail scans (naive %d), %d cache hits@."
    (List.length b.Server.completions)
    r.Subql_mqo.Batch.shared_detail_scans r.Subql_mqo.Batch.naive_detail_scans
    r.Subql_mqo.Batch.cache_hits

let latency_quantile registry q =
  let snap = Subql_obs.Metrics.snapshot registry in
  match List.assoc_opt "server.latency_seconds" snap.Subql_obs.Metrics.histograms with
  | Some h -> Subql_obs.Metrics.quantile h q
  | None -> 0.

let print_server_summary registry =
  let c name = Subql_obs.Metrics.counter_value_by_name registry name in
  Format.printf "served %d queries in %d batches; rejected %d (budget %d, shed %d)@."
    (c "server.queries_served") (c "server.batches") (c "server.rejected")
    (c "server.rejected.budget") (c "server.rejected.queue");
  if c "server.queries_served" > 0 then
    Format.printf "latency p50 %.1fms, p99 %.1fms@."
      (1000. *. latency_quantile registry 0.5)
      (1000. *. latency_quantile registry 0.99);
  if c "ingest.batches" > 0 then
    Format.printf
      "ingested %d rows in %d batches; cache repaired %d, invalidated %d \
       (maintain: %d delta, %d recompute, %d restamp)@."
      (c "ingest.rows_appended") (c "ingest.batches") (c "mqo.cache.repaired")
      (c "mqo.cache.invalidated")
      (c "ingest.maintain.delta") (c "ingest.maintain.recompute")
      (c "ingest.maintain.restamp")

let serve_cmd =
  let run data workload flows users scale seed domains spill_budget window bmax mem_budget
      qcap min_cost metrics =
    let catalog = resolve_catalog data workload flows users scale seed in
    let config = server_config window bmax mem_budget qcap ~domains ~spill_budget in
    let cache = Subql_mqo.Result_cache.create ~min_cost () in
    let server = Server.create ~config ~cache catalog in
    let now () = Unix.gettimeofday () in
    Format.printf
      "serving (catalog resident, %d tables): batch window %.3fs, batch max %d, \
       queue cap %d, mem budget %s@.reading semicolon-terminated SQL from stdin; \
       EOF drains and exits@."
      (List.length (Catalog.tables catalog))
      window bmax qcap
      (if mem_budget <= 0. then "unlimited"
       else Printf.sprintf "%.0f rows" mem_budget);
    let step_due () =
      let rec go () =
        match Server.step server ~now:(now ()) with
        | Some b ->
          print_batch b;
          go ()
        | None -> ()
      in
      go ()
    in
    let submit_stmt sql =
      match Subql_sql.Parser.parse sql with
      | exception Subql_sql.Parser.Parse_error _ ->
        prerr_endline (Subql_sql.Parser.parse_exn_to_string sql)
      | stmt -> (
        match Server.submit server ~now:(now ()) stmt.Subql_sql.Parser.query with
        | Ok _ -> step_due () (* the submit may have size-sealed a batch *)
        | Error r -> Format.printf "%a@." pp_rejection r)
    in
    (* Split the input buffer into complete statements, keeping the
       trailing fragment. *)
    let pending = Buffer.create 256 in
    let flush_complete () =
      let text = Buffer.contents pending in
      Buffer.clear pending;
      let parts = String.split_on_char ';' text in
      let rec go = function
        | [] -> ()
        | [ tail ] -> Buffer.add_string pending tail
        | stmt :: rest ->
          if String.trim stmt <> "" then submit_stmt (String.trim stmt);
          go rest
      in
      go parts
    in
    let chunk = Bytes.create 4096 in
    let rec loop () =
      let timeout =
        match Server.next_deadline server with
        | Some d -> Float.max 0. (d -. now ())
        | None -> -1. (* idle: block until input *)
      in
      match Unix.select [ Unix.stdin ] [] [] timeout with
      | [], _, _ ->
        step_due ();
        loop ()
      | _ :: _, _, _ ->
        let n = Unix.read Unix.stdin chunk 0 (Bytes.length chunk) in
        if n = 0 then () (* EOF *)
        else begin
          Buffer.add_subbytes pending chunk 0 n;
          flush_complete ();
          loop ()
        end
    in
    loop ();
    let tail = String.trim (Buffer.contents pending) in
    if tail <> "" then submit_stmt tail;
    List.iter print_batch (Server.shutdown server ~now:(now ()));
    print_server_summary Subql_obs.Metrics.default;
    if metrics then
      Format.printf "@.== metrics ==@.%s"
        (Subql_obs.Metrics.render Subql_obs.Metrics.default)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived serving loop: read a SQL stream from stdin, admit it in \
             time/size-bounded batches with memory budgets and queue backpressure, \
             drain on EOF")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ domains_arg $ spill_budget_arg $ batch_window_arg $ batch_max_arg $ mem_budget_arg
      $ queue_cap_arg $ serve_min_cost_arg $ serve_metrics_arg)

let drive_cmd =
  let outer_arg =
    Arg.(value & opt int 64 & info [ "outer" ] ~doc:"Rows in the zoo's outer table O.")
  in
  let inner_arg =
    Arg.(value & opt int 10_000 & info [ "inner" ] ~doc:"Rows in each of I and J.")
  in
  let rate_arg =
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"QPS"
           ~doc:"Open-loop arrival rate (Poisson), queries per virtual second.")
  in
  let queries_arg =
    Arg.(value & opt int 400 & info [ "queries" ] ~docv:"N"
           ~doc:"Total queries to offer (open loop) or per client (closed loop).")
  in
  let skew_arg =
    Arg.(value & opt float 0.8 & info [ "skew" ]
           ~doc:"Probability a draw comes from the shareable same-detail templates.")
  in
  let mode_arg =
    Arg.(value & opt string "open" & info [ "mode" ] ~docv:"open|closed"
           ~doc:"Open loop (imposed Poisson arrivals, sheds dropped) or closed loop \
                 (clients wait for responses, sheds retried).")
  in
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Client population (closed loop).")
  in
  let think_arg =
    Arg.(value & opt float 0.005 & info [ "think" ] ~docv:"SECONDS"
           ~doc:"Per-client think time between queries (closed loop).")
  in
  let ingest_rate_arg =
    Arg.(value & opt float 0. & info [ "ingest-rate" ] ~docv:"BATCHES/S"
           ~doc:"Interleave append batches to the detail table I at $(docv) per \
                 virtual second (open loop only); 0 disables ingest.")
  in
  let ingest_batch_arg =
    Arg.(value & opt int 200 & info [ "ingest-batch" ] ~docv:"ROWS"
           ~doc:"Rows per interleaved append batch.")
  in
  let staleness_arg =
    Arg.(value & opt string "on-write" & info [ "staleness" ]
           ~docv:"on-write|on-read|recompute"
           ~doc:"When cached results are brought back to the current epoch: \
                 synchronously on every append, lazily before the next query \
                 batch, or never (stale entries drop and queries recompute).")
  in
  let run outer inner seed domains spill_budget window bmax mem_budget qcap min_cost
      metrics rate queries skew mode clients think ingest_rate ingest_batch staleness =
    let catalog = Subql_workload.Zoo.catalog ~outer ~inner () in
    let config = server_config window bmax mem_budget qcap ~domains ~spill_budget in
    let cache = Subql_mqo.Result_cache.create ~min_cost () in
    let server = Server.create ~config ~cache catalog in
    let tseed = Int64.of_int seed in
    let summary =
      match mode with
      | "open" when ingest_rate > 0. ->
        let policy =
          match Subql_ingest.Ingest.policy_of_string staleness with
          | Some p -> p
          | None ->
            failwith
              (Printf.sprintf "unknown staleness %S (use on-write, on-read or recompute)"
                 staleness)
        in
        let ing = Subql_ingest.Ingest.create ~policy ~catalog ~cache () in
        List.iter
          (fun t ->
            ignore (Subql_ingest.Ingest.register_query ing (Subql_workload.Zoo.find_query t)))
          Subql_workload.Zoo.same_detail_templates;
        (match policy with
        | Subql_ingest.Ingest.Maintain_on_read ->
          Server.set_before_batch server
            (Some (fun ~now -> Subql_ingest.Ingest.before_batch ing ~now))
        | _ -> ());
        let arrivals =
          Subql_workload.Traffic.open_loop ~seed:tseed ~rate ~count:queries ~skew ()
        in
        let batch_no = ref 0 in
        let events =
          Subql_workload.Traffic.with_ingest ~rows:ingest_batch
            ~every:(1. /. ingest_rate) arrivals
          |> List.map (function
               | Subql_workload.Traffic.Query a ->
                 Driver.Query
                   {
                     Driver.at = a.Subql_workload.Traffic.at;
                     label = a.Subql_workload.Traffic.template;
                     query =
                       Subql_workload.Zoo.find_query a.Subql_workload.Traffic.template;
                   }
               | Subql_workload.Traffic.Append ia ->
                 Driver.Ingest
                   {
                     Driver.at = ia.Subql_workload.Traffic.at;
                     label = "append";
                     apply =
                       (fun () ->
                         incr batch_no;
                         let rows =
                           Subql_workload.Zoo.detail_rows
                             ~seed:(Int64.of_int ((seed * 1_000) + !batch_no))
                             ia.Subql_workload.Traffic.rows
                         in
                         ignore (Subql_ingest.Ingest.append ing ~table:"I" rows);
                         Array.length rows);
                   })
        in
        Format.printf
          "drive: open loop, %d queries at %.0f q/s + ingest %.1f batches/s x %d rows \
           (staleness %s, skew %.2f, seed %d)@."
          queries rate ingest_rate ingest_batch
          (Subql_ingest.Ingest.policy_name policy)
          skew seed;
        let ms = Driver.replay_mixed server events in
        Format.printf "ingest: %d batches, %d rows, %.3fs measured apply+maintain@."
          ms.Driver.ingest_batches ms.Driver.ingest_rows ms.Driver.ingest_seconds;
        ms.Driver.queries
      | "open" ->
        let events =
          Subql_workload.Traffic.open_loop ~seed:tseed ~rate ~count:queries ~skew ()
          |> List.map (fun (a : Subql_workload.Traffic.arrival) ->
                 {
                   Driver.at = a.Subql_workload.Traffic.at;
                   label = a.Subql_workload.Traffic.template;
                   query =
                     Subql_workload.Zoo.find_query a.Subql_workload.Traffic.template;
                 })
        in
        Format.printf "drive: open loop, %d queries at %.0f q/s (skew %.2f, seed %d)@."
          queries rate skew seed;
        Driver.replay server events
      | "closed" ->
        let streams =
          Subql_workload.Traffic.closed_loop ~seed:tseed ~clients ~per_client:queries
            ~skew ()
          |> List.map
               (List.map (fun t -> (t, Subql_workload.Zoo.find_query t)))
        in
        Format.printf
          "drive: closed loop, %d clients x %d queries, think %.3fs (skew %.2f, seed %d)@."
          clients queries think skew seed;
        Driver.run_closed server ~clients:streams ~think
      | other -> failwith (Printf.sprintf "unknown mode %S (use open or closed)" other)
    in
    Format.printf "offered %d, completed %d, shed %d, budget-rejected %d, batches %d@."
      summary.Driver.offered summary.Driver.completed summary.Driver.shed
      summary.Driver.rejected_budget summary.Driver.batches;
    let p q = 1000. *. Driver.percentile summary.Driver.latencies q in
    Format.printf "latency p50 %.1fms, p90 %.1fms, p99 %.1fms, max %.1fms@." (p 50.)
      (p 90.) (p 99.) (p 100.);
    if summary.Driver.duration > 0. then
      Format.printf "throughput %.1f q/s over %.3fs virtual (%.3fs measured evaluation)@."
        (float_of_int summary.Driver.completed /. summary.Driver.duration)
        summary.Driver.duration summary.Driver.exec_seconds;
    let per_query =
      if summary.Driver.completed = 0 then 0.
      else float_of_int summary.Driver.detail_scans /. float_of_int summary.Driver.completed
    in
    Format.printf
      "detail scans/query %.3f (naive %.2f); cache hits %d/%d; peak queue depth %d@."
      per_query
      (if summary.Driver.completed = 0 then 0.
       else
         float_of_int summary.Driver.naive_detail_scans
         /. float_of_int summary.Driver.completed)
      summary.Driver.cache_hits
      (summary.Driver.cache_hits + summary.Driver.cache_misses)
      summary.Driver.max_queue_depth;
    print_server_summary Subql_obs.Metrics.default;
    if metrics then
      Format.printf "@.== metrics ==@.%s"
        (Subql_obs.Metrics.render Subql_obs.Metrics.default)
  in
  Cmd.v
    (Cmd.info "drive"
       ~doc:"Generate a deterministic traffic trace over the query zoo — optionally \
             interleaved with ingest batches — and replay it against the serving \
             loop, printing the latency summary")
    Term.(
      const run $ outer_arg $ inner_arg $ seed_arg $ domains_arg $ spill_budget_arg
      $ batch_window_arg $ batch_max_arg $ mem_budget_arg $ queue_cap_arg
      $ serve_min_cost_arg $ serve_metrics_arg $ rate_arg $ queries_arg $ skew_arg
      $ mode_arg $ clients_arg $ think_arg $ ingest_rate_arg $ ingest_batch_arg
      $ staleness_arg)

let ingest_cmd =
  let batches_arg =
    Arg.(value & opt int 8 & info [ "batches" ] ~doc:"Append batches to apply.")
  in
  let batch_rows_arg =
    Arg.(value & opt int 500 & info [ "batch-rows" ] ~doc:"Rows per append batch.")
  in
  let staleness_arg =
    Arg.(value & opt string "on-write" & info [ "staleness" ]
           ~docv:"on-write|on-read|recompute"
           ~doc:"Maintenance policy for cached results across appends.")
  in
  let run data workload flows users scale seed batches batch_rows staleness min_cost
      metrics =
    let catalog = resolve_catalog data workload flows users scale seed in
    let policy =
      match Subql_ingest.Ingest.policy_of_string staleness with
      | Some p -> p
      | None ->
        failwith
          (Printf.sprintf "unknown staleness %S (use on-write, on-read or recompute)"
             staleness)
    in
    let cache = Subql_mqo.Result_cache.create ~min_cost () in
    let ing = Subql_ingest.Ingest.create ~policy ~catalog ~cache () in
    (* A canonical netflow subquery whose detail side is the appended
       table: users with at least one dumped flow from their address. *)
    let sql =
      "SELECT * FROM User u WHERE EXISTS (SELECT * FROM Flow f WHERE f.SourceIP = \
       u.IPAddress)"
    in
    let stmt = parse_sql sql in
    let entry = Subql_mqo.Batch.prepare stmt.Subql_sql.Parser.query in
    ignore (Subql_ingest.Ingest.register_query ing stmt.Subql_sql.Parser.query);
    Format.printf "ingest demo: %s@.query: %s@."
      (Subql_ingest.Ingest.policy_name policy)
      sql;
    let ask tag =
      let rep = Subql_mqo.Batch.run_prepared ~cache catalog [ entry ] in
      let rows =
        match rep.Subql_mqo.Batch.results with
        | [ (_, r) ] -> Relation.cardinality r
        | _ -> 0
      in
      Format.printf "  %s: %d rows (%s)@." tag rows
        (if rep.Subql_mqo.Batch.cache_hits > 0 then "cache hit" else "evaluated")
    in
    ask "warm";
    let nf =
      {
        Subql_workload.Netflow.default_config with
        n_flows = flows;
        n_users = users;
        seed = Int64.of_int seed;
      }
    in
    let print_report (r : Subql_ingest.Maintenance.report) =
      Format.printf
        "  maintain: %d delta (%d rows folded, %d scan rows avoided), %d recompute, \
         %d restamp@."
        r.Subql_ingest.Maintenance.delta_maintained r.Subql_ingest.Maintenance.delta_rows
        r.Subql_ingest.Maintenance.avoided_rows r.Subql_ingest.Maintenance.recomputed
        r.Subql_ingest.Maintenance.restamped
    in
    for b = 1 to batches do
      let rows =
        Subql_workload.Netflow.flow_rows ~seed:(Int64.of_int ((seed * 1_000) + b)) nf
          batch_rows
      in
      Format.printf "batch %d: +%d Flow rows@." b (Array.length rows);
      (match Subql_ingest.Ingest.append ing ~table:"Flow" rows with
      | Some r -> print_report r
      | None -> Format.printf "  maintenance deferred (%s)@." staleness);
      (match policy with
      | Subql_ingest.Ingest.Maintain_on_read -> (
        match Subql_ingest.Ingest.sync ing with Some r -> print_report r | None -> ())
      | _ -> ());
      ask "query"
    done;
    let c name = Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default name in
    Format.printf
      "ingested %d rows in %d batches; cache repaired %d, invalidated %d@."
      (c "ingest.rows_appended") (c "ingest.batches") (c "mqo.cache.repaired")
      (c "mqo.cache.invalidated");
    if metrics then
      Format.printf "@.== metrics ==@.%s"
        (Subql_obs.Metrics.render Subql_obs.Metrics.default);
    Subql_ingest.Ingest.close ing
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Append batches to the Flow table and watch cached subquery results \
             being maintained incrementally (delta vs recompute vs restamp) under \
             the chosen staleness policy")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ batches_arg $ batch_rows_arg $ staleness_arg $ serve_min_cost_arg
      $ serve_metrics_arg)

let schema_gen_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the module source to $(docv) (default: stdout).")
  in
  let tables_arg =
    Arg.(
      value & opt_all string []
      & info [ "table" ] ~docv:"NAME"
          ~doc:"Emit only $(docv) (repeatable; default: every catalog table).")
  in
  let run data workload flows users scale seed tables out =
    let catalog = resolve_catalog data workload flows users scale seed in
    let tables = match tables with [] -> None | l -> Some l in
    let src = Subql_typed.Codegen.catalog_source ?tables catalog in
    match out with
    | None -> print_string src
    | Some file -> Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc src)
  in
  Cmd.v
    (Cmd.info "schema-gen"
       ~doc:
         "Emit typed OCaml accessor modules (Col handles, row records, of/to_tuple) derived \
          from the catalog schemas for embedding in client code")
    Term.(
      const run $ data_arg $ workload_arg $ flows_arg $ users_arg $ scale_arg $ seed_arg
      $ tables_arg $ out_arg)

let bench_note_cmd =
  let run () =
    print_endline "The figure-reproduction harness lives in a separate executable:";
    print_endline
      "  dune exec bench/main.exe -- [fig2|fig3|fig4|fig5|fig5-noindex|ablation|micro|obs|mqo|exec|par|serve|ingest|codec|all] [--full]"
  in
  Cmd.v (Cmd.info "bench" ~doc:"Where to find the benchmark harness") Term.(const run $ const ())

let () =
  let doc = "Subquery evaluation with GMDJs (Akinde & Böhlen, ICDE 2003)" in
  let info = Cmd.info "olap_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            run_cmd;
            batch_cmd;
            serve_cmd;
            drive_cmd;
            ingest_cmd;
            explain_cmd;
            analyze_cmd;
            schema_gen_cmd;
            bench_note_cmd;
          ]))
