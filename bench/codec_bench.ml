(* The storage-codec benchmark: generic per-cell tag dispatch vs the
   schema-compiled decode plan, measured as scan-decode throughput over
   the zoo detail tables (I and J) resident in heap files.

   The buffer pool is sized to hold every page, and a warmup scan
   faults them all in, so the timed scans measure exactly the decode
   path — the I/O and pool-lookup costs are identical in both modes.
   Each mode's result relation is checked against the in-memory source
   (and thereby against the other mode), so the speedup is only
   reported for byte-equivalent decodes.

   Writes BENCH_codec.json; scripts/check.sh gates the speedup against
   the 1.3x acceptance floor and the committed baseline. *)

open Subql_relational
module Zoo = Subql_workload.Zoo
module Hf = Subql_storage.Heap_file
module J = Subql_obs.Json

let trials = 5

let repeats = 8

let scan_rows hf pool =
  let n = ref 0 in
  Hf.scan hf ~pool (fun _ -> incr n);
  !n

(* Best-of-[trials] wall time for [repeats] full scans: the minimum is
   the least-noise estimate of the pure decode cost. *)
let measure ~path ~schema ~codec =
  let hf = Hf.openfile ~path ~codec ~schema () in
  let pool = Subql_storage.Buffer_pool.create ~frames:(Hf.pages hf + 8) in
  let rows = scan_rows hf pool (* warmup: faults every page into the pool *) in
  let best = ref infinity in
  for _ = 1 to trials do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeats do
      ignore (scan_rows hf pool)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  let decoded = Hf.to_relation hf ~pool in
  Hf.close hf;
  (float_of_int (rows * repeats) /. !best, decoded)

let run (options : Figures.options) =
  let out = "BENCH_codec.json" in
  let inner = if options.Figures.full then 400_000 else 60_000 in
  let catalog = Zoo.catalog ~outer:64 ~inner ~seed:options.Figures.seed () in
  let verified = ref true in
  let bench_table name =
    let rel = Catalog.find catalog name in
    let path = Filename.temp_file "subql_codec" ".heap" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Hf.close (Hf.write ~path rel);
        let schema = Relation.schema rel in
        let generic, via_generic = measure ~path ~schema ~codec:Subql_storage.Codec.Generic in
        let specialized, via_plan =
          measure ~path ~schema ~codec:Subql_storage.Codec.Specialized
        in
        if
          not
            (Relation.equal_as_multiset via_generic rel
            && Relation.equal_as_multiset via_plan rel)
        then verified := false;
        let speedup = specialized /. generic in
        Format.printf "  %-4s %8d rows  generic %10.0f rows/s  specialized %10.0f rows/s  %.2fx@."
          name (Relation.cardinality rel) generic specialized speedup;
        J.Obj
          [
            ("table", J.Str name);
            ("rows", J.Int (Relation.cardinality rel));
            ("generic_rows_per_sec", J.Float generic);
            ("specialized_rows_per_sec", J.Float specialized);
            ("speedup", J.Float speedup);
          ])
  in
  Format.printf "@.== codec bench: generic vs schema-specialized decode ==@.@.";
  let tables = List.map bench_table [ "I"; "J" ] in
  let speedup_of = function
    | J.Obj fields -> (
      match List.assoc "speedup" fields with J.Float f -> f | _ -> nan)
    | _ -> nan
  in
  let speedups = List.map speedup_of tables in
  (* The gated figure is the geometric mean across tables. *)
  let speedup =
    exp (List.fold_left (fun acc s -> acc +. log s) 0. speedups
        /. float_of_int (List.length speedups))
  in
  Format.printf "@.  overall speedup %.2fx (verified: %b)@." speedup !verified;
  let doc =
    J.Obj
      [
        ("bench", J.Str "codec");
        ("full", J.Bool options.Figures.full);
        ("tables", J.List tables);
        ("speedup", J.Float speedup);
        ("verified", J.Bool !verified);
      ]
  in
  Out_channel.with_open_text out (fun oc -> J.to_channel oc doc);
  Format.printf "  wrote %s@.@." out
