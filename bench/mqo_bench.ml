(* The multi-query benchmark: a repeated-template OLAP batch over the
   zoo's O/I/J schema, comparing

   - solo evaluation (every query planned and scanned independently),
   - a cold batch (fingerprint dedup + cross-query GMDJ sharing), and
   - a warm batch (the same batch again, against the populated cache).

   Writes BENCH_mqo.json.  The headline numbers are the detail-scan
   counts: the batch's K same-detail-table queries cost strictly fewer
   than K scans shared, and zero warm. *)

open Subql_relational
module Zoo = Subql_workload.Zoo
module J = Subql_obs.Json

let time_run f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

let solo_plan q = Subql.Optimize.optimize (Subql.Transform.to_algebra q)

let round_json seconds (report : Subql_mqo.Batch.report) =
  J.Obj
    [
      ("seconds", J.Float seconds);
      ("cache_hits", J.Int report.Subql_mqo.Batch.cache_hits);
      ("cache_misses", J.Int report.Subql_mqo.Batch.cache_misses);
      ("deduplicated", J.Int report.Subql_mqo.Batch.deduplicated);
      ("groups", J.Int report.Subql_mqo.Batch.groups);
      ("grouped_queries", J.Int report.Subql_mqo.Batch.grouped);
      ("detail_scans", J.Int report.Subql_mqo.Batch.shared_detail_scans);
      ("naive_detail_scans", J.Int report.Subql_mqo.Batch.naive_detail_scans);
    ]

let run (options : Figures.options) =
  let out = "BENCH_mqo.json" in
  let outer, inner = if options.Figures.full then (500, 100_000) else (64, 10_000) in
  let catalog = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let templates = Zoo.same_detail_templates in
  let queries = List.map Zoo.find_query templates in
  let k = List.length queries in
  (* Solo baseline: each query evaluated independently, counting its
     GMDJ detail passes. *)
  let solo_stats = Subql_gmdj.Gmdj.fresh_stats () in
  let solo_seconds, solo_results =
    time_run (fun () ->
        List.map
          (fun q -> Subql.Eval.eval ~gmdj_stats:solo_stats catalog (solo_plan q))
          queries)
  in
  (* Cold batch, then the same batch against the warm cache. *)
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. () in
  let cold_seconds, cold = time_run (fun () -> Subql_mqo.Batch.run ~cache catalog queries) in
  let warm_seconds, warm = time_run (fun () -> Subql_mqo.Batch.run ~cache catalog queries) in
  (* Tuple-by-tuple verification of both rounds against the solo
     results (the test suite checks this too; the benchmark refuses to
     report numbers for wrong answers). *)
  let agrees (report : Subql_mqo.Batch.report) =
    List.for_all2
      (fun solo (_, batch) -> Relation.equal_as_multiset solo batch)
      solo_results report.Subql_mqo.Batch.results
  in
  let verified = agrees cold && agrees warm in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "mqo");
        ("scale", J.Str (if options.Figures.full then "full" else "default"));
        ("outer_rows", J.Int outer);
        ("inner_rows", J.Int inner);
        ("batch_size", J.Int k);
        ("templates", J.List (List.map (fun t -> J.Str t) templates));
        ( "solo",
          J.Obj
            [
              ("seconds", J.Float solo_seconds);
              ("detail_scans", J.Int solo_stats.Subql_gmdj.Gmdj.detail_passes);
            ] );
        ("cold", round_json cold_seconds cold);
        ("warm", round_json warm_seconds warm);
        ("verified", J.Bool verified);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n');
  Format.printf "@.== mqo: multi-query batch over %d same-detail queries ==@." k;
  Format.printf "wrote %s@." out;
  Format.printf "%-6s %10s %14s %12s %12s@." "round" "seconds" "detail scans" "cache hits"
    "grouped";
  Format.printf "%-6s %10.3f %14d %12s %12s@." "solo" solo_seconds
    solo_stats.Subql_gmdj.Gmdj.detail_passes "-" "-";
  Format.printf "%-6s %10.3f %14d %12d %12d@." "cold" cold_seconds
    cold.Subql_mqo.Batch.shared_detail_scans cold.Subql_mqo.Batch.cache_hits
    cold.Subql_mqo.Batch.grouped;
  Format.printf "%-6s %10.3f %14d %12d %12d@." "warm" warm_seconds
    warm.Subql_mqo.Batch.shared_detail_scans warm.Subql_mqo.Batch.cache_hits
    warm.Subql_mqo.Batch.grouped;
  Format.printf "verified against solo evaluation: %b@." verified;
  if not verified then exit 1
