(* The ingest benchmark: incremental GMDJ maintenance under appends.

   Headline: a warm, cached, maintainable template ("not-exists" — its
   detail side is a plain base-table scan) absorbs a stream of append
   batches sized at ~1% of the detail table.  The delta path folds just
   the appended suffix into live accumulators and repairs the cache
   entry in place; the baseline re-evaluates the full plan from scratch
   after every batch, which is exactly what a stale-entry cache miss
   costs.  Both sides see identical appends; the maintained result is
   verified against from-scratch evaluation of the grown catalog.

   Staleness sweep: the mixed virtual-time driver replays one query
   trace with 1x/4x/16x append schedules overlaid, under all three
   staleness policies (maintain-on-write / maintain-on-read /
   recompute-on-miss), reporting p99 latency, cache hit rates, detail
   scans per query, and maintenance time.  Every cell ends with a
   freshness check: the served state must equal solo evaluation of the
   final catalog — no stale reads under any policy.

   Writes BENCH_ingest.json; scripts/check.sh gates the delta-vs-
   recompute speedup and the sweep against the committed baseline. *)

module Zoo = Subql_workload.Zoo
module Traffic = Subql_workload.Traffic
module Server = Subql_server.Server
module Admission = Subql_server.Admission
module Driver = Subql_server.Driver
module Ingest = Subql_ingest.Ingest
module Maintenance = Subql_ingest.Maintenance
module Relation = Subql_relational.Relation
module J = Subql_obs.Json

let headline_template = "not-exists"

let skew = 0.85

let policies =
  [ Ingest.Maintain_on_write; Ingest.Maintain_on_read; Ingest.Recompute_on_miss ]

let multipliers = [ 1; 4; 16 ]

let fresh_eval catalog q =
  Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra q))

let served_matches_solo catalog cache q =
  let report = Subql_mqo.Batch.run ~cache catalog [ q ] in
  Relation.equal_as_multiset (fresh_eval catalog q)
    (List.assoc 0 report.Subql_mqo.Batch.results)

(* --- headline: delta maintenance vs full recompute ------------------- *)

type headline = {
  h_batches : int;
  h_batch_rows : int;
  h_delta_seconds : float;
  h_recompute_seconds : float;
  h_speedup : float;
  h_delta_rows : int;
  h_recompute_rows : int;
  h_rows_speedup : float;
  h_avoided_rows : int;
  h_all_delta : bool;
  h_verified : bool;
}

let headline (options : Figures.options) ~outer ~inner ~batch_rows ~batches =
  let q = Zoo.find_query headline_template in
  let fp = Subql_mqo.Batch.fingerprint (Subql_mqo.Batch.prepare q) in
  let batch_seed b =
    Int64.add (Int64.mul options.Figures.seed 1_000L) (Int64.of_int b)
  in
  let append ing b =
    Ingest.append ing ~table:"I" (Zoo.detail_rows ~seed:(batch_seed b) batch_rows)
  in
  (* Both sides pay the same write path (heap append + catalog
     re-registration), so the write is left untimed and the clocks
     compare exactly what the planner chooses between: folding the
     appended suffix into live accumulators and repairing the cache
     entry, versus re-evaluating the plan from scratch. *)
  let timed seconds f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    seconds := !seconds +. (Unix.gettimeofday () -. t0);
    r
  in
  (* Delta side: warm cache, warm accumulators (the first sync pays the
     full rebuild, untimed), then one timed [sync] per append batch. *)
  let catalog_d = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let cache_d = Subql_mqo.Result_cache.create ~min_cost:0. () in
  let ing_d =
    Ingest.create ~policy:Ingest.Maintain_on_read ~catalog:catalog_d ~cache:cache_d ()
  in
  ignore (Ingest.register_query ing_d q);
  ignore (Subql_mqo.Batch.run ~cache:cache_d catalog_d [ q ]);
  ignore (append ing_d 0);
  ignore (Ingest.sync ing_d);
  let delta_rows = ref 0 and avoided = ref 0 and deltas = ref 0 in
  let delta_seconds = ref 0. in
  for b = 1 to batches do
    ignore (append ing_d b);
    match timed delta_seconds (fun () -> Ingest.sync ing_d) with
    | Some r ->
      delta_rows := !delta_rows + r.Maintenance.delta_rows;
      avoided := !avoided + r.Maintenance.avoided_rows;
      deltas := !deltas + r.Maintenance.delta_maintained
    | None -> ()
  done;
  let delta_seconds = !delta_seconds in
  (* The repaired entry must equal from-scratch evaluation of the grown
     catalog — delta maintenance may not drift. *)
  let reference_d = fresh_eval catalog_d q in
  let verified =
    match Subql_mqo.Result_cache.peek cache_d fp with
    | Some rel -> Relation.equal_as_multiset reference_d rel
    | None -> false
  in
  (* Recompute side: identical appends, but after each batch the plan is
     re-evaluated from scratch — the cost a stale cache miss pays. *)
  let catalog_r = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let cache_r = Subql_mqo.Result_cache.create ~min_cost:0. () in
  let ing_r =
    Ingest.create ~policy:Ingest.Recompute_on_miss ~catalog:catalog_r ~cache:cache_r ()
  in
  ignore (Subql_mqo.Batch.run ~cache:cache_r catalog_r [ q ]);
  ignore (append ing_r 0);
  ignore (fresh_eval catalog_r q);
  let recompute_rows = ref 0 in
  let recompute_seconds = ref 0. in
  for b = 1 to batches do
    ignore (append ing_r b);
    ignore (timed recompute_seconds (fun () -> fresh_eval catalog_r q));
    recompute_rows :=
      !recompute_rows
      + Relation.cardinality (Subql_relational.Catalog.find catalog_r "I")
  done;
  let recompute_seconds = !recompute_seconds in
  (* Both sides appended the same rows: their answers must agree. *)
  let verified = verified && Relation.equal_as_multiset reference_d (fresh_eval catalog_r q) in
  Ingest.close ing_d;
  Ingest.close ing_r;
  {
    h_batches = batches;
    h_batch_rows = batch_rows;
    h_delta_seconds = delta_seconds;
    h_recompute_seconds = recompute_seconds;
    h_speedup =
      (if delta_seconds > 0. then recompute_seconds /. delta_seconds else infinity);
    h_delta_rows = !delta_rows;
    h_recompute_rows = !recompute_rows;
    h_rows_speedup =
      (if !delta_rows > 0 then
         float_of_int !recompute_rows /. float_of_int !delta_rows
       else infinity);
    h_avoided_rows = !avoided;
    h_all_delta = !deltas = batches;
    h_verified = verified;
  }

(* --- staleness sweep -------------------------------------------------- *)

let server_config =
  {
    Server.batch_window = 0.01;
    batch_max = 32;
    policy = { Admission.mem_budget_rows = infinity; queue_cap = 512 };
    eval_config = Subql.Eval.default_config;
  }

type cell = {
  c_policy : Ingest.policy;
  c_multiplier : int;
  c_every : float;
  c_summary : Driver.mixed_summary;
  c_fresh : bool;
}

let sweep_cell (options : Figures.options) ~outer ~inner ~rate ~count ~every ~rows_per
    ~multiplier policy =
  let catalog = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let cache = Subql_mqo.Result_cache.create ~min_cost:0. () in
  let server = Server.create ~config:server_config ~cache catalog in
  let ing = Ingest.create ~policy ~catalog ~cache () in
  List.iter
    (fun t -> ignore (Ingest.register_query ing (Zoo.find_query t)))
    Zoo.same_detail_templates;
  if policy = Ingest.Maintain_on_read then
    Server.set_before_batch server (Some (fun ~now -> Ingest.before_batch ing ~now));
  let arrivals = Traffic.open_loop ~seed:options.Figures.seed ~rate ~count ~skew () in
  let batch_no = ref 0 in
  let events =
    Traffic.with_ingest ~rows:rows_per ~every arrivals
    |> List.map (function
         | Traffic.Query a ->
           Driver.Query
             {
               Driver.at = a.Traffic.at;
               label = a.Traffic.template;
               query = Zoo.find_query a.Traffic.template;
             }
         | Traffic.Append i ->
           incr batch_no;
           let b = !batch_no in
           Driver.Ingest
             {
               Driver.at = i.Traffic.at;
               label = "append";
               apply =
                 (fun () ->
                   ignore
                     (Ingest.append ing ~table:"I"
                        (Zoo.detail_rows
                           ~seed:(Int64.of_int ((1_000 * multiplier) + b))
                           i.Traffic.rows));
                   i.Traffic.rows);
             })
  in
  let summary = Driver.replay_mixed server events in
  (* No stale reads: whatever state the run left behind, serving each
     registered template now must equal solo evaluation of the final
     catalog.  (Under recompute-on-miss this exercises the lazy drop;
     under the maintain policies it exercises repaired entries.) *)
  let fresh =
    List.for_all (fun t -> served_matches_solo catalog cache (Zoo.find_query t))
      Zoo.same_detail_templates
  in
  Ingest.close ing;
  { c_policy = policy; c_multiplier = multiplier; c_every = every; c_summary = summary; c_fresh = fresh }

(* --- reporting -------------------------------------------------------- *)

let scans_per_query (s : Driver.summary) =
  if s.Driver.completed = 0 then 0.
  else float_of_int s.Driver.detail_scans /. float_of_int s.Driver.completed

let cell_json c =
  let s = c.c_summary in
  let qs = s.Driver.queries in
  let p q = 1000. *. Driver.percentile qs.Driver.latencies q in
  J.Obj
    [
      ("policy", J.Str (Ingest.policy_name c.c_policy));
      ("ingest_multiplier", J.Int c.c_multiplier);
      ("append_every", J.Float c.c_every);
      ("completed", J.Int qs.Driver.completed);
      ("shed", J.Int qs.Driver.shed);
      ("p50_ms", J.Float (p 50.));
      ("p99_ms", J.Float (p 99.));
      ("cache_hits", J.Int qs.Driver.cache_hits);
      ("cache_misses", J.Int qs.Driver.cache_misses);
      ("scans_per_query", J.Float (scans_per_query qs));
      ("ingest_batches", J.Int s.Driver.ingest_batches);
      ("ingest_rows", J.Int s.Driver.ingest_rows);
      ("ingest_seconds", J.Float s.Driver.ingest_seconds);
      ("fresh", J.Bool c.c_fresh);
    ]

let run (options : Figures.options) =
  let out = "BENCH_ingest.json" in
  let outer, inner = if options.Figures.full then (256, 50_000) else (64, 10_000) in
  let batch_rows = inner / 100 in
  let batches = 32 in
  let h = headline options ~outer ~inner ~batch_rows ~batches in
  let rate = 200. in
  let count = if options.Figures.full then 600 else 240 in
  let rows_per = 50 in
  let base_every = 0.3 in
  let cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun m ->
            sweep_cell options ~outer ~inner ~rate ~count
              ~every:(base_every /. float_of_int m)
              ~rows_per ~multiplier:m policy)
          multipliers)
      policies
  in
  let all_fresh = List.for_all (fun c -> c.c_fresh) cells in
  let verified = h.h_verified && all_fresh in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "ingest");
        ("scale", J.Str (if options.Figures.full then "full" else "default"));
        ("outer_rows", J.Int outer);
        ("inner_rows", J.Int inner);
        ("template", J.Str headline_template);
        ( "headline",
          J.Obj
            [
              ("batches", J.Int h.h_batches);
              ("batch_rows", J.Int h.h_batch_rows);
              ( "append_ratio",
                J.Float (float_of_int h.h_batch_rows /. float_of_int inner) );
              ("delta_seconds", J.Float h.h_delta_seconds);
              ("recompute_seconds", J.Float h.h_recompute_seconds);
              ("speedup", J.Float h.h_speedup);
              ("delta_rows", J.Int h.h_delta_rows);
              ("recompute_rows", J.Int h.h_recompute_rows);
              ("rows_speedup", J.Float h.h_rows_speedup);
              ("avoided_rows", J.Int h.h_avoided_rows);
              ("all_delta", J.Bool h.h_all_delta);
            ] );
        ( "staleness",
          J.Obj
            [
              ("query_rate", J.Float rate);
              ("queries", J.Int count);
              ("rows_per_append", J.Int rows_per);
              ("base_append_every", J.Float base_every);
              ("cells", J.List (List.map cell_json cells));
            ] );
        ("verified", J.Bool verified);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n');
  Format.printf
    "@.== ingest: delta maintenance vs full recompute (%s, %d-row batches ~%.0f%% of I) ==@."
    headline_template h.h_batch_rows
    (100. *. float_of_int h.h_batch_rows /. float_of_int inner);
  Format.printf "wrote %s@." out;
  Format.printf
    "delta:     %d batches in %.4fs (%d rows folded, %d scan rows avoided)@."
    h.h_batches h.h_delta_seconds h.h_delta_rows h.h_avoided_rows;
  Format.printf "recompute: %d batches in %.4fs (%d rows scanned)@." h.h_batches
    h.h_recompute_seconds h.h_recompute_rows;
  Format.printf "speedup: %.1fx wall clock, %.0fx rows; all-delta %b; verified %b@."
    h.h_speedup h.h_rows_speedup h.h_all_delta h.h_verified;
  Format.printf "@.== staleness sweep: %d queries at %.0f/s, appends every %.3fs/x ==@."
    count rate base_every;
  Format.printf "%-20s %7s %8s %8s %9s %9s %8s %8s %6s@." "policy" "ingestx" "appends"
    "rows" "p99ms" "hit rate" "scans/q" "maint_s" "fresh";
  List.iter
    (fun c ->
      let qs = c.c_summary.Driver.queries in
      let hit_rate =
        let total = qs.Driver.cache_hits + qs.Driver.cache_misses in
        if total = 0 then 0.
        else float_of_int qs.Driver.cache_hits /. float_of_int total
      in
      Format.printf "%-20s %7d %8d %8d %9.1f %8.0f%% %8.3f %8.4f %6b@."
        (Ingest.policy_name c.c_policy)
        c.c_multiplier c.c_summary.Driver.ingest_batches c.c_summary.Driver.ingest_rows
        (1000. *. Driver.percentile qs.Driver.latencies 99.)
        (100. *. hit_rate) (scans_per_query qs) c.c_summary.Driver.ingest_seconds
        c.c_fresh)
    cells;
  Format.printf "verified (headline + all cells fresh): %b@." verified;
  if not verified then exit 1;
  if not h.h_all_delta then begin
    Format.printf "FAIL: a timed append fell back to recompute (planner not firing)@.";
    exit 1
  end;
  (* The tentpole claim, enforced: at a ~1%% append ratio delta
     maintenance must beat recomputing from scratch by at least 5x. *)
  if h.h_speedup < 5. then begin
    Format.printf "FAIL: delta maintenance speedup %.1fx < 5x@." h.h_speedup;
    exit 1
  end
