(* Workloads, engines, and the measurement driver for the paper's four
   experiments (Figures 2-5) and the Section-4 ablations. *)

open Subql_relational
open Subql_nested
open Subql_workload
module N = Nested_ast

(* ------------------------------------------------------------------ *)
(* Engines                                                              *)
(* ------------------------------------------------------------------ *)

(* Cost class drives the skip heuristic: [Quadratic] engines touch
   outer × inner tuple pairs, [Linear] engines a few passes of each. *)
type cost_class = Linear | Quadratic

type engine = {
  e_name : string;
  run : Catalog.t -> N.query -> Relation.t;
  cost : cost_class;
}

let native_plain =
  {
    e_name = "native-plain";
    run = (fun catalog q -> Naive_eval.eval ~mode:Naive_eval.Plain catalog q);
    cost = Quadratic;
  }

let native_smart =
  {
    e_name = "native-smart";
    run = (fun catalog q -> Naive_eval.eval ~mode:Naive_eval.Smart catalog q);
    cost = Linear;
  }

(* The "smart" native evaluator builds an inner hash index only for
   equi-correlations; on non-equi correlations (Fig. 4) its early
   termination still leaves outer × inner work in the worst case. *)
let native_smart_quadratic = { native_smart with cost = Quadratic }

let unnest_indexed =
  {
    e_name = "unnest-join";
    run =
      (fun catalog q -> Subql.Eval.eval catalog (Subql_unnest.Unnest.best catalog q));
    cost = Linear;
  }

let unnest_noindex =
  {
    e_name = "unnest-noidx";
    run =
      (fun catalog q ->
        Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
          (Subql_unnest.Unnest.best catalog q));
    cost = Quadratic;
  }

(* Without indexes a DBMS cannot run the cheap semi-join plans; the
   unnested query becomes materialized outer joins + grouping (the
   "DBMS struggles" case of the paper's Figure 5 discussion). *)
let unnest_expansion_noindex =
  {
    e_name = "unnest-noidx";
    run =
      (fun catalog q ->
        Subql.Eval.eval ~config:Subql.Eval.unindexed_config catalog
          (Subql_unnest.Unnest.via_joins catalog q));
    cost = Quadratic;
  }

let gmdj_basic =
  {
    e_name = "gmdj";
    run = (fun catalog q -> Subql.Eval.eval catalog (Subql.Transform.to_algebra q));
    cost = Linear;
  }

let gmdj_basic_quadratic = { gmdj_basic with cost = Quadratic }

let gmdj_optimized =
  {
    e_name = "gmdj-opt";
    run =
      (fun catalog q ->
        Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra q)));
    cost = Linear;
  }

(* With a <> correlation even the optimized GMDJ tests pairs; completion
   only prunes the live set.  Classify by the dominating term. *)
let gmdj_optimized_quadratic = { gmdj_optimized with cost = Quadratic }

(* ------------------------------------------------------------------ *)
(* Timing                                                               *)
(* ------------------------------------------------------------------ *)

type options = { full : bool; budget : float; seed : int64 }

let default_options = { full = false; budget = 4e8; seed = 42L }

type measurement = Seconds of float | Skipped | Disagrees of int * int

let time_run f =
  let reps = ref 0 in
  let best = ref infinity in
  let t_begin = Unix.gettimeofday () in
  let result = ref None in
  while !reps < 3 && (!reps = 0 || Unix.gettimeofday () -. t_begin < 1.0) do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r;
    incr reps
  done;
  (!best, Option.get !result)

let pair_cost ~outer ~inner = float_of_int outer *. float_of_int inner

let measure options ~outer ~inner engine catalog query ~expect =
  let too_expensive =
    match engine.cost with
    | Linear -> false
    | Quadratic -> pair_cost ~outer ~inner > options.budget
  in
  if too_expensive then Skipped
  else
    let seconds, result = time_run (fun () -> engine.run catalog query) in
    let n = Relation.cardinality result in
    match !expect with
    | None ->
      expect := Some n;
      Seconds seconds
    | Some m when m = n -> Seconds seconds
    | Some m -> Disagrees (m, n)

let pp_measurement ppf = function
  | Seconds s -> Format.fprintf ppf "%10.3fs" s
  | Skipped -> Format.fprintf ppf "%11s" "(skipped)"
  | Disagrees (want, got) -> Format.fprintf ppf " !%d<>%d" want got

(* ------------------------------------------------------------------ *)
(* Figure driver                                                        *)
(* ------------------------------------------------------------------ *)

type point = {
  label : string;
  outer : int;
  inner : int;
  catalog : Catalog.t;
  query : N.query;
}

type figure = {
  f_name : string;
  title : string;
  expectation : string;  (** the qualitative shape reported by the paper *)
  engines : engine list;
  points : options -> point list;
}

let run_figure options fig =
  Format.printf "@.== %s: %s ==@." fig.f_name fig.title;
  Format.printf "paper: %s@.@." fig.expectation;
  let points = fig.points options in
  Format.printf "%-24s" "rows (outer/inner)";
  List.iter (fun e -> Format.printf "%11s " e.e_name) fig.engines;
  Format.printf "@.";
  List.iter
    (fun point ->
      Format.printf "%-24s" point.label;
      let expect = ref None in
      List.iter
        (fun engine ->
          let m =
            measure options ~outer:point.outer ~inner:point.inner engine point.catalog
              point.query ~expect
          in
          Format.printf "%a " pp_measurement m)
        fig.engines;
      Format.printf "@.")
    points;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Workload construction                                                *)
(* ------------------------------------------------------------------ *)

let netflow_catalog options ~users ~flows =
  Netflow.generate
    {
      Netflow.default_config with
      Netflow.n_users = users;
      n_flows = flows;
      n_source_ips = max 64 (users / 2);
      n_dest_ips = max 64 (users / 2);
      user_ip_match_fraction = 1.0;
      seed = options.seed;
    }

let scaled options full_sizes =
  if options.full then full_sizes
  else List.map (fun (o, i) -> (o / 10 + 1, i / 10)) full_sizes

(* Figure 2: EXISTS subquery; outer 1000, inner 300k..1.2M. *)
let fig2 =
  let query =
    N.query ~base:(N.table "User") ~alias:"u"
      (N.exists
         ~where:
           (N.atom
              (Expr.and_
                 (Expr.eq (Expr.attr ~rel:"f" "SourceIP") (Expr.attr ~rel:"u" "IPAddress"))
                 (Expr.eq (Expr.attr ~rel:"f" "Protocol") (Expr.str "HTTP"))))
         (N.table "Flow") "f")
  in
  {
    f_name = "fig2";
    title = "EXISTS subquery (outer 1000, inner 300k-1.2M)";
    expectation =
      "joins and GMDJ beat the native evaluation; GMDJ matches joins even on this \
       simplest unnesting case";
    engines = [ native_plain; native_smart; unnest_indexed; gmdj_basic; gmdj_optimized ];
    points =
      (fun options ->
        List.map
          (fun (users, flows) ->
            {
              label = Printf.sprintf "%d/%d" users flows;
              outer = users;
              inner = flows;
              catalog = netflow_catalog options ~users ~flows;
              query;
            })
          (scaled options [ (1000, 300_000); (1000, 600_000); (1000, 900_000); (1000, 1_200_000) ]));
  }

(* Figure 3: comparison predicate with an aggregate function. *)
let fig3 =
  let query =
    N.query ~base:(N.table "User") ~alias:"u"
      (N.agg_cmp
         (Expr.attr ~rel:"u" "Quota")
         Expr.Lt
         (Aggregate.Sum (Expr.attr ~rel:"f" "NumBytes"))
         ~where:(N.atom (Expr.eq (Expr.attr ~rel:"f" "SourceIP") (Expr.attr ~rel:"u" "IPAddress")))
         (N.table "Flow") "f")
  in
  {
    f_name = "fig3";
    title = "aggregate comparison subquery (outer 500-2000, inner 300k-1.2M)";
    expectation =
      "native nested-loop degrades sharply; join unnesting and GMDJ stay flat, with \
       GMDJ the most memory-stable at the largest sizes";
    engines = [ native_plain; native_smart; unnest_indexed; gmdj_basic; gmdj_optimized ];
    points =
      (fun options ->
        List.map
          (fun (users, flows) ->
            {
              label = Printf.sprintf "%d/%d" users flows;
              outer = users;
              inner = flows;
              catalog = netflow_catalog options ~users ~flows;
              query;
            })
          (scaled options
             [ (500, 300_000); (1000, 600_000); (1500, 900_000); (2000, 1_200_000) ]));
  }

(* Figure 4: quantified ALL with a <> correlation on key attributes. *)
let fig4 =
  let query =
    N.query ~base:(N.table "User") ~alias:"u"
      (N.all_
         (Expr.attr ~rel:"u" "IPAddress")
         Expr.Ne
         ~where:(N.atom (Expr.gt (Expr.attr ~rel:"f" "NumBytes") (Expr.int 150_000)))
         (N.table "Flow") "f" ~col:"SourceIP")
  in
  {
    f_name = "fig4";
    title = "quantified ALL, <> correlation (outer = inner = 40k-160k)";
    expectation =
      "no algorithm has an index to use; the basic GMDJ devolves to tuple iteration \
       while tuple completion restores single-scan-like behaviour, as does the \
       native engine's smart nested loop";
    engines =
      [
        native_plain;
        native_smart_quadratic;
        unnest_noindex;
        gmdj_basic_quadratic;
        gmdj_optimized_quadratic;
      ];
    points =
      (fun options ->
        List.map
          (fun (users, flows) ->
            {
              label = Printf.sprintf "%d/%d" users flows;
              outer = users;
              inner = flows;
              catalog = netflow_catalog options ~users ~flows;
              query;
            })
          (scaled options [ (40_000, 40_000); (80_000, 80_000); (120_000, 120_000); (160_000, 160_000) ]));
  }

(* Figure 5: two EXISTS subqueries over the same detail table with
   disjoint correlation attributes; indexed and unindexed variants. *)
let fig5_query =
  N.query ~base:(N.table "User") ~alias:"u"
    (N.pand
       (N.exists
          ~where:
            (N.atom
               (Expr.and_
                  (Expr.eq (Expr.attr ~rel:"f" "SourceIP") (Expr.attr ~rel:"u" "IPAddress"))
                  (Expr.eq (Expr.attr ~rel:"f" "Protocol") (Expr.str "HTTP"))))
          (N.table "Flow") "f")
       (N.exists
          ~where:
            (N.atom
               (Expr.and_
                  (Expr.eq (Expr.attr ~rel:"g" "DestIP") (Expr.attr ~rel:"u" "IPAddress"))
                  (Expr.gt (Expr.attr ~rel:"g" "NumBytes") (Expr.int 400_000))))
          (N.table "Flow") "g"))

let fig5 =
  {
    f_name = "fig5";
    title = "two tree-nested EXISTS over one table (outer 1000, inner 300k-1.2M)";
    expectation =
      "with indexes the native engine and joins do well; coalescing lets the \
       optimized GMDJ evaluate both subqueries in a single scan and win";
    engines = [ native_plain; native_smart; unnest_indexed; gmdj_basic; gmdj_optimized ];
    points =
      (fun options ->
        List.map
          (fun (users, flows) ->
            {
              label = Printf.sprintf "%d/%d" users flows;
              outer = users;
              inner = flows;
              catalog = netflow_catalog options ~users ~flows;
              query = fig5_query;
            })
          (scaled options [ (1000, 300_000); (1000, 600_000); (1000, 900_000); (1000, 1_200_000) ]));
  }

let fig5_noindex =
  {
    fig5 with
    f_name = "fig5-noindex";
    title = "figure 5 without indexes on the source tables";
    expectation =
      "the native engine and join plans degrade by an order of magnitude without \
       indexes; the GMDJ is essentially unaffected (it builds its own hash \
       partitioning over the base values)";
    engines = [ native_plain; unnest_expansion_noindex; gmdj_basic; gmdj_optimized ];
  }

let figures = [ fig2; fig3; fig4; fig5; fig5_noindex ]

(* ------------------------------------------------------------------ *)
(* Machine-readable observability dump                                  *)
(* ------------------------------------------------------------------ *)

(* For every figure's smallest point, run the un-optimized (chained MDs)
   and optimized plans with GMDJ instrumentation and dump the scan
   counts as JSON.  This is the Prop. 4.1 story in machine-readable
   form: the coalesced plan's "detail_scans" collapses to the number of
   distinct detail tables (1 here) while the chained plan pays one scan
   per subquery. *)

let obs options =
  let out = "BENCH_obs.json" in
  let probe catalog plan =
    let stats = Subql_gmdj.Gmdj.fresh_stats () in
    let seconds, result =
      time_run (fun () ->
          let fresh = Subql_gmdj.Gmdj.fresh_stats () in
          let r = Subql.Eval.eval ~gmdj_stats:fresh catalog plan in
          stats.Subql_gmdj.Gmdj.detail_passes <- fresh.Subql_gmdj.Gmdj.detail_passes;
          stats.Subql_gmdj.Gmdj.detail_scanned <- fresh.Subql_gmdj.Gmdj.detail_scanned;
          stats.Subql_gmdj.Gmdj.theta_evals <- fresh.Subql_gmdj.Gmdj.theta_evals;
          r)
    in
    Subql_obs.Json.Obj
      [
        ("detail_scans", Subql_obs.Json.Int stats.Subql_gmdj.Gmdj.detail_passes);
        ("detail_rows", Subql_obs.Json.Int stats.Subql_gmdj.Gmdj.detail_scanned);
        ("theta_evals", Subql_obs.Json.Int stats.Subql_gmdj.Gmdj.theta_evals);
        ("rows_out", Subql_obs.Json.Int (Relation.cardinality result));
        ("seconds", Subql_obs.Json.Float seconds);
      ]
  in
  let entry fig =
    let point = List.hd (fig.points options) in
    let chained = Subql.Transform.to_algebra point.query in
    let optimized = Subql.Optimize.optimize chained in
    ( fig.f_name,
      Subql_obs.Json.Obj
        [
          ("point", Subql_obs.Json.Str point.label);
          ("chained", probe point.catalog chained);
          ("optimized", probe point.catalog optimized);
        ] )
  in
  let doc =
    Subql_obs.Json.Obj
      [
        ("benchmark", Subql_obs.Json.Str "obs");
        ("scale", Subql_obs.Json.Str (if options.full then "full" else "default"));
        ("figures", Subql_obs.Json.Obj (List.map entry [ fig2; fig3; fig4; fig5 ]));
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Subql_obs.Json.to_channel oc doc;
      output_char oc '\n');
  Format.printf "@.== obs: per-figure GMDJ scan counts ==@.";
  Format.printf "wrote %s@." out;
  Format.printf "%-8s %-12s %22s %22s@." "figure" "point" "chained scans/rows"
    "optimized scans/rows";
  List.iter
    (fun (name, entry) ->
      match entry with
      | Subql_obs.Json.Obj fields ->
        let str k = match List.assoc k fields with Subql_obs.Json.Str s -> s | _ -> "?" in
        let scans k =
          match List.assoc k fields with
          | Subql_obs.Json.Obj sub ->
            let int f = match List.assoc f sub with Subql_obs.Json.Int i -> i | _ -> 0 in
            Printf.sprintf "%d / %d" (int "detail_scans") (int "detail_rows")
          | _ -> "?"
        in
        Format.printf "%-8s %-12s %22s %22s@." name (str "point") (scans "chained")
          (scans "optimized")
      | _ -> ())
    (match doc with
    | Subql_obs.Json.Obj fields -> (
      match List.assoc "figures" fields with Subql_obs.Json.Obj figs -> figs | _ -> [])
    | _ -> []);
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Ablation: the Section-4 optimizations one at a time                  *)
(* ------------------------------------------------------------------ *)

let ablation options =
  let users, flows = if options.full then (1000, 600_000) else (100, 60_000) in
  let catalog = netflow_catalog options ~users ~flows in
  let alg = Subql.Transform.to_algebra fig5_query in
  let variants =
    [
      ("basic (chained MDs)", alg, Subql.Eval.default_config);
      ( "coalesced",
        Subql.Optimize.optimize ~flags:(Subql.Optimize.only ~coalesce:true ()) alg,
        Subql.Eval.default_config );
      ( "completed",
        Subql.Optimize.optimize ~flags:(Subql.Optimize.only ~completion:true ()) alg,
        Subql.Eval.default_config );
      ("coalesced+completed", Subql.Optimize.optimize alg, Subql.Eval.default_config);
      ("coalesced+completed, scan strategy", Subql.Optimize.optimize alg, Subql.Eval.unindexed_config);
    ]
  in
  Format.printf "@.== ablation: figure-5 query, %d users / %d flows ==@.@." users flows;
  Format.printf "%-40s %10s %14s %14s %6s@." "variant" "seconds" "detail-rows" "theta-evals"
    "early";
  List.iter
    (fun (name, plan, config) ->
      let stats = Subql_gmdj.Gmdj.fresh_stats () in
      let seconds, result =
        time_run (fun () ->
            let fresh = Subql_gmdj.Gmdj.fresh_stats () in
            let r = Subql.Eval.eval ~config ~gmdj_stats:fresh catalog plan in
            stats.Subql_gmdj.Gmdj.detail_scanned <- fresh.Subql_gmdj.Gmdj.detail_scanned;
            stats.Subql_gmdj.Gmdj.theta_evals <- fresh.Subql_gmdj.Gmdj.theta_evals;
            stats.Subql_gmdj.Gmdj.early_exit <- fresh.Subql_gmdj.Gmdj.early_exit;
            r)
      in
      Format.printf "%-40s %9.3fs %14d %14d %6b (%d rows)@." name seconds
        stats.Subql_gmdj.Gmdj.detail_scanned stats.Subql_gmdj.Gmdj.theta_evals
        stats.Subql_gmdj.Gmdj.early_exit (Relation.cardinality result))
    variants;
  Format.printf "@.";
  (* Segmented evaluation: the memory-bounded variant trades extra detail
     scans for a bounded base-side working set. *)
  Format.printf "segmented GMDJ (fig-1-style two-block MD over Flow, %d users):@." users;
  let base = Relation.rename "u" (Catalog.find catalog "User") in
  let detail = Relation.rename "f" (Catalog.find catalog "Flow") in
  let blocks =
    [
      Subql_gmdj.Gmdj.block
        [ Subql_relational.Aggregate.sum (Expr.attr ~rel:"f" "NumBytes") "bytes" ]
        (Expr.eq (Expr.attr ~rel:"f" "SourceIP") (Expr.attr ~rel:"u" "IPAddress"));
      Subql_gmdj.Gmdj.block
        [ Subql_relational.Aggregate.count_star "flows" ]
        (Expr.eq (Expr.attr ~rel:"f" "DestIP") (Expr.attr ~rel:"u" "IPAddress"));
    ]
  in
  Format.printf "%-24s %10s %14s@." "segment size" "seconds" "detail-rows";
  List.iter
    (fun segment_size ->
      let stats = Subql_gmdj.Gmdj.fresh_stats () in
      let seconds, _ =
        time_run (fun () ->
            let fresh = Subql_gmdj.Gmdj.fresh_stats () in
            let r = Subql_gmdj.Gmdj.eval_segmented ~stats:fresh ~segment_size ~base ~detail blocks in
            stats.Subql_gmdj.Gmdj.detail_scanned <- fresh.Subql_gmdj.Gmdj.detail_scanned;
            r)
      in
      Format.printf "%-24d %9.3fs %14d@." segment_size seconds
        stats.Subql_gmdj.Gmdj.detail_scanned)
    [ max 1 (users / 8); max 1 (users / 2); users ];
  Format.printf "@.";
  (* Disk-resident detail: exact page I/O for chained vs coalesced GMDJs
     (the paper's central I/O argument, measured through the buffer
     pool). *)
  let path = Filename.temp_file "subql_bench" ".heap" in
  let hf = Subql_storage.Heap_file.write ~path detail in
  Fun.protect
    ~finally:(fun () ->
      Subql_storage.Heap_file.close hf;
      Sys.remove path)
    (fun () ->
      let b1 = [ List.nth blocks 0 ] and b2 = [ List.nth blocks 1 ] in
      Format.printf
        "disk-resident detail (%d pages of 8 KiB, 16-frame buffer pool):@."
        (Subql_storage.Heap_file.pages hf);
      Format.printf "%-40s %10s %12s@." "plan" "seconds" "page-reads";
      let run name plan =
        let pool = Subql_storage.Buffer_pool.create ~frames:16 in
        let seconds, _ =
          time_run (fun () ->
              Subql_storage.Buffer_pool.reset_stats pool;
              plan pool)
        in
        Format.printf "%-40s %9.3fs %12d@." name seconds
          (Subql_storage.Buffer_pool.stats pool).Subql_storage.Buffer_pool.page_reads
      in
      run "chained GMDJs (two detail scans)" (fun pool ->
          Subql_storage.Paged_gmdj.eval_chained ~pool ~base ~detail:hf [ b1; b2 ]);
      run "coalesced GMDJ (one detail scan)" (fun pool ->
          Subql_storage.Paged_gmdj.eval ~pool ~base ~detail:hf blocks));
  Format.printf "@."
