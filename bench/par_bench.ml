(* The parallel-exchange benchmark: speedup with domains, bounded peak
   memory with spilling.

   Part A runs the zoo's same-detail batch at 1, 2 and 4 domains and
   reports wall-clock speedups.  Speedup is a property of the machine as
   much as of the executor — the JSON records
   [Domain.recommended_domain_count] so the gate in scripts/check.sh can
   skip the speedup check on boxes without 4 cores, where near-linear
   scaling is physically impossible.

   Part B runs a spilling DISTINCT over the detail at |I| = N and
   |I| = 10N with a resident budget far below the distinct count: the
   overflow is hash-partitioned through temp heap files, so peak
   resident rows must stay flat while the spilled volume tracks the
   detail.  Both parts verify against the serial in-memory evaluator.

   Writes BENCH_par.json; scripts/check.sh gates speedup (where cores
   allow) and the 10x-detail memory bound against the committed
   baseline. *)

open Subql_relational
module Zoo = Subql_workload.Zoo
module J = Subql_obs.Json

let plan q = Subql.Optimize.optimize (Subql.Transform.to_algebra q)

let config ?spill domains =
  { Subql.Eval.default_config with Subql.Eval.domains; spill_budget_rows = spill }

let time_best ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let counter name = Subql_obs.Metrics.counter_value_by_name Subql_obs.Metrics.default name

let run (options : Figures.options) =
  let out = "BENCH_par.json" in
  let cores = Domain.recommended_domain_count () in
  let outer = if options.Figures.full then 500 else 64 in
  let inner = if options.Figures.full then 400_000 else 60_000 in
  let catalog = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let batch =
    List.map (fun n -> (n, plan (Zoo.find_query n))) Zoo.same_detail_templates
  in
  (* Part A: the same-detail batch across domains, verified then timed. *)
  let reference = List.map (fun (n, p) -> (n, Subql.Eval.eval catalog p)) batch in
  let verified_parallel =
    List.for_all
      (fun d ->
        List.for_all2
          (fun (_, r) (_, p) ->
            Relation.equal_as_multiset r (Subql.Eval.eval ~config:(config d) catalog p))
          reference batch)
      [ 2; 4 ]
  in
  let measure d =
    time_best ~repeats:3 (fun () ->
        List.iter
          (fun (_, p) -> ignore (Subql.Eval.eval ~config:(config d) catalog p))
          batch)
  in
  let t1 = measure 1 in
  let t2 = measure 2 in
  let t4 = measure 4 in
  let speedup t = if t > 0. then t1 /. t else 1. in
  (* Part B: a spilling DISTINCT over the detail's key column.  The key
     domain is fixed, so the answer (and the resident state: the frozen
     budget plus per-partition accumulators) does not grow with the
     detail — only the spilled volume does. *)
  let key_range = 512 in
  let budget = 64 in
  let spill_inner = if options.Figures.full then 100_000 else 20_000 in
  let spill_run n =
    let catalog = Zoo.catalog ~outer ~inner:n ~key_range ~seed:options.Figures.seed () in
    let key_col =
      let a = List.hd (Schema.to_list (Relation.schema (Catalog.find catalog "I"))) in
      ((if a.Schema.rel = "" then None else Some a.Schema.rel), a.Schema.name)
    in
    let p =
      Subql.Algebra.Project_cols
        { cols = [ key_col ]; distinct = true; input = Subql.Algebra.Table "I" }
    in
    let rows_before = counter "exec.spilled_rows" in
    let bytes_before = counter "exec.spilled_bytes" in
    let result, report =
      Subql.Eval.eval_exec ~config:(config ~spill:budget 1) catalog p
    in
    let ok = Relation.equal_as_multiset result (Subql.Eval.eval catalog p) in
    ( report.Subql.Eval.peak_materialized_rows,
      counter "exec.spilled_rows" - rows_before,
      counter "exec.spilled_bytes" - bytes_before,
      ok )
  in
  let peak_1x, spilled_rows_1x, _, ok_1x = spill_run spill_inner in
  let peak_10x, spilled_rows_10x, spilled_bytes_10x, ok_10x = spill_run (10 * spill_inner) in
  let verified = verified_parallel && ok_1x && ok_10x in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "par");
        ("scale", J.Str (if options.Figures.full then "full" else "default"));
        ("cores", J.Int cores);
        ("outer_rows", J.Int outer);
        ("inner_rows", J.Int inner);
        ("templates", J.Int (List.length batch));
        ("seconds_1_domain", J.Float t1);
        ("seconds_2_domains", J.Float t2);
        ("seconds_4_domains", J.Float t4);
        ("speedup_2", J.Float (speedup t2));
        ("speedup_4", J.Float (speedup t4));
        ("spill_budget_rows", J.Int budget);
        ("spill_inner_rows", J.Int spill_inner);
        ("peak_rows_1x", J.Int peak_1x);
        ("peak_rows_10x", J.Int peak_10x);
        ("spilled_rows_1x", J.Int spilled_rows_1x);
        ("spilled_rows_10x", J.Int spilled_rows_10x);
        ("spilled_bytes_10x", J.Int spilled_bytes_10x);
        ("verified", J.Bool verified);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n');
  Format.printf "@.== par: exchange speedup and spill-bounded memory ==@.";
  Format.printf "wrote %s@." out;
  Format.printf "machine: %d recommended domains@." cores;
  Format.printf "same-detail batch (%d templates, |I| = %d):@." (List.length batch) inner;
  Format.printf "  1 domain   %8.3fs@." t1;
  Format.printf "  2 domains  %8.3fs  (%.2fx)@." t2 (speedup t2);
  Format.printf "  4 domains  %8.3fs  (%.2fx)@." t4 (speedup t4);
  Format.printf "spilling DISTINCT (budget %d rows, %d distinct keys):@." budget key_range;
  Format.printf "  |I| = %-8d peak %6d resident rows, %8d rows spilled@." spill_inner
    peak_1x spilled_rows_1x;
  Format.printf "  |I| = %-8d peak %6d resident rows, %8d rows spilled (%d KiB)@."
    (10 * spill_inner) peak_10x spilled_rows_10x
    (spilled_bytes_10x / 1024);
  Format.printf "verified: %b@." verified;
  if not verified then exit 1;
  if spilled_rows_10x = 0 then begin
    Format.printf "FAIL: the 10x-detail run never spilled@.";
    exit 1
  end;
  (* The tentpole claim, enforced: spilling bounds the breaker's resident
     footprint — 10x the detail may not move the peak. *)
  if peak_10x > peak_1x + (peak_1x / 5) then begin
    Format.printf "FAIL: peak resident rows grew with the detail (%d -> %d)@." peak_1x
      peak_10x;
    exit 1
  end;
  if cores >= 4 && speedup t4 < 1.2 then begin
    Format.printf "FAIL: no speedup from 4 domains on a %d-core machine (%.2fx)@." cores
      (speedup t4);
    exit 1
  end
