(* The streaming-executor benchmark: the zoo's same-detail batch with
   the detail table I resident in a heap file larger than the buffer
   pool.

   Part A runs each template through Eval.eval_exec with a heap-file
   source provider at |I| = N and |I| = 2N: the reported peak of
   executor-materialized rows must not grow with the detail cardinality
   (the pipelined GMDJ holds |O| accumulators, never the detail).

   Part B replays the paper's I/O argument through the pool: k chained
   GMDJs read the detail file k times, the coalesced GMDJ once.

   Writes BENCH_exec.json; scripts/check.sh gates peak rows and page
   reads against the committed baseline. *)

open Subql_relational
module Zoo = Subql_workload.Zoo
module J = Subql_obs.Json

let templates = [ "exists"; "agg-sum"; "in" ]

let plan q = Subql.Optimize.optimize (Subql.Transform.to_algebra q)

(* Evaluate one template with I streamed off its heap file; returns the
   run report, verifying the result against the in-memory evaluator. *)
let run_streamed catalog hf ~pool name =
  let p = plan (Zoo.find_query name) in
  let sources table =
    if table = "I" then Some (Subql_storage.Heap_file.source hf ~pool) else None
  in
  let streamed, report = Subql.Eval.eval_exec ~sources catalog p in
  let in_memory = Subql.Eval.eval catalog p in
  if not (Relation.equal_as_multiset streamed in_memory) then
    failwith (Printf.sprintf "exec bench: %s: streamed result differs" name);
  report

let with_heap_file rel f =
  let path = Filename.temp_file "subql_exec" ".heap" in
  let hf = Subql_storage.Heap_file.write ~path rel in
  Fun.protect
    ~finally:(fun () ->
      Subql_storage.Heap_file.close hf;
      Sys.remove path)
    (fun () -> f hf)

let run (options : Figures.options) =
  let out = "BENCH_exec.json" in
  let outer = if options.Figures.full then 500 else 64 in
  let inner = if options.Figures.full then 200_000 else 20_000 in
  let frames = 16 in
  let catalog_at n = Zoo.catalog ~outer ~inner:n ~seed:options.Figures.seed () in
  let small = catalog_at inner and big = catalog_at (2 * inner) in
  let measure catalog =
    with_heap_file (Catalog.find catalog "I") (fun hf ->
        let pool = Subql_storage.Buffer_pool.create ~frames in
        ( Subql_storage.Heap_file.pages hf,
          List.map (fun name -> (name, run_streamed catalog hf ~pool name)) templates ))
  in
  let pages_small, at_n = measure small in
  let pages_big, at_2n = measure big in
  let peak_of reports =
    List.fold_left
      (fun acc (_, r) -> max acc r.Subql.Eval.peak_materialized_rows)
      0 reports
  in
  let peak_n = peak_of at_n and peak_2n = peak_of at_2n in
  (* Part B: chained vs coalesced page I/O over the same heap file. *)
  let base = Relation.rename "o" (Catalog.find small "O") in
  let corr = Expr.eq (Expr.attr ~rel:"i" "k") (Expr.attr ~rel:"o" "k") in
  let b1 = Subql_gmdj.Gmdj.block [ Aggregate.count_star "c" ] corr in
  let b2 = Subql_gmdj.Gmdj.block [ Aggregate.sum (Expr.attr ~rel:"i" "y") "s" ] corr in
  let chained_reads, coalesced_reads, paged_verified =
    with_heap_file (Relation.rename "i" (Catalog.find small "I")) (fun hf ->
        let reads f =
          let pool = Subql_storage.Buffer_pool.create ~frames in
          let r = f pool in
          ((Subql_storage.Buffer_pool.stats pool).Subql_storage.Buffer_pool.page_reads, r)
        in
        let chained, r_chained =
          reads (fun pool ->
              Subql_storage.Paged_gmdj.eval_chained ~pool ~base ~detail:hf [ [ b1 ]; [ b2 ] ])
        in
        let coalesced, r_coalesced =
          reads (fun pool ->
              Subql_storage.Paged_gmdj.eval ~pool ~base ~detail:hf [ b1; b2 ])
        in
        (chained, coalesced, Relation.equal_as_multiset r_chained r_coalesced))
  in
  let run_json reports =
    J.List
      (List.map
         (fun (name, r) ->
           J.Obj
             [
               ("template", J.Str name);
               ("peak_rows", J.Int r.Subql.Eval.peak_materialized_rows);
               ("chunks", J.Int r.Subql.Eval.chunks);
             ])
         reports)
  in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "exec");
        ("scale", J.Str (if options.Figures.full then "full" else "default"));
        ("outer_rows", J.Int outer);
        ("inner_rows", J.Int inner);
        ("pool_frames", J.Int frames);
        ("detail_pages", J.Int pages_small);
        ("detail_pages_2x", J.Int pages_big);
        ("streaming_at_n", run_json at_n);
        ("streaming_at_2n", run_json at_2n);
        ("peak_rows", J.Int peak_n);
        ("peak_rows_2x", J.Int peak_2n);
        ("chained_page_reads", J.Int chained_reads);
        ("coalesced_page_reads", J.Int coalesced_reads);
        ("verified", J.Bool paged_verified);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n');
  Format.printf "@.== exec: streaming executor over a disk-resident detail ==@.";
  Format.printf "wrote %s@." out;
  Format.printf
    "detail I: %d rows on %d pages (pool: %d frames) — peak materialized rows:@." inner
    pages_small frames;
  Format.printf "  |I| = %-8d %6d rows peak@." inner peak_n;
  Format.printf "  |I| = %-8d %6d rows peak (pipelined: independent of |I|)@." (2 * inner)
    peak_2n;
  Format.printf "page reads over %d data pages:@." pages_small;
  Format.printf "  chained (2 GMDJs)  %6d@." chained_reads;
  Format.printf "  coalesced (1 GMDJ) %6d@." coalesced_reads;
  Format.printf "verified: %b@." paged_verified;
  if not paged_verified then exit 1;
  (* The tentpole claim, enforced: streaming peak memory must not track
     the detail cardinality. *)
  if peak_2n > peak_n + (peak_n / 5) then begin
    Format.printf "FAIL: peak materialized rows grew with the detail (%d -> %d)@." peak_n
      peak_2n;
    exit 1
  end
