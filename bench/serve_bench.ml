(* The serving-layer traffic benchmark: a skewed open-loop arrival
   sweep over the zoo, replayed twice against one long-lived server.

   Round 1 (cold) starts with an empty result cache: in-batch GMDJ
   sharing and first-touch caching already push detail scans per query
   far below one.  Round 2 (steady) replays the same trace against the
   warm server: every template is cached, so the steady state performs
   zero detail scans — the regime a long-lived loop actually serves.

   Latency is virtual-time queueing (deterministic, from the trace)
   plus measured wall-clock evaluation; p50/p99 are reported per
   arrival rate.  Writes BENCH_serve.json; scripts/check.sh gates the
   steady-state p99 and scans-per-query against the committed
   baseline. *)

module Zoo = Subql_workload.Zoo
module Traffic = Subql_workload.Traffic
module Server = Subql_server.Server
module Admission = Subql_server.Admission
module Driver = Subql_server.Driver
module J = Subql_obs.Json

let rates = [ 100.; 400.; 1600. ]

let skew = 0.85

let events ~seed ~count rate =
  Traffic.open_loop ~seed ~rate ~count ~skew ()
  |> List.map (fun (a : Traffic.arrival) ->
         {
           Driver.at = a.Traffic.at;
           label = a.Traffic.template;
           query = Zoo.find_query a.Traffic.template;
         })

let server_config =
  {
    Server.batch_window = 0.01;
    batch_max = 32;
    policy = { Admission.mem_budget_rows = infinity; queue_cap = 512 };
    eval_config = Subql.Eval.default_config;
  }

let scans_per_query (s : Driver.summary) =
  if s.Driver.completed = 0 then 0.
  else float_of_int s.Driver.detail_scans /. float_of_int s.Driver.completed

let round_json (s : Driver.summary) =
  let p q = 1000. *. Driver.percentile s.Driver.latencies q in
  J.Obj
    [
      ("completed", J.Int s.Driver.completed);
      ("shed", J.Int s.Driver.shed);
      ("batches", J.Int s.Driver.batches);
      ("p50_ms", J.Float (p 50.));
      ("p90_ms", J.Float (p 90.));
      ("p99_ms", J.Float (p 99.));
      ("max_ms", J.Float (p 100.));
      ( "throughput_qps",
        J.Float
          (if s.Driver.duration > 0. then
             float_of_int s.Driver.completed /. s.Driver.duration
           else 0.) );
      ("exec_seconds", J.Float s.Driver.exec_seconds);
      ("detail_scans", J.Int s.Driver.detail_scans);
      ("naive_detail_scans", J.Int s.Driver.naive_detail_scans);
      ("scans_per_query", J.Float (scans_per_query s));
      ("cache_hits", J.Int s.Driver.cache_hits);
      ("cache_misses", J.Int s.Driver.cache_misses);
      ("max_queue_depth", J.Int s.Driver.max_queue_depth);
    ]

let run (options : Figures.options) =
  let out = "BENCH_serve.json" in
  let outer, inner = if options.Figures.full then (256, 50_000) else (64, 10_000) in
  let count = if options.Figures.full then 1500 else 400 in
  let catalog = Zoo.catalog ~outer ~inner ~seed:options.Figures.seed () in
  let reference q =
    Subql.Eval.eval catalog (Subql.Optimize.optimize (Subql.Transform.to_algebra q))
  in
  let measure rate =
    (* One long-lived server per rate; its cache persists across both
       rounds, which is the point. *)
    let cache = Subql_mqo.Result_cache.create ~min_cost:0. () in
    let server = Server.create ~config:server_config ~cache catalog in
    let evs = events ~seed:options.Figures.seed ~count rate in
    let cold = Driver.replay server evs in
    let steady = Driver.replay server evs in
    (* The warm server must still answer correctly: every template the
       trace used is checked against independent solo evaluation. *)
    let templates =
      List.sort_uniq String.compare (List.map (fun (e : Driver.event) -> e.Driver.label) evs)
    in
    let ok =
      List.for_all
        (fun t ->
          let q = Zoo.find_query t in
          let report = Subql_mqo.Batch.run ~cache catalog [ q ] in
          Subql_relational.Relation.equal_as_multiset (reference q)
            (List.assoc 0 report.Subql_mqo.Batch.results))
        templates
    in
    (rate, cold, steady, ok)
  in
  let measured = List.map measure rates in
  let verified = List.for_all (fun (_, _, _, ok) -> ok) measured in
  let steady_max =
    List.fold_left (fun acc (_, _, s, _) -> max acc (scans_per_query s)) 0. measured
  in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "serve");
        ("scale", J.Str (if options.Figures.full then "full" else "default"));
        ("outer_rows", J.Int outer);
        ("inner_rows", J.Int inner);
        ("queries_per_rate", J.Int count);
        ("skew", J.Float skew);
        ("batch_window", J.Float server_config.Server.batch_window);
        ("batch_max", J.Int server_config.Server.batch_max);
        ("queue_cap", J.Int server_config.Server.policy.Admission.queue_cap);
        ( "rates",
          J.List
            (List.map
               (fun (rate, cold, steady, _) ->
                 J.Obj
                   [
                     ("rate", J.Float rate);
                     ("offered", J.Int cold.Driver.offered);
                     ("cold", round_json cold);
                     ("steady", round_json steady);
                   ])
               measured) );
        ("steady_scans_per_query_max", J.Float steady_max);
        ("verified", J.Bool verified);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n');
  Format.printf "@.== serve: open-loop traffic sweep, %d queries/rate, skew %.2f ==@."
    count skew;
  Format.printf "wrote %s@." out;
  Format.printf "%-8s %-28s %-38s@." "" "cold (empty cache)" "steady (warm server)";
  Format.printf "%-8s %9s %9s %8s %9s %9s %8s %9s@." "rate" "p50ms" "p99ms" "scans/q"
    "p50ms" "p99ms" "scans/q" "hit rate";
  List.iter
    (fun (rate, cold, steady, _) ->
      let p (s : Driver.summary) q = 1000. *. Driver.percentile s.Driver.latencies q in
      let hit_rate (s : Driver.summary) =
        let total = s.Driver.cache_hits + s.Driver.cache_misses in
        if total = 0 then 0. else float_of_int s.Driver.cache_hits /. float_of_int total
      in
      Format.printf "%-8.0f %9.1f %9.1f %8.3f %9.1f %9.1f %8.3f %8.0f%%@." rate
        (p cold 50.) (p cold 99.) (scans_per_query cold) (p steady 50.) (p steady 99.)
        (scans_per_query steady)
        (100. *. hit_rate steady))
    measured;
  Format.printf "steady-state detail scans per query (max over rates): %.3f@." steady_max;
  Format.printf "verified against solo evaluation: %b@." verified;
  if not verified then exit 1;
  (* The tentpole claim, enforced: under batched same-detail traffic the
     steady state must do strictly less than one detail scan per query. *)
  if steady_max >= 1. then begin
    Format.printf "FAIL: steady state scans %.3f per query (sharing/cache not firing)@."
      steady_max;
    exit 1
  end
