(* Benchmark driver.

   Usage: main.exe [fig2|fig3|fig4|fig5|fig5-noindex|ablation|micro|obs|mqo|exec|par|serve|ingest|codec|all]
                   [--full] [--budget F] [--seed N]

   Without --full the table sizes are one tenth of the paper's (the
   shapes are preserved; absolute numbers are hardware-dependent anyway).
   Quadratic-cost engines are skipped when outer*inner exceeds the
   budget, mirroring the measurements the paper reports as hours. *)

let micro () =
  let open Bechamel in
  let catalog =
    Figures.netflow_catalog Figures.default_options ~users:200 ~flows:20_000
  in
  let mk_test name query =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (Subql.Eval.eval catalog
                (Subql.Optimize.optimize (Subql.Transform.to_algebra query)))))
  in
  let first_point fig =
    (List.nth (fig.Figures.points Figures.default_options) 0).Figures.query
  in
  let tests =
    [
      mk_test "fig2-exists" (first_point Figures.fig2);
      mk_test "fig3-agg-cmp" (first_point Figures.fig3);
      mk_test "fig4-all-ne" (first_point Figures.fig4);
      mk_test "fig5-coalesce" Figures.fig5_query;
    ]
  in
  let test = Test.make_grouped ~name:"figures" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw_results = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Format.printf "@.== micro (bechamel, ns/run via OLS) ==@.@.";
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "%-32s %14.0f ns/run@." name est
          | Some ests ->
            Format.printf "%-32s %s@." name
              (String.concat ", " (List.map (Printf.sprintf "%.0f") ests))
          | None -> Format.printf "%-32s (no estimate)@." name)
        tbl)
    results;
  Format.printf "@."

let () =
  let full = ref false in
  let budget = ref Figures.default_options.Figures.budget in
  let seed = ref 42 in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      parse rest
    | "--budget" :: v :: rest ->
      budget := float_of_string v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | target :: rest ->
      targets := target :: !targets;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let options = { Figures.full = !full; budget = !budget; seed = Int64.of_int !seed } in
  let targets = match List.rev !targets with [] -> [ "all" ] | ts -> ts in
  let run_target = function
    | "all" ->
      List.iter (Figures.run_figure options) Figures.figures;
      Figures.ablation options
    | "fig2" -> Figures.run_figure options Figures.fig2
    | "fig3" -> Figures.run_figure options Figures.fig3
    | "fig4" -> Figures.run_figure options Figures.fig4
    | "fig5" -> Figures.run_figure options Figures.fig5
    | "fig5-noindex" -> Figures.run_figure options Figures.fig5_noindex
    | "ablation" -> Figures.ablation options
    | "micro" -> micro ()
    | "obs" -> Figures.obs options
    | "mqo" -> Mqo_bench.run options
    | "exec" -> Exec_bench.run options
    | "par" -> Par_bench.run options
    | "serve" -> Serve_bench.run options
    | "ingest" -> Ingest_bench.run options
    | "codec" -> Codec_bench.run options
    | other ->
      Format.eprintf "unknown target %s@." other;
      exit 2
  in
  Format.printf "subql benchmark harness — reproduction of Akinde & Böhlen, ICDE 2003@.";
  Format.printf "scale: %s, quadratic-engine budget: %.0e pairs, seed %d@."
    (if options.Figures.full then "full (paper sizes)" else "default (paper sizes / 10)")
    options.Figures.budget !seed;
  List.iter run_target targets
