(** The Generalized Multi-Dimensional Join operator (Def. 2.1).

    [MD(B, R, (l_1..l_m), (θ_1..θ_m))] extends every base tuple [b ∈ B]
    with the aggregates [l_i] computed over the range
    [RNG(b, R, θ_i) = {r ∈ R | θ_i(b, r)}].  The output has one row per
    base row (in base order) and one column per aggregate.

    Evaluation strategies:
    - [`Reference] — the definition, verbatim: one pass over the detail
      relation per base tuple and block.  Executable specification.
    - [`Scan] — a single scan of the detail relation, updating all base
      tuples' accumulators.  Cost: |R| scans × |B| predicate tests per
      block.
    - [`Hash] — single scan with the hash-index strategy of the paper's
      GMDJ engine: equi-conditions between base and detail attributes
      are extracted from each θ and used to hash-partition the base
      tuples; each detail tuple probes its candidates and evaluates only
      the residual predicate.

    Under [`Scan] and [`Hash], conjuncts of a θ that mention only detail
    attributes are hoisted and evaluated once per detail row (the
    invariant reuse of Rao & Ross), not once per pair.

    All strategies produce identical results. *)

open Subql_relational

type block = { aggs : Aggregate.spec list; theta : Expr.t }
(** One (l_i, θ_i) pair: aggregates over the detail rows matching θ_i.
    θ_i may reference attributes of both operands; references resolve in
    the detail schema first (qualify to disambiguate). *)

type strategy = [ `Reference | `Scan | `Hash ]

type stats = {
  mutable detail_scanned : int;  (** detail rows consumed *)
  mutable theta_evals : int;  (** residual/θ predicate evaluations *)
  mutable early_exit : bool;  (** scan stopped before the end *)
  mutable detail_passes : int;
      (** detail scans started: 1 per [`Scan]/[`Hash] evaluation, 1 per
          segment for {!eval_segmented}, |B| × blocks for [`Reference] —
          the Prop. 4.1 coalescing argument as a number *)
  mutable block_updates : int array;
      (** accumulator-update batches per block (grown on demand to the
          widest block list seen) *)
}

val fresh_stats : unit -> stats

(** Every evaluation also publishes its pass / scanned-row / θ-count
    deltas to the process registry ({!Subql_obs.Metrics.default}) under
    ["gmdj.evals"], ["gmdj.detail_passes"], ["gmdj.detail_rows_scanned"],
    ["gmdj.theta_evals"] and ["gmdj.early_exits"].  Per-pair θ counting
    stays opt-in (a [stats] record must be supplied) because it wraps
    the hottest predicate path; pass and row counts are always exact. *)

val block : Aggregate.spec list -> Expr.t -> block

val pp_block : Format.formatter -> block -> unit

val output_schema : base:Schema.t -> detail:Schema.t -> block list -> Schema.t
(** Base attributes followed by the aggregate columns (unqualified).
    Duplicate aggregate names are uniquified as in the paper's
    footnote 1. *)

val eval :
  ?strategy:strategy ->
  ?stats:stats ->
  base:Relation.t ->
  detail:Relation.t ->
  block list ->
  Relation.t

val eval_partitioned :
  ?strategy:strategy ->
  ?stats:stats ->
  domains:int ->
  base:Relation.t ->
  detail:Relation.t ->
  block list ->
  Relation.t
(** Parallel evaluation (the parallel/distributed suitability noted in
    the paper's conclusion): the detail relation is sliced into chunks
    and run through {!Parallel.fold_source} — each of [domains] OCaml
    domains evaluates its share against the shared read-only base, and
    the per-domain accumulators are merged — every SQL aggregate state
    is mergeable (see {!Aggregate.merge}).  Results are identical to
    {!eval}.  [domains] is capped at the detail cardinality; [1] (or a
    single-row detail) falls back to {!eval}.
    @raise Invalid_argument if [domains <= 0]. *)

val eval_segmented :
  ?strategy:strategy ->
  ?stats:stats ->
  segment_size:int ->
  base:Relation.t ->
  detail:Relation.t ->
  block list ->
  Relation.t
(** Memory-bounded evaluation (the paper's Section 2.3 remark and the
    segmented evaluation behind SEGMENT-APPLY): the base-values relation
    is processed in segments of at most [segment_size] tuples, each with
    its own scan of the detail relation, so the in-memory base-result
    structure stays bounded.  The cost is well-defined:
    [⌈|B| / segment_size⌉] detail scans.  Results are identical to
    {!eval}, in base order.
    @raise Invalid_argument if [segment_size <= 0]. *)

(** {1 Base-tuple completion (Section 4.2)}

    [eval_completed] evaluates [σ[C](MD(B, R, blocks))] for selection
    conditions [C] that the optimizer reduced to completion rules:

    - a {e kill} predicate fires on [(b, r)] ⇒ [b] can never satisfy
      [C]; it is disqualified and ignored for the rest of the scan
      (Thm 4.2 — e.g. [cnt = 0] conjuncts, or the ALL-quantifier
      pattern [θ ∧ ¬(x φ y IS TRUE)]);
    - a {e require-fired} predicate must fire at least once for [b] to
      satisfy [C] (Thm 4.1 — [cnt > 0] conjuncts).

    When every base tuple is decided — killed, or all requirements fired
    while no kill predicates exist — the detail scan stops early.

    With [maintain_aggregates = false] (valid only when the enclosing
    projection discards the aggregate columns, Thm 4.1's [A ∩ l = ∅]),
    accumulators are not updated at all; the aggregate columns of the
    result then hold unspecified defaults and must be projected away. *)

type completion = {
  kill_when : Expr.t list;
  require_fired : Expr.t list;
  maintain_aggregates : bool;
}

val pp_completion : Format.formatter -> completion -> unit

val eval_completed :
  ?strategy:strategy ->
  ?stats:stats ->
  completion:completion ->
  base:Relation.t ->
  detail:Relation.t ->
  block list ->
  Relation.t
(** Returns only the surviving base rows, extended with the aggregate
    columns.  [`Reference] is treated as [`Scan]. *)

val eval_completed_partitioned :
  ?strategy:strategy ->
  ?stats:stats ->
  domains:int ->
  completion:completion ->
  base:Relation.t ->
  detail:Relation.t ->
  block list ->
  Relation.t
(** {!eval_completed} with the detail sliced across [domains] domains
    via {!Parallel.fold_completed_source}.  [domains] is capped at the
    detail cardinality; [1] falls back to {!eval_completed}.
    @raise Invalid_argument if [domains <= 0]. *)

(** Exchange-parallel evaluation: GMDJ as a fold over a
    {!Subql_relational.Chunk.Exchange}. *)
module Parallel : sig
  val fold_source :
    ?strategy:strategy ->
    ?stats:stats ->
    domains:int ->
    base:Relation.t ->
    detail_schema:Schema.t ->
    Chunk.Source.t ->
    block list ->
    Relation.t
  (** Drain a detail chunk stream through [domains] workers, each folding
      its share into a private accumulator matrix with the same core as
      {!Fold}, then merge the matrices with
      {!Subql_relational.Aggregate.merge} and emit in base order.  The
      coordinator owns the pull side of the stream (storage scans and
      buffer pools stay single-domain); round-robin chunk routing is
      sound because the merge is a commutative reduction.  [`Reference]
      is treated as [`Scan]; [domains = 1] folds inline with no spawn.
      Supplied [stats] aggregate the per-worker counts, and θ-evaluation
      counting is always on in workers (as with {!eval_partitioned}).
      @raise Invalid_argument if [domains <= 0]. *)

  val fold_completed_source :
    ?strategy:strategy ->
    ?stats:stats ->
    domains:int ->
    completion:completion ->
    base:Relation.t ->
    detail_schema:Schema.t ->
    Chunk.Source.t ->
    block list ->
    Relation.t
  (** Completion-aware {!fold_source}: each worker runs the Thm 4.1/4.2
      kill/require machinery on its share of the detail, with local
      early exit — sound because verdicts are monotone in the detail
      rows seen.  At the merge, alive ANDs, fired ORs and accumulators
      merge; a tuple killed by any worker is excluded even if another
      worker kept aggregating it.  One logical detail pass (and at most
      one early exit) is published for the whole evaluation.
      @raise Invalid_argument if [domains <= 0]. *)
end

(** {1 Chunk-at-a-time evaluation}

    The streaming counterparts of {!eval} and {!eval_completed}: the
    caller owns the detail scan and pushes {!Subql_relational.Chunk.t}
    batches in, so the detail side never has to exist as one in-memory
    relation — it can be pulled straight off heap-file pages through a
    buffer pool.  One [start]/[finish] pair counts as one evaluation
    (one registry publication and, for [`Scan]/[`Hash], one
    [detail_passes] increment regardless of how many chunks arrive —
    the Prop. 4.1 accounting is per storage pass, not per batch). *)

module Fold : sig
  type acc

  val start :
    ?strategy:strategy ->
    ?stats:stats ->
    base:Relation.t ->
    detail:Schema.t ->
    block list ->
    acc
  (** Compile plans against the detail [schema] and allocate the
      accumulator matrix.  [`Reference] is treated as [`Scan]. *)

  val fold_detail : Chunk.t -> acc -> acc
  (** Accumulate one batch of detail rows into every base tuple's
      ranges.  Chunks may arrive in any number and size. *)

  val finish : acc -> Relation.t
  (** Emit the result (base order) and publish the registry deltas. *)
end

module Fold_completed : sig
  type acc

  val start :
    ?strategy:strategy ->
    ?stats:stats ->
    completion:completion ->
    base:Relation.t ->
    detail:Schema.t ->
    block list ->
    acc

  val saturated : acc -> bool
  (** No further detail rows can change the answer (every base tuple is
      decided, Thms 4.1–4.2).  The feeder should stop pulling — and
      close — the detail stream: with a paged detail source this turns
      the early {e scan} exit into an early {e storage} exit. *)

  val fold_detail : Chunk.t -> acc -> acc
  (** No-op once {!saturated}. *)

  val finish : acc -> Relation.t
  (** Surviving base rows, extended with the aggregate columns. *)
end

(** {1 Incremental view maintenance}

    Maintain a materialized GMDJ result under detail-relation deltas
    (the complex-aggregate-view maintenance of the authors' companion
    work).  The view keeps live accumulators per base tuple, so applying
    a delta costs one pass over the delta only.

    Preconditions: inserted rows must not already be counted twice, and
    deleted rows must actually be part of the accumulated content —
    standard multiset view-maintenance assumptions.  COUNT/SUM/AVG
    states retract exactly (including re-nullification when a range
    empties); MIN/MAX views reject deletions. *)
module Maintain : sig
  type t

  val generation : unit -> int
  (** A process-wide delta counter, bumped by every successful
      {!insert_detail} / {!delete_detail} on any view.  Maintained views
      mutate the effective detail content without touching the catalog,
      so fingerprint-keyed result caches ([Subql_mqo]) fold this into
      their invalidation epoch alongside {!Subql_relational.Catalog.generation}. *)

  val create :
    ?strategy:strategy -> base:Relation.t -> detail:Relation.t -> block list -> t
  (** Materialize [MD(base, detail, blocks)] with maintainable state. *)

  val insert_detail : t -> Relation.t -> unit
  (** Fold a batch of new detail rows into the view.
      @raise Invalid_argument if the delta schema differs. *)

  val delete_detail : t -> Relation.t -> unit
  (** Retract a batch of detail rows.
      @raise Invalid_argument for views with MIN/MAX aggregates. *)

  val insert_chunk : t -> Chunk.t -> unit
  (** {!insert_detail} for one chunk of detail rows — the streaming
      insertion primitive: only the chunk's window of its backing buffer
      is folded, nothing is copied.
      @raise Invalid_argument if the chunk schema differs. *)

  val insert_source : t -> Chunk.Source.t -> int
  (** Drain a chunk stream into the view, one {!insert_chunk} per chunk;
      returns the number of rows folded.  With a paged delta source
      (e.g. [Heap_file.source_range]) an appended batch is maintained
      without ever materializing it. *)

  val stats : t -> stats
  (** Lifetime accumulation counts for this view: the initial
      materialization plus every delta folded since.  [detail_scanned]
      deltas between two reads price a maintenance step in rows. *)

  val result : t -> Relation.t
  (** The current view contents, in base order — always equal to
      re-evaluating the GMDJ over the maintained detail state. *)
end
