open Subql_relational

module Cluster = struct
  type t = { detail_schema : Schema.t; partitions : Relation.t array }

  let create ~sites ?(partition = `Round_robin) detail =
    if sites <= 0 then invalid_arg "Distributed.Cluster.create: sites must be positive";
    let schema = Relation.schema detail in
    let buckets = Array.init sites (fun _ -> Vec.create ~dummy:Tuple.empty ()) in
    (match partition with
    | `Round_robin ->
      Relation.iteri (fun i row -> Vec.push buckets.(i mod sites) row) detail
    | `Hash_on (rel, name) ->
      let pos = Schema.find schema ?rel name in
      Relation.iter
        (fun row ->
          let site =
            match row.(pos) with
            | Value.Null -> 0
            | v -> Value.hash v mod sites
          in
          Vec.push buckets.(abs site) row)
        detail);
    {
      detail_schema = schema;
      partitions =
        Array.map (fun b -> Relation.create ~check:false schema (Vec.to_array b)) buckets;
    }

  let sites t = Array.length t.partitions

  let site_rows t = Array.map Relation.cardinality t.partitions
end

type strategy = Ship_all | Ship_filtered | Partial_aggregates

let strategy_to_string = function
  | Ship_all -> "ship-all"
  | Ship_filtered -> "ship-filtered"
  | Partial_aggregates -> "partial-aggregates"

type report = {
  result : Relation.t;
  bytes_broadcast : int;
  bytes_collected : int;
  messages : int;
}

let total_bytes r = r.bytes_broadcast + r.bytes_collected

(* Estimated wire size of values/rows/relations. *)
let value_bytes = function
  | Value.Null -> 1
  | Value.Int _ -> 8
  | Value.Float _ -> 8
  | Value.Bool _ -> 1
  | Value.Str s -> 8 + String.length s

let row_bytes row = Array.fold_left (fun acc v -> acc + value_bytes v) 8 row

let relation_bytes rel = Relation.fold (fun acc row -> acc + row_bytes row) 0 rel

(* ------------------------------------------------------------------ *)
(* Partial aggregation: AVG decomposes into SUM + COUNT so per-site     *)
(* partial states merge exactly.                                        *)
(* ------------------------------------------------------------------ *)

type col_kind = Kcount | Ksum | Kmin | Kmax

(* Rewrite blocks so every aggregate column is mergeable, and record how
   to merge / reconstruct each original output column. *)
let decompose blocks =
  let shipped_blocks =
    List.map
      (fun b ->
        {
          b with
          Gmdj.aggs =
            List.concat_map
              (fun spec ->
                match spec.Aggregate.func with
                | Aggregate.Avg e ->
                  [
                    { Aggregate.func = Aggregate.Sum e; name = spec.Aggregate.name ^ "$sum" };
                    { Aggregate.func = Aggregate.Count e; name = spec.Aggregate.name ^ "$cnt" };
                  ]
                | Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _
                | Aggregate.Min _ | Aggregate.Max _ ->
                  [ spec ]
                | Aggregate.First _ ->
                  (* No commutative partial state exists; the planner's
                     merge certificate keeps FIRST off this path. *)
                  invalid_arg "Distributed: FIRST has no mergeable partial state")
              b.Gmdj.aggs;
        })
      blocks
  in
  let shipped_kinds =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun spec ->
            match spec.Aggregate.func with
            | Aggregate.Count_star | Aggregate.Count _ -> [ Kcount ]
            | Aggregate.Sum _ -> [ Ksum ]
            | Aggregate.Min _ -> [ Kmin ]
            | Aggregate.Max _ -> [ Kmax ]
            | Aggregate.Avg _ -> [ Ksum; Kcount ]
            | Aggregate.First _ ->
              invalid_arg "Distributed: FIRST has no mergeable partial state")
          b.Gmdj.aggs)
      blocks
  in
  (shipped_blocks, shipped_kinds)

let merge_value kind a b =
  match kind with
  | Kcount -> Value.add a b
  | Ksum -> (
    match Value.is_null a, Value.is_null b with
    | true, _ -> b
    | _, true -> a
    | false, false -> Value.add a b)
  | Kmin -> (
    match Value.is_null a, Value.is_null b with
    | true, _ -> b
    | _, true -> a
    | false, false -> if Value.compare a b <= 0 then a else b)
  | Kmax -> (
    match Value.is_null a, Value.is_null b with
    | true, _ -> b
    | _, true -> a
    | false, false -> if Value.compare a b >= 0 then a else b)

(* Merge the second partial GMDJ result into the first, columnwise over
   the aggregate suffix.  Rows align by position: partial results share
   the same base relation, and [Gmdj.eval] emits base order. *)
let merge_partials ~n_base_cols ~kinds a b =
  let arows = Relation.rows a and brows = Relation.rows b in
  Array.iteri
    (fun i arow ->
      let brow = brows.(i) in
      List.iteri
        (fun j kind ->
          let c = n_base_cols + j in
          arow.(c) <- merge_value kind arow.(c) brow.(c))
        kinds)
    arows;
  a

(* Reassemble the original output schema from the shipped columns
   (AVG = float sum / count, NULL on an empty range). *)
let reconstruct ~base ~detail_schema ~blocks merged =
  let out_schema =
    Gmdj.output_schema ~base:(Relation.schema base) ~detail:detail_schema blocks
  in
  let merged_schema = Relation.schema merged in
  let n_base_cols = Schema.arity (Relation.schema base) in
  let readers =
    List.concat_map
      (fun b ->
        List.map
          (fun spec ->
            match spec.Aggregate.func with
            | Aggregate.Avg _ ->
              let sum_i = Schema.find merged_schema (spec.Aggregate.name ^ "$sum") in
              let cnt_i = Schema.find merged_schema (spec.Aggregate.name ^ "$cnt") in
              fun (row : Tuple.t) ->
                (match row.(cnt_i) with
                | Value.Int 0 -> Value.Null
                | Value.Int n -> (
                  match row.(sum_i) with
                  | Value.Int s -> Value.Float (float_of_int s /. float_of_int n)
                  | Value.Float s -> Value.Float (s /. float_of_int n)
                  | v -> v)
                | v -> v)
            | Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Min _
            | Aggregate.Max _ | Aggregate.First _ ->
              let i = Schema.find merged_schema spec.Aggregate.name in
              fun row -> row.(i))
          b.Gmdj.aggs)
      blocks
  in
  let rows =
    Array.map
      (fun row ->
        let out = Array.make (Schema.arity out_schema) Value.Null in
        Array.blit row 0 out 0 n_base_cols;
        List.iteri (fun j read -> out.(n_base_cols + j) <- read row) readers;
        out)
      (Relation.rows merged)
  in
  Relation.create ~check:false out_schema rows

(* ------------------------------------------------------------------ *)
(* Strategies                                                           *)
(* ------------------------------------------------------------------ *)

let concat_partitions (cluster : Cluster.t) parts =
  let all = Vec.create ~dummy:Tuple.empty () in
  Array.iter (fun p -> Relation.iter (Vec.push all) p) parts;
  Relation.create ~check:false cluster.Cluster.detail_schema (Vec.to_array all)

(* Rows that fail every block's detail-local conjuncts cannot contribute
   to any aggregate and need not be shipped.  A block without detail-
   local conjuncts forces shipping everything. *)
let site_filter ~detail_schema blocks =
  let per_block =
    List.map
      (fun b ->
        let detail_only, _ =
          List.partition (Expr.refs_resolvable [| detail_schema |]) (Expr.conjuncts b.Gmdj.theta)
        in
        match detail_only with [] -> None | cs -> Some (Expr.conjoin cs))
      blocks
  in
  if List.exists Option.is_none per_block then None
  else Some (Expr.disjoin (List.filter_map Fun.id per_block))

(* Publish a coordinator run into the process registry: aggregate
   traffic as counters, the per-site shipped sizes as a histogram (so a
   skewed partitioning shows up as a wide spread, not just a sum). *)
let publish ~site_bytes report =
  let open Subql_obs in
  let c name = Metrics.counter Metrics.default ("distributed." ^ name) in
  Metrics.incr (c "executions");
  Metrics.incr ~by:report.bytes_broadcast (c "bytes_broadcast");
  Metrics.incr ~by:report.bytes_collected (c "bytes_collected");
  Metrics.incr ~by:report.messages (c "messages");
  let shipped =
    Metrics.histogram
      ~buckets:[ 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 ]
      Metrics.default "distributed.site_shipped_bytes"
  in
  Array.iter (fun b -> Metrics.observe shipped (float_of_int b)) site_bytes

let execute ?(strategy = Partial_aggregates) (cluster : Cluster.t) ~base blocks =
  let sites = Cluster.sites cluster in
  Subql_obs.Trace.with_
    ~attrs:
      [ ("strategy", strategy_to_string strategy); ("sites", string_of_int sites) ]
    "distributed.execute"
  @@ fun () ->
  let report, site_bytes =
    match strategy with
    | Ship_all ->
      let site_bytes = Array.map relation_bytes cluster.Cluster.partitions in
      let shipped = concat_partitions cluster cluster.Cluster.partitions in
      ( {
          result = Gmdj.eval ~base ~detail:shipped blocks;
          bytes_broadcast = 0;
          bytes_collected = relation_bytes shipped;
          messages = sites;
        },
        site_bytes )
    | Ship_filtered ->
      let parts =
        match site_filter ~detail_schema:cluster.Cluster.detail_schema blocks with
        | None -> cluster.Cluster.partitions
        | Some pred -> Array.map (Ops.select pred) cluster.Cluster.partitions
      in
      let site_bytes = Array.map relation_bytes parts in
      let shipped = concat_partitions cluster parts in
      ( {
          result = Gmdj.eval ~base ~detail:shipped blocks;
          bytes_broadcast = 0;
          bytes_collected = relation_bytes shipped;
          messages = sites;
        },
        site_bytes )
    | Partial_aggregates ->
      let shipped_blocks, kinds = decompose blocks in
      let n_base_cols = Schema.arity (Relation.schema base) in
      let partials =
        Array.map
          (fun part -> Gmdj.eval ~base ~detail:part shipped_blocks)
          cluster.Cluster.partitions
      in
      let site_bytes = Array.map relation_bytes partials in
      let bytes_collected = Array.fold_left ( + ) 0 site_bytes in
      let merged =
        match Array.to_list partials with
        | [] -> assert false
        | first :: rest ->
          (* Copy before the in-place columnwise merge. *)
          let acc =
            Relation.create ~check:false (Relation.schema first)
              (Array.map Array.copy (Relation.rows first))
          in
          List.fold_left (fun acc p -> merge_partials ~n_base_cols ~kinds acc p) acc rest
      in
      ( {
          result =
            reconstruct ~base ~detail_schema:cluster.Cluster.detail_schema ~blocks merged;
          bytes_broadcast = sites * relation_bytes base;
          bytes_collected;
          messages = 2 * sites;
        },
        site_bytes )
  in
  publish ~site_bytes report;
  report
