open Subql_relational

type block = { aggs : Aggregate.spec list; theta : Expr.t }

type strategy = [ `Reference | `Scan | `Hash ]

type stats = {
  mutable detail_scanned : int;
  mutable theta_evals : int;
  mutable early_exit : bool;
  mutable detail_passes : int;
  mutable block_updates : int array;
}

let fresh_stats () =
  {
    detail_scanned = 0;
    theta_evals = 0;
    early_exit = false;
    detail_passes = 0;
    block_updates = [||];
  }

let ensure_block_slots s n =
  let have = Array.length s.block_updates in
  if have < n then s.block_updates <- Array.append s.block_updates (Array.make (n - have) 0)

let strategy_name = function `Reference -> "reference" | `Scan -> "scan" | `Hash -> "hash"

(* Registry publication: the engine-wide counters under "gmdj.*" in
   {!Subql_obs.Metrics.default}.  Only coordinator-side code calls this
   — parallel workers accumulate into local stats records which are
   merged before publication (the registry is single-domain). *)
let publish ?(evals = 1) ~owned ~passes0 ~rows0 ~thetas0 () =
  let open Subql_obs in
  let c name = Metrics.counter Metrics.default ("gmdj." ^ name) in
  Metrics.incr ~by:evals (c "evals");
  Metrics.incr ~by:(owned.detail_passes - passes0) (c "detail_passes");
  Metrics.incr ~by:(owned.detail_scanned - rows0) (c "detail_rows_scanned");
  Metrics.incr ~by:(owned.theta_evals - thetas0) (c "theta_evals")

(* Run [f] over an owned stats record (the caller's, or a private one so
   pass/row counting is always on), publishing the deltas. *)
let with_owned_stats ?attrs ~span stats f =
  let owned = match stats with Some s -> s | None -> fresh_stats () in
  let passes0 = owned.detail_passes
  and rows0 = owned.detail_scanned
  and thetas0 = owned.theta_evals in
  let result = Subql_obs.Trace.with_ ?attrs span (fun () -> f owned) in
  publish ~owned ~passes0 ~rows0 ~thetas0 ();
  result

let block aggs theta = { aggs; theta }

let pp_block ppf b =
  Format.fprintf ppf "[%a | %a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Aggregate.pp_spec)
    b.aggs Expr.pp b.theta

type completion = {
  kill_when : Expr.t list;
  require_fired : Expr.t list;
  maintain_aggregates : bool;
}

let pp_completion ppf c =
  let pp_list = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Expr.pp in
  Format.fprintf ppf "{kill: %a; require: %a; aggregates %s}" pp_list c.kill_when pp_list
    c.require_fired
    (if c.maintain_aggregates then "maintained" else "skipped")

let output_schema ~base ~detail blocks =
  let frames = [| base; detail |] in
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun s spec ->
          let name = Schema.fresh_name s spec.Aggregate.name in
          Schema.concat s [| Schema.attr name (Aggregate.output_ty frames spec) |])
        acc b.aggs)
    base blocks

(* ------------------------------------------------------------------ *)
(* θ-plans                                                              *)
(* ------------------------------------------------------------------ *)

(* A compiled plan for one θ-like condition over (base, detail):

   - [prefilter] holds the conjuncts that mention only detail attributes
     (the invariants of Rao & Ross): they are tested once per detail row
     instead of once per (base, detail) pair;
   - [probe] either iterates hash-bucket candidates (equi-conditions
     extracted, residual tested per candidate) or tests the remaining
     condition against every candidate the caller supplies. *)
type plan = {
  prefilter : (Tuple.t -> bool) option;
  probe : probe;
}

and probe =
  | Probe_hash of {
      key_of_detail : Tuple.t -> Tuple.t;
      index : Index.t;
      test : Tuple.t -> Tuple.t -> bool;
    }
  | Probe_all of { test : Tuple.t -> Tuple.t -> bool }

let make_pair_test ~stats ~bs ~ds expr =
  match expr with
  | None -> fun _ _ -> true
  | Some e ->
    let f = Expr.compile_frames [| bs; ds |] e in
    let ctx = [| Tuple.empty; Tuple.empty |] in
    let test b r =
      ctx.(0) <- b;
      ctx.(1) <- r;
      Expr.is_true (f ctx)
    in
    (match stats with
    | None -> test
    | Some s ->
      fun b r ->
        s.theta_evals <- s.theta_evals + 1;
        test b r)

let make_plan ~strategy ~stats ~bs ~ds ~base_rows theta =
  Expr.typecheck_bool [| bs; ds |] theta;
  let detail_only, correlated =
    List.partition (Expr.refs_resolvable [| ds |]) (Expr.conjuncts theta)
  in
  let prefilter =
    match detail_only with
    | [] -> None
    | conjs ->
      let f = Expr.compile ds (Expr.conjoin conjs) in
      Some
        (match stats with
        | None -> fun r -> Expr.is_true (f r)
        | Some s ->
          fun r ->
            s.theta_evals <- s.theta_evals + 1;
            Expr.is_true (f r))
  in
  let correlated_expr =
    match correlated with [] -> None | conjs -> Some (Expr.conjoin conjs)
  in
  let probe =
    match strategy, correlated_expr with
    | (`Scan | `Reference), _ | `Hash, None ->
      Probe_all { test = make_pair_test ~stats ~bs ~ds correlated_expr }
    | `Hash, Some expr -> (
      let pairs, residual = Expr.split_equi ~left:bs ~right:ds expr in
      match pairs with
      | [] -> Probe_all { test = make_pair_test ~stats ~bs ~ds correlated_expr }
      | _ ->
        let bcols = Array.of_list (List.map fst pairs) in
        let dcols = Array.of_list (List.map snd pairs) in
        let index = Index.build_rows base_rows bcols in
        Probe_hash
          {
            key_of_detail = (fun drow -> Array.map (fun c -> drow.(c)) dcols);
            index;
            test = make_pair_test ~stats ~bs ~ds residual;
          })
  in
  { prefilter; probe }

let prefilter_passes plan drow =
  match plan.prefilter with None -> true | Some f -> f drow

(* ------------------------------------------------------------------ *)
(* Accumulators                                                         *)
(* ------------------------------------------------------------------ *)

(* Accumulator matrix: accs.(bi).(block).(agg). *)
let make_accs ~bs ~ds ~n_base blocks =
  let frames = [| bs; ds |] in
  let compiled =
    Array.of_list
      (List.map (fun b -> Array.of_list (List.map (Aggregate.compile frames) b.aggs)) blocks)
  in
  Array.init n_base (fun _ -> Array.map (Array.map Aggregate.make) compiled)

let emit_row base_row accs_row =
  let agg_values =
    Array.concat (Array.to_list (Array.map (Array.map Aggregate.value) accs_row))
  in
  Tuple.concat base_row agg_values

(* ------------------------------------------------------------------ *)
(* Plain evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let reference_eval ~stats ~base ~detail blocks =
  let bs = Relation.schema base and ds = Relation.schema detail in
  let out_schema = output_schema ~base:bs ~detail:ds blocks in
  let frames = [| bs; ds |] in
  let blocks = Array.of_list blocks in
  ensure_block_slots stats (Array.length blocks);
  Array.iter (fun b -> Expr.typecheck_bool frames b.theta) blocks;
  let thetas = Array.map (fun b -> Expr.compile_frames frames b.theta) blocks in
  let compiled =
    Array.map (fun b -> Array.of_list (List.map (Aggregate.compile frames) b.aggs)) blocks
  in
  let ctx = [| Tuple.empty; Tuple.empty |] in
  let rows =
    Array.map
      (fun brow ->
        let accs_row = Array.map (Array.map Aggregate.make) compiled in
        Array.iteri
          (fun i theta ->
            (* One full detail pass per base tuple and block: the
               definition's cost, made visible in the stats. *)
            stats.detail_passes <- stats.detail_passes + 1;
            Relation.iter
              (fun drow ->
                stats.detail_scanned <- stats.detail_scanned + 1;
                stats.theta_evals <- stats.theta_evals + 1;
                ctx.(0) <- brow;
                ctx.(1) <- drow;
                if Expr.is_true (theta ctx) then begin
                  stats.block_updates.(i) <- stats.block_updates.(i) + 1;
                  Array.iter (fun acc -> Aggregate.step acc ctx) accs_row.(i)
                end)
              detail)
          thetas;
        emit_row brow accs_row)
      (Relation.rows base)
  in
  Relation.create ~check:false out_schema rows

(* Feed the detail rows in positions [lo, hi) into the accumulators;
   [apply] is {!Aggregate.step} for evaluation and insertions, and
   {!Aggregate.step_back} for deletion maintenance. *)
let accumulate_range ?(apply = Aggregate.step) ~plans ~accs ~base_rows ~detail_rows ~stats lo
    hi =
  let n_base = Array.length base_rows in
  ensure_block_slots stats (Array.length plans);
  let ctx = [| Tuple.empty; Tuple.empty |] in
  let update block_i drow bi =
    ctx.(0) <- base_rows.(bi);
    ctx.(1) <- drow;
    stats.block_updates.(block_i) <- stats.block_updates.(block_i) + 1;
    Array.iter (fun acc -> apply acc ctx) accs.(bi).(block_i)
  in
  for ri = lo to hi - 1 do
    let drow = detail_rows.(ri) in
    stats.detail_scanned <- stats.detail_scanned + 1;
    Array.iteri
      (fun block_i plan ->
        if prefilter_passes plan drow then
          match plan.probe with
          | Probe_hash { key_of_detail; index; test } ->
            Index.probe_iter index (key_of_detail drow) (fun bi ->
                if test base_rows.(bi) drow then update block_i drow bi)
          | Probe_all { test } ->
            for bi = 0 to n_base - 1 do
              if test base_rows.(bi) drow then update block_i drow bi
            done)
      plans
  done

(* ------------------------------------------------------------------ *)
(* The chunk-consuming fold core                                        *)
(* ------------------------------------------------------------------ *)

(* One in-flight `Scan`/`Hash` evaluation: compiled θ-plans plus the
   per-base-tuple accumulator matrix.  Detail rows arrive as chunks
   ([fold_feed]) — the whole-relation evaluators below feed a single
   chunk, the streaming executor and [Paged_gmdj] feed page-sized ones —
   so the detail side is never required to exist as one array and
   [stats.detail_passes] counts storage passes, not materializations.

   [theta_stats] controls the per-pair θ-evaluation counting (a closure
   wrapper on the hottest path, so it stays opt-in); [stats] is the
   always-on owned record for pass/row/accumulator counts. *)
type fold_state = {
  f_plans : plan array;
  f_accs : Aggregate.acc array array array;
  f_base_rows : Tuple.t array;
  f_out_schema : Schema.t;
  f_stats : stats;
}

let fold_start ~strategy ~theta_stats ~stats ~base ~detail_schema blocks =
  let bs = Relation.schema base and ds = detail_schema in
  let base_rows = Relation.rows base in
  let plans =
    Array.of_list
      (List.map
         (fun b -> make_plan ~strategy ~stats:theta_stats ~bs ~ds ~base_rows b.theta)
         blocks)
  in
  let accs = make_accs ~bs ~ds ~n_base:(Array.length base_rows) blocks in
  stats.detail_passes <- stats.detail_passes + 1;
  {
    f_plans = plans;
    f_accs = accs;
    f_base_rows = base_rows;
    f_out_schema = output_schema ~base:bs ~detail:ds blocks;
    f_stats = stats;
  }

let fold_feed st chunk =
  let lo = Chunk.offset chunk in
  accumulate_range ~plans:st.f_plans ~accs:st.f_accs ~base_rows:st.f_base_rows
    ~detail_rows:(Chunk.buffer chunk) ~stats:st.f_stats lo
    (lo + Chunk.length chunk)

let fold_finish st =
  Relation.create ~check:false st.f_out_schema
    (Array.mapi (fun bi brow -> emit_row brow st.f_accs.(bi)) st.f_base_rows)

let scan_eval ~strategy ~theta_stats ~stats ~base ~detail blocks =
  let st =
    fold_start ~strategy ~theta_stats ~stats ~base ~detail_schema:(Relation.schema detail)
      blocks
  in
  fold_feed st (Chunk.whole detail);
  fold_finish st

let dispatch ~strategy ~theta_stats ~stats ~base ~detail blocks =
  match strategy with
  | `Reference -> reference_eval ~stats ~base ~detail blocks
  | `Scan | `Hash -> scan_eval ~strategy ~theta_stats ~stats ~base ~detail blocks

let eval ?(strategy = `Hash) ?stats ~base ~detail blocks =
  with_owned_stats
    ~attrs:
      [
        ("strategy", strategy_name strategy);
        ("blocks", string_of_int (List.length blocks));
        ("base_rows", string_of_int (Relation.cardinality base));
        ("detail_rows", string_of_int (Relation.cardinality detail));
      ]
    ~span:"gmdj.eval" stats
    (fun owned -> dispatch ~strategy ~theta_stats:stats ~stats:owned ~base ~detail blocks)

(* ------------------------------------------------------------------ *)
(* Exchange-parallel evaluation                                         *)
(* ------------------------------------------------------------------ *)

module Parallel_base = struct
  (* GMDJ over an exchange: the coordinator pulls detail chunks and
     routes them round-robin to [domains] workers; each worker owns its
     θ-plans (compiled closures and hash indexes carry per-evaluation
     mutable buffers), its accumulator matrix and its stats record, and
     folds its share of the detail with the same [accumulate_range] core
     as the serial path.  At the merge, worker accumulators combine with
     {!Aggregate.merge} — every SQL aggregate state is mergeable, so the
     exchange is a plain commutative reduction and round-robin routing
     (no key) is sound.  Base rows and detail chunks are shared
     read-only; the registry is only touched on the coordinator. *)
  let fold_source ?(strategy = `Hash) ?stats ~domains ~base ~detail_schema source blocks =
    if domains <= 0 then invalid_arg "Gmdj.Parallel.fold_source: domains must be positive";
    let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
    with_owned_stats
      ~attrs:
        [
          ("strategy", strategy_name strategy);
          ("blocks", string_of_int (List.length blocks));
          ("domains", string_of_int domains);
        ]
      ~span:"gmdj.eval_exchange" stats
    @@ fun owned ->
    let bs = Relation.schema base and ds = detail_schema in
    let out_schema = output_schema ~base:bs ~detail:ds blocks in
    let base_rows = Relation.rows base in
    let results =
      Chunk.Exchange.fold ~domains
        ~init:(fun _ctx ->
          let local = fresh_stats () in
          let plans =
            Array.of_list
              (List.map
                 (fun b -> make_plan ~strategy ~stats:(Some local) ~bs ~ds ~base_rows b.theta)
                 blocks)
          in
          let accs = make_accs ~bs ~ds ~n_base:(Array.length base_rows) blocks in
          (plans, accs, local))
        ~fold:(fun ((plans, accs, local) as st) chunk ->
          let lo = Chunk.offset chunk in
          accumulate_range ~plans ~accs ~base_rows ~detail_rows:(Chunk.buffer chunk)
            ~stats:local lo
            (lo + Chunk.length chunk);
          st)
        ~finish:(fun (_, accs, local) -> (accs, local))
        source
    in
    (* The exchange touches every detail row exactly once across all
       workers, so it counts as one logical pass of the detail. *)
    owned.detail_passes <- owned.detail_passes + 1;
    ensure_block_slots owned (List.length blocks);
    let merged = match results with (accs, _) :: _ -> accs | [] -> assert false in
    List.iteri
      (fun i (accs, st) ->
        if i > 0 then
          Array.iteri
            (fun bi per_block ->
              Array.iteri
                (fun block_i per_agg ->
                  Array.iteri
                    (fun agg_i acc -> Aggregate.merge ~into:merged.(bi).(block_i).(agg_i) acc)
                    per_agg)
                per_block)
            accs;
        owned.detail_scanned <- owned.detail_scanned + st.detail_scanned;
        owned.theta_evals <- owned.theta_evals + st.theta_evals;
        Array.iteri
          (fun block_i n ->
            owned.block_updates.(block_i) <- owned.block_updates.(block_i) + n)
          st.block_updates)
      results;
    Relation.create ~check:false out_schema
      (Array.mapi (fun bi brow -> emit_row brow merged.(bi)) base_rows)
end

let eval_partitioned ?(strategy = `Hash) ?stats ~domains ~base ~detail blocks =
  if domains <= 0 then invalid_arg "Gmdj.eval_partitioned: domains must be positive";
  let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
  let n_detail = Relation.cardinality detail in
  let domains = max 1 (min domains n_detail) in
  if domains = 1 then eval ~strategy ?stats ~base ~detail blocks
  else
    (* Slice the detail so every worker gets work even on small inputs,
       and ride the exchange: this is now just [Parallel.fold_source]
       over a whole-relation chunk stream. *)
    let chunk_rows = max 1 (min Chunk.default_rows ((n_detail + domains - 1) / domains)) in
    Parallel_base.fold_source ~strategy ?stats ~domains ~base
      ~detail_schema:(Relation.schema detail)
      (Chunk.Source.of_relation ~chunk_rows detail)
      blocks

let eval_segmented ?(strategy = `Hash) ?stats ~segment_size ~base ~detail blocks =
  if segment_size <= 0 then invalid_arg "Gmdj.eval_segmented: segment_size must be positive";
  let bs = Relation.schema base and ds = Relation.schema detail in
  let out_schema = output_schema ~base:bs ~detail:ds blocks in
  let base_rows = Relation.rows base in
  let n_base = Array.length base_rows in
  if n_base <= segment_size then eval ~strategy ?stats ~base ~detail blocks
  else
    with_owned_stats
      ~attrs:[ ("segment_size", string_of_int segment_size) ]
      ~span:"gmdj.eval_segmented" stats
    @@ fun owned ->
    let out = Vec.create ~capacity:n_base ~dummy:Tuple.empty () in
    let offset = ref 0 in
    while !offset < n_base do
      let len = min segment_size (n_base - !offset) in
      let segment =
        Relation.create ~check:false bs (Array.sub base_rows !offset len)
      in
      let partial =
        dispatch ~strategy ~theta_stats:stats ~stats:owned ~base:segment ~detail blocks
      in
      Relation.iter (Vec.push out) partial;
      offset := !offset + len
    done;
    Relation.create ~check:false out_schema (Vec.to_array out)

(* ------------------------------------------------------------------ *)
(* Completion-aware evaluation (Section 4.2)                            *)
(* ------------------------------------------------------------------ *)

exception Scan_done

(* Completion-aware fold state: the kill/require/block plans plus the
   per-base-tuple decision bookkeeping.  [c_saturated] means no further
   detail rows can change the answer — the feeder must stop pulling the
   detail stream (Thms 4.1–4.2's early scan exit, now an early *storage*
   exit for disk-resident details). *)
type completed_state = {
  c_out_schema : Schema.t;
  c_base_rows : Tuple.t array;
  c_accs : Aggregate.acc array array array;
  c_kill_plans : plan array;
  c_fired_plans : plan array;
  c_block_plans : plan array;
  c_alive : bool array;
  c_fired : bool array array;
  c_unfired : int array;
  c_settled : bool array;
  mutable c_n_settled : int;
  c_positive_settles : bool;
  c_early_exit_allowed : bool;
  mutable c_active : int array;
  mutable c_settled_at_compact : int;
  c_ctx : Tuple.t array;
  c_stats : stats;
  (* Exchange workers must not touch the (single-domain) registry, so
     the early-exit count is routed through this hook: the default bumps
     the registry, parallel workers substitute a no-op and the
     coordinator counts once after the merge. *)
  c_on_early_exit : unit -> unit;
  mutable c_saturated : bool;
}

let count_early_exit () = Subql_obs.Metrics.(incr (counter default "gmdj.early_exits"))

let mark_early_exit st =
  st.c_stats.early_exit <- true;
  st.c_on_early_exit ()

let completed_start ~strategy ~theta_stats ~stats ?(on_early_exit = count_early_exit)
    ~completion ~base ~detail_schema blocks =
  let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
  ensure_block_slots stats (List.length blocks);
  let bs = Relation.schema base and ds = detail_schema in
  let out_schema = output_schema ~base:bs ~detail:ds blocks in
  let base_rows = Relation.rows base in
  let n_base = Array.length base_rows in
  let mk = make_plan ~strategy ~stats:theta_stats ~bs ~ds ~base_rows in
  let kill_plans = Array.of_list (List.map mk completion.kill_when) in
  let fired_plans = Array.of_list (List.map mk completion.require_fired) in
  let block_plans =
    if completion.maintain_aggregates then
      Array.of_list (List.map (fun b -> mk b.theta) blocks)
    else [||]
  in
  let n_fired_preds = Array.length fired_plans in
  let has_kills = Array.length kill_plans > 0 in
  let early_exit_allowed = not completion.maintain_aggregates in
  let st =
    {
      c_out_schema = out_schema;
      c_base_rows = base_rows;
      c_accs = make_accs ~bs ~ds ~n_base blocks;
      c_kill_plans = kill_plans;
      c_fired_plans = fired_plans;
      c_block_plans = block_plans;
      c_alive = Array.make n_base true;
      c_fired = Array.make_matrix (max n_fired_preds 1) n_base false;
      c_unfired = Array.make n_base n_fired_preds;
      (* A base tuple is settled — removable from the scan — once it is
         killed (Thm 4.2), or, when there are no kill predicates and the
         aggregates are not needed, once every require-fired predicate
         has fired for it (Thm 4.1). *)
      c_positive_settles = (not has_kills) && not completion.maintain_aggregates;
      c_settled = Array.make n_base false;
      c_n_settled = 0;
      (* Early termination is sound only when settled tuples account for
         the whole base: killed ones produce no output and positively-
         settled ones need no further updates. *)
      c_early_exit_allowed = early_exit_allowed;
      c_active = Array.init n_base (fun i -> i);
      c_settled_at_compact = 0;
      c_ctx = [| Tuple.empty; Tuple.empty |];
      c_stats = stats;
      c_on_early_exit = on_early_exit;
      c_saturated = false;
    }
  in
  if n_base = 0 then st.c_saturated <- true
  else if early_exit_allowed && (not has_kills) && n_fired_preds = 0 then begin
    (* Nothing can kill and nothing must fire: every base tuple is
       already decided without reading a single detail row. *)
    st.c_saturated <- true;
    mark_early_exit st
  end
  else stats.detail_passes <- stats.detail_passes + 1;
  st

let settle st bi =
  if not st.c_settled.(bi) then begin
    st.c_settled.(bi) <- true;
    st.c_n_settled <- st.c_n_settled + 1;
    if st.c_early_exit_allowed && st.c_n_settled >= Array.length st.c_base_rows then
      raise Scan_done
  end

(* The scan probes of Probe_all plans iterate an explicit active list;
   it is compacted whenever at least a quarter of it has settled, so a
   mostly-decided base stops costing per-pair work (the paper's
   "transferring the completed tuples to disk"). *)
let compact st =
  if
    Array.length st.c_active > 64
    && 4 * (st.c_n_settled - st.c_settled_at_compact) > Array.length st.c_active
  then begin
    st.c_active <-
      Array.of_seq (Seq.filter (fun bi -> not st.c_settled.(bi)) (Array.to_seq st.c_active));
    st.c_settled_at_compact <- st.c_n_settled
  end

let iterate_candidates st plan drow f =
  match plan.probe with
  | Probe_hash { key_of_detail; index; test } ->
    Index.probe_iter index (key_of_detail drow) (fun bi ->
        if (not st.c_settled.(bi)) && test st.c_base_rows.(bi) drow then f bi)
  | Probe_all { test } ->
    let a = st.c_active in
    for i = 0 to Array.length a - 1 do
      let bi = a.(i) in
      if (not st.c_settled.(bi)) && test st.c_base_rows.(bi) drow then f bi
    done

let completed_feed_row st drow =
  st.c_stats.detail_scanned <- st.c_stats.detail_scanned + 1;
  Array.iter
    (fun plan ->
      if prefilter_passes plan drow then
        iterate_candidates st plan drow (fun bi ->
            if st.c_alive.(bi) then begin
              st.c_alive.(bi) <- false;
              settle st bi
            end))
    st.c_kill_plans;
  Array.iteri
    (fun pi plan ->
      if prefilter_passes plan drow then
        iterate_candidates st plan drow (fun bi ->
            if st.c_alive.(bi) && not st.c_fired.(pi).(bi) then begin
              st.c_fired.(pi).(bi) <- true;
              st.c_unfired.(bi) <- st.c_unfired.(bi) - 1;
              if st.c_positive_settles && st.c_unfired.(bi) = 0 then settle st bi
            end))
    st.c_fired_plans;
  Array.iteri
    (fun block_i plan ->
      if prefilter_passes plan drow then
        iterate_candidates st plan drow (fun bi ->
            if st.c_alive.(bi) then begin
              st.c_ctx.(0) <- st.c_base_rows.(bi);
              st.c_ctx.(1) <- drow;
              st.c_stats.block_updates.(block_i) <- st.c_stats.block_updates.(block_i) + 1;
              Array.iter (fun acc -> Aggregate.step acc st.c_ctx) st.c_accs.(bi).(block_i)
            end))
    st.c_block_plans;
  compact st

let completed_feed st chunk =
  if not st.c_saturated then begin
    try Chunk.iter (completed_feed_row st) chunk
    with Scan_done ->
      st.c_saturated <- true;
      mark_early_exit st
  end

let completed_finish st =
  let out = Vec.create ~dummy:Tuple.empty () in
  Array.iteri
    (fun bi brow ->
      if st.c_alive.(bi) && st.c_unfired.(bi) = 0 then
        Vec.push out (emit_row brow st.c_accs.(bi)))
    st.c_base_rows;
  Relation.create ~check:false st.c_out_schema (Vec.to_array out)

let eval_completed ?(strategy = `Hash) ?stats ~completion ~base ~detail blocks =
  let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
  with_owned_stats
    ~attrs:
      [
        ("strategy", strategy_name strategy);
        ("blocks", string_of_int (List.length blocks));
        ("kill_preds", string_of_int (List.length completion.kill_when));
        ("require_preds", string_of_int (List.length completion.require_fired));
      ]
    ~span:"gmdj.eval_completed" stats
  @@ fun owned ->
  let st =
    completed_start ~strategy ~theta_stats:stats ~stats:owned ~completion ~base
      ~detail_schema:(Relation.schema detail) blocks
  in
  completed_feed st (Chunk.whole detail);
  completed_finish st

(* Fold worker [b]'s completion verdicts into [a]: killed and fired are
   monotone under more detail rows, so alive ANDs, fired ORs, and the
   aggregate states merge.  A worker may have kept stepping aggregates
   for a base tuple another worker killed — harmless, the merged
   [c_alive] excludes that tuple from the output. *)
let completed_merge ~into:a b =
  let n_base = Array.length a.c_base_rows in
  let n_preds = Array.length a.c_fired_plans in
  for bi = 0 to n_base - 1 do
    a.c_alive.(bi) <- a.c_alive.(bi) && b.c_alive.(bi);
    let unfired = ref n_preds in
    for pi = 0 to n_preds - 1 do
      a.c_fired.(pi).(bi) <- a.c_fired.(pi).(bi) || b.c_fired.(pi).(bi);
      if a.c_fired.(pi).(bi) then decr unfired
    done;
    a.c_unfired.(bi) <- !unfired;
    Array.iteri
      (fun block_i per_agg ->
        Array.iteri
          (fun agg_i acc -> Aggregate.merge ~into:acc b.c_accs.(bi).(block_i).(agg_i))
          per_agg)
      a.c_accs.(bi)
  done

module Parallel = struct
  include Parallel_base

  (* Completion-aware GMDJ over the exchange.  Each worker runs the
     serial completion machinery on its share of the detail — including
     local early exit, which is sound because kill/fire verdicts are
     monotone: once a worker's share has settled every base tuple, its
     remaining detail rows cannot change its contribution.  Workers
     never touch the registry (the early-exit hook is a no-op on their
     domains); the coordinator counts one logical pass and one early
     exit for the whole evaluation. *)
  let fold_completed_source ?(strategy = `Hash) ?stats ~domains ~completion ~base
      ~detail_schema source blocks =
    if domains <= 0 then
      invalid_arg "Gmdj.Parallel.fold_completed_source: domains must be positive";
    let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
    with_owned_stats
      ~attrs:
        [
          ("strategy", strategy_name strategy);
          ("blocks", string_of_int (List.length blocks));
          ("kill_preds", string_of_int (List.length completion.kill_when));
          ("require_preds", string_of_int (List.length completion.require_fired));
          ("domains", string_of_int domains);
        ]
      ~span:"gmdj.eval_completed" stats
    @@ fun owned ->
    let results =
      Chunk.Exchange.fold ~domains
        ~init:(fun _ctx ->
          let local = fresh_stats () in
          completed_start ~strategy ~theta_stats:(Some local) ~stats:local
            ~on_early_exit:ignore ~completion ~base ~detail_schema blocks)
        ~fold:(fun st chunk ->
          completed_feed st chunk;
          st)
        ~finish:(fun st -> st)
        source
    in
    owned.detail_passes <- owned.detail_passes + 1;
    ensure_block_slots owned (List.length blocks);
    let merged = match results with st :: _ -> st | [] -> assert false in
    List.iteri
      (fun i st ->
        if i > 0 then completed_merge ~into:merged st;
        owned.detail_scanned <- owned.detail_scanned + st.c_stats.detail_scanned;
        owned.theta_evals <- owned.theta_evals + st.c_stats.theta_evals;
        Array.iteri
          (fun block_i n ->
            owned.block_updates.(block_i) <- owned.block_updates.(block_i) + n)
          st.c_stats.block_updates)
      results;
    if List.exists (fun st -> st.c_stats.early_exit) results then begin
      owned.early_exit <- true;
      count_early_exit ()
    end;
    completed_finish merged
end

let eval_completed_partitioned ?(strategy = `Hash) ?stats ~domains ~completion ~base
    ~detail blocks =
  if domains <= 0 then
    invalid_arg "Gmdj.eval_completed_partitioned: domains must be positive";
  let n_detail = Relation.cardinality detail in
  let domains = max 1 (min domains n_detail) in
  if domains = 1 then eval_completed ~strategy ?stats ~completion ~base ~detail blocks
  else
    let chunk_rows = max 1 (min Chunk.default_rows ((n_detail + domains - 1) / domains)) in
    Parallel.fold_completed_source ~strategy ?stats ~domains ~completion ~base
      ~detail_schema:(Relation.schema detail)
      (Chunk.Source.of_relation ~chunk_rows detail)
      blocks

(* ------------------------------------------------------------------ *)
(* Public chunk-at-a-time evaluation                                    *)
(* ------------------------------------------------------------------ *)

(* The streaming counterparts of [eval] / [eval_completed]: the caller
   owns the detail scan and pushes chunks in, so the detail relation
   never has to exist in memory.  [start] snapshots the registry
   baselines and [finish] publishes the deltas — exactly one publication
   per evaluation, mirroring [with_owned_stats].  Callers that want a
   trace span open it around the whole start/feed/finish sequence. *)

module Fold = struct
  type acc = { st : fold_state; passes0 : int; rows0 : int; thetas0 : int }

  let start ?(strategy = `Hash) ?stats ~base ~detail blocks =
    let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
    let owned = match stats with Some s -> s | None -> fresh_stats () in
    let passes0 = owned.detail_passes
    and rows0 = owned.detail_scanned
    and thetas0 = owned.theta_evals in
    let st =
      fold_start ~strategy ~theta_stats:stats ~stats:owned ~base ~detail_schema:detail blocks
    in
    { st; passes0; rows0; thetas0 }

  let fold_detail chunk acc =
    fold_feed acc.st chunk;
    acc

  let finish acc =
    let r = fold_finish acc.st in
    publish ~owned:acc.st.f_stats ~passes0:acc.passes0 ~rows0:acc.rows0 ~thetas0:acc.thetas0
      ();
    r
end

module Fold_completed = struct
  type acc = { st : completed_state; passes0 : int; rows0 : int; thetas0 : int }

  let start ?(strategy = `Hash) ?stats ~completion ~base ~detail blocks =
    let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
    let owned = match stats with Some s -> s | None -> fresh_stats () in
    let passes0 = owned.detail_passes
    and rows0 = owned.detail_scanned
    and thetas0 = owned.theta_evals in
    let st =
      completed_start ~strategy ~theta_stats:stats ~stats:owned ~completion ~base
        ~detail_schema:detail blocks
    in
    { st; passes0; rows0; thetas0 }

  let saturated acc = acc.st.c_saturated

  let fold_detail chunk acc =
    completed_feed acc.st chunk;
    acc

  let finish acc =
    let r = completed_finish acc.st in
    publish ~owned:acc.st.c_stats ~passes0:acc.passes0 ~rows0:acc.rows0 ~thetas0:acc.thetas0
      ();
    r
end

(* ------------------------------------------------------------------ *)
(* Incremental view maintenance                                         *)
(* ------------------------------------------------------------------ *)

module Maintain = struct
  (* Process-wide delta generation: every fold/retract of detail rows
     bumps it, so fingerprint-keyed result caches (Subql_mqo) can treat
     any maintained-view mutation as an invalidation epoch.  Maintained
     views change the effective detail content without going through the
     catalog, so the catalog's own generation cannot see them. *)
  let generation_counter = ref 0

  let generation () = !generation_counter

  type t = {
    out_schema : Schema.t;
    detail_schema : Schema.t;
    plans : plan array;
    accs : Aggregate.acc array array array;
    base_rows : Tuple.t array;
    has_minmax : bool;
    m_stats : stats;  (* lifetime counts over materialization + deltas *)
  }

  let has_minmax_agg blocks =
    List.exists
      (fun b ->
        List.exists
          (fun s ->
            match s.Aggregate.func with
            | Aggregate.Min _ | Aggregate.Max _ | Aggregate.First _ -> true
            | Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Avg _
              ->
              false)
          b.aggs)
      blocks

  let create ?(strategy = `Hash) ~base ~detail blocks =
    let strategy = match strategy with `Reference -> `Scan | (`Scan | `Hash) as s -> s in
    let bs = Relation.schema base and ds = Relation.schema detail in
    let base_rows = Relation.rows base in
    let plans =
      Array.of_list
        (List.map (fun b -> make_plan ~strategy ~stats:None ~bs ~ds ~base_rows b.theta) blocks)
    in
    let accs = make_accs ~bs ~ds ~n_base:(Array.length base_rows) blocks in
    let detail_rows = Relation.rows detail in
    let m_stats = fresh_stats () in
    accumulate_range ~plans ~accs ~base_rows ~detail_rows ~stats:m_stats 0
      (Array.length detail_rows);
    {
      out_schema = output_schema ~base:bs ~detail:ds blocks;
      detail_schema = ds;
      plans;
      accs;
      base_rows;
      has_minmax = has_minmax_agg blocks;
      m_stats;
    }

  let check_delta t delta =
    if not (Schema.equal_names (Relation.schema delta) t.detail_schema) then
      invalid_arg "Gmdj.Maintain: delta schema does not match the detail schema"

  let insert_detail t delta =
    check_delta t delta;
    incr generation_counter;
    let detail_rows = Relation.rows delta in
    accumulate_range ~plans:t.plans ~accs:t.accs ~base_rows:t.base_rows ~detail_rows
      ~stats:t.m_stats 0 (Array.length detail_rows)

  let check_chunk_delta t chunk =
    if not (Schema.equal_names (Chunk.schema chunk) t.detail_schema) then
      invalid_arg "Gmdj.Maintain: delta schema does not match the detail schema"

  let insert_chunk t chunk =
    check_chunk_delta t chunk;
    incr generation_counter;
    let lo = Chunk.offset chunk in
    accumulate_range ~plans:t.plans ~accs:t.accs ~base_rows:t.base_rows
      ~detail_rows:(Chunk.buffer chunk) ~stats:t.m_stats lo (lo + Chunk.length chunk)

  let insert_source t source =
    let rows = ref 0 in
    Chunk.Source.iter
      (fun chunk ->
        rows := !rows + Chunk.length chunk;
        insert_chunk t chunk)
      source;
    !rows

  let stats t = t.m_stats

  let delete_detail t delta =
    check_delta t delta;
    if t.has_minmax then
      invalid_arg "Gmdj.Maintain: MIN/MAX views cannot be maintained under deletions";
    incr generation_counter;
    let detail_rows = Relation.rows delta in
    accumulate_range ~apply:Aggregate.step_back ~plans:t.plans ~accs:t.accs
      ~base_rows:t.base_rows ~detail_rows ~stats:t.m_stats 0 (Array.length detail_rows)

  let result t =
    Relation.create ~check:false t.out_schema
      (Array.mapi (fun bi brow -> emit_row brow t.accs.(bi)) t.base_rows)
end
