(** GMDJ evaluation over a distributed data warehouse (a simulation of
    the authors' companion system for distributed OLAP, cited in the
    paper's conclusion: the GMDJ "is well-suited to evaluation in a
    parallel or distributed DBMS environment").

    A {!Cluster.t} holds a horizontal partition of the detail relation
    across simulated sites.  Three coordinator strategies compute
    [MD(B, R, blocks)] with identical results but very different network
    traffic, which the report quantifies in estimated bytes:

    - [Ship_all] — every site ships its raw partition to the
      coordinator, which evaluates locally.  Traffic grows with |R|.
    - [Ship_filtered] — sites first apply the detail-local conjuncts of
      the block conditions (the same invariants the single-site engine
      hoists) and ship only potentially-relevant rows.
    - [Partial_aggregates] — the coordinator broadcasts the base-values
      relation; each site folds its partition into local accumulators
      and ships the accumulator states, which the coordinator merges
      ({!Subql_relational.Aggregate.merge}).  Traffic grows with
      sites × |B|, independent of |R| — the distributed-OLAP win when
      the fact table dwarfs the base-values table. *)

open Subql_relational

module Cluster : sig
  type t

  val create :
    sites:int ->
    ?partition:[ `Round_robin | `Hash_on of string option * string ] ->
    Relation.t ->
    t
  (** Partition the detail relation over [sites] simulated sites.
      [`Hash_on col] co-locates rows with equal values of [col]
      (NULLs go to site 0).  Default [`Round_robin].
      @raise Invalid_argument if [sites <= 0]. *)

  val sites : t -> int

  val site_rows : t -> int array
  (** Detail rows held at each site. *)
end

type strategy = Ship_all | Ship_filtered | Partial_aggregates

val strategy_to_string : strategy -> string

type report = {
  result : Relation.t;
  bytes_broadcast : int;  (** coordinator → sites *)
  bytes_collected : int;  (** sites → coordinator *)
  messages : int;
}

val total_bytes : report -> int

val execute :
  ?strategy:strategy -> Cluster.t -> base:Relation.t -> Gmdj.block list -> report
(** Evaluate the GMDJ over the cluster.  The result is always identical
    to [Gmdj.eval] over the un-partitioned detail relation (verified by
    the property suite).

    Each run publishes its traffic to {!Subql_obs.Metrics.default}:
    counters ["distributed.bytes_broadcast" / "bytes_collected" /
    "messages" / "executions"], plus the per-site shipped sizes as the
    ["distributed.site_shipped_bytes"] histogram — partitioning skew is
    visible as spread, not just as a total. *)
