(** Admission control for the serving loop: decide, per request, whether
    the server may take the query at all — before anything executes.

    Both gates are structural, so overload degrades to {e rejection},
    never to an OOM or a stall:

    - {b memory budget} — the solo plan's predicted {e resident}
      footprint (in materialized rows) must fit the per-query budget.
      The gate takes the {e smaller} of the point estimate
      ({!Subql.Cost.memory_height_spill}) and the certified sound bound
      ({!Subql.Cost.memory_height_certified}) when the latter is finite
      — a proven-small certificate admits plans the point estimate
      over-rejects, and an infinite certificate (statistics-less table)
      degrades to the estimate alone, so certification only ever admits
      more.  Rows the configured spill budget would push through temp
      heap files count as disk, not resident memory — so a spilling plan
      over detail-sized input can be admitted where its in-memory twin
      is rejected.  An over-budget plan is rejected with [ADM001] —
      reporting predicted rows, the certified bound, the budget, and
      the certificate's argmax pipeline breaker — and is never
      evaluated; the prediction is the planning-time counterpart of the
      executor's measured ["eval.peak_materialized_rows"], so the budget
      bounds what a query {e would} pin, not what it already did.
    - {b queue depth} — the request queue is capped.  A submit against
      a full queue is shed with [ADM002] and a retry hint (one batch
      window from now at least one batch has left the queue).  Because
      execution is pull-based chunk streaming, a bounded queue plus
      per-query budgets bound the server's total in-flight memory.

    [ADM003] marks submits after {!Server.shutdown} — permanent, no
    retry hint.

    Rejections are structured {!Subql_relational.Diag.t} values in the
    [ADM0xx] namespace, so clients (and tests) dispatch on stable codes
    rather than message text. *)

open Subql_relational

type policy = {
  mem_budget_rows : float;
      (** reject plans whose {!Subql.Cost.memory_height} exceeds this;
          [infinity] disables the gate *)
  queue_cap : int;  (** maximum queued requests; [> 0] *)
}

val unlimited : policy
(** No memory gate, a deep (but still finite) queue. *)

type rejection = {
  diag : Diag.t;
  retry_after : float option;
      (** seconds after which a retry may succeed: [Some] for transient
          pressure (queue full), [None] for structural refusals (the
          plan can never fit the budget; the server is gone) *)
}

val code_over_budget : string  (** ["ADM001"] *)

val code_queue_full : string  (** ["ADM002"] *)

val code_shutdown : string  (** ["ADM003"] *)

val check_budget :
  policy ->
  stats:Subql.Cost.Stats.t ->
  config:Subql.Eval.config ->
  label:string ->
  Subql.Algebra.t ->
  (float, rejection) result
(** [Ok rows] (the effective gated footprint: min of the point estimate
    and the finite certified bound) when the plan fits, the [ADM001]
    rejection otherwise. *)

val check_queue :
  policy -> depth:int -> retry_after:float -> label:string -> (unit, rejection) result
(** [Ok ()] while [depth < queue_cap]; the [ADM002] rejection carrying
    [retry_after] once the queue is full. *)

val shutdown_rejection : label:string -> rejection
