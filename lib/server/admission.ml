open Subql_relational

type policy = { mem_budget_rows : float; queue_cap : int }

let unlimited = { mem_budget_rows = infinity; queue_cap = 4096 }

type rejection = { diag : Diag.t; retry_after : float option }

let code_over_budget = "ADM001"

let code_queue_full = "ADM002"

let code_shutdown = "ADM003"

let check_budget policy ~stats ~config ~label plan =
  (* Spill-aware: rows the executor would push through temp heap files
     are disk, not resident memory — only the resident component is
     gated.  With no spill budget configured this is exactly the old
     [memory_height] gate. *)
  let height, _spilled = Subql.Cost.memory_height_spill stats ~config plan in
  if height <= policy.mem_budget_rows then Ok height
  else
    Error
      {
        diag =
          Diag.makef ~subject:label Diag.Error ~code:code_over_budget
            "plan's predicted peak of %.0f resident rows exceeds the %.0f-row \
             memory budget; not executed"
            height policy.mem_budget_rows;
        (* The budget is a property of the plan, not of the moment:
           retrying the same query can only fail again. *)
        retry_after = None;
      }

let check_queue policy ~depth ~retry_after ~label =
  if depth < policy.queue_cap then Ok ()
  else
    Error
      {
        diag =
          Diag.makef ~subject:label Diag.Error ~code:code_queue_full
            "request queue is at its cap of %d; shed — retry in %.3fs"
            policy.queue_cap retry_after;
        retry_after = Some retry_after;
      }

let shutdown_rejection ~label =
  {
    diag =
      Diag.error ~subject:label ~code:code_shutdown
        "server is shut down; no further submissions";
    retry_after = None;
  }
