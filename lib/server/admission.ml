open Subql_relational

type policy = { mem_budget_rows : float; queue_cap : int }

let unlimited = { mem_budget_rows = infinity; queue_cap = 4096 }

type rejection = { diag : Diag.t; retry_after : float option }

let code_over_budget = "ADM001"

let code_queue_full = "ADM002"

let code_shutdown = "ADM003"

let check_budget policy ~stats ~config ~label plan =
  (* Spill-aware: rows the executor would push through temp heap files
     are disk, not resident memory — only the resident component is
     gated.  With no spill budget configured this is exactly the old
     [memory_height] gate. *)
  let height, _spilled = Subql.Cost.memory_height_spill stats ~config plan in
  let cert = Subql.Cost.memory_height_certified stats ~config plan in
  (* Gate on the smaller of the point estimate and the certified sound
     bound (when finite): a proven-small certificate admits plans the
     point estimate over-rejects — e.g. a distinct-count product proving
     few groups — while an infinite certificate (a table with no
     statistics) falls back to the estimate alone.  Taking the min means
     the certificate can only ever admit {e more}, never less, so a
     serving steady state never loses throughput to certification. *)
  let effective =
    if Float.is_finite cert.Subql.Cost.bound then
      Float.min height cert.Subql.Cost.bound
    else height
  in
  if effective <= policy.mem_budget_rows then Ok effective
  else
    Error
      {
        diag =
          Diag.makef ~subject:label Diag.Error ~code:code_over_budget
            "plan's predicted peak of %.0f resident rows (certified bound %s) exceeds \
             the %.0f-row memory budget; dominant breaker is %s at %s holding %s \
             certified rows; not executed"
            height
            (Subql.Cost.Interval.fmt_bound cert.Subql.Cost.bound)
            policy.mem_budget_rows cert.Subql.Cost.argmax_op
            (Diag.path_to_string cert.Subql.Cost.argmax_path)
            (Subql.Cost.Interval.fmt_bound cert.Subql.Cost.argmax_rows);
        (* The budget is a property of the plan, not of the moment:
           retrying the same query can only fail again. *)
        retry_after = None;
      }

let check_queue policy ~depth ~retry_after ~label =
  if depth < policy.queue_cap then Ok ()
  else
    Error
      {
        diag =
          Diag.makef ~subject:label Diag.Error ~code:code_queue_full
            "request queue is at its cap of %d; shed — retry in %.3fs"
            policy.queue_cap retry_after;
        retry_after = Some retry_after;
      }

let shutdown_rejection ~label =
  {
    diag =
      Diag.error ~subject:label ~code:code_shutdown
        "server is shut down; no further submissions";
    retry_after = None;
  }
