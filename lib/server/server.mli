(** The long-lived serving loop.

    A server holds everything that should survive across queries — the
    catalog, the cost statistics, the result cache, the metrics
    registry — and turns a stream of {!submit} calls into time/size-
    bounded batches admitted through {!Subql_mqo.Batch}, so cross-query
    GMDJ sharing and cache warmth fire {e under traffic} instead of
    only inside a hand-assembled batch file.

    {b Time.}  The server never reads a clock: every entry point takes
    [now], so the same code runs under the wall clock (the [serve] CLI
    loop) and under virtual time (the {!Driver}'s deterministic trace
    replay, where only measured evaluation seconds advance the
    timeline).  Batch evaluation time is measured wall-clock and
    reported in {!batch_result.exec_seconds}; completion timestamps are
    [closed_at +. exec_seconds].

    {b Scheduling.}  A batch seals when the oldest queued request has
    waited [batch_window] seconds ({!next_deadline}) or when
    [batch_max] requests are queued — whichever comes first.  {!step}
    seals and runs at most one due batch; callers loop.

    {b Admission} ({!Admission}): over-budget plans are rejected with
    [ADM001] before execution, a full queue sheds with [ADM002] and a
    retry hint, a shut-down server refuses with [ADM003].

    {b Metrics} (into the registry passed at {!create}):
    ["server.queue_depth"] (gauge), ["server.batch_size"] and
    ["server.latency_seconds"] (histograms), ["server.admitted"],
    ["server.batches"], ["server.queries_served"],
    ["server.rejected"] plus per-reason
    ["server.rejected.budget"/".queue"/".shutdown"] (counters). *)

open Subql_relational

type config = {
  batch_window : float;
      (** seconds a sealed batch may wait for company after its first
          request arrives *)
  batch_max : int;  (** seal early once this many requests are queued *)
  policy : Admission.policy;
  eval_config : Subql.Eval.config;
}

val default_config : config
(** 20 ms window, 16-query batches, {!Admission.unlimited}. *)

type t

val create :
  ?config:config ->
  ?cache:Subql_mqo.Result_cache.t ->
  ?registry:Subql_obs.Metrics.t ->
  Catalog.t ->
  t
(** A fresh serving loop over a resident catalog.  Without [cache] the
    server owns a default-policy {!Subql_mqo.Result_cache}; pass one to
    control admission cost / capacity.  [registry] defaults to
    {!Subql_obs.Metrics.default}. *)

type ticket = {
  id : int;  (** unique per server, in submission order *)
  label : string;
  submitted : float;  (** the [now] of the accepted submit *)
}

val submit :
  t -> now:float -> ?label:string -> Subql_nested.Nested_ast.query -> (ticket, Admission.rejection) result
(** Admit one query: plan it ({!Subql_mqo.Batch.prepare}), price its
    memory footprint, and enqueue it.  Pure enqueue — evaluation
    happens in {!step}/{!drain}.  [label] defaults to ["q<id>"]. *)

type completion = {
  ticket : ticket;
  result : Relation.t;
  completed : float;  (** [closed_at +. exec_seconds] of its batch *)
}

type batch_result = {
  completions : completion list;  (** in submission order *)
  closed_at : float;  (** when the batch was sealed *)
  exec_seconds : float;  (** measured wall-clock evaluation time *)
  report : Subql_mqo.Batch.report;  (** sharing / cache accounting *)
}

val next_deadline : t -> float option
(** When {!step} becomes due without further arrivals: the oldest
    queued request's [submitted +. batch_window], or earlier ([now])
    when the queue already holds [batch_max].  [None] when idle. *)

val step : t -> now:float -> batch_result option
(** Seal and evaluate at most one batch if one is due at [now]. *)

val drain : t -> now:float -> batch_result list
(** Evaluate everything queued, ignoring the window (batches still
    respect [batch_max]); each successive batch seals at the previous
    one's completion time. *)

val shutdown : t -> now:float -> batch_result list
(** {!drain}, then refuse every further {!submit} with [ADM003].  The
    in-flight queries are answered before the loop exits. *)

type ingest_result = {
  flushed : batch_result list;
      (** batches drained {e before} the write was applied *)
  ingested_rows : int;  (** whatever [apply] returned *)
  apply_seconds : float;  (** measured wall-clock time of [apply] *)
}

val ingest :
  t ->
  now:float ->
  ?label:string ->
  apply:(unit -> int) ->
  unit ->
  (ingest_result, Admission.rejection) result
(** Run one ingest batch against the serving loop.  The queue is
    drained {b first}: queries submitted before the batch arrived are
    answered against the pre-append snapshot, then [apply] performs the
    write (e.g. [Subql_ingest.Ingest.append]) and the cost statistics
    are refreshed to the grown catalog.  Queries submitted afterwards
    can never observe pre-append cached results — the append bumps the
    epoch.  Rejected with [ADM003] after {!shutdown}. *)

val refresh_stats : t -> unit
(** Recompute admission-pricing statistics from the (mutated) catalog;
    {!ingest} calls this after every applied write. *)

val set_before_batch : t -> (now:float -> unit) option -> unit
(** Install a hook that runs inside every sealed batch's measured
    window, just before evaluation — the attachment point for lazy
    (maintain-on-read) ingest maintenance. *)

val queue_depth : t -> int

val is_shut_down : t -> bool

val catalog : t -> Catalog.t

val cache : t -> Subql_mqo.Result_cache.t
