(* Virtual-time trace replay against the serving loop.  Arrivals are
   trace-given; measured evaluation seconds are the only other thing
   that advances the clock (the server is single-threaded, so a batch
   due while another evaluates starts at busy-until). *)

type event = { at : float; label : string; query : Subql_nested.Nested_ast.query }

type summary = {
  offered : int;
  completed : int;
  rejected_budget : int;
  shed : int;
  retries : int;
  batches : int;
  duration : float;
  exec_seconds : float;
  latencies : float array;
  detail_scans : int;
  naive_detail_scans : int;
  cache_hits : int;
  cache_misses : int;
  max_queue_depth : int;
}

let percentile sorted p =
  if p < 0. || p > 100. then invalid_arg "Driver.percentile: p must be in [0, 100]";
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))

(* Mutable tallies shared by both drive disciplines. *)
type acc = {
  mutable a_offered : int;
  mutable a_completed : int;
  mutable a_budget : int;
  mutable a_shed : int;
  mutable a_retries : int;
  mutable a_batches : int;
  mutable a_exec : float;
  mutable a_latencies : float list;
  mutable a_scans : int;
  mutable a_naive : int;
  mutable a_hits : int;
  mutable a_misses : int;
  mutable a_max_depth : int;
  mutable a_last_done : float;
  mutable a_busy : float;  (* completion time of the latest batch *)
}

let fresh_acc () =
  {
    a_offered = 0;
    a_completed = 0;
    a_budget = 0;
    a_shed = 0;
    a_retries = 0;
    a_batches = 0;
    a_exec = 0.;
    a_latencies = [];
    a_scans = 0;
    a_naive = 0;
    a_hits = 0;
    a_misses = 0;
    a_max_depth = 0;
    a_last_done = 0.;
    a_busy = 0.;
  }

let absorb acc (b : Server.batch_result) =
  let r = b.Server.report in
  acc.a_batches <- acc.a_batches + 1;
  acc.a_exec <- acc.a_exec +. b.Server.exec_seconds;
  acc.a_scans <- acc.a_scans + r.Subql_mqo.Batch.shared_detail_scans;
  acc.a_naive <- acc.a_naive + r.Subql_mqo.Batch.naive_detail_scans;
  acc.a_hits <- acc.a_hits + r.Subql_mqo.Batch.cache_hits;
  acc.a_misses <- acc.a_misses + r.Subql_mqo.Batch.cache_misses;
  List.iter
    (fun (c : Server.completion) ->
      acc.a_completed <- acc.a_completed + 1;
      acc.a_latencies <-
        (c.Server.completed -. c.Server.ticket.Server.submitted) :: acc.a_latencies;
      acc.a_last_done <- max acc.a_last_done c.Server.completed)
    b.Server.completions;
  acc.a_busy <- max acc.a_busy (b.Server.closed_at +. b.Server.exec_seconds)

let summarize acc =
  let latencies = Array.of_list acc.a_latencies in
  Array.sort compare latencies;
  {
    offered = acc.a_offered;
    completed = acc.a_completed;
    rejected_budget = acc.a_budget;
    shed = acc.a_shed;
    retries = acc.a_retries;
    batches = acc.a_batches;
    duration = acc.a_last_done;
    exec_seconds = acc.a_exec;
    latencies;
    detail_scans = acc.a_scans;
    naive_detail_scans = acc.a_naive;
    cache_hits = acc.a_hits;
    cache_misses = acc.a_misses;
    max_queue_depth = acc.a_max_depth;
  }

(* Seal every batch that comes due at or before [horizon], respecting
   busy-until: a due batch cannot start while a previous one is still
   evaluating. *)
let run_due server acc ~horizon =
  let rec go () =
    match Server.next_deadline server with
    | None -> ()
    | Some d ->
      let close = max d acc.a_busy in
      if close <= horizon then (
        match Server.step server ~now:close with
        | Some b ->
          absorb acc b;
          go ()
        | None -> ())
  in
  go ()

let note_depth server acc =
  acc.a_max_depth <- max acc.a_max_depth (Server.queue_depth server)

let replay server events =
  let events = List.sort (fun a b -> compare a.at b.at) events in
  let acc = fresh_acc () in
  let last_at = ref 0. in
  List.iter
    (fun ev ->
      run_due server acc ~horizon:ev.at;
      acc.a_offered <- acc.a_offered + 1;
      last_at := max !last_at ev.at;
      (match Server.submit server ~now:ev.at ~label:ev.label ev.query with
      | Ok _ -> ()
      | Error r -> (
        match r.Admission.retry_after with
        | Some _ -> acc.a_shed <- acc.a_shed + 1
        | None -> acc.a_budget <- acc.a_budget + 1));
      note_depth server acc;
      (* A submit may have size-sealed the batch. *)
      run_due server acc ~horizon:ev.at)
    events;
  List.iter (absorb acc) (Server.drain server ~now:(max !last_at acc.a_busy));
  summarize acc

(* --- mixed ingest + query replay ------------------------------------- *)

type ingest_event = { at : float; label : string; apply : unit -> int }

type mixed_event = Query of event | Ingest of ingest_event

type mixed_summary = {
  queries : summary;
  ingest_batches : int;
  ingest_rows : int;
  ingest_seconds : float;
}

let replay_mixed server events =
  let at = function Query e -> e.at | Ingest i -> i.at in
  let events = List.sort (fun a b -> compare (at a) (at b)) events in
  let acc = fresh_acc () in
  let last_at = ref 0. in
  let batches = ref 0 and rows = ref 0 and isecs = ref 0. in
  List.iter
    (fun ev ->
      run_due server acc ~horizon:(at ev);
      last_at := max !last_at (at ev);
      match ev with
      | Query e -> (
        acc.a_offered <- acc.a_offered + 1;
        (match Server.submit server ~now:e.at ~label:e.label e.query with
        | Ok _ -> ()
        | Error r -> (
          match r.Admission.retry_after with
          | Some _ -> acc.a_shed <- acc.a_shed + 1
          | None -> acc.a_budget <- acc.a_budget + 1));
        note_depth server acc;
        run_due server acc ~horizon:e.at)
      | Ingest i -> (
        (* The write waits for the evaluator like everything else. *)
        let start = max i.at acc.a_busy in
        match Server.ingest server ~now:start ~label:i.label ~apply:i.apply () with
        | Ok r ->
          (* The drained batches ran first, against the pre-append
             snapshot; then the write occupied the loop. *)
          List.iter (absorb acc) r.Server.flushed;
          incr batches;
          rows := !rows + r.Server.ingested_rows;
          isecs := !isecs +. r.Server.apply_seconds;
          acc.a_busy <- max acc.a_busy start +. r.Server.apply_seconds
        | Error _ -> ()))
    events;
  List.iter (absorb acc) (Server.drain server ~now:(max !last_at acc.a_busy));
  {
    queries = summarize acc;
    ingest_batches = !batches;
    ingest_rows = !rows;
    ingest_seconds = !isecs;
  }

(* --- closed loop ----------------------------------------------------- *)

type client = {
  mutable stream : (string * Subql_nested.Nested_ast.query) list;
  mutable ready_at : float option;  (* next submit time; None = waiting or done *)
}

let run_closed server ~clients ~think =
  if think < 0. then invalid_arg "Driver.run_closed: negative think time";
  let acc = fresh_acc () in
  let cs = Array.of_list (List.map (fun stream -> { stream; ready_at = Some 0. }) clients) in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_submit () =
    Array.to_seqi cs
    |> Seq.filter_map (fun (i, c) -> Option.map (fun t -> (t, i)) c.ready_at)
    |> Seq.fold_left (fun best x -> match best with
         | None -> Some x
         | Some (bt, _) -> if fst x < bt then Some x else best)
         None
  in
  let on_completions (b : Server.batch_result) =
    absorb acc b;
    List.iter
      (fun (c : Server.completion) ->
        match Hashtbl.find_opt owner c.Server.ticket.Server.id with
        | None -> ()
        | Some ci ->
          Hashtbl.remove owner c.Server.ticket.Server.id;
          if cs.(ci).stream <> [] then
            cs.(ci).ready_at <- Some (c.Server.completed +. think))
      b.Server.completions
  in
  let submit_for ci t =
    let c = cs.(ci) in
    match c.stream with
    | [] -> c.ready_at <- None
    | (label, query) :: rest -> (
      acc.a_offered <- acc.a_offered + 1;
      match Server.submit server ~now:t ~label query with
      | Ok ticket ->
        Hashtbl.replace owner ticket.Server.id ci;
        c.stream <- rest;
        c.ready_at <- None;
        note_depth server acc
      | Error r -> (
        match r.Admission.retry_after with
        | Some after ->
          acc.a_shed <- acc.a_shed + 1;
          acc.a_retries <- acc.a_retries + 1;
          c.ready_at <- Some (t +. after)
        | None ->
          acc.a_budget <- acc.a_budget + 1;
          c.stream <- rest;
          c.ready_at <- (if rest = [] then None else Some (t +. think))))
  in
  let rec loop () =
    let submit = next_submit () in
    let batch =
      Option.map (fun d -> max d acc.a_busy) (Server.next_deadline server)
    in
    match (submit, batch) with
    | None, None -> ()
    | Some (t, ci), None ->
      submit_for ci t;
      loop ()
    | None, Some bt ->
      (match Server.step server ~now:bt with Some b -> on_completions b | None -> ());
      loop ()
    | Some (t, ci), Some bt ->
      (* On a tie the submit goes first, so it can ride in the batch
         that is about to seal. *)
      if t <= bt then submit_for ci t
      else (
        match Server.step server ~now:bt with Some b -> on_completions b | None -> ());
      loop ()
  in
  loop ();
  summarize acc
