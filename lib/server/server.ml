open Subql_relational
module Metrics = Subql_obs.Metrics

type config = {
  batch_window : float;
  batch_max : int;
  policy : Admission.policy;
  eval_config : Subql.Eval.config;
}

let default_config =
  {
    batch_window = 0.02;
    batch_max = 16;
    policy = Admission.unlimited;
    eval_config = Subql.Eval.default_config;
  }

type ticket = { id : int; label : string; submitted : float }

type pending = { ticket : ticket; entry : Subql_mqo.Batch.entry }

type instruments = {
  queue_depth : Metrics.gauge;
  batch_size : Metrics.histogram;
  latency : Metrics.histogram;
  admitted : Metrics.counter;
  batches : Metrics.counter;
  queries_served : Metrics.counter;
  rejected : Metrics.counter;
  rejected_budget : Metrics.counter;
  rejected_queue : Metrics.counter;
  rejected_shutdown : Metrics.counter;
}

type t = {
  config : config;
  cat : Catalog.t;
  mutable stats : Subql.Cost.Stats.t;
      (* computed at creation; refreshed after ingest grows a table *)
  result_cache : Subql_mqo.Result_cache.t;
  registry : Metrics.t;
  ins : instruments;
  queue : pending Queue.t;
  mutable next_id : int;
  mutable shut_down : bool;
  mutable before_batch : (now:float -> unit) option;
}

let create ?(config = default_config) ?cache ?(registry = Metrics.default) cat =
  if config.batch_window < 0. then invalid_arg "Server.create: negative batch_window";
  if config.batch_max <= 0 then invalid_arg "Server.create: batch_max must be positive";
  if config.policy.Admission.queue_cap <= 0 then
    invalid_arg "Server.create: queue_cap must be positive";
  let result_cache =
    match cache with
    | Some c -> c
    | None -> Subql_mqo.Result_cache.create ~registry ()
  in
  let ins =
    {
      queue_depth = Metrics.gauge registry "server.queue_depth";
      batch_size =
        Metrics.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ] registry
          "server.batch_size";
      latency = Metrics.histogram registry "server.latency_seconds";
      admitted = Metrics.counter registry "server.admitted";
      batches = Metrics.counter registry "server.batches";
      queries_served = Metrics.counter registry "server.queries_served";
      rejected = Metrics.counter registry "server.rejected";
      rejected_budget = Metrics.counter registry "server.rejected.budget";
      rejected_queue = Metrics.counter registry "server.rejected.queue";
      rejected_shutdown = Metrics.counter registry "server.rejected.shutdown";
    }
  in
  {
    config;
    cat;
    stats = Subql.Cost.Stats.of_catalog cat;
    result_cache;
    registry;
    ins;
    queue = Queue.create ();
    next_id = 0;
    shut_down = false;
    before_batch = None;
  }

let queue_depth t = Queue.length t.queue

let is_shut_down t = t.shut_down

let catalog t = t.cat

let cache t = t.result_cache

let refresh_stats t = t.stats <- Subql.Cost.Stats.of_catalog t.cat

let set_before_batch t hook = t.before_batch <- hook

let publish_depth t =
  Metrics.set t.ins.queue_depth (float_of_int (Queue.length t.queue))

let reject t per_reason rejection =
  Metrics.incr t.ins.rejected;
  Metrics.incr per_reason;
  Error rejection

let submit t ~now ?label query =
  let label = match label with Some l -> l | None -> Printf.sprintf "q%d" t.next_id in
  if t.shut_down then
    reject t t.ins.rejected_shutdown (Admission.shutdown_rejection ~label)
  else
    (* Backpressure first: a full queue sheds before paying for
       planning.  The hint is one batch window — by then the scheduler
       has sealed at least one batch out of the queue. *)
    match
      Admission.check_queue t.config.policy ~depth:(Queue.length t.queue)
        ~retry_after:t.config.batch_window ~label
    with
    | Error r -> reject t t.ins.rejected_queue r
    | Ok () -> (
      let entry = Subql_mqo.Batch.prepare query in
      match
        Admission.check_budget t.config.policy ~stats:t.stats
          ~config:t.config.eval_config ~label
          (Subql_mqo.Batch.solo_plan entry)
      with
      | Error r -> reject t t.ins.rejected_budget r
      | Ok _height ->
        let ticket = { id = t.next_id; label; submitted = now } in
        t.next_id <- t.next_id + 1;
        Queue.add { ticket; entry } t.queue;
        Metrics.incr t.ins.admitted;
        publish_depth t;
        Ok ticket)

type completion = { ticket : ticket; result : Relation.t; completed : float }

type batch_result = {
  completions : completion list;
  closed_at : float;
  exec_seconds : float;
  report : Subql_mqo.Batch.report;
}

let next_deadline t =
  match Queue.peek_opt t.queue with
  | None -> None
  | Some oldest ->
    if Queue.length t.queue >= t.config.batch_max then
      (* Size-sealed: due the moment the batch filled up, which is when
         the batch_max-th member arrived — not when the oldest did. *)
      let _, filled_at =
        Queue.fold
          (fun (i, acc) (p : pending) ->
            if i < t.config.batch_max then (i + 1, max acc p.ticket.submitted)
            else (i, acc))
          (0, oldest.ticket.submitted) t.queue
      in
      Some filled_at
    else Some (oldest.ticket.submitted +. t.config.batch_window)

let seal t ~now =
  let n = min t.config.batch_max (Queue.length t.queue) in
  let members = List.init n (fun _ -> Queue.pop t.queue) in
  publish_depth t;
  let t0 = Unix.gettimeofday () in
  (* Lazy-maintenance hook (e.g. Subql_ingest under maintain-on-read):
     repairs run inside the measured window, so reads pay for the
     freshness they consume. *)
  (match t.before_batch with Some hook -> hook ~now | None -> ());
  let report =
    Subql_mqo.Batch.run_prepared ~config:t.config.eval_config ~cache:t.result_cache
      ~registry:t.registry t.cat
      (List.map (fun p -> p.entry) members)
  in
  let exec_seconds = Unix.gettimeofday () -. t0 in
  let completed = now +. exec_seconds in
  let completions =
    List.map2
      (fun (p : pending) (_, result) ->
        Metrics.observe t.ins.latency (completed -. p.ticket.submitted);
        { ticket = p.ticket; result; completed })
      members report.Subql_mqo.Batch.results
  in
  Metrics.incr t.ins.batches;
  Metrics.incr ~by:n t.ins.queries_served;
  Metrics.observe t.ins.batch_size (float_of_int n);
  { completions; closed_at = now; exec_seconds; report }

let step t ~now =
  if Queue.is_empty t.queue then None
  else if
    Queue.length t.queue >= t.config.batch_max
    || now >= (Queue.peek t.queue).ticket.submitted +. t.config.batch_window
  then Some (seal t ~now)
  else None

let drain t ~now =
  let rec go now acc =
    if Queue.is_empty t.queue then List.rev acc
    else
      let b = seal t ~now in
      (* The loop is single-threaded: the next batch cannot seal before
         the previous one's evaluation has finished. *)
      go (b.closed_at +. b.exec_seconds) (b :: acc)
  in
  go now []

let shutdown t ~now =
  let drained = drain t ~now in
  t.shut_down <- true;
  drained

type ingest_result = {
  flushed : batch_result list;
  ingested_rows : int;
  apply_seconds : float;
}

let ingest t ~now ?(label = "ingest") ~apply () =
  if t.shut_down then
    reject t t.ins.rejected_shutdown (Admission.shutdown_rejection ~label)
  else begin
    (* Drain-first ordering: everything already queued was submitted
       before this batch arrived, so it is answered against the
       pre-append snapshot — the mirror image of the no-stale-reads
       guarantee for queries arriving after. *)
    let flushed = drain t ~now in
    let t0 = Unix.gettimeofday () in
    let ingested_rows = apply () in
    let apply_seconds = Unix.gettimeofday () -. t0 in
    refresh_stats t;
    Ok { flushed; ingested_rows; apply_seconds }
  end
