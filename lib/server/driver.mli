(** Drive a {!Server} with a traffic trace and measure it.

    Replay runs in {e virtual time}: arrival timestamps come from the
    trace (e.g. {!Subql_workload.Traffic.open_loop}), and the only
    thing that advances the clock beyond them is measured evaluation
    time — the server is single-threaded, so a batch sealed while a
    previous one is still evaluating starts at [busy-until] instead of
    its deadline.  Queueing delay is therefore exact and reproducible;
    service time is real measured work.

    Latency for a completed request is [completion - submission] on
    that unified timeline. *)

type event = {
  at : float;  (** virtual submission time *)
  label : string;
  query : Subql_nested.Nested_ast.query;
}

type summary = {
  offered : int;  (** requests the trace presented *)
  completed : int;
  rejected_budget : int;  (** [ADM001] — never executed *)
  shed : int;  (** [ADM002] queue-cap rejections *)
  retries : int;  (** closed loop only: re-submissions after a shed *)
  batches : int;
  duration : float;  (** virtual makespan: last completion time *)
  exec_seconds : float;  (** total measured evaluation time *)
  latencies : float array;  (** per completed request, sorted ascending *)
  detail_scans : int;  (** GMDJ detail passes across all batches *)
  naive_detail_scans : int;  (** one-scan-per-GMDJ-per-query baseline *)
  cache_hits : int;
  cache_misses : int;
  max_queue_depth : int;
}

val percentile : float array -> float -> float
(** [percentile sorted p] — nearest-rank quantile of a sorted sample,
    [p] in [\[0, 100\]]; [0.] on an empty array. *)

val replay : Server.t -> event list -> summary
(** Open-loop replay: submit each event at its virtual time, sealing
    batches whenever one comes due in between; queue-cap sheds are
    dropped (the load is imposed, nobody waits to retry).  Ends with a
    {!Server.drain} so every admitted request completes. *)

type ingest_event = {
  at : float;  (** virtual arrival time of the append batch *)
  label : string;
  apply : unit -> int;  (** perform the write; returns rows appended *)
}

type mixed_event = Query of event | Ingest of ingest_event

type mixed_summary = {
  queries : summary;
  ingest_batches : int;  (** writes applied *)
  ingest_rows : int;
  ingest_seconds : float;  (** measured wall-clock write+maintain time *)
}

val replay_mixed : Server.t -> mixed_event list -> mixed_summary
(** {!replay} over an interleaved ingest + query trace (e.g.
    {!Subql_workload.Traffic.with_ingest}).  Query events behave exactly
    as in {!replay}; an ingest event waits for the evaluator
    ([busy-until]), goes through {!Server.ingest} — so queries already
    queued are answered against the pre-append snapshot first — and
    then occupies the loop for its measured apply time, delaying
    subsequent batches.  No query admitted after an append can be
    answered from a pre-append cache entry: the write bumps the epoch
    before the query's batch seals. *)

val run_closed :
  Server.t ->
  clients:(string * Subql_nested.Nested_ast.query) list list ->
  think:float ->
  summary
(** Closed-loop drive: each inner list is one client's (label, query)
    stream; a client submits its next query [think] virtual seconds
    after its previous one completes, and a shed request is retried
    after the server's hint.  Ends when every client exhausts its
    stream. *)
