(** Evaluation of extended-algebra expressions against a catalog.

    The configuration selects physical strategies without changing
    results: [`Hash] joins model the paper's "all important attributes
    were indexed" setting, [`Nested_loop] the index-free ablation; the
    GMDJ strategy selects between the definition-style reference
    evaluator, the plain single scan, and the hash-partitioned single
    scan. *)

open Subql_relational
open Subql_gmdj

type config = {
  join_strategy : Ops.join_strategy;
  gmdj_strategy : Gmdj.strategy;
  domains : int;
      (** Degree of parallelism for pipeline breakers and GMDJ: with
          [domains > 1] the executor runs them over a
          {!Subql_relational.Chunk.Exchange} — the coordinator pulls the
          input stream (storage scans and buffer pools stay
          single-domain) and routes chunks to that many worker domains,
          merging per-domain state at the breaker.  [1] (the default)
          keeps every operator on the calling domain.  Results are
          identical up to row order. *)
  spill_budget_rows : int option;
      (** When set, pipeline breakers (DISTINCT, GROUP BY, equi-joins)
          run their spillable variants ({!Subql_storage.Spill}): resident
          hash state freezes at this many rows and the overflow is
          hash-partitioned to temp heap files, merged in a second pass —
          so a breaker over detail-sized input degrades to I/O instead
          of memory.  Takes precedence over [domains] at the breakers
          (spilling runs on the coordinator); GMDJ never spills (its
          state is |B|-bounded) and still parallelizes. *)
}

val default_config : config
(** Hash joins, hash GMDJ, serial ([domains = 1]), no spilling. *)

val children : Algebra.t -> Algebra.t list
(** Direct subplans, in evaluation order — the same order
    {!eval_analyzed}'s [Explain.node] children follow, so analysis trees
    built with this walk zip positionally against measured ones. *)

val node_label : Algebra.t -> string
(** Display label of the operator (with predicate/column detail), as it
    appears in EXPLAIN output. *)

val unindexed_config : config
(** Nested-loop joins, scan GMDJ. *)

(** {1 Streaming execution}

    All entry points run one shared executor skeleton.  Operators
    exchange pull-based chunk streams ({!Subql_relational.Chunk.Source.t}):
    Select / Project / Rename / Add_rownum / Union_all and the GMDJ
    detail side are fully pipelined, while pipeline breakers (Join,
    Product, Group_by, Distinct, Diff_all, the GMDJ base side) buffer
    only what they must.  Every run publishes ["eval.chunks"] (chunks
    pulled through operator boundaries) and
    ["eval.peak_materialized_rows"] (high-water mark of rows the
    executor held materialized) into {!Subql_obs.Metrics.default}. *)

val eval :
  ?config:config -> ?gmdj_stats:Gmdj.stats -> Catalog.t -> Algebra.t -> Relation.t
(** [gmdj_stats], when provided, accumulates over every [Md] /
    [Md_completed] node evaluated. *)

type source_provider = string -> Chunk.Source.t option
(** Where table scans come from.  [Some src] streams the named table
    (e.g. {!Subql_storage.Heap_file.source} pages through a buffer
    pool) instead of the catalog relation; the provider must return a
    {e fresh} source on every call — a table referenced twice is
    scanned twice. *)

type exec_report = {
  chunks : int;  (** chunks pulled through operator boundaries *)
  peak_materialized_rows : int;
      (** high-water mark of rows held materialized by the executor:
          pipeline-breaker state and collected outputs; catalog
          relations and storage pages are not charged *)
}

val eval_exec :
  ?config:config ->
  ?gmdj_stats:Gmdj.stats ->
  ?sources:source_provider ->
  Catalog.t ->
  Algebra.t ->
  Relation.t * exec_report
(** {!eval} with externalized table scans and the run's memory/chunk
    accounting.  With a heap-file provider, a plan whose blocking state
    is small (e.g. a GMDJ over a large detail table) completes with
    peak memory independent of the detail cardinality. *)

val schema : Catalog.t -> Algebra.t -> Schema.t

val eval_with_overrides :
  ?config:config ->
  ?gmdj_stats:Gmdj.stats ->
  override:(Algebra.t -> Relation.t option) ->
  Catalog.t ->
  Algebra.t ->
  Relation.t
(** Like {!eval}, but [override] is consulted at every node before
    evaluation; [Some r] short-circuits the whole subtree with [r].  The
    multi-query layer ([Subql_mqo]) uses this to splice shared GMDJ
    results into several queries' plans: each plan references the same
    physical combined node, and the override memoizes its single
    evaluation.  An override result whose schema contradicts the node's
    inferred schema is rejected with a {!Subql_relational.Diag.Fail}
    (code [EVL001]); nodes whose schema cannot be inferred fall back to
    the caller's contract. *)

(** {1 Instrumented evaluation (EXPLAIN ANALYZE)} *)

val eval_analyzed :
  ?config:config ->
  ?registry:Subql_obs.Metrics.t ->
  Catalog.t ->
  Algebra.t ->
  Relation.t * Subql_obs.Explain.node
(** Evaluate with every operator instrumented: the returned tree mirrors
    the plan and annotates each operator with rows-in/rows-out,
    invocation count, self time, buffer-pool hit/read deltas, and — on
    [Md]/[Md_completed] nodes — the GMDJ scan statistics
    (["detail-scans"], ["detail-rows"], ["theta-evals"],
    ["block-updates"], ["early-exit"]), making Prop. 4.1 coalescing
    visible as "1 detail scan vs k".  Each operator also runs inside a
    {!Subql_obs.Trace} span (named by the operator, with a ["rows"]
    attribute) so [--trace] exports line up with the plan, and publishes
    per-operator totals into [registry] (default
    {!Subql_obs.Metrics.default}) under ["eval.*"]. *)

type trace = {
  label : string;  (** operator rendering *)
  out_rows : int;
  self_seconds : float;  (** time in this operator, children excluded *)
  children : trace list;
}

val eval_traced :
  ?config:config -> Catalog.t -> Algebra.t -> Relation.t * trace
(** The cardinality/time projection of {!eval_analyzed}. *)

val pp_trace : Format.formatter -> trace -> unit
(** Indented tree with per-operator output cardinality and time. *)
