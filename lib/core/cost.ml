open Subql_relational
open Subql_gmdj

module Stats = struct
  type col_stats = (string, float) Hashtbl.t

  type t = { tables : (string, float * col_stats) Hashtbl.t }

  let of_catalog catalog =
    let tables = Hashtbl.create 16 in
    List.iter
      (fun name ->
        let rel = Catalog.find catalog name in
        let schema = Relation.schema rel in
        let cols = Hashtbl.create (Schema.arity schema) in
        Array.iteri
          (fun i attr ->
            let seen = Hashtbl.create 64 in
            Relation.iter (fun row -> Hashtbl.replace seen row.(i) ()) rel;
            Hashtbl.replace cols attr.Schema.name (float_of_int (max 1 (Hashtbl.length seen))))
          schema;
        Hashtbl.replace tables name (float_of_int (Relation.cardinality rel), cols))
      (Catalog.tables catalog);
    { tables }

  let table_rows t name =
    match Hashtbl.find_opt t.tables name with Some (rows, _) -> rows | None -> 1000.0

  let column_distinct t ~table ~column =
    match Hashtbl.find_opt t.tables table with
    | None -> None
    | Some (_, cols) -> Hashtbl.find_opt cols column
end

type estimate = { rows : float; cost : float }

(* Alias-to-table origins let selectivity reach per-column distinct
   counts through renames; anything more complex degrades gracefully to
   shape-based defaults. *)
type info = { est : estimate; origins : (string * string) list }

let clamp s = Float.max 1e-6 (Float.min 1.0 s)

let ndv_of stats origins = function
  | Expr.Attr (Some alias, column) -> (
    match List.assoc_opt alias origins with
    | Some table -> Stats.column_distinct stats ~table ~column
    | None -> None)
  | _ -> None

let rec selectivity_with stats origins e =
  let sel =
    match e with
    | Expr.Const (Value.Bool true) -> 1.0
    | Expr.Const (Value.Bool false) -> 0.0
    | Expr.Cmp (Expr.Eq, a, b) | Expr.Null_safe_eq (a, b) -> (
      match ndv_of stats origins a, ndv_of stats origins b with
      | Some n, Some m -> 1.0 /. Float.max n m
      | Some n, None | None, Some n -> 1.0 /. n
      | None, None -> 0.1)
    | Expr.Cmp (Expr.Ne, _, _) -> 0.9
    | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.33
    | Expr.And (a, b) -> selectivity_with stats origins a *. selectivity_with stats origins b
    | Expr.Or (a, b) ->
      Float.min 1.0 (selectivity_with stats origins a +. selectivity_with stats origins b)
    | Expr.Not a -> 1.0 -. selectivity_with stats origins a
    | Expr.Is_true a -> selectivity_with stats origins a
    | Expr.Is_null _ -> 0.05
    | Expr.Is_not_null _ -> 0.95
    | Expr.Const _ | Expr.Attr _ | Expr.Arith _ | Expr.Neg _ -> 0.5
  in
  clamp sel

let selectivity stats ~origins e = selectivity_with stats origins e

(* A GMDJ block can use the hash-partitioning strategy when its θ has an
   equi conjunct between two differently-qualified attributes (one ends
   up on each side in practice). *)
let block_hashable theta =
  List.exists
    (function
      | Expr.Cmp (Expr.Eq, Expr.Attr (Some a, _), Expr.Attr (Some b, _)) -> a <> b
      | _ -> false)
    (Expr.conjuncts theta)

let estimate stats ~config alg =
  let hash_joins = config.Eval.join_strategy = `Hash in
  let hash_gmdj = config.Eval.gmdj_strategy = `Hash in
  let rec go alg =
    match alg with
    | Algebra.Table name ->
      let rows = Stats.table_rows stats name in
      { est = { rows; cost = rows }; origins = [ (name, name) ] }
    | Algebra.Rename (alias, x) ->
      let i = go x in
      let origins =
        match x with Algebra.Table t -> [ (alias, t) ] | _ -> []
      in
      { i with origins }
    | Algebra.Select (e, x) ->
      let i = go x in
      let sel = selectivity_with stats i.origins e in
      {
        i with
        est = { rows = i.est.rows *. sel; cost = i.est.cost +. i.est.rows };
      }
    | Algebra.Project (_, x) | Algebra.Project_rel (_, x) | Algebra.Add_rownum (_, x) ->
      let i = go x in
      { est = { rows = i.est.rows; cost = i.est.cost +. i.est.rows }; origins = i.origins }
    | Algebra.Project_cols { distinct; input; cols } ->
      let i = go input in
      let rows =
        if not distinct then i.est.rows
        else
          let ndvs =
            List.filter_map
              (fun (rel, name) ->
                match rel with
                | Some alias -> ndv_of stats i.origins (Expr.Attr (Some alias, name))
                | None -> None)
              cols
          in
          match ndvs with
          | [] -> Float.max 1.0 (i.est.rows *. 0.3)
          | _ -> Float.min i.est.rows (List.fold_left ( *. ) 1.0 ndvs)
      in
      { est = { rows; cost = i.est.cost +. i.est.rows }; origins = i.origins }
    | Algebra.Distinct x ->
      let i = go x in
      {
        est = { rows = Float.max 1.0 (i.est.rows *. 0.5); cost = i.est.cost +. i.est.rows };
        origins = i.origins;
      }
    | Algebra.Product (l, r) ->
      let li = go l and ri = go r in
      let rows = li.est.rows *. ri.est.rows in
      {
        est = { rows; cost = li.est.cost +. ri.est.cost +. rows };
        origins = li.origins @ ri.origins;
      }
    | Algebra.Join { kind; cond; left; right } ->
      let li = go left and ri = go right in
      let origins = li.origins @ ri.origins in
      let sel = selectivity_with stats origins cond in
      let l = li.est.rows and r = ri.est.rows in
      let inputs = li.est.cost +. ri.est.cost in
      let pair_work = if hash_joins then l +. r +. (l *. r *. sel) else l *. r in
      let est =
        match kind with
        | Algebra.Inner -> { rows = l *. r *. sel; cost = inputs +. pair_work }
        | Algebra.Left_outer ->
          { rows = Float.max l (l *. r *. sel); cost = inputs +. pair_work }
        | Algebra.Semi ->
          (* P(some right row matches) ≈ min(1, sel·r); nested loops stop
             at the first match, hash probes one bucket. *)
          let hit = Float.min 1.0 (sel *. r) in
          let cost =
            if hash_joins then inputs +. l +. r else inputs +. (l *. r *. 0.5)
          in
          { rows = l *. hit; cost }
        | Algebra.Anti ->
          let hit = Float.min 1.0 (sel *. r) in
          let cost =
            if hash_joins then inputs +. l +. r else inputs +. (l *. r *. 0.75)
          in
          { rows = l *. (1.0 -. hit); cost }
      in
      { est; origins }
    | Algebra.Group_by { keys; input; _ } ->
      let i = go input in
      let ndvs =
        List.filter_map
          (fun (rel, name) ->
            match rel with
            | Some alias -> ndv_of stats i.origins (Expr.Attr (Some alias, name))
            | None -> None)
          keys
      in
      let groups =
        match ndvs with
        | [] -> Float.max 1.0 (i.est.rows *. 0.1)
        | _ -> Float.min i.est.rows (List.fold_left ( *. ) 1.0 ndvs)
      in
      { est = { rows = groups; cost = i.est.cost +. i.est.rows }; origins = [] }
    | Algebra.Aggregate_all (_, x) ->
      let i = go x in
      { est = { rows = 1.0; cost = i.est.cost +. i.est.rows }; origins = [] }
    | Algebra.Md { base; detail; blocks } | Algebra.Md_completed { base; detail; blocks; _ }
      ->
      let bi = go base and di = go detail in
      let b = bi.est.rows and d = di.est.rows in
      let origins = bi.origins @ di.origins in
      let block_cost block =
        let theta = block.Gmdj.theta in
        if hash_gmdj && block_hashable theta then
          (* One probe per detail row plus the matched updates. *)
          d +. (b *. d *. selectivity_with stats origins theta)
        else b *. d
      in
      let scan_cost = List.fold_left (fun acc blk -> acc +. block_cost blk) 0.0 blocks in
      let completion_factor =
        match alg with Algebra.Md_completed _ -> 0.5 | _ -> 1.0
      in
      {
        est =
          {
            rows = b;
            cost = bi.est.cost +. di.est.cost +. (scan_cost *. completion_factor) +. b;
          };
        origins;
      }
    | Algebra.Union_all (l, r) ->
      let li = go l and ri = go r in
      {
        est =
          {
            rows = li.est.rows +. ri.est.rows;
            cost = li.est.cost +. ri.est.cost +. li.est.rows +. ri.est.rows;
          };
        origins = [];
      }
    | Algebra.Diff_all (l, r) ->
      let li = go l and ri = go r in
      {
        est =
          {
            rows = li.est.rows;
            cost = li.est.cost +. ri.est.cost +. li.est.rows +. ri.est.rows;
          };
        origins = [];
      }
  in
  (go alg).est

(* Memory height: the estimated high-water mark of rows the streaming
   executor holds materialized while running the plan — the planning-
   time counterpart of the measured ["eval.peak_materialized_rows"]
   gauge.  Streaming operators contribute nothing of their own; pipeline
   breakers hold their materialized inputs and their output live at
   once.  Whole-relation inputs the executor borrows zero-copy (a table,
   an alias over a table) are free. *)
let memory_height stats ~config alg =
  let rows sub = (estimate stats ~config sub).rows in
  (* Rows a breaker must hold to revisit this input; catalog-resident
     relations pass through the origin shortcut without a copy. *)
  let mat_rows sub =
    match sub with
    | Algebra.Table _ | Algebra.Rename (_, Algebra.Table _) -> 0.0
    | _ -> rows sub
  in
  let rec h alg =
    match alg with
    | Algebra.Table _ -> 0.0
    | Algebra.Rename (_, x)
    | Algebra.Select (_, x)
    | Algebra.Project (_, x)
    | Algebra.Project_rel (_, x)
    | Algebra.Add_rownum (_, x) ->
      h x
    | Algebra.Project_cols { distinct; input; _ } ->
      if distinct then Float.max (h input) (rows alg) else h input
    | Algebra.Distinct x -> Float.max (h x) (rows alg)
    | Algebra.Group_by { input; _ } -> Float.max (h input) (rows alg)
    | Algebra.Aggregate_all (_, x) -> Float.max (h x) 1.0
    | Algebra.Union_all (l, r) -> Float.max (h l) (h r)
    | Algebra.Product (l, r) | Algebra.Join { left = l; right = r; _ } | Algebra.Diff_all (l, r)
      ->
      let ml = mat_rows l and mr = mat_rows r in
      Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
    | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ } ->
      (* The base side is materialized (|B| accumulators); the detail
         side streams through, so only its own height counts. *)
      let mb = mat_rows base in
      Float.max (h base) (Float.max (mb +. h detail) (mb +. rows alg))
  in
  h alg

(* An equi conjunct between differently-qualified attributes is what
   [Spill.join] partitions on — the same syntactic test the GMDJ hash
   strategy uses ([block_hashable]). *)
let join_partitionable cond = block_hashable cond

(* Memory height under the configured spill budget: breaker state that
   the spilling operators bound (DISTINCT / GROUP BY hash state,
   equi-join inputs) is capped at the budget, with the excess
   accumulated as predicted {e spill} volume — disk, not resident
   memory.  Unspillable state (Product, Diff_all, non-equi joins, the
   GMDJ base matrix, every operator's emitted output) stays resident.
   With no budget configured this is exactly {!memory_height} (spill
   0).  The resident component is what an admission memory budget
   should gate on; the spill component prices the I/O the plan would
   push through temp heap files instead. *)
let memory_height_spill stats ~config alg =
  match config.Eval.spill_budget_rows with
  | None -> (memory_height stats ~config alg, 0.0)
  | Some b ->
    let budget = float_of_int b in
    let rows sub = (estimate stats ~config sub).rows in
    let mat_rows sub =
      match sub with
      | Algebra.Table _ | Algebra.Rename (_, Algebra.Table _) -> 0.0
      | _ -> rows sub
    in
    let spilled = ref 0.0 in
    let cap r =
      if r > budget then begin
        spilled := !spilled +. (r -. budget);
        budget
      end
      else r
    in
    let rec h alg =
      match alg with
      | Algebra.Table _ -> 0.0
      | Algebra.Rename (_, x)
      | Algebra.Select (_, x)
      | Algebra.Project (_, x)
      | Algebra.Project_rel (_, x)
      | Algebra.Add_rownum (_, x) ->
        h x
      | Algebra.Project_cols { distinct; input; _ } ->
        if distinct then Float.max (h input) (cap (rows alg)) else h input
      | Algebra.Distinct x -> Float.max (h x) (cap (rows alg))
      | Algebra.Group_by { input; _ } -> Float.max (h input) (cap (rows alg))
      | Algebra.Aggregate_all (_, x) -> Float.max (h x) 1.0
      | Algebra.Union_all (l, r) -> Float.max (h l) (h r)
      | Algebra.Join { cond; left = l; right = r; _ } when join_partitionable cond ->
        (* Grace hash join: each side is held resident only up to the
           budget; partitions then join pairwise, so the capped pair
           plus the output is the live state. *)
        let ml = cap (mat_rows l) and mr = cap (mat_rows r) in
        Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
      | Algebra.Product (l, r)
      | Algebra.Join { left = l; right = r; _ }
      | Algebra.Diff_all (l, r) ->
        let ml = mat_rows l and mr = mat_rows r in
        Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
      | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ } ->
        let mb = mat_rows base in
        Float.max (h base) (Float.max (mb +. h detail) (mb +. rows alg))
    in
    let resident = h alg in
    (resident, !spilled)
