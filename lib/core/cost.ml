open Subql_relational
open Subql_gmdj

module Stats = struct
  type col_stats = (string, float) Hashtbl.t

  type t = { tables : (string, float * col_stats) Hashtbl.t }

  let of_catalog catalog =
    let tables = Hashtbl.create 16 in
    List.iter
      (fun name ->
        let rel = Catalog.find catalog name in
        let schema = Relation.schema rel in
        let cols = Hashtbl.create (Schema.arity schema) in
        Array.iteri
          (fun i attr ->
            let seen = Hashtbl.create 64 in
            Relation.iter (fun row -> Hashtbl.replace seen row.(i) ()) rel;
            Hashtbl.replace cols attr.Schema.name (float_of_int (max 1 (Hashtbl.length seen))))
          schema;
        Hashtbl.replace tables name (float_of_int (Relation.cardinality rel), cols))
      (Catalog.tables catalog);
    { tables }

  let table_rows t name =
    match Hashtbl.find_opt t.tables name with Some (rows, _) -> rows | None -> 1000.0

  let table_rows_opt t name =
    match Hashtbl.find_opt t.tables name with Some (rows, _) -> Some rows | None -> None

  let column_distinct t ~table ~column =
    match Hashtbl.find_opt t.tables table with
    | None -> None
    | Some (_, cols) -> Hashtbl.find_opt cols column
end

type estimate = { rows : float; cost : float }

(* Alias-to-table origins let selectivity reach per-column distinct
   counts through renames; anything more complex degrades gracefully to
   shape-based defaults. *)
type info = { est : estimate; origins : (string * string) list }

let clamp s = Float.max 1e-6 (Float.min 1.0 s)

let ndv_of stats origins = function
  | Expr.Attr (Some alias, column) -> (
    match List.assoc_opt alias origins with
    | Some table -> Stats.column_distinct stats ~table ~column
    | None -> None)
  | _ -> None

let rec selectivity_with stats origins e =
  let sel =
    match e with
    | Expr.Const (Value.Bool true) -> 1.0
    | Expr.Const (Value.Bool false) -> 0.0
    | Expr.Cmp (Expr.Eq, a, b) | Expr.Null_safe_eq (a, b) -> (
      match ndv_of stats origins a, ndv_of stats origins b with
      | Some n, Some m -> 1.0 /. Float.max n m
      | Some n, None | None, Some n -> 1.0 /. n
      | None, None -> 0.1)
    | Expr.Cmp (Expr.Ne, _, _) -> 0.9
    | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) -> 0.33
    | Expr.And (a, b) -> selectivity_with stats origins a *. selectivity_with stats origins b
    | Expr.Or (a, b) ->
      Float.min 1.0 (selectivity_with stats origins a +. selectivity_with stats origins b)
    | Expr.Not a -> 1.0 -. selectivity_with stats origins a
    | Expr.Is_true a -> selectivity_with stats origins a
    | Expr.Is_null _ -> 0.05
    | Expr.Is_not_null _ -> 0.95
    | Expr.Const _ | Expr.Attr _ | Expr.Arith _ | Expr.Neg _ -> 0.5
  in
  clamp sel

let selectivity stats ~origins e = selectivity_with stats origins e

(* A GMDJ block can use the hash-partitioning strategy when its θ has an
   equi conjunct between two differently-qualified attributes (one ends
   up on each side in practice). *)
let block_hashable theta =
  List.exists
    (function
      | Expr.Cmp (Expr.Eq, Expr.Attr (Some a, _), Expr.Attr (Some b, _)) -> a <> b
      | _ -> false)
    (Expr.conjuncts theta)

let estimate stats ~config alg =
  let hash_joins = config.Eval.join_strategy = `Hash in
  let hash_gmdj = config.Eval.gmdj_strategy = `Hash in
  let rec go alg =
    match alg with
    | Algebra.Table name ->
      let rows = Stats.table_rows stats name in
      { est = { rows; cost = rows }; origins = [ (name, name) ] }
    | Algebra.Rename (alias, x) ->
      let i = go x in
      let origins =
        match x with Algebra.Table t -> [ (alias, t) ] | _ -> []
      in
      { i with origins }
    | Algebra.Select (e, x) ->
      let i = go x in
      let sel = selectivity_with stats i.origins e in
      {
        i with
        est = { rows = i.est.rows *. sel; cost = i.est.cost +. i.est.rows };
      }
    | Algebra.Project (_, x) | Algebra.Project_rel (_, x) | Algebra.Add_rownum (_, x) ->
      let i = go x in
      { est = { rows = i.est.rows; cost = i.est.cost +. i.est.rows }; origins = i.origins }
    | Algebra.Project_cols { distinct; input; cols } ->
      let i = go input in
      let rows =
        if not distinct then i.est.rows
        else
          let ndvs =
            List.filter_map
              (fun (rel, name) ->
                match rel with
                | Some alias -> ndv_of stats i.origins (Expr.Attr (Some alias, name))
                | None -> None)
              cols
          in
          match ndvs with
          | [] -> Float.max 1.0 (i.est.rows *. 0.3)
          | _ -> Float.min i.est.rows (List.fold_left ( *. ) 1.0 ndvs)
      in
      { est = { rows; cost = i.est.cost +. i.est.rows }; origins = i.origins }
    | Algebra.Distinct x ->
      let i = go x in
      {
        est = { rows = Float.max 1.0 (i.est.rows *. 0.5); cost = i.est.cost +. i.est.rows };
        origins = i.origins;
      }
    | Algebra.Product (l, r) ->
      let li = go l and ri = go r in
      let rows = li.est.rows *. ri.est.rows in
      {
        est = { rows; cost = li.est.cost +. ri.est.cost +. rows };
        origins = li.origins @ ri.origins;
      }
    | Algebra.Join { kind; cond; left; right } ->
      let li = go left and ri = go right in
      let origins = li.origins @ ri.origins in
      let sel = selectivity_with stats origins cond in
      let l = li.est.rows and r = ri.est.rows in
      let inputs = li.est.cost +. ri.est.cost in
      let pair_work = if hash_joins then l +. r +. (l *. r *. sel) else l *. r in
      let est =
        match kind with
        | Algebra.Inner -> { rows = l *. r *. sel; cost = inputs +. pair_work }
        | Algebra.Left_outer ->
          { rows = Float.max l (l *. r *. sel); cost = inputs +. pair_work }
        | Algebra.Semi ->
          (* P(some right row matches) ≈ min(1, sel·r); nested loops stop
             at the first match, hash probes one bucket. *)
          let hit = Float.min 1.0 (sel *. r) in
          let cost =
            if hash_joins then inputs +. l +. r else inputs +. (l *. r *. 0.5)
          in
          { rows = l *. hit; cost }
        | Algebra.Anti ->
          let hit = Float.min 1.0 (sel *. r) in
          let cost =
            if hash_joins then inputs +. l +. r else inputs +. (l *. r *. 0.75)
          in
          { rows = l *. (1.0 -. hit); cost }
      in
      { est; origins }
    | Algebra.Group_by { keys; input; _ } ->
      let i = go input in
      let ndvs =
        List.filter_map
          (fun (rel, name) ->
            match rel with
            | Some alias -> ndv_of stats i.origins (Expr.Attr (Some alias, name))
            | None -> None)
          keys
      in
      let groups =
        match ndvs with
        | [] -> Float.max 1.0 (i.est.rows *. 0.1)
        | _ -> Float.min i.est.rows (List.fold_left ( *. ) 1.0 ndvs)
      in
      { est = { rows = groups; cost = i.est.cost +. i.est.rows }; origins = [] }
    | Algebra.Aggregate_all (_, x) ->
      let i = go x in
      { est = { rows = 1.0; cost = i.est.cost +. i.est.rows }; origins = [] }
    | Algebra.Md { base; detail; blocks } | Algebra.Md_completed { base; detail; blocks; _ }
      ->
      let bi = go base and di = go detail in
      let b = bi.est.rows and d = di.est.rows in
      let origins = bi.origins @ di.origins in
      let block_cost block =
        let theta = block.Gmdj.theta in
        if hash_gmdj && block_hashable theta then
          (* One probe per detail row plus the matched updates. *)
          d +. (b *. d *. selectivity_with stats origins theta)
        else b *. d
      in
      let scan_cost = List.fold_left (fun acc blk -> acc +. block_cost blk) 0.0 blocks in
      let completion_factor =
        match alg with Algebra.Md_completed _ -> 0.5 | _ -> 1.0
      in
      {
        est =
          {
            rows = b;
            cost = bi.est.cost +. di.est.cost +. (scan_cost *. completion_factor) +. b;
          };
        origins;
      }
    | Algebra.Union_all (l, r) ->
      let li = go l and ri = go r in
      {
        est =
          {
            rows = li.est.rows +. ri.est.rows;
            cost = li.est.cost +. ri.est.cost +. li.est.rows +. ri.est.rows;
          };
        origins = [];
      }
    | Algebra.Diff_all (l, r) ->
      let li = go l and ri = go r in
      {
        est =
          {
            rows = li.est.rows;
            cost = li.est.cost +. ri.est.cost +. li.est.rows +. ri.est.rows;
          };
        origins = [];
      }
  in
  (go alg).est

(* Memory height: the estimated high-water mark of rows the streaming
   executor holds materialized while running the plan — the planning-
   time counterpart of the measured ["eval.peak_materialized_rows"]
   gauge.  Streaming operators contribute nothing of their own; pipeline
   breakers hold their materialized inputs and their output live at
   once.  Whole-relation inputs the executor borrows zero-copy (a table,
   an alias over a table) are free. *)
let memory_height stats ~config alg =
  let rows sub = (estimate stats ~config sub).rows in
  (* Rows a breaker must hold to revisit this input; catalog-resident
     relations pass through the origin shortcut without a copy. *)
  let mat_rows sub =
    match sub with
    | Algebra.Table _ | Algebra.Rename (_, Algebra.Table _) -> 0.0
    | _ -> rows sub
  in
  let rec h alg =
    match alg with
    | Algebra.Table _ -> 0.0
    | Algebra.Rename (_, x)
    | Algebra.Select (_, x)
    | Algebra.Project (_, x)
    | Algebra.Project_rel (_, x)
    | Algebra.Add_rownum (_, x) ->
      h x
    | Algebra.Project_cols { distinct; input; _ } ->
      if distinct then Float.max (h input) (rows alg) else h input
    | Algebra.Distinct x -> Float.max (h x) (rows alg)
    | Algebra.Group_by { input; _ } -> Float.max (h input) (rows alg)
    | Algebra.Aggregate_all (_, x) -> Float.max (h x) 1.0
    | Algebra.Union_all (l, r) -> Float.max (h l) (h r)
    | Algebra.Product (l, r) | Algebra.Join { left = l; right = r; _ } | Algebra.Diff_all (l, r)
      ->
      let ml = mat_rows l and mr = mat_rows r in
      Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
    | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ } ->
      (* The base side is materialized (|B| accumulators); the detail
         side streams through, so only its own height counts. *)
      let mb = mat_rows base in
      Float.max (h base) (Float.max (mb +. h detail) (mb +. rows alg))
  in
  h alg

(* An equi conjunct between differently-qualified attributes is what
   [Spill.join] partitions on — the same syntactic test the GMDJ hash
   strategy uses ([block_hashable]). *)
let join_partitionable cond = block_hashable cond

(* Memory height under the configured spill budget: breaker state that
   the spilling operators bound (DISTINCT / GROUP BY hash state,
   equi-join inputs) is capped at the budget, with the excess
   accumulated as predicted {e spill} volume — disk, not resident
   memory.  Unspillable state (Product, Diff_all, non-equi joins, the
   GMDJ base matrix, every operator's emitted output) stays resident.
   With no budget configured this is exactly {!memory_height} (spill
   0).  The resident component is what an admission memory budget
   should gate on; the spill component prices the I/O the plan would
   push through temp heap files instead. *)
let memory_height_spill stats ~config alg =
  match config.Eval.spill_budget_rows with
  | None -> (memory_height stats ~config alg, 0.0)
  | Some b ->
    let budget = float_of_int b in
    let rows sub = (estimate stats ~config sub).rows in
    let mat_rows sub =
      match sub with
      | Algebra.Table _ | Algebra.Rename (_, Algebra.Table _) -> 0.0
      | _ -> rows sub
    in
    let spilled = ref 0.0 in
    let cap r =
      if r > budget then begin
        spilled := !spilled +. (r -. budget);
        budget
      end
      else r
    in
    let rec h alg =
      match alg with
      | Algebra.Table _ -> 0.0
      | Algebra.Rename (_, x)
      | Algebra.Select (_, x)
      | Algebra.Project (_, x)
      | Algebra.Project_rel (_, x)
      | Algebra.Add_rownum (_, x) ->
        h x
      | Algebra.Project_cols { distinct; input; _ } ->
        if distinct then Float.max (h input) (cap (rows alg)) else h input
      | Algebra.Distinct x -> Float.max (h x) (cap (rows alg))
      | Algebra.Group_by { input; _ } -> Float.max (h input) (cap (rows alg))
      | Algebra.Aggregate_all (_, x) -> Float.max (h x) 1.0
      | Algebra.Union_all (l, r) -> Float.max (h l) (h r)
      | Algebra.Join { cond; left = l; right = r; _ } when join_partitionable cond ->
        (* Grace hash join: each side is held resident only up to the
           budget; partitions then join pairwise, so the capped pair
           plus the output is the live state. *)
        let ml = cap (mat_rows l) and mr = cap (mat_rows r) in
        Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
      | Algebra.Product (l, r)
      | Algebra.Join { left = l; right = r; _ }
      | Algebra.Diff_all (l, r) ->
        let ml = mat_rows l and mr = mat_rows r in
        Float.max (h l) (Float.max (ml +. h r) (ml +. mr +. rows alg))
      | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ } ->
        let mb = mat_rows base in
        Float.max (h base) (Float.max (mb +. h detail) (mb +. rows alg))
    in
    let resident = h alg in
    (resident, !spilled)

(* ------------------------------------------------------------------ *)
(* Certified cardinality intervals (abstract interpretation)           *)
(* ------------------------------------------------------------------ *)

module Interval = struct
  type t = { lo : float; hi : float }

  let v lo hi =
    let lo = Float.max 0.0 lo in
    { lo; hi = Float.max lo hi }

  let exact n = v n n

  let top = { lo = 0.0; hi = Float.infinity }

  let contains t n = n >= t.lo -. 1e-6 && n <= t.hi +. 1e-6

  let is_finite t = t.hi < Float.infinity

  let fmt_bound n =
    if n = Float.infinity then "inf"
    else if Float.is_integer n && Float.abs n < 1e15 then
      Printf.sprintf "%.0f" n
    else Printf.sprintf "%g" n

  let to_string t = Printf.sprintf "[%s, %s]" (fmt_bound t.lo) (fmt_bound t.hi)

  let pp ppf t = Format.pp_print_string ppf (to_string t)

  type tree = { op : string; path : string list; ival : t; children : tree list }
end

(* Per-operator cardinality intervals: unlike {!estimate}, which picks a
   plausible point, these are {e sound} bounds — for any database
   consistent with [stats] (exact row and distinct counts over the
   current catalog), the operator's true output cardinality lies inside
   its interval.  Selections therefore only widen the lower bound to 0
   (never guess a selectivity), outer joins and GMDJ completion widen
   conservatively, and the only narrowing below the input's upper bound
   comes from distinct-count products, which are genuine upper bounds on
   group/distinct counts.  Alias origins are threaded exactly as in
   {!estimate} but dropped across computed projections ([Project],
   [Add_rownum]) where a derived column could shadow a base column's
   name: a distinct-count bound is only used where the column provably
   carries base-table values. *)
(* A conjunction of integer comparisons pinning one attribute to an
   empty value range proves the selection dead — certified cardinality
   exactly 0, a narrowing no selectivity heuristic can make soundly.
   Only conjuncts of the shape [attr OP int-const] (either operand
   order) participate; everything else is ignored, which can only
   weaken the check, never unsoundly fire it. *)
let unsatisfiable pred =
  let rec conjuncts e acc =
    match e with Expr.And (a, b) -> conjuncts a (conjuncts b acc) | e -> e :: acc
  in
  let bounds = Hashtbl.create 4 in
  let tighten key lo hi =
    let l0, h0 =
      match Hashtbl.find_opt bounds key with
      | Some b -> b
      | None -> (Float.neg_infinity, Float.infinity)
    in
    Hashtbl.replace bounds key (Float.max l0 lo, Float.min h0 hi)
  in
  let note_cmp op key c =
    let c = float_of_int c in
    match op with
    | Expr.Eq -> tighten key c c
    | Expr.Lt -> tighten key Float.neg_infinity (c -. 1.0)
    | Expr.Le -> tighten key Float.neg_infinity c
    | Expr.Gt -> tighten key (c +. 1.0) Float.infinity
    | Expr.Ge -> tighten key c Float.infinity
    | Expr.Ne -> ()
  in
  let flip = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | (Expr.Eq | Expr.Ne) as op -> op
  in
  List.iter
    (function
      | Expr.Cmp (op, Expr.Attr (rel, name), Expr.Const (Value.Int c)) ->
        note_cmp op (rel, name) c
      | Expr.Cmp (op, Expr.Const (Value.Int c), Expr.Attr (rel, name)) ->
        note_cmp (flip op) (rel, name) c
      | _ -> ())
    (conjuncts pred []);
  Hashtbl.fold (fun _ (lo, hi) acc -> acc || lo > hi) bounds false

let intervals stats alg =
  let open Interval in
  let is_true = function Expr.Const (Value.Bool true) -> true | _ -> false in
  let is_false = function Expr.Const (Value.Bool false) -> true | _ -> false in
  let ndv_product origins cols =
    let ndvs =
      List.map
        (fun (rel, name) ->
          match rel with
          | Some alias -> ndv_of stats origins (Expr.Attr (Some alias, name))
          | None -> None)
        cols
    in
    if List.exists Option.is_none ndvs then None
    else Some (List.fold_left (fun acc n -> acc *. Option.get n) 1.0 ndvs)
  in
  let rec go rev_path alg =
    let rev_path = Algebra.node_label alg :: rev_path in
    let path = List.rev rev_path in
    let sub slot x = go (match slot with "" -> rev_path | s -> s :: rev_path) x in
    let node ival children origins =
      ({ op = Eval.node_label alg; path; ival; children }, origins)
    in
    match alg with
    | Algebra.Table name -> (
      match Stats.table_rows_opt stats name with
      | Some rows -> node (exact rows) [] [ (name, name) ]
      | None -> node top [] [])
    | Algebra.Rename (alias, x) ->
      let t, _ = sub "" x in
      let origins = match x with Algebra.Table tbl -> [ (alias, tbl) ] | _ -> [] in
      node t.ival [ t ] origins
    | Algebra.Select (e, x) ->
      let t, origins = sub "" x in
      let ival =
        if is_false e || unsatisfiable e then exact 0.0
        else if is_true e then t.ival
        else v 0.0 t.ival.hi
      in
      node ival [ t ] origins
    | Algebra.Project (_, x) | Algebra.Add_rownum (_, x) ->
      (* Output columns may be computed: keep the cardinality, drop the
         origins so downstream distinct-count lookups cannot alias a
         derived column to a base column. *)
      let t, _ = sub "" x in
      node t.ival [ t ] []
    | Algebra.Project_rel (_, x) ->
      let t, origins = sub "" x in
      node t.ival [ t ] origins
    | Algebra.Project_cols { distinct; input; cols } ->
      let t, origins = sub "" input in
      if not distinct then node t.ival [ t ] origins
      else
        let lo = if t.ival.lo > 0.0 then 1.0 else 0.0 in
        let hi =
          match ndv_product origins cols with
          | Some p -> Float.min t.ival.hi p
          | None -> t.ival.hi
        in
        node (v lo hi) [ t ] origins
    | Algebra.Distinct x ->
      let t, origins = sub "" x in
      let lo = if t.ival.lo > 0.0 then 1.0 else 0.0 in
      node (v lo t.ival.hi) [ t ] origins
    | Algebra.Product (l, r) ->
      let lt, lo_ = sub "left" l and rt, ro = sub "right" r in
      node (v (lt.ival.lo *. rt.ival.lo) (lt.ival.hi *. rt.ival.hi)) [ lt; rt ] (lo_ @ ro)
    | Algebra.Join { kind; cond; left; right } ->
      let lt, lo_ = sub "left" left and rt, ro = sub "right" right in
      let origins = lo_ @ ro in
      let li = lt.ival and ri = rt.ival in
      let ival =
        match kind with
        | Algebra.Inner ->
          let lo = if is_true cond then li.lo *. ri.lo else 0.0 in
          v lo (li.hi *. ri.hi)
        | Algebra.Left_outer ->
          (* Every left row appears at least once; at most once per
             matching right row. *)
          v li.lo (li.hi *. Float.max 1.0 ri.hi)
        | Algebra.Semi ->
          let lo = if is_true cond && ri.lo > 0.0 then li.lo else 0.0 in
          v lo li.hi
        | Algebra.Anti ->
          let lo = if ri.hi = 0.0 then li.lo else 0.0 in
          v lo li.hi
      in
      node ival [ lt; rt ] origins
    | Algebra.Group_by { keys; input; _ } ->
      let t, origins = sub "" input in
      let lo = if t.ival.lo > 0.0 then 1.0 else 0.0 in
      let hi =
        match ndv_product origins keys with
        | Some p -> Float.min t.ival.hi p
        | None -> t.ival.hi
      in
      node (v lo hi) [ t ] origins
    | Algebra.Aggregate_all (_, x) ->
      let t, _ = sub "" x in
      node (exact 1.0) [ t ] []
    | Algebra.Md { base; detail; _ } ->
      (* A GMDJ emits exactly one output row per base row (Thm 4.1). *)
      let bt, bo = sub "base" base and dt, _ = sub "detail" detail in
      node bt.ival [ bt; dt ] bo
    | Algebra.Md_completed { base; detail; completion; _ } ->
      (* Completion may kill base rows; without kill/require rules every
         base row survives. *)
      let bt, bo = sub "base" base and dt, _ = sub "detail" detail in
      let lo =
        if completion.Gmdj.kill_when = [] && completion.Gmdj.require_fired = [] then
          bt.ival.lo
        else 0.0
      in
      node (v lo bt.ival.hi) [ bt; dt ] bo
    | Algebra.Union_all (l, r) ->
      let lt, _ = sub "left" l and rt, _ = sub "right" r in
      node (v (lt.ival.lo +. rt.ival.lo) (lt.ival.hi +. rt.ival.hi)) [ lt; rt ] []
    | Algebra.Diff_all (l, r) ->
      let lt, _ = sub "left" l and rt, _ = sub "right" r in
      node (v (Float.max 0.0 (lt.ival.lo -. rt.ival.hi)) lt.ival.hi) [ lt; rt ] []
  in
  fst (go [] alg)

type certificate = {
  bound : float;
  spill_bound : float;
  argmax_op : string;
  argmax_path : string list;
  argmax_rows : float;
  tree : Interval.tree;
}

(* Certified memory height: the {!memory_height_spill} recursion run
   over interval {e upper} bounds instead of point estimates, so the
   result is a sound ceiling on the executor's peak resident rows
   whenever the true per-operator cardinalities respect their intervals.
   The argmax records which breaker holds the largest certified live set
   — the operator an admission rejection should point at. *)
let memory_height_certified stats ~config alg =
  let tree = intervals stats alg in
  let budget = Option.map float_of_int config.Eval.spill_budget_rows in
  let spilled = ref 0.0 in
  let cap r =
    match budget with
    | None -> r
    | Some b ->
      if r > b then begin
        spilled := !spilled +. (r -. b);
        b
      end
      else r
  in
  let best = ref (0.0, "<streaming>", ([] : string list)) in
  let note v t =
    let b, _, _ = !best in
    if v > b then best := (v, t.Interval.op, t.Interval.path)
  in
  let hi (t : Interval.tree) = t.Interval.ival.Interval.hi in
  let mat sub t =
    match sub with
    | Algebra.Table _ | Algebra.Rename (_, Algebra.Table _) -> 0.0
    | _ -> hi t
  in
  let child1 t = match t.Interval.children with [ c ] -> c | _ -> assert false in
  let child2 t =
    match t.Interval.children with [ a; b ] -> (a, b) | _ -> assert false
  in
  let rec h alg t =
    match alg with
    | Algebra.Table _ -> 0.0
    | Algebra.Rename (_, x)
    | Algebra.Select (_, x)
    | Algebra.Project (_, x)
    | Algebra.Project_rel (_, x)
    | Algebra.Add_rownum (_, x) ->
      h x (child1 t)
    | Algebra.Project_cols { distinct; input; _ } ->
      if distinct then begin
        let live = cap (hi t) in
        note live t;
        Float.max (h input (child1 t)) live
      end
      else h input (child1 t)
    | Algebra.Distinct x ->
      let live = cap (hi t) in
      note live t;
      Float.max (h x (child1 t)) live
    | Algebra.Group_by { input; _ } ->
      let live = cap (hi t) in
      note live t;
      Float.max (h input (child1 t)) live
    | Algebra.Aggregate_all (_, x) -> Float.max (h x (child1 t)) 1.0
    | Algebra.Union_all (l, r) ->
      let lt, rt = child2 t in
      Float.max (h l lt) (h r rt)
    | Algebra.Join { cond; left = l; right = r; _ }
      when budget <> None && join_partitionable cond ->
      let lt, rt = child2 t in
      let ml = cap (mat l lt) and mr = cap (mat r rt) in
      let live = ml +. mr +. hi t in
      note live t;
      Float.max (h l lt) (Float.max (ml +. h r rt) live)
    | Algebra.Product (l, r) | Algebra.Join { left = l; right = r; _ } | Algebra.Diff_all (l, r)
      ->
      let lt, rt = child2 t in
      let ml = mat l lt and mr = mat r rt in
      let live = ml +. mr +. hi t in
      note live t;
      Float.max (h l lt) (Float.max (ml +. h r rt) live)
    | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ } ->
      let bt, dt = child2 t in
      let mb = mat base bt in
      let live = mb +. hi t in
      note live t;
      Float.max (h base bt) (Float.max (mb +. h detail dt) live)
  in
  let bound = h alg tree in
  let argmax_rows, argmax_op, argmax_path = !best in
  { bound; spill_bound = !spilled; argmax_op; argmax_path; argmax_rows; tree }
