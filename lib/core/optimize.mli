(** GMDJ optimizations for subquery plans (Section 4).

    - {e Coalescing} (Prop. 4.1): a chain of GMDJs over the same detail
      occurrence merges into a single GMDJ — multiple subqueries over
      one table are then evaluated in a single scan of that table.
      Includes the selection push-up variant of Example 4.1 (a
      count-selection sitting between two coalescible GMDJs is hoisted
      above the merged operator; valid because the GMDJ extends rows
      independently, so it commutes with selection on its base).
    - {e Selection push-down}: adjacent selections merge; selections
      over products and inner joins distribute their single-side
      conjuncts and turn residual product conditions into joins; and
      selections whose conjuncts mention only base-side aliases commute
      below a GMDJ (the law tested in the algebra suite) — so join
      predicates of a multi-relation FROM filter the base-values table
      before the detail scan, and the remaining count-conditions are
      left in shape for completion.
    - {e Completion} (Thms 4.1/4.2): a selection over count columns of a
      GMDJ is compiled into kill / require-fired rules evaluated inside
      the scan ([Md_completed]); when the surrounding projection also
      discards the aggregate columns, aggregate maintenance is skipped
      entirely and the scan can terminate as soon as every base tuple is
      decided. *)

type flags = { coalesce : bool; pushdown : bool; completion : bool }

val all : flags

val none : flags

val only : ?coalesce:bool -> ?pushdown:bool -> ?completion:bool -> unit -> flags
(** All flags default to [false]. *)

val optimize : ?flags:flags -> Algebra.t -> Algebra.t
(** Apply the enabled rewrites bottom-up to a fixpoint.  Semantics are
    preserved for every flag combination. *)

val set_self_check :
  (label:string -> before:Algebra.t -> after:Algebra.t -> unit) -> unit
(** Install a rewrite checker: every {!optimize} call hands it the plan
    before and after rewriting.  [Subql_analysis.Verify] registers a
    checker asserting the rewrite preserved the inferred schema and only
    narrowed nullability; the hook lives here (not in the analyzer)
    because the analyzer depends on this library. *)

val clear_self_check : unit -> unit

val map_children : (Algebra.t -> Algebra.t) -> Algebra.t -> Algebra.t
(** Apply a function to the immediate children of a node (generic
    one-level traversal, exported for plan rewriters). *)

val requalify_blocks :
  from_alias:string ->
  to_alias:string ->
  Subql_gmdj.Gmdj.block list ->
  Subql_gmdj.Gmdj.block list
(** Rewrite every θ and aggregate argument of the blocks to reference the
    detail relation under a different alias — the alias adjustment of the
    Prop. 4.1 merge, exported for the cross-query sharing layer which
    performs the same merge over GMDJs from {e different} queries. *)
