(** A cost model for the extended algebra.

    The paper's conclusion observes that GMDJ evaluation "has a
    well-defined cost" and is therefore easy to put under a cost-based
    optimizer that selects between joins, set-difference and GMDJs.
    This module provides that model: cardinality estimation with
    textbook selectivity heuristics plus per-operator cost formulas for
    both physical strategies (hash vs nested loop, hash-partitioned GMDJ
    vs full scan).

    Cardinalities are estimated from per-table statistics (row counts
    and per-column distinct counts, computed exactly over the in-memory
    catalog).  Estimates are heuristic — their purpose is plan {e
    choice}, not precision; see {!Planner}. *)

open Subql_relational

module Stats : sig
  type t

  val of_catalog : Catalog.t -> t
  (** Exact row counts and per-column distinct counts for every table. *)

  val table_rows : t -> string -> float
  (** Defaults to 1000.0 for unknown tables. *)

  val table_rows_opt : t -> string -> float option
  (** [None] for tables absent from the statistics — the sound
      counterpart of {!table_rows}'s guess. *)

  val column_distinct : t -> table:string -> column:string -> float option
end

type estimate = {
  rows : float;  (** estimated output cardinality *)
  cost : float;  (** accumulated work in tuple-operation units *)
}

val estimate : Stats.t -> config:Eval.config -> Algebra.t -> estimate
(** Estimate the given plan under the given physical configuration. *)

val memory_height : Stats.t -> config:Eval.config -> Algebra.t -> float
(** Estimated peak rows the streaming executor holds materialized while
    running the plan — the planning-time counterpart of the measured
    ["eval.peak_materialized_rows"] gauge.  Streaming operators (Select,
    Project, Rename, Add_rownum, Union_all, the GMDJ detail side) add
    nothing of their own; pipeline breakers charge their materialized
    inputs plus their output; tables (and aliases over tables) are
    zero-copy inputs and free.  Heuristic, like {!estimate}. *)

val memory_height_spill : Stats.t -> config:Eval.config -> Algebra.t -> float * float
(** [(resident, spilled)] under the config's spill budget: breaker state
    the spilling operators bound (DISTINCT / GROUP BY hash state,
    equi-join inputs) is capped at [spill_budget_rows], with the excess
    accumulated as predicted spill volume in rows — disk, not resident
    memory.  With no budget configured, equals
    [(memory_height ..., 0.0)].  Admission gates on the resident
    component ({!Subql_server.Admission}); the spill component prices
    the temp-file I/O the plan would do instead. *)

val selectivity : Stats.t -> origins:(string * string) list -> Expr.t -> float
(** Predicate selectivity.  [origins] maps relation aliases to base
    tables so equality on a column with a known distinct count can use
    1/ndv; other equalities are 0.1, ranges 0.33, conjunction
    multiplies, disjunction adds (capped), negation complements.
    Clamped to [\[1e-6, 1.0\]]. *)

(** {1 Certified cardinality intervals}

    Where {!estimate} picks a plausible point, the interval analysis
    computes {e sound} per-operator [\[lo, hi\]] row bounds by abstract
    interpretation over the plan: exact catalog cardinalities at the
    leaves, selections widening only the lower bound (no guessed
    selectivities) — except that a predicate whose integer comparisons
    pin an attribute to an empty value range is {e proven} dead and
    collapses to [\[0, 0\]] — outer joins and GMDJ completion widening
    conservatively, and distinct-count products — genuine upper bounds
    on group counts — providing the only other narrowing.  These bounds back
    the admission controller's certified memory ceiling and the fuzz
    containment property (observed rows ∈ certified interval, in every
    execution mode). *)

module Interval : sig
  type t = { lo : float; hi : float }

  val v : float -> float -> t
  (** [v lo hi], clamped to [0 <= lo <= hi]. *)

  val exact : float -> t

  val top : t
  (** [\[0, ∞)] — the no-information interval (unknown table). *)

  val contains : t -> float -> bool
  (** Membership with a small float tolerance. *)

  val is_finite : t -> bool

  val fmt_bound : float -> string
  (** One bound: integral values exactly, ["inf"] for infinity. *)

  val to_string : t -> string
  (** [\[lo, hi\]] with integral bounds printed exactly, [inf] for the
      unbounded top. *)

  val pp : Format.formatter -> t -> unit

  type tree = {
    op : string;  (** display label, as in EXPLAIN ({!Eval.node_label}) *)
    path : string list;  (** plan path from the root, [Typing]-style *)
    ival : t;
    children : tree list;  (** positionally aligned with {!Eval.children} *)
  }
end

val intervals : Stats.t -> Algebra.t -> Interval.tree
(** Sound per-operator cardinality intervals for the plan.  The tree
    mirrors the plan shape ({!Eval.children} order), so it zips
    positionally against {!Eval.eval_analyzed}'s measured
    [Explain.node] tree. *)

type certificate = {
  bound : float;  (** certified peak resident rows (sound upper bound) *)
  spill_bound : float;
      (** certified rows pushed to temp heap files under the config's
          spill budget; [0] with no budget *)
  argmax_op : string;  (** breaker holding the largest certified live set *)
  argmax_path : string list;
  argmax_rows : float;  (** that breaker's certified live rows *)
  tree : Interval.tree;  (** the per-operator intervals the bound came from *)
}

val memory_height_certified : Stats.t -> config:Eval.config -> Algebra.t -> certificate
(** The {!memory_height_spill} recursion evaluated over interval upper
    bounds instead of point estimates: a sound ceiling on peak resident
    rows whenever true cardinalities respect their intervals.  Infinite
    when the plan reads a table the statistics don't cover.  The argmax
    names the pipeline breaker that dominates the bound — what an
    [ADM001] rejection should point at. *)
