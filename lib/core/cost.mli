(** A cost model for the extended algebra.

    The paper's conclusion observes that GMDJ evaluation "has a
    well-defined cost" and is therefore easy to put under a cost-based
    optimizer that selects between joins, set-difference and GMDJs.
    This module provides that model: cardinality estimation with
    textbook selectivity heuristics plus per-operator cost formulas for
    both physical strategies (hash vs nested loop, hash-partitioned GMDJ
    vs full scan).

    Cardinalities are estimated from per-table statistics (row counts
    and per-column distinct counts, computed exactly over the in-memory
    catalog).  Estimates are heuristic — their purpose is plan {e
    choice}, not precision; see {!Planner}. *)

open Subql_relational

module Stats : sig
  type t

  val of_catalog : Catalog.t -> t
  (** Exact row counts and per-column distinct counts for every table. *)

  val table_rows : t -> string -> float
  (** Defaults to 1000.0 for unknown tables. *)

  val column_distinct : t -> table:string -> column:string -> float option
end

type estimate = {
  rows : float;  (** estimated output cardinality *)
  cost : float;  (** accumulated work in tuple-operation units *)
}

val estimate : Stats.t -> config:Eval.config -> Algebra.t -> estimate
(** Estimate the given plan under the given physical configuration. *)

val memory_height : Stats.t -> config:Eval.config -> Algebra.t -> float
(** Estimated peak rows the streaming executor holds materialized while
    running the plan — the planning-time counterpart of the measured
    ["eval.peak_materialized_rows"] gauge.  Streaming operators (Select,
    Project, Rename, Add_rownum, Union_all, the GMDJ detail side) add
    nothing of their own; pipeline breakers charge their materialized
    inputs plus their output; tables (and aliases over tables) are
    zero-copy inputs and free.  Heuristic, like {!estimate}. *)

val memory_height_spill : Stats.t -> config:Eval.config -> Algebra.t -> float * float
(** [(resident, spilled)] under the config's spill budget: breaker state
    the spilling operators bound (DISTINCT / GROUP BY hash state,
    equi-join inputs) is capped at [spill_budget_rows], with the excess
    accumulated as predicted spill volume in rows — disk, not resident
    memory.  With no budget configured, equals
    [(memory_height ..., 0.0)].  Admission gates on the resident
    component ({!Subql_server.Admission}); the spill component prices
    the temp-file I/O the plan would do instead. *)

val selectivity : Stats.t -> origins:(string * string) list -> Expr.t -> float
(** Predicate selectivity.  [origins] maps relation aliases to base
    tables so equality on a column with a known distinct count can use
    1/ndv; other equalities are 0.1, ranges 0.33, conjunction
    multiplies, disjunction adds (capped), negation complements.
    Clamped to [\[1e-6, 1.0\]]. *)
