(** Cost-based plan selection between the subquery evaluation
    strategies (the cost-based framework sketched in the paper's
    conclusion).

    For a nested query the planner enumerates the available complete
    plans — the optimized GMDJ translation, the classical semi-/anti-
    join unnesting when applicable, and the general outer-join
    expansion — estimates each with {!Cost}, and picks the cheapest.
    Every candidate computes the same result, so the choice only
    affects performance. *)

open Subql_relational

type candidate = {
  label : string;  (** "gmdj", "semijoin-unnest", or "outerjoin-unnest" *)
  plan : Algebra.t;
  estimate : Cost.estimate;
}

val candidates :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> candidate list
(** All available plans with their estimates, cheapest first.
    The unnesting candidates are produced lazily by callbacks registered
    with {!set_unnest_providers} (breaking the library cycle with
    [subql_unnest]); without providers only the GMDJ plan is offered. *)

val choose :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> candidate
(** The cheapest candidate. *)

val parallel_config :
  ?domains:int ->
  ?mem_budget_rows:int ->
  Cost.Stats.t ->
  Eval.config ->
  Algebra.t ->
  Eval.config
(** Pick the plan's execution mode at plan time: the degree of
    parallelism from its estimated work — plans under a small-work
    threshold stay serial, an exchange would be pure overhead —
    capped at [domains] (default
    [min (Domain.recommended_domain_count ()) 4]); and the spill point
    from its {!Cost.memory_height} against [mem_budget_rows] — the
    budget becomes [spill_budget_rows] only when the in-memory plan
    would exceed it, so fitting plans keep their plain hash state.
    Publishes ["planner.domains"] and ["planner.spill_budget_rows"]
    gauges.  @raise Invalid_argument if [domains <= 0]. *)

type feedback = {
  candidate : candidate;  (** the plan that ran *)
  actual_rows : int;
  q_error : float;
      (** [max(est/actual, actual/est)] with both clamped to ≥ 1 — the
          standard cardinality-estimation error factor *)
}
(** Cost-model feedback: what the planner predicted vs what happened.
    Recorded into {!Subql_obs.Metrics.default} (["planner.runs"],
    ["planner.chosen.<label>"], ["planner.last_estimated_rows"],
    ["planner.last_actual_rows"], and the ["planner.q_error"]
    histogram) so estimation error is measurable across a workload. *)

val run_with_feedback :
  ?config:Eval.config ->
  Catalog.t ->
  Subql_nested.Nested_ast.query ->
  Relation.t * feedback
(** Choose, evaluate, and report estimated-vs-actual for the chosen
    plan. *)

val validate :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> feedback list
(** Run {e every} candidate and report per-candidate estimated-vs-actual
    rows (all candidates return the same relation, so this measures the
    estimator, not the plans).  Expensive — meant for cost-model
    calibration, not query serving. *)

val run :
  ?config:Eval.config -> Catalog.t -> Subql_nested.Nested_ast.query -> Relation.t
(** Choose and evaluate ([run_with_feedback] minus the report). *)

val set_unnest_providers :
  semijoin:(Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option) ->
  outerjoin:(Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option) ->
  unit
(** Called once by [Subql_unnest] at load time. *)

type result_cache = {
  cache_lookup : Subql_nested.Nested_ast.query -> Relation.t option;
  cache_store :
    Subql_nested.Nested_ast.query -> cost:float -> Relation.t -> bool;
}
(** The multi-query result cache, seen from the planner as two opaque
    callbacks (the fingerprinting and eviction policy live in
    [Subql_mqo], which sits above this library). *)

val set_result_cache : result_cache -> unit
(** Install a result cache: {!run_with_feedback} (and {!run}) first
    consult [cache_lookup] — a hit is reported as a zero-cost ["cache"]
    candidate and returned without planning — and on a miss offer the
    evaluated result to [cache_store] together with the chosen plan's
    estimated cost.  [Subql_mqo.Batch.install_planner_cache] is the
    intended caller. *)

val clear_result_cache : unit -> unit
(** Detach the cache; subsequent runs plan and evaluate normally. *)

type plan_verifier =
  Catalog.t -> Subql_nested.Nested_ast.query -> label:string -> Algebra.t -> Diag.t list
(** A plan soundness check: given the source query and a candidate plan,
    return diagnostics (errors mean "reject this plan").
    [Subql_analysis.Verify] registers one that re-runs schema and
    nullability inference over the candidate. *)

val set_plan_verifier : plan_verifier -> unit
(** Install the verifier used by the self-check gate. *)

val clear_plan_verifier : unit -> unit

type merge_certifier = Algebra.t -> Diag.t list
(** A parallel-merge lawfulness check: return the PAR diagnostics for
    aggregates in the plan whose accumulator merge is not a commutative
    monoid (error severity means "unsafe under an exchange").
    [Subql_analysis.Verify.install_planner_gate] registers
    [Subql_analysis.Mergeable.certify_plan]. *)

val set_merge_certifier : merge_certifier -> unit
(** Install the certifier consulted by {!parallel_config}: when the
    resolved degree of parallelism exceeds 1 and the certifier reports
    an error, the configuration raises {!Diag.Fail} with that
    diagnostic (counted in ["planner.merge_certificate.rejected"])
    instead of silently computing a wrong merge.  Serial plans are never
    refused. *)

val clear_merge_certifier : unit -> unit

val set_self_check : bool -> unit
(** Enable/disable the planner self-check gate (off by default).  When
    on and a verifier is installed, {!candidates} drops every candidate
    whose verification reports an error-severity diagnostic — counted in
    the ["planner.self_check.rejected.<label>"] metrics — and raises
    {!Diag.Fail} if no candidate survives (the GMDJ reference
    translation is sound by construction, so an empty survivor set is an
    analyzer/translator disagreement, not a user error). *)

val self_check_enabled : unit -> bool
