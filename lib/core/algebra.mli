(** The extended relational algebra: classical operators plus the GMDJ.

    This is the target language of the SubqueryToGMDJ translation and of
    the join-unnesting baseline; expressions here contain {e no} nested
    subqueries.  [Md] is the GMDJ of Definition 2.1; [Md_completed] is a
    GMDJ fused with the completion rules the optimizer derived from an
    enclosing selection (Section 4.2). *)

open Subql_relational
open Subql_gmdj

type join_kind = Inner | Left_outer | Semi | Anti

type t =
  | Table of string
  | Rename of string * t  (** alias: requalify all attributes *)
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t  (** computed, unqualified outputs *)
  | Project_cols of { cols : (string option * string) list; distinct : bool; input : t }
  | Project_rel of string list * t
      (** keep exactly the columns qualified with one of the given
          aliases — used to drop auxiliary count columns after subquery
          evaluation *)
  | Add_rownum of string * t
  | Product of t * t
  | Join of { kind : join_kind; cond : Expr.t; left : t; right : t }
  | Group_by of { keys : (string option * string) list; aggs : Aggregate.spec list; input : t }
  | Aggregate_all of Aggregate.spec list * t
  | Md of { base : t; detail : t; blocks : Gmdj.block list }
  | Md_completed of {
      base : t;
      detail : t;
      blocks : Gmdj.block list;
      completion : Gmdj.completion;
    }
      (** [σ[C](MD(base, detail, blocks))] with [C] compiled into
          completion rules; survivors only. *)
  | Union_all of t * t
  | Diff_all of t * t
  | Distinct of t

val schema_of : lookup:(string -> Schema.t) -> t -> Schema.t
(** Output schema; [lookup] resolves base-table names. *)

val schema_diag : lookup:(string -> Schema.t) -> t -> (Schema.t, Diag.t) result
(** Exception-free {!schema_of}: inference failures come back as a
    structured diagnostic ([SCH001]–[SCH004], [TYP001]/[TYP002]) whose
    [path] names the offending plan node — the entry point the static
    analyzer builds on.  [schema_of] is this plus re-raising the legacy
    exception. *)

val node_label : t -> string
(** The operator name used in diagnostic plan paths ("Select", "Md", …). *)

val equal : t -> t -> bool
(** Structural equality. *)

val detail_alias : t -> string option
(** The alias naming a relation occurrence: [Some a] for [Rename (a, _)],
    [None] otherwise.  Used by the coalescing rule. *)

val same_occurrence_modulo_alias : t -> t -> bool
(** Are the two expressions the same relation occurrence up to their
    outermost alias?  (Prop. 4.1's "same underlying table" test.) *)

val pp : Format.formatter -> t -> unit
(** Multi-line indented plan rendering. *)
