open Subql_relational
open Subql_gmdj

type join_kind = Inner | Left_outer | Semi | Anti

type t =
  | Table of string
  | Rename of string * t
  | Select of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Project_cols of { cols : (string option * string) list; distinct : bool; input : t }
  | Project_rel of string list * t
  | Add_rownum of string * t
  | Product of t * t
  | Join of { kind : join_kind; cond : Expr.t; left : t; right : t }
  | Group_by of { keys : (string option * string) list; aggs : Aggregate.spec list; input : t }
  | Aggregate_all of Aggregate.spec list * t
  | Md of { base : t; detail : t; blocks : Gmdj.block list }
  | Md_completed of {
      base : t;
      detail : t;
      blocks : Gmdj.block list;
      completion : Gmdj.completion;
    }
  | Union_all of t * t
  | Diff_all of t * t
  | Distinct of t

(* Schema inference.

   [schema_diag] is the primary implementation: failures come back as a
   structured {!Diag.t} carrying the plan path of the offending node
   instead of a bare exception.  [schema_of] is the legacy wrapper that
   re-raises the historical exceptions. *)

let ( let* ) = Result.bind

let node_label = function
  | Table _ -> "Table"
  | Rename _ -> "Rename"
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Project_cols _ -> "ProjectCols"
  | Project_rel _ -> "ProjectRel"
  | Add_rownum _ -> "AddRownum"
  | Product _ -> "Product"
  | Join _ -> "Join"
  | Group_by _ -> "GroupBy"
  | Aggregate_all _ -> "AggregateAll"
  | Md _ -> "Md"
  | Md_completed _ -> "MdCompleted"
  | Union_all _ -> "UnionAll"
  | Diff_all _ -> "DiffAll"
  | Distinct _ -> "Distinct"

(* Convert the exceptions the node-local schema operations may raise into
   diagnostics located at [path]. *)
let guard ~path f =
  try f () with
  | Catalog.Unknown_table t ->
    Error (Diag.error ~path ~subject:t ~code:"SCH004" ("unknown table " ^ t))
  | Schema.Unknown_attribute a ->
    Error (Diag.error ~path ~subject:a ~code:"SCH001" ("unknown attribute " ^ a))
  | Schema.Ambiguous_attribute a ->
    Error (Diag.error ~path ~subject:a ~code:"SCH002" ("ambiguous attribute " ^ a))
  | Invalid_argument m -> Error (Diag.error ~path ~code:"SCH003" m)
  | Value.Type_error m -> Error (Diag.error ~path ~code:"TYP002" m)

let rec schema_d ~lookup rev_path alg =
  let rev_path = node_label alg :: rev_path in
  let path = List.rev rev_path in
  let sub slot x =
    schema_d ~lookup (match slot with "" -> rev_path | s -> s :: rev_path) x
  in
  match alg with
  | Table name -> guard ~path (fun () -> Ok (lookup name))
  | Rename (alias, x) ->
    let* s = sub "" x in
    Ok (Schema.rename_rel alias s)
  | Select (_, x) | Distinct x -> sub "" x
  | Project (exprs, x) ->
    let* s = sub "" x in
    let* attrs =
      List.fold_left
        (fun acc (e, name) ->
          let* acc = acc in
          let* ty = Expr.infer_diag ~path [| s |] e in
          let ty = match ty with Some ty -> ty | None -> Value.Tint in
          Ok (Schema.attr name ty :: acc))
        (Ok []) exprs
    in
    guard ~path (fun () -> Ok (Schema.of_list (List.rev attrs)))
  | Project_cols { cols; input; _ } ->
    let* s = sub "" input in
    guard ~path (fun () ->
        let idxs =
          Array.of_list (List.map (fun (rel, name) -> Schema.find s ?rel name) cols)
        in
        Ok (Schema.project s idxs))
  | Project_rel (aliases, x) ->
    let* s = sub "" x in
    let keep = List.filter (fun a -> List.mem a.Schema.rel aliases) (Schema.to_list s) in
    guard ~path (fun () -> Ok (Schema.of_list keep))
  | Add_rownum (name, x) ->
    let* s = sub "" x in
    Ok (Schema.concat s [| Schema.attr name Value.Tint |])
  | Product (l, r) ->
    let* ls = sub "left" l in
    let* rs = sub "right" r in
    Ok (Schema.concat ls rs)
  | Join { kind; left; right; _ } -> (
    let* ls = sub "left" left in
    match kind with
    | Inner | Left_outer ->
      let* rs = sub "right" right in
      Ok (Schema.concat ls rs)
    | Semi | Anti -> Ok ls)
  | Group_by { keys; aggs; input } ->
    let* s = sub "" input in
    guard ~path (fun () ->
        let idxs =
          Array.of_list (List.map (fun (rel, name) -> Schema.find s ?rel name) keys)
        in
        let key_schema = Schema.project s idxs in
        let agg_attrs =
          List.map
            (fun spec -> Schema.attr spec.Aggregate.name (Aggregate.output_ty [| s |] spec))
            aggs
        in
        Ok (Schema.concat key_schema (Schema.of_list agg_attrs)))
  | Aggregate_all (aggs, x) ->
    let* s = sub "" x in
    guard ~path (fun () ->
        Ok
          (Schema.of_list
             (List.map
                (fun spec ->
                  Schema.attr spec.Aggregate.name (Aggregate.output_ty [| s |] spec))
                aggs)))
  | Md { base; detail; blocks } | Md_completed { base; detail; blocks; _ } ->
    let* bs = sub "base" base in
    let* ds = sub "detail" detail in
    guard ~path (fun () -> Ok (Gmdj.output_schema ~base:bs ~detail:ds blocks))
  | Union_all (l, _) | Diff_all (l, _) -> sub "left" l

let schema_diag ~lookup alg = schema_d ~lookup [] alg

let schema_of ~lookup alg =
  match schema_diag ~lookup alg with
  | Ok s -> s
  | Error d when d.Diag.code = "SCH004" ->
    raise
      (Catalog.Unknown_table
         (match d.Diag.subject with Some t -> t | None -> d.Diag.message))
  | Error d -> Expr.raise_diag d

let equal_blocks b1 b2 =
  List.length b1 = List.length b2
  && List.for_all2
       (fun x y ->
         Expr.equal x.Gmdj.theta y.Gmdj.theta
         && List.length x.Gmdj.aggs = List.length y.Gmdj.aggs
         && List.for_all2
              (fun (a : Aggregate.spec) (b : Aggregate.spec) ->
                a.name = b.name
                &&
                match a.func, b.func with
                | Aggregate.Count_star, Aggregate.Count_star -> true
                | Aggregate.Count e1, Aggregate.Count e2
                | Aggregate.Sum e1, Aggregate.Sum e2
                | Aggregate.Min e1, Aggregate.Min e2
                | Aggregate.Max e1, Aggregate.Max e2
                | Aggregate.Avg e1, Aggregate.Avg e2
                | Aggregate.First e1, Aggregate.First e2 ->
                  Expr.equal e1 e2
                | ( ( Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _
                    | Aggregate.Min _ | Aggregate.Max _ | Aggregate.Avg _
                    | Aggregate.First _ ),
                    _ ) ->
                  false)
              x.Gmdj.aggs y.Gmdj.aggs)
       b1 b2

let rec equal a b =
  match a, b with
  | Table x, Table y -> x = y
  | Rename (a1, x), Rename (a2, y) -> a1 = a2 && equal x y
  | Select (e1, x), Select (e2, y) -> Expr.equal e1 e2 && equal x y
  | Project (p1, x), Project (p2, y) ->
    List.length p1 = List.length p2
    && List.for_all2 (fun (e1, n1) (e2, n2) -> n1 = n2 && Expr.equal e1 e2) p1 p2
    && equal x y
  | Project_cols c1, Project_cols c2 ->
    c1.cols = c2.cols && c1.distinct = c2.distinct && equal c1.input c2.input
  | Project_rel (a1, x), Project_rel (a2, y) -> a1 = a2 && equal x y
  | Add_rownum (n1, x), Add_rownum (n2, y) -> n1 = n2 && equal x y
  | Product (l1, r1), Product (l2, r2) -> equal l1 l2 && equal r1 r2
  | Join j1, Join j2 ->
    j1.kind = j2.kind && Expr.equal j1.cond j2.cond && equal j1.left j2.left
    && equal j1.right j2.right
  | Group_by g1, Group_by g2 ->
    g1.keys = g2.keys
    && equal_blocks
         [ { Gmdj.aggs = g1.aggs; theta = Expr.bool true } ]
         [ { Gmdj.aggs = g2.aggs; theta = Expr.bool true } ]
    && equal g1.input g2.input
  | Aggregate_all (a1, x), Aggregate_all (a2, y) ->
    equal_blocks
      [ { Gmdj.aggs = a1; theta = Expr.bool true } ]
      [ { Gmdj.aggs = a2; theta = Expr.bool true } ]
    && equal x y
  | Md m1, Md m2 ->
    equal m1.base m2.base && equal m1.detail m2.detail && equal_blocks m1.blocks m2.blocks
  | Md_completed m1, Md_completed m2 ->
    equal m1.base m2.base && equal m1.detail m2.detail && equal_blocks m1.blocks m2.blocks
    && m1.completion.Gmdj.maintain_aggregates = m2.completion.Gmdj.maintain_aggregates
    && List.equal Expr.equal m1.completion.Gmdj.kill_when m2.completion.Gmdj.kill_when
    && List.equal Expr.equal m1.completion.Gmdj.require_fired m2.completion.Gmdj.require_fired
  | Union_all (l1, r1), Union_all (l2, r2) | Diff_all (l1, r1), Diff_all (l2, r2) ->
    equal l1 l2 && equal r1 r2
  | Distinct x, Distinct y -> equal x y
  | ( ( Table _ | Rename _ | Select _ | Project _ | Project_cols _ | Project_rel _
      | Add_rownum _ | Product _ | Join _ | Group_by _ | Aggregate_all _ | Md _
      | Md_completed _ | Union_all _ | Diff_all _ | Distinct _ ),
      _ ) ->
    false

let detail_alias = function Rename (a, _) -> Some a | _ -> None

let same_occurrence_modulo_alias a b =
  match a, b with
  | Rename (_, x), Rename (_, y) -> equal x y
  | _ -> equal a b

let join_kind_to_string = function
  | Inner -> "join"
  | Left_outer -> "left-outer-join"
  | Semi -> "semi-join"
  | Anti -> "anti-join"

let pp_cols ppf cols =
  Format.pp_print_string ppf
    (String.concat ", " (List.map (function None, n -> n | Some r, n -> r ^ "." ^ n) cols))

let pp_aggs ppf aggs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    Aggregate.pp_spec ppf aggs

let rec pp ppf alg =
  match alg with
  | Table name -> Format.fprintf ppf "Table %s" name
  | Rename (alias, x) -> Format.fprintf ppf "Rename %s@;<1 2>@[%a@]" alias pp x
  | Select (e, x) -> Format.fprintf ppf "Select %a@;<1 2>@[%a@]" Expr.pp e pp x
  | Project (exprs, x) ->
    Format.fprintf ppf "Project [%s]@;<1 2>@[%a@]"
      (String.concat ", "
         (List.map (fun (e, n) -> Format.asprintf "%a -> %s" Expr.pp e n) exprs))
      pp x
  | Project_cols { cols; distinct; input } ->
    Format.fprintf ppf "Project%s [%a]@;<1 2>@[%a@]"
      (if distinct then "-distinct" else "")
      pp_cols cols pp input
  | Project_rel (aliases, x) ->
    Format.fprintf ppf "ProjectRel %s@;<1 2>@[%a@]" (String.concat ", " aliases) pp x
  | Add_rownum (name, x) -> Format.fprintf ppf "AddRownum %s@;<1 2>@[%a@]" name pp x
  | Product (l, r) -> Format.fprintf ppf "Product@;<1 2>@[%a@]@;<1 2>@[%a@]" pp l pp r
  | Join { kind; cond; left; right } ->
    Format.fprintf ppf "%s %a@;<1 2>@[%a@]@;<1 2>@[%a@]" (join_kind_to_string kind) Expr.pp
      cond pp left pp right
  | Group_by { keys; aggs; input } ->
    Format.fprintf ppf "GroupBy [%a] aggs [%a]@;<1 2>@[%a@]" pp_cols keys pp_aggs aggs pp
      input
  | Aggregate_all (aggs, x) ->
    Format.fprintf ppf "AggregateAll [%a]@;<1 2>@[%a@]" pp_aggs aggs pp x
  | Md { base; detail; blocks } ->
    Format.fprintf ppf "MD %a@;<1 2>base: @[%a@]@;<1 2>detail: @[%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Gmdj.pp_block)
      blocks pp base pp detail
  | Md_completed { base; detail; blocks; completion } ->
    Format.fprintf ppf "MD-completed %a %a@;<1 2>base: @[%a@]@;<1 2>detail: @[%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Gmdj.pp_block)
      blocks Gmdj.pp_completion completion pp base pp detail
  | Union_all (l, r) -> Format.fprintf ppf "UnionAll@;<1 2>@[%a@]@;<1 2>@[%a@]" pp l pp r
  | Diff_all (l, r) -> Format.fprintf ppf "DiffAll@;<1 2>@[%a@]@;<1 2>@[%a@]" pp l pp r
  | Distinct x -> Format.fprintf ppf "Distinct@;<1 2>@[%a@]" pp x
