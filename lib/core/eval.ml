open Subql_relational
open Subql_gmdj

type config = {
  join_strategy : Ops.join_strategy;
  gmdj_strategy : Gmdj.strategy;
  domains : int;
  spill_budget_rows : int option;
}

let default_config =
  { join_strategy = `Hash; gmdj_strategy = `Hash; domains = 1; spill_budget_rows = None }

let unindexed_config = { default_config with join_strategy = `Nested_loop; gmdj_strategy = `Scan }

let schema catalog alg =
  Algebra.schema_of ~lookup:(fun name -> Relation.schema (Catalog.find catalog name)) alg

type source_provider = string -> Chunk.Source.t option

type exec_report = { chunks : int; peak_materialized_rows : int }

let children = function
  | Algebra.Table _ -> []
  | Algebra.Rename (_, x)
  | Algebra.Select (_, x)
  | Algebra.Project (_, x)
  | Algebra.Project_cols { input = x; _ }
  | Algebra.Project_rel (_, x)
  | Algebra.Add_rownum (_, x)
  | Algebra.Group_by { input = x; _ }
  | Algebra.Aggregate_all (_, x)
  | Algebra.Distinct x ->
    [ x ]
  | Algebra.Product (l, r)
  | Algebra.Join { left = l; right = r; _ }
  | Algebra.Md { base = l; detail = r; _ }
  | Algebra.Md_completed { base = l; detail = r; _ }
  | Algebra.Union_all (l, r)
  | Algebra.Diff_all (l, r) ->
    [ l; r ]

let node_label alg =
  let exprs es = String.concat ", " (List.map Expr.to_string es) in
  match alg with
  | Algebra.Table name -> "Table " ^ name
  | Algebra.Rename (a, _) -> "Rename " ^ a
  | Algebra.Select (e, _) -> "Select " ^ Expr.to_string e
  | Algebra.Project (ps, _) -> Printf.sprintf "Project [%s]" (exprs (List.map fst ps))
  | Algebra.Project_cols { distinct; _ } ->
    if distinct then "Project-distinct" else "Project-cols"
  | Algebra.Project_rel (aliases, _) -> "ProjectRel " ^ String.concat "," aliases
  | Algebra.Add_rownum (n, _) -> "AddRownum " ^ n
  | Algebra.Product _ -> "Product"
  | Algebra.Join { kind; cond; _ } ->
    let k =
      match kind with
      | Algebra.Inner -> "Join"
      | Algebra.Left_outer -> "LeftOuterJoin"
      | Algebra.Semi -> "SemiJoin"
      | Algebra.Anti -> "AntiJoin"
    in
    k ^ " " ^ Expr.to_string cond
  | Algebra.Group_by { keys; _ } ->
    Printf.sprintf "GroupBy [%s]"
      (String.concat ", " (List.map (function None, n -> n | Some r, n -> r ^ "." ^ n) keys))
  | Algebra.Aggregate_all _ -> "AggregateAll"
  | Algebra.Md { blocks; _ } -> Printf.sprintf "MD (%d blocks)" (List.length blocks)
  | Algebra.Md_completed { blocks; completion; _ } ->
    Printf.sprintf "MD-completed (%d blocks%s)" (List.length blocks)
      (if completion.Gmdj.maintain_aggregates then "" else ", aggregate-free")
  | Algebra.Union_all _ -> "UnionAll"
  | Algebra.Diff_all _ -> "DiffAll"
  | Algebra.Distinct _ -> "Distinct"

(* ------------------------------------------------------------------ *)
(* The shared executor skeleton                                         *)
(* ------------------------------------------------------------------ *)

(* Every public entry point is a thin wrapper over one skeleton: a
   single per-node [dispatch] (the only place operator semantics are
   chosen) driven either lazily ([run_stream] — operators exchange
   chunk streams, and only pipeline breakers materialize) or eagerly
   ([run_eager] — every node is materialized so per-operator hooks can
   observe cardinalities, timings and buffer-pool deltas).  Both
   drivers run [dispatch] over {!streamed} values; the eager one simply
   feeds it whole-relation sources, whose {!Chunk.Source.origin}
   shortcut keeps that path copy-free. *)

(* Memory accounting: rows the executor itself holds materialized (an
   operator's collected output, or an input buffered for a blocking
   operator).  Catalog relations, caller-provided overrides and storage
   pages are not counted — they exist regardless of how we execute. *)
type acct = {
  mutable live_rows : int;
  mutable peak_rows : int;
  mutable chunks : int;
}

let acct_create () = { live_rows = 0; peak_rows = 0; chunks = 0 }

let acct_alloc a n =
  a.live_rows <- a.live_rows + n;
  if a.live_rows > a.peak_rows then a.peak_rows <- a.live_rows

let acct_release a n = a.live_rows <- a.live_rows - n

(* Instrumentation hooks.  [on_node_start] fires when a node begins its
   own work (its inputs, under the eager driver, are already complete —
   so deltas snapshotted there are attributable to the node alone);
   [on_chunk] fires per chunk pulled out of a node; [on_node_done]
   folds the node's result and its children's annotations into this
   node's annotation. *)
type 'ann hooks = {
  on_node_start : Algebra.t -> unit;
  on_chunk : Algebra.t -> rows:int -> unit;
  on_node_done : Algebra.t -> Relation.t -> Gmdj.stats option -> 'ann list -> 'ann;
}

type ctx = {
  config : config;
  catalog : Catalog.t;
  sources : source_provider;
  override : Algebra.t -> Relation.t option;
  acct : acct;
  notify_chunk : Algebra.t -> rows:int -> unit;
}

(* A node's output: a chunk stream plus a thunk releasing whatever the
   subtree still holds materialized.  The consumer fires [release] once
   it no longer needs the rows (releases are idempotent). *)
type streamed = { src : Chunk.Source.t; release : unit -> unit }

let no_release () = ()

let once f =
  let fired = ref false in
  fun () ->
    if not !fired then begin
      fired := true;
      f ()
    end

let tap ctx alg src =
  Chunk.Source.tap
    (fun rows ->
      ctx.acct.chunks <- ctx.acct.chunks + 1;
      ctx.notify_chunk alg ~rows)
    src

(* Collect a stream into a relation, accounting the copy — unless the
   stream is an untouched whole-relation source, in which case the rows
   are whoever produced them's responsibility (already accounted if an
   operator emitted them, free if they came from the catalog). *)
let materialize ctx s =
  match Chunk.Source.origin s.src with
  | Some r ->
    Chunk.Source.close s.src;
    (r, s.release)
  | None ->
    let r = Chunk.Source.to_relation s.src in
    let n = Relation.cardinality r in
    acct_alloc ctx.acct n;
    ( r,
      once (fun () ->
          acct_release ctx.acct n;
          s.release ()) )

(* An operator's freshly materialized output, entering the accounting
   until the consumer releases it. *)
let emit ctx alg r =
  let n = Relation.cardinality r in
  acct_alloc ctx.acct n;
  {
    src = tap ctx alg (Chunk.Source.of_relation r);
    release = once (fun () -> acct_release ctx.acct n);
  }

(* Override results must fit where the node's output goes.  The lookup
   failing (unknown table, un-inferable subtree) falls back to the old
   caller's-contract behaviour. *)
let validate_override ctx alg r =
  let lookup name =
    match ctx.sources name with
    | Some s ->
      let sc = Chunk.Source.schema s in
      Chunk.Source.close s;
      sc
    | None -> Relation.schema (Catalog.find ctx.catalog name)
  in
  match (try Algebra.schema_diag ~lookup alg with _ -> Error (Diag.error ~code:"EVL000" "")) with
  | Error _ -> ()
  | Ok expected ->
    let got = Relation.schema r in
    if not (Schema.equal expected got) then
      raise
        (Diag.Fail
           (Diag.error ~code:"EVL001" ~subject:(node_label alg)
              (Format.asprintf
                 "override result schema %a does not match the node's inferred schema %a"
                 Schema.pp got Schema.pp expected)))

(* ------------------------------------------------------------------ *)
(* Pipeline-breaker execution modes                                     *)
(* ------------------------------------------------------------------ *)

(* A spilling breaker bounds its resident state at the configured budget
   and pushes the overflow through temp heap files; its resident
   high-water enters the accounting for the operator's lifetime, so
   [peak_materialized_rows] reports what was actually held rather than
   what a fully in-memory breaker would have needed. *)
let spill_outcome ctx (o : Subql_storage.Spill.outcome) =
  acct_alloc ctx.acct o.Subql_storage.Spill.resident_peak_rows;
  acct_release ctx.acct o.Subql_storage.Spill.resident_peak_rows;
  o.Subql_storage.Spill.result

(* DISTINCT / GROUP BY under the configured execution mode: spilling
   when a budget is set (resident hash state freezes at the budget,
   overflow goes through temp heap files), exchange-parallel when
   [domains > 1] (rows are hash-partitioned on the breaker key, so the
   per-domain states are key-disjoint and their results concatenate),
   serial streaming otherwise. *)
let run_distinct ctx src =
  match ctx.config.spill_budget_rows with
  | Some budget -> spill_outcome ctx (Subql_storage.Spill.distinct ~budget src)
  | None ->
    if ctx.config.domains > 1 then begin
      let schema = Chunk.Source.schema src in
      let rows =
        Chunk.Exchange.fold ~domains:ctx.config.domains ~partition:Tuple.hash
          ~init:(fun _ -> Ops.Distinct_acc.create ())
          ~fold:(fun acc c ->
            Chunk.iter (fun row -> ignore (Ops.Distinct_acc.add acc row)) c;
            acc)
          ~finish:Ops.Distinct_acc.rows src
      in
      Relation.create ~check:false schema (Array.concat rows)
    end
    else Ops.distinct_source src

let run_group_by ctx ~keys ~aggs src =
  match ctx.config.spill_budget_rows with
  | Some budget -> spill_outcome ctx (Subql_storage.Spill.group_by ~budget ~keys ~aggs src)
  | None ->
    if ctx.config.domains > 1 then begin
      let schema = Chunk.Source.schema src in
      (* Compiled once on the coordinator purely to route rows by group
         key; every worker compiles its own aggregate state. *)
      let probe = Ops.Group_acc.create ~schema ~keys ~aggs in
      let rows =
        Chunk.Exchange.fold ~domains:ctx.config.domains
          ~partition:(fun row -> Tuple.hash (Ops.Group_acc.key_of probe row))
          ~init:(fun _ -> Ops.Group_acc.create ~schema ~keys ~aggs)
          ~fold:(fun acc c ->
            Chunk.iter (Ops.Group_acc.step acc) c;
            acc)
          ~finish:(fun acc -> Relation.rows (Ops.Group_acc.result acc))
          src
      in
      Relation.create ~check:false (Ops.Group_acc.out_schema probe) (Array.concat rows)
    end
    else Ops.group_by_source ~keys ~aggs src

let gmdj_trace_attrs ~strategy ~blocks ~base ~completion =
  let base_attrs =
    [
      ( "strategy",
        match strategy with `Reference -> "scan" | `Scan -> "scan" | `Hash -> "hash" );
      ("blocks", string_of_int (List.length blocks));
      ("base_rows", string_of_int (Relation.cardinality base));
      ("detail", "streamed");
    ]
  in
  match completion with
  | None -> base_attrs
  | Some c ->
    base_attrs
    @ [
        ("kill_preds", string_of_int (List.length c.Gmdj.kill_when));
        ("require_preds", string_of_int (List.length c.Gmdj.require_fired));
      ]

(* The one per-node dispatch.  [child] yields each operand's streamed
   value, in [children] order.  Fully pipelined operators pass the
   stream through; blocking operators either consume the stream
   incrementally (Group_by, Distinct — bounded state, no input copy) or
   materialize inputs they must revisit (Join, Product, GMDJ base). *)
let dispatch ctx ?gmdj_stats ~(child : Algebra.t -> streamed) alg =
  match alg with
  | Algebra.Table name -> (
    match ctx.sources name with
    | Some src -> { src = tap ctx alg src; release = no_release }
    | None ->
      {
        src = tap ctx alg (Chunk.Source.of_relation (Catalog.find ctx.catalog name));
        release = no_release;
      })
  | Algebra.Rename (alias, x) -> (
    let c = child x in
    match Chunk.Source.origin c.src with
    | Some r ->
      (* Whole-relation input: rename the header only, keeping the
         origin shortcut (and the rows) intact. *)
      Chunk.Source.close c.src;
      {
        src = tap ctx alg (Chunk.Source.of_relation (Relation.rename alias r));
        release = c.release;
      }
    | None -> { src = tap ctx alg (Ops.rename_source alias c.src); release = c.release })
  | Algebra.Select (e, x) ->
    let c = child x in
    { src = tap ctx alg (Ops.select_source e c.src); release = c.release }
  | Algebra.Project (ps, x) ->
    let c = child x in
    { src = tap ctx alg (Ops.project_source ps c.src); release = c.release }
  | Algebra.Project_cols { cols; distinct; _ } ->
    let c = child (List.hd (children alg)) in
    if distinct then begin
      let r = run_distinct ctx (Ops.project_cols_source cols c.src) in
      c.release ();
      emit ctx alg r
    end
    else { src = tap ctx alg (Ops.project_cols_source cols c.src); release = c.release }
  | Algebra.Project_rel (aliases, x) ->
    let c = child x in
    let s = Chunk.Source.schema c.src in
    let cols =
      List.filter_map
        (fun a ->
          if List.mem a.Schema.rel aliases then Some (Some a.Schema.rel, a.Schema.name)
          else None)
        (Schema.to_list s)
    in
    { src = tap ctx alg (Ops.project_cols_source cols c.src); release = c.release }
  | Algebra.Add_rownum (name, x) ->
    let c = child x in
    { src = tap ctx alg (Ops.add_rownum_source name c.src); release = c.release }
  | Algebra.Product (l, r) ->
    let cl = child l and cr = child r in
    let lrel, lfree = materialize ctx cl in
    let rrel, rfree = materialize ctx cr in
    let out = Ops.product lrel rrel in
    lfree ();
    rfree ();
    emit ctx alg out
  | Algebra.Join { kind; cond; left; right } -> (
    let cl = child left and cr = child right in
    let strategy = ctx.config.join_strategy in
    match ctx.config.spill_budget_rows with
    | Some budget ->
      (* Grace hash join straight off the child streams: neither side is
         materialized here — Spill collects up to the budget and
         hash-partitions the rest to temp heap files. *)
      let kind =
        match kind with
        | Algebra.Inner -> `Inner
        | Algebra.Left_outer -> `Left_outer
        | Algebra.Semi -> `Semi
        | Algebra.Anti -> `Anti
      in
      let out =
        spill_outcome ctx
          (Subql_storage.Spill.join ~budget ~strategy ~kind ~cond ~left:cl.src
             ~right:cr.src ())
      in
      cl.release ();
      cr.release ();
      emit ctx alg out
    | None ->
      let lrel, lfree = materialize ctx cl in
      let rrel, rfree = materialize ctx cr in
      let out =
        match kind with
        | Algebra.Inner -> Ops.join ~strategy cond lrel rrel
        | Algebra.Left_outer -> Ops.left_outer_join ~strategy cond lrel rrel
        | Algebra.Semi -> Ops.semi_join ~strategy cond lrel rrel
        | Algebra.Anti -> Ops.anti_join ~strategy cond lrel rrel
      in
      lfree ();
      rfree ();
      emit ctx alg out)
  | Algebra.Group_by { keys; aggs; _ } ->
    let c = child (List.hd (children alg)) in
    let out = run_group_by ctx ~keys ~aggs c.src in
    c.release ();
    emit ctx alg out
  | Algebra.Aggregate_all (aggs, x) ->
    let c = child x in
    let out = Ops.aggregate_all_source aggs c.src in
    c.release ();
    emit ctx alg out
  | Algebra.Md { blocks; base = b; detail = d } -> (
    let cb = child b in
    let base, bfree = materialize ctx cb in
    let cd = child d in
    let strategy = ctx.config.gmdj_strategy in
    match Chunk.Source.origin cd.src with
    | Some detail ->
      (* Materialized detail: the classic evaluator (its own span and
         registry publication, including the `Reference strategy) — or
         its partitioned twin when parallelism is configured. *)
      Chunk.Source.close cd.src;
      let out =
        if ctx.config.domains > 1 then
          Gmdj.eval_partitioned ~strategy ?stats:gmdj_stats ~domains:ctx.config.domains
            ~base ~detail blocks
        else Gmdj.eval ~strategy ?stats:gmdj_stats ~base ~detail blocks
      in
      cd.release ();
      bfree ();
      emit ctx alg out
    | None when ctx.config.domains > 1 ->
      (* Streamed detail over the exchange: the coordinator pulls chunks
         (storage scans stay single-domain) and [domains] workers fold
         them into per-domain accumulator matrices, merged at the end. *)
      let out =
        Gmdj.Parallel.fold_source ~strategy ?stats:gmdj_stats ~domains:ctx.config.domains
          ~base
          ~detail_schema:(Chunk.Source.schema cd.src)
          cd.src blocks
      in
      cd.release ();
      bfree ();
      emit ctx alg out
    | None ->
      (* Streamed detail: one pass over the chunk stream, |B|
         accumulators of state, never the detail in memory. *)
      let out =
        Subql_obs.Trace.with_
          ~attrs:(gmdj_trace_attrs ~strategy ~blocks ~base ~completion:None)
          "gmdj.eval"
          (fun () ->
            let acc = Gmdj.Fold.start ~strategy ?stats:gmdj_stats ~base
                ~detail:(Chunk.Source.schema cd.src) blocks
            in
            let acc =
              Chunk.Source.fold (fun acc c -> Gmdj.Fold.fold_detail c acc) acc cd.src
            in
            Gmdj.Fold.finish acc)
      in
      cd.release ();
      bfree ();
      emit ctx alg out)
  | Algebra.Md_completed { blocks; completion; base = b; detail = d } -> (
    let cb = child b in
    let base, bfree = materialize ctx cb in
    let cd = child d in
    let strategy = ctx.config.gmdj_strategy in
    match Chunk.Source.origin cd.src with
    | Some detail ->
      Chunk.Source.close cd.src;
      let out =
        if ctx.config.domains > 1 then
          Gmdj.eval_completed_partitioned ~strategy ?stats:gmdj_stats
            ~domains:ctx.config.domains ~completion ~base ~detail blocks
        else
          Gmdj.eval_completed ~strategy ?stats:gmdj_stats ~completion ~base ~detail blocks
      in
      cd.release ();
      bfree ();
      emit ctx alg out
    | None when ctx.config.domains > 1 ->
      (* Streamed detail over the exchange: workers run the completion
         machinery on their shares and the verdicts merge (kill/fire are
         monotone).  The coordinator keeps pulling the whole stream —
         the saturation-driven storage exit below is a serial-only
         refinement. *)
      let out =
        Gmdj.Parallel.fold_completed_source ~strategy ?stats:gmdj_stats
          ~domains:ctx.config.domains ~completion ~base
          ~detail_schema:(Chunk.Source.schema cd.src)
          cd.src blocks
      in
      cd.release ();
      bfree ();
      emit ctx alg out
    | None ->
      let out =
        Subql_obs.Trace.with_
          ~attrs:(gmdj_trace_attrs ~strategy ~blocks ~base ~completion:(Some completion))
          "gmdj.eval_completed"
          (fun () ->
            let acc =
              ref
                (Gmdj.Fold_completed.start ~strategy ?stats:gmdj_stats ~completion ~base
                   ~detail:(Chunk.Source.schema cd.src) blocks)
            in
            (* Saturation turns the early scan exit into an early
               storage exit: stop pulling pages mid-stream. *)
            let rec pull () =
              if Gmdj.Fold_completed.saturated !acc then Chunk.Source.close cd.src
              else
                match Chunk.Source.next cd.src with
                | None -> ()
                | Some c ->
                  acc := Gmdj.Fold_completed.fold_detail c !acc;
                  pull ()
            in
            pull ();
            Gmdj.Fold_completed.finish !acc)
      in
      cd.release ();
      bfree ();
      emit ctx alg out)
  | Algebra.Union_all (l, r) ->
    let cl = child l and cr = child r in
    {
      src = tap ctx alg (Ops.union_all_source cl.src cr.src);
      release =
        once (fun () ->
            cl.release ();
            cr.release ());
    }
  | Algebra.Diff_all (l, r) ->
    let cl = child l and cr = child r in
    let lrel, lfree = materialize ctx cl in
    let rrel, rfree = materialize ctx cr in
    let out = Ops.diff_all lrel rrel in
    lfree ();
    rfree ();
    emit ctx alg out
  | Algebra.Distinct x ->
    let c = child x in
    let out = run_distinct ctx c.src in
    c.release ();
    emit ctx alg out

(* Lazy driver: the plan becomes a tree of chunk streams; work happens
   as the root is drained. *)
let rec run_stream ctx ?gmdj_stats alg =
  match ctx.override alg with
  | Some r ->
    validate_override ctx alg r;
    { src = tap ctx alg (Chunk.Source.of_relation r); release = no_release }
  | None -> dispatch ctx ?gmdj_stats ~child:(fun sub -> run_stream ctx ?gmdj_stats sub) alg

(* Eager driver: children are fully evaluated (and annotated) before
   the node runs, so hooks observe exact per-node deltas.  The node
   itself still goes through [dispatch], fed whole-relation sources. *)
let rec run_eager ctx hooks alg =
  match ctx.override alg with
  | Some r ->
    validate_override ctx alg r;
    hooks.on_node_start alg;
    (r, no_release, hooks.on_node_done alg r None [])
  | None ->
    let kid_results = List.map (fun k -> run_eager ctx hooks k) (children alg) in
    let gmdj_stats =
      match alg with
      | Algebra.Md _ | Algebra.Md_completed _ -> Some (Gmdj.fresh_stats ())
      | _ -> None
    in
    let pending = ref (List.map (fun (r, free, _) -> (r, free)) kid_results) in
    let child _sub =
      match !pending with
      | [] -> invalid_arg "Eval.run_eager: child arity mismatch"
      | (r, free) :: rest ->
        pending := rest;
        { src = Chunk.Source.of_relation r; release = free }
    in
    hooks.on_node_start alg;
    let result, free =
      Subql_obs.Trace.with_ (node_label alg) (fun () ->
          let s = dispatch ctx ?gmdj_stats ~child alg in
          let r, free = materialize ctx s in
          Subql_obs.Trace.add_attr "rows" (string_of_int (Relation.cardinality r));
          (r, free))
    in
    let ann =
      hooks.on_node_done alg result gmdj_stats (List.map (fun (_, _, a) -> a) kid_results)
    in
    (result, free, ann)

let publish_run ctx =
  let open Subql_obs in
  Metrics.(incr ~by:ctx.acct.chunks (counter default "eval.chunks"));
  Metrics.(
    set (gauge default "eval.peak_materialized_rows") (float_of_int ctx.acct.peak_rows));
  Metrics.(set (gauge default "exec.domains") (float_of_int ctx.config.domains))

let no_sources _ = None

let no_override _ = None

let silent_chunk _ ~rows:_ = ()

let make_ctx ?(sources = no_sources) ?(override = no_override)
    ?(notify_chunk = silent_chunk) ~config catalog =
  { config; catalog; sources; override; acct = acct_create (); notify_chunk }

(* ------------------------------------------------------------------ *)
(* Public entry points — thin wrappers over the two drivers            *)
(* ------------------------------------------------------------------ *)

let run_to_relation ctx ?gmdj_stats alg =
  let s = run_stream ctx ?gmdj_stats alg in
  let r, free = materialize ctx s in
  free ();
  publish_run ctx;
  r

let eval ?(config = default_config) ?gmdj_stats catalog alg =
  run_to_relation (make_ctx ~config catalog) ?gmdj_stats alg

let eval_with_overrides ?(config = default_config) ?gmdj_stats ~override catalog alg =
  run_to_relation (make_ctx ~override ~config catalog) ?gmdj_stats alg

let eval_exec ?(config = default_config) ?gmdj_stats ?sources catalog alg =
  let ctx = make_ctx ?sources ~config catalog in
  let r = run_to_relation ctx ?gmdj_stats alg in
  (r, { chunks = ctx.acct.chunks; peak_materialized_rows = ctx.acct.peak_rows })

(* ------------------------------------------------------------------ *)
(* Instrumented evaluation                                              *)
(* ------------------------------------------------------------------ *)

type trace = {
  label : string;
  out_rows : int;
  self_seconds : float;
  children : trace list;
}

(* EXPLAIN ANALYZE: every operator runs inside a trace span and yields a
   {!Subql_obs.Explain.node} carrying what actually happened.  Buffer-
   pool activity is attributed per operator by delta over the registry's
   "storage.buffer_pool.*" counters — children are evaluated before the
   snapshot, so a node only owns its own page traffic. *)

let gmdj_attrs (s : Gmdj.stats) =
  let base =
    [
      ("detail-scans", string_of_int s.Gmdj.detail_passes);
      ("detail-rows", string_of_int s.Gmdj.detail_scanned);
      ("theta-evals", string_of_int s.Gmdj.theta_evals);
    ]
  in
  let blocks =
    match s.Gmdj.block_updates with
    | [||] -> []
    | updates ->
      [
        ( "block-updates",
          String.concat "/" (Array.to_list (Array.map string_of_int updates)) );
      ]
  in
  base @ blocks @ if s.Gmdj.early_exit then [ ("early-exit", "true") ] else []

let eval_analyzed ?(config = default_config) ?(registry = Subql_obs.Metrics.default)
    catalog alg =
  let module M = Subql_obs.Metrics in
  let ops = M.counter registry "eval.operators" in
  let op_seconds = M.histogram registry "eval.operator_seconds" in
  let rows_out_total = M.counter registry "eval.rows_out" in
  let pool_hits () = M.counter_value_by_name registry "storage.buffer_pool.hits" in
  let pool_reads () = M.counter_value_by_name registry "storage.buffer_pool.page_reads" in
  let stack = ref [] in
  let hooks =
    {
      on_node_start =
        (fun _ -> stack := (Unix.gettimeofday (), pool_hits (), pool_reads ()) :: !stack);
      on_chunk = (fun _ ~rows:_ -> ());
      on_node_done =
        (fun alg result gmdj_stats kid_nodes ->
          let t0, hits0, reads0 =
            match !stack with
            | [] -> invalid_arg "Eval.eval_analyzed: unbalanced hooks"
            | x :: rest ->
              stack := rest;
              x
          in
          let elapsed_s = Unix.gettimeofday () -. t0 in
          let rows_out = Relation.cardinality result in
          M.incr ops;
          M.observe op_seconds elapsed_s;
          M.incr ~by:rows_out rows_out_total;
          {
            Subql_obs.Explain.label = node_label alg;
            rows_in =
              List.fold_left (fun acc n -> acc + n.Subql_obs.Explain.rows_out) 0 kid_nodes;
            rows_out;
            calls = 1;
            elapsed_s;
            pool_hits = pool_hits () - hits0;
            pool_reads = pool_reads () - reads0;
            attrs = (match gmdj_stats with Some s -> gmdj_attrs s | None -> []);
            children = kid_nodes;
          });
    }
  in
  let ctx = make_ctx ~config catalog in
  let result, free, node = run_eager ctx hooks alg in
  free ();
  publish_run ctx;
  (result, node)

let eval_traced ?config catalog alg =
  let result, analysis = eval_analyzed ?config catalog alg in
  let rec strip n =
    {
      label = n.Subql_obs.Explain.label;
      out_rows = n.Subql_obs.Explain.rows_out;
      self_seconds = n.Subql_obs.Explain.elapsed_s;
      children = List.map strip n.Subql_obs.Explain.children;
    }
  in
  (result, strip analysis)

let pp_trace ppf trace =
  let rec pp indent t =
    Format.fprintf ppf "%s%-60s %10d rows %9.3f ms@."
      (String.make indent ' ')
      (if String.length t.label > 60 then String.sub t.label 0 57 ^ "..." else t.label)
      t.out_rows (t.self_seconds *. 1000.0);
    List.iter (pp (indent + 2)) t.children
  in
  pp 0 trace
