open Subql_relational
open Subql_gmdj

type config = {
  join_strategy : Ops.join_strategy;
  gmdj_strategy : Gmdj.strategy;
}

let default_config = { join_strategy = `Hash; gmdj_strategy = `Hash }

let unindexed_config = { join_strategy = `Nested_loop; gmdj_strategy = `Scan }

let schema catalog alg =
  Algebra.schema_of ~lookup:(fun name -> Relation.schema (Catalog.find catalog name)) alg

(* Evaluation is split into child enumeration and per-node application so
   the plain and instrumented evaluators share one implementation. *)

let children = function
  | Algebra.Table _ -> []
  | Algebra.Rename (_, x)
  | Algebra.Select (_, x)
  | Algebra.Project (_, x)
  | Algebra.Project_cols { input = x; _ }
  | Algebra.Project_rel (_, x)
  | Algebra.Add_rownum (_, x)
  | Algebra.Group_by { input = x; _ }
  | Algebra.Aggregate_all (_, x)
  | Algebra.Distinct x ->
    [ x ]
  | Algebra.Product (l, r)
  | Algebra.Join { left = l; right = r; _ }
  | Algebra.Md { base = l; detail = r; _ }
  | Algebra.Md_completed { base = l; detail = r; _ }
  | Algebra.Union_all (l, r)
  | Algebra.Diff_all (l, r) ->
    [ l; r ]

let apply ~config ?gmdj_stats catalog alg (kids : Relation.t list) =
  match alg, kids with
  | Algebra.Table name, [] -> Catalog.find catalog name
  | Algebra.Rename (alias, _), [ x ] -> Relation.rename alias x
  | Algebra.Select (e, _), [ x ] -> Ops.select e x
  | Algebra.Project (exprs, _), [ x ] -> Ops.project exprs x
  | Algebra.Project_cols { cols; distinct; _ }, [ x ] -> Ops.project_cols ~distinct cols x
  | Algebra.Project_rel (aliases, _), [ x ] ->
    let s = Relation.schema x in
    let cols =
      List.filter_map
        (fun a ->
          if List.mem a.Schema.rel aliases then Some (Some a.Schema.rel, a.Schema.name)
          else None)
        (Schema.to_list s)
    in
    Ops.project_cols cols x
  | Algebra.Add_rownum (name, _), [ x ] -> Ops.add_rownum name x
  | Algebra.Product _, [ l; r ] -> Ops.product l r
  | Algebra.Join { kind; cond; _ }, [ l; r ] -> (
    let strategy = config.join_strategy in
    match kind with
    | Algebra.Inner -> Ops.join ~strategy cond l r
    | Algebra.Left_outer -> Ops.left_outer_join ~strategy cond l r
    | Algebra.Semi -> Ops.semi_join ~strategy cond l r
    | Algebra.Anti -> Ops.anti_join ~strategy cond l r)
  | Algebra.Group_by { keys; aggs; _ }, [ x ] -> Ops.group_by ~keys ~aggs x
  | Algebra.Aggregate_all (aggs, _), [ x ] -> Ops.aggregate_all aggs x
  | Algebra.Md { blocks; _ }, [ base; detail ] ->
    Gmdj.eval ~strategy:config.gmdj_strategy ?stats:gmdj_stats ~base ~detail blocks
  | Algebra.Md_completed { blocks; completion; _ }, [ base; detail ] ->
    Gmdj.eval_completed ~strategy:config.gmdj_strategy ?stats:gmdj_stats ~completion ~base
      ~detail blocks
  | Algebra.Union_all _, [ l; r ] -> Ops.union_all l r
  | Algebra.Diff_all _, [ l; r ] -> Ops.diff_all l r
  | Algebra.Distinct _, [ x ] -> Ops.distinct x
  | _ -> invalid_arg "Eval.apply: child arity mismatch"

let eval ?(config = default_config) ?gmdj_stats catalog alg =
  let rec go alg = apply ~config ?gmdj_stats catalog alg (List.map go (children alg)) in
  go alg

let eval_with_overrides ?(config = default_config) ?gmdj_stats ~override catalog alg =
  let rec go alg =
    match override alg with
    | Some result -> result
    | None -> apply ~config ?gmdj_stats catalog alg (List.map go (children alg))
  in
  go alg

(* ------------------------------------------------------------------ *)
(* Instrumented evaluation                                              *)
(* ------------------------------------------------------------------ *)

type trace = {
  label : string;
  out_rows : int;
  self_seconds : float;
  children : trace list;
}

let node_label alg =
  let exprs es = String.concat ", " (List.map Expr.to_string es) in
  match alg with
  | Algebra.Table name -> "Table " ^ name
  | Algebra.Rename (a, _) -> "Rename " ^ a
  | Algebra.Select (e, _) -> "Select " ^ Expr.to_string e
  | Algebra.Project (ps, _) -> Printf.sprintf "Project [%s]" (exprs (List.map fst ps))
  | Algebra.Project_cols { distinct; _ } ->
    if distinct then "Project-distinct" else "Project-cols"
  | Algebra.Project_rel (aliases, _) -> "ProjectRel " ^ String.concat "," aliases
  | Algebra.Add_rownum (n, _) -> "AddRownum " ^ n
  | Algebra.Product _ -> "Product"
  | Algebra.Join { kind; cond; _ } ->
    let k =
      match kind with
      | Algebra.Inner -> "Join"
      | Algebra.Left_outer -> "LeftOuterJoin"
      | Algebra.Semi -> "SemiJoin"
      | Algebra.Anti -> "AntiJoin"
    in
    k ^ " " ^ Expr.to_string cond
  | Algebra.Group_by { keys; _ } ->
    Printf.sprintf "GroupBy [%s]"
      (String.concat ", " (List.map (function None, n -> n | Some r, n -> r ^ "." ^ n) keys))
  | Algebra.Aggregate_all _ -> "AggregateAll"
  | Algebra.Md { blocks; _ } -> Printf.sprintf "MD (%d blocks)" (List.length blocks)
  | Algebra.Md_completed { blocks; completion; _ } ->
    Printf.sprintf "MD-completed (%d blocks%s)" (List.length blocks)
      (if completion.Gmdj.maintain_aggregates then "" else ", aggregate-free")
  | Algebra.Union_all _ -> "UnionAll"
  | Algebra.Diff_all _ -> "DiffAll"
  | Algebra.Distinct _ -> "Distinct"

(* EXPLAIN ANALYZE: every operator runs inside a trace span and yields a
   {!Subql_obs.Explain.node} carrying what actually happened.  Buffer-
   pool activity is attributed per operator by delta over the registry's
   "storage.buffer_pool.*" counters — children are evaluated before the
   snapshot, so a node only owns its own page traffic. *)

let gmdj_attrs (s : Gmdj.stats) =
  let base =
    [
      ("detail-scans", string_of_int s.Gmdj.detail_passes);
      ("detail-rows", string_of_int s.Gmdj.detail_scanned);
      ("theta-evals", string_of_int s.Gmdj.theta_evals);
    ]
  in
  let blocks =
    match s.Gmdj.block_updates with
    | [||] -> []
    | updates ->
      [
        ( "block-updates",
          String.concat "/" (Array.to_list (Array.map string_of_int updates)) );
      ]
  in
  base @ blocks @ if s.Gmdj.early_exit then [ ("early-exit", "true") ] else []

let eval_analyzed ?(config = default_config) ?(registry = Subql_obs.Metrics.default)
    catalog alg =
  let module M = Subql_obs.Metrics in
  let ops = M.counter registry "eval.operators" in
  let op_seconds = M.histogram registry "eval.operator_seconds" in
  let rows_out_total = M.counter registry "eval.rows_out" in
  let pool_hits () = M.counter_value_by_name registry "storage.buffer_pool.hits" in
  let pool_reads () = M.counter_value_by_name registry "storage.buffer_pool.page_reads" in
  let rec go alg =
    let kid_results = List.map go (children alg) in
    let kids = List.map fst kid_results in
    let kid_nodes = List.map snd kid_results in
    let gmdj_stats =
      match alg with
      | Algebra.Md _ | Algebra.Md_completed _ -> Some (Gmdj.fresh_stats ())
      | _ -> None
    in
    let label = node_label alg in
    let hits0 = pool_hits () and reads0 = pool_reads () in
    let t0 = Unix.gettimeofday () in
    let result =
      Subql_obs.Trace.with_ label (fun () ->
          let r = apply ~config ?gmdj_stats catalog alg kids in
          Subql_obs.Trace.add_attr "rows" (string_of_int (Relation.cardinality r));
          r)
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let rows_out = Relation.cardinality result in
    M.incr ops;
    M.observe op_seconds elapsed_s;
    M.incr ~by:rows_out rows_out_total;
    ( result,
      {
        Subql_obs.Explain.label;
        rows_in =
          List.fold_left (fun acc n -> acc + n.Subql_obs.Explain.rows_out) 0 kid_nodes;
        rows_out;
        calls = 1;
        elapsed_s;
        pool_hits = pool_hits () - hits0;
        pool_reads = pool_reads () - reads0;
        attrs = (match gmdj_stats with Some s -> gmdj_attrs s | None -> []);
        children = kid_nodes;
      } )
  in
  go alg

let eval_traced ?config catalog alg =
  let result, analysis = eval_analyzed ?config catalog alg in
  let rec strip n =
    {
      label = n.Subql_obs.Explain.label;
      out_rows = n.Subql_obs.Explain.rows_out;
      self_seconds = n.Subql_obs.Explain.elapsed_s;
      children = List.map strip n.Subql_obs.Explain.children;
    }
  in
  (result, strip analysis)

let pp_trace ppf trace =
  let rec pp indent t =
    Format.fprintf ppf "%s%-60s %10d rows %9.3f ms@."
      (String.make indent ' ')
      (if String.length t.label > 60 then String.sub t.label 0 57 ^ "..." else t.label)
      t.out_rows (t.self_seconds *. 1000.0);
    List.iter (pp (indent + 2)) t.children
  in
  pp 0 trace
