open Subql_relational
open Subql_gmdj

type flags = { coalesce : bool; pushdown : bool; completion : bool }

let all = { coalesce = true; pushdown = true; completion = true }

let none = { coalesce = false; pushdown = false; completion = false }

let only ?(coalesce = false) ?(pushdown = false) ?(completion = false) () =
  { coalesce; pushdown; completion }

(* ------------------------------------------------------------------ *)
(* Generic bottom-up rewriting                                         *)
(* ------------------------------------------------------------------ *)

let map_children f = function
  | Algebra.Table _ as t -> t
  | Algebra.Rename (a, x) -> Algebra.Rename (a, f x)
  | Algebra.Select (e, x) -> Algebra.Select (e, f x)
  | Algebra.Project (p, x) -> Algebra.Project (p, f x)
  | Algebra.Project_cols c -> Algebra.Project_cols { c with input = f c.input }
  | Algebra.Project_rel (a, x) -> Algebra.Project_rel (a, f x)
  | Algebra.Add_rownum (n, x) -> Algebra.Add_rownum (n, f x)
  | Algebra.Product (l, r) -> Algebra.Product (f l, f r)
  | Algebra.Join j -> Algebra.Join { j with left = f j.left; right = f j.right }
  | Algebra.Group_by g -> Algebra.Group_by { g with input = f g.input }
  | Algebra.Aggregate_all (a, x) -> Algebra.Aggregate_all (a, f x)
  | Algebra.Md m -> Algebra.Md { m with base = f m.base; detail = f m.detail }
  | Algebra.Md_completed m ->
    Algebra.Md_completed { m with base = f m.base; detail = f m.detail }
  | Algebra.Union_all (l, r) -> Algebra.Union_all (f l, f r)
  | Algebra.Diff_all (l, r) -> Algebra.Diff_all (f l, f r)
  | Algebra.Distinct x -> Algebra.Distinct (f x)

(* Apply [rule] bottom-up; keep rewriting a node until the rule no longer
   fires, then move up.  Terminates because every rule strictly shrinks
   the number of Md nodes or fires at most once per node. *)
let rewrite_bottom_up rule alg =
  let rec go alg =
    let alg = map_children go alg in
    match rule alg with
    | Some alg' -> go alg'
    | None -> alg
  in
  go alg

(* Top-down variant: the completion rule must see a projection together
   with the selection and GMDJ underneath it — rewriting the children
   first would consume the [Select (cond, Md)] before the enclosing
   projection is inspected, losing the aggregate-free mode. *)
let rewrite_top_down rule alg =
  let rec go alg =
    match rule alg with
    | Some alg' -> go alg'
    | None -> map_children go alg
  in
  go alg

(* ------------------------------------------------------------------ *)
(* Coalescing (Prop. 4.1) and selection push-up (Ex. 4.1)              *)
(* ------------------------------------------------------------------ *)

let agg_names blocks =
  List.concat_map (fun b -> List.map (fun s -> s.Aggregate.name) b.Gmdj.aggs) blocks

let block_exprs b =
  b.Gmdj.theta
  :: List.filter_map
       (fun s ->
         match s.Aggregate.func with
         | Aggregate.Count_star -> None
         | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e | Aggregate.Max e
         | Aggregate.Avg e | Aggregate.First e ->
           Some e)
       b.Gmdj.aggs

let references_any_name names e =
  List.exists (fun (_, n) -> List.mem n names) (Expr.attrs e)

(* Outer blocks may be merged below the inner GMDJ only if they do not
   read the inner GMDJ's aggregate columns (condition independence). *)
let blocks_independent ~inner_blocks ~outer_blocks =
  let inner_names = agg_names inner_blocks in
  not
    (List.exists
       (fun b -> List.exists (references_any_name inner_names) (block_exprs b))
       outer_blocks)

let requalify_blocks ~from_alias ~to_alias blocks =
  if from_alias = to_alias then blocks
  else
    List.map
      (fun b ->
        let rw = Expr.rewrite_qualifier ~from_rel:from_alias ~to_rel:to_alias in
        {
          Gmdj.theta = rw b.Gmdj.theta;
          aggs =
            List.map
              (fun s ->
                let func =
                  match s.Aggregate.func with
                  | Aggregate.Count_star -> Aggregate.Count_star
                  | Aggregate.Count e -> Aggregate.Count (rw e)
                  | Aggregate.Sum e -> Aggregate.Sum (rw e)
                  | Aggregate.Min e -> Aggregate.Min (rw e)
                  | Aggregate.Max e -> Aggregate.Max (rw e)
                  | Aggregate.Avg e -> Aggregate.Avg (rw e)
                  | Aggregate.First e -> Aggregate.First (rw e)
                in
                { s with Aggregate.func })
              b.Gmdj.aggs;
        })
      blocks

let try_merge ~inner_base ~inner_detail ~inner_blocks ~outer_detail ~outer_blocks =
  if not (Algebra.same_occurrence_modulo_alias inner_detail outer_detail) then None
  else if not (blocks_independent ~inner_blocks ~outer_blocks) then None
  else
    let outer_blocks =
      match Algebra.detail_alias outer_detail, Algebra.detail_alias inner_detail with
      | Some from_alias, Some to_alias -> requalify_blocks ~from_alias ~to_alias outer_blocks
      | _ -> outer_blocks
    in
    Some
      (Algebra.Md
         { base = inner_base; detail = inner_detail; blocks = inner_blocks @ outer_blocks })

let coalesce_rule = function
  | Algebra.Md
      {
        base = Algebra.Md { base = inner_base; detail = inner_detail; blocks = inner_blocks };
        detail = outer_detail;
        blocks = outer_blocks;
      } ->
    try_merge ~inner_base ~inner_detail ~inner_blocks ~outer_detail ~outer_blocks
  | Algebra.Md
      {
        base =
          Algebra.Select
            ( cond,
              Algebra.Md { base = inner_base; detail = inner_detail; blocks = inner_blocks }
            );
        detail = outer_detail;
        blocks = outer_blocks;
      } ->
    (* Example 4.1: hoist the count-selection above the merged GMDJ.  The
       GMDJ extends each base row independently, so it commutes with any
       selection on its base. *)
    Option.map
      (fun merged -> Algebra.Select (cond, merged))
      (try_merge ~inner_base ~inner_detail ~inner_blocks ~outer_detail ~outer_blocks)
  | Algebra.Table _ | Algebra.Rename _ | Algebra.Select _ | Algebra.Project _
  | Algebra.Project_cols _ | Algebra.Project_rel _ | Algebra.Add_rownum _
  | Algebra.Product _ | Algebra.Join _ | Algebra.Group_by _ | Algebra.Aggregate_all _
  | Algebra.Md _ | Algebra.Md_completed _ | Algebra.Union_all _ | Algebra.Diff_all _
  | Algebra.Distinct _ ->
    None


(* ------------------------------------------------------------------ *)
(* Selection push-down                                                  *)
(* ------------------------------------------------------------------ *)

(* The aliases an expression's output columns are qualified with, when
   they can be determined syntactically; [None] when the node may emit
   columns we cannot attribute (computed projections, group outputs,
   etc.).  GMDJ outputs are base columns plus unqualified aggregate
   columns, so qualified references into them resolve via the base. *)
let rec alias_set = function
  | Algebra.Table t -> Some [ t ]
  | Algebra.Rename (a, _) -> Some [ a ]
  | Algebra.Select (_, x)
  | Algebra.Add_rownum (_, x)
  | Algebra.Distinct x ->
    alias_set x
  | Algebra.Md { base; _ } | Algebra.Md_completed { base; _ } -> alias_set base
  | Algebra.Product (l, r) | Algebra.Join { kind = Algebra.Inner; left = l; right = r; _ } ->
    (match alias_set l, alias_set r with
    | Some a, Some b -> Some (a @ b)
    | _ -> None)
  | Algebra.Join { kind = Algebra.Semi | Algebra.Anti; left = l; _ } -> alias_set l
  | Algebra.Join { kind = Algebra.Left_outer; left = l; right = r; _ } ->
    (match alias_set l, alias_set r with Some a, Some b -> Some (a @ b) | _ -> None)
  | Algebra.Project _ | Algebra.Project_cols _ | Algebra.Project_rel _ | Algebra.Group_by _
  | Algebra.Aggregate_all _ | Algebra.Union_all _ | Algebra.Diff_all _ ->
    None

(* A conjunct can move to a side iff all its references are qualified,
   every qualifier belongs to that side, and none belongs to the other
   (alias overlap would make resolution ambiguous). *)
let attributable conjunct ~here ~there =
  let refs = Expr.attrs conjunct in
  refs <> []
  && List.for_all
       (fun (q, _) ->
         match q with
         | None -> false
         | Some alias -> List.mem alias here && not (List.mem alias there))
       refs

let split_by_side e ~left_aliases ~right_aliases =
  List.fold_left
    (fun (l, r, rest) conjunct ->
      if attributable conjunct ~here:left_aliases ~there:right_aliases then
        (conjunct :: l, r, rest)
      else if attributable conjunct ~here:right_aliases ~there:left_aliases then
        (l, conjunct :: r, rest)
      else (l, r, conjunct :: rest))
    ([], [], []) (Expr.conjuncts e)
  |> fun (l, r, rest) -> (List.rev l, List.rev r, List.rev rest)

let select_over conjs x = match conjs with [] -> x | cs -> Algebra.Select (Expr.conjoin cs, x)

let pushdown_rule = function
  | Algebra.Select (e, Algebra.Select (f, x)) -> Some (Algebra.Select (Expr.and_ f e, x))
  | Algebra.Select (e, Algebra.Product (l, r)) -> (
    (* A selection over a product always becomes a join (σ ∘ × ≡ ⋈);
       single-side conjuncts additionally sink into the operands. *)
    match alias_set l, alias_set r with
    | Some left_aliases, Some right_aliases -> (
      let le, re, rest = split_by_side e ~left_aliases ~right_aliases in
      let l = select_over le l and r = select_over re r in
      match rest with
      | [] -> Some (Algebra.Product (l, r))
      | cs ->
        Some (Algebra.Join { kind = Algebra.Inner; cond = Expr.conjoin cs; left = l; right = r }))
    | _ ->
      Some (Algebra.Join { kind = Algebra.Inner; cond = e; left = l; right = r }))
  | Algebra.Select (e, Algebra.Join ({ kind = Algebra.Inner; _ } as j)) -> (
    match alias_set j.left, alias_set j.right with
    | Some left_aliases, Some right_aliases ->
      let le, re, rest = split_by_side e ~left_aliases ~right_aliases in
      let left = select_over le j.left and right = select_over re j.right in
      let cond = Expr.conjoin (j.cond :: rest) in
      Some (Algebra.Join { j with cond; left; right })
    | _ -> Some (Algebra.Join { j with cond = Expr.and_ j.cond e }))
  | Algebra.Select (e, (Algebra.Md { base; detail; blocks } as md)) -> (
    (* Base-only conjuncts commute below the GMDJ. *)
    ignore md;
    match alias_set base with
    | None -> None
    | Some base_aliases -> (
      let movable, rest =
        List.partition
          (fun conjunct -> attributable conjunct ~here:base_aliases ~there:[])
          (Expr.conjuncts e)
      in
      match movable with
      | [] -> None
      | _ ->
        let pushed =
          Algebra.Md { base = select_over movable base; detail; blocks }
        in
        Some (select_over rest pushed)))
  | Algebra.Table _ | Algebra.Rename _ | Algebra.Select _ | Algebra.Project _
  | Algebra.Project_cols _ | Algebra.Project_rel _ | Algebra.Add_rownum _
  | Algebra.Product _ | Algebra.Join _ | Algebra.Group_by _ | Algebra.Aggregate_all _
  | Algebra.Md _ | Algebra.Md_completed _ | Algebra.Union_all _ | Algebra.Diff_all _
  | Algebra.Distinct _ ->
    None

(* ------------------------------------------------------------------ *)
(* Completion detection (Thms 4.1/4.2)                                 *)
(* ------------------------------------------------------------------ *)

(* Map an unqualified column name to the θ of the block whose count-star
   aggregate produces it.  Only applicable when names are globally unique
   across the GMDJ's aggregates. *)
let count_thetas blocks =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun s ->
          match s.Aggregate.func with
          | Aggregate.Count_star -> Some (s.Aggregate.name, b.Gmdj.theta)
          | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Min _ | Aggregate.Max _
          | Aggregate.Avg _ | Aggregate.First _ ->
            None)
        b.Gmdj.aggs)
    blocks

let names_unique names =
  let sorted = List.sort String.compare names in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <> b && ok rest
    | [ _ ] | [] -> true
  in
  ok sorted

type rule_acc = {
  mutable kills : Expr.t list;
  mutable requires_ : Expr.t list;
  mutable residual : Expr.t list;
}

let expr_subset small big = List.for_all (fun c -> List.exists (Expr.equal c) big) small

let expr_diff big small = List.filter (fun c -> not (List.exists (Expr.equal c) small)) big

(* The ALL pattern: cnt_a = cnt_b where θ_a = θ_b ∧ ψ.  The selection
   fails exactly when some detail row satisfies θ_b but not ψ (as true),
   so that row kills the base tuple. *)
let all_kill theta_a theta_b =
  let ca = Expr.conjuncts theta_a and cb = Expr.conjuncts theta_b in
  if expr_subset cb ca && List.length cb < List.length ca then
    let psi = Expr.conjoin (expr_diff ca cb) in
    Some (Expr.and_ theta_b (Expr.not_ (Expr.Is_true psi)))
  else None

let classify_conjunct counts acc conjunct =
  let theta_of n = List.assoc_opt n counts in
  let as_count_attr = function
    | Expr.Attr (None, n) -> theta_of n
    | _ -> None
  in
  let handled =
    match conjunct with
    (* cnt = 0  /  0 = cnt  → kill *)
    | Expr.Cmp (Expr.Eq, a, Expr.Const (Value.Int 0)) -> (
      match as_count_attr a with
      | Some theta ->
        acc.kills <- acc.kills @ [ theta ];
        true
      | None -> false)
    | Expr.Cmp (Expr.Eq, Expr.Const (Value.Int 0), a) -> (
      match as_count_attr a with
      | Some theta ->
        acc.kills <- acc.kills @ [ theta ];
        true
      | None -> false)
    (* cnt > 0, cnt >= 1, cnt <> 0, 0 < cnt → require-fired *)
    | Expr.Cmp (Expr.Gt, a, Expr.Const (Value.Int 0))
    | Expr.Cmp (Expr.Ge, a, Expr.Const (Value.Int 1))
    | Expr.Cmp (Expr.Ne, a, Expr.Const (Value.Int 0)) -> (
      match as_count_attr a with
      | Some theta ->
        acc.requires_ <- acc.requires_ @ [ theta ];
        true
      | None -> false)
    | Expr.Cmp (Expr.Lt, Expr.Const (Value.Int 0), a)
    | Expr.Cmp (Expr.Le, Expr.Const (Value.Int 1), a)
    | Expr.Cmp (Expr.Ne, Expr.Const (Value.Int 0), a) -> (
      match as_count_attr a with
      | Some theta ->
        acc.requires_ <- acc.requires_ @ [ theta ];
        true
      | None -> false)
    (* cnt_a = cnt_b (the ALL pattern) *)
    | Expr.Cmp (Expr.Eq, a, b) -> (
      match as_count_attr a, as_count_attr b with
      | Some ta, Some tb -> (
        match all_kill ta tb with
        | Some kill ->
          acc.kills <- acc.kills @ [ kill ];
          true
        | None -> (
          match all_kill tb ta with
          | Some kill ->
            acc.kills <- acc.kills @ [ kill ];
            true
          | None -> false))
      | _ -> false)
    | _ -> false
  in
  if not handled then acc.residual <- acc.residual @ [ conjunct ]

(* Try to turn [Select (cond, Md m)] into an [Md_completed].
   [aggs_discarded] tells whether the context projects the aggregate
   columns away, enabling Thm 4.1's aggregate-free mode. *)
let complete_select ~aggs_discarded cond (m : Algebra.t) =
  match m with
  | Algebra.Md { base; detail; blocks } ->
    let counts = count_thetas blocks in
    if not (names_unique (agg_names blocks)) then None
    else begin
      let acc = { kills = []; requires_ = []; residual = [] } in
      List.iter (classify_conjunct counts acc) (Expr.conjuncts cond);
      if acc.kills = [] && acc.requires_ = [] then None
      else
        let names = agg_names blocks in
        let residual_uses_aggs = List.exists (references_any_name names) acc.residual in
        let maintain_aggregates = (not aggs_discarded) || residual_uses_aggs in
        let completion =
          { Gmdj.kill_when = acc.kills; require_fired = acc.requires_; maintain_aggregates }
        in
        let completed = Algebra.Md_completed { base; detail; blocks; completion } in
        Some
          (match acc.residual with
          | [] -> completed
          | rs -> Algebra.Select (Expr.conjoin rs, completed))
    end
  | _ -> None

let completion_rule alg =
  match alg with
  | Algebra.Select (cond, (Algebra.Md _ as m)) -> complete_select ~aggs_discarded:false cond m
  | Algebra.Project_rel (a, Algebra.Select (cond, (Algebra.Md _ as m))) ->
    Option.map
      (fun inner -> Algebra.Project_rel (a, inner))
      (complete_select ~aggs_discarded:true cond m)
  | Algebra.Project_cols ({ cols; _ } as pc) -> (
    match pc.input with
    | Algebra.Select (cond, (Algebra.Md { blocks; _ } as m)) ->
      let names = agg_names blocks in
      let discards = not (List.exists (fun (_, n) -> List.mem n names) cols) in
      Option.map
        (fun inner -> Algebra.Project_cols { pc with input = inner })
        (complete_select ~aggs_discarded:discards cond m)
    | _ -> None)
  | Algebra.Project (exprs, Algebra.Select (cond, (Algebra.Md { blocks; _ } as m))) ->
    let names = agg_names blocks in
    let discards = not (List.exists (fun (e, _) -> references_any_name names e) exprs) in
    Option.map
      (fun inner -> Algebra.Project (exprs, inner))
      (complete_select ~aggs_discarded:discards cond m)
  | Algebra.Table _ | Algebra.Rename _ | Algebra.Select _ | Algebra.Project _
  | Algebra.Project_rel _ | Algebra.Add_rownum _ | Algebra.Product _ | Algebra.Join _
  | Algebra.Group_by _ | Algebra.Aggregate_all _ | Algebra.Md _ | Algebra.Md_completed _
  | Algebra.Union_all _ | Algebra.Diff_all _ | Algebra.Distinct _ ->
    None

(* Completion fires at most once per position (it consumes the Md); guard
   against re-firing on the rewritten node by checking for Md_completed
   in the pattern itself (the patterns above only match plain Md). *)

(* --- Rewrite self-check hook ---------------------------------------- *)

(* Installed by [Subql_analysis.Verify]: after every optimize call the
   checker sees the plan before and after rewriting and may raise (or
   record) when the rewrite changed the inferred schema or widened
   nullability.  Kept as a callback to avoid a dependency cycle — the
   analyzer sits above this library. *)
let self_check : (label:string -> before:Algebra.t -> after:Algebra.t -> unit) option ref =
  ref None

let set_self_check f = self_check := Some f

let clear_self_check () = self_check := None

let optimize ?(flags = all) alg =
  let before = alg in
  let alg = if flags.coalesce then rewrite_bottom_up coalesce_rule alg else alg in
  let alg = if flags.pushdown then rewrite_bottom_up pushdown_rule alg else alg in
  let alg = if flags.completion then rewrite_top_down completion_rule alg else alg in
  (match !self_check with
  | Some check -> check ~label:"optimize" ~before ~after:alg
  | None -> ());
  alg
