open Subql_relational

type candidate = {
  label : string;
  plan : Algebra.t;
  estimate : Cost.estimate;
}

type provider = Catalog.t -> Subql_nested.Nested_ast.query -> Algebra.t option

let semijoin_provider : provider ref = ref (fun _ _ -> None)

let outerjoin_provider : provider ref = ref (fun _ _ -> None)

let set_unnest_providers ~semijoin ~outerjoin =
  semijoin_provider := semijoin;
  outerjoin_provider := outerjoin

type result_cache = {
  cache_lookup : Subql_nested.Nested_ast.query -> Relation.t option;
  cache_store :
    Subql_nested.Nested_ast.query -> cost:float -> Relation.t -> bool;
}

let result_cache : result_cache option ref = ref None

let set_result_cache hooks = result_cache := Some hooks

let clear_result_cache () = result_cache := None

(* --- Self-check gate -------------------------------------------------- *)

type plan_verifier =
  Catalog.t -> Subql_nested.Nested_ast.query -> label:string -> Algebra.t -> Diag.t list

let plan_verifier : plan_verifier option ref = ref None

let self_check = ref false

let set_plan_verifier f = plan_verifier := Some f

let clear_plan_verifier () = plan_verifier := None

let set_self_check on = self_check := on

let self_check_enabled () = !self_check

(* --- Parallel-merge certification ------------------------------------ *)

type merge_certifier = Algebra.t -> Diag.t list

let merge_certifier : merge_certifier option ref = ref None

let set_merge_certifier f = merge_certifier := Some f

let clear_merge_certifier () = merge_certifier := None

(* With a certifier installed, a plan may only fan out across domains
   when every aggregate reachable under the exchange merges as a
   commutative monoid.  An uncertified plan is not degraded silently:
   the PAR diagnostic is raised so the caller sees exactly which
   aggregate would merge wrongly. *)
let certify_parallel plan =
  match !merge_certifier with
  | None -> ()
  | Some certify -> (
    match List.filter Diag.is_error (certify plan) with
    | [] -> ()
    | d :: _ ->
      Subql_obs.Metrics.incr
        (Subql_obs.Metrics.counter Subql_obs.Metrics.default
           "planner.merge_certificate.rejected");
      raise (Diag.Fail d))

(* Drop candidates the verifier finds unsound.  Every candidate set
   contains the GMDJ reference translation, which is sound by
   construction, so an empty survivor set means the verifier itself
   disagrees with the translation — that is a bug worth failing loudly. *)
let gate catalog query plans =
  match !plan_verifier with
  | Some verify when !self_check ->
    let sound, unsound =
      List.partition
        (fun (label, plan) -> not (Diag.has_errors (verify catalog query ~label plan)))
        plans
    in
    List.iter
      (fun (label, _) ->
        Subql_obs.Metrics.incr
          (Subql_obs.Metrics.counter Subql_obs.Metrics.default
             ("planner.self_check.rejected." ^ label)))
      unsound;
    (match sound, unsound with
    | [], (label, plan) :: _ ->
      let diags = verify catalog query ~label plan in
      let d =
        match List.filter Diag.is_error diags with
        | d :: _ -> d
        | [] -> Diag.error ~code:"VER000" "planner self-check rejected every candidate"
      in
      raise (Diag.Fail d)
    | _ -> ());
    sound
  | _ -> plans

let candidates ?(config = Eval.default_config) catalog query =
  let stats = Cost.Stats.of_catalog catalog in
  let gmdj = Optimize.optimize (Transform.to_algebra query) in
  let maybe label plan =
    Option.map (fun p -> (label, p)) plan
  in
  let plans =
    List.filter_map Fun.id
      [
        Some ("gmdj", gmdj);
        maybe "semijoin-unnest" (!semijoin_provider catalog query);
        maybe "outerjoin-unnest" (!outerjoin_provider catalog query);
      ]
  in
  gate catalog query plans
  |> List.map (fun (label, plan) ->
         { label; plan; estimate = Cost.estimate stats ~config plan })
  |> List.sort (fun a b -> Float.compare a.estimate.Cost.cost b.estimate.Cost.cost)

let choose ?(config = Eval.default_config) catalog query =
  match candidates ~config catalog query with
  | best :: _ ->
    (* Report the winner's expected executor footprint next to its cost,
       so memory regressions surface in the same registry as q-errors. *)
    Subql_obs.Metrics.set
      (Subql_obs.Metrics.gauge Subql_obs.Metrics.default "planner.last_memory_height")
      (Cost.memory_height (Cost.Stats.of_catalog catalog) ~config best.plan);
    best
  | [] -> assert false (* the GMDJ plan is always present *)

(* --- Parallel / spill configuration --------------------------------- *)

(* Below this much estimated work (tuple-operation units) an exchange is
   all overhead: spawning domains and shipping chunks costs more than
   the plan itself. *)
let min_parallel_work = 16_384.

let parallel_config ?domains ?mem_budget_rows stats config plan =
  let requested =
    match domains with
    | Some d -> d
    | None -> min (Domain.recommended_domain_count ()) 4
  in
  if requested <= 0 then invalid_arg "Planner.parallel_config: domains must be positive";
  let work = (Cost.estimate stats ~config plan).Cost.cost in
  let domains = if work < min_parallel_work then 1 else requested in
  if domains > 1 then certify_parallel plan;
  let spill_budget_rows =
    match mem_budget_rows with
    | Some b when b > 0 ->
      (* Spill only when the in-memory plan would not fit: under the
         budget the plain hash state is strictly cheaper. *)
      if Cost.memory_height stats ~config plan > float_of_int b then Some b else None
    | _ -> None
  in
  let open Subql_obs in
  Metrics.set (Metrics.gauge Metrics.default "planner.domains") (float_of_int domains);
  Metrics.set
    (Metrics.gauge Metrics.default "planner.spill_budget_rows")
    (match spill_budget_rows with Some b -> float_of_int b | None -> 0.);
  { config with Eval.domains; spill_budget_rows }

(* --- Estimated-vs-actual feedback ---------------------------------- *)

type feedback = {
  candidate : candidate;
  actual_rows : int;
  q_error : float;
}

let q_error ~estimated ~actual =
  let est = Float.max 1. estimated and act = Float.max 1. (float_of_int actual) in
  Float.max (est /. act) (act /. est)

let q_error_hist () =
  Subql_obs.Metrics.histogram
    ~buckets:[ 1.; 1.5; 2.; 4.; 8.; 16.; 64.; 256.; 1024. ]
    Subql_obs.Metrics.default "planner.q_error"

let record_feedback fb =
  let open Subql_obs in
  let r = Metrics.default in
  Metrics.incr (Metrics.counter r "planner.runs");
  Metrics.incr (Metrics.counter r ("planner.chosen." ^ fb.candidate.label));
  Metrics.set (Metrics.gauge r "planner.last_estimated_rows") fb.candidate.estimate.Cost.rows;
  Metrics.set (Metrics.gauge r "planner.last_actual_rows") (float_of_int fb.actual_rows);
  Metrics.observe (q_error_hist ()) fb.q_error

let run_with_feedback ?config catalog query =
  let cached =
    match !result_cache with
    | Some hooks -> hooks.cache_lookup query
    | None -> None
  in
  match cached with
  | Some result ->
    (* A hit beats every plan: the result is already materialized, so it
       enters the race as a zero-cost candidate and trivially wins. *)
    let actual_rows = Relation.cardinality result in
    let candidate =
      {
        label = "cache";
        plan = Transform.to_algebra query;
        estimate = { Cost.rows = float_of_int actual_rows; cost = 0. };
      }
    in
    let fb = { candidate; actual_rows; q_error = 1. } in
    record_feedback fb;
    (result, fb)
  | None ->
    let best = choose ?config catalog query in
    let result = Eval.eval ?config catalog best.plan in
    let actual_rows = Relation.cardinality result in
    let fb =
      {
        candidate = best;
        actual_rows;
        q_error = q_error ~estimated:best.estimate.Cost.rows ~actual:actual_rows;
      }
    in
    record_feedback fb;
    (match !result_cache with
    | Some hooks ->
      ignore (hooks.cache_store query ~cost:best.estimate.Cost.cost result)
    | None -> ());
    (result, fb)

let validate ?config catalog query =
  List.map
    (fun cand ->
      let result = Eval.eval ?config catalog cand.plan in
      let actual_rows = Relation.cardinality result in
      let fb =
        {
          candidate = cand;
          actual_rows;
          q_error = q_error ~estimated:cand.estimate.Cost.rows ~actual:actual_rows;
        }
      in
      Subql_obs.Metrics.observe (q_error_hist ()) fb.q_error;
      fb)
    (candidates ?config catalog query)

let run ?config catalog query = fst (run_with_feedback ?config catalog query)
