open Subql_relational
module N = Subql_nested.Nested_ast

(* The phantom parameters live only in the interface: internally an
   [exp] is an [Expr.t] and a [pred] is a [Nested_ast.pred], so
   elaboration is the identity and DSL queries are structurally the
   queries the SQL front-end produces. *)
type ('a, 'n) exp = Expr.t

type pred = N.pred

type query = N.query

type scope = { alias : string; tbl : Derive.t; only : string list option }

type packed = P : ('a, 'n) Col.t -> packed

let fail ~subject ~code fmt =
  Format.kasprintf (fun msg -> raise (Diag.Fail (Diag.error ~subject ~code msg))) fmt

(* --- expressions --------------------------------------------------- *)

let int = Expr.int

let float = Expr.float

let str = Expr.str

let bool = Expr.bool

let col s c =
  let table = Derive.name s.tbl in
  if Col.table c <> table then
    fail
      ~subject:(Printf.sprintf "%s.%s" (Col.table c) (Col.name c))
      ~code:"TYD006" "column %s.%s used under scope %s, which ranges over table %s"
      (Col.table c) (Col.name c) s.alias table;
  (match s.only with
  | Some names when not (List.mem (Col.name c) names) ->
    fail
      ~subject:(Printf.sprintf "%s.%s" table (Col.name c))
      ~code:"TYD006" "column %s is projected away in scope %s (visible: %s)" (Col.name c)
      s.alias (String.concat ", " names)
  | _ -> ());
  Expr.attr ~rel:s.alias (Col.name c)

(* --- predicates ---------------------------------------------------- *)

let cmp op a b = N.atom (Expr.cmp op a b)

let ( ==. ) a b = cmp Expr.Eq a b

let ( <>. ) a b = cmp Expr.Ne a b

let ( <. ) a b = cmp Expr.Lt a b

let ( <=. ) a b = cmp Expr.Le a b

let ( >. ) a b = cmp Expr.Gt a b

let ( >=. ) a b = cmp Expr.Ge a b

let is_null e = N.atom (Expr.Is_null e)

let is_not_null e = N.atom (Expr.Is_not_null e)

let ptrue = N.Ptrue

(* Subquery-free atoms fuse at the expression level: [a &&. b] over two
   atoms yields the single atom [a AND b], which is how both the zoo and
   the SQL parser shape plain conjunctions — keeping fingerprints in
   sync with the untyped front-ends. *)
let ( &&. ) a b =
  match a, b with N.Atom x, N.Atom y -> N.atom (Expr.and_ x y) | _ -> N.pand a b

let ( ||. ) a b =
  match a, b with N.Atom x, N.Atom y -> N.atom (Expr.or_ x y) | _ -> N.por a b

let not_ p = N.pnot p

(* --- subquery predicates ------------------------------------------- *)

let sub_scope tbl alias = { alias; tbl; only = None }

let where_in s = Option.map (fun f -> f s)

let require_member tbl (c : (_, _) Col.t) =
  if Col.table c <> Derive.name tbl then
    fail
      ~subject:(Printf.sprintf "%s.%s" (Col.table c) (Col.name c))
      ~code:"TYD006" "column %s.%s is not a column of range table %s" (Col.table c)
      (Col.name c) (Derive.name tbl)

let exists ?where tbl alias =
  let s = sub_scope tbl alias in
  N.exists ?where:(where_in s where) (N.table (Derive.name tbl)) alias

let not_exists ?where tbl alias =
  let s = sub_scope tbl alias in
  N.not_exists ?where:(where_in s where) (N.table (Derive.name tbl)) alias

let some_ lhs op ?where tbl alias ~col =
  require_member tbl col;
  let s = sub_scope tbl alias in
  N.some_ lhs op ?where:(where_in s where) (N.table (Derive.name tbl)) alias ~col:(Col.name col)

let all_ lhs op ?where tbl alias ~col =
  require_member tbl col;
  let s = sub_scope tbl alias in
  N.all_ lhs op ?where:(where_in s where) (N.table (Derive.name tbl)) alias ~col:(Col.name col)

let in_ lhs ?where tbl alias ~col =
  require_member tbl col;
  let s = sub_scope tbl alias in
  N.in_ lhs ?where:(where_in s where) (N.table (Derive.name tbl)) alias ~col:(Col.name col)

let not_in lhs ?where tbl alias ~col =
  require_member tbl col;
  let s = sub_scope tbl alias in
  N.not_in lhs ?where:(where_in s where) (N.table (Derive.name tbl)) alias ~col:(Col.name col)

let scalar_cmp lhs op ?where tbl alias ~col =
  require_member tbl col;
  let s = sub_scope tbl alias in
  N.scalar_cmp lhs op ?where:(where_in s where) (N.table (Derive.name tbl)) alias
    ~col:(Col.name col)

(* --- aggregate subqueries ------------------------------------------ *)

type ('a, 'n) agg = Aggregate.func

let count_star = Aggregate.Count_star

let count e = Aggregate.Count e

let sum e = Aggregate.Sum e

let sum_float e = Aggregate.Sum e

let min_ e = Aggregate.Min e

let max_ e = Aggregate.Max e

let avg e = Aggregate.Avg e

let avg_float e = Aggregate.Avg e

let first e = Aggregate.First e

let agg_cmp lhs op f ?where tbl alias =
  let s = sub_scope tbl alias in
  N.agg_cmp lhs op (f s) ?where:(where_in s where) (N.table (Derive.name tbl)) alias

let agg_cmp_num lhs op f ?where tbl alias = agg_cmp lhs op f ?where tbl alias

(* --- query blocks -------------------------------------------------- *)

let from tbl alias f =
  let s = sub_scope tbl alias in
  N.query ~base:(N.table (Derive.name tbl)) ~alias (f s)

let from_product (t1, a1) (t2, a2) f =
  let s1 = sub_scope t1 a1 and s2 = sub_scope t2 a2 in
  N.query
    ~base:
      (N.Bproduct
         (N.Balias (a1, N.table (Derive.name t1)), N.Balias (a2, N.table (Derive.name t2))))
    ~alias:"" (f s1 s2)

let from_distinct tbl ~cols alias f =
  let names =
    List.map
      (fun (P c) ->
        require_member tbl c;
        Col.name c)
      cols
  in
  let s = { alias; tbl; only = Some names } in
  N.query
    ~base:(N.Bproject { cols = names; distinct = true; input = N.table (Derive.name tbl) })
    ~alias (f s)

let to_query q = q
