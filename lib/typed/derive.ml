open Subql_relational
module Nullability = Subql_analysis.Nullability
module Typing = Subql_analysis.Typing

type column = Packed : ('a, 'n) Col.t -> column

type t = {
  name : string;
  schema : Schema.t;
  nulls : Nullability.t array;
  columns : column array;
}

let fail ~table ~col ~code fmt =
  Format.kasprintf
    (fun msg ->
      raise (Diag.Fail (Diag.error ~subject:(Printf.sprintf "%s.%s" table col) ~code msg)))
    fmt

let packed_at ~table schema nulls i =
  let a = Schema.attr_at schema i in
  let non_null = nulls.(i) = Nullability.Non_null in
  let mk repr = Packed (Col.make ~table ~name:a.Schema.name ~index:i repr) in
  match a.Schema.ty, non_null with
  | Value.Tint, true -> mk Col.Rint
  | Value.Tint, false -> mk Col.Rint_opt
  | Value.Tfloat, true -> mk Col.Rfloat
  | Value.Tfloat, false -> mk Col.Rfloat_opt
  | Value.Tstring, true -> mk Col.Rstr
  | Value.Tstring, false -> mk Col.Rstr_opt
  | Value.Tbool, true -> mk Col.Rbool
  | Value.Tbool, false -> mk Col.Rbool_opt

let of_catalog catalog tname =
  let rel = Catalog.find catalog tname in
  let schema = Relation.schema rel in
  let env = Typing.env_of_catalog catalog in
  let nulls = env.Typing.table_nulls tname in
  let columns =
    Array.init (Schema.arity schema) (fun i -> packed_at ~table:tname schema nulls i)
  in
  { name = tname; schema; nulls; columns }

let all_of_catalog catalog = List.map (of_catalog catalog) (Catalog.tables catalog)

let name t = t.name

let schema t = t.schema

let lookup t col =
  match Schema.find_opt t.schema col with
  | Some i -> i
  | None -> fail ~table:t.name ~col ~code:"TYD001" "table %s has no column %s" t.name col

let column t col = t.columns.(lookup t col)

let require_ty t col i ty =
  let a = Schema.attr_at t.schema i in
  if a.Schema.ty <> ty then
    fail ~table:t.name ~col ~code:"TYD002" "column %s.%s is %s, not %s" t.name col
      (Value.ty_to_string a.Schema.ty) (Value.ty_to_string ty)

let require_non_null t col i =
  match t.nulls.(i) with
  | Nullability.Non_null -> ()
  | n ->
    fail ~table:t.name ~col ~code:"TYD003"
      "column %s.%s is %s; use the _opt accessor (bare access needs a non-NULL derivation)"
      t.name col (Nullability.to_string n)

let typed_col t col ty repr =
  let i = lookup t col in
  require_ty t col i ty;
  require_non_null t col i;
  Col.make ~table:t.name ~name:col ~index:i repr

let typed_opt t col ty repr =
  let i = lookup t col in
  require_ty t col i ty;
  Col.make ~table:t.name ~name:col ~index:i repr

let int_col t col = typed_col t col Value.Tint Col.Rint

let int_opt t col = typed_opt t col Value.Tint Col.Rint_opt

let float_col t col = typed_col t col Value.Tfloat Col.Rfloat

let float_opt t col = typed_opt t col Value.Tfloat Col.Rfloat_opt

let str_col t col = typed_col t col Value.Tstring Col.Rstr

let str_opt t col = typed_opt t col Value.Tstring Col.Rstr_opt

let bool_col t col = typed_col t col Value.Tbool Col.Rbool

let bool_opt t col = typed_opt t col Value.Tbool Col.Rbool_opt

let codec t =
  Subql_storage.Codec.plan_of_schema
    ~non_null:(Array.map (fun n -> n = Nullability.Non_null) t.nulls)
    t.schema
