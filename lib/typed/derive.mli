(** Schema derivation: typed accessor sets from a catalog.

    [of_catalog catalog "T"] inspects T's schema {e and} its instance
    nullability (via [Analysis.Typing.env_of_catalog]: a column is
    non-NULL iff no stored row holds NULL in it — the catalog carries no
    NOT NULL declarations, so the instance is the best static knowledge)
    and packages one typed {!Col.t} per column.  The typed lookups
    ({!int_col}/{!int_opt}, …) are the checked constructors client code
    uses: asking for a bare accessor over a possibly-NULL column is
    refused with a [TYD003] diagnostic rather than deferred to a runtime
    surprise on the first NULL.

    The same nullability knowledge compiles into a storage {!codec}
    plan, so a table derived here scans and appends through the
    specialized codec with NULL-freedom enforced per column. *)

open Subql_relational

type column = Packed : ('a, 'n) Col.t -> column
(** A column handle with its type and nullability hidden — the uniform
    form for iterating a whole table. *)

type t = {
  name : string;
  schema : Schema.t;
  nulls : Subql_analysis.Nullability.t array;  (** positional, from the instance *)
  columns : column array;  (** one packed handle per schema position *)
}

val of_catalog : Catalog.t -> string -> t
(** @raise Catalog.Unknown_table when the table is absent. *)

val all_of_catalog : Catalog.t -> t list
(** Every table of the catalog, in {!Catalog.tables} order. *)

val name : t -> string

val schema : t -> Schema.t

val column : t -> string -> column
(** The packed handle for a named column, with its precise derived
    nullability.  @raise Diag.Fail [TYD001] on an unknown column. *)

(** {1 Typed lookups}

    [<ty>_col] requires the column to be both of the right type and
    derived non-NULL; [<ty>_opt] requires only the type and accepts
    either nullability (a non-NULL column widens soundly).
    @raise Diag.Fail [TYD001] unknown column, [TYD002] type mismatch,
    [TYD003] when a [_col] lookup hits a possibly-NULL column. *)

val int_col : t -> string -> (int, Col.non_null) Col.t

val int_opt : t -> string -> (int, Col.nullable) Col.t

val float_col : t -> string -> (float, Col.non_null) Col.t

val float_opt : t -> string -> (float, Col.nullable) Col.t

val str_col : t -> string -> (string, Col.non_null) Col.t

val str_opt : t -> string -> (string, Col.nullable) Col.t

val bool_col : t -> string -> (bool, Col.non_null) Col.t

val bool_opt : t -> string -> (bool, Col.nullable) Col.t

val codec : t -> Subql_storage.Codec.plan
(** The table's schema compiled for the specialized codec, with the
    derived non-NULL columns declared NULL-free — a stored NULL there
    decodes as [STO003] corruption instead of slipping through. *)
