(** Typed column handles over untyped tuples.

    A [('a, 'n) t] names one column of one table and carries, as phantom
    parameters, the OCaml type its cells project to ([int], [float],
    [string], [bool]) and whether the column is NULL-free ({!non_null})
    or may hold NULLs ({!nullable}).  The handle is the bridge between
    the engine's dynamically typed [Tuple.t] rows and typed client code:
    {!get} on a {!non_null} handle returns a bare ['a], {!get_opt}
    returns an ['a option] for either kind — so nullability mistakes are
    OCaml type errors, not runtime surprises.

    Handles are normally built by {!Derive} (from a catalog, with
    nullability inferred by [Analysis.Typing]) or by modules emitted by
    the [schema-gen] CLI command; {!make} is the raw constructor those
    layers use.  A handle used against a row it does not describe fails
    with a structured [TYD0xx] diagnostic, never a segfault or a silent
    wrong answer. *)

open Subql_relational

type non_null
(** Phantom index: the column provably holds no NULL. *)

type nullable
(** Phantom index: the column may hold NULL. *)

(** Cell representation, indexed by OCaml type and nullability. *)
type (_, _) repr =
  | Rint : (int, non_null) repr
  | Rint_opt : (int, nullable) repr
  | Rfloat : (float, non_null) repr
  | Rfloat_opt : (float, nullable) repr
  | Rstr : (string, non_null) repr
  | Rstr_opt : (string, nullable) repr
  | Rbool : (bool, non_null) repr
  | Rbool_opt : (bool, nullable) repr

type ('a, 'n) t = private {
  table : string;  (** owning table name *)
  name : string;  (** column name *)
  index : int;  (** position in the table's schema *)
  repr : ('a, 'n) repr;
}

val make : table:string -> name:string -> index:int -> ('a, 'n) repr -> ('a, 'n) t
(** @raise Invalid_argument on a negative index. *)

val table : (_, _) t -> string

val name : (_, _) t -> string

val index : (_, _) t -> int

val value_ty : (_, _) t -> Value.ty

val is_nullable : (_, _) t -> bool

val opt : ('a, _) t -> ('a, nullable) t
(** Forget the non-NULL fact (widening is always sound). *)

val get : ('a, non_null) t -> Tuple.t -> 'a
(** Project a cell from a row of the column's table.  Only defined on
    {!non_null} handles — asking for a bare value out of a nullable
    column is a compile-time error; use {!get_opt} or {!opt}.
    @raise Diag.Fail [TYD004] when the row is too short, [TYD005] when
    the cell is NULL or of the wrong dynamic type (the handle does not
    describe this row). *)

val get_opt : ('a, _) t -> Tuple.t -> 'a option
(** Like {!get} but total over NULLs: [None] for a NULL cell.
    @raise Diag.Fail [TYD004]/[TYD005] as for {!get} (type mismatches
    still fail — only NULL is absorbed). *)

val to_expr : (_, _) t -> rel:string -> Expr.t
(** The attribute reference [rel.name] for predicate construction. *)
