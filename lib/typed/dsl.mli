(** A phantom-typed combinator DSL over the nested-query AST.

    Queries built here elaborate {e directly} to
    {!Subql_nested.Nested_ast} — the same AST the SQL front-end parses
    into — so they flow unchanged through the optimizer, planner,
    verifier and certificate passes, and a DSL query that mirrors a SQL
    query produces the identical fingerprint and plan.  What the DSL
    adds is OCaml's type checker at query-construction time: comparing
    an [int] column with a [string] column, or feeding a [float]
    aggregate to an [int] comparison, is a compile error.

    Scoping is host-language scoping (HOAS): every range — the outer
    block, each subquery — introduces a {!scope} through a callback, and
    correlation is just using an enclosing scope's variable inside an
    inner callback:

    {[
      let open Subql_typed in
      let i = Derive.of_catalog catalog "I" in
      let o = Derive.of_catalog catalog "O" in
      let ok = Derive.int_opt o "k" and ik = Derive.int_opt i "k" in
      let q =
        Dsl.(
          from o "o" (fun o ->
              exists i "i"
                ~where:(fun i -> col i ik ==. col o ok)))
      in
      Subql.Eval.eval catalog
        (Subql.Optimize.optimize (Subql.Transform.to_algebra (Dsl.to_query q)))
    ]}

    Column handles carry their owning table, so using a column under a
    scope that ranges over a different table fails immediately with
    [TYD006] — the runtime residue of what the phantom types cannot see
    (two scopes may range over the same-typed tables). *)

open Subql_relational

type ('a, 'n) exp
(** A scalar expression yielding ['a], possibly NULL when ['n] is
    {!Col.nullable}. *)

type pred
(** A (3VL) predicate — the DSL image of [Nested_ast.pred]. *)

type query

type scope
(** One relation occurrence (table + alias) a predicate may read
    columns from. *)

type packed = P : ('a, 'n) Col.t -> packed

(** {1 Expressions} *)

val int : int -> (int, Col.non_null) exp

val float : float -> (float, Col.non_null) exp

val str : string -> (string, Col.non_null) exp

val bool : bool -> (bool, Col.non_null) exp

val col : scope -> ('a, 'n) Col.t -> ('a, 'n) exp
(** Reference a column through a scope.
    @raise Diag.Fail [TYD006] when the column does not belong to the
    scope's table, or was projected away by {!from_distinct}. *)

(** {1 Predicates}

    Comparisons require both sides to share the scalar type ['a];
    nullability is free (SQL comparison is 3VL anyway). *)

val ( ==. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val ( <>. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val ( <. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val ( <=. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val ( >. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val ( >=. ) : ('a, 'n) exp -> ('a, 'm) exp -> pred

val cmp : Expr.cmp -> ('a, 'n) exp -> ('a, 'm) exp -> pred

val is_null : ('a, 'n) exp -> pred

val is_not_null : ('a, 'n) exp -> pred

val ptrue : pred

val ( &&. ) : pred -> pred -> pred
(** Conjunction.  Two plain (subquery-free) atoms fuse into one atom —
    matching how hand-written and SQL-parsed predicates are shaped, so
    fingerprints agree. *)

val ( ||. ) : pred -> pred -> pred
(** Disjunction, with the same atom-fusion rule. *)

val not_ : pred -> pred

(** {1 Subquery predicates}

    Each takes the subquery's range as a {!Derive.t} plus its alias, and
    the optional correlated [where] as a callback receiving the
    subquery's scope.  Column arguments ([~col]) must share the scalar
    type with the left-hand side — the typed rendering of the AST's
    untyped column-name strings.
    @raise Diag.Fail [TYD006] when [~col] is not a column of the range
    table. *)

val exists : ?where:(scope -> pred) -> Derive.t -> string -> pred

val not_exists : ?where:(scope -> pred) -> Derive.t -> string -> pred

val some_ :
  ('a, 'n) exp -> Expr.cmp -> ?where:(scope -> pred) -> Derive.t -> string ->
  col:('a, 'm) Col.t -> pred

val all_ :
  ('a, 'n) exp -> Expr.cmp -> ?where:(scope -> pred) -> Derive.t -> string ->
  col:('a, 'm) Col.t -> pred

val in_ :
  ('a, 'n) exp -> ?where:(scope -> pred) -> Derive.t -> string -> col:('a, 'm) Col.t -> pred

val not_in :
  ('a, 'n) exp -> ?where:(scope -> pred) -> Derive.t -> string -> col:('a, 'm) Col.t -> pred

val scalar_cmp :
  ('a, 'n) exp -> Expr.cmp -> ?where:(scope -> pred) -> Derive.t -> string ->
  col:('a, 'm) Col.t -> pred

(** {1 Aggregate subqueries}

    An [('a, 'n) agg] yields ['a] (possibly NULL: every value aggregate
    is NULL on an empty or all-NULL range, hence {!Col.nullable}; the
    counting forms are provably non-NULL).  The aggregate is built
    inside a callback so its argument can read the subquery's scope. *)

type ('a, 'n) agg

val count_star : (int, Col.non_null) agg

val count : ('a, 'n) exp -> (int, Col.non_null) agg

val sum : (int, 'n) exp -> (int, Col.nullable) agg

val sum_float : (float, 'n) exp -> (float, Col.nullable) agg

val min_ : ('a, 'n) exp -> ('a, Col.nullable) agg

val max_ : ('a, 'n) exp -> ('a, Col.nullable) agg

val avg : (int, 'n) exp -> (float, Col.nullable) agg
(** SQL [AVG] over ints is a float (integer-division averages are a
    classic wrong-answer source). *)

val avg_float : (float, 'n) exp -> (float, Col.nullable) agg

val first : ('a, 'n) exp -> ('a, Col.nullable) agg

val agg_cmp :
  ('a, 'n) exp -> Expr.cmp -> (scope -> ('a, 'm) agg) -> ?where:(scope -> pred) ->
  Derive.t -> string -> pred

val agg_cmp_num :
  (int, 'n) exp -> Expr.cmp -> (scope -> (float, 'm) agg) -> ?where:(scope -> pred) ->
  Derive.t -> string -> pred
(** The one sanctioned cross-type comparison: an [int] expression
    against a [float]-valued aggregate (e.g. [x > AVG(y)]), mirroring
    the engine's numeric promotion. *)

(** {1 Query blocks} *)

val from : Derive.t -> string -> (scope -> pred) -> query
(** [SELECT * FROM t alias WHERE …]. *)

val from_product :
  Derive.t * string -> Derive.t * string -> (scope -> scope -> pred) -> query
(** Two-relation FROM clause: both aliases stay visible to subqueries
    (the block itself is unaliased, as in the AST). *)

val from_distinct : Derive.t -> cols:packed list -> string -> (scope -> pred) -> query
(** Range over [SELECT DISTINCT cols FROM t]: the scope exposes only
    [cols]; reading any other column of [t] fails with [TYD006].
    @raise Diag.Fail [TYD006] when a [col] is not a column of [t]. *)

val to_query : query -> Subql_nested.Nested_ast.query
(** The underlying AST — hand this to [Subql.Transform]/[Subql_mqo]
    exactly as a parsed SQL query. *)
