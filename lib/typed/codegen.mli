(** OCaml source emission for derived tables — the [schema-gen] backend.

    [table_source] renders one {!Derive.t} as a self-contained OCaml
    module: the table name, its schema value, one typed {!Col.t}
    accessor per column, a [row] record ([option] fields exactly where
    the derivation says NULLs can occur), and [of_tuple]/[to_tuple]
    converters.  The emitted code depends only on [subql_typed] and
    [subql_relational], compiles warning-free, and is meant to be
    committed into a client project (the check-script compiles a fresh
    emission every run to keep that true).

    Column names pass through {!ident}: anything that is not a valid
    OCaml identifier is mangled deterministically, keywords and the
    module's own reserved names get a trailing underscore, and
    collisions are numbered — so generation never fails on a legal
    catalog, it only renames. *)

open Subql_relational

val ident : string -> string
(** The OCaml value identifier for a column name (lowercased first
    letter, illegal characters replaced by [_], keyword-safe).  Not
    collision-free on its own — emission adds numeric suffixes. *)

val module_name : string -> string
(** The OCaml module name for a table name. *)

val table_source : Derive.t -> string

val catalog_source : ?tables:string list -> Catalog.t -> string
(** Modules for the given tables (default: every catalog table), with a
    generation header.
    @raise Catalog.Unknown_table when a requested table is absent. *)
