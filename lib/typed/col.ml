open Subql_relational

type non_null = |

type nullable = |

type (_, _) repr =
  | Rint : (int, non_null) repr
  | Rint_opt : (int, nullable) repr
  | Rfloat : (float, non_null) repr
  | Rfloat_opt : (float, nullable) repr
  | Rstr : (string, non_null) repr
  | Rstr_opt : (string, nullable) repr
  | Rbool : (bool, non_null) repr
  | Rbool_opt : (bool, nullable) repr

type ('a, 'n) t = { table : string; name : string; index : int; repr : ('a, 'n) repr }

let make ~table ~name ~index repr =
  if index < 0 then invalid_arg "Col.make: negative column index";
  { table; name; index; repr }

let table c = c.table

let name c = c.name

let index c = c.index

let value_ty (type a n) (c : (a, n) t) =
  match c.repr with
  | Rint | Rint_opt -> Value.Tint
  | Rfloat | Rfloat_opt -> Value.Tfloat
  | Rstr | Rstr_opt -> Value.Tstring
  | Rbool | Rbool_opt -> Value.Tbool

let is_nullable (type a n) (c : (a, n) t) =
  match c.repr with
  | Rint | Rfloat | Rstr | Rbool -> false
  | Rint_opt | Rfloat_opt | Rstr_opt | Rbool_opt -> true

let opt (type a n) (c : (a, n) t) : (a, nullable) t =
  let repr : (a, nullable) repr =
    match c.repr with
    | Rint -> Rint_opt
    | Rint_opt -> Rint_opt
    | Rfloat -> Rfloat_opt
    | Rfloat_opt -> Rfloat_opt
    | Rstr -> Rstr_opt
    | Rstr_opt -> Rstr_opt
    | Rbool -> Rbool_opt
    | Rbool_opt -> Rbool_opt
  in
  { table = c.table; name = c.name; index = c.index; repr }

let fail ~table ~name ~code fmt =
  Format.kasprintf
    (fun msg ->
      raise (Diag.Fail (Diag.error ~subject:(Printf.sprintf "%s.%s" table name) ~code msg)))
    fmt

let cell (c : (_, _) t) (row : Tuple.t) =
  if c.index >= Array.length row then
    fail ~table:c.table ~name:c.name ~code:"TYD004"
      "column index %d out of range for a %d-ary row" c.index (Array.length row);
  row.(c.index)

let get : type a. (a, non_null) t -> Tuple.t -> a =
 fun c row ->
  let v = cell c row in
  match c.repr, v with
  | Rint, Value.Int i -> i
  | Rfloat, Value.Float f -> f
  | Rstr, Value.Str s -> s
  | Rbool, Value.Bool b -> b
  | _, v ->
    fail ~table:c.table ~name:c.name ~code:"TYD005" "expected a non-NULL %s cell, found %s"
      (Value.ty_to_string (value_ty c)) (Value.to_string v)

let get_opt : type a n. (a, n) t -> Tuple.t -> a option =
 fun c row ->
  match cell c row with
  | Value.Null -> None
  | v -> (
    match c.repr, v with
    | Rint, Value.Int i -> Some i
    | Rint_opt, Value.Int i -> Some i
    | Rfloat, Value.Float f -> Some f
    | Rfloat_opt, Value.Float f -> Some f
    | Rstr, Value.Str s -> Some s
    | Rstr_opt, Value.Str s -> Some s
    | Rbool, Value.Bool b -> Some b
    | Rbool_opt, Value.Bool b -> Some b
    | _, v ->
      fail ~table:c.table ~name:c.name ~code:"TYD005" "expected a %s cell, found %s"
        (Value.ty_to_string (value_ty c)) (Value.to_string v))

let to_expr c ~rel = Expr.attr ~rel c.name
