open Subql_relational
module N = Subql_nested.Nested_ast
module L = Lexer

type grouped = {
  keys : (string option * string) list;
  aggs : Aggregate.spec list;
  having : Expr.t option;
  out : (Expr.t * string) list;
}

type statement = {
  query : N.query;
  distinct : bool;
  grouped : grouped option;
  order_by : ((string option * string) * [ `Asc | `Desc ]) list;
  limit : int option;
}

exception Parse_error of string * int

type state = { tokens : (L.token * int) array; mutable pos : int }

let error st fmt =
  let offset =
    if st.pos < Array.length st.tokens then snd st.tokens.(st.pos) else 0
  in
  Format.kasprintf (fun msg -> raise (Parse_error (msg, offset))) fmt

let peek st = fst st.tokens.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then fst st.tokens.(st.pos + 1) else L.Eof

let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else error st "expected %s, found %s" (L.token_to_string tok) (L.token_to_string (peek st))

let expect_ident st =
  match peek st with
  | L.Ident name ->
    advance st;
    name
  | t -> error st "expected an identifier, found %s" (L.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Scalar expressions                                                   *)
(* ------------------------------------------------------------------ *)

let parse_column_ref st =
  let first = expect_ident st in
  if peek st = L.Dot then begin
    advance st;
    let name = expect_ident st in
    (Some first, name)
  end
  else (None, first)

let rec parse_expr st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match peek st with
    | L.Plus ->
      advance st;
      lhs := Expr.Arith (Expr.Add, !lhs, parse_multiplicative st);
      loop ()
    | L.Minus ->
      advance st;
      lhs := Expr.Arith (Expr.Sub, !lhs, parse_multiplicative st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match peek st with
    | L.Star ->
      advance st;
      lhs := Expr.Arith (Expr.Mul, !lhs, parse_unary st);
      loop ()
    | L.Slash ->
      advance st;
      lhs := Expr.Arith (Expr.Div, !lhs, parse_unary st);
      loop ()
    | L.Percent ->
      advance st;
      lhs := Expr.Arith (Expr.Mod, !lhs, parse_unary st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match peek st with
  | L.Minus ->
    advance st;
    Expr.Neg (parse_unary st)
  | _ -> parse_primary_expr st

and parse_primary_expr st =
  match peek st with
  | L.Int_lit i ->
    advance st;
    Expr.int i
  | L.Float_lit f ->
    advance st;
    Expr.float f
  | L.String_lit s ->
    advance st;
    Expr.str s
  | L.True ->
    advance st;
    Expr.bool true
  | L.False ->
    advance st;
    Expr.bool false
  | L.Null ->
    advance st;
    Expr.null
  | L.Ident _ ->
    let rel, name = parse_column_ref st in
    Expr.Attr (rel, name)
  | L.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st L.Rparen;
    e
  | t -> error st "expected an expression, found %s" (L.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Predicates and subqueries                                            *)
(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | L.Eq -> Some Expr.Eq
  | L.Neq -> Some Expr.Ne
  | L.Lt -> Some Expr.Lt
  | L.Le -> Some Expr.Le
  | L.Gt -> Some Expr.Gt
  | L.Ge -> Some Expr.Ge
  | _ -> None

(* What the subquery SELECTs; a bare or qualified column is resolved
   against the subquery alias once FROM has been parsed. *)
type raw_sel = Rstar | Rcol of string option * string | Ragg of Aggregate.func

let parse_agg_func st kw =
  advance st;
  expect st L.Lparen;
  let func =
    match kw, peek st with
    | L.Count, L.Star ->
      advance st;
      Aggregate.Count_star
    | _ ->
      let e = parse_expr st in
      (match kw with
      | L.Count -> Aggregate.Count e
      | L.Sum -> Aggregate.Sum e
      | L.Min -> Aggregate.Min e
      | L.Max -> Aggregate.Max e
      | L.Avg -> Aggregate.Avg e
      | L.First -> Aggregate.First e
      | _ -> assert false)
  in
  expect st L.Rparen;
  func

let parse_alias st default =
  match peek st with
  | L.As ->
    advance st;
    expect_ident st
  | L.Ident _ -> expect_ident st
  | _ -> default

let rec parse_subquery st =
  expect st L.Select;
  let sel =
    match peek st with
    | L.Star ->
      advance st;
      Rstar
    | L.Int_lit _ ->
      (* the SELECT 1 idiom for EXISTS *)
      advance st;
      Rstar
    | (L.Count | L.Sum | L.Min | L.Max | L.Avg | L.First) as kw ->
      Ragg (parse_agg_func st kw)
    | L.Ident _ ->
      let rel, name = parse_column_ref st in
      Rcol (rel, name)
    | t -> error st "expected a subquery select item, found %s" (L.token_to_string t)
  in
  expect st L.From;
  let table = expect_ident st in
  let alias = parse_alias st table in
  let where = if peek st = L.Where then (advance st; parse_pred st) else N.Ptrue in
  expect st L.Rparen;
  (sel, N.table table, alias, where)

and sub_column st alias = function
  | Rcol (None, name) -> name
  | Rcol (Some r, name) when r = alias -> name
  | Rcol (Some r, name) ->
    error st "subquery select column must belong to %s, found %s.%s" alias r name
  | Rstar -> error st "this subquery must select a single column"
  | Ragg _ -> error st "this subquery must select a column, not an aggregate"

and parse_pred st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = L.Or do
    advance st;
    lhs := N.por !lhs (parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while peek st = L.And do
    advance st;
    lhs := N.pand !lhs (parse_not st)
  done;
  !lhs

and parse_not st =
  if peek st = L.Not then begin
    advance st;
    N.pnot (parse_not st)
  end
  else parse_pred_primary st

and parse_pred_primary st =
  match peek st with
  | L.Exists ->
    advance st;
    expect st L.Lparen;
    let sel, source, alias, where = parse_subquery st in
    (match sel with
    | Rstar | Rcol _ -> ()
    | Ragg _ -> error st "EXISTS subquery cannot select an aggregate");
    N.Sub { kind = N.Exists; source; s_alias = alias; s_where = where }
  | L.Lparen -> (
    (* Either a parenthesized predicate or a parenthesized scalar
       expression starting a comparison: try the predicate first. *)
    let saved = st.pos in
    advance st;
    match parse_pred st with
    | p when peek st = L.Rparen ->
      advance st;
      p
    | _ ->
      st.pos <- saved;
      parse_comparison st
    | exception Parse_error _ ->
      st.pos <- saved;
      parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_expr st in
  match peek st with
  | L.Between ->
    advance st;
    let lo = parse_expr st in
    expect st L.And;
    let hi = parse_expr st in
    N.atom (Expr.and_ (Expr.ge lhs lo) (Expr.le lhs hi))
  | L.Not when peek2 st = L.Between ->
    advance st;
    advance st;
    let lo = parse_expr st in
    expect st L.And;
    let hi = parse_expr st in
    (* NOT BETWEEN under 3VL: the complement of the conjunction. *)
    N.atom (Expr.not_ (Expr.and_ (Expr.ge lhs lo) (Expr.le lhs hi)))
  | L.Is ->
    advance st;
    let negated = peek st = L.Not in
    if negated then advance st;
    expect st L.Null;
    N.atom (if negated then Expr.Is_not_null lhs else Expr.Is_null lhs)
  | L.In ->
    advance st;
    expect st L.Lparen;
    let sel, source, alias, where = parse_subquery st in
    let col = sub_column st alias sel in
    N.Sub { kind = N.In_ (lhs, col); source; s_alias = alias; s_where = where }
  | L.Not when peek2 st = L.In ->
    advance st;
    advance st;
    expect st L.Lparen;
    let sel, source, alias, where = parse_subquery st in
    let col = sub_column st alias sel in
    N.Sub { kind = N.Not_in (lhs, col); source; s_alias = alias; s_where = where }
  | tok -> (
    match cmp_of_token tok with
    | None -> error st "expected a comparison, IS NULL, or IN, found %s" (L.token_to_string tok)
    | Some op -> (
      advance st;
      match peek st with
      | L.Any | L.Some_kw ->
        advance st;
        expect st L.Lparen;
        let sel, source, alias, where = parse_subquery st in
        let col = sub_column st alias sel in
        N.Sub { kind = N.Quant (lhs, op, N.Qsome, col); source; s_alias = alias; s_where = where }
      | L.All ->
        advance st;
        expect st L.Lparen;
        let sel, source, alias, where = parse_subquery st in
        let col = sub_column st alias sel in
        N.Sub { kind = N.Quant (lhs, op, N.Qall, col); source; s_alias = alias; s_where = where }
      | L.Lparen when peek2 st = L.Select ->
        advance st;
        let sel, source, alias, where = parse_subquery st in
        (match sel with
        | Ragg func ->
          N.Sub { kind = N.Cmp_agg (lhs, op, func); source; s_alias = alias; s_where = where }
        | Rcol _ ->
          let col = sub_column st alias sel in
          N.Sub { kind = N.Cmp_scalar (lhs, op, col); source; s_alias = alias; s_where = where }
        | Rstar -> error st "a comparison subquery must select a column or an aggregate")
      | _ ->
        let rhs = parse_expr st in
        N.atom (Expr.Cmp (op, lhs, rhs))))


(* ------------------------------------------------------------------ *)
(* HAVING: aggregate-aware predicate over the grouped result            *)
(* ------------------------------------------------------------------ *)

let func_equal a b =
  match a, b with
  | Aggregate.Count_star, Aggregate.Count_star -> true
  | Aggregate.Count x, Aggregate.Count y
  | Aggregate.Sum x, Aggregate.Sum y
  | Aggregate.Min x, Aggregate.Min y
  | Aggregate.Max x, Aggregate.Max y
  | Aggregate.Avg x, Aggregate.Avg y
  | Aggregate.First x, Aggregate.First y ->
    Expr.equal x y
  | ( ( Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Min _
      | Aggregate.Max _ | Aggregate.Avg _ | Aggregate.First _ ),
      _ ) ->
    false

(* Register an aggregate occurrence, reusing an existing column when the
   same aggregate already appears (in the select list or earlier in
   HAVING). *)
let register_agg collector func =
  match List.find_opt (fun (f, _) -> func_equal f func) !collector with
  | Some (_, name) -> name
  | None ->
    let name = Printf.sprintf "agg$%d" (List.length !collector + 1) in
    collector := !collector @ [ (func, name) ];
    name

let rec parse_h_expr st coll = parse_h_add st coll

and parse_h_add st coll =
  let lhs = ref (parse_h_mul st coll) in
  let rec loop () =
    match peek st with
    | L.Plus ->
      advance st;
      lhs := Expr.Arith (Expr.Add, !lhs, parse_h_mul st coll);
      loop ()
    | L.Minus ->
      advance st;
      lhs := Expr.Arith (Expr.Sub, !lhs, parse_h_mul st coll);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_h_mul st coll =
  let lhs = ref (parse_h_unary st coll) in
  let rec loop () =
    match peek st with
    | L.Star ->
      advance st;
      lhs := Expr.Arith (Expr.Mul, !lhs, parse_h_unary st coll);
      loop ()
    | L.Slash ->
      advance st;
      lhs := Expr.Arith (Expr.Div, !lhs, parse_h_unary st coll);
      loop ()
    | L.Percent ->
      advance st;
      lhs := Expr.Arith (Expr.Mod, !lhs, parse_h_unary st coll);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_h_unary st coll =
  match peek st with
  | L.Minus ->
    advance st;
    Expr.Neg (parse_h_unary st coll)
  | (L.Count | L.Sum | L.Min | L.Max | L.Avg | L.First) as kw ->
    Expr.attr (register_agg coll (parse_agg_func st kw))
  | L.Lparen ->
    advance st;
    let e = parse_h_expr st coll in
    expect st L.Rparen;
    e
  | _ -> parse_primary_expr st

and parse_h_pred st coll = parse_h_or st coll

and parse_h_or st coll =
  let lhs = ref (parse_h_and st coll) in
  while peek st = L.Or do
    advance st;
    lhs := Expr.or_ !lhs (parse_h_and st coll)
  done;
  !lhs

and parse_h_and st coll =
  let lhs = ref (parse_h_not st coll) in
  while peek st = L.And do
    advance st;
    lhs := Expr.and_ !lhs (parse_h_not st coll)
  done;
  !lhs

and parse_h_not st coll =
  if peek st = L.Not then begin
    advance st;
    Expr.not_ (parse_h_not st coll)
  end
  else parse_h_leaf st coll

and parse_h_leaf st coll =
  match peek st with
  | L.Lparen -> (
    let saved = st.pos in
    advance st;
    match parse_h_pred st coll with
    | p when peek st = L.Rparen ->
      advance st;
      p
    | _ ->
      st.pos <- saved;
      parse_h_comparison st coll
    | exception Parse_error _ ->
      st.pos <- saved;
      parse_h_comparison st coll)
  | L.Exists -> error st "HAVING does not support subqueries"
  | _ -> parse_h_comparison st coll

and parse_h_comparison st coll =
  let lhs = parse_h_expr st coll in
  match peek st with
  | L.Is ->
    advance st;
    let negated = peek st = L.Not in
    if negated then advance st;
    expect st L.Null;
    if negated then Expr.Is_not_null lhs else Expr.Is_null lhs
  | tok -> (
    match cmp_of_token tok with
    | Some op ->
      advance st;
      Expr.Cmp (op, lhs, parse_h_expr st coll)
    | None -> error st "expected a comparison in HAVING, found %s" (L.token_to_string tok))

(* ------------------------------------------------------------------ *)
(* Top-level statement                                                  *)
(* ------------------------------------------------------------------ *)

type sel_item =
  | Item_star
  | Item_col of string option * string
  | Item_expr of Expr.t * string
  | Item_agg of Aggregate.func * string option

let parse_select_item st =
  match peek st with
  | L.Star ->
    advance st;
    Item_star
  | (L.Count | L.Sum | L.Min | L.Max | L.Avg) as kw ->
    let func = parse_agg_func st kw in
    let name =
      if peek st = L.As then begin
        advance st;
        Some (expect_ident st)
      end
      else None
    in
    Item_agg (func, name)
  | _ -> (
    let start = st.pos in
    let e = parse_expr st in
    match peek st, e with
    | L.As, _ ->
      advance st;
      Item_expr (e, expect_ident st)
    | _, Expr.Attr (rel, name) when st.pos = start + (match rel with Some _ -> 3 | None -> 1) ->
      Item_col (rel, name)
    | _, Expr.Attr (_, name) -> Item_expr (e, name)
    | _ -> error st "a computed select item needs an AS name")

let parse_statement st =
  expect st L.Select;
  let distinct =
    if peek st = L.Distinct then begin
      advance st;
      true
    end
    else false
  in
  let items =
    let rec loop acc =
      let item = parse_select_item st in
      if peek st = L.Comma then begin
        advance st;
        loop (item :: acc)
      end
      else List.rev (item :: acc)
    in
    loop []
  in
  expect st L.From;
  let rec from_items acc =
    let table = expect_ident st in
    let alias = parse_alias st table in
    let acc = (table, alias) :: acc in
    if peek st = L.Comma then begin
      advance st;
      from_items acc
    end
    else List.rev acc
  in
  let from = from_items [] in
  let base, alias =
    match from with
    | [ (table, alias) ] -> (N.table table, alias)
    | items ->
      let product =
        List.fold_left
          (fun acc (table, alias) ->
            let item = N.Balias (alias, N.table table) in
            match acc with None -> Some item | Some p -> Some (N.Bproduct (p, item)))
          None items
      in
      (Option.get product, "")
  in
  let where = if peek st = L.Where then (advance st; parse_pred st) else N.Ptrue in
  let group_keys =
    if peek st = L.Group then begin
      advance st;
      expect st L.By;
      let rec cols acc =
        let c = parse_column_ref st in
        if peek st = L.Comma then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let agg_collector = ref [] in
  let having =
    if peek st = L.Having then begin
      advance st;
      Some (parse_h_pred st agg_collector)
    end
    else None
  in
  let order_by =
    if peek st = L.Order then begin
      advance st;
      expect st L.By;
      let rec items acc =
        let col = parse_column_ref st in
        let dir =
          match peek st with
          | L.Asc ->
            advance st;
            `Asc
          | L.Desc ->
            advance st;
            `Desc
          | _ -> `Asc
        in
        if peek st = L.Comma then begin
          advance st;
          items ((col, dir) :: acc)
        end
        else List.rev ((col, dir) :: acc)
      in
      items []
    end
    else []
  in
  let limit =
    if peek st = L.Limit then begin
      advance st;
      match peek st with
      | L.Int_lit n when n >= 0 ->
        advance st;
        Some n
      | t -> error st "LIMIT expects a non-negative integer, found %s" (L.token_to_string t)
    end
    else None
  in
  if peek st <> L.Eof then error st "trailing input: %s" (L.token_to_string (peek st));
  let has_aggs =
    List.exists (function Item_agg _ -> true | Item_star | Item_col _ | Item_expr _ -> false) items
  in
  if group_keys = [] && (not has_aggs) && having = None then
    let select =
      match items with
      | [ Item_star ] -> N.Select_all
      | items
        when List.for_all
               (function
                 | Item_col _ -> true | Item_star | Item_expr _ | Item_agg _ -> false)
               items ->
        N.Select_cols
          (List.map
             (function
               | Item_col (r, n) -> (r, n)
               | Item_star | Item_expr _ | Item_agg _ -> assert false)
             items)
      | items ->
        N.Select_exprs
          (List.map
             (function
               | Item_expr (e, n) -> (e, n)
               | Item_col (r, n) -> (Expr.Attr (r, n), n)
               | Item_agg _ -> assert false
               | Item_star -> error st "* cannot be combined with other select items")
             items)
    in
    { query = N.query ~select ~base ~alias where; distinct; grouped = None; order_by; limit }
  else begin
    (* Aggregating statement: engines return the qualifying rows
       (Select_all); grouping and the final projection happen in
       apply_grouping. *)
    let used_names = ref [] in
    let uniquify base_name =
      let rec go candidate i =
        if List.mem candidate !used_names then go (Printf.sprintf "%s%d" base_name i) (i + 1)
        else begin
          used_names := candidate :: !used_names;
          candidate
        end
      in
      go base_name 2
    in
    let display_of_func = function
      | Aggregate.Count_star | Aggregate.Count _ -> "count"
      | Aggregate.Sum _ -> "sum"
      | Aggregate.Min _ -> "min"
      | Aggregate.Max _ -> "max"
      | Aggregate.Avg _ -> "avg"
      | Aggregate.First _ -> "first"
    in
    let out =
      List.map
        (fun item ->
          match item with
          | Item_star -> error st "SELECT * cannot be combined with GROUP BY"
          | Item_col (r, n) ->
            ignore (uniquify n);
            (Expr.Attr (r, n), n)
          | Item_expr (e, n) ->
            ignore (uniquify n);
            (e, n)
          | Item_agg (func, explicit) ->
            let display =
              match explicit with Some n -> uniquify n | None -> uniquify (display_of_func func)
            in
            let internal = register_agg agg_collector func in
            (Expr.attr internal, display))
        items
    in
    let aggs =
      List.map (fun (func, name) -> { Aggregate.func; name }) !agg_collector
    in
    let grouped = Some { keys = group_keys; aggs; having; out } in
    {
      query = N.query ~select:N.Select_all ~base ~alias where;
      distinct;
      grouped;
      order_by;
      limit;
    }
  end

let parse input =
  match L.tokenize input with
  | exception L.Lex_error (msg, pos) -> raise (Parse_error (msg, pos))
  | tokens ->
    let st = { tokens = Array.of_list tokens; pos = 0 } in
    parse_statement st

let parse_exn_to_string input =
  match parse input with
  | _ -> "no error"
  | exception Parse_error (msg, offset) ->
    let offset = min offset (max 0 (String.length input - 1)) in
    let line_start =
      match String.rindex_from_opt input (max 0 (offset - 1)) '\n' with
      | Some i -> i + 1
      | None -> 0
    in
    let line_end =
      match String.index_from_opt input offset '\n' with
      | Some i -> i
      | None -> String.length input
    in
    let line = String.sub input line_start (line_end - line_start) in
    let caret = String.make (max 0 (offset - line_start)) ' ' ^ "^" in
    Printf.sprintf "parse error: %s\n  %s\n  %s" msg line caret

let apply_grouping stmt rel =
  match stmt.grouped with
  | None -> rel
  | Some g ->
    let grouped_rel =
      match g.keys with
      | [] -> Ops.aggregate_all g.aggs rel
      | keys -> Ops.group_by ~keys ~aggs:g.aggs rel
    in
    let filtered =
      match g.having with None -> grouped_rel | Some h -> Ops.select h grouped_rel
    in
    Ops.project g.out filtered

let apply_post stmt rel =
  let rel = if stmt.distinct then Ops.distinct rel else rel in
  let rel =
    match stmt.order_by with
    | [] -> rel
    | by ->
      (* A grouped projection strips qualifiers, so fall back to the bare
         column name when the qualified lookup fails. *)
      let schema = Relation.schema rel in
      let by =
        List.map
          (fun (((q, name) as col), dir) ->
            match q with
            | Some _ when Schema.find_opt schema ?rel:q name = None -> ((None, name), dir)
            | _ -> (col, dir))
          by
      in
      Ops.sort ~by rel
  in
  match stmt.limit with None -> rel | Some n -> Ops.limit n rel
