open Subql_relational
module N = Subql_nested.Nested_ast

exception Unrepresentable of string

let unrepresentable fmt = Format.kasprintf (fun s -> raise (Unrepresentable s)) fmt

let string_literal s = "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let value_to_sql = function
  | Value.Null -> "NULL"
  | Value.Int i -> string_of_int i
  | Value.Float f ->
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Value.Str s -> string_literal s
  | Value.Bool b -> if b then "TRUE" else "FALSE"

let rec expr_to_sql = function
  | Expr.Const v -> value_to_sql v
  | Expr.Attr (None, n) -> n
  | Expr.Attr (Some r, n) -> r ^ "." ^ n
  | Expr.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_sql a) (Expr.cmp_to_string op) (expr_to_sql b)
  | Expr.And (a, b) -> Printf.sprintf "(%s AND %s)" (expr_to_sql a) (expr_to_sql b)
  | Expr.Or (a, b) -> Printf.sprintf "(%s OR %s)" (expr_to_sql a) (expr_to_sql b)
  | Expr.Not a -> Printf.sprintf "(NOT %s)" (expr_to_sql a)
  | Expr.Arith (op, a, b) ->
    let sym =
      match op with
      | Expr.Add -> "+"
      | Expr.Sub -> "-"
      | Expr.Mul -> "*"
      | Expr.Div -> "/"
      | Expr.Mod -> "%"
    in
    Printf.sprintf "(%s %s %s)" (expr_to_sql a) sym (expr_to_sql b)
  | Expr.Neg a -> Printf.sprintf "(-%s)" (expr_to_sql a)
  | Expr.Is_null a -> Printf.sprintf "(%s IS NULL)" (expr_to_sql a)
  | Expr.Is_not_null a -> Printf.sprintf "(%s IS NOT NULL)" (expr_to_sql a)
  | Expr.Is_true _ -> unrepresentable "IS TRUE has no surface syntax"
  | Expr.Null_safe_eq _ -> unrepresentable "null-safe equality has no surface syntax"

let func_to_sql = function
  | Aggregate.Count_star -> "COUNT(*)"
  | Aggregate.Count e -> Printf.sprintf "COUNT(%s)" (expr_to_sql e)
  | Aggregate.Sum e -> Printf.sprintf "SUM(%s)" (expr_to_sql e)
  | Aggregate.Min e -> Printf.sprintf "MIN(%s)" (expr_to_sql e)
  | Aggregate.Max e -> Printf.sprintf "MAX(%s)" (expr_to_sql e)
  | Aggregate.Avg e -> Printf.sprintf "AVG(%s)" (expr_to_sql e)
  | Aggregate.First e -> Printf.sprintf "FIRST(%s)" (expr_to_sql e)

(* FROM items of a base: only tables, aliased tables, and products. *)
let rec from_items = function
  | N.Btable t -> [ (t, t) ]
  | N.Balias (a, N.Btable t) -> [ (t, a) ]
  | N.Bproduct (l, r) -> from_items l @ from_items r
  | N.Balias (_, _) | N.Bselect _ | N.Bproject _ ->
    unrepresentable "base has no FROM syntax in the dialect"

let from_clause base alias =
  match base, alias with
  | N.Btable t, "" -> t
  | N.Btable t, a -> Printf.sprintf "%s %s" t a
  | b, "" ->
    String.concat ", "
      (List.map
         (fun (t, a) -> if t = a then t else Printf.sprintf "%s %s" t a)
         (from_items b))
  | _, _ -> unrepresentable "an aliased compound base has no FROM syntax"

let rec pred_to_sql = function
  | N.Ptrue -> "TRUE = TRUE"
  | N.Atom e -> expr_to_sql e
  | N.Pand (a, b) -> Printf.sprintf "(%s AND %s)" (pred_to_sql a) (pred_to_sql b)
  | N.Por (a, b) -> Printf.sprintf "(%s OR %s)" (pred_to_sql a) (pred_to_sql b)
  | N.Pnot a -> Printf.sprintf "(NOT %s)" (pred_to_sql a)
  | N.Sub s -> sub_to_sql s

and sub_body ?(sel = "*") s =
  let where =
    match s.N.s_where with N.Ptrue -> "" | w -> " WHERE " ^ pred_to_sql w
  in
  Printf.sprintf "(SELECT %s FROM %s %s%s)" sel (from_clause s.N.source "") s.N.s_alias where

and sub_to_sql s =
  match s.N.kind with
  | N.Exists -> "EXISTS " ^ sub_body s
  | N.Not_exists -> "NOT EXISTS " ^ sub_body s
  | N.Quant (lhs, op, q, col) ->
    Printf.sprintf "%s %s %s %s" (expr_to_sql lhs) (Expr.cmp_to_string op)
      (match q with N.Qsome -> "SOME" | N.Qall -> "ALL")
      (sub_body ~sel:col s)
  | N.In_ (lhs, col) -> Printf.sprintf "%s IN %s" (expr_to_sql lhs) (sub_body ~sel:col s)
  | N.Not_in (lhs, col) ->
    Printf.sprintf "%s NOT IN %s" (expr_to_sql lhs) (sub_body ~sel:col s)
  | N.Cmp_scalar (lhs, op, col) ->
    Printf.sprintf "%s %s %s" (expr_to_sql lhs) (Expr.cmp_to_string op) (sub_body ~sel:col s)
  | N.Cmp_agg (lhs, op, func) ->
    Printf.sprintf "%s %s %s" (expr_to_sql lhs) (Expr.cmp_to_string op)
      (sub_body ~sel:(func_to_sql func) s)

let select_to_sql = function
  | N.Select_all -> "*"
  | N.Select_cols cols ->
    String.concat ", " (List.map (function None, n -> n | Some r, n -> r ^ "." ^ n) cols)
  | N.Select_exprs exprs ->
    String.concat ", "
      (List.map (fun (e, n) -> Printf.sprintf "%s AS %s" (expr_to_sql e) n) exprs)

let query_to_sql q =
  let where =
    match q.N.q_where with N.Ptrue -> "" | w -> " WHERE " ^ pred_to_sql w
  in
  Printf.sprintf "SELECT %s FROM %s%s" (select_to_sql q.N.q_select)
    (from_clause q.N.q_base q.N.q_alias)
    where
