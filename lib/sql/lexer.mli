(** Tokenizer for the SQL subset.

    Keywords are case-insensitive; identifiers keep their case.  String
    literals use single quotes with [''] as the escaped quote. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  (* keywords *)
  | Select
  | Distinct
  | From
  | Where
  | As
  | And
  | Or
  | Not
  | Exists
  | In
  | Any
  | Some_kw
  | All
  | Is
  | Null
  | True
  | False
  | Count
  | Sum
  | Min
  | Max
  | Avg
  | First
  | Between
  | Group
  | Having
  | Order
  | By
  | Limit
  | Asc
  | Desc
  (* symbols *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Slash
  | Percent
  | Eof

exception Lex_error of string * int
(** Message and character offset. *)

val token_to_string : token -> string

val tokenize : string -> (token * int) list
(** Tokens with their starting offsets; always ends with [Eof]. *)
