type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Select
  | Distinct
  | From
  | Where
  | As
  | And
  | Or
  | Not
  | Exists
  | In
  | Any
  | Some_kw
  | All
  | Is
  | Null
  | True
  | False
  | Count
  | Sum
  | Min
  | Max
  | Avg
  | First
  | Between
  | Group
  | Having
  | Order
  | By
  | Limit
  | Asc
  | Desc
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Slash
  | Percent
  | Eof

exception Lex_error of string * int

let keywords =
  [
    ("select", Select);
    ("distinct", Distinct);
    ("from", From);
    ("where", Where);
    ("as", As);
    ("and", And);
    ("or", Or);
    ("not", Not);
    ("exists", Exists);
    ("in", In);
    ("any", Any);
    ("some", Some_kw);
    ("all", All);
    ("is", Is);
    ("null", Null);
    ("true", True);
    ("false", False);
    ("count", Count);
    ("sum", Sum);
    ("min", Min);
    ("max", Max);
    ("avg", Avg);
    ("first", First);
    ("between", Between);
    ("group", Group);
    ("having", Having);
    ("order", Order);
    ("by", By);
    ("limit", Limit);
    ("asc", Asc);
    ("desc", Desc);
  ]

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star -> "*"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eof -> "end of input"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keywords with
    | Some (name, _) -> String.uppercase_ascii name
    | None -> "?")

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let out = ref [] in
  let emit pos tok = out := (tok, pos) :: !out in
  let rec skip_ws i =
    if i < n && (input.[i] = ' ' || input.[i] = '\t' || input.[i] = '\n' || input.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let rec loop i =
    let i = skip_ws i in
    if i >= n then emit i Eof
    else
      let c = input.[i] in
      if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        (match List.assoc_opt (String.lowercase_ascii word) keywords with
        | Some kw -> emit i kw
        | None -> emit i (Ident word));
        loop !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
          incr j;
          while !j < n && is_digit input.[!j] do
            incr j
          done;
          let text = String.sub input i (!j - i) in
          emit i (Float_lit (float_of_string text))
        end
        else emit i (Int_lit (int_of_string (String.sub input i (!j - i))));
        loop !j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        emit i (String_lit (Buffer.contents buf));
        loop j
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "!=" ->
          emit i Neq;
          loop (i + 2)
        | "<=" ->
          emit i Le;
          loop (i + 2)
        | ">=" ->
          emit i Ge;
          loop (i + 2)
        | _ -> (
          let simple tok =
            emit i tok;
            loop (i + 1)
          in
          match c with
          | '(' -> simple Lparen
          | ')' -> simple Rparen
          | ',' -> simple Comma
          | '.' -> simple Dot
          | '*' -> simple Star
          | '=' -> simple Eq
          | '<' -> simple Lt
          | '>' -> simple Gt
          | '+' -> simple Plus
          | '-' -> simple Minus
          | '/' -> simple Slash
          | '%' -> simple Percent
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %c" c, i)))
      end
  in
  loop 0;
  List.rev !out
