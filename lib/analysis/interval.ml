open Subql_relational
open Subql

type certified = {
  certificate : Cost.certificate;
  diags : Diag.t list;
}

(* The certificate is sound by construction; the only analysis-level
   finding is {e vacuity} — an infinite bound certifies nothing, and the
   tree pinpoints which scans lost the statistics. *)
let unknown_tables stats plan =
  List.filter
    (fun t -> Cost.Stats.table_rows_opt stats t = None)
    (Deltaable.plan_tables plan)

let certify ?(config = Eval.default_config) stats plan =
  let certificate = Cost.memory_height_certified stats ~config plan in
  let diags =
    if Float.is_finite certificate.Cost.bound then []
    else
      match unknown_tables stats plan with
      | [] ->
        [
          Diag.warning ~code:"IVL001"
            "certified memory bound is infinite: an operator's cardinality interval is \
             unbounded";
        ]
      | ts ->
        List.map
          (fun t ->
            Diag.makef ~subject:t Diag.Warning ~code:"IVL001"
              "certified memory bound is infinite: no row-count statistics for table %s"
              t)
          ts
  in
  { certificate; diags = Diag.sort diags }

(* JSON cannot carry infinity; an unbounded hi serializes as "inf" so
   check.sh's finite-bound gate can grep for it literally. *)
let json_bound f =
  let open Subql_obs.Json in
  if Float.is_finite f then Float f else Str "inf"

let rec tree_to_json (t : Cost.Interval.tree) =
  let open Subql_obs.Json in
  Obj
    [
      ("op", Str t.Cost.Interval.op);
      ("path", List (List.map (fun s -> Str s) t.Cost.Interval.path));
      ("lo", Float t.Cost.Interval.ival.Cost.Interval.lo);
      ("hi", json_bound t.Cost.Interval.ival.Cost.Interval.hi);
      ("children", List (List.map tree_to_json t.Cost.Interval.children));
    ]

let certificate_to_json (c : Cost.certificate) =
  let open Subql_obs.Json in
  Obj
    [
      ("bound", json_bound c.Cost.bound);
      ("spill_bound", Float c.Cost.spill_bound);
      ("argmax_op", Str c.Cost.argmax_op);
      ("argmax_path", List (List.map (fun s -> Str s) c.Cost.argmax_path));
      ("argmax_rows", json_bound c.Cost.argmax_rows);
      ("intervals", tree_to_json c.Cost.tree);
    ]
