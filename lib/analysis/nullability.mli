(** The per-column nullability lattice of the static analyzer.

    Three points ordered by information: [Non_null] and [Always_null]
    are incomparable facts, [Maybe_null] is "don't know" (top).  The
    dataflow computes one point per output column of a plan; the rewrite
    verifier then demands that rewrites only move {e down} this order
    (never claim less than was known before — see {!leq}).

    The lattice is what makes the paper's counting translations
    certifiable: GMDJ count columns are provably [Non_null] (an empty
    range yields count 0, not NULL), so the count-based conditions of
    Table 1 never hit 3VL surprises. *)

type t = Non_null | Maybe_null | Always_null

val lub : t -> t -> t
(** Least upper bound: equal points join to themselves, anything else to
    [Maybe_null]. *)

val leq : t -> t -> bool
(** [leq x y]: is [x] at least as precise as [y]?  True iff
    [y = Maybe_null] or [x = y].  A rewrite from nullability [n] to [n']
    is sound when [leq n' n] holds pointwise — it may only {e narrow}. *)

val to_string : t -> string
(** ["non-null"], ["maybe-null"], ["always-null"]. *)

val pp : Format.formatter -> t -> unit
