(** Schema, type and nullability inference over algebra plans.

    One bottom-up walk computes, for every plan node, the output schema
    {e and} a {!Nullability.t} per output column, while collecting
    structured diagnostics ({!Subql_relational.Diag.t}) instead of
    raising.  The walk is a strict superset of
    {!Subql.Algebra.schema_diag}: where the evaluator-facing inference
    only resolves schemas, this one additionally

    - typechecks every predicate ([Select], join conditions, GMDJ θs,
      completion rules) in its frame ([TYP001]/[TYP002], [SCH001]/
      [SCH002]);
    - checks aggregate arguments ([TYP003]);
    - runs the nullability dataflow: table columns start from observed
      instance nullability, selections narrow columns their satisfied
      comparisons prove non-NULL, outer joins widen the inner side,
      GMDJ/GROUP BY count columns are {e provably non-NULL} while
      SUM/MIN/MAX/AVG columns may be NULL (empty or all-NULL range) —
      the fact that certifies the Table 1 counting translations;
    - flags counting conditions over possibly-NULL aggregate columns
      ([NUL002]): a selection conjunct above a GMDJ that reads a
      SUM/MIN/MAX/AVG column {e without} a COUNT guard in the same
      conjunct — the Table 1 translations are certified NULL-sound
      exactly because every value-aggregate comparison they emit is
      disjoined with a count test that decides the empty-range case
      first. *)

open Subql_relational

type env = {
  lookup : string -> Schema.t;  (** base-table schema resolution *)
  table_nulls : string -> Nullability.t array;
      (** per-column nullability of a base table, positionally *)
}

val env_of_catalog : Catalog.t -> env
(** Instance-based environment: a column is [Non_null] when no row of
    the current relation holds NULL in it (the catalog carries no
    NOT NULL declarations, so the instance is the best static
    knowledge available). *)

type verdict = {
  schema : Schema.t option;  (** [None] when inference failed fatally *)
  nulls : Nullability.t array option;  (** positional, same arity as schema *)
  diags : Diag.t list;  (** sorted ({!Diag.sort}); includes any fatal error *)
}

val infer : env -> Subql.Algebra.t -> verdict
(** Analyze a plan.  A fatal schema failure (unknown table/column …)
    yields [schema = None] but still reports every diagnostic collected
    up to that point. *)

val expr_nulls : (Schema.t * Nullability.t array) array -> Expr.t -> Nullability.t
(** Nullability of an expression under frames (outermost first,
    references resolve innermost-first like {!Expr.compile_frames}).
    Conservative: [Maybe_null] whenever NULL cannot be ruled out. *)
