open Subql_relational
open Subql

type laws = { has_identity : bool; associative : bool; commutative : bool }

(* Derived structurally from the accumulator semantics in [Aggregate]:
   COUNT/SUM add, MIN/MAX take lattice meets/joins, AVG carries
   (sum, count) — all commutative monoids.  FIRST keeps the earliest
   non-NULL value: the fresh accumulator is an identity and
   concatenation-order merging associates, but swapping the operands
   swaps which partition "arrived first". *)
let laws_of = function
  | Aggregate.Count_star | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Min _
  | Aggregate.Max _ | Aggregate.Avg _ ->
    { has_identity = true; associative = true; commutative = true }
  | Aggregate.First _ -> { has_identity = true; associative = true; commutative = false }

let is_monoid l = l.has_identity && l.associative

(* Where an aggregate's accumulators can meet a [Chunk.Exchange]:

   - GMDJ blocks ([Md] / [Md_completed]): partitioned evaluation gives
     every worker its own accumulator matrix and merges them in
     scheduler order — the merge must be a {e commutative} monoid.
   - [Group_by]: the exchange hash-partitions by group key, so a group
     never splits across workers and no cross-worker merge happens; an
     order-sensitive aggregate is lawful only because routing preserves
     per-key arrival order (and spilling re-streams partition files in
     append order) — worth a warning, not a refusal.
   - [Aggregate_all]: evaluated serially on the coordinator today, but
     a non-monoid state could never be split at all. *)
let certify ?(laws_of = laws_of) plan =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let check_spec ~path ~merging (spec : Aggregate.spec) =
    let l = laws_of spec.Aggregate.func in
    let subject = Aggregate.func_to_string spec.Aggregate.func in
    if not (is_monoid l) then
      emit
        (Diag.makef ~path ~subject Diag.Error ~code:"PAR002"
           "aggregate %s (column %s) is not a monoid (identity %b, associative %b): its \
            state cannot be split across domains at all"
           subject spec.Aggregate.name l.has_identity l.associative)
    else if not l.commutative then
      if merging then
        emit
          (Diag.makef ~path ~subject Diag.Error ~code:"PAR001"
             "aggregate %s (column %s) merges associatively but not commutatively: \
              partitioned GMDJ evaluation merges per-domain accumulators in scheduler \
              order and would be nondeterministic"
             subject spec.Aggregate.name)
      else
        emit
          (Diag.makef ~path ~subject Diag.Warning ~code:"PAR003"
             "aggregate %s (column %s) is order-sensitive: lawful under a \
              hash-partitioned exchange only because routing preserves per-key arrival \
              order"
             subject spec.Aggregate.name)
  in
  let check_blocks ~path blocks =
    List.iter
      (fun b -> List.iter (check_spec ~path ~merging:true) b.Subql_gmdj.Gmdj.aggs)
      blocks
  in
  let rec walk rev_path alg =
    let rev_path = Algebra.node_label alg :: rev_path in
    let path = List.rev rev_path in
    (match alg with
    | Algebra.Md { blocks; _ } | Algebra.Md_completed { blocks; _ } ->
      check_blocks ~path blocks
    | Algebra.Group_by { aggs; _ } | Algebra.Aggregate_all (aggs, _) ->
      List.iter (check_spec ~path ~merging:false) aggs
    | _ -> ());
    List.iteri
      (fun i c ->
        let slot =
          match alg, i with
          | (Algebra.Md _ | Algebra.Md_completed _), 0 -> [ "base" ]
          | (Algebra.Md _ | Algebra.Md_completed _), _ -> [ "detail" ]
          | ( ( Algebra.Product _ | Algebra.Join _ | Algebra.Union_all _
              | Algebra.Diff_all _ ),
              0 ) ->
            [ "left" ]
          | ( ( Algebra.Product _ | Algebra.Join _ | Algebra.Union_all _
              | Algebra.Diff_all _ ),
              _ ) ->
            [ "right" ]
          | _ -> []
        in
        walk (List.rev_append slot rev_path) c)
      (Eval.children alg)
  in
  walk [] plan;
  Diag.sort !diags

let certified_for_parallel ?laws_of plan =
  not (Diag.has_errors (certify ?laws_of plan))
