(** Parallel-merge lawfulness certificates (the [PAR0xx] namespace).

    Exchange-parallel execution splits aggregate accumulators across
    worker domains and merges them back in whatever order the scheduler
    finishes — which is only sound when every aggregate's merge forms a
    {e commutative monoid}.  This pass derives the algebraic laws
    structurally per {!Subql_relational.Aggregate.func} and walks the
    plan for positions where accumulators can meet a
    [Chunk.Exchange]:

    - [PAR001] (error): a GMDJ block aggregate whose merge is
      associative but not commutative — partitioned evaluation would be
      nondeterministic;
    - [PAR002] (error): an aggregate with no identity or a
      non-associative merge — unsplittable state;
    - [PAR003] (warning): an order-sensitive aggregate under a
      hash-partitioned [Group_by] — lawful today only because routing
      preserves per-key arrival order.

    {!Subql.Planner.set_merge_certifier} consumes {!certify} (wired by
    {!Verify.install_planner_gate}) so [parallel_config] refuses
    [domains > 1] for uncertified plans instead of computing a wrong
    merge. *)

type laws = { has_identity : bool; associative : bool; commutative : bool }

val laws_of : Subql_relational.Aggregate.func -> laws
(** The algebraic laws of the aggregate's accumulator merge, derived
    structurally: every standard SQL aggregate here is a commutative
    monoid; [First] is a non-commutative monoid. *)

val certify :
  ?laws_of:(Subql_relational.Aggregate.func -> laws) ->
  Subql.Algebra.t ->
  Subql_relational.Diag.t list
(** All [PAR0xx] diagnostics for the plan, sorted.  [laws_of] is
    injectable for testing hypothetical aggregates. *)

val certified_for_parallel :
  ?laws_of:(Subql_relational.Aggregate.func -> laws) -> Subql.Algebra.t -> bool
(** [true] iff {!certify} reports no error — the plan may run with
    [domains > 1]. *)
