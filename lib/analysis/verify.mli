(** The rewrite verifier: rewrites must preserve the inferred schema and
    may only {e narrow} nullability.

    Every plan rewrite in the repository — the {!Subql.Optimize} passes,
    the planner's alternative translations, and the cross-query GMDJ
    merges of [Subql_mqo.Share] — claims semantic equivalence.  This
    module checks the two static facts that equivalence implies:

    - [VER001] {e schema drift}: the output schema (bare names and
      types, positionally) changed;
    - [VER002] {e widened nullability}: a column the input proved
      non-NULL is only [Maybe_null] after the rewrite (the reverse —
      narrowing — is expected: e.g. completion turns a selection over a
      count column into a plan whose survivors are known non-NULL).

    The checks run in a {e self-check mode} wired through the hooks the
    core library exposes ({!Subql.Optimize.set_self_check},
    {!Subql.Planner.set_plan_verifier}), so the optimizer and planner
    gain the verification without the core depending on the analyzer. *)

open Subql_relational

val check_rewrite :
  Typing.env ->
  label:string ->
  before:Subql.Algebra.t ->
  after:Subql.Algebra.t ->
  Diag.t list
(** Verify one rewrite.  Sorted diagnostics; empty means verified.
    Besides [VER001]/[VER002], any error-severity diagnostic the
    {e rewritten} plan triggers that the original did not is reported
    (a rewrite must not manufacture ill-typed plans).  When the
    {e input} already fails to type, the rewrite is not judged. *)

val install_optimizer_check : Catalog.t -> unit
(** Register {!check_rewrite} with {!Subql.Optimize.set_self_check}:
    every subsequent [Optimize.optimize] call self-verifies and raises
    {!Diag.Fail} with the first error if the rewrite is unsound.
    The check is catalog-specific; plans over other catalogs pass
    through unverified. *)

val clear_optimizer_check : unit -> unit

val plan_verifier : Subql.Planner.plan_verifier
(** The planner-facing verdict for one candidate plan: the candidate's
    own error diagnostics, plus [VER001] if its schema disagrees with
    the reference GMDJ translation of the query. *)

val install_planner_gate : unit -> unit
(** [Planner.set_plan_verifier plan_verifier] + enable the planner
    self-check ({!Subql.Planner.candidates} will drop unsound
    candidates), and register {!Mergeable.certify} as the planner's
    merge certifier, so [parallel_config] refuses [domains > 1] for
    plans whose aggregate merges are not commutative monoids
    ([PAR0xx]). *)

val clear_planner_gate : unit -> unit
