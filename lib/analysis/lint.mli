(** The lint-rule engine: plan-shape and query-shape findings that are
    not errors but deserve eyes.

    Plan rules (over the algebra):
    - [LNT001] {e cartesian product}: a [Product] survived optimization
      — no conjunct tied its sides together, so cost is the full cross
      product;
    - [LNT002] {e uncoalesced GMDJs}: adjacent GMDJs range over the same
      detail occurrence; Prop. 4.1 coalescing would evaluate them in a
      single detail scan;
    - [LNT003] {e dead projected column}: an interior projection emits a
      column no ancestor ever reads.

    Query rules (over the nested AST):
    - [LNT004] {e non-neighboring correlation}: a subquery references an
      alias beyond its immediately enclosing scope, forcing the base
      push-down of Thms 3.3/3.4 (informational — the translation
      handles it, but the plan reader should know why the base-values
      expression widened);
    - [NUL001] {e the NOT IN trap}: NOT IN / ALL over a subquery column
      that may be NULL — one NULL makes the predicate unknown for every
      outer row, silently emptying the result under 3VL. *)

open Subql_relational

val plan_lints : Subql.Algebra.t -> Diag.t list
(** [LNT001]–[LNT003] over a plan.  Sorted. *)

val query_lints : Typing.env -> Subql_nested.Nested_ast.query -> Diag.t list
(** [LNT004] and [NUL001] over a nested query.  [NUL001] consults the
    environment for the subquery column's nullability and respects
    explicit [IS NOT NULL] filters in the subquery's WHERE clause.
    Sorted. *)
