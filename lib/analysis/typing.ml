open Subql_relational
open Subql_gmdj
open Subql

type env = {
  lookup : string -> Schema.t;
  table_nulls : string -> Nullability.t array;
}

let env_of_catalog catalog =
  let lookup name = Relation.schema (Catalog.find catalog name) in
  let table_nulls name =
    let rel = Catalog.find catalog name in
    let has_null = Array.make (Schema.arity (Relation.schema rel)) false in
    Relation.iter
      (fun row ->
        Array.iteri (fun i v -> if Value.is_null v then has_null.(i) <- true) row)
      rel;
    Array.map
      (fun b -> if b then Nullability.Maybe_null else Nullability.Non_null)
      has_null
  in
  { lookup; table_nulls }

type verdict = {
  schema : Schema.t option;
  nulls : Nullability.t array option;
  diags : Diag.t list;
}

(* One analyzed operand: its schema and the nullability of each slot. *)
type frame = { fs : Schema.t; fn : Nullability.t array }

let ( let* ) = Result.bind

(* --- Expression nullability ------------------------------------------ *)

let resolve_null frames rel name =
  (* Innermost frame that knows the name, like expression evaluation. *)
  let n = Array.length frames in
  let rec go i =
    if i < 0 then Nullability.Maybe_null
    else
      let s, nulls = frames.(i) in
      match Schema.find_opt s ?rel name with
      | Some idx -> nulls.(idx)
      | None -> go (i - 1)
      | exception Schema.Ambiguous_attribute _ -> Nullability.Maybe_null
  in
  go (n - 1)

let rec expr_nulls frames (e : Expr.t) =
  match e with
  | Const Value.Null -> Nullability.Always_null
  | Const _ -> Nullability.Non_null
  | Attr (rel, name) -> resolve_null frames rel name
  | Null_safe_eq _ | Is_null _ | Is_not_null _ | Is_true _ -> Nullability.Non_null
  | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    (* sound for AND/OR too: both operands non-NULL ⇒ result non-NULL,
       both NULL ⇒ NULL (Kleene) *)
    Nullability.lub (expr_nulls frames a) (expr_nulls frames b)
  | Not a | Neg a -> expr_nulls frames a
  | Arith ((Expr.Div | Expr.Mod), a, b) -> (
    (* division by zero yields NULL, so Non_null is never provable *)
    match Nullability.lub (expr_nulls frames a) (expr_nulls frames b) with
    | Nullability.Always_null -> Nullability.Always_null
    | _ -> Nullability.Maybe_null)
  | Arith (_, a, b) -> Nullability.lub (expr_nulls frames a) (expr_nulls frames b)

(* --- Selection narrowing --------------------------------------------- *)

(* Attributes reachable through strictly NULL-propagating operators: if
   any of them is NULL the whole (sub)expression is NULL.  Stops at
   operators that can absorb NULLs (IS NULL, AND/OR, NULL-safe eq …). *)
let rec strict_attrs acc (e : Expr.t) =
  match e with
  | Attr (rel, name) -> (rel, name) :: acc
  | Arith (_, a, b) -> strict_attrs (strict_attrs acc a) b
  | Neg a -> strict_attrs acc a
  | Const _ | Cmp _ | Null_safe_eq _ | And _ | Or _ | Not _ | Is_null _
  | Is_not_null _ | Is_true _ ->
    acc

(* A tuple only survives σ[p] when p is TRUE, so every conjunct was TRUE
   — and a TRUE comparison proves both operands (hence their strictly
   NULL-propagating attributes) non-NULL. *)
let narrow frame pred =
  let nulls = Array.copy frame.fn in
  let mark refs =
    List.iter
      (fun (rel, name) ->
        match Schema.find_opt frame.fs ?rel name with
        | Some i -> nulls.(i) <- Nullability.Non_null
        | None | (exception Schema.Ambiguous_attribute _) -> ())
      refs
  in
  let rec conjunct (c : Expr.t) =
    match c with
    | Cmp (_, a, b) -> mark (strict_attrs (strict_attrs [] a) b)
    | Is_not_null e -> mark (strict_attrs [] e)
    | Is_true e -> conjunct e
    | _ -> ()
  in
  List.iter conjunct (Expr.conjuncts pred);
  { frame with fn = nulls }

(* --- Aggregates ------------------------------------------------------- *)

let agg_arg (spec : Aggregate.spec) =
  match spec.func with
  | Aggregate.Count_star -> None
  | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e | Aggregate.Max e
  | Aggregate.Avg e | Aggregate.First e ->
    Some e

(* COUNT is total (empty range ⇒ 0); the others yield NULL on an empty
   or all-NULL range — unless every group is known non-empty AND the
   argument is provably non-NULL (GROUP BY groups are non-empty by
   construction). *)
let agg_nulls ~nonempty_groups frames (spec : Aggregate.spec) =
  match spec.func with
  | Aggregate.Count_star | Aggregate.Count _ -> Nullability.Non_null
  | Aggregate.Sum e | Aggregate.Min e | Aggregate.Max e | Aggregate.Avg e
  | Aggregate.First e ->
    if nonempty_groups && expr_nulls frames e = Nullability.Non_null then
      Nullability.Non_null
    else Nullability.Maybe_null

(* --- The plan walk ---------------------------------------------------- *)

let guard ~path f =
  try f () with
  | Catalog.Unknown_table t ->
    Error (Diag.error ~path ~subject:t ~code:"SCH004" ("unknown table " ^ t))
  | Schema.Unknown_attribute a ->
    Error (Diag.error ~path ~subject:a ~code:"SCH001" ("unknown attribute " ^ a))
  | Schema.Ambiguous_attribute a ->
    Error (Diag.error ~path ~subject:a ~code:"SCH002" ("ambiguous attribute " ^ a))
  | Invalid_argument m -> Error (Diag.error ~path ~code:"SCH003" m)
  | Value.Type_error m -> Error (Diag.error ~path ~code:"TYP002" m)

let total_aggs blocks =
  List.fold_left (fun n b -> n + List.length b.Gmdj.aggs) 0 blocks

let infer env alg =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* Aggregate-argument checks report under TYP003 (the dedicated code),
     keeping schema-resolution failures under their SCH codes. *)
  let check_agg_args ~path schemas aggs =
    List.iter
      (fun spec ->
        match agg_arg spec with
        | None -> ()
        | Some e -> (
          match Expr.infer_diag ~path schemas e with
          | Ok ty -> (
            (* SUM/AVG arithmetic needs a numeric argument; the schema
               pass alone lets [sum(s)] through and it dies at runtime. *)
            match (spec.Aggregate.func, ty) with
            | (Aggregate.Sum _ | Aggregate.Avg _), Some ((Value.Tstring | Value.Tbool) as ty)
              ->
              emit
                (Diag.error ~path ~subject:spec.Aggregate.name ~code:"TYP003"
                   (Printf.sprintf "aggregate %s: argument has type %s, expected a numeric type"
                      (Aggregate.func_to_string spec.Aggregate.func)
                      (Value.ty_to_string ty)))
            | _ -> ())
          | Error d ->
            if String.length d.Diag.code >= 3 && String.sub d.Diag.code 0 3 = "TYP"
            then
              emit
                (Diag.error ~path ?subject:d.Diag.subject ~code:"TYP003"
                   (Printf.sprintf "aggregate %s: %s" spec.Aggregate.name
                      d.Diag.message))
            else emit d))
      aggs
  in
  (* NUL002: a counting condition over a GMDJ must not read a
     possibly-NULL aggregate column without a COUNT guard in the same
     conjunct.  The Table 1 translations are NULL-sound precisely
     because every value-aggregate comparison is disjoined with a
     count-column test ([cnt = 0 OR x > mx]): the count decides the
     empty-range case before the NULL aggregate is consulted. *)
  let check_agg_condition ~path frame ~base_arity e =
    let nullable = ref [] in
    let guarded = ref false in
    List.iter
      (fun (rel, name) ->
        match Schema.find_opt frame.fs ?rel name with
        | Some i when i >= base_arity ->
          if frame.fn.(i) = Nullability.Non_null then guarded := true
          else if not (List.mem name !nullable) then
            nullable := name :: !nullable
        | Some _ | None | (exception Schema.Ambiguous_attribute _) -> ())
      (Expr.attrs e);
    if not !guarded then
      List.iter
        (fun name ->
          emit
            (Diag.warning ~path ~subject:name ~code:"NUL002"
               (Printf.sprintf
                  "counting condition reads aggregate column %s which may be \
                   NULL and carries no COUNT guard; only COUNT columns are \
                   provably non-NULL"
                  name)))
        (List.rev !nullable)
  in
  let rec go rev_path alg : (frame, Diag.t) result =
    let rev_path = Algebra.node_label alg :: rev_path in
    let path = List.rev rev_path in
    let sub slot x =
      go (match slot with "" -> rev_path | s -> s :: rev_path) x
    in
    let check_pred frames e =
      List.iter emit (Expr.typecheck_bool_diag ~path frames e)
    in
    match (alg : Algebra.t) with
    | Table name ->
      let* s = guard ~path (fun () -> Ok (env.lookup name)) in
      Ok { fs = s; fn = env.table_nulls name }
    | Rename (alias, x) ->
      let* f = sub "" x in
      Ok { f with fs = Schema.rename_rel alias f.fs }
    | Distinct x -> sub "" x
    | Select (pred, x) ->
      let* f = sub "" x in
      check_pred [| f.fs |] pred;
      (match x with
      | Algebra.Md { blocks; _ } | Algebra.Md_completed { blocks; _ } ->
        let base_arity = Schema.arity f.fs - total_aggs blocks in
        List.iter
          (check_agg_condition ~path f ~base_arity)
          (Expr.conjuncts pred)
      | _ -> ());
      Ok (narrow f pred)
    | Project (exprs, x) ->
      let* f = sub "" x in
      let* attrs =
        List.fold_left
          (fun acc (e, name) ->
            let* acc = acc in
            let* ty = Expr.infer_diag ~path [| f.fs |] e in
            let ty = match ty with Some ty -> ty | None -> Value.Tint in
            Ok (Schema.attr name ty :: acc))
          (Ok []) exprs
      in
      let* s = guard ~path (fun () -> Ok (Schema.of_list (List.rev attrs))) in
      Ok
        {
          fs = s;
          fn =
            Array.of_list
              (List.map (fun (e, _) -> expr_nulls [| (f.fs, f.fn) |] e) exprs);
        }
    | Project_cols { cols; input; _ } ->
      let* f = sub "" input in
      let* idxs =
        guard ~path (fun () ->
            Ok
              (Array.of_list
                 (List.map (fun (rel, name) -> Schema.find f.fs ?rel name) cols)))
      in
      Ok
        {
          fs = Schema.project f.fs idxs;
          fn = Array.map (fun i -> f.fn.(i)) idxs;
        }
    | Project_rel (aliases, x) ->
      let* f = sub "" x in
      let keep = ref [] in
      Array.iteri
        (fun i a -> if List.mem a.Schema.rel aliases then keep := i :: !keep)
        f.fs;
      let idxs = Array.of_list (List.rev !keep) in
      let* s = guard ~path (fun () -> Ok (Schema.project f.fs idxs)) in
      Ok { fs = s; fn = Array.map (fun i -> f.fn.(i)) idxs }
    | Add_rownum (name, x) ->
      let* f = sub "" x in
      Ok
        {
          fs = Schema.concat f.fs [| Schema.attr name Value.Tint |];
          fn = Array.append f.fn [| Nullability.Non_null |];
        }
    | Product (l, r) ->
      let* lf = sub "left" l in
      let* rf = sub "right" r in
      Ok { fs = Schema.concat lf.fs rf.fs; fn = Array.append lf.fn rf.fn }
    | Join { kind; cond; left; right } -> (
      let* lf = sub "left" left in
      let* rf = sub "right" right in
      let both =
        { fs = Schema.concat lf.fs rf.fs; fn = Array.append lf.fn rf.fn }
      in
      check_pred [| both.fs |] cond;
      match kind with
      | Algebra.Inner -> Ok (narrow both cond)
      | Algebra.Left_outer ->
        (* every left row survives un-narrowed; right columns of
           unmatched rows are NULL-padded *)
        let rn =
          Array.map
            (function
              | Nullability.Always_null -> Nullability.Always_null
              | _ -> Nullability.Maybe_null)
            rf.fn
        in
        Ok { fs = both.fs; fn = Array.append lf.fn rn }
      | Algebra.Semi ->
        (* a surviving left row witnessed cond TRUE for some right row *)
        let narrowed = narrow both cond in
        Ok
          {
            fs = lf.fs;
            fn = Array.sub narrowed.fn 0 (Array.length lf.fn);
          }
      | Algebra.Anti -> Ok lf)
    | Group_by { keys; aggs; input } ->
      let* f = sub "" input in
      check_agg_args ~path [| f.fs |] aggs;
      let* s =
        guard ~path (fun () ->
            let idxs =
              Array.of_list
                (List.map (fun (rel, name) -> Schema.find f.fs ?rel name) keys)
            in
            let key_schema = Schema.project f.fs idxs in
            let agg_attrs =
              List.map
                (fun spec ->
                  Schema.attr spec.Aggregate.name
                    (Aggregate.output_ty [| f.fs |] spec))
                aggs
            in
            Ok (idxs, Schema.concat key_schema (Schema.of_list agg_attrs)))
      in
      let idxs, s = s in
      let key_nulls = Array.map (fun i -> f.fn.(i)) idxs in
      let frames = [| (f.fs, f.fn) |] in
      let agg_nulls_arr =
        Array.of_list
          (List.map (agg_nulls ~nonempty_groups:true frames) aggs)
      in
      Ok { fs = s; fn = Array.append key_nulls agg_nulls_arr }
    | Aggregate_all (aggs, x) ->
      let* f = sub "" x in
      check_agg_args ~path [| f.fs |] aggs;
      let* s =
        guard ~path (fun () ->
            Ok
              (Schema.of_list
                 (List.map
                    (fun spec ->
                      Schema.attr spec.Aggregate.name
                        (Aggregate.output_ty [| f.fs |] spec))
                    aggs)))
      in
      (* a single output row even over empty input: non-COUNT aggregates
         may be NULL regardless of their argument *)
      Ok
        {
          fs = s;
          fn =
            Array.of_list
              (List.map
                 (agg_nulls ~nonempty_groups:false [| (f.fs, f.fn) |])
                 aggs);
        }
    | Md { base; detail; blocks } | Md_completed { base; detail; blocks; _ }
      -> (
      let* bf = sub "base" base in
      let* df = sub "detail" detail in
      let theta_frames = [| bf.fs; df.fs |] in
      List.iter
        (fun b ->
          check_pred theta_frames b.Gmdj.theta;
          check_agg_args ~path theta_frames b.Gmdj.aggs)
        blocks;
      let* s =
        guard ~path (fun () ->
            Ok (Gmdj.output_schema ~base:bf.fs ~detail:df.fs blocks))
      in
      (* the certified fact: GMDJ count columns are never NULL (empty
         range ⇒ count 0); value aggregates over an empty range are *)
      let frames = [| (bf.fs, bf.fn); (df.fs, df.fn) |] in
      let agg_nulls_arr =
        Array.of_list
          (List.concat_map
             (fun b ->
               List.map (agg_nulls ~nonempty_groups:false frames) b.Gmdj.aggs)
             blocks)
      in
      let out = { fs = s; fn = Array.append bf.fn agg_nulls_arr } in
      match alg with
      | Algebra.Md_completed { completion; _ } ->
        (* completion rules fire per (base, detail) pair, like θ *)
        List.iter
          (check_pred theta_frames)
          (completion.Gmdj.kill_when @ completion.Gmdj.require_fired);
        Ok out
      | _ -> Ok out)
    | Union_all (l, r) ->
      let* lf = sub "left" l in
      let* rf = sub "right" r in
      if Array.length lf.fn = Array.length rf.fn then
        Ok { lf with fn = Array.map2 Nullability.lub lf.fn rf.fn }
      else (
        emit
          (Diag.error ~path ~code:"SCH005"
             (Printf.sprintf "union operands have arities %d and %d"
                (Array.length lf.fn) (Array.length rf.fn)));
        Ok lf)
    | Diff_all (l, r) ->
      let* lf = sub "left" l in
      let* _rf = sub "right" r in
      Ok lf
  in
  match go [] alg with
  | Ok f -> { schema = Some f.fs; nulls = Some f.fn; diags = Diag.sort !diags }
  | Error d ->
    { schema = None; nulls = None; diags = Diag.sort (d :: !diags) }
