open Subql_relational
open Subql_nested
open Subql

(* --- Plan rules -------------------------------------------------------- *)

let rec strip_wrappers = function
  | Algebra.Select (_, x) | Algebra.Distinct x -> strip_wrappers x
  | x -> x

let bare_names_of acc e =
  List.fold_left (fun acc (_, name) -> name :: acc) acc (Expr.attrs e)

let block_names acc (b : Subql_gmdj.Gmdj.block) =
  let acc = bare_names_of acc b.theta in
  List.fold_left
    (fun acc spec ->
      match spec.Aggregate.func with
      | Aggregate.Count_star -> acc
      | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e
      | Aggregate.Max e | Aggregate.Avg e | Aggregate.First e ->
        bare_names_of acc e)
    acc b.aggs

(* [needed] is the set of bare column names any ancestor may read; [None]
   means "all of them" (the conservative default wherever tracking would
   get imprecise). *)
let union_needed needed names =
  Option.map (fun set -> List.rev_append names set) needed

let plan_lints alg =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let rec go rev_path needed alg =
    let rev_path = Algebra.node_label alg :: rev_path in
    let path = List.rev rev_path in
    let sub slot needed x =
      go (match slot with "" -> rev_path | s -> s :: rev_path) needed x
    in
    (match alg with
    | Algebra.Product _ ->
      emit
        (Diag.warning ~path ~code:"LNT001"
           "cartesian product: no join condition ties the two sides")
    | Algebra.Md { base; detail; _ } | Algebra.Md_completed { base; detail; _ }
      -> (
      match strip_wrappers base with
      | Algebra.Md { detail = d2; _ } | Algebra.Md_completed { detail = d2; _ }
        ->
        if Algebra.same_occurrence_modulo_alias detail d2 then
          emit
            (Diag.warning ~path ~code:"LNT002"
               "adjacent GMDJs range over the same detail occurrence; \
                coalescing (Prop. 4.1) would evaluate them in one scan")
      | _ -> ())
    | _ -> ());
    match alg with
    | Algebra.Table _ -> ()
    | Algebra.Rename (_, x) | Algebra.Distinct x -> sub "" needed x
    | Algebra.Select (e, x) -> sub "" (union_needed needed (bare_names_of [] e)) x
    | Algebra.Project (exprs, x) ->
      (match needed with
      | None -> ()
      | Some set ->
        List.iter
          (fun (_, name) ->
            if not (List.mem name set) then
              emit
                (Diag.warning ~path ~subject:name ~code:"LNT003"
                   (Printf.sprintf
                      "projected column %s is never read downstream" name)))
          exprs);
      sub ""
        (Some (List.fold_left (fun acc (e, _) -> bare_names_of acc e) [] exprs))
        x
    | Algebra.Project_cols { cols; input; _ } ->
      (match needed with
      | None -> ()
      | Some set ->
        List.iter
          (fun (_, name) ->
            if not (List.mem name set) then
              emit
                (Diag.warning ~path ~subject:name ~code:"LNT003"
                   (Printf.sprintf
                      "projected column %s is never read downstream" name)))
          cols);
      sub "" (Some (List.map snd cols)) input
    | Algebra.Project_rel (_, x) -> sub "" None x
    | Algebra.Add_rownum (_, x) -> sub "" needed x
    | Algebra.Product (l, r) ->
      sub "left" needed l;
      sub "right" needed r
    | Algebra.Join { cond; left; right; _ } ->
      let needed = union_needed needed (bare_names_of [] cond) in
      sub "left" needed left;
      sub "right" needed right
    | Algebra.Group_by { keys; aggs; input } ->
      let names =
        List.fold_left
          (fun acc spec ->
            match spec.Aggregate.func with
            | Aggregate.Count_star -> acc
            | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e
            | Aggregate.Max e | Aggregate.Avg e | Aggregate.First e ->
              bare_names_of acc e)
          (List.map snd keys) aggs
      in
      sub "" (Some names) input
    | Algebra.Aggregate_all (aggs, x) ->
      let names =
        List.fold_left
          (fun acc spec ->
            match spec.Aggregate.func with
            | Aggregate.Count_star -> acc
            | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e
            | Aggregate.Max e | Aggregate.Avg e | Aggregate.First e ->
              bare_names_of acc e)
          [] aggs
      in
      sub "" (Some names) x
    | Algebra.Md { base; detail; blocks }
    | Algebra.Md_completed { base; detail; blocks; _ } ->
      let block_refs = List.fold_left block_names [] blocks in
      let completion_refs =
        match alg with
        | Algebra.Md_completed { completion; _ } ->
          List.fold_left bare_names_of []
            (completion.Subql_gmdj.Gmdj.kill_when
           @ completion.Subql_gmdj.Gmdj.require_fired)
        | _ -> []
      in
      sub "base" (union_needed needed (block_refs @ completion_refs)) base;
      sub "detail" None detail
    | Algebra.Union_all (l, r) | Algebra.Diff_all (l, r) ->
      sub "left" needed l;
      sub "right" needed r
  in
  go [] None alg;
  Diag.sort !diags

(* --- Query rules ------------------------------------------------------- *)

(* The plain (subquery-free) conjuncts of a WHERE clause, used to respect
   explicit IS NOT NULL filters when judging the NOT IN trap. *)
let rec top_atoms = function
  | Nested_ast.Atom e -> [ e ]
  | Nested_ast.Pand (a, b) -> top_atoms a @ top_atoms b
  | Nested_ast.Ptrue | Nested_ast.Por _ | Nested_ast.Pnot _ | Nested_ast.Sub _
    ->
    []

(* Nullability of the subquery's comparison column, seen through its
   source expression and any local filters. *)
let sub_col_nulls env (s : Nested_ast.sub) col =
  let plan =
    Algebra.Rename (s.s_alias, Transform.base_to_algebra s.source)
  in
  let plan =
    match top_atoms s.s_where with
    | [] -> plan
    | es -> Algebra.Select (Expr.conjoin es, plan)
  in
  let v = Typing.infer env plan in
  match v.Typing.schema, v.Typing.nulls with
  | Some schema, Some nulls -> (
    match Schema.find_opt schema col with
    | Some i -> nulls.(i)
    | None -> Nullability.Maybe_null
    | exception Schema.Ambiguous_attribute _ -> Nullability.Maybe_null)
  | _ -> Nullability.Maybe_null

let query_lints env (q : Nested_ast.query) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun (alias, skips) ->
      emit
        (Diag.info ~subject:alias ~code:"LNT004"
           (Printf.sprintf
              "subquery %s correlates past its enclosing scope (to %s); the \
               translation pushes the referenced base down (Thms 3.3/3.4)"
              alias
              (String.concat ", " skips))))
    (Scope.non_neighboring_subs q);
  let rec pred_walk p =
    match (p : Nested_ast.pred) with
    | Ptrue | Atom _ -> ()
    | Pand (a, b) | Por (a, b) ->
      pred_walk a;
      pred_walk b
    | Pnot a -> pred_walk a
    | Sub s ->
      (match s.kind with
      | Not_in (_, col) | Quant (_, _, Nested_ast.Qall, col) ->
        if sub_col_nulls env s col <> Nullability.Non_null then
          emit
            (Diag.warning ~subject:col ~code:"NUL001"
               (Printf.sprintf
                  "%s over subquery column %s.%s which may be NULL: a single \
                   NULL makes the predicate unknown for every outer row \
                   (the 3VL NOT IN trap); add an IS NOT NULL filter if \
                   emptying the result is not intended"
                  (match s.kind with
                  | Not_in _ -> "NOT IN"
                  | _ -> "ALL quantification")
                  s.s_alias col))
      | Exists | Not_exists | Cmp_scalar _ | Cmp_agg _ | Quant _ | In_ _ -> ());
      pred_walk s.s_where
  in
  pred_walk q.Nested_ast.q_where;
  Diag.sort !diags
