(** Certification wrapper over {!Subql.Cost}'s interval analysis (the
    [IVL00x] namespace).

    {!Subql.Cost.intervals} and {!Subql.Cost.memory_height_certified}
    carry the mathematics — sound per-operator cardinality intervals
    and the resident-set ceiling they imply.  This module turns that
    into an analysis artifact: a {!certified} record pairing the
    certificate with diagnostics ([IVL001] warning when the bound is
    infinite, naming the statistics-less tables responsible), and the
    JSON rendering [analyze --certify --json] and the [check.sh] gate
    consume. *)

open Subql_relational
open Subql

type certified = {
  certificate : Cost.certificate;
  diags : Diag.t list;
      (** Empty iff the bound is finite; otherwise one [IVL001] warning
          per statistics-less table (or a single generic one when every
          scan is covered but an operator still diverges). *)
}

val certify : ?config:Eval.config -> Cost.Stats.t -> Algebra.t -> certified
(** Certify the plan's memory ceiling under [config] (default
    {!Eval.default_config}; the config's spill budget determines the
    certified spill volume). *)

val unknown_tables : Cost.Stats.t -> Algebra.t -> string list
(** The plan's scanned tables with no row-count statistics — the scans
    whose intervals start at top. *)

val certificate_to_json : Cost.certificate -> Subql_obs.Json.t
(** Bound, spill bound, argmax operator, and the full per-operator
    interval tree.  Infinite bounds serialize as the string ["inf"]
    (JSON has no infinity). *)

val tree_to_json : Cost.Interval.tree -> Subql_obs.Json.t
