type t = Non_null | Maybe_null | Always_null

let lub a b = if a = b then a else Maybe_null

let leq x y = y = Maybe_null || x = y

let to_string = function
  | Non_null -> "non-null"
  | Maybe_null -> "maybe-null"
  | Always_null -> "always-null"

let pp ppf t = Format.pp_print_string ppf (to_string t)
