(** Delta-maintainability effect analysis (the [ING00x] namespace).

    Decides statically whether a plan's GMDJ can absorb appended detail
    rows by folding them into its live accumulator matrix — the
    incremental-maintenance property [Subql_ingest.Maintenance] relies
    on — and when it can, compiles the proof into a runnable
    {!maintainable.delta_pipeline}: the detail side's row-local operator
    chain as a streaming [Chunk.Source] transformer, applied to each
    append delta.

    The analysis widens the maintained class from the previous
    "detail is a bare table scan" pattern match to the full row-local
    closure: any [Rename] / [Select] / [Project] / non-distinct
    [Project_cols] / [Project_rel] chain over a single base table.  The
    refusal cases each carry an explanatory diagnostic:

    - [ING001] (info): no GMDJ, several GMDJs, or the detail table also
      feeds the base side — an append does not reduce to a suffix fold;
    - [ING002] (info): the GMDJ is in completed form — completion prunes
      accumulators mid-scan, so the pruned state cannot absorb deltas;
    - [ING003] (info): the detail side contains a position-dependent or
      stateful operator ([Add_rownum], DISTINCT, joins, nested GMDJs) —
      its output on [prefix ++ delta] is not
      [output(prefix) ++ output(delta)].

    All diagnostics are [Info] severity: an unmaintainable plan is not
    wrong, it just recomputes on append. *)

open Subql_relational

type maintainable = {
  md_node : Subql.Algebra.t;  (** the [Md] node, by physical identity *)
  base_plan : Subql.Algebra.t;
  detail_plan : Subql.Algebra.t;
  detail_table : string;  (** the single base table feeding the detail side *)
  blocks : Subql_gmdj.Gmdj.block list;
  delta_pipeline : Chunk.Source.t -> Chunk.Source.t;
      (** The detail chain as a stream transformer: feed it a source of
          raw appended [detail_table] rows and it yields the rows the
          GMDJ's accumulators must fold.  Row-local by construction, so
          running it on the delta alone equals the suffix of running it
          on the whole table. *)
}

type verdict = { maintainable : maintainable option; diags : Diag.t list }
(** [maintainable = Some _] iff [diags] carries no refusal; the two are
    mutually exclusive by construction. *)

val analyze : Subql.Algebra.t -> verdict
(** The delta-maintainability verdict for an (optimized) plan. *)

val plan_tables : Subql.Algebra.t -> string list
(** Every base table scanned by the plan, sorted, deduplicated. *)

val md_nodes : Subql.Algebra.t -> (string list * Subql.Algebra.t) list
(** Every [Md] / [Md_completed] node with its plan path, preorder. *)
