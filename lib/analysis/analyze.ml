open Subql_relational
open Subql

type report = {
  label : string;
  diags : Diag.t list;
  schema : Schema.t option;
  nulls : Nullability.t array option;
  plan : Algebra.t option;
}

let analyze_plan env ~label plan =
  let v = Typing.infer env plan in
  {
    label;
    diags = Diag.sort (v.Typing.diags @ Lint.plan_lints plan);
    schema = v.Typing.schema;
    nulls = v.Typing.nulls;
    plan = Some plan;
  }

let analyze_query ?(flags = Optimize.all) catalog ~label query =
  let env = Typing.env_of_catalog catalog in
  let qdiags = Lint.query_lints env query in
  match Transform.to_algebra query with
  | exception Transform.Unsupported msg ->
    {
      label;
      diags =
        Diag.sort
          (Diag.error ~code:"TRF001" ("translation unsupported: " ^ msg)
          :: qdiags);
      schema = None;
      nulls = None;
      plan = None;
    }
  | raw ->
    let v0 = Typing.infer env raw in
    let optimized = Optimize.optimize ~flags raw in
    let vdiags = Verify.check_rewrite env ~label:"optimize" ~before:raw ~after:optimized in
    let v1 = Typing.infer env optimized in
    {
      label;
      diags =
        Diag.sort
          (qdiags @ v0.Typing.diags @ vdiags @ v1.Typing.diags
         @ Lint.plan_lints optimized);
      schema = v1.Typing.schema;
      nulls = v1.Typing.nulls;
      plan = Some optimized;
    }

let errors r = Diag.count Diag.Error r.diags

let warnings r = Diag.count Diag.Warning r.diags

let report_to_json r =
  let open Subql_obs.Json in
  let diag d =
    Obj
      [
        ("severity", Str (Diag.severity_to_string d.Diag.severity));
        ("code", Str d.Diag.code);
        ("path", Str (Diag.path_to_string d.Diag.path));
        ("subject", match d.Diag.subject with Some s -> Str s | None -> Null);
        ("message", Str d.Diag.message);
      ]
  in
  Obj
    [
      ("label", Str r.label);
      ("errors", Int (errors r));
      ("warnings", Int (warnings r));
      ("infos", Int (Diag.count Diag.Info r.diags));
      ("diagnostics", List (List.map diag r.diags));
      ( "schema",
        match r.schema with
        | Some s -> Str (Format.asprintf "%a" Schema.pp s)
        | None -> Null );
      ( "nullability",
        match r.nulls with
        | Some ns ->
          List
            (Array.to_list (Array.map (fun n -> Str (Nullability.to_string n)) ns))
        | None -> Null );
    ]

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) r.diags;
  Format.fprintf ppf "%s: %d error(s), %d warning(s), %d info(s)" r.label
    (errors r) (warnings r)
    (Diag.count Diag.Info r.diags);
  match r.schema, r.nulls with
  | Some s, Some ns ->
    Format.fprintf ppf "; schema:";
    Array.iteri
      (fun i a ->
        Format.fprintf ppf " %s:%s[%s]"
          (Schema.qualified_name a)
          (Value.ty_to_string a.Schema.ty)
          (Nullability.to_string ns.(i)))
      s
  | _ -> Format.fprintf ppf "; no schema (fatal error)"
