open Subql_relational
open Subql

type report = {
  label : string;
  diags : Diag.t list;
  schema : Schema.t option;
  nulls : Nullability.t array option;
  plan : Algebra.t option;
}

let analyze_plan env ~label plan =
  let v = Typing.infer env plan in
  {
    label;
    diags = Diag.sort (v.Typing.diags @ Lint.plan_lints plan);
    schema = v.Typing.schema;
    nulls = v.Typing.nulls;
    plan = Some plan;
  }

let analyze_query ?(flags = Optimize.all) catalog ~label query =
  let env = Typing.env_of_catalog catalog in
  let qdiags = Lint.query_lints env query in
  match Transform.to_algebra query with
  | exception Transform.Unsupported msg ->
    {
      label;
      diags =
        Diag.sort
          (Diag.error ~code:"TRF001" ("translation unsupported: " ^ msg)
          :: qdiags);
      schema = None;
      nulls = None;
      plan = None;
    }
  | raw ->
    let v0 = Typing.infer env raw in
    let optimized = Optimize.optimize ~flags raw in
    let vdiags = Verify.check_rewrite env ~label:"optimize" ~before:raw ~after:optimized in
    let v1 = Typing.infer env optimized in
    {
      label;
      diags =
        Diag.sort
          (qdiags @ v0.Typing.diags @ vdiags @ v1.Typing.diags
         @ Lint.plan_lints optimized);
      schema = v1.Typing.schema;
      nulls = v1.Typing.nulls;
      plan = Some optimized;
    }

let errors r = Diag.count Diag.Error r.diags

let warnings r = Diag.count Diag.Warning r.diags

(* --- Certification ---------------------------------------------------- *)

type certified = {
  report : report;
  certificate : Cost.certificate option;
  analysis : Diag.t list;
}

let certify ?flags ?(config = Eval.default_config) catalog ~label query =
  let report = analyze_query ?flags catalog ~label query in
  match report.plan with
  | None -> { report; certificate = None; analysis = [] }
  | Some plan ->
    let stats = Cost.Stats.of_catalog catalog in
    let ivl = Interval.certify ~config stats plan in
    let par = Mergeable.certify plan in
    let ing = (Deltaable.analyze plan).Deltaable.diags in
    {
      report;
      certificate = Some ivl.Interval.certificate;
      analysis = Diag.sort (ivl.Interval.diags @ par @ ing);
    }

let certified_errors c = errors c.report + Diag.count Diag.Error c.analysis

(* Fan the templates across worker domains, one [Diag.Scratch] buffer
   per worker (the [Metrics.Scratch] pattern): workers race, but the
   per-template results reassemble by input index and the combined
   stream merges through the total diagnostic order, so the output is
   byte-stable whatever the scheduler did. *)
let certify_all ?flags ?config ?(domains = 1) catalog targets =
  let targets = Array.of_list targets in
  let n = Array.length targets in
  let results = Array.make n None in
  let workers = max 1 (min domains n) in
  let scratches = Array.init workers (fun _ -> Diag.Scratch.create ()) in
  let slice w () =
    let i = ref w in
    while !i < n do
      let label, q = targets.(!i) in
      let c = certify ?flags ?config catalog ~label q in
      Diag.Scratch.add_list scratches.(w) (c.report.diags @ c.analysis);
      results.(!i) <- Some c;
      i := !i + workers
    done
  in
  if workers = 1 then slice 0 ()
  else Array.iter Domain.join (Array.init workers (fun w -> Domain.spawn (slice w)));
  (Array.to_list (Array.map Option.get results), Diag.Scratch.merge scratches)

let diag_to_json d =
  let open Subql_obs.Json in
  Obj
    [
      ("severity", Str (Diag.severity_to_string d.Diag.severity));
      ("code", Str d.Diag.code);
      ("path", Str (Diag.path_to_string d.Diag.path));
      ("subject", match d.Diag.subject with Some s -> Str s | None -> Null);
      ("message", Str d.Diag.message);
    ]

let report_to_json r =
  let open Subql_obs.Json in
  let diag = diag_to_json in
  Obj
    [
      ("label", Str r.label);
      ("errors", Int (errors r));
      ("warnings", Int (warnings r));
      ("infos", Int (Diag.count Diag.Info r.diags));
      ("diagnostics", List (List.map diag r.diags));
      ( "schema",
        match r.schema with
        | Some s -> Str (Format.asprintf "%a" Schema.pp s)
        | None -> Null );
      ( "nullability",
        match r.nulls with
        | Some ns ->
          List
            (Array.to_list (Array.map (fun n -> Str (Nullability.to_string n)) ns))
        | None -> Null );
    ]

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) r.diags;
  Format.fprintf ppf "%s: %d error(s), %d warning(s), %d info(s)" r.label
    (errors r) (warnings r)
    (Diag.count Diag.Info r.diags);
  match r.schema, r.nulls with
  | Some s, Some ns ->
    Format.fprintf ppf "; schema:";
    Array.iteri
      (fun i a ->
        Format.fprintf ppf " %s:%s[%s]"
          (Schema.qualified_name a)
          (Value.ty_to_string a.Schema.ty)
          (Nullability.to_string ns.(i)))
      s
  | _ -> Format.fprintf ppf "; no schema (fatal error)"

let certified_to_json c =
  let open Subql_obs.Json in
  let base =
    match report_to_json c.report with
    | Obj fields -> fields
    | other -> [ ("report", other) ]
  in
  Obj
    (base
    @ [
        ( "certificate",
          match c.certificate with
          | Some cert -> Interval.certificate_to_json cert
          | None -> Null );
        ("analysis", List (List.map diag_to_json c.analysis));
        ("certified_errors", Int (certified_errors c));
      ])

let pp_certified ppf c =
  pp_report ppf c.report;
  List.iter (fun d -> Format.fprintf ppf "@.%a" Diag.pp d) c.analysis;
  match c.certificate with
  | None -> Format.fprintf ppf "@.no certificate (fatal error)"
  | Some cert ->
    Format.fprintf ppf "@.certified memory: %s rows peak"
      (Cost.Interval.fmt_bound cert.Cost.bound);
    if cert.Cost.spill_bound > 0. then
      Format.fprintf ppf " (+%s spilled)"
        (Cost.Interval.fmt_bound cert.Cost.spill_bound);
    if cert.Cost.argmax_op <> "" then
      Format.fprintf ppf "; argmax %s at %s (%s rows)" cert.Cost.argmax_op
        (Diag.path_to_string cert.Cost.argmax_path)
        (Cost.Interval.fmt_bound cert.Cost.argmax_rows)
