(** The analysis driver: everything the static analyzer knows about one
    query, in one report.

    [analyze_query] runs the full pipeline — query-shape lints,
    translation, typing of the raw plan, optimization under the rewrite
    verifier, typing of the optimized plan, plan-shape lints — and
    returns the sorted union of every diagnostic, together with the
    final schema and nullability vector.  This is the engine behind the
    CLI's [analyze] command and the CI gate in [scripts/check.sh]. *)

open Subql_relational

type report = {
  label : string;
  diags : Diag.t list;  (** sorted, duplicate-free *)
  schema : Schema.t option;  (** of the optimized plan; [None] on fatal error *)
  nulls : Nullability.t array option;
  plan : Subql.Algebra.t option;  (** the optimized plan that was analyzed *)
}

val analyze_plan : Typing.env -> label:string -> Subql.Algebra.t -> report
(** Typing + plan lints over an already-built plan (no translation, no
    rewriting). *)

val analyze_query :
  ?flags:Subql.Optimize.flags ->
  Catalog.t ->
  label:string ->
  Subql_nested.Nested_ast.query ->
  report
(** The full pipeline.  A {!Subql.Transform.Unsupported} translation
    failure is reported as a [TRF001] error, not an exception. *)

val errors : report -> int

val warnings : report -> int

val report_to_json : report -> Subql_obs.Json.t
(** Machine-readable form: label, counts, the diagnostic list (severity,
    code, path, subject, message), schema and nullability rendering. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable: one line per diagnostic, then a summary line. *)
