(** The analysis driver: everything the static analyzer knows about one
    query, in one report.

    [analyze_query] runs the full pipeline — query-shape lints,
    translation, typing of the raw plan, optimization under the rewrite
    verifier, typing of the optimized plan, plan-shape lints — and
    returns the sorted union of every diagnostic, together with the
    final schema and nullability vector.  This is the engine behind the
    CLI's [analyze] command and the CI gate in [scripts/check.sh]. *)

open Subql_relational

type report = {
  label : string;
  diags : Diag.t list;  (** sorted, duplicate-free *)
  schema : Schema.t option;  (** of the optimized plan; [None] on fatal error *)
  nulls : Nullability.t array option;
  plan : Subql.Algebra.t option;  (** the optimized plan that was analyzed *)
}

val analyze_plan : Typing.env -> label:string -> Subql.Algebra.t -> report
(** Typing + plan lints over an already-built plan (no translation, no
    rewriting). *)

val analyze_query :
  ?flags:Subql.Optimize.flags ->
  Catalog.t ->
  label:string ->
  Subql_nested.Nested_ast.query ->
  report
(** The full pipeline.  A {!Subql.Transform.Unsupported} translation
    failure is reported as a [TRF001] error, not an exception. *)

val errors : report -> int

val warnings : report -> int

(** {1 Certification}

    [certify] runs {!analyze_query} and then the three certificate
    passes over the optimized plan: {!Interval.certify} (sound
    cardinality intervals and the certified memory ceiling),
    {!Mergeable.certify} (parallel-merge lawfulness, [PAR0xx]) and
    {!Deltaable.analyze} (delta-maintainability, [ING00x]).  This is
    the engine behind [analyze --certify] and the zoo gate in
    [scripts/check.sh]. *)

type certified = {
  report : report;
  certificate : Subql.Cost.certificate option;
      (** [None] iff the report has no plan (fatal analysis error) *)
  analysis : Diag.t list;  (** the IVL/PAR/ING diagnostics, sorted *)
}

val certify :
  ?flags:Subql.Optimize.flags ->
  ?config:Subql.Eval.config ->
  Catalog.t ->
  label:string ->
  Subql_nested.Nested_ast.query ->
  certified

val certified_errors : certified -> int
(** Error-severity diagnostics across the report and the certificate
    passes — the CLI's exit-status count. *)

val certify_all :
  ?flags:Subql.Optimize.flags ->
  ?config:Subql.Eval.config ->
  ?domains:int ->
  Catalog.t ->
  (string * Subql_nested.Nested_ast.query) list ->
  certified list * Diag.t list
(** Certify a population of templates, fanned across [domains] worker
    domains (default 1 = serial).  Returns the per-template results in
    {e input} order plus the combined diagnostic stream, accumulated in
    per-worker {!Diag.Scratch} buffers and merged through the total
    diagnostic order — both are byte-stable regardless of worker
    scheduling, so [--domains N] never changes the output. *)

val certified_to_json : certified -> Subql_obs.Json.t
(** {!report_to_json} extended with the certificate (bound, spill
    bound, argmax operator, per-operator interval tree) and the
    analysis diagnostics. *)

val pp_certified : Format.formatter -> certified -> unit
(** {!pp_report}, then the analysis diagnostics, then a certified-memory
    summary line naming the argmax pipeline breaker. *)

val report_to_json : report -> Subql_obs.Json.t
(** Machine-readable form: label, counts, the diagnostic list (severity,
    code, path, subject, message), schema and nullability rendering. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable: one line per diagnostic, then a summary line. *)
