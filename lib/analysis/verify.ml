open Subql_relational
open Subql

let check_rewrite env ~label ~before ~after =
  let vb = Typing.infer env before in
  let va = Typing.infer env after in
  match vb.Typing.schema with
  | None -> [] (* ill-typed input: nothing to preserve *)
  | Some sb ->
    let diags = ref [] in
    (match va.Typing.schema with
    | None -> ()
    | Some sa ->
      if not (Schema.equal_names sb sa) then
        diags :=
          Diag.error ~subject:label ~code:"VER001"
            (Printf.sprintf
               "%s: rewrite changed the inferred schema (%s -> %s)" label
               (Format.asprintf "%a" Schema.pp sb)
               (Format.asprintf "%a" Schema.pp sa))
          :: !diags);
    (match vb.Typing.nulls, va.Typing.nulls with
    | Some nb, Some na when Array.length nb = Array.length na ->
      Array.iteri
        (fun i before_n ->
          if not (Nullability.leq na.(i) before_n) then
            diags :=
              Diag.error
                ~subject:
                  (Schema.qualified_name
                     (Schema.attr_at (Option.get va.Typing.schema) i))
                ~code:"VER002"
                (Printf.sprintf
                   "%s: rewrite widened nullability of column %d (%s -> %s)"
                   label i
                   (Nullability.to_string before_n)
                   (Nullability.to_string na.(i)))
              :: !diags)
        nb
    | _ -> ());
    (* a rewrite must not introduce new type errors *)
    if not (Diag.has_errors vb.Typing.diags) then
      diags := List.filter Diag.is_error va.Typing.diags @ !diags;
    Diag.sort !diags

(* --- Optimizer self-check hook ---------------------------------------- *)

let install_optimizer_check catalog =
  let env = Typing.env_of_catalog catalog in
  Optimize.set_self_check (fun ~label ~before ~after ->
      match List.find_opt Diag.is_error (check_rewrite env ~label ~before ~after) with
      | Some d -> raise (Diag.Fail d)
      | None -> ())

let clear_optimizer_check () = Optimize.clear_self_check ()

(* --- Planner self-check gate ------------------------------------------ *)

let plan_verifier catalog query ~label plan =
  let env = Typing.env_of_catalog catalog in
  let v = Typing.infer env plan in
  let own = List.filter Diag.is_error v.Typing.diags in
  match Transform.to_algebra query with
  | exception Transform.Unsupported _ -> Diag.sort own
  | reference -> (
    let vr = Typing.infer env reference in
    match v.Typing.schema, vr.Typing.schema with
    | Some sp, Some sr when not (Schema.equal_names sp sr) ->
      Diag.sort
        (Diag.error ~subject:label ~code:"VER001"
           (label ^ ": candidate schema differs from the reference translation")
        :: own)
    | _ -> Diag.sort own)

let install_planner_gate () =
  Planner.set_plan_verifier plan_verifier;
  Planner.set_merge_certifier (fun plan -> Mergeable.certify plan);
  Planner.set_self_check true

let clear_planner_gate () =
  Planner.clear_plan_verifier ();
  Planner.clear_merge_certifier ();
  Planner.set_self_check false
