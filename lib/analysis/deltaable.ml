open Subql_relational
open Subql

type maintainable = {
  md_node : Algebra.t;
  base_plan : Algebra.t;
  detail_plan : Algebra.t;
  detail_table : string;
  blocks : Subql_gmdj.Gmdj.block list;
  delta_pipeline : Chunk.Source.t -> Chunk.Source.t;
}

type verdict = { maintainable : maintainable option; diags : Diag.t list }

(* --- Plan walks ------------------------------------------------------- *)

let plan_tables plan =
  let tbls = ref [] in
  let rec walk p =
    (match p with
    | Algebra.Table name -> if not (List.mem name !tbls) then tbls := name :: !tbls
    | _ -> ());
    List.iter walk (Eval.children p)
  in
  walk plan;
  List.sort String.compare !tbls

(* Every MD-family node with its plan path. *)
let md_nodes plan =
  let nodes = ref [] in
  let rec walk rev_path p =
    let rev_path = Algebra.node_label p :: rev_path in
    (match p with
    | Algebra.Md _ | Algebra.Md_completed _ -> nodes := (List.rev rev_path, p) :: !nodes
    | _ -> ());
    List.iter (walk rev_path) (Eval.children p)
  in
  walk [] plan;
  List.rev !nodes

(* --- The detail-side effect analysis ---------------------------------- *)

(* A detail side folds append suffixes iff it is a {e row-local} pipeline
   over exactly one base-table scan: each output row is a function of one
   input row, so pipeline(prefix ++ delta) = pipeline(prefix) ++
   pipeline(delta) and the appended suffix can be streamed through the
   same operators into live accumulators.  Position-dependent operators
   (Add_rownum) and stateful ones (DISTINCT, joins, nested GMDJs) break
   that equation. *)
let rec detail_chain ~path detail =
  match detail with
  | Algebra.Table d -> Ok (d, fun src -> src)
  | Algebra.Rename (a, x) ->
    Result.map
      (fun (d, pipe) -> (d, fun src -> Ops.rename_source a (pipe src)))
      (detail_chain ~path x)
  | Algebra.Select (e, x) ->
    Result.map
      (fun (d, pipe) -> (d, fun src -> Ops.select_source e (pipe src)))
      (detail_chain ~path x)
  | Algebra.Project (ps, x) ->
    Result.map
      (fun (d, pipe) -> (d, fun src -> Ops.project_source ps (pipe src)))
      (detail_chain ~path x)
  | Algebra.Project_cols { distinct = false; cols; input } ->
    Result.map
      (fun (d, pipe) -> (d, fun src -> Ops.project_cols_source cols (pipe src)))
      (detail_chain ~path input)
  | Algebra.Project_rel (aliases, x) ->
    Result.map
      (fun (d, pipe) ->
        ( d,
          fun src ->
            let src = pipe src in
            let cols =
              List.filter_map
                (fun a ->
                  if List.mem a.Schema.rel aliases then
                    Some (Some a.Schema.rel, a.Schema.name)
                  else None)
                (Schema.to_list (Chunk.Source.schema src))
            in
            Ops.project_cols_source cols src ))
      (detail_chain ~path x)
  | Algebra.Add_rownum (name, _) ->
    Error
      (Diag.makef ~path ~subject:name Diag.Info ~code:"ING003"
         "detail side assigns row numbers (%s): position-dependent output blocks suffix \
          folding"
         name)
  | _ ->
    Error
      (Diag.makef ~path ~subject:(Algebra.node_label detail) Diag.Info ~code:"ING003"
         "detail side contains a non-row-local operator (%s): appended rows cannot be \
          folded as a suffix"
         (Eval.node_label detail))

let not_maintainable diags = { maintainable = None; diags = Diag.sort diags }

let analyze plan =
  match md_nodes plan with
  | [] ->
    not_maintainable
      [
        Diag.info ~code:"ING001"
          "plan has no GMDJ node: nothing to maintain incrementally, appends force a \
           recompute";
      ]
  | _ :: _ :: _ as nodes ->
    not_maintainable
      [
        Diag.makef
          ~path:(fst (List.hd nodes))
          Diag.Info ~code:"ING001"
          "plan holds %d GMDJ nodes: maintaining one in place would stale the others, \
           appends force a recompute"
          (List.length nodes);
      ]
  | [ (path, Algebra.Md_completed _) ] ->
    not_maintainable
      [
        Diag.make ~path Diag.Info ~code:"ING002"
          "completion prunes base rows during the scan: pruned accumulators cannot \
           absorb later deltas, so the completed form is not suffix-foldable";
      ]
  | [ (path, (Algebra.Md { base; detail; blocks } as md_node)) ] -> (
    match detail_chain ~path:(path @ [ "detail" ]) detail with
    | Error d -> not_maintainable [ d ]
    | Ok (detail_table, delta_pipeline) ->
      if List.mem detail_table (plan_tables base) then
        not_maintainable
          [
            Diag.makef ~path:(path @ [ "base" ]) ~subject:detail_table Diag.Info
              ~code:"ING001"
              "detail table %s also feeds the base side: an append changes the \
               accumulator matrix itself, not just the folded suffix"
              detail_table;
          ]
      else
        {
          maintainable =
            Some { md_node; base_plan = base; detail_plan = detail; detail_table; blocks;
                   delta_pipeline };
          diags = [];
        })
  | [ (_, _) ] -> assert false
