(** The ingest subsystem: appendable table storage with epoch-stamped
    catalog registration and incremental maintenance of cached GMDJ
    results.

    Each ingested table is backed by an appendable heap file
    ({!Subql_storage.Heap_file}): an [append] batch packs the new rows
    onto the file's tail pages (schema-checked), re-registers the grown
    relation in the catalog — bumping that table's epoch exactly once
    per batch — and remembers where the batch landed, so the appended
    suffix can later be replayed as a chunk stream without ever being
    materialized.

    Staleness policy decides {e when} cached results are repaired:

    - {!Maintain_on_write}: every append synchronously repairs all
      registered plans (freshest reads, append pays);
    - {!Maintain_on_read}: appends only mark the state dirty; the
      {!before_batch} hook repairs lazily just before the next query
      batch runs (reads pay, back-to-back appends coalesce);
    - {!Recompute_on_miss}: no repair at all — stale entries fall out of
      the cache on lookup and queries recompute from scratch (the
      baseline delta maintenance is measured against).

    All three policies are {b stale-read free}: the global epoch bumps
    with the catalog registration inside [append], so a cached entry
    computed before the batch can never be served after it.  The
    policies differ only in how the freshness is restored.

    Batches and rows are counted under ["ingest.batches"] and
    ["ingest.rows_appended"]. *)

open Subql_relational

type policy = Maintain_on_write | Maintain_on_read | Recompute_on_miss

val policy_name : policy -> string

val policy_of_string : string -> policy option
(** Accepts the CLI spellings ["on-write"], ["on-read"], ["recompute"]
    (and the long names). *)

type t

val create :
  ?policy:policy ->
  ?page_size:int ->
  ?frames:int ->
  ?config:Subql.Eval.config ->
  ?delta_row_cost:float ->
  ?registry:Subql_obs.Metrics.t ->
  catalog:Catalog.t ->
  cache:Subql_mqo.Result_cache.t ->
  unit ->
  t
(** [policy] defaults to {!Maintain_on_write}; [frames] (default 64)
    sizes the private buffer pool delta replays read through. *)

val policy : t -> policy

val register : t -> fingerprint:string -> Subql.Algebra.t -> bool
(** Track a plan for maintenance; see {!Maintenance.register}. *)

val register_query : t -> Subql_nested.Nested_ast.query -> bool

val maintenance : t -> Maintenance.t

val append : t -> table:string -> Tuple.t array -> Maintenance.report option
(** Append one batch: write the rows to the table's heap file (attached
    on first use — the catalog relation is spilled to a temp file),
    re-register the grown relation (one epoch bump), and under
    {!Maintain_on_write} synchronously repair registered plans,
    returning the maintenance report.  An empty batch changes nothing.
    @raise Subql_relational.Catalog.Unknown_table for an unregistered table.
    @raise Invalid_argument for rows that do not fit the table schema. *)

val sync : t -> Maintenance.report option
(** Repair registered plans now if any append happened since the last
    sync ([None] when already clean).  Called automatically by
    {!append} under {!Maintain_on_write} and by {!before_batch} under
    {!Maintain_on_read}. *)

val dirty : t -> bool
(** Appends pending maintenance. *)

val before_batch : t -> now:float -> unit
(** The serving hook ({!Subql_server.Server.set_before_batch}): under
    {!Maintain_on_read} runs {!sync} so the batch about to execute sees
    repaired entries; a no-op under the other policies. *)

val table_rows : t -> string -> int option
(** Current row count of an attached table ([None] before any append). *)

val close : t -> unit
(** Close and delete the backing temp heap files. *)
