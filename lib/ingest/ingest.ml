open Subql_relational
open Subql_storage

type policy = Maintain_on_write | Maintain_on_read | Recompute_on_miss

let policy_name = function
  | Maintain_on_write -> "maintain-on-write"
  | Maintain_on_read -> "maintain-on-read"
  | Recompute_on_miss -> "recompute-on-miss"

let policy_of_string = function
  | "on-write" | "maintain-on-write" -> Some Maintain_on_write
  | "on-read" | "maintain-on-read" -> Some Maintain_on_read
  | "recompute" | "recompute-on-miss" -> Some Recompute_on_miss
  | _ -> None

(* Per-table append state: the heap file is the durable form (and the
   delta stream's backing store); the row vector mirrors it so the
   catalog can be re-registered per batch; marks remember where every
   batch landed so any batch-aligned suffix replays as a chunk stream. *)
type table_state = {
  schema : Schema.t;
  file : Heap_file.t;
  rows : Tuple.t Vec.t;
  marks : (int, int * int) Hashtbl.t;  (* row index -> (first_page, skip) *)
}

type t = {
  catalog : Catalog.t;
  pool : Buffer_pool.t;
  policy : policy;
  page_size : int;
  tables : (string, table_state) Hashtbl.t;
  maint : Maintenance.t;
  mutable dirty : bool;
  m_rows : Subql_obs.Metrics.counter;
  m_batches : Subql_obs.Metrics.counter;
}

let create ?(policy = Maintain_on_write) ?(page_size = 8192) ?(frames = 64) ?config
    ?delta_row_cost ?(registry = Subql_obs.Metrics.default) ~catalog ~cache () =
  {
    catalog;
    pool = Buffer_pool.create ~frames;
    policy;
    page_size;
    tables = Hashtbl.create 8;
    maint = Maintenance.create ?config ?delta_row_cost ~registry ~catalog ~cache ();
    dirty = false;
    m_rows = Subql_obs.Metrics.counter registry "ingest.rows_appended";
    m_batches = Subql_obs.Metrics.counter registry "ingest.batches";
  }

let policy t = t.policy

let dirty t = t.dirty

let maintenance t = t.maint

let register t ~fingerprint plan = Maintenance.register t.maint ~fingerprint plan

let register_query t q = Maintenance.register_query t.maint q

let attach t name =
  match Hashtbl.find_opt t.tables name with
  | Some st -> st
  | None ->
    let rel = Catalog.find t.catalog name in
    let path = Filename.temp_file ("subql_" ^ name ^ "_") ".heap" in
    let file = Heap_file.write ~path ~page_size:t.page_size rel in
    let rows =
      Vec.create ~capacity:(max 1 (Relation.cardinality rel)) ~dummy:Tuple.empty ()
    in
    Relation.iter (Vec.push rows) rel;
    let marks = Hashtbl.create 8 in
    Hashtbl.replace marks 0 (0, 0);
    let st = { schema = Relation.schema rel; file; rows; marks } in
    Hashtbl.replace t.tables name st;
    st

let table_rows t name = Option.map (fun st -> Vec.length st.rows) (Hashtbl.find_opt t.tables name)

let sync t =
  if not t.dirty then None
  else begin
    let report =
      Maintenance.sync t.maint
        ~rows:(fun table ->
          Option.map (fun st -> Vec.length st.rows) (Hashtbl.find_opt t.tables table))
        ~delta:(fun ~table ~from_row ->
          match Hashtbl.find_opt t.tables table with
          | None -> None
          | Some st ->
            if from_row >= Vec.length st.rows then Some (Chunk.Source.empty st.schema)
            else
              Option.map
                (fun (first_page, skip) ->
                  Heap_file.source_range st.file ~pool:t.pool ~first_page ~skip)
                (Hashtbl.find_opt st.marks from_row))
    in
    t.dirty <- false;
    Some report
  end

let append t ~table rows =
  let st = attach t table in
  let mark_at = Vec.length st.rows in
  let d = Heap_file.append st.file rows in
  if d.Heap_file.rows > 0 then begin
    Hashtbl.replace st.marks mark_at (d.Heap_file.first_page, d.Heap_file.skip);
    Array.iter (Vec.push st.rows) rows;
    (* One registration per batch: the per-table epoch bumps atomically,
       never exposing a half-applied batch to epoch observers. *)
    Catalog.add t.catalog table (Relation.create ~check:false st.schema (Vec.to_array st.rows));
    Subql_obs.Metrics.incr ~by:d.Heap_file.rows t.m_rows;
    Subql_obs.Metrics.incr t.m_batches;
    t.dirty <- true
  end;
  match t.policy with Maintain_on_write -> sync t | Maintain_on_read | Recompute_on_miss -> None

let before_batch t ~now:_ =
  match t.policy with
  | Maintain_on_read -> ignore (sync t)
  | Maintain_on_write | Recompute_on_miss -> ()

let close t =
  Hashtbl.iter
    (fun _ st ->
      let path = Heap_file.path st.file in
      Heap_file.close st.file;
      try Sys.remove path with Sys_error _ -> ())
    t.tables;
  Hashtbl.reset t.tables
