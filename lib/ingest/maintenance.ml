open Subql_relational
open Subql_gmdj
open Subql_mqo
open Subql_analysis

(* Delta-maintainability is decided by the static effect analysis
   [Subql_analysis.Deltaable]: a plan qualifies when its single GMDJ's
   detail side is a row-local operator chain over one base table the
   base side does not read.  The analysis also compiles the proof into
   a runnable [delta_pipeline] — the detail chain as a stream
   transformer — which is what [sync] feeds each append suffix through.
   The refused plans keep their ING diagnostics, so a caller can see
   {e why} a view recomputes. *)

type view = {
  fingerprint : string;
  plan : Subql.Algebra.t;
  deps : string list;  (* base tables the plan reads, sorted *)
  maintainable : Deltaable.maintainable option;
  why_not : Diag.t list;  (* ING diagnostics when not maintainable *)
  mutable state : Gmdj.Maintain.t option;
  mutable maintained_rows : int;
      (* raw detail-table rows folded into [state] — the [from_row]
         offset for the next delta, counted {e before} the pipeline
         (a selective pipeline folds fewer rows than it consumes) *)
  mutable synced : (string * int) list;  (* table -> epoch at last sync *)
}

type t = {
  catalog : Catalog.t;
  cache : Result_cache.t;
  config : Subql.Eval.config;
  delta_row_cost : float;
  views : (string, view) Hashtbl.t;
  mutable stats_cache : (Subql.Cost.Stats.t * float) option;
      (* stats + total catalog rows at snapshot time *)
  m_delta : Subql_obs.Metrics.counter;
  m_recompute : Subql_obs.Metrics.counter;
  m_restamp : Subql_obs.Metrics.counter;
}

type report = {
  views : int;
  restamped : int;
  delta_maintained : int;
  recomputed : int;
  delta_rows : int;
  recompute_rows : int;
  avoided_rows : int;
}

let create ?(config = Subql.Eval.default_config) ?(delta_row_cost = 4.)
    ?(registry = Subql_obs.Metrics.default) ~catalog ~cache () =
  {
    catalog;
    cache;
    config;
    delta_row_cost;
    views = Hashtbl.create 16;
    stats_cache = None;
    m_delta = Subql_obs.Metrics.counter registry "ingest.maintain.delta";
    m_recompute = Subql_obs.Metrics.counter registry "ingest.maintain.recompute";
    m_restamp = Subql_obs.Metrics.counter registry "ingest.maintain.restamp";
  }

(* ------------------------------------------------------------------ *)
(* Registration                                                         *)
(* ------------------------------------------------------------------ *)

let snapshot_epochs (t : t) deps = List.map (fun d -> (d, Catalog.epoch t.catalog d)) deps

let register (t : t) ~fingerprint plan =
  if Hashtbl.mem t.views fingerprint then false
  else begin
    let deps = Deltaable.plan_tables plan in
    let verdict = Deltaable.analyze plan in
    Hashtbl.replace t.views fingerprint
      {
        fingerprint;
        plan;
        deps;
        maintainable = verdict.Deltaable.maintainable;
        why_not = verdict.Deltaable.diags;
        state = None;
        maintained_rows = 0;
        synced = snapshot_epochs t deps;
      };
    true
  end

let register_query t q =
  let e = Batch.prepare q in
  (* Register the completion-free optimized plan: completion fuses the
     enclosing selection into the MD node ([Md_completed]), which prunes
     base rows during the scan — pruned accumulators cannot absorb later
     deltas ([ING002]).  Without the completion rewrite the plan keeps a
     plain [Md] under the selection: same answer, delta-maintainable.
     The fingerprint is still the batch layer's, so repairs land on the
     entry the cache serves. *)
  let plan =
    Subql.Optimize.optimize
      ~flags:(Subql.Optimize.only ~coalesce:true ~pushdown:true ~completion:false ())
      (Subql.Transform.to_algebra q)
  in
  register t ~fingerprint:(Batch.fingerprint e) plan

let registered (t : t) = Hashtbl.length t.views

let is_maintainable (t : t) ~fingerprint =
  match Hashtbl.find_opt t.views fingerprint with
  | Some v -> Option.is_some v.maintainable
  | None -> false

let why_not_maintainable (t : t) ~fingerprint =
  match Hashtbl.find_opt t.views fingerprint with
  | Some v -> v.why_not
  | None -> []

(* ------------------------------------------------------------------ *)
(* Synchronisation                                                      *)
(* ------------------------------------------------------------------ *)

let eval_via_state (t : t) v (m : Deltaable.maintainable) state =
  (* Splice the maintained accumulators into the registered plan: the
     override answers the [Md] subterm, the surrounding operators run
     normally over its (small) output. *)
  Subql.Eval.eval_with_overrides ~config:t.config
    ~override:(fun node ->
      if node == m.Deltaable.md_node then Some (Gmdj.Maintain.result state) else None)
    t.catalog v.plan

(* Rebuild the maintained accumulators from scratch — one full detail
   scan through the whole detail chain — and answer the plan through
   them, so the scan also serves the recomputation. *)
let rebuild (t : t) v (m : Deltaable.maintainable) =
  let base = Subql.Eval.eval ~config:t.config t.catalog m.Deltaable.base_plan in
  let detail = Subql.Eval.eval ~config:t.config t.catalog m.Deltaable.detail_plan in
  let state =
    Gmdj.Maintain.create ~strategy:t.config.Subql.Eval.gmdj_strategy ~base ~detail
      m.Deltaable.blocks
  in
  v.state <- Some state;
  (* The offset is counted in {e raw} table rows, not pipeline output
     rows: the next delta replays the raw suffix from here. *)
  v.maintained_rows <-
    Relation.cardinality (Catalog.find t.catalog m.Deltaable.detail_table);
  eval_via_state t v m state

(* Cost stats are only consulted to price delta folds against full MD
   recomputes, a decision with order-of-magnitude margins — so the
   distinct-count scan behind [Stats.of_catalog] (every column of every
   table) is cached and refreshed only once the catalog has grown 25%
   past the snapshot.  Recomputing it per append would cost more than
   the folds it prices. *)
let catalog_rows (t : t) =
  List.fold_left
    (fun acc name ->
      acc +. float_of_int (Relation.cardinality (Catalog.find t.catalog name)))
    0. (Catalog.tables t.catalog)

let stats (t : t) =
  let total = catalog_rows t in
  match t.stats_cache with
  | Some (s, at) when total <= at *. 1.25 -> s
  | _ ->
    let s = Subql.Cost.Stats.of_catalog t.catalog in
    t.stats_cache <- Some (s, total);
    s

let decide_delta (t : t) ~stats v (m : Deltaable.maintainable) ~delta_n =
  (* Price the delta fold against recomputing just the MD node; the
     operators around it run in either path. *)
  let n_blocks = float_of_int (List.length m.Deltaable.blocks) in
  let cost_delta = t.delta_row_cost *. float_of_int delta_n *. n_blocks in
  let cost_full =
    (Subql.Cost.estimate stats ~config:t.config m.Deltaable.md_node).Subql.Cost.cost
  in
  ignore v;
  cost_delta < cost_full

let sync (t : t) ~rows ~delta =
  let stats = lazy (stats t) in
  let restamped = ref 0
  and delta_maintained = ref 0
  and recomputed = ref 0
  and delta_rows = ref 0
  and recompute_rows = ref 0
  and avoided_rows = ref 0 in
  (* Deterministic view order, so costs and metrics are reproducible. *)
  let views =
    Hashtbl.fold (fun _ v acc -> v :: acc) t.views []
    |> List.sort (fun a b -> String.compare a.fingerprint b.fingerprint)
  in
  (* Phase 1: bring every view's relation up to date.  Folding a delta
     bumps the maintenance generation (and with it the global epoch), so
     no entry may be restamped until all folds are done. *)
  let repairs =
    List.filter_map
      (fun v ->
        let changed =
          List.filter (fun (d, e) -> Catalog.epoch t.catalog d <> e) v.synced
          |> List.map fst
        in
        v.synced <- snapshot_epochs t v.deps;
        if changed = [] then begin
          (* Dependencies untouched: the cached relation is still the
             answer; only its epoch stamp is stale. *)
          incr restamped;
          Subql_obs.Metrics.incr t.m_restamp;
          Option.map (fun rel -> (v, rel)) (Result_cache.peek t.cache v.fingerprint)
        end
        else begin
          let via_delta =
            match (v.maintainable, v.state) with
            | Some m, Some state when changed = [ m.Deltaable.detail_table ] -> (
              match rows m.Deltaable.detail_table with
              | Some total when total >= v.maintained_rows ->
                let delta_n = total - v.maintained_rows in
                if not (decide_delta t ~stats:(Lazy.force stats) v m ~delta_n) then None
                else
                  Option.map
                    (fun src ->
                      (* Count the raw suffix as it streams past, then
                         fold it through the detail chain: the offset
                         advances by rows {e consumed}, the accumulators
                         by rows that {e survive} the pipeline. *)
                      let raw = ref 0 in
                      let src = Chunk.Source.tap (fun n -> raw := !raw + n) src in
                      let folded =
                        Gmdj.Maintain.insert_source state
                          (m.Deltaable.delta_pipeline src)
                      in
                      v.maintained_rows <- v.maintained_rows + !raw;
                      delta_rows := !delta_rows + folded;
                      avoided_rows := !avoided_rows + (total - !raw);
                      eval_via_state t v m state)
                    (delta ~table:m.Deltaable.detail_table ~from_row:v.maintained_rows)
              | _ -> None)
            | _ -> None
          in
          let rel =
            match via_delta with
            | Some rel ->
              incr delta_maintained;
              Subql_obs.Metrics.incr t.m_delta;
              rel
            | None ->
              incr recomputed;
              Subql_obs.Metrics.incr t.m_recompute;
              (match v.maintainable with
              | Some m ->
                let rel = rebuild t v m in
                recompute_rows := !recompute_rows + v.maintained_rows;
                rel
              | None ->
                let rel = Subql.Eval.eval ~config:t.config t.catalog v.plan in
                List.iter
                  (fun d ->
                    match rows d with
                    | Some n -> recompute_rows := !recompute_rows + n
                    | None -> ())
                  v.deps;
                rel)
          in
          Some (v, rel)
        end)
      views
  in
  (* Phase 2: restamp every refreshed relation at the final epoch.  A
     view never admitted to the cache stays out — repair is not
     admission — so the cache's cost policy is preserved. *)
  List.iter
    (fun (v, rel) -> ignore (Result_cache.repair t.cache ~fingerprint:v.fingerprint rel))
    repairs;
  {
    views = List.length views;
    restamped = !restamped;
    delta_maintained = !delta_maintained;
    recomputed = !recomputed;
    delta_rows = !delta_rows;
    recompute_rows = !recompute_rows;
    avoided_rows = !avoided_rows;
  }
