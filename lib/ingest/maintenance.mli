(** Incremental maintenance planning for cached GMDJ results.

    The planner tracks registered query plans (one per fingerprint) and,
    when ingest bumps table epochs ({!Subql_relational.Catalog.epoch}),
    brings each plan's cached result back to the current epoch by the
    cheapest applicable route:

    - {b restamp} — no dependency changed; the relation is still the
      answer and only its epoch stamp is stale;
    - {b delta maintenance} — the only changed dependency is the plan's
      GMDJ detail table: the appended rows are streamed (never
      materialized) through the view's
      {!Subql_analysis.Deltaable.maintainable.delta_pipeline} — the
      detail side's row-local operator chain — into live accumulators
      via {!Subql_gmdj.Gmdj.Maintain.insert_source}, and the plan
      re-answered by splicing the maintained MD result in via
      [Eval.eval_with_overrides];
    - {b full recompute} — everything else, with the rebuilt accumulator
      state serving the recomputation scan for maintainable plans.

    The delta-vs-recompute choice is cost-based: the delta fold is
    priced per row per block against {!Subql.Cost.estimate} of the MD
    node.  Repairs go through {!Subql_mqo.Result_cache.repair}, so warm
    entries survive appends in place instead of being dropped and
    rebuilt on the next miss.  Decisions are counted under
    ["ingest.maintain.delta" / "recompute" / "restamp"]. *)

open Subql_relational
open Subql_mqo

type t

type report = {
  views : int;  (** registered plans considered *)
  restamped : int;
  delta_maintained : int;
  recomputed : int;
  delta_rows : int;  (** detail rows folded by delta maintenance *)
  recompute_rows : int;  (** rows scanned by full recomputes *)
  avoided_rows : int;  (** scan rows delta maintenance saved *)
}

val create :
  ?config:Subql.Eval.config ->
  ?delta_row_cost:float ->
  ?registry:Subql_obs.Metrics.t ->
  catalog:Catalog.t ->
  cache:Result_cache.t ->
  unit ->
  t
(** [delta_row_cost] (default [4.]) prices one delta row folded through
    one block, in the cost model's tuple-operation units. *)

val register : t -> fingerprint:string -> Subql.Algebra.t -> bool
(** Track a plan under its fingerprint; [false] if already tracked.
    Dependencies are snapshotted at the current epochs, so a plan
    registered after an append is not spuriously recomputed. *)

val register_query : t -> Subql_nested.Nested_ast.query -> bool
(** {!register} via [Batch.prepare] (fingerprint + optimized solo plan). *)

val registered : t -> int

val is_maintainable : t -> fingerprint:string -> bool
(** Whether {!Subql_analysis.Deltaable.analyze} certified the plan for
    delta maintenance: exactly one MD node, plain [Md] (no completion),
    and a detail side that is a row-local operator chain
    ([Rename]/[Select]/[Project]/non-distinct
    [Project_cols]/[Project_rel]) over one base table the base side
    does not read. *)

val why_not_maintainable : t -> fingerprint:string -> Diag.t list
(** The [ING00x] diagnostics explaining why the plan recomputes on
    append; empty when it is maintainable (or unknown). *)

val sync :
  t ->
  rows:(string -> int option) ->
  delta:(table:string -> from_row:int -> Chunk.Source.t option) ->
  report
(** Bring every registered plan's cached entry to the current epoch.
    [rows table] is the table's current cardinality; [delta ~table
    ~from_row] streams exactly the rows appended since [from_row]
    ([None] when that suffix cannot be reproduced — forces recompute).
    Runs in two phases: all relations are refreshed first (delta folds
    bump the global epoch), then every refreshed entry is restamped at
    the final epoch via {!Subql_mqo.Result_cache.repair}.  Plans absent
    from the cache are still maintained (their accumulators advance) but
    never admitted — repair is not admission. *)
