open Subql_relational

(* Spill-to-disk pipeline breakers.

   Each operator here is the adaptive twin of an in-memory breaker: it
   accumulates hash state exactly as the in-memory operator would until
   the state reaches a row budget, then freezes the resident state and
   routes overflow rows — hash-partitioned on the breaker's key — to
   temp heap files, merging the partitions in a second pass.  The second
   pass reads one partition at a time through a buffer pool, so the
   breaker's resident footprint is bounded by the budget (plus
   batch-sized write buffers) instead of the input cardinality: a
   breaker over a detail-sized input degrades to I/O rather than OOM.

   Soundness of the freeze: a row is only spilled when its key is absent
   from the resident state, and equal keys always hash to the same
   partition — so the resident result and the per-partition results are
   key-disjoint and complete, and their union is the exact answer. *)

let default_partitions = 8

let batch_rows = 512

let registry_counter name = Subql_obs.Metrics.(counter default name)

let m_spills = lazy (registry_counter "exec.spills")

let m_spilled_rows = lazy (registry_counter "exec.spilled_rows")

let m_spilled_bytes = lazy (registry_counter "exec.spilled_bytes")

type outcome = {
  result : Relation.t;
  resident_peak_rows : int;
      (* high-water mark of rows the breaker held resident: hash state,
         write buffers, and second-pass partition state *)
  spilled_rows : int;
  spilled_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Resident-row metering                                                *)
(* ------------------------------------------------------------------ *)

type meter = { mutable live : int; mutable peak : int }

let meter_create () = { live = 0; peak = 0 }

let meter_alloc m n =
  m.live <- m.live + n;
  if m.live > m.peak then m.peak <- m.live

let meter_release m n = m.live <- m.live - n

(* ------------------------------------------------------------------ *)
(* Hash-partitioned temp heap files                                     *)
(* ------------------------------------------------------------------ *)

type part = {
  path : string;
  file : Heap_file.t;
  batch : Tuple.t Vec.t;
  mutable part_rows : int;
}

type parts = {
  schema : Schema.t;
  slots : part option array;
  pmeter : meter;  (* shares the operator's meter: batches are resident *)
}

let parts_create ~meter ~schema n =
  if n <= 0 then invalid_arg "Spill: partitions must be positive";
  { schema; slots = Array.make n None; pmeter = meter }

let part_of ps i =
  match ps.slots.(i) with
  | Some p -> p
  | None ->
    let path = Filename.temp_file "subql_spill" ".heap" in
    let file = Heap_file.write ~path (Relation.create ~check:false ps.schema [||]) in
    let p = { path; file; batch = Vec.create ~dummy:[||] (); part_rows = 0 } in
    ps.slots.(i) <- Some p;
    p

let part_flush ps p =
  let n = Vec.length p.batch in
  if n > 0 then begin
    ignore (Heap_file.append p.file (Vec.to_array p.batch));
    Vec.clear p.batch;
    meter_release ps.pmeter n
  end

let parts_push ps i row =
  let p = part_of ps i in
  Vec.push p.batch row;
  p.part_rows <- p.part_rows + 1;
  meter_alloc ps.pmeter 1;
  if Vec.length p.batch >= batch_rows then part_flush ps p

let parts_flush_all ps = Array.iter (function None -> () | Some p -> part_flush ps p) ps.slots

let parts_spilled_rows ps =
  Array.fold_left
    (fun acc -> function None -> acc | Some p -> acc + p.part_rows)
    0 ps.slots

let parts_spilled_bytes ps =
  (* Temp files use the default 8 KiB page size; pages × page size is
     the bytes the breaker pushed through the disk instead of holding
     resident. *)
  Array.fold_left
    (fun acc -> function None -> acc | Some p -> acc + (Heap_file.pages p.file * 8192))
    0 ps.slots

let parts_dispose ps =
  Array.iter
    (function
      | None -> ()
      | Some p ->
        (try Heap_file.close p.file with _ -> ());
        (try Sys.remove p.path with Sys_error _ -> ()))
    ps.slots

(* Second pass: stream each written partition back through a small
   buffer pool (one decoded page resident at a time) into [consume]. *)
let parts_each_source ps ~pool consume =
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some p ->
        if p.part_rows > 0 then consume i (Heap_file.source p.file ~pool))
    ps.slots

let publish ~spilled_rows ~spilled_bytes =
  if spilled_rows > 0 then begin
    Subql_obs.Metrics.incr (Lazy.force m_spills);
    Subql_obs.Metrics.incr ~by:spilled_rows (Lazy.force m_spilled_rows);
    Subql_obs.Metrics.incr ~by:spilled_bytes (Lazy.force m_spilled_bytes)
  end

let key_partition n key = Tuple.hash key land max_int mod n

(* ------------------------------------------------------------------ *)
(* DISTINCT                                                             *)
(* ------------------------------------------------------------------ *)

let distinct ?(partitions = default_partitions) ~budget src =
  if budget <= 0 then invalid_arg "Spill.distinct: budget must be positive";
  let schema = Chunk.Source.schema src in
  let meter = meter_create () in
  let acc = Ops.Distinct_acc.create () in
  let parts = lazy (parts_create ~meter ~schema partitions) in
  Fun.protect
    ~finally:(fun () -> if Lazy.is_val parts then parts_dispose (Lazy.force parts))
    (fun () ->
      Chunk.Source.iter
        (fun c ->
          Chunk.iter
            (fun row ->
              if not (Ops.Distinct_acc.mem acc row) then
                if Ops.Distinct_acc.size acc < budget then begin
                  ignore (Ops.Distinct_acc.add acc row);
                  meter_alloc meter 1
                end
                else
                  parts_push (Lazy.force parts) (key_partition partitions row) row)
            c)
        src;
      let resident_rows = Ops.Distinct_acc.rows acc in
      if not (Lazy.is_val parts) then
        {
          result = Relation.create ~check:false schema resident_rows;
          resident_peak_rows = meter.peak;
          spilled_rows = 0;
          spilled_bytes = 0;
        }
      else begin
        let ps = Lazy.force parts in
        parts_flush_all ps;
        let spilled_rows = parts_spilled_rows ps in
        let spilled_bytes = parts_spilled_bytes ps in
        publish ~spilled_rows ~spilled_bytes;
        let pool = Buffer_pool.create ~frames:4 in
        let pieces = ref [ resident_rows ] in
        parts_each_source ps ~pool (fun _ psrc ->
            let sub = Ops.Distinct_acc.create () in
            Chunk.Source.iter
              (Chunk.iter (fun row ->
                   if Ops.Distinct_acc.add sub row then meter_alloc meter 1))
              psrc;
            let rows = Ops.Distinct_acc.rows sub in
            meter_release meter (Array.length rows);
            pieces := rows :: !pieces);
        {
          result = Relation.create ~check:false schema (Array.concat (List.rev !pieces));
          resident_peak_rows = meter.peak;
          spilled_rows;
          spilled_bytes;
        }
      end)

(* ------------------------------------------------------------------ *)
(* GROUP BY                                                             *)
(* ------------------------------------------------------------------ *)

let group_by ?(partitions = default_partitions) ~budget ~keys ~aggs src =
  if budget <= 0 then invalid_arg "Spill.group_by: budget must be positive";
  let schema = Chunk.Source.schema src in
  let meter = meter_create () in
  let acc = Ops.Group_acc.create ~schema ~keys ~aggs in
  let parts = lazy (parts_create ~meter ~schema partitions) in
  Fun.protect
    ~finally:(fun () -> if Lazy.is_val parts then parts_dispose (Lazy.force parts))
    (fun () ->
      Chunk.Source.iter
        (fun c ->
          Chunk.iter
            (fun row ->
              (* Rows of resident groups keep folding in place even after
                 the freeze; only rows of unseen keys go to disk. *)
              if not (Ops.Group_acc.step_existing acc row) then
                if Ops.Group_acc.size acc < budget then begin
                  Ops.Group_acc.step acc row;
                  meter_alloc meter 1
                end
                else
                  parts_push (Lazy.force parts)
                    (key_partition partitions (Ops.Group_acc.key_of acc row))
                    row)
            c)
        src;
      let resident = Ops.Group_acc.result acc in
      if not (Lazy.is_val parts) then
        {
          result = resident;
          resident_peak_rows = meter.peak;
          spilled_rows = 0;
          spilled_bytes = 0;
        }
      else begin
        let ps = Lazy.force parts in
        parts_flush_all ps;
        let spilled_rows = parts_spilled_rows ps in
        let spilled_bytes = parts_spilled_bytes ps in
        publish ~spilled_rows ~spilled_bytes;
        let pool = Buffer_pool.create ~frames:4 in
        let pieces = ref [ Relation.rows resident ] in
        parts_each_source ps ~pool (fun _ psrc ->
            let sub = Ops.Group_acc.create ~schema ~keys ~aggs in
            Chunk.Source.iter
              (Chunk.iter (fun row ->
                   if not (Ops.Group_acc.step_existing sub row) then begin
                     Ops.Group_acc.step sub row;
                     meter_alloc meter 1
                   end))
              psrc;
            let rows = Relation.rows (Ops.Group_acc.result sub) in
            meter_release meter (Ops.Group_acc.size sub);
            pieces := rows :: !pieces);
        {
          result =
            Relation.create ~check:false (Relation.schema resident)
              (Array.concat (List.rev !pieces));
          resident_peak_rows = meter.peak;
          spilled_rows;
          spilled_bytes;
        }
      end)

(* ------------------------------------------------------------------ *)
(* Grace hash join                                                      *)
(* ------------------------------------------------------------------ *)

type join_kind = [ `Inner | `Left_outer | `Semi | `Anti ]

let run_join ~strategy ~kind cond l r =
  match kind with
  | `Inner -> Ops.join ~strategy cond l r
  | `Left_outer -> Ops.left_outer_join ~strategy cond l r
  | `Semi -> Ops.semi_join ~strategy cond l r
  | `Anti -> Ops.anti_join ~strategy cond l r

(* One side of the join, collected with a row cap: in memory when it
   fits, hash-partitioned on its equi-key columns otherwise.  A NULL in
   a key column can never satisfy an equi-condition, so NULL-keyed rows
   may land in any partition — they match nothing wherever they are,
   and outer/anti semantics still see each left row exactly once. *)
type side = In_mem of Tuple.t array | On_disk of parts

let collect_side ~meter ~partitions ~budget ~schema ~cols src =
  let route ps row = parts_push ps (key_partition partitions (Tuple.project row cols)) row in
  let buf = Vec.create ~dummy:[||] () in
  let spilled = ref None in
  Chunk.Source.iter
    (fun c ->
      Chunk.iter
        (fun row ->
          match !spilled with
          | Some ps -> route ps row
          | None ->
            Vec.push buf row;
            meter_alloc meter 1;
            if Vec.length buf > budget then begin
              let ps = parts_create ~meter ~schema partitions in
              Vec.iter (fun r -> route ps r) buf;
              meter_release meter (Vec.length buf);
              Vec.clear buf;
              spilled := Some ps
            end)
        c)
    src;
  match !spilled with
  | None -> In_mem (Vec.to_array buf)
  | Some ps ->
    parts_flush_all ps;
    On_disk ps

(* Partition an in-memory side with the same hash the disk side used,
   so partition i joins partition i only. *)
let partition_rows ~partitions ~cols rows =
  let out = Array.init partitions (fun _ -> Vec.create ~dummy:[||] ()) in
  Array.iter
    (fun row -> Vec.push out.(key_partition partitions (Tuple.project row cols)) row)
    rows;
  Array.map Vec.to_array out

let join ?(partitions = default_partitions) ~budget ~strategy ~(kind : join_kind) ~cond
    ~left ~right () =
  if budget <= 0 then invalid_arg "Spill.join: budget must be positive";
  let ls = Chunk.Source.schema left and rs = Chunk.Source.schema right in
  let out_schema =
    match kind with
    | `Inner | `Left_outer -> Schema.concat ls rs
    | `Semi | `Anti -> ls
  in
  let pairs, _ = Expr.split_equi ~left:ls ~right:rs cond in
  match pairs with
  | [] ->
    (* No equi-key to partition on: the join cannot spill; fall through
       to the in-memory operator (the planner's memory height already
       charges both inputs for this shape). *)
    let l = Chunk.Source.to_relation left and r = Chunk.Source.to_relation right in
    {
      result = run_join ~strategy ~kind cond l r;
      resident_peak_rows = Relation.cardinality l + Relation.cardinality r;
      spilled_rows = 0;
      spilled_bytes = 0;
    }
  | _ ->
    let lcols = Array.of_list (List.map fst pairs) in
    let rcols = Array.of_list (List.map snd pairs) in
    let meter = meter_create () in
    let lside = collect_side ~meter ~partitions ~budget ~schema:ls ~cols:lcols left in
    let rside = collect_side ~meter ~partitions ~budget ~schema:rs ~cols:rcols right in
    let dispose () =
      (match lside with On_disk ps -> parts_dispose ps | In_mem _ -> ());
      match rside with On_disk ps -> parts_dispose ps | In_mem _ -> ()
    in
    Fun.protect ~finally:dispose (fun () ->
        match lside, rside with
        | In_mem l, In_mem r ->
          {
            result =
              run_join ~strategy ~kind cond
                (Relation.create ~check:false ls l)
                (Relation.create ~check:false rs r);
            resident_peak_rows = meter.peak;
            spilled_rows = 0;
            spilled_bytes = 0;
          }
        | _ ->
          let spilled_rows, spilled_bytes =
            let count = function
              | On_disk ps -> (parts_spilled_rows ps, parts_spilled_bytes ps)
              | In_mem _ -> (0, 0)
            in
            let la, lb = count lside and ra, rb = count rside in
            (la + ra, lb + rb)
          in
          publish ~spilled_rows ~spilled_bytes;
          let pool = Buffer_pool.create ~frames:4 in
          let mem_partitioned side cols =
            match side with
            | In_mem rows -> Some (partition_rows ~partitions ~cols rows)
            | On_disk _ -> None
          in
          let lmem = mem_partitioned lside lcols and rmem = mem_partitioned rside rcols in
          let fetch side mem i =
            match mem with
            | Some parts -> parts.(i)
            | None -> (
              match side with
              | In_mem _ -> assert false
              | On_disk ps -> (
                match ps.slots.(i) with
                | Some p when p.part_rows > 0 ->
                  Relation.rows (Chunk.Source.to_relation (Heap_file.source p.file ~pool))
                | Some _ | None -> [||]))
          in
          let pieces = ref [] in
          for i = 0 to partitions - 1 do
            let lrows = fetch lside lmem i and rrows = fetch rside rmem i in
            if Array.length lrows > 0 then begin
              meter_alloc meter (Array.length lrows + Array.length rrows);
              let out =
                run_join ~strategy ~kind cond
                  (Relation.create ~check:false ls lrows)
                  (Relation.create ~check:false rs rrows)
              in
              meter_release meter (Array.length lrows + Array.length rrows);
              pieces := Relation.rows out :: !pieces
            end
          done;
          {
            result =
              Relation.create ~check:false out_schema (Array.concat (List.rev !pieces));
            resident_peak_rows = meter.peak;
            spilled_rows;
            spilled_bytes;
          })
