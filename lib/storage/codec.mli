(** Binary tuple serialization for the paged storage layer.

    Values encode as a tag byte plus payload (ints and floats as 8-byte
    little-endian, strings length-prefixed); a tuple is its values in
    sequence — the schema supplies the arity, so no per-tuple framing is
    needed beyond the page's tuple count.

    Two codecs share that wire format.  The {e generic} functions
    dispatch on the tag byte per cell and accept any well-formed value
    in any column; they are the fallback and the oracle.  A
    {e specialized} {!plan} compiles a schema once into a per-column
    decoder array, so the scan hot path runs a fixed type-directed loop
    (one or two tag compares per cell, no per-tuple closure) and
    validates the stored bytes against the declared column types as it
    goes.  Both produce byte-identical encodings for schema-conformant
    tuples.

    Corrupt bytes raise {!Diag.Fail} with stable [STO0xx] codes rather
    than bare exceptions: [STO001] unknown value tag, [STO002] truncated
    payload, [STO003] tag/column clash under a plan.  The byte offset is
    in [subject]; the heap file pushes file/page context onto [path]. *)

open Subql_relational

val encode_value : Buffer.t -> Value.t -> unit

val decode_value : bytes -> pos:int ref -> Value.t
(** @raise Diag.Fail with code [STO001] on a corrupt tag, [STO002] on a
    truncated payload. *)

val encode_tuple : Buffer.t -> Tuple.t -> unit

val check_tuple : Schema.t -> Tuple.t -> unit
(** Validate a raw tuple against a schema: the arity must match and every
    non-NULL value must carry its column's type (NULL fits any column —
    nullability is not tracked at this layer).
    @raise Invalid_argument describing the first offending column. *)

val encode_tuple_checked : Buffer.t -> Schema.t -> Tuple.t -> unit
(** {!check_tuple} then {!encode_tuple}: the ingest append path uses this
    so malformed rows are rejected before any page is written. *)

val decode_tuple : bytes -> pos:int ref -> arity:int -> Tuple.t
(** Generic per-cell tag dispatch.
    @raise Diag.Fail ([STO001]/[STO002]) on corrupt bytes. *)

val tuple_bytes : Tuple.t -> int
(** Encoded size, for page packing. *)

(** {1 Schema-compiled codec plans} *)

type mode = Generic | Specialized
(** Which codec a heap-file handle runs its pages through. *)

type column = { ty : Value.ty; non_null : bool }

type plan = private { schema : Schema.t; columns : column array }
(** A schema compiled for decoding: one {!column} per attribute, fixed
    at plan construction.  Build with {!plan_of_schema}. *)

val plan_of_schema : ?non_null:bool array -> Schema.t -> plan
(** Compile a schema into a codec plan.  [non_null.(i) = true] declares
    column [i] NULL-free (e.g. from [Analysis.Typing] nullability), which
    lets {!decode_tuple_plan} reject a stored NULL as corruption and
    {!encode_tuple_plan} reject it before it reaches a page; the default
    is all-nullable, which accepts exactly what the generic codec does.
    @raise Invalid_argument if [non_null] does not match the arity. *)

val decode_tuple_plan : plan -> bytes -> pos:int ref -> Tuple.t
(** Type-directed decode: each cell checks the tag against its column's
    declared type instead of open-dispatching, and the loop allocates
    only the result array (NULL and boolean cells are shared).
    @raise Diag.Fail ([STO002] truncation, [STO003] tag/column clash —
    including a NULL in a column the plan declares non-NULL). *)

val decode_rows_plan : plan -> bytes -> pos:int ref -> count:int -> Tuple.t array
(** [count] consecutive tuples in one call — the page-decode entry
    point, with no per-tuple closure or ref traffic.
    @raise Diag.Fail as {!decode_tuple_plan}. *)

val encode_tuple_plan : plan -> Buffer.t -> Tuple.t -> unit
(** Single-pass validate-and-encode: the append path's replacement for
    {!check_tuple} followed by {!encode_tuple}, walking the tuple once.
    @raise Invalid_argument on arity/type mismatch or a NULL in a
    non-NULL column, with the same messages as {!check_tuple}. *)
