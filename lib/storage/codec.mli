(** Binary tuple serialization for the paged storage layer.

    Values encode as a tag byte plus payload (ints and floats as 8-byte
    little-endian, strings length-prefixed); a tuple is its values in
    sequence — the schema supplies the arity, so no per-tuple framing is
    needed beyond the page's tuple count. *)

open Subql_relational

val encode_value : Buffer.t -> Value.t -> unit

val decode_value : bytes -> pos:int ref -> Value.t
(** @raise Invalid_argument on a corrupt tag. *)

val encode_tuple : Buffer.t -> Tuple.t -> unit

val check_tuple : Schema.t -> Tuple.t -> unit
(** Validate a raw tuple against a schema: the arity must match and every
    non-NULL value must carry its column's type (NULL fits any column —
    nullability is not tracked at this layer).
    @raise Invalid_argument describing the first offending column. *)

val encode_tuple_checked : Buffer.t -> Schema.t -> Tuple.t -> unit
(** {!check_tuple} then {!encode_tuple}: the ingest append path uses this
    so malformed rows are rejected before any page is written. *)

val decode_tuple : bytes -> pos:int ref -> arity:int -> Tuple.t

val tuple_bytes : Tuple.t -> int
(** Encoded size, for page packing. *)
