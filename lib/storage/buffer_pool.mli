(** A fixed-capacity page buffer pool with LRU replacement.

    The pool caches pages from any number of files, keyed by
    [(file_path, page_no)].  Misses call the supplied loader; when the
    pool is full the least-recently-used page is evicted.  Pages are
    never mutated through the pool (heap files rewrite pages directly),
    so eviction never writes back; instead a file append {e invalidates}
    the affected tail pages in every live pool ({!invalidate_all}), so a
    pool shared across an append can never serve a stale last-page
    image.

    The stats make the paper's I/O argument observable: a coalesced GMDJ
    reads each detail page once; chained GMDJs read the file once per
    operator; a pool smaller than the file degrades gracefully
    (sequential scans miss every page rather than thrash). *)

type t

type stats = {
  page_reads : int;  (** loader invocations (misses) *)
  hits : int;
  evictions : int;
}
(** An immutable snapshot — {!stats} returns a copy, so mutable fields
    here would only invite the mistaken belief that writing them affects
    (or tracks) the pool. *)

val create : frames:int -> t
(** @raise Invalid_argument if [frames <= 0]. *)

val frames : t -> int

val stats : t -> stats
(** A snapshot copy — mutating it cannot corrupt the pool's own
    accounting, and it does not track later pool activity.  Every
    access is also published to {!Subql_obs.Metrics.default} under
    ["storage.buffer_pool.hits" / "page_reads" / "evictions"]. *)

val hit_rate : t -> float
(** [hits / (hits + page_reads)] since creation or the last
    {!reset_stats}; [0.] when the pool has not been accessed. *)

val reset_stats : t -> unit

val fetch : t -> key:string * int -> load:(unit -> bytes) -> bytes
(** The page under [key], loading and caching it on a miss. *)

val resident : t -> int
(** Pages currently cached. *)

val invalidate : t -> path:string -> from_page:int -> int
(** Drop every cached frame of [path] with page number [>= from_page];
    returns the number of frames dropped.  Dropped frames count under
    the registry counter ["storage.buffer_pool.invalidations"], not as
    evictions. *)

val invalidate_all : path:string -> from_page:int -> int
(** {!invalidate} across every live pool in the process (pools register
    themselves weakly at {!create}).  Called by [Heap_file.append] with
    the first rewritten page, this makes the no-stale-page invariant
    hold for pools the appender has never seen. *)
