open Subql_relational

let tag_null = '\000'

let tag_int = '\001'

let tag_float = '\002'

let tag_str = '\003'

let tag_true = '\004'

let tag_false = '\005'

let encode_value buf = function
  | Value.Null -> Buffer.add_char buf tag_null
  | Value.Int i ->
    Buffer.add_char buf tag_int;
    Buffer.add_int64_le buf (Int64.of_int i)
  | Value.Float f ->
    Buffer.add_char buf tag_float;
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    if String.length s > 0xFFFF then invalid_arg "Codec: string longer than 65535 bytes";
    Buffer.add_char buf tag_str;
    Buffer.add_uint16_le buf (String.length s);
    Buffer.add_string buf s
  | Value.Bool true -> Buffer.add_char buf tag_true
  | Value.Bool false -> Buffer.add_char buf tag_false

let decode_value bytes ~pos =
  let p = !pos in
  let tag = Bytes.get bytes p in
  if tag = tag_null then begin
    pos := p + 1;
    Value.Null
  end
  else if tag = tag_int then begin
    pos := p + 9;
    Value.Int (Int64.to_int (Bytes.get_int64_le bytes (p + 1)))
  end
  else if tag = tag_float then begin
    pos := p + 9;
    Value.Float (Int64.float_of_bits (Bytes.get_int64_le bytes (p + 1)))
  end
  else if tag = tag_str then begin
    let len = Bytes.get_uint16_le bytes (p + 1) in
    pos := p + 3 + len;
    Value.Str (Bytes.sub_string bytes (p + 3) len)
  end
  else if tag = tag_true then begin
    pos := p + 1;
    Value.Bool true
  end
  else if tag = tag_false then begin
    pos := p + 1;
    Value.Bool false
  end
  else invalid_arg (Printf.sprintf "Codec: corrupt value tag %d at offset %d" (Char.code tag) p)

let encode_tuple buf (t : Tuple.t) = Array.iter (encode_value buf) t

let check_tuple schema (t : Tuple.t) =
  let arity = Schema.arity schema in
  if Array.length t <> arity then
    invalid_arg
      (Printf.sprintf "Codec: tuple arity %d does not match the schema arity %d"
         (Array.length t) arity);
  Array.iteri
    (fun i v ->
      match Value.ty_of v with
      | None -> () (* NULL fits any column *)
      | Some ty ->
        let a = Schema.attr_at schema i in
        if ty <> a.Schema.ty then
          invalid_arg
            (Printf.sprintf "Codec: %s value in column %s (%s)" (Value.ty_to_string ty)
               (Schema.qualified_name a)
               (Value.ty_to_string a.Schema.ty)))
    t

let encode_tuple_checked buf schema (t : Tuple.t) =
  check_tuple schema t;
  encode_tuple buf t

let decode_tuple bytes ~pos ~arity = Array.init arity (fun _ -> decode_value bytes ~pos)

let value_bytes = function
  | Value.Null | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 3 + String.length s

let tuple_bytes (t : Tuple.t) = Array.fold_left (fun acc v -> acc + value_bytes v) 0 t
