open Subql_relational

let tag_null = '\000'

let tag_int = '\001'

let tag_float = '\002'

let tag_str = '\003'

let tag_true = '\004'

let tag_false = '\005'

(* Corruption is a structured diagnostic (STO0xx), not a bare
   [Invalid_argument]: the byte offset rides in [subject] and callers
   (the heap file) push the file/page context onto [path]. *)
let sto ~code ~offset fmt =
  Format.kasprintf
    (fun msg ->
      raise (Diag.Fail (Diag.error ~subject:(Printf.sprintf "byte %d" offset) ~code msg)))
    fmt

let need bytes p n what =
  if p + n > Bytes.length bytes then
    sto ~code:"STO002" ~offset:p "truncated %s: payload runs %d bytes past the page end" what
      (p + n - Bytes.length bytes)

let encode_value buf = function
  | Value.Null -> Buffer.add_char buf tag_null
  | Value.Int i ->
    Buffer.add_char buf tag_int;
    Buffer.add_int64_le buf (Int64.of_int i)
  | Value.Float f ->
    Buffer.add_char buf tag_float;
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Str s ->
    if String.length s > 0xFFFF then invalid_arg "Codec: string longer than 65535 bytes";
    Buffer.add_char buf tag_str;
    Buffer.add_uint16_le buf (String.length s);
    Buffer.add_string buf s
  | Value.Bool true -> Buffer.add_char buf tag_true
  | Value.Bool false -> Buffer.add_char buf tag_false

let decode_value bytes ~pos =
  let p = !pos in
  if p >= Bytes.length bytes then sto ~code:"STO002" ~offset:p "truncated tuple: no value tag";
  let tag = Bytes.get bytes p in
  if tag = tag_null then begin
    pos := p + 1;
    Value.Null
  end
  else if tag = tag_int then begin
    need bytes (p + 1) 8 "int value";
    pos := p + 9;
    Value.Int (Int64.to_int (Bytes.get_int64_le bytes (p + 1)))
  end
  else if tag = tag_float then begin
    need bytes (p + 1) 8 "float value";
    pos := p + 9;
    Value.Float (Int64.float_of_bits (Bytes.get_int64_le bytes (p + 1)))
  end
  else if tag = tag_str then begin
    need bytes (p + 1) 2 "string length";
    let len = Bytes.get_uint16_le bytes (p + 1) in
    need bytes (p + 3) len "string value";
    pos := p + 3 + len;
    Value.Str (Bytes.sub_string bytes (p + 3) len)
  end
  else if tag = tag_true then begin
    pos := p + 1;
    Value.Bool true
  end
  else if tag = tag_false then begin
    pos := p + 1;
    Value.Bool false
  end
  else sto ~code:"STO001" ~offset:p "corrupt value tag %d" (Char.code tag)

let encode_tuple buf (t : Tuple.t) = Array.iter (encode_value buf) t

let check_tuple schema (t : Tuple.t) =
  let arity = Schema.arity schema in
  if Array.length t <> arity then
    invalid_arg
      (Printf.sprintf "Codec: tuple arity %d does not match the schema arity %d"
         (Array.length t) arity);
  Array.iteri
    (fun i v ->
      match Value.ty_of v with
      | None -> () (* NULL fits any column *)
      | Some ty ->
        let a = Schema.attr_at schema i in
        if ty <> a.Schema.ty then
          invalid_arg
            (Printf.sprintf "Codec: %s value in column %s (%s)" (Value.ty_to_string ty)
               (Schema.qualified_name a)
               (Value.ty_to_string a.Schema.ty)))
    t

let encode_tuple_checked buf schema (t : Tuple.t) =
  check_tuple schema t;
  encode_tuple buf t

let decode_tuple bytes ~pos ~arity = Array.init arity (fun _ -> decode_value bytes ~pos)

let value_bytes = function
  | Value.Null | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 3 + String.length s

let tuple_bytes (t : Tuple.t) = Array.fold_left (fun acc v -> acc + value_bytes v) 0 t

(* ------------------------------------------------------------------ *)
(* Schema-compiled codec plans                                          *)
(* ------------------------------------------------------------------ *)

type mode = Generic | Specialized

type column = { ty : Value.ty; non_null : bool }

type plan = { schema : Schema.t; columns : column array }

let plan_of_schema ?non_null schema =
  let arity = Schema.arity schema in
  let nn =
    match non_null with
    | None -> Array.make arity false
    | Some a ->
      if Array.length a <> arity then
        invalid_arg "Codec.plan_of_schema: non_null length does not match the schema arity";
      Array.copy a
  in
  {
    schema;
    columns =
      Array.init arity (fun i -> { ty = (Schema.attr_at schema i).Schema.ty; non_null = nn.(i) });
  }

let column_name plan i = Schema.qualified_name (Schema.attr_at plan.schema i)

let[@inline never] plan_mismatch plan i tag p =
  let c = plan.columns.(i) in
  sto ~code:"STO003" ~offset:p "value tag %d in column %s (declared %s%s)" (Char.code tag)
    (column_name plan i) (Value.ty_to_string c.ty)
    (if c.non_null then ", non-NULL" else "")

(* Shared [Bool] cells so the hot decode loop never allocates for
   booleans or NULLs. *)
let v_true = Value.Bool true

let v_false = Value.Bool false

(* Interned small ints: dimension keys and flag-like measures dominate
   OLAP detail tables, so most [Tint] cells can reuse a preallocated
   cell instead of boxing a fresh [Value.Int] per decode.  [Value.t] is
   immutable, so physical sharing is unobservable. *)
let small_ints = Array.init 1024 (fun i -> Value.Int i)

let[@inline] v_int v =
  if v >= 0 && v < 1024 then Array.unsafe_get small_ints v else Value.Int v

(* Raw native-endian 64-bit load.  We bounds-check ourselves (with a
   structured STO002 instead of the stdlib's Invalid_argument), and the
   primitive's unboxed result feeds [Int64.to_int]/[float_of_bits]
   without materializing a boxed [int64] — the generic path pays that
   box on every numeric cell. *)
external unsafe_get64_ne : bytes -> int -> int64 = "%caml_bytes_get64u"

let[@inline] get64_le bytes q =
  if Sys.big_endian then Bytes.get_int64_le bytes q else unsafe_get64_ne bytes q

(* One tuple's cells, type-directed: [i] indexes the plan column, [q]
   the next undecoded byte.  Tail recursion keeps the position in a
   register instead of a heap ref, and [cols]/[arity] ride along as
   arguments so the loop never reloads them through [plan]. *)
let rec decode_cells plan cols arity bytes len (out : Tuple.t) i q =
  if i >= arity then q
  else begin
    if q >= len then sto ~code:"STO002" ~offset:q "truncated tuple: no value tag";
    let tag = Bytes.unsafe_get bytes q in
    let c = Array.unsafe_get cols i in
    match c.ty with
    | Value.Tint ->
      if tag = tag_int then begin
        if q + 9 > len then need bytes (q + 1) 8 "int value";
        Array.unsafe_set out i (v_int (Int64.to_int (get64_le bytes (q + 1))));
        decode_cells plan cols arity bytes len out (i + 1) (q + 9)
      end
      else if tag = tag_null && not c.non_null then
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
        (* out.(i) is already Null *)
      else plan_mismatch plan i tag q
    | Value.Tfloat ->
      if tag = tag_float then begin
        if q + 9 > len then need bytes (q + 1) 8 "float value";
        Array.unsafe_set out i (Value.Float (Int64.float_of_bits (get64_le bytes (q + 1))));
        decode_cells plan cols arity bytes len out (i + 1) (q + 9)
      end
      else if tag = tag_null && not c.non_null then
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
      else plan_mismatch plan i tag q
    | Value.Tstring ->
      if tag = tag_str then begin
        need bytes (q + 1) 2 "string length";
        let slen = Bytes.get_uint16_le bytes (q + 1) in
        need bytes (q + 3) slen "string value";
        Array.unsafe_set out i (Value.Str (Bytes.sub_string bytes (q + 3) slen));
        decode_cells plan cols arity bytes len out (i + 1) (q + 3 + slen)
      end
      else if tag = tag_null && not c.non_null then
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
      else plan_mismatch plan i tag q
    | Value.Tbool ->
      if tag = tag_true then begin
        Array.unsafe_set out i v_true;
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
      end
      else if tag = tag_false then begin
        Array.unsafe_set out i v_false;
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
      end
      else if tag = tag_null && not c.non_null then
        decode_cells plan cols arity bytes len out (i + 1) (q + 1)
      else plan_mismatch plan i tag q
  end

let decode_tuple_plan plan bytes ~pos =
  let cols = plan.columns in
  let arity = Array.length cols in
  let out = Array.make arity Value.Null in
  pos := decode_cells plan cols arity bytes (Bytes.length bytes) out 0 !pos;
  out

let decode_rows_plan plan bytes ~pos ~count =
  let len = Bytes.length bytes in
  let cols = plan.columns in
  let arity = Array.length cols in
  let rows : Tuple.t array = Array.make count [||] in
  let p = ref !pos in
  for r = 0 to count - 1 do
    let out = Array.make arity Value.Null in
    p := decode_cells plan cols arity bytes len out 0 !p;
    Array.unsafe_set rows r out
  done;
  pos := !p;
  rows

let type_clash plan i ty =
  let a = Schema.attr_at plan.schema i in
  invalid_arg
    (Printf.sprintf "Codec: %s value in column %s (%s)" (Value.ty_to_string ty)
       (Schema.qualified_name a)
       (Value.ty_to_string a.Schema.ty))

let encode_tuple_plan plan buf (t : Tuple.t) =
  let cols = plan.columns in
  let arity = Array.length cols in
  if Array.length t <> arity then
    invalid_arg
      (Printf.sprintf "Codec: tuple arity %d does not match the schema arity %d"
         (Array.length t) arity);
  for i = 0 to arity - 1 do
    let c = Array.unsafe_get cols i in
    match Array.unsafe_get t i with
    | Value.Null ->
      if c.non_null then
        invalid_arg (Printf.sprintf "Codec: NULL in non-NULL column %s" (column_name plan i));
      Buffer.add_char buf tag_null
    | Value.Int v ->
      if c.ty <> Value.Tint then type_clash plan i Value.Tint;
      Buffer.add_char buf tag_int;
      Buffer.add_int64_le buf (Int64.of_int v)
    | Value.Float v ->
      if c.ty <> Value.Tfloat then type_clash plan i Value.Tfloat;
      Buffer.add_char buf tag_float;
      Buffer.add_int64_le buf (Int64.bits_of_float v)
    | Value.Str s ->
      if c.ty <> Value.Tstring then type_clash plan i Value.Tstring;
      if String.length s > 0xFFFF then invalid_arg "Codec: string longer than 65535 bytes";
      Buffer.add_char buf tag_str;
      Buffer.add_uint16_le buf (String.length s);
      Buffer.add_string buf s
    | Value.Bool b ->
      if c.ty <> Value.Tbool then type_clash plan i Value.Tbool;
      Buffer.add_char buf (if b then tag_true else tag_false)
  done
