type frame = { bytes : bytes; mutable last_used : int }

type stats = { page_reads : int; hits : int; evictions : int }

(* The pool's own accounting is mutable; the exposed [stats] record is an
   immutable snapshot of it. *)
type live = {
  mutable page_reads : int;
  mutable hits : int;
  mutable evictions : int;
}

type t = {
  capacity : int;
  table : (string * int, frame) Hashtbl.t;
  mutable clock : int;
  live : live;
}

(* Pool activity also feeds the engine-wide registry, so EXPLAIN ANALYZE
   can attribute page I/O to operators by counter delta without a
   dependency on this library. *)
let m_hits = Subql_obs.Metrics.counter Subql_obs.Metrics.default "storage.buffer_pool.hits"

let m_reads =
  Subql_obs.Metrics.counter Subql_obs.Metrics.default "storage.buffer_pool.page_reads"

let m_evictions =
  Subql_obs.Metrics.counter Subql_obs.Metrics.default "storage.buffer_pool.evictions"

let m_invalidations =
  Subql_obs.Metrics.counter Subql_obs.Metrics.default "storage.buffer_pool.invalidations"

(* Every live pool, weakly held so registration never extends a pool's
   lifetime.  A heap-file append must drop the stale image of the grown
   file's last page from pools it has never seen ({!invalidate_all}) —
   pools are created freely by evaluators and tests, and any of them may
   hold a frame for the mutated path. *)
let registry : t Weak.t ref = ref (Weak.create 8)

let registered = ref 0

let register pool =
  (* Compact dead slots before growing: long-running processes create
     pools per query, and the registry must not grow with their count. *)
  let w = !registry in
  let live = ref 0 in
  for i = 0 to !registered - 1 do
    match Weak.get w i with
    | Some p ->
      if !live < i then Weak.set w !live (Some p);
      incr live
    | None -> ()
  done;
  for i = !live to !registered - 1 do
    Weak.set w i None
  done;
  registered := !live;
  if !registered >= Weak.length w then begin
    let bigger = Weak.create (2 * Weak.length w) in
    Weak.blit w 0 bigger 0 !registered;
    registry := bigger
  end;
  Weak.set !registry !registered (Some pool);
  incr registered

let create ~frames =
  if frames <= 0 then invalid_arg "Buffer_pool.create: frames must be positive";
  let t =
    {
      capacity = frames;
      table = Hashtbl.create (2 * frames);
      clock = 0;
      live = { page_reads = 0; hits = 0; evictions = 0 };
    }
  in
  register t;
  t

let invalidate t ~path ~from_page =
  let victims =
    Hashtbl.fold
      (fun ((p, page) as key) _ acc ->
        if String.equal p path && page >= from_page then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  let n = List.length victims in
  if n > 0 then Subql_obs.Metrics.incr ~by:n m_invalidations;
  n

let invalidate_all ~path ~from_page =
  let total = ref 0 in
  for i = 0 to !registered - 1 do
    match Weak.get !registry i with
    | Some pool -> total := !total + invalidate pool ~path ~from_page
    | None -> ()
  done;
  !total

let frames t = t.capacity

let stats t : stats =
  { page_reads = t.live.page_reads; hits = t.live.hits; evictions = t.live.evictions }

let hit_rate t =
  let accesses = t.live.hits + t.live.page_reads in
  if accesses = 0 then 0. else float_of_int t.live.hits /. float_of_int accesses

let reset_stats t =
  t.live.page_reads <- 0;
  t.live.hits <- 0;
  t.live.evictions <- 0

let resident t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key frame ->
      match !victim with
      | Some (_, f) when f.last_used <= frame.last_used -> ()
      | _ -> victim := Some (key, frame))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.live.evictions <- t.live.evictions + 1;
    Subql_obs.Metrics.incr m_evictions
  | None -> ()

let fetch t ~key ~load =
  match Hashtbl.find_opt t.table key with
  | Some frame ->
    frame.last_used <- tick t;
    t.live.hits <- t.live.hits + 1;
    Subql_obs.Metrics.incr m_hits;
    frame.bytes
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let bytes = load () in
    t.live.page_reads <- t.live.page_reads + 1;
    Subql_obs.Metrics.incr m_reads;
    Hashtbl.replace t.table key { bytes; last_used = tick t };
    bytes
