(** Spill-to-disk pipeline breakers.

    The adaptive twins of the in-memory breakers (DISTINCT, GROUP BY,
    hash join): each accumulates hash state normally until it reaches a
    row [budget], then {e freezes} the resident state and routes
    overflow rows — hash-partitioned on the breaker's key — to temp heap
    files through the buffer pool, merging the partitions in a second
    pass.  A breaker over a detail-sized input thus degrades to I/O
    instead of OOM: resident rows stay bounded by the budget (plus
    batch-sized write buffers), and the overflow is accounted as disk.

    The freeze is sound because a row is only spilled when its key is
    absent from the resident state and equal keys always hash to the
    same partition, so the resident result and the per-partition results
    are key-disjoint and together complete.

    Temp files ([subql_spill*.heap] under [Filename.temp_dir_name]) are
    removed on completion {e and} on exception.  Spill volume is
    published to {!Subql_obs.Metrics.default} as [exec.spills] /
    [exec.spilled_rows] / [exec.spilled_bytes].  These operators run on
    the calling domain (the executor spills only at the coordinator, so
    registry writes stay single-domain). *)

open Subql_relational

type outcome = {
  result : Relation.t;
  resident_peak_rows : int;
      (** High-water mark of rows the operator held resident: hash
          state, partition write buffers, and second-pass state. *)
  spilled_rows : int;  (** Rows routed through temp heap files. *)
  spilled_bytes : int;  (** Pages written × page size. *)
}

val default_partitions : int
(** Overflow fan-out when [partitions] is omitted ([8]). *)

val distinct : ?partitions:int -> budget:int -> Chunk.Source.t -> outcome
(** Streaming DISTINCT holding at most [budget] resident distinct rows;
    result order is first-seen for the resident prefix, then partition
    order.  @raise Invalid_argument if [budget <= 0]. *)

val group_by :
  ?partitions:int ->
  budget:int ->
  keys:(string option * string) list ->
  aggs:Aggregate.spec list ->
  Chunk.Source.t ->
  outcome
(** Streaming GROUP BY holding at most [budget] resident groups.  Rows
    of already-resident groups keep folding in place after the freeze;
    only rows of unseen keys spill, so hot groups never pay I/O.
    @raise Invalid_argument if [budget <= 0]. *)

type join_kind = [ `Inner | `Left_outer | `Semi | `Anti ]

val join :
  ?partitions:int ->
  budget:int ->
  strategy:Ops.join_strategy ->
  kind:join_kind ->
  cond:Expr.t ->
  left:Chunk.Source.t ->
  right:Chunk.Source.t ->
  unit ->
  outcome
(** Grace hash join: each side is collected up to [budget] rows, and on
    overflow both sides are hash-partitioned on the equi-key columns of
    [cond] ({!Subql_relational.Expr.split_equi}) and joined partition
    against partition with the ordinary in-memory operator (full
    condition re-checked, so residual conjuncts and NULL semantics are
    exactly those of {!Subql_relational.Ops.join} and friends).  When
    [cond] has no equi-conjunct the join cannot be partitioned and falls
    back to fully in-memory execution; [resident_peak_rows] then reports
    both input cardinalities.  @raise Invalid_argument if [budget <= 0]. *)
