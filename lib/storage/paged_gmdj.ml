open Subql_relational
open Subql_gmdj

let publish ~passes ~rows =
  let open Subql_obs in
  let c name = Metrics.counter Metrics.default ("gmdj." ^ name) in
  Metrics.incr ~by:passes (c "detail_passes");
  Metrics.incr ~by:rows (c "detail_rows_scanned")

let eval ?stats ~pool ~base ~detail blocks =
  Subql_obs.Trace.with_
    ~attrs:[ ("blocks", string_of_int (List.length blocks)) ]
    "gmdj.paged_eval"
  @@ fun () ->
  let schema = Heap_file.schema detail in
  let view = Gmdj.Maintain.create ~base ~detail:(Relation.empty schema) blocks in
  let rows_seen = ref 0 in
  Heap_file.scan_pages detail ~pool (fun rows ->
      rows_seen := !rows_seen + Array.length rows;
      Gmdj.Maintain.insert_detail view (Relation.create ~check:false schema rows));
  (match stats with
  | Some s ->
    s.Gmdj.detail_passes <- s.Gmdj.detail_passes + 1;
    s.Gmdj.detail_scanned <- s.Gmdj.detail_scanned + !rows_seen
  | None -> ());
  publish ~passes:1 ~rows:!rows_seen;
  Gmdj.Maintain.result view

let eval_chained ?stats ~pool ~base ~detail chain =
  List.fold_left (fun acc blocks -> eval ?stats ~pool ~base:acc ~detail blocks) base chain
