open Subql_relational
open Subql_gmdj

let eval ?stats ~pool ~base ~detail blocks =
  Subql_obs.Trace.with_
    ~attrs:[ ("blocks", string_of_int (List.length blocks)) ]
    "gmdj.paged_eval"
  @@ fun () ->
  let acc =
    Gmdj.Fold.start ?stats ~base ~detail:(Heap_file.schema detail) blocks
  in
  let acc =
    Chunk.Source.fold
      (fun acc c -> Gmdj.Fold.fold_detail c acc)
      acc
      (Heap_file.source detail ~pool)
  in
  Gmdj.Fold.finish acc

let eval_chained ?stats ~pool ~base ~detail chain =
  List.fold_left (fun acc blocks -> eval ?stats ~pool ~base:acc ~detail blocks) base chain
