open Subql_relational

let magic = "SUBQLHF1"

let header_bytes = 8 + 4 + 2 + 8 (* magic, page_size, arity, row_count *)

type t = {
  path : string;
  fd : Unix.file_descr;
  schema : Schema.t;
  page_size : int;
  pages : int;
  row_count : int;
}

let really_read fd buf =
  let n = Bytes.length buf in
  let rec loop off =
    if off < n then begin
      let k = Unix.read fd buf off (n - off) in
      if k = 0 then invalid_arg "Heap_file: unexpected end of file";
      loop (off + k)
    end
  in
  loop 0

let really_write fd buf =
  let n = Bytes.length buf in
  let rec loop off =
    if off < n then loop (off + Unix.write fd buf off (n - off))
  in
  loop 0

let write ~path ?(page_size = 8192) rel =
  if page_size < 64 then invalid_arg "Heap_file.write: page size too small";
  let payload = page_size - 2 in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* Header page. *)
  let header = Bytes.make page_size '\000' in
  Bytes.blit_string magic 0 header 0 8;
  Bytes.set_int32_le header 8 (Int32.of_int page_size);
  Bytes.set_uint16_le header 12 (Schema.arity (Relation.schema rel));
  Bytes.set_int64_le header 14 (Int64.of_int (Relation.cardinality rel));
  really_write fd header;
  (* Data pages: greedy packing. *)
  let buf = Buffer.create page_size in
  let count = ref 0 in
  let pages = ref 0 in
  let flush_page () =
    if !count > 0 then begin
      let page = Bytes.make page_size '\000' in
      Bytes.set_uint16_le page 0 !count;
      Bytes.blit_string (Buffer.contents buf) 0 page 2 (Buffer.length buf);
      really_write fd page;
      Buffer.clear buf;
      count := 0;
      incr pages
    end
  in
  Relation.iter
    (fun row ->
      let size = Codec.tuple_bytes row in
      if size > payload then
        invalid_arg "Heap_file.write: tuple exceeds the page payload";
      if Buffer.length buf + size > payload then flush_page ();
      Codec.encode_tuple buf row;
      incr count)
    rel;
  flush_page ();
  {
    path;
    fd;
    schema = Relation.schema rel;
    page_size;
    pages = !pages;
    row_count = Relation.cardinality rel;
  }

let openfile ~path ~schema =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let header = Bytes.create header_bytes in
  really_read fd header;
  if Bytes.sub_string header 0 8 <> magic then
    invalid_arg "Heap_file.openfile: bad magic";
  let page_size = Int32.to_int (Bytes.get_int32_le header 8) in
  let arity = Bytes.get_uint16_le header 12 in
  let row_count = Int64.to_int (Bytes.get_int64_le header 14) in
  if arity <> Schema.arity schema then
    invalid_arg "Heap_file.openfile: stored arity does not match the schema";
  let file_bytes = (Unix.fstat fd).Unix.st_size in
  let pages = (file_bytes / page_size) - 1 in
  { path; fd; schema; page_size; pages; row_count }

let close t = Unix.close t.fd

let path t = t.path

let schema t = t.schema

let pages t = t.pages

let row_count t = t.row_count

let read_page t page_no =
  let buf = Bytes.create t.page_size in
  ignore (Unix.lseek t.fd ((page_no + 1) * t.page_size) Unix.SEEK_SET);
  really_read t.fd buf;
  buf

let decode_page t page_no ~pool =
  let page =
    Buffer_pool.fetch pool ~key:(t.path, page_no) ~load:(fun () -> read_page t page_no)
  in
  let n = Bytes.get_uint16_le page 0 in
  let pos = ref 2 in
  Array.init n (fun _ -> Codec.decode_tuple page ~pos ~arity:(Schema.arity t.schema))

let scan_pages t ~pool f =
  for page_no = 0 to t.pages - 1 do
    f (decode_page t page_no ~pool)
  done

let scan t ~pool f = scan_pages t ~pool (fun rows -> Array.iter f rows)

let source t ~pool =
  let page_no = ref 0 in
  Chunk.Source.create ~schema:t.schema (fun () ->
      if !page_no >= t.pages then None
      else begin
        let rows = decode_page t !page_no ~pool in
        incr page_no;
        Some (Chunk.of_rows t.schema rows)
      end)

let to_relation t ~pool =
  let out = Vec.create ~capacity:(max 1 t.row_count) ~dummy:Tuple.empty () in
  scan_pages t ~pool (fun rows -> Vec.blit rows 0 out (Vec.length out) (Array.length rows));
  Relation.create ~check:false t.schema (Vec.to_array out)
