open Subql_relational

let magic = "SUBQLHF1"

let header_bytes = 8 + 4 + 2 + 8 (* magic, page_size, arity, row_count *)

let row_count_offset = 14

type t = {
  path : string;
  fd : Unix.file_descr;
  schema : Schema.t;
  plan : Codec.plan;  (** compiled once per open; drives the Specialized paths *)
  mode : Codec.mode;
  page_size : int;
  writable : bool;
  mutable pages : int;
  mutable row_count : int;
}

type delta = { first_page : int; skip : int; rows : int }

let really_read fd buf =
  let n = Bytes.length buf in
  let rec loop off =
    if off < n then begin
      let k = Unix.read fd buf off (n - off) in
      if k = 0 then invalid_arg "Heap_file: unexpected end of file";
      loop (off + k)
    end
  in
  loop 0

let really_write fd buf =
  let n = Bytes.length buf in
  let rec loop off =
    if off < n then loop (off + Unix.write fd buf off (n - off))
  in
  loop 0

let write ~path ?(page_size = 8192) ?(codec = Codec.Specialized) rel =
  if page_size < 64 then invalid_arg "Heap_file.write: page size too small";
  let payload = page_size - 2 in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* Header page. *)
  let header = Bytes.make page_size '\000' in
  Bytes.blit_string magic 0 header 0 8;
  Bytes.set_int32_le header 8 (Int32.of_int page_size);
  Bytes.set_uint16_le header 12 (Schema.arity (Relation.schema rel));
  Bytes.set_int64_le header row_count_offset (Int64.of_int (Relation.cardinality rel));
  really_write fd header;
  (* Data pages: greedy packing. *)
  let buf = Buffer.create page_size in
  let count = ref 0 in
  let pages = ref 0 in
  let flush_page () =
    if !count > 0 then begin
      let page = Bytes.make page_size '\000' in
      Bytes.set_uint16_le page 0 !count;
      Bytes.blit_string (Buffer.contents buf) 0 page 2 (Buffer.length buf);
      really_write fd page;
      Buffer.clear buf;
      count := 0;
      incr pages
    end
  in
  Relation.iter
    (fun row ->
      let size = Codec.tuple_bytes row in
      if size > payload then
        invalid_arg "Heap_file.write: tuple exceeds the page payload";
      if Buffer.length buf + size > payload then flush_page ();
      Codec.encode_tuple buf row;
      incr count)
    rel;
  flush_page ();
  {
    path;
    fd;
    schema = Relation.schema rel;
    plan = Codec.plan_of_schema (Relation.schema rel);
    mode = codec;
    page_size;
    writable = true;
    pages = !pages;
    row_count = Relation.cardinality rel;
  }

let openfile ~path ?(writable = false) ?(codec = Codec.Specialized) ~schema () =
  let flags = if writable then [ Unix.O_RDWR ] else [ Unix.O_RDONLY ] in
  let fd = Unix.openfile path flags 0 in
  let header = Bytes.create header_bytes in
  really_read fd header;
  if Bytes.sub_string header 0 8 <> magic then
    invalid_arg "Heap_file.openfile: bad magic";
  let page_size = Int32.to_int (Bytes.get_int32_le header 8) in
  let arity = Bytes.get_uint16_le header 12 in
  let row_count = Int64.to_int (Bytes.get_int64_le header row_count_offset) in
  if arity <> Schema.arity schema then
    invalid_arg "Heap_file.openfile: stored arity does not match the schema";
  let file_bytes = (Unix.fstat fd).Unix.st_size in
  let pages = (file_bytes / page_size) - 1 in
  {
    path;
    fd;
    schema;
    plan = Codec.plan_of_schema schema;
    mode = codec;
    page_size;
    writable;
    pages;
    row_count;
  }

let close t = Unix.close t.fd

let path t = t.path

let schema t = t.schema

let codec_mode t = t.mode

let pages t = t.pages

let row_count t = t.row_count

let read_page t page_no =
  let buf = Bytes.create t.page_size in
  ignore (Unix.lseek t.fd ((page_no + 1) * t.page_size) Unix.SEEK_SET);
  really_read t.fd buf;
  buf

(* ------------------------------------------------------------------ *)
(* Appending                                                            *)
(* ------------------------------------------------------------------ *)

let write_page_at t page_no ~count buf =
  let page = Bytes.make t.page_size '\000' in
  Bytes.set_uint16_le page 0 count;
  Bytes.blit_string (Buffer.contents buf) 0 page 2 (Buffer.length buf);
  ignore (Unix.lseek t.fd ((page_no + 1) * t.page_size) Unix.SEEK_SET);
  really_write t.fd page

let write_row_count t =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int t.row_count);
  ignore (Unix.lseek t.fd row_count_offset Unix.SEEK_SET);
  really_write t.fd b

(* Shared append core: [feed emit] must call [emit] once per new row, in
   order.  Rows are packed into the last existing page first (its live
   payload is re-read from disk and extended), then into fresh pages.
   The header row count is rewritten and every live buffer pool drops
   its frames for the rewritten tail, so no pool — shared or not — can
   serve the pre-append last-page image afterwards. *)
let append_feed t feed =
  if not t.writable then invalid_arg "Heap_file.append: file opened read-only";
  let payload = t.page_size - 2 in
  let buf = Buffer.create t.page_size in
  let first_page = if t.pages = 0 then 0 else t.pages - 1 in
  let page_no = ref first_page in
  let count = ref 0 in
  let skip = ref 0 in
  if t.pages > 0 then begin
    (* Resume packing inside the current last page: decode its tuples to
       find the live payload prefix, then keep it verbatim. *)
    let page = read_page t (t.pages - 1) in
    let n = Bytes.get_uint16_le page 0 in
    let pos = ref 2 in
    for _ = 1 to n do
      match t.mode with
      | Codec.Specialized -> ignore (Codec.decode_tuple_plan t.plan page ~pos)
      | Codec.Generic -> ignore (Codec.decode_tuple page ~pos ~arity:(Schema.arity t.schema))
    done;
    Buffer.add_subbytes buf page 2 (!pos - 2);
    count := n;
    skip := n
  end;
  let appended = ref 0 in
  let flush () =
    write_page_at t !page_no ~count:!count buf;
    Buffer.clear buf;
    count := 0;
    incr page_no
  in
  feed (fun row ->
      let size = Codec.tuple_bytes row in
      if size > payload then invalid_arg "Heap_file.append: tuple exceeds the page payload";
      if Buffer.length buf + size > payload then flush ();
      (match t.mode with
      | Codec.Specialized -> Codec.encode_tuple_plan t.plan buf row
      | Codec.Generic -> Codec.encode_tuple_checked buf t.schema row);
      incr count;
      incr appended);
  if !appended > 0 then begin
    if !count > 0 then begin
      write_page_at t !page_no ~count:!count buf;
      incr page_no
    end;
    t.pages <- !page_no;
    t.row_count <- t.row_count + !appended;
    write_row_count t;
    ignore (Buffer_pool.invalidate_all ~path:t.path ~from_page:first_page)
  end;
  { first_page; skip = !skip; rows = !appended }

let append t rows =
  (* Validate the whole batch before touching any page: a mid-batch
     encoding failure must not leave half-written tail pages behind. *)
  Array.iter (Codec.check_tuple t.schema) rows;
  append_feed t (fun emit -> Array.iter emit rows)

let append_source t source = append_feed t (fun emit -> Chunk.Source.iter (Chunk.iter emit) source)

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)
(* ------------------------------------------------------------------ *)

let decode_page t page_no ~pool =
  let page =
    Buffer_pool.fetch pool ~key:(t.path, page_no) ~load:(fun () -> read_page t page_no)
  in
  let n = Bytes.get_uint16_le page 0 in
  let pos = ref 2 in
  try
    match t.mode with
    | Codec.Specialized -> Codec.decode_rows_plan t.plan page ~pos ~count:n
    | Codec.Generic ->
      let arity = Schema.arity t.schema in
      Array.init n (fun _ -> Codec.decode_tuple page ~pos ~arity)
  with Diag.Fail d ->
    (* A corrupt cell names only its byte offset; say which file and
       page it came from before the error escapes the storage layer. *)
    raise (Diag.Fail { d with Diag.path = Printf.sprintf "%s: page %d" t.path page_no :: d.Diag.path })

let scan_pages t ~pool f =
  for page_no = 0 to t.pages - 1 do
    f (decode_page t page_no ~pool)
  done

let scan t ~pool f = scan_pages t ~pool (fun rows -> Array.iter f rows)

let source t ~pool =
  (* Snapshot the page count: rows appended after the source is created
     are not part of this scan (statement-level snapshot semantics). *)
  let limit = t.pages in
  let page_no = ref 0 in
  Chunk.Source.create ~schema:t.schema (fun () ->
      if !page_no >= limit then None
      else begin
        let rows = decode_page t !page_no ~pool in
        incr page_no;
        Some (Chunk.of_rows t.schema rows)
      end)

let source_range t ~pool ~first_page ~skip =
  if first_page < 0 || skip < 0 then invalid_arg "Heap_file.source_range: negative position";
  let limit = t.pages in
  let page_no = ref first_page in
  let first = ref true in
  Chunk.Source.create ~schema:t.schema (fun () ->
      let rec pull () =
        if !page_no >= limit then None
        else begin
          let rows = decode_page t !page_no ~pool in
          let off = if !first then min skip (Array.length rows) else 0 in
          first := false;
          incr page_no;
          let len = Array.length rows - off in
          if len <= 0 then pull () else Some (Chunk.of_array ~off ~len t.schema rows)
        end
      in
      pull ())

let to_relation t ~pool =
  let out = Vec.create ~capacity:(max 1 t.row_count) ~dummy:Tuple.empty () in
  scan_pages t ~pool (fun rows -> Vec.blit rows 0 out (Vec.length out) (Array.length rows));
  Relation.create ~check:false t.schema (Vec.to_array out)
