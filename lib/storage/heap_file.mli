(** Appendable heap files: a relation stored as fixed-size pages.

    Layout: a one-page header (magic, page size, arity, tuple count)
    followed by data pages, each holding a 16-bit tuple count and the
    tuples in {!Codec} encoding.  Reads go through a {!Buffer_pool}, so
    scans account page I/O exactly.

    Files grow by {!append}: new rows pack into the free payload of the
    current last page, then into fresh pages.  An append rewrites the
    tail in place and {e invalidates} the affected frames in every live
    buffer pool ({!Buffer_pool.invalidate_all}), so a pool shared across
    an append never serves a stale last-page image.  Encoding on the
    append path is schema-checked ({!Codec.check_tuple}).

    Every handle carries a {!Codec.plan} compiled once from its schema
    at open time.  In the default [Specialized] codec mode, page decodes
    and append encodes run through the plan's fixed per-column loop
    ({!Codec.decode_tuple_plan}/{!Codec.encode_tuple_plan}); [Generic]
    keeps the original per-cell tag dispatch as the fallback and oracle.
    Both read and write the same byte format, so the mode is a pure
    open-time choice — files are interchangeable.  Corrupt pages raise
    {!Diag.Fail} with an [STO0xx] code whose [path] leads with
    ["<file>: page <n>"]. *)

open Subql_relational

type t

type delta = {
  first_page : int;  (** first page the append touched (or would touch) *)
  skip : int;  (** pre-existing rows in that page — skip them when streaming the delta *)
  rows : int;  (** rows actually appended *)
}
(** Where an append landed: [source_range ~first_page ~skip] streams
    exactly the appended rows. *)

val write : path:string -> ?page_size:int -> ?codec:Codec.mode -> Relation.t -> t
(** Serialize the relation to [path] (page size defaults to 8192 bytes)
    and return an open, writable handle in the given codec mode
    (default [Specialized]).
    @raise Invalid_argument if a single tuple exceeds the page payload. *)

val openfile : path:string -> ?writable:bool -> ?codec:Codec.mode -> schema:Schema.t -> unit -> t
(** Open an existing heap file; [writable] (default [false]) opens it
    read-write so {!append} works.  The stored arity must match [schema]
    (column names/types are the caller's contract, as with CSV — though
    in the default [Specialized] codec mode a type lie is caught at scan
    time as [STO003]).
    @raise Invalid_argument on a bad magic or arity mismatch. *)

val close : t -> unit

val path : t -> string

val schema : t -> Schema.t

val codec_mode : t -> Codec.mode
(** The codec this handle was opened with. *)

val pages : t -> int
(** Data pages (header excluded); grows under {!append}. *)

val row_count : t -> int

val append : t -> Tuple.t array -> delta
(** Append a batch of rows: fill the last page's free payload, then add
    pages; rewrite the header row count; drop the rewritten tail from
    every live buffer pool.  The whole batch is schema-checked before
    any page is written, so a malformed row leaves the file untouched.
    @raise Invalid_argument on a read-only handle, a schema-invalid row,
    or a tuple exceeding the page payload. *)

val append_source : t -> Chunk.Source.t -> delta
(** {!append} draining a chunk stream — the batch is never materialized
    (rows are validated as they are encoded, so a failure mid-stream can
    leave previously streamed rows of this batch on full pages; the
    header row count is only advanced on success). *)

val scan : t -> pool:Buffer_pool.t -> (Tuple.t -> unit) -> unit
(** Visit every tuple in storage order, fetching pages through the pool. *)

val scan_pages : t -> pool:Buffer_pool.t -> (Tuple.t array -> unit) -> unit
(** Page-at-a-time variant. *)

val source : t -> pool:Buffer_pool.t -> Chunk.Source.t
(** A pull-based stream over the file: one chunk per data page, each
    fetched through the pool as it is pulled.  The page count is
    snapshotted at creation, so rows appended while the stream is live
    are not included.  Closing the source early simply stops fetching
    (the handle stays open) — peak memory is one decoded page, not the
    relation. *)

val source_range : t -> pool:Buffer_pool.t -> first_page:int -> skip:int -> Chunk.Source.t
(** Stream from [first_page] to the current end of file, skipping the
    first [skip] rows of the first page — with an {!append}'s {!delta}
    this yields exactly the appended rows, one chunk per page, without
    ever materializing the batch.
    @raise Invalid_argument on negative positions. *)

val to_relation : t -> pool:Buffer_pool.t -> Relation.t
