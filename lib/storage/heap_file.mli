(** Write-once heap files: a relation stored as fixed-size pages.

    Layout: a one-page header (magic, page size, arity, tuple count)
    followed by data pages, each holding a 16-bit tuple count and the
    tuples in {!Codec} encoding.  Reads go through a {!Buffer_pool}, so
    scans account page I/O exactly. *)

open Subql_relational

type t

val write : path:string -> ?page_size:int -> Relation.t -> t
(** Serialize the relation to [path] (page size defaults to 8192 bytes)
    and return an open handle.
    @raise Invalid_argument if a single tuple exceeds the page payload. *)

val openfile : path:string -> schema:Schema.t -> t
(** Open an existing heap file.  The stored arity must match [schema]
    (column names/types are the caller's contract, as with CSV).
    @raise Invalid_argument on a bad magic or arity mismatch. *)

val close : t -> unit

val path : t -> string

val schema : t -> Schema.t

val pages : t -> int
(** Data pages (header excluded). *)

val row_count : t -> int

val scan : t -> pool:Buffer_pool.t -> (Tuple.t -> unit) -> unit
(** Visit every tuple in storage order, fetching pages through the pool. *)

val scan_pages : t -> pool:Buffer_pool.t -> (Tuple.t array -> unit) -> unit
(** Page-at-a-time variant. *)

val source : t -> pool:Buffer_pool.t -> Chunk.Source.t
(** A pull-based stream over the file: one chunk per data page, each
    fetched through the pool as it is pulled.  Closing the source early
    simply stops fetching (the handle stays open) — peak memory is one
    decoded page, not the relation. *)

val to_relation : t -> pool:Buffer_pool.t -> Relation.t
