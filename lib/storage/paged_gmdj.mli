(** GMDJ evaluation over a disk-resident detail relation.

    The detail heap file streams page by page through the buffer pool
    into the chunk-consuming fold core ({!Gmdj.Fold}), so the pool
    statistics report
    the exact page I/O a plan performs — making the paper's central cost
    argument observable: a (coalesced) GMDJ touches every detail page
    once, chained GMDJs once per operator, and the working set on the
    base side is |B| accumulators regardless of the detail size.

    Each evaluation counts one detail pass (and its row count) into the
    optional [stats] record and into the ["gmdj.*"] series of
    {!Subql_obs.Metrics.default}; page-level I/O lands in the
    ["storage.buffer_pool.*"] series via {!Buffer_pool}. *)

open Subql_relational
open Subql_gmdj

val eval :
  ?stats:Gmdj.stats ->
  pool:Buffer_pool.t ->
  base:Relation.t ->
  detail:Heap_file.t ->
  Gmdj.block list ->
  Relation.t
(** Identical results to [Gmdj.eval] over the materialized detail. *)

val eval_chained :
  ?stats:Gmdj.stats ->
  pool:Buffer_pool.t ->
  base:Relation.t ->
  detail:Heap_file.t ->
  Gmdj.block list list ->
  Relation.t
(** Evaluate a chain of GMDJs over the same detail file — the shape the
    translation produces before coalescing: the detail is scanned once
    per element of the list ([stats.detail_passes] grows by the chain
    length), and each GMDJ's output becomes the next one's base-values
    relation.  [eval_chained ~pool ~base ~detail \[b\]] equals
    [eval ~pool ~base ~detail b]. *)
