(** Free-reference and correlation analysis (Sections 2.1 and 3.2).

    A {e free reference} is a qualified attribute reference whose
    qualifier is not bound in the local scope.  A subquery whose free
    references all target the immediately enclosing scope has only
    {e neighboring} correlation predicates; references that skip a level
    are {e non-neighboring} and force base-table push-down (Thms
    3.3/3.4).  Unqualified references always resolve locally and never
    count as free. *)

val kind_exprs : Nested_ast.sub_kind -> Subql_relational.Expr.t list
(** The outer-scope expressions embedded in a subquery kind (the
    comparison lhs); aggregate arguments are local and excluded. *)

val free_aliases_pred : local:string list -> Nested_ast.pred -> string list
(** Qualifiers referenced by the predicate (including inside nested
    subqueries, whose own aliases extend [local] as we descend) that are
    not in [local].  Distinct, first-appearance order. *)

val free_aliases_sub : Nested_ast.sub -> string list
(** Free aliases of a subquery: references in its kind and body not
    bound by its own alias. *)

val non_neighboring : enclosing:string list -> Nested_ast.sub -> string list
(** Free aliases of the subquery outside [enclosing] (the aliases of the
    immediately enclosing scope) — the aliases that make its correlation
    predicates non-neighboring. *)

val non_neighboring_subs : Nested_ast.query -> (string * string list) list
(** Every subquery (at any nesting depth) of the query's WHERE clause
    with non-neighboring correlation, as [(subquery alias, skipping
    aliases)] pairs in pre-order.  Empty for queries the neighboring-only
    translation (Thm 3.1/3.2) handles without push-down; non-empty means
    Thms 3.3/3.4 base push-down is required — the lint layer reports
    these so the plan reader knows why the base was widened. *)
