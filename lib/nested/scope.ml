open Subql_relational
open Nested_ast

let kind_exprs = function
  | Exists | Not_exists -> []
  | Cmp_scalar (lhs, _, _) | Cmp_agg (lhs, _, _) | Quant (lhs, _, _, _) | In_ (lhs, _)
  | Not_in (lhs, _) ->
    [ lhs ]

let add_unique acc q = if List.mem q acc then acc else acc @ [ q ]

let rec collect_pred local acc = function
  | Ptrue -> acc
  | Atom e -> collect_expr local acc e
  | Pand (a, b) | Por (a, b) -> collect_pred local (collect_pred local acc a) b
  | Pnot a -> collect_pred local acc a
  | Sub s -> collect_sub local acc s

and collect_sub local acc s =
  let acc = List.fold_left (collect_expr local) acc (kind_exprs s.kind) in
  (* Aggregate arguments range over the subquery's own source; any outer
     qualifiers inside them are still free references. *)
  let acc =
    match s.kind with
    | Cmp_agg (_, _, func) -> (
      match func with
      | Aggregate.Count_star -> acc
      | Aggregate.Count e | Aggregate.Sum e | Aggregate.Min e | Aggregate.Max e
      | Aggregate.Avg e | Aggregate.First e ->
        collect_expr (s.s_alias :: local) acc e)
    | Exists | Not_exists | Cmp_scalar _ | Quant _ | In_ _ | Not_in _ -> acc
  in
  collect_pred (s.s_alias :: local) acc s.s_where

and collect_expr local acc e =
  List.fold_left
    (fun acc q -> if List.mem q local then acc else add_unique acc q)
    acc (Expr.qualifiers e)

let free_aliases_pred ~local p = collect_pred local [] p

let free_aliases_sub s = collect_sub [] [] s

let non_neighboring ~enclosing s =
  List.filter (fun a -> not (List.mem a enclosing)) (free_aliases_sub s)

let non_neighboring_subs q =
  let rec walk enclosing acc p =
    match p with
    | Ptrue | Atom _ -> acc
    | Pand (a, b) | Por (a, b) -> walk enclosing (walk enclosing acc a) b
    | Pnot a -> walk enclosing acc a
    | Sub s ->
      let acc =
        match non_neighboring ~enclosing s with
        | [] -> acc
        | aliases -> acc @ [ (s.s_alias, aliases) ]
      in
      walk [ s.s_alias ] acc s.s_where
  in
  walk (scope_aliases q) [] q.q_where
