(** A named collection of relations (the database instance). *)

type t

exception Unknown_table of string

val create : unit -> t

val add : t -> string -> Relation.t -> unit
(** Registers the relation under [name]; its attributes are requalified
    to [name] so that unaliased references resolve naturally.  Replaces
    any previous binding. *)

val find : t -> string -> Relation.t
(** @raise Unknown_table when absent. *)

val find_opt : t -> string -> Relation.t option

val of_list : (string * Relation.t) list -> t

val tables : t -> string list
(** Sorted table names. *)

val epoch : t -> string -> int
(** The per-table mutation epoch: [0] while [name] has never been
    registered in this catalog, and bumped by every {!add} of [name]
    (the initial registration included).  One ingest batch bumps the
    epoch exactly once, so maintenance planners can tell precisely
    {e which} tables changed between two syncs — the fine-grained
    counterpart of {!generation}. *)

val generation : unit -> int
(** A process-wide mutation counter, bumped by every {!add} on any
    catalog.  Consumers that cache derived results (see [Subql_mqo])
    compare generations to detect that {e some} table changed; the
    granularity is deliberately coarse — over-invalidation is safe,
    staleness is not. *)
