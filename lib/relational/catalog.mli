(** A named collection of relations (the database instance). *)

type t

exception Unknown_table of string

val create : unit -> t

val add : t -> string -> Relation.t -> unit
(** Registers the relation under [name]; its attributes are requalified
    to [name] so that unaliased references resolve naturally.  Replaces
    any previous binding. *)

val find : t -> string -> Relation.t
(** @raise Unknown_table when absent. *)

val find_opt : t -> string -> Relation.t option

val of_list : (string * Relation.t) list -> t

val tables : t -> string list
(** Sorted table names. *)

val generation : unit -> int
(** A process-wide mutation counter, bumped by every {!add} on any
    catalog.  Consumers that cache derived results (see [Subql_mqo])
    compare generations to detect that {e some} table changed; the
    granularity is deliberately coarse — over-invalidation is safe,
    staleness is not. *)
