let check_cell s =
  if String.exists (fun c -> c = ',' || c = '\n' || c = '\r') s then
    invalid_arg ("Table_io: cell contains separator: " ^ s)

let to_csv_channel oc rel =
  let schema = Relation.schema rel in
  let header =
    List.map Schema.qualified_name (Schema.to_list schema) |> String.concat ","
  in
  output_string oc header;
  output_char oc '\n';
  Relation.iter
    (fun row ->
      let cells = Array.to_list (Array.map Value.to_csv_string row) in
      List.iter check_cell cells;
      output_string oc (String.concat "," cells);
      output_char oc '\n')
    rel

let to_csv_file path rel =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_csv_channel oc rel)

let split_line line = String.split_on_char ',' line

let of_csv_channel schema ic =
  let arity = Schema.arity schema in
  let parse_row line =
    let cells = split_line line in
    if List.length cells <> arity then
      invalid_arg
        (Printf.sprintf "Table_io: row has %d cells, schema has %d" (List.length cells) arity);
    let row =
      List.mapi
        (fun i cell -> Value.of_csv_string (Schema.attr_at schema i).Schema.ty cell)
        cells
    in
    Array.of_list row
  in
  let rows = Vec.create ~dummy:([||] : Tuple.t) () in
  (match In_channel.input_line ic with
  | None -> invalid_arg "Table_io: missing header line"
  | Some header ->
    if List.length (split_line header) <> arity then
      invalid_arg "Table_io: header arity does not match schema");
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some "" -> loop ()
    | Some line ->
      Vec.push rows (parse_row line);
      loop ()
  in
  loop ();
  (* CSV is an ingestion boundary: verify every parsed row against the
     declared schema (engine-internal constructions skip the check —
     their typing is certified upstream). *)
  Relation.create ~check:true schema (Vec.to_array rows)

let of_csv_file schema path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_csv_channel schema ic)
