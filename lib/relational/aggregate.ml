type func =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t
  | First of Expr.t

type spec = { func : func; name : string }

let count_star name = { func = Count_star; name }

let count e name = { func = Count e; name }

let sum e name = { func = Sum e; name }

let min_ e name = { func = Min e; name }

let max_ e name = { func = Max e; name }

let avg e name = { func = Avg e; name }

let first e name = { func = First e; name }

let arg = function
  | Count_star -> None
  | Count e | Sum e | Min e | Max e | Avg e | First e -> Some e

let output_ty frames spec =
  match spec.func with
  | Count_star | Count _ -> Value.Tint
  | Avg _ -> Value.Tfloat
  | Sum e | Min e | Max e | First e -> (
    match Expr.infer frames e with
    | Some ty -> ty
    | None -> Value.Tint (* aggregating a NULL literal; any type will do *))

let func_to_string = function
  | Count_star -> "count(*)"
  | Count e -> Printf.sprintf "count(%s)" (Expr.to_string e)
  | Sum e -> Printf.sprintf "sum(%s)" (Expr.to_string e)
  | Min e -> Printf.sprintf "min(%s)" (Expr.to_string e)
  | Max e -> Printf.sprintf "max(%s)" (Expr.to_string e)
  | Avg e -> Printf.sprintf "avg(%s)" (Expr.to_string e)
  | First e -> Printf.sprintf "first(%s)" (Expr.to_string e)

let pp_spec ppf spec = Format.fprintf ppf "%s -> %s" (func_to_string spec.func) spec.name

type kind = Kcount_star | Kcount | Ksum | Kmin | Kmax | Kavg | Kfirst

type compiled = { kind : kind; eval : (Tuple.t array -> Value.t) option }

type acc = {
  compiled : compiled;
  mutable n : int;  (* rows seen for count-star; non-null values seen otherwise *)
  mutable acc_v : Value.t;  (* running sum / min / max *)
  mutable fsum : float;  (* running sum for avg *)
}

let compile frames spec =
  let kind =
    match spec.func with
    | Count_star -> Kcount_star
    | Count _ -> Kcount
    | Sum _ -> Ksum
    | Min _ -> Kmin
    | Max _ -> Kmax
    | Avg _ -> Kavg
    | First _ -> Kfirst
  in
  let eval = Option.map (Expr.compile_frames frames) (arg spec.func) in
  { kind; eval }

let make compiled = { compiled; n = 0; acc_v = Value.Null; fsum = 0.0 }

let to_float = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | v -> Value.type_error "avg over non-numeric value %s" (Value.to_string v)

let step acc ctx =
  match acc.compiled.kind with
  | Kcount_star -> acc.n <- acc.n + 1
  | Kcount ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then acc.n <- acc.n + 1
  | Ksum ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      acc.acc_v <- (if acc.n = 0 then v else Value.add acc.acc_v v);
      acc.n <- acc.n + 1
    end
  | Kmin ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      if acc.n = 0 || Value.compare v acc.acc_v < 0 then acc.acc_v <- v;
      acc.n <- acc.n + 1
    end
  | Kmax ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      if acc.n = 0 || Value.compare v acc.acc_v > 0 then acc.acc_v <- v;
      acc.n <- acc.n + 1
    end
  | Kavg ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      acc.fsum <- acc.fsum +. to_float v;
      acc.n <- acc.n + 1
    end
  | Kfirst ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      if acc.n = 0 then acc.acc_v <- v;
      acc.n <- acc.n + 1
    end

let step_back acc ctx =
  match acc.compiled.kind with
  | Kcount_star -> acc.n <- acc.n - 1
  | Kcount ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then acc.n <- acc.n - 1
  | Ksum ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      acc.acc_v <- Value.sub acc.acc_v v;
      acc.n <- acc.n - 1
    end
  | Kmin | Kmax ->
    invalid_arg "Aggregate.step_back: MIN/MAX cannot be retracted incrementally"
  | Kfirst -> invalid_arg "Aggregate.step_back: FIRST is order-sensitive"
  | Kavg ->
    let v = (Option.get acc.compiled.eval) ctx in
    if not (Value.is_null v) then begin
      acc.fsum <- acc.fsum -. to_float v;
      acc.n <- acc.n - 1
    end

let merge ~into other =
  if into.compiled.kind <> other.compiled.kind then
    invalid_arg "Aggregate.merge: accumulators of different kinds";
  (match into.compiled.kind with
  | Kcount_star | Kcount -> ()
  | Ksum ->
    if other.n > 0 then
      into.acc_v <- (if into.n = 0 then other.acc_v else Value.add into.acc_v other.acc_v)
  | Kmin ->
    if other.n > 0 && (into.n = 0 || Value.compare other.acc_v into.acc_v < 0) then
      into.acc_v <- other.acc_v
  | Kmax ->
    if other.n > 0 && (into.n = 0 || Value.compare other.acc_v into.acc_v > 0) then
      into.acc_v <- other.acc_v
  | Kavg -> into.fsum <- into.fsum +. other.fsum
  | Kfirst ->
    (* Concatenation order: [into] precedes [other].  This is only a
       lawful parallel merge when partitions arrive back in input order
       — FIRST has an identity and is associative but not commutative,
       which is exactly what [Mergeable] refuses to certify. *)
    if into.n = 0 && other.n > 0 then into.acc_v <- other.acc_v);
  into.n <- into.n + other.n

let value acc =
  match acc.compiled.kind with
  | Kcount_star | Kcount -> Value.Int acc.n
  | Ksum | Kmin | Kmax | Kfirst -> if acc.n = 0 then Value.Null else acc.acc_v
  | Kavg -> if acc.n = 0 then Value.Null else Value.Float (acc.fsum /. float_of_int acc.n)
