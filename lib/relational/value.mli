(** SQL values and their three-valued comparison semantics.

    Values are dynamically typed at the cell level; the [ty] type is the
    static column type recorded in schemas.  [Null] inhabits every column
    type.  Integers and floats are mutually comparable (numeric
    promotion); all other cross-type comparisons raise {!Type_error}. *)

type ty = Tint | Tfloat | Tstring | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)

val ty_of : t -> ty option
(** [None] for [Null]. *)

val ty_to_string : ty -> string

val pp_ty : Format.formatter -> ty -> unit

val equal_ty : ty -> ty -> bool

val conforms : t -> ty -> bool
(** Does the value inhabit the column type?  [Null] conforms to all. *)

val is_null : t -> bool

(** {1 Grouping semantics}

    Structural equality/ordering/hash in which [Null = Null]; used for
    GROUP BY keys, DISTINCT, set operations and index keys — mirroring
    SQL's "nulls group together" rule.  Distinct from the 3VL comparison
    below. *)

val equal : t -> t -> bool
(** [equal a b] is [compare a b = 0] — so [Int 1 = Float 1.],
    [Float nan = Float nan], and [Float (-0.) = Float 0.]. *)

val compare : t -> t -> int
(** Total order: [Null] sorts first, then numerics ([Int]/[Float]
    jointly, compared numerically after promotion), then strings, then
    booleans.  On floats this is [Float.compare]'s total order, not raw
    IEEE: NaN equals NaN and sorts below every other number (including
    every [Int]), and [-0.] equals [0.].  This is the one order the
    engine sorts, groups, and deduplicates by — deterministic output
    (and the deterministic {!Diag} emission built on sorted results)
    depends on it being total. *)

val hash : t -> int
(** Consistent with {!equal}: [Int i] hashes as the float [i] so the
    cross-type numeric classes collide as required, and OCaml's float
    hash normalizes the sign of zero and all NaN payloads.  The spill
    partitioner routes rows to partitions by this hash, so two values
    that compare equal {e must} hash equal or a group would be split
    across spill files. *)

(** {1 SQL comparison semantics (3VL)} *)

val cmp3 : t -> t -> int option
(** [cmp3 a b] is [None] when either side is [Null] (comparison is
    unknown), otherwise [Some c] with [c] negative/zero/positive.
    @raise Type_error on incomparable types. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division by zero yields [Null] (documented engine-wide choice that
    keeps randomly generated queries total). *)

val modulo : t -> t -> t
val neg : t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}'s rendering. *)

val to_string : t -> string
(** Floats print with ["%g"], with the non-finite cases canonicalized:
    every NaN prints ["nan"] (never ["-nan"] — the sign bit and payload
    are unobservable through {!compare}, so printing must not leak
    them), infinities print ["inf"]/["-inf"], and negative zero keeps
    its sign as ["-0"] even though [compare (Float (-0.)) (Float 0.)]
    is [0]. *)

val to_csv_string : t -> string

val of_csv_string : ty -> string -> t
(** Parse a CSV cell given the column type; the empty string is [Null].
    @raise Type_error on malformed input. *)
