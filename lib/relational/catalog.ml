type t = {
  tables : (string, Relation.t) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;
}

exception Unknown_table of string

let create () = { tables = Hashtbl.create 16; epochs = Hashtbl.create 16 }

(* A process-wide mutation generation.  Result caches keyed on plan
   shape (not on catalog identity) use this to invalidate conservatively:
   any table registration anywhere bumps it, so a cached result can never
   outlive the data it was computed from. *)
let generation_counter = ref 0

let generation () = !generation_counter

let add t name rel =
  incr generation_counter;
  Hashtbl.replace t.epochs name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.epochs name));
  Hashtbl.replace t.tables name (Relation.rename name rel)

let epoch t name = Option.value ~default:0 (Hashtbl.find_opt t.epochs name)

let find t name =
  match Hashtbl.find_opt t.tables name with
  | Some rel -> rel
  | None -> raise (Unknown_table name)

let find_opt t name = Hashtbl.find_opt t.tables name

let of_list bindings =
  let t = create () in
  List.iter (fun (name, rel) -> add t name rel) bindings;
  t

let tables t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare
