type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  path : string list;
  message : string;
  subject : string option;
}

exception Fail of t

let make ?(path = []) ?subject severity ~code message =
  { severity; code; path; message; subject }

let makef ?path ?subject severity ~code fmt =
  Format.kasprintf (fun message -> make ?path ?subject severity ~code message) fmt

let error ?path ?subject ~code message = make ?path ?subject Error ~code message

let warning ?path ?subject ~code message = make ?path ?subject Warning ~code message

let info ?path ?subject ~code message = make ?path ?subject Info ~code message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = List.compare String.compare a.path b.path in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c
      else
        let c = String.compare a.message b.message in
        if c <> 0 then c
        else Option.compare String.compare a.subject b.subject

let sort diags = List.sort_uniq compare diags

module Scratch = struct
  type diag = t

  type t = { mutable rev : diag list; mutable n : int }

  let create () = { rev = []; n = 0 }

  let add t d =
    t.rev <- d :: t.rev;
    t.n <- t.n + 1

  let add_list t ds = List.iter (add t) ds

  let length t = t.n

  let to_list t = List.rev t.rev

  let merge scratches =
    sort (List.concat_map to_list (Array.to_list scratches))
end

let is_error d = d.severity = Error

let has_errors diags = List.exists is_error diags

let count severity diags = List.length (List.filter (fun d -> d.severity = severity) diags)

let path_to_string = function [] -> "<root>" | path -> String.concat "/" path

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_to_string d.severity) d.code
    (path_to_string d.path) d.message

let to_string d = Format.asprintf "%a" pp d
