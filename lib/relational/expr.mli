(** Scalar and boolean expressions over qualified attributes.

    Expressions are evaluated under a stack of {e frames} — one tuple per
    enclosing query scope, outermost first — so the same machinery serves
    single-relation predicates, join conditions, GMDJ θ-conditions and
    the correlated predicates of nested queries.  Attribute references
    resolve in the innermost frame that knows them (SQL scoping rules).

    Boolean results follow Kleene 3VL: they are [Bool _] or [Null]
    (unknown).  Comparisons with a NULL operand are unknown. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Attr of string option * string  (** qualifier (alias) and column name *)
  | Cmp of cmp * t * t
  | Null_safe_eq of t * t
      (** SQL [IS NOT DISTINCT FROM]: never unknown, NULL equals NULL.
          Used for push-down key matching (Thms 3.3/3.4). *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | Is_null of t
  | Is_not_null of t
  | Is_true of t
      (** 3VL → 2VL collapse: [Is_true e] is [true] iff [e] is true.
          Needed to express ALL-quantifier kill conditions. *)

(** {1 Constructors} *)

val const : Value.t -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val null : t
val attr : ?rel:string -> string -> t
val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val cmp : cmp -> t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val conjoin : t list -> t
(** [conjoin []] is [Const (Bool true)]. *)

val disjoin : t list -> t
(** [disjoin []] is [Const (Bool false)]. *)

(** {1 Operator utilities} *)

val negate_cmp : cmp -> cmp
(** [negate_cmp Eq = Ne], [negate_cmp Lt = Ge], ... ([φ] to [φ̄]). *)

val swap_cmp : cmp -> cmp
(** Mirror for operand swap: [x φ y ≡ y (swap_cmp φ) x]. *)

val cmp_to_string : cmp -> string

val conjuncts : t -> t list
(** Flatten top-level [And]s. *)

(** {1 Analysis} *)

val attrs : t -> (string option * string) list
(** All attribute references, in occurrence order (with duplicates). *)

val qualifiers : t -> string list
(** Distinct qualifiers of qualified references. *)

val references_rel : string -> t -> bool

val equal : t -> t -> bool

val map_attrs : (string option * string -> t) -> t -> t
(** Substitute every attribute reference. *)

val rewrite_qualifier : from_rel:string -> to_rel:string -> t -> t

val infer : Schema.t array -> t -> Value.ty option
(** Static type under the given frames; [None] means "NULL literal"
    (polymorphic).  @raise Value.Type_error on a type clash.
    @raise Schema.Unknown_attribute on an unresolvable reference. *)

val infer_diag :
  ?path:string list -> Schema.t array -> t -> (Value.ty option, Diag.t) result
(** Exception-free {!infer}: typing failures come back as a structured
    diagnostic ([SCH001] unknown attribute, [SCH002] ambiguous
    attribute, [TYP001] non-boolean operand, [TYP002] operand type
    clash) carrying [path] as its plan location. *)

val typecheck_bool : Schema.t array -> t -> unit
(** Assert the expression is boolean-typed (or NULL). *)

val typecheck_bool_diag : ?path:string list -> Schema.t array -> t -> Diag.t list
(** Exception-free {!typecheck_bool}: [[]] when the expression is a
    well-typed predicate, a singleton diagnostic otherwise. *)

val raise_diag : Diag.t -> 'a
(** Raise the legacy exception a diagnostic stands for
    ({!Schema.Unknown_attribute} / {!Schema.Ambiguous_attribute} /
    {!Value.Type_error} / [Invalid_argument]), or {!Diag.Fail} for codes
    with no legacy equivalent — the bridge the historical entry points
    use now that the structured path is primary. *)

val refs_resolvable : Schema.t array -> t -> bool
(** Do all attribute references resolve in the given frames? *)

(** {1 Compilation and evaluation} *)

val compile_frames : Schema.t array -> t -> Tuple.t array -> Value.t
(** [compile_frames frames e] resolves all references once and returns a
    fast closure evaluating [e] on tuple stacks shaped like [frames]
    (frame 0 outermost). *)

val compile : Schema.t -> t -> Tuple.t -> Value.t
(** Single-frame convenience.  The returned closure reuses an internal
    buffer and is not thread-safe. *)

val compile2 : left:Schema.t -> right:Schema.t -> t -> Tuple.t -> Tuple.t -> Value.t
(** Two-frame convenience ([left] outer / [right] inner), same caveat. *)

val is_true : Value.t -> bool
(** Truncation: [Bool true] is true; [Bool false] and [Null] are not. *)

val apply_cmp : cmp -> Value.t -> Value.t -> Value.t
(** The 3VL comparison on values: [Null] when either side is NULL.
    @raise Value.Type_error on incomparable types. *)

val to_bool3 : Value.t -> Bool3.t
(** @raise Value.Type_error if the value is not boolean or NULL. *)

(** {1 Join analysis} *)

val split_equi :
  left:Schema.t -> right:Schema.t -> t -> (int * int) list * t option
(** Extract equi-join pairs from the top-level conjunction:
    conjuncts of the form [Cmp (Eq, a, b)] where [a] resolves only on the
    left and [b] only on the right (or vice versa) become index pairs
    [(left_pos, right_pos)]; everything else is returned as the residual
    condition ([None] when nothing remains). *)

val split_on : Schema.t array -> local:Schema.t -> t -> t option * t option
(** [split_on outer ~local e] splits the conjunction of [e] into the part
    whose references all resolve in [local] alone (invariant, hoistable)
    and the correlated remainder.  [outer] are the enclosing frames used
    to validate the remainder. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
