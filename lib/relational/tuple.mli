(** Tuples: positional arrays of values, interpreted through a schema. *)

type t = Value.t array

val empty : t

val concat : t -> t -> t

val project : t -> int array -> t

val equal : t -> t -> bool
(** Grouping equality (NULLs compare equal), positionwise. *)

val compare : t -> t -> int
(** Lexicographic extension of {!Value.compare}: a total order in which
    a strict prefix sorts before its extensions.  It inherits
    {!Value.compare}'s float conventions (NaN = NaN, [-0.] = [0.],
    [Int]/[Float] promotion), so sorted relation output — and the
    deterministic {!Diag} ordering derived from it — is stable across
    runs. *)

val hash : t -> int
(** Positionwise fold of {!Value.hash}; consistent with {!equal}, which
    the spill partitioner requires — tuples that compare equal must land
    in the same hash partition. *)

val pp : Format.formatter -> t -> unit
