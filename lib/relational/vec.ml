type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let reserve v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := 2 * !cap
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let grow v = reserve v (1 + Array.length v.data)

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let clear v =
  (* Drop references so the GC can reclaim stored elements. *)
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_array ~dummy a =
  let n = Array.length a in
  let v = create ~capacity:(max n 1) ~dummy () in
  Array.blit a 0 v.data 0 n;
  v.len <- n;
  v

let blit src srcoff dst dstoff len =
  if len < 0 || srcoff < 0 || srcoff + len > Array.length src then
    invalid_arg "Vec.blit: source range out of bounds";
  if dstoff < 0 || dstoff > dst.len then
    invalid_arg "Vec.blit: destination offset out of bounds";
  reserve dst (dstoff + len);
  Array.blit src srcoff dst.data dstoff len;
  dst.len <- max dst.len (dstoff + len)

let append dst src = blit src.data 0 dst dst.len src.len
