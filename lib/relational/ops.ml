type join_strategy = [ `Hash | `Nested_loop | `Sort_merge ]

(* Sorted-array equi access path for the sort-merge strategy: right rows
   ordered by their key columns; per left key a binary search finds the
   matching run.  Rows with a NULL key column are excluded, as in the
   hash index (an SQL equi-condition cannot be true on NULL). *)
module Sorted_access = struct
  type t = { key_of : Tuple.t -> Tuple.t option; order : int array; keys : Tuple.t array }

  let build rows cols =
    let key_of row =
      let k = Array.map (fun c -> row.(c)) cols in
      if Array.exists Value.is_null k then None else Some k
    in
    let indexed =
      Array.to_list rows
      |> List.mapi (fun i row -> (i, key_of row))
      |> List.filter_map (fun (i, k) -> Option.map (fun k -> (i, k)) k)
      |> Array.of_list
    in
    Array.sort (fun (_, a) (_, b) -> Tuple.compare a b) indexed;
    {
      key_of;
      order = Array.map fst indexed;
      keys = Array.map snd indexed;
    }

  (* First position with key >= probe. *)
  let lower_bound t probe =
    let lo = ref 0 and hi = ref (Array.length t.keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Tuple.compare t.keys.(mid) probe < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let probe_iter t key f =
    if not (Array.exists Value.is_null key) then begin
      let i = ref (lower_bound t key) in
      while !i < Array.length t.keys && Tuple.compare t.keys.(!i) key = 0 do
        f t.order.(!i);
        incr i
      done
    end
end

let dummy_row : Tuple.t = [||]

(* ------------------------------------------------------------------ *)
(* Chunk kernels                                                        *)
(* ------------------------------------------------------------------ *)

(* The streaming operators are built as per-chunk kernels compiled once
   per plan node; the whole-relation entry points run the same kernel
   over the relation as a single chunk, so there is exactly one
   implementation of each operator's semantics. *)

let select_kernel schema pred =
  Expr.typecheck_bool [| schema |] pred;
  let p = Expr.compile schema pred in
  fun c ->
    let out = Vec.create ~capacity:(max 1 (Chunk.length c)) ~dummy:dummy_row () in
    Chunk.iter (fun row -> if Expr.is_true (p row) then Vec.push out row) c;
    Chunk.of_rows (Chunk.schema c) (Vec.to_array out)

let select pred rel =
  let k = select_kernel (Relation.schema rel) pred in
  Chunk.to_relation (k (Chunk.whole rel))

let select_source pred src =
  let k = select_kernel (Chunk.Source.schema src) pred in
  Chunk.Source.map k src

let map_kernel out_schema row_fn c =
  let buf = Chunk.buffer c and off = Chunk.offset c in
  Chunk.of_rows out_schema (Array.init (Chunk.length c) (fun i -> row_fn buf.(off + i)))

let project_kernel schema exprs =
  let out_attrs =
    List.map
      (fun (e, name) ->
        let ty = match Expr.infer [| schema |] e with Some ty -> ty | None -> Value.Tint in
        Schema.attr name ty)
      exprs
  in
  let out_schema = Schema.of_list out_attrs in
  let fns = Array.of_list (List.map (fun (e, _) -> Expr.compile schema e) exprs) in
  (out_schema, map_kernel out_schema (fun row -> Array.map (fun f -> f row) fns))

let project exprs rel =
  let _, k = project_kernel (Relation.schema rel) exprs in
  Chunk.to_relation (k (Chunk.whole rel))

let project_source exprs src =
  let out_schema, k = project_kernel (Chunk.Source.schema src) exprs in
  Chunk.Source.map ~schema:out_schema k src

let project_cols_kernel schema cols =
  let idxs =
    Array.of_list (List.map (fun (rel_q, name) -> Schema.find schema ?rel:rel_q name) cols)
  in
  let out_schema = Schema.project schema idxs in
  (out_schema, map_kernel out_schema (fun row -> Tuple.project row idxs))

(* Resumable distinct state: the seen-set behind DISTINCT, exposed so
   the parallel executor can run one per domain and merge, and the spill
   path can freeze it at a budget and route overflow rows to disk. *)
module Distinct_acc = struct
  type t = { seen : (int, Tuple.t) Hashtbl.t; order : Tuple.t Vec.t }

  let create () = { seen = Hashtbl.create 64; order = Vec.create ~dummy:dummy_row () }

  let mem t row = List.exists (Tuple.equal row) (Hashtbl.find_all t.seen (Tuple.hash row))

  let add t row =
    let h = Tuple.hash row in
    if List.exists (Tuple.equal row) (Hashtbl.find_all t.seen h) then false
    else begin
      Hashtbl.add t.seen h row;
      Vec.push t.order row;
      true
    end

  let size t = Vec.length t.order

  let merge ~into t = Vec.iter (fun row -> ignore (add into row)) t.order

  let rows t = Vec.to_array t.order
end

let dedup_into iter_rows =
  let acc = Distinct_acc.create () in
  iter_rows (fun row -> ignore (Distinct_acc.add acc row));
  Distinct_acc.rows acc

let dedup_rows rows = dedup_into (fun f -> Array.iter f rows)

let project_cols ?(distinct = false) cols rel =
  let out_schema, k = project_cols_kernel (Relation.schema rel) cols in
  let rows = Chunk.to_rows (k (Chunk.whole rel)) in
  let rows = if distinct then dedup_rows rows else rows in
  Relation.create ~check:false out_schema rows

let project_cols_source cols src =
  let out_schema, k = project_cols_kernel (Chunk.Source.schema src) cols in
  Chunk.Source.map ~schema:out_schema k src

let distinct rel =
  Relation.create ~check:false (Relation.schema rel) (dedup_rows (Relation.rows rel))

let distinct_source src =
  let schema = Chunk.Source.schema src in
  Relation.create ~check:false schema
    (dedup_into (fun f -> Chunk.Source.iter (Chunk.iter f) src))

let rename_source alias src =
  let schema = Schema.rename_rel alias (Chunk.Source.schema src) in
  Chunk.Source.map ~schema (Chunk.with_schema schema) src

let add_rownum_kernel schema name =
  let out_schema = Schema.concat schema [| Schema.attr name Value.Tint |] in
  let seen = ref 0 in
  ( out_schema,
    fun c ->
      let buf = Chunk.buffer c and off = Chunk.offset c in
      let base = !seen in
      let rows =
        Array.init (Chunk.length c) (fun i ->
            Tuple.concat buf.(off + i) [| Value.Int (base + i) |])
      in
      seen := base + Chunk.length c;
      Chunk.of_rows out_schema rows )

let add_rownum name rel =
  let _, k = add_rownum_kernel (Relation.schema rel) name in
  Chunk.to_relation (k (Chunk.whole rel))

let add_rownum_source name src =
  let out_schema, k = add_rownum_kernel (Chunk.Source.schema src) name in
  Chunk.Source.map ~schema:out_schema k src

let product left right =
  let out_schema = Schema.concat (Relation.schema left) (Relation.schema right) in
  let out = Vec.create ~dummy:dummy_row () in
  Relation.iter
    (fun l -> Relation.iter (fun r -> Vec.push out (Tuple.concat l r)) right)
    left;
  Relation.create ~check:false out_schema (Vec.to_array out)

(* Shared driver for inner/outer/semi/anti joins.

   [emit] receives the left row and an iterator over matching right rows;
   it decides what to output.  The hash strategy builds an index on the
   right side over the equi-columns of the condition and evaluates only
   the residual per candidate. *)
let join_driver ?(strategy = `Hash) cond left right ~emit =
  let ls = Relation.schema left and rs = Relation.schema right in
  Expr.typecheck_bool [| ls; rs |] cond;
  let full = Expr.compile2 ~left:ls ~right:rs cond in
  let scan_matches l f =
    Relation.iter (fun r -> if Expr.is_true (full l r) then f r) right
  in
  let matches =
    match strategy with
    | `Nested_loop -> scan_matches
    | (`Hash | `Sort_merge) as strategy -> (
      let pairs, residual = Expr.split_equi ~left:ls ~right:rs cond in
      match pairs with
      | [] -> scan_matches
      | _ ->
        let lcols = Array.of_list (List.map fst pairs) in
        let rcols = Array.of_list (List.map snd pairs) in
        let rrows = Relation.rows right in
        let probe =
          match strategy with
          | `Hash ->
            let index = Index.build right rcols in
            Index.probe_iter index
          | `Sort_merge ->
            let access = Sorted_access.build rrows rcols in
            Sorted_access.probe_iter access
        in
        let test =
          match residual with
          | None -> fun _ _ -> true
          | Some res ->
            let f = Expr.compile2 ~left:ls ~right:rs res in
            fun l r -> Expr.is_true (f l r)
        in
        fun l f ->
          let key = Array.map (fun c -> l.(c)) lcols in
          probe key (fun ri ->
              let r = rrows.(ri) in
              if test l r then f r))
  in
  Relation.iter (fun l -> emit l (matches l)) left

let join ?strategy cond left right =
  let out_schema = Schema.concat (Relation.schema left) (Relation.schema right) in
  let out = Vec.create ~dummy:dummy_row () in
  join_driver ?strategy cond left right ~emit:(fun l iter ->
      iter (fun r -> Vec.push out (Tuple.concat l r)));
  Relation.create ~check:false out_schema (Vec.to_array out)

let left_outer_join ?strategy cond left right =
  let rs = Relation.schema right in
  let out_schema = Schema.concat (Relation.schema left) rs in
  let pad = Array.make (Schema.arity rs) Value.Null in
  let out = Vec.create ~dummy:dummy_row () in
  join_driver ?strategy cond left right ~emit:(fun l iter ->
      let matched = ref false in
      iter (fun r ->
          matched := true;
          Vec.push out (Tuple.concat l r));
      if not !matched then Vec.push out (Tuple.concat l pad));
  Relation.create ~check:false out_schema (Vec.to_array out)

exception Found

let has_match iter =
  try
    iter (fun _ -> raise Found);
    false
  with Found -> true

let semi_join ?strategy cond left right =
  let out = Vec.create ~dummy:dummy_row () in
  join_driver ?strategy cond left right ~emit:(fun l iter ->
      if has_match iter then Vec.push out l);
  Relation.create ~check:false (Relation.schema left) (Vec.to_array out)

let anti_join ?strategy cond left right =
  let out = Vec.create ~dummy:dummy_row () in
  join_driver ?strategy cond left right ~emit:(fun l iter ->
      if not (has_match iter) then Vec.push out l);
  Relation.create ~check:false (Relation.schema left) (Vec.to_array out)

module Group_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

let agg_schema frames aggs =
  List.map (fun spec -> Schema.attr spec.Aggregate.name (Aggregate.output_ty frames spec)) aggs

(* Resumable grouping state: the hash table behind GROUP BY, exposed so
   the parallel executor can run one per domain and merge accumulators
   ({!Aggregate.merge} makes every SQL aggregate state mergeable), and
   the spill path can freeze the group set at a budget and route rows of
   unseen keys to disk. *)
module Group_acc = struct
  type t = {
    key_idxs : int array;
    out_schema : Schema.t;
    compiled : Aggregate.compiled list;
    groups : (Tuple.t * Aggregate.acc list) Group_table.t;
    order : Tuple.t Vec.t;
    ctx : Tuple.t array;
  }

  let create ~schema ~keys ~aggs =
    let key_idxs =
      Array.of_list (List.map (fun (rel_q, name) -> Schema.find schema ?rel:rel_q name) keys)
    in
    let key_schema = Schema.project schema key_idxs in
    let frames = [| schema |] in
    {
      key_idxs;
      out_schema = Schema.concat key_schema (Schema.of_list (agg_schema frames aggs));
      compiled = List.map (Aggregate.compile frames) aggs;
      groups = Group_table.create 64;
      order = Vec.create ~dummy:dummy_row ();
      ctx = [| Tuple.empty |];
    }

  let out_schema t = t.out_schema

  let key_of t row = Tuple.project row t.key_idxs

  let mem_key t key = Group_table.mem t.groups key

  let size t = Vec.length t.order

  let update t accs row =
    t.ctx.(0) <- row;
    List.iter (fun acc -> Aggregate.step acc t.ctx) accs

  let step t row =
    let key = key_of t row in
    let accs =
      match Group_table.find_opt t.groups key with
      | Some (_, accs) -> accs
      | None ->
        let accs = List.map Aggregate.make t.compiled in
        Group_table.add t.groups key (key, accs);
        Vec.push t.order key;
        accs
    in
    update t accs row

  (* Update only an already-present group: [false] means the key is new
     and the row was not consumed — the spill path's overflow test. *)
  let step_existing t row =
    match Group_table.find_opt t.groups (key_of t row) with
    | Some (_, accs) ->
      update t accs row;
      true
    | None -> false

  (* Fold [t]'s groups into [into] (same schema/keys/aggs, e.g. built by
     another exchange worker).  Accumulators of keys new to [into] are
     adopted by reference, so [t] must not be stepped afterwards. *)
  let merge ~into t =
    Vec.iter
      (fun key ->
        let _, accs = Group_table.find t.groups key in
        match Group_table.find_opt into.groups key with
        | Some (_, into_accs) ->
          List.iter2 (fun dst src -> Aggregate.merge ~into:dst src) into_accs accs
        | None ->
          Group_table.add into.groups key (key, accs);
          Vec.push into.order key)
      t.order

  let result t =
    let out = Vec.create ~dummy:dummy_row () in
    Vec.iter
      (fun key ->
        let _, accs = Group_table.find t.groups key in
        let agg_vals = Array.of_list (List.map Aggregate.value accs) in
        Vec.push out (Tuple.concat key agg_vals))
      t.order;
    Relation.create ~check:false t.out_schema (Vec.to_array out)
end

(* Grouping and full aggregation are pipeline breakers, but they consume
   their input a row at a time: the streamed variants fold chunks into
   the group hash table without ever materializing the input. *)
let group_by_core ~schema ~keys ~aggs iter_rows =
  let acc = Group_acc.create ~schema ~keys ~aggs in
  iter_rows (Group_acc.step acc);
  Group_acc.result acc

let group_by ~keys ~aggs rel =
  group_by_core ~schema:(Relation.schema rel) ~keys ~aggs (fun f -> Relation.iter f rel)

let group_by_source ~keys ~aggs src =
  group_by_core ~schema:(Chunk.Source.schema src) ~keys ~aggs (fun f ->
      Chunk.Source.iter (Chunk.iter f) src)

let aggregate_all_core ~schema aggs iter_rows =
  let frames = [| schema |] in
  let out_schema = Schema.of_list (agg_schema frames aggs) in
  let compiled = List.map (Aggregate.compile frames) aggs in
  let accs = List.map Aggregate.make compiled in
  let ctx = [| Tuple.empty |] in
  iter_rows (fun row ->
      ctx.(0) <- row;
      List.iter (fun acc -> Aggregate.step acc ctx) accs);
  let row = Array.of_list (List.map Aggregate.value accs) in
  Relation.create ~check:false out_schema [| row |]

let aggregate_all aggs rel =
  aggregate_all_core ~schema:(Relation.schema rel) aggs (fun f -> Relation.iter f rel)

let aggregate_all_source aggs src =
  aggregate_all_core ~schema:(Chunk.Source.schema src) aggs (fun f ->
      Chunk.Source.iter (Chunk.iter f) src)

let check_compatible_schemas name a b =
  if not (Schema.equal_names a b) then invalid_arg (name ^ ": incompatible schemas")

let check_compatible name a b =
  check_compatible_schemas name (Relation.schema a) (Relation.schema b)

let union_all a b =
  check_compatible "union_all" a b;
  Relation.create ~check:false (Relation.schema a)
    (Array.append (Relation.rows a) (Relation.rows b))

let union_all_source a b =
  check_compatible_schemas "union_all" (Chunk.Source.schema a) (Chunk.Source.schema b);
  Chunk.Source.concat a b

let union a b = distinct (union_all a b)

let diff_all a b =
  check_compatible "diff_all" a b;
  let budget = Group_table.create (max 16 (Relation.cardinality b)) in
  Relation.iter
    (fun row ->
      let _, n = Option.value ~default:(row, 0) (Group_table.find_opt budget row) in
      Group_table.replace budget row (row, n + 1))
    b;
  let out = Vec.create ~dummy:dummy_row () in
  Relation.iter
    (fun row ->
      match Group_table.find_opt budget row with
      | Some (_, n) when n > 0 -> Group_table.replace budget row (row, n - 1)
      | Some _ | None -> Vec.push out row)
    a;
  Relation.create ~check:false (Relation.schema a) (Vec.to_array out)

let diff a b =
  check_compatible "diff" a b;
  let right = Group_table.create (max 16 (Relation.cardinality b)) in
  Relation.iter (fun row -> Group_table.replace right row (row, 1)) b;
  distinct (Relation.filter (fun row -> not (Group_table.mem right row)) a)

let intersect a b =
  check_compatible "intersect" a b;
  let right = Group_table.create (max 16 (Relation.cardinality b)) in
  Relation.iter (fun row -> Group_table.replace right row (row, 1)) b;
  distinct (Relation.filter (fun row -> Group_table.mem right row) a)

let sort ~by rel =
  let schema = Relation.schema rel in
  let keys =
    List.map
      (fun ((rel_q, name), dir) -> (Schema.find schema ?rel:rel_q name, dir))
      by
  in
  let compare_rows a b =
    let rec loop = function
      | [] -> 0
      | (i, dir) :: rest ->
        let c = Value.compare a.(i) b.(i) in
        let c = match dir with `Asc -> c | `Desc -> -c in
        if c <> 0 then c else loop rest
    in
    loop keys
  in
  let rows = Array.copy (Relation.rows rel) in
  Array.stable_sort compare_rows rows;
  Relation.create ~check:false schema rows

let limit n rel =
  let rows = Relation.rows rel in
  let n = min n (Array.length rows) in
  Relation.create ~check:false (Relation.schema rel) (Array.sub rows 0 (max n 0))
