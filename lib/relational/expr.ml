type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Attr of string option * string
  | Cmp of cmp * t * t
  | Null_safe_eq of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | Is_null of t
  | Is_not_null of t
  | Is_true of t

(* Constructors *)

let const v = Const v

let int i = Const (Value.Int i)

let float f = Const (Value.Float f)

let str s = Const (Value.Str s)

let bool b = Const (Value.Bool b)

let null = Const Value.Null

let attr ?rel name = Attr (rel, name)

let cmp op a b = Cmp (op, a, b)

let eq a b = cmp Eq a b

let ne a b = cmp Ne a b

let lt a b = cmp Lt a b

let le a b = cmp Le a b

let gt a b = cmp Gt a b

let ge a b = cmp Ge a b

let and_ a b = And (a, b)

let or_ a b = Or (a, b)

let not_ a = Not a

let conjoin = function
  | [] -> bool true
  | e :: rest -> List.fold_left and_ e rest

let disjoin = function
  | [] -> bool false
  | e :: rest -> List.fold_left or_ e rest

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let swap_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | Const (Value.Bool true) -> []
  | e -> [ e ]

(* Analysis *)

let rec fold_exprs f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Attr _ -> acc
  | Cmp (_, a, b) | Null_safe_eq (a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
    fold_exprs f (fold_exprs f acc a) b
  | Not a | Neg a | Is_null a | Is_not_null a | Is_true a -> fold_exprs f acc a

let attrs e =
  fold_exprs (fun acc e -> match e with Attr (r, n) -> (r, n) :: acc | _ -> acc) [] e
  |> List.rev

let qualifiers e =
  let qs =
    fold_exprs
      (fun acc e -> match e with Attr (Some r, _) -> r :: acc | _ -> acc)
      [] e
  in
  List.rev qs |> List.fold_left (fun acc q -> if List.mem q acc then acc else q :: acc) []
  |> List.rev

let references_rel rel e = List.mem rel (qualifiers e)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y && Value.is_null x = Value.is_null y
  | Attr (r1, n1), Attr (r2, n2) -> r1 = r2 && n1 = n2
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Null_safe_eq (a1, b1), Null_safe_eq (a2, b2)
  | And (a1, b1), And (a2, b2)
  | Or (a1, b1), Or (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Arith (o1, a1, b1), Arith (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Not x, Not y | Neg x, Neg y -> equal x y
  | Is_null x, Is_null y | Is_not_null x, Is_not_null y | Is_true x, Is_true y -> equal x y
  | ( ( Const _ | Attr _ | Cmp _ | Null_safe_eq _ | And _ | Or _ | Not _ | Arith _ | Neg _
      | Is_null _ | Is_not_null _ | Is_true _ ),
      _ ) ->
    false

let rec map_attrs f = function
  | Const _ as e -> e
  | Attr (r, n) -> f (r, n)
  | Cmp (op, a, b) -> Cmp (op, map_attrs f a, map_attrs f b)
  | Null_safe_eq (a, b) -> Null_safe_eq (map_attrs f a, map_attrs f b)
  | And (a, b) -> And (map_attrs f a, map_attrs f b)
  | Or (a, b) -> Or (map_attrs f a, map_attrs f b)
  | Not a -> Not (map_attrs f a)
  | Arith (op, a, b) -> Arith (op, map_attrs f a, map_attrs f b)
  | Neg a -> Neg (map_attrs f a)
  | Is_null a -> Is_null (map_attrs f a)
  | Is_not_null a -> Is_not_null (map_attrs f a)
  | Is_true a -> Is_true (map_attrs f a)

let rewrite_qualifier ~from_rel ~to_rel e =
  map_attrs
    (fun (r, n) -> if r = Some from_rel then Attr (Some to_rel, n) else Attr (r, n))
    e

(* Resolution: innermost frame (highest index) wins. *)

let resolve frames (rel, name) =
  let rec loop i =
    if i < 0 then None
    else
      match Schema.find_opt frames.(i) ?rel name with
      | Some pos -> Some (i, pos)
      | None -> loop (i - 1)
  in
  loop (Array.length frames - 1)

let resolve_exn frames (rel, name) =
  match resolve frames (rel, name) with
  | Some slot -> slot
  | None ->
    let shown = match rel with None -> name | Some r -> r ^ "." ^ name in
    raise (Schema.Unknown_attribute shown)

let refs_resolvable frames e =
  List.for_all (fun r -> resolve frames r <> None) (attrs e)

(* Typing.

   [infer_diag] is the primary implementation: it returns a structured
   {!Diag.t} instead of raising, so analysis passes can collect several
   findings and keep going.  The legacy [infer] / [typecheck_bool]
   wrappers re-raise the historical exceptions ([Value.Type_error],
   [Schema.Unknown_attribute], [Schema.Ambiguous_attribute]) for the
   evaluation paths that still want failure-by-exception. *)

let ( let* ) = Result.bind

let type_diag ?path ?subject ~code fmt =
  Format.kasprintf (fun m -> Error (Diag.error ?path ?subject ~code m)) fmt

let resolve_diag ~path frames (rel, name) =
  match resolve frames (rel, name) with
  | Some slot -> Ok slot
  | None ->
    let shown = match rel with None -> name | Some r -> r ^ "." ^ name in
    type_diag ~path ~subject:shown ~code:"SCH001" "unknown attribute %s" shown
  | exception Schema.Ambiguous_attribute shown ->
    type_diag ~path ~subject:shown ~code:"SCH002" "ambiguous attribute %s" shown

let unify_numeric_diag ~path op a b =
  match a, b with
  | None, other | other, None -> (
    match other with
    | None -> Ok None
    | Some (Value.Tint | Value.Tfloat) -> Ok other
    | Some ty ->
      type_diag ~path ~code:"TYP002" "arithmetic %s on non-numeric type %s" op
        (Value.ty_to_string ty))
  | Some Value.Tint, Some Value.Tint -> Ok (Some Value.Tint)
  | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) ->
    Ok (Some Value.Tfloat)
  | Some ty, Some ty' ->
    type_diag ~path ~code:"TYP002" "arithmetic %s on types %s and %s" op
      (Value.ty_to_string ty) (Value.ty_to_string ty')

let comparable a b =
  match a, b with
  | None, _ | _, None -> true
  | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) -> true
  | Some Value.Tstring, Some Value.Tstring -> true
  | Some Value.Tbool, Some Value.Tbool -> true
  | Some _, Some _ -> false

let require_bool_diag ~path context = function
  | None | Some Value.Tbool -> Ok ()
  | Some ty ->
    type_diag ~path ~code:"TYP001" "%s: expected boolean, got %s" context
      (Value.ty_to_string ty)

let rec infer_d ~path frames e =
  match e with
  | Const v -> Ok (Value.ty_of v)
  | Attr (rel, name) ->
    let* fi, pos = resolve_diag ~path frames (rel, name) in
    Ok (Some (Schema.attr_at frames.(fi) pos).Schema.ty)
  | Cmp (op, a, b) ->
    let* ta = infer_d ~path frames a in
    let* tb = infer_d ~path frames b in
    if not (comparable ta tb) then
      type_diag ~path ~code:"TYP002" "comparison %s between incompatible types"
        (cmp_to_string op)
    else Ok (Some Value.Tbool)
  | Null_safe_eq (a, b) ->
    let* ta = infer_d ~path frames a in
    let* tb = infer_d ~path frames b in
    if not (comparable ta tb) then
      type_diag ~path ~code:"TYP002" "null-safe = between incompatible types"
    else Ok (Some Value.Tbool)
  | And (a, b) | Or (a, b) ->
    let* ta = infer_d ~path frames a in
    let* () = require_bool_diag ~path "and/or" ta in
    let* tb = infer_d ~path frames b in
    let* () = require_bool_diag ~path "and/or" tb in
    Ok (Some Value.Tbool)
  | Not a | Is_true a ->
    let* ta = infer_d ~path frames a in
    let* () = require_bool_diag ~path "not/is-true" ta in
    Ok (Some Value.Tbool)
  | Arith (op, a, b) ->
    let name =
      match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
    in
    let* ta = infer_d ~path frames a in
    let* tb = infer_d ~path frames b in
    unify_numeric_diag ~path name ta tb
  | Neg a ->
    let* ta = infer_d ~path frames a in
    unify_numeric_diag ~path "unary -" ta (Some Value.Tint)
  | Is_null a | Is_not_null a ->
    let* _ = infer_d ~path frames a in
    Ok (Some Value.Tbool)

let infer_diag ?(path = []) frames e = infer_d ~path frames e

let typecheck_bool_diag ?(path = []) frames e =
  match
    let* ty = infer_d ~path frames e in
    require_bool_diag ~path "predicate" ty
  with
  | Ok () -> []
  | Error d -> [ d ]

(* The legacy exception corresponding to a diagnostic this module (or the
   plan-schema inference built on it) produced. *)
let raise_diag (d : Diag.t) : 'a =
  let subject = match d.Diag.subject with Some s -> s | None -> d.Diag.message in
  match d.Diag.code with
  | "SCH001" -> raise (Schema.Unknown_attribute subject)
  | "SCH002" -> raise (Schema.Ambiguous_attribute subject)
  | "SCH003" -> invalid_arg d.Diag.message
  | code when String.length code >= 3 && String.sub code 0 3 = "TYP" ->
    raise (Value.Type_error d.Diag.message)
  | _ -> raise (Diag.Fail d)

let infer frames e =
  match infer_d ~path:[] frames e with Ok ty -> ty | Error d -> raise_diag d

let typecheck_bool frames e =
  match
    let* ty = infer_d ~path:[] frames e in
    require_bool_diag ~path:[] "predicate" ty
  with
  | Ok () -> ()
  | Error d -> raise_diag d

(* Compilation *)

(* Shared boolean values: comparisons run in the engines' innermost
   loops, so the results must not allocate. *)
let value_true = Value.Bool true

let value_false = Value.Bool false

let value_of_bool b = if b then value_true else value_false

let eval_cmp op a b =
  match Value.cmp3 a b with
  | None -> Value.Null
  | Some c ->
    let holds =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    value_of_bool holds

let to_bool3 = function
  | Value.Bool true -> Bool3.True
  | Value.Bool false -> Bool3.False
  | Value.Null -> Bool3.Unknown
  | v -> Value.type_error "expected boolean, got %s" (Value.to_string v)

let of_bool3 = function
  | Bool3.True -> value_true
  | Bool3.False -> value_false
  | Bool3.Unknown -> Value.Null

let is_true = function Value.Bool true -> true | _ -> false

let apply_cmp = eval_cmp

let rec compile_frames frames e =
  match e with
  | Const v -> fun _ -> v
  | Attr (rel, name) ->
    let fi, pos = resolve_exn frames (rel, name) in
    fun ctx -> ctx.(fi).(pos)
  | Cmp (op, a, b) ->
    let fa = compile_frames frames a and fb = compile_frames frames b in
    fun ctx -> eval_cmp op (fa ctx) (fb ctx)
  | Null_safe_eq (a, b) ->
    let fa = compile_frames frames a and fb = compile_frames frames b in
    fun ctx -> value_of_bool (Value.equal (fa ctx) (fb ctx))
  | And (a, b) ->
    let fa = compile_frames frames a and fb = compile_frames frames b in
    fun ctx ->
      (* Short-circuit on False only: False && x = False regardless of x. *)
      (match fa ctx with
      | Value.Bool false -> value_false
      | va -> of_bool3 (Bool3.and_ (to_bool3 va) (to_bool3 (fb ctx))))
  | Or (a, b) ->
    let fa = compile_frames frames a and fb = compile_frames frames b in
    fun ctx ->
      (match fa ctx with
      | Value.Bool true -> value_true
      | va -> of_bool3 (Bool3.or_ (to_bool3 va) (to_bool3 (fb ctx))))
  | Not (Is_true a) ->
    (* Collapse the ALL-kill pattern ¬(e IS TRUE) into one 2VL test. *)
    let fa = compile_frames frames a in
    fun ctx -> value_of_bool (not (is_true (fa ctx)))
  | Not a ->
    let fa = compile_frames frames a in
    fun ctx -> of_bool3 (Bool3.not_ (to_bool3 (fa ctx)))
  | Arith (op, a, b) ->
    let fa = compile_frames frames a and fb = compile_frames frames b in
    let f =
      match op with
      | Add -> Value.add
      | Sub -> Value.sub
      | Mul -> Value.mul
      | Div -> Value.div
      | Mod -> Value.modulo
    in
    fun ctx -> f (fa ctx) (fb ctx)
  | Neg a ->
    let fa = compile_frames frames a in
    fun ctx -> Value.neg (fa ctx)
  | Is_null a ->
    let fa = compile_frames frames a in
    fun ctx -> value_of_bool (Value.is_null (fa ctx))
  | Is_not_null a ->
    let fa = compile_frames frames a in
    fun ctx -> value_of_bool (not (Value.is_null (fa ctx)))
  | Is_true a ->
    let fa = compile_frames frames a in
    fun ctx -> value_of_bool (is_true (fa ctx))

let compile schema e =
  let f = compile_frames [| schema |] e in
  let ctx = [| Tuple.empty |] in
  fun t ->
    ctx.(0) <- t;
    f ctx

let compile2 ~left ~right e =
  let f = compile_frames [| left; right |] e in
  let ctx = [| Tuple.empty; Tuple.empty |] in
  fun l r ->
    ctx.(0) <- l;
    ctx.(1) <- r;
    f ctx

(* Join analysis *)

let resolvable_only_in schema other (rel, name) =
  match Schema.find_opt schema ?rel name with
  | exception Schema.Ambiguous_attribute _ -> None
  | None -> None
  | Some pos -> (
    match Schema.find_opt other ?rel name with
    | exception Schema.Ambiguous_attribute _ -> None
    | Some _ -> None
    | None -> Some pos)

let split_equi ~left ~right e =
  let classify conjunct =
    match conjunct with
    | Cmp (Eq, Attr (ar, an), Attr (br, bn)) -> (
      let a = (ar, an) and b = (br, bn) in
      match resolvable_only_in left right a, resolvable_only_in right left b with
      | Some la, Some rb -> Some (la, rb)
      | _ -> (
        match resolvable_only_in left right b, resolvable_only_in right left a with
        | Some lb, Some ra -> Some (lb, ra)
        | _ -> None))
    | _ -> None
  in
  let pairs, residual =
    List.fold_left
      (fun (pairs, residual) conjunct ->
        match classify conjunct with
        | Some pair -> (pair :: pairs, residual)
        | None -> (pairs, conjunct :: residual))
      ([], []) (conjuncts e)
  in
  let residual =
    match residual with [] -> None | cs -> Some (conjoin (List.rev cs))
  in
  (List.rev pairs, residual)

let split_on outer ~local e =
  let local_frames = [| local |] in
  let all_frames = Array.append outer [| local |] in
  let is_local conjunct = refs_resolvable local_frames conjunct in
  let locals, correlated =
    List.partition
      (fun c ->
        if is_local c then true
        else if refs_resolvable all_frames c then false
        else
          let missing =
            List.filter (fun r -> resolve all_frames r = None) (attrs c)
          in
          let shown =
            match missing with
            | (Some r, n) :: _ -> r ^ "." ^ n
            | (None, n) :: _ -> n
            | [] -> "?"
          in
          raise (Schema.Unknown_attribute shown))
      (conjuncts e)
  in
  let opt = function [] -> None | cs -> Some (conjoin cs) in
  (opt locals, opt correlated)

(* Printing *)

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Attr (None, n) -> Format.pp_print_string ppf n
  | Attr (Some r, n) -> Format.fprintf ppf "%s.%s" r n
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_to_string op) pp b
  | Null_safe_eq (a, b) -> Format.fprintf ppf "(%a <=> %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | Arith (op, a, b) ->
    let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%" in
    Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
  | Is_not_null a -> Format.fprintf ppf "(%a IS NOT NULL)" pp a
  | Is_true a -> Format.fprintf ppf "(%a IS TRUE)" pp a

let to_string e = Format.asprintf "%a" pp e
