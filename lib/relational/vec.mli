(** Growable arrays.

    A small dynamic-array implementation used throughout the engine to
    accumulate tuples without intermediate lists.  A [dummy] element is
    required at creation time to fill unused capacity (OCaml arrays cannot
    be resized in place and have no uninitialised cells). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [capacity] pre-allocates. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument if the index is out of bounds. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array
(** A fresh array holding exactly the pushed elements. *)

val to_list : 'a t -> 'a list

val of_array : dummy:'a -> 'a array -> 'a t

val blit : 'a array -> int -> 'a t -> int -> int -> unit
(** [blit src srcoff dst dstoff len] copies [len] elements of the array
    [src] starting at [srcoff] into the vector at [dstoff], growing it as
    needed.  [dstoff] may not exceed [length dst] (no holes).  This is
    the bulk path used by chunked accumulation — one [Array.blit] per
    batch instead of a push per element.
    @raise Invalid_argument on an out-of-bounds range. *)

val append : 'a t -> 'a t -> unit
(** [append dst src] appends every element of [src] onto [dst] with a
    single blit. *)
