(** Tuple batches and pull-based streams of them.

    A {!t} is a read-only window ([off], [len]) over a backing tuple
    array, so slicing a relation or a decoded heap-file page into chunks
    never copies rows.  A {!Source.t} is a pull-based stream of chunks —
    the unit of work of the streaming executor: operators consume a
    source chunk-at-a-time instead of materializing whole relations
    between plan nodes.

    Chunks alias their backing array; treat the rows as immutable, as
    with {!Relation.rows}. *)

type t

val default_rows : int
(** Rows per chunk when a relation is sliced ([1024]). *)

val of_array : ?off:int -> ?len:int -> Schema.t -> Tuple.t array -> t
(** A window over [buffer]; defaults cover the whole array (zero-copy).
    @raise Invalid_argument if the range is out of bounds. *)

val of_rows : Schema.t -> Tuple.t array -> t
(** The whole array as one chunk. *)

val whole : Relation.t -> t
(** A relation's rows as one chunk (zero-copy). *)

val schema : t -> Schema.t

val length : t -> int

val is_empty : t -> bool

val buffer : t -> Tuple.t array
(** The backing array — rows live at [offset .. offset + length - 1].
    Exposed so hot accumulation loops (GMDJ) can index directly. *)

val offset : t -> int

val get : t -> int -> Tuple.t
(** @raise Invalid_argument if the index is out of bounds. *)

val with_schema : Schema.t -> t -> t
(** Re-label the rows (e.g. alias renaming) without copying.
    @raise Invalid_argument on arity mismatch. *)

val iter : (Tuple.t -> unit) -> t -> unit

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val to_rows : t -> Tuple.t array
(** The chunk's rows; the backing array itself when the window covers
    it entirely, a fresh copy otherwise. *)

val to_relation : t -> Relation.t

(** Pull-based chunk streams: [next] yields chunks until [None], after
    which the source has closed itself.  [close] is idempotent and safe
    mid-stream (used for early exit, e.g. GMDJ completion). *)
module Source : sig
  type chunk = t

  type t

  val create : ?close:(unit -> unit) -> schema:Schema.t -> (unit -> chunk option) -> t
  (** [create ~schema next] wraps a pull function.  [close] runs exactly
      once — on [close], or when [next] first returns [None]. *)

  val schema : t -> Schema.t

  val next : t -> chunk option

  val close : t -> unit

  val of_relation : ?chunk_rows:int -> Relation.t -> t
  (** Stream a relation's rows in windows of [chunk_rows] (zero-copy).
      Until the first pull, {!origin} exposes the relation itself so
      consumers that want the whole thing can skip re-collection. *)

  val empty : Schema.t -> t

  val origin : t -> Relation.t option
  (** [Some r] iff this source is an unconsumed whole-relation stream
      over [r] — the materialization shortcut: [to_relation] returns [r]
      without copying, and executors can treat the input as already
      materialized. *)

  val fold : ('a -> chunk -> 'a) -> 'a -> t -> 'a
  (** Drains the source (and hence closes it). *)

  val iter : (chunk -> unit) -> t -> unit

  val map : ?schema:Schema.t -> (chunk -> chunk) -> t -> t
  (** Per-chunk transform; empty result chunks are skipped.  [schema]
      defaults to the input's. *)

  val concat : t -> t -> t
  (** All chunks of the first source, then all of the second.
      @raise Invalid_argument on arity mismatch. *)

  val tap : (int -> unit) -> t -> t
  (** Observe the row count of every chunk pulled through, preserving
      the {!origin} shortcut (a shortcut consumer sees no chunks). *)

  val to_relation : t -> Relation.t
  (** Drain into a relation — the {!origin} relation itself when the
      source is an untouched whole-relation stream. *)
end

(** Exchange: partition one chunk stream across N OCaml domains.

    The coordinator owns the pull side (so storage scans, buffer pools
    and the metrics registry stay single-domain) and routes chunks to
    [domains] workers over bounded queues — round-robin by default, or
    by a hash of each row when [partition] is given (equal keys always
    meet on the same domain).  Each worker runs [init] / [fold] /
    [finish] entirely on its own domain, so compiled expression closures
    and hash indexes (which carry private mutable buffers) are built
    where they are used; chunks themselves alias immutable tuple arrays
    and are safe to share.

    Observability contract: workers count into their
    {!Subql_obs.Metrics.Scratch} ([exchange.chunks] / [exchange.rows]
    built in, plus whatever the closures add via [worker_ctx.scratch])
    and trace onto their own domain; at join the coordinator merges
    every scratch into {!Subql_obs.Metrics.default} and absorbs the
    worker spans under its open ["exchange"] span — so no count or span
    is lost, and the registry only ever sees single-domain writes. *)
module Exchange : sig
  type worker_ctx = { index : int; scratch : Subql_obs.Metrics.Scratch.t }

  val fold :
    ?queue_depth:int ->
    ?partition:(Tuple.t -> int) ->
    domains:int ->
    init:(worker_ctx -> 'acc) ->
    fold:('acc -> t -> 'acc) ->
    finish:('acc -> 'res) ->
    Source.t ->
    'res list
  (** Drain the source through [domains] workers and return their
      results in worker order.  [queue_depth] bounds each worker's
      in-flight chunks (default 8), bounding coordinator read-ahead.
      [domains = 1] runs inline on the calling domain — same contract,
      no spawn.  A worker exception is re-raised on the coordinator
      after all domains join; the source is always fully drained.
      @raise Invalid_argument if [domains <= 0]. *)
end
