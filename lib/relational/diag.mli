(** Structured analysis diagnostics.

    Every static check in the repository — expression typing, plan
    schema inference, the nullability dataflow, rewrite verification and
    the lint rules — reports through this one type instead of ad-hoc
    exceptions, so diagnostics can carry a severity, a stable rule code
    (greppable, testable), and the plan path of the offending node.

    Rule-code namespaces:
    - [SCH0xx] — schema errors (unknown/ambiguous/duplicate columns,
      unknown tables);
    - [TYP0xx] — type errors (non-boolean predicates, operand clashes,
      aggregate arguments);
    - [NUL0xx] — NULL-soundness (the NOT IN trap, counting conditions
      over possibly-NULL columns);
    - [VER0xx] — rewrite-verifier violations (schema drift, widened
      nullability);
    - [LNT0xx] — lint findings (cartesian products, uncoalesced GMDJs,
      dead columns, non-neighboring correlation);
    - [TRF0xx] — translation failures surfaced as diagnostics;
    - [ADM0xx] — serving-layer admission control (plan over the memory
      budget, queue-cap shed, submit after shutdown); see
      [Subql_server.Admission];
    - [STO0xx] — storage-codec corruption (unknown value tag, truncated
      payload, tag/column clash under a specialized decode plan); see
      [Subql_storage.Codec];
    - [TYD0xx] — typed-layer errors (unknown column, type or
      nullability mismatch in derived accessors, column used outside
      its DSL scope); see [Subql_typed]. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable rule code, e.g. ["SCH001"] *)
  path : string list;  (** plan path from the root, e.g. [["Select"; "Md.base"]] *)
  message : string;
  subject : string option;  (** the offending column/table/operator, when one exists *)
}

exception Fail of t
(** The structured replacement for [Failure]: raised by entry points
    that cannot return a diagnostic list. *)

val make : ?path:string list -> ?subject:string -> severity -> code:string -> string -> t

val makef :
  ?path:string list ->
  ?subject:string ->
  severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val error : ?path:string list -> ?subject:string -> code:string -> string -> t

val warning : ?path:string list -> ?subject:string -> code:string -> string -> t

val info : ?path:string list -> ?subject:string -> code:string -> string -> t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Total order: errors before warnings before infos, then by path,
    code, message, subject — the deterministic emission order.  Every
    field participates, so [List.sort_uniq compare] is stable against
    input permutation: two structurally different diagnostics can never
    compare equal and have one silently dropped depending on which
    arrived first (which is exactly what happens when worker domains
    race to report). *)

val sort : t list -> t list
(** Sort by {!compare} and drop exact duplicates. *)

(** Per-domain diagnostic buffers, mirroring [Metrics.Scratch]: workers
    append locally without synchronization, the coordinator merges all
    buffers and sorts once.  Because {!compare} is a total order over
    the whole record, the merged output is byte-stable no matter how
    the scheduler interleaved the workers. *)
module Scratch : sig
  type diag = t

  type t

  val create : unit -> t

  val add : t -> diag -> unit

  val add_list : t -> diag list -> unit

  val length : t -> int

  val to_list : t -> diag list
  (** Diagnostics in local insertion order (unsorted, with duplicates). *)

  val merge : t array -> diag list
  (** Concatenate all buffers and {!sort}: deterministic regardless of
      worker scheduling. *)
end

val is_error : t -> bool

val has_errors : t list -> bool

val count : severity -> t list -> int

val path_to_string : string list -> string
(** ["Select/Md.base/Rename"], or ["<root>"] for the empty path. *)

val pp : Format.formatter -> t -> unit
(** One line: [severity[code] path: message]. *)

val to_string : t -> string
