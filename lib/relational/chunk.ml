type t = { schema : Schema.t; buffer : Tuple.t array; off : int; len : int }

let default_rows = 1024

let of_array ?(off = 0) ?len schema buffer =
  let len = match len with Some l -> l | None -> Array.length buffer - off in
  if off < 0 || len < 0 || off + len > Array.length buffer then
    invalid_arg "Chunk.of_array: range out of bounds";
  { schema; buffer; off; len }

let of_rows schema rows = { schema; buffer = rows; off = 0; len = Array.length rows }

let whole r = of_rows (Relation.schema r) (Relation.rows r)

let schema c = c.schema

let length c = c.len

let is_empty c = c.len = 0

let buffer c = c.buffer

let offset c = c.off

let get c i =
  if i < 0 || i >= c.len then invalid_arg "Chunk.get: index out of bounds";
  c.buffer.(c.off + i)

let with_schema schema c =
  if Schema.arity schema <> Schema.arity c.schema then
    invalid_arg "Chunk.with_schema: arity mismatch";
  { c with schema }

let iter f c =
  for i = c.off to c.off + c.len - 1 do
    f c.buffer.(i)
  done

let fold f init c =
  let acc = ref init in
  for i = c.off to c.off + c.len - 1 do
    acc := f !acc c.buffer.(i)
  done;
  !acc

let to_rows c =
  if c.off = 0 && c.len = Array.length c.buffer then c.buffer
  else Array.sub c.buffer c.off c.len

let to_relation c = Relation.create ~check:false c.schema (to_rows c)

module Source = struct
  type chunk = t

  type t = {
    schema : Schema.t;
    mutable next_fn : unit -> chunk option;
    mutable close_fn : unit -> unit;
    mutable origin : Relation.t option;
    mutable closed : bool;
  }

  let create ?(close = fun () -> ()) ~schema next =
    { schema; next_fn = next; close_fn = close; origin = None; closed = false }

  let schema s = s.schema

  let close s =
    if not s.closed then begin
      s.closed <- true;
      s.origin <- None;
      s.next_fn <- (fun () -> None);
      let f = s.close_fn in
      s.close_fn <- (fun () -> ());
      f ()
    end

  let next s =
    s.origin <- None;
    match s.next_fn () with
    | Some _ as r -> r
    | None ->
      close s;
      None

  let origin s = s.origin

  let of_relation ?(chunk_rows = default_rows) r =
    if chunk_rows <= 0 then invalid_arg "Chunk.Source.of_relation: chunk_rows <= 0";
    let rows = Relation.rows r in
    let n = Array.length rows in
    let schema = Relation.schema r in
    let pos = ref 0 in
    let s =
      create ~schema (fun () ->
          if !pos >= n then None
          else begin
            let len = min chunk_rows (n - !pos) in
            let c = { schema; buffer = rows; off = !pos; len } in
            pos := !pos + len;
            Some c
          end)
    in
    s.origin <- Some r;
    s

  let empty schema = create ~schema (fun () -> None)

  let fold f init s =
    let rec loop acc = match next s with None -> acc | Some c -> loop (f acc c) in
    loop init

  let iter f s = fold (fun () c -> f c) () s

  let map ?schema f s =
    let schema = match schema with Some sc -> sc | None -> s.schema in
    let rec pull () =
      match next s with
      | None -> None
      | Some c ->
        let c = f c in
        if is_empty c then pull () else Some c
    in
    create ~schema ~close:(fun () -> close s) pull

  let concat a b =
    if Schema.arity a.schema <> Schema.arity b.schema then
      invalid_arg "Chunk.Source.concat: arity mismatch";
    create ~schema:a.schema
      ~close:(fun () ->
        close a;
        close b)
      (fun () -> match next a with Some _ as r -> r | None -> next b)

  let tap f s =
    let w =
      create ~schema:s.schema
        ~close:(fun () -> close s)
        (fun () ->
          match next s with
          | Some c as r ->
            f (length c);
            r
          | None -> None)
    in
    w.origin <- s.origin;
    w

  let to_relation s =
    match s.origin with
    | Some r ->
      close s;
      r
    | None ->
      let out = Vec.create ~dummy:([||] : Tuple.t) () in
      iter (fun c -> Vec.blit c.buffer c.off out (Vec.length out) c.len) s;
      Relation.create ~check:false s.schema (Vec.to_array out)
end
