type t = { schema : Schema.t; buffer : Tuple.t array; off : int; len : int }

let default_rows = 1024

let of_array ?(off = 0) ?len schema buffer =
  let len = match len with Some l -> l | None -> Array.length buffer - off in
  if off < 0 || len < 0 || off + len > Array.length buffer then
    invalid_arg "Chunk.of_array: range out of bounds";
  { schema; buffer; off; len }

let of_rows schema rows = { schema; buffer = rows; off = 0; len = Array.length rows }

let whole r = of_rows (Relation.schema r) (Relation.rows r)

let schema c = c.schema

let length c = c.len

let is_empty c = c.len = 0

let buffer c = c.buffer

let offset c = c.off

let get c i =
  if i < 0 || i >= c.len then invalid_arg "Chunk.get: index out of bounds";
  c.buffer.(c.off + i)

let with_schema schema c =
  if Schema.arity schema <> Schema.arity c.schema then
    invalid_arg "Chunk.with_schema: arity mismatch";
  { c with schema }

let iter f c =
  for i = c.off to c.off + c.len - 1 do
    f c.buffer.(i)
  done

let fold f init c =
  let acc = ref init in
  for i = c.off to c.off + c.len - 1 do
    acc := f !acc c.buffer.(i)
  done;
  !acc

let to_rows c =
  if c.off = 0 && c.len = Array.length c.buffer then c.buffer
  else Array.sub c.buffer c.off c.len

let to_relation c = Relation.create ~check:false c.schema (to_rows c)

module Source = struct
  type chunk = t

  type t = {
    schema : Schema.t;
    mutable next_fn : unit -> chunk option;
    mutable close_fn : unit -> unit;
    mutable origin : Relation.t option;
    mutable closed : bool;
  }

  let create ?(close = fun () -> ()) ~schema next =
    { schema; next_fn = next; close_fn = close; origin = None; closed = false }

  let schema s = s.schema

  let close s =
    if not s.closed then begin
      s.closed <- true;
      s.origin <- None;
      s.next_fn <- (fun () -> None);
      let f = s.close_fn in
      s.close_fn <- (fun () -> ());
      f ()
    end

  let next s =
    s.origin <- None;
    match s.next_fn () with
    | Some _ as r -> r
    | None ->
      close s;
      None

  let origin s = s.origin

  let of_relation ?(chunk_rows = default_rows) r =
    if chunk_rows <= 0 then invalid_arg "Chunk.Source.of_relation: chunk_rows <= 0";
    let rows = Relation.rows r in
    let n = Array.length rows in
    let schema = Relation.schema r in
    let pos = ref 0 in
    let s =
      create ~schema (fun () ->
          if !pos >= n then None
          else begin
            let len = min chunk_rows (n - !pos) in
            let c = { schema; buffer = rows; off = !pos; len } in
            pos := !pos + len;
            Some c
          end)
    in
    s.origin <- Some r;
    s

  let empty schema = create ~schema (fun () -> None)

  let fold f init s =
    let rec loop acc = match next s with None -> acc | Some c -> loop (f acc c) in
    loop init

  let iter f s = fold (fun () c -> f c) () s

  let map ?schema f s =
    let schema = match schema with Some sc -> sc | None -> s.schema in
    let rec pull () =
      match next s with
      | None -> None
      | Some c ->
        let c = f c in
        if is_empty c then pull () else Some c
    in
    create ~schema ~close:(fun () -> close s) pull

  let concat a b =
    if Schema.arity a.schema <> Schema.arity b.schema then
      invalid_arg "Chunk.Source.concat: arity mismatch";
    create ~schema:a.schema
      ~close:(fun () ->
        close a;
        close b)
      (fun () -> match next a with Some _ as r -> r | None -> next b)

  let tap f s =
    let w =
      create ~schema:s.schema
        ~close:(fun () -> close s)
        (fun () ->
          match next s with
          | Some c as r ->
            f (length c);
            r
          | None -> None)
    in
    w.origin <- s.origin;
    w

  let to_relation s =
    match s.origin with
    | Some r ->
      close s;
      r
    | None ->
      let out = Vec.create ~dummy:([||] : Tuple.t) () in
      iter (fun c -> Vec.blit c.buffer c.off out (Vec.length out) c.len) s;
      Relation.create ~check:false s.schema (Vec.to_array out)
end

(* ------------------------------------------------------------------ *)
(* Exchange: fan a chunk stream out over OCaml domains                  *)
(* ------------------------------------------------------------------ *)

module Exchange = struct
  type worker_ctx = { index : int; scratch : Subql_obs.Metrics.Scratch.t }

  (* Bounded single-producer queue: the coordinator pushes, one worker
     pops.  [None] is the end-of-stream marker, pushed once per worker. *)
  type 'a queue = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    items : 'a Queue.t;
    cap : int;
  }

  let queue_create cap =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      items = Queue.create ();
      cap;
    }

  let queue_push q x =
    Mutex.lock q.mutex;
    while Queue.length q.items >= q.cap do
      Condition.wait q.nonfull q.mutex
    done;
    Queue.add x q.items;
    Condition.signal q.nonempty;
    Mutex.unlock q.mutex

  let queue_pop q =
    Mutex.lock q.mutex;
    while Queue.is_empty q.items do
      Condition.wait q.nonempty q.mutex
    done;
    let x = Queue.take q.items in
    Condition.signal q.nonfull;
    Mutex.unlock q.mutex;
    x

  let default_queue_depth = 8

  (* Per-chunk worker bookkeeping, counted into the worker's scratch so
     the registry (single-domain) is never touched off-coordinator. *)
  let count_chunk scratch c =
    Subql_obs.Metrics.Scratch.incr scratch "exchange.chunks";
    Subql_obs.Metrics.Scratch.incr ~by:(length c) scratch "exchange.rows"

  (* The worker loop: runs [init] / [fold] / [finish] entirely on its own
     domain (so compiled closures with private mutable buffers are built
     where they are used), draining its queue even after a failure so
     the coordinator can never block pushing to a dead worker. *)
  let worker_body ~trace_on ~init ~fold ~finish idx q () =
    let ctx = { index = idx; scratch = Subql_obs.Metrics.Scratch.create () } in
    Subql_obs.Trace.set_enabled trace_on;
    let drain () =
      let rec skip () = match queue_pop q with None -> () | Some _ -> skip () in
      skip ()
    in
    let result =
      match
        Subql_obs.Trace.with_
          ~attrs:[ ("worker", string_of_int idx) ]
          "exchange.worker"
          (fun () ->
            let acc = ref (init ctx) in
            let rec loop () =
              match queue_pop q with
              | None -> ()
              | Some c ->
                count_chunk ctx.scratch c;
                acc := fold !acc c;
                loop ()
            in
            loop ();
            finish !acc)
      with
      | r -> Ok r
      | exception e ->
        drain ();
        Error e
    in
    (result, ctx.scratch, Subql_obs.Trace.drain_local ())

  (* Re-chunk rows routed to one worker by a partition function: buffer
     until a full chunk accumulates, so workers still see batch-sized
     units of work. *)
  let flush_batch schema push batch =
    if Vec.length batch > 0 then begin
      push (Some (of_rows schema (Vec.to_array batch)));
      Vec.clear batch
    end

  let fold ?(queue_depth = default_queue_depth) ?partition ~domains ~init ~fold:step
      ~finish source =
    if domains <= 0 then invalid_arg "Chunk.Exchange.fold: domains must be positive";
    if domains = 1 then begin
      (* Inline fast path: same contract, no spawn.  Spans nest
         naturally and the scratch merges at the span close. *)
      let ctx = { index = 0; scratch = Subql_obs.Metrics.Scratch.create () } in
      let result =
        Subql_obs.Trace.with_
          ~attrs:[ ("domains", "1") ]
          "exchange"
          (fun () ->
            let acc = ref (init ctx) in
            Source.iter
              (fun c ->
                count_chunk ctx.scratch c;
                acc := step !acc c)
              source;
            finish !acc)
      in
      Subql_obs.Metrics.Scratch.merge_into Subql_obs.Metrics.default ctx.scratch;
      [ result ]
    end
    else
      Subql_obs.Trace.with_
        ~attrs:[ ("domains", string_of_int domains) ]
        "exchange"
      @@ fun () ->
      let trace_on = Subql_obs.Trace.enabled () in
      let queues = Array.init domains (fun _ -> queue_create queue_depth) in
      let handles =
        Array.mapi
          (fun i q ->
            Domain.spawn (worker_body ~trace_on ~init ~fold:step ~finish i q))
          queues
      in
      let schema = Source.schema source in
      let feed () =
        match partition with
        | None ->
          (* Round-robin whole chunks: zero-copy, order-insensitive
             consumers only (accumulator merges are commutative). *)
          let turn = ref 0 in
          Source.iter
            (fun c ->
              queue_push queues.(!turn mod domains) (Some c);
              incr turn)
            source
        | Some key ->
          (* Hash on a key: split each chunk's rows by owner and ship
             batch-sized sub-chunks, so equal keys meet on one domain. *)
          let batches = Array.init domains (fun _ -> Vec.create ~dummy:[||] ()) in
          Source.iter
            (fun c ->
              iter
                (fun row ->
                  let owner = (key row land max_int) mod domains in
                  let batch = batches.(owner) in
                  Vec.push batch row;
                  if Vec.length batch >= default_rows then
                    flush_batch schema (queue_push queues.(owner)) batch)
                c)
            source;
          Array.iteri
            (fun i batch -> flush_batch schema (queue_push queues.(i)) batch)
            batches
      in
      let feed_error = match feed () with () -> None | exception e -> Some e in
      Array.iter (fun q -> queue_push q None) queues;
      let results = Array.map Domain.join handles in
      (* Workers joined: merge their scratches and spans on the
         coordinator while the exchange span is still open. *)
      Array.iter
        (fun (_, scratch, spans) ->
          Subql_obs.Metrics.Scratch.merge_into Subql_obs.Metrics.default scratch;
          Subql_obs.Trace.absorb spans)
        results;
      (match feed_error with Some e -> raise e | None -> ());
      Array.to_list
        (Array.map
           (fun (r, _, _) -> match r with Ok v -> v | Error e -> raise e)
           results)
end
