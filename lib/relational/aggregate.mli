(** SQL aggregate functions with standard NULL semantics.

    [Count_star] counts rows; [Count e] counts rows where [e] is not
    NULL; [Sum]/[Min]/[Max]/[Avg] ignore NULLs and yield NULL on an
    empty (or all-NULL) input — the behaviour the paper's ALL-vs-max
    footnote hinges on.  [First e] yields the first non-NULL value of
    [e] in detail arrival order (NULL on an empty or all-NULL input):
    its accumulator merge is associative and has an identity but is
    {e not} commutative, so it is only safe single-domain — the
    [Mergeable] certificate pass exists to keep it (and anything like
    it) out of exchange-parallel plans. *)

type func =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t
  | First of Expr.t

type spec = { func : func; name : string }
(** [name] is the output column name (the [f(y) → fy] renaming). *)

val count_star : string -> spec
val count : Expr.t -> string -> spec
val sum : Expr.t -> string -> spec
val min_ : Expr.t -> string -> spec
val max_ : Expr.t -> string -> spec
val avg : Expr.t -> string -> spec
val first : Expr.t -> string -> spec

val output_ty : Schema.t array -> spec -> Value.ty
(** Result type of the aggregate over rows of the innermost frame. *)

val func_to_string : func -> string

val pp_spec : Format.formatter -> spec -> unit

(** {1 Accumulators}

    [compile frames spec] resolves the aggregated expression once;
    [make compiled] then creates a fresh mutable accumulator.  [step]
    feeds one tuple stack (innermost frame = the detail tuple);
    [value] reads off the current aggregate. *)

type compiled

type acc

val compile : Schema.t array -> spec -> compiled

val make : compiled -> acc

val step : acc -> Tuple.t array -> unit

val step_back : acc -> Tuple.t array -> unit
(** Retract one previously-fed tuple stack — the inverse of {!step},
    used for incremental view maintenance under deletions.  COUNT, SUM
    and AVG are self-inverting (their state nullifies correctly when the
    contribution count returns to zero); MIN, MAX and FIRST are not
    incrementally maintainable downward.
    @raise Invalid_argument for MIN/MAX/FIRST accumulators. *)

val merge : into:acc -> acc -> unit
(** Fold the second accumulator into the first, with [into] taken as
    the earlier partition.  Both must stem from the same [compiled]
    aggregate.  Every standard SQL aggregate state here merges
    commutatively (AVG carries sum and count separately), which is what
    makes partitioned/distributed GMDJ evaluation possible; FIRST
    merges associatively but {e not} commutatively, so it is lawful
    only when partitions are recombined in input order — the
    [Mergeable] analysis certifies exactly this distinction.
    @raise Invalid_argument on accumulators of different kinds. *)

val value : acc -> Value.t
