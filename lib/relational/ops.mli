(** The relational operator suite.

    Every operator is a total function from relations to a relation.
    Join-like operators take a [strategy]: [`Hash] extracts equi-join
    pairs from the condition and probes a hash index (the "indexed"
    plans of the paper's experiments); [`Sort_merge] sorts the right
    side on the equi-keys and binary-searches per left row (the
    sort-merge plans the paper's DBMS fell back to); [`Nested_loop]
    compares every pair (the "no useful index" situation).  All produce
    identical results. *)

type join_strategy = [ `Hash | `Nested_loop | `Sort_merge ]

val select : Expr.t -> Relation.t -> Relation.t
(** Keep the rows on which the predicate is [true] (3VL truncation). *)

val project : (Expr.t * string) list -> Relation.t -> Relation.t
(** Computed projection; output attributes are unqualified. *)

val project_cols :
  ?distinct:bool -> (string option * string) list -> Relation.t -> Relation.t
(** Column projection preserving attribute metadata.  [distinct] removes
    duplicates (NULLs compare equal, as in SQL DISTINCT). *)

val distinct : Relation.t -> Relation.t

val add_rownum : string -> Relation.t -> Relation.t
(** Append an unqualified int column holding the 0-based row position —
    the surrogate key used by outer-join unnesting. *)

val product : Relation.t -> Relation.t -> Relation.t

val join : ?strategy:join_strategy -> Expr.t -> Relation.t -> Relation.t -> Relation.t

val left_outer_join :
  ?strategy:join_strategy -> Expr.t -> Relation.t -> Relation.t -> Relation.t
(** Unmatched left rows are padded with NULLs on the right. *)

val semi_join : ?strategy:join_strategy -> Expr.t -> Relation.t -> Relation.t -> Relation.t
(** Left rows with at least one match; right columns are not emitted. *)

val anti_join : ?strategy:join_strategy -> Expr.t -> Relation.t -> Relation.t -> Relation.t
(** Left rows with no match. *)

val group_by :
  keys:(string option * string) list ->
  aggs:Aggregate.spec list ->
  Relation.t ->
  Relation.t
(** SQL GROUP BY: keys group with NULLs equal; output schema is the key
    attributes followed by one unqualified column per aggregate.
    An empty input yields an empty output. *)

val aggregate_all : Aggregate.spec list -> Relation.t -> Relation.t
(** Aggregation without grouping: always exactly one output row, even on
    empty input (COUNT yields 0, SUM/MIN/MAX/AVG yield NULL). *)

val union_all : Relation.t -> Relation.t -> Relation.t
(** @raise Invalid_argument if the schemas differ positionally. *)

val union : Relation.t -> Relation.t -> Relation.t

val diff_all : Relation.t -> Relation.t -> Relation.t
(** Multiset difference (monus): each right occurrence cancels one left
    occurrence. *)

val diff : Relation.t -> Relation.t -> Relation.t
(** Set difference over distinct rows. *)

val intersect : Relation.t -> Relation.t -> Relation.t
(** Set intersection over distinct rows. *)

val sort :
  by:((string option * string) * [ `Asc | `Desc ]) list -> Relation.t -> Relation.t

val limit : int -> Relation.t -> Relation.t

(** {1 Streaming variants}

    Chunk-at-a-time counterparts used by the streaming executor.  Each
    is the same kernel as the whole-relation operator above — compiled
    once at plan time, applied per chunk — so both paths share one
    implementation of the operator's semantics.

    [select_source] / [project_source] / [project_cols_source] /
    [rename_source] / [add_rownum_source] / [union_all_source] are fully
    pipelined (chunk in, chunk out).  [group_by_source],
    [aggregate_all_source] and [distinct_source] are pipeline breakers
    that still consume their input incrementally: they fold the stream
    into bounded per-group state without materializing the input. *)

val select_source : Expr.t -> Chunk.Source.t -> Chunk.Source.t

val project_source : (Expr.t * string) list -> Chunk.Source.t -> Chunk.Source.t

val project_cols_source : (string option * string) list -> Chunk.Source.t -> Chunk.Source.t

val rename_source : string -> Chunk.Source.t -> Chunk.Source.t
(** Requalify every attribute to the alias, sharing row storage. *)

val add_rownum_source : string -> Chunk.Source.t -> Chunk.Source.t

val union_all_source : Chunk.Source.t -> Chunk.Source.t -> Chunk.Source.t
(** @raise Invalid_argument if the schemas differ positionally. *)

val distinct_source : Chunk.Source.t -> Relation.t

val group_by_source :
  keys:(string option * string) list ->
  aggs:Aggregate.spec list ->
  Chunk.Source.t ->
  Relation.t

val aggregate_all_source : Aggregate.spec list -> Chunk.Source.t -> Relation.t

(** {1 Resumable breaker state}

    The hash state behind DISTINCT and GROUP BY, exposed as first-class
    accumulators: the parallel executor runs one per domain and merges
    them at the exchange ({!Subql_relational.Aggregate.merge} makes
    every aggregate state mergeable), and the spill path freezes them at
    a memory budget and routes overflow rows to temp heap files.  The
    one-shot operators above are thin wrappers over these. *)

module Distinct_acc : sig
  type t

  val create : unit -> t

  val add : t -> Tuple.t -> bool
  (** [true] iff the row was new (it is now remembered). *)

  val mem : t -> Tuple.t -> bool

  val size : t -> int
  (** Distinct rows held. *)

  val merge : into:t -> t -> unit

  val rows : t -> Tuple.t array
  (** Distinct rows in first-seen order. *)
end

module Group_acc : sig
  type t

  val create :
    schema:Schema.t ->
    keys:(string option * string) list ->
    aggs:Aggregate.spec list ->
    t

  val out_schema : t -> Schema.t

  val key_of : t -> Tuple.t -> Tuple.t

  val mem_key : t -> Tuple.t -> bool

  val size : t -> int
  (** Groups held. *)

  val step : t -> Tuple.t -> unit
  (** Fold a row in, creating its group if needed. *)

  val step_existing : t -> Tuple.t -> bool
  (** Fold a row into an already-present group; [false] means the key is
      new and the row was {e not} consumed — the spill overflow test. *)

  val merge : into:t -> t -> unit
  (** Merge another accumulator built from the same schema/keys/aggs.
      Accumulators of keys new to [into] are adopted by reference, so
      the source must not be stepped afterwards. *)

  val result : t -> Relation.t
  (** Groups in first-seen order, keys then aggregate columns. *)
end
