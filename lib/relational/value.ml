type ty = Tint | Tfloat | Tstring | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let ty_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring
  | Bool _ -> Some Tbool

let ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let pp_ty ppf ty = Format.pp_print_string ppf (ty_to_string ty)

let equal_ty (a : ty) (b : ty) = a = b

let conforms v ty =
  match ty_of v with None -> true | Some ty' -> equal_ty ty ty'

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

(* Canonical float rendering: "%g" leaves NaN's sign bit observable
   ("-nan" on most libcs) even though [compare] cannot distinguish NaN
   payloads, so printing would not be a function of the value's
   equivalence class.  Negative zero keeps its sign — it is a genuinely
   different bit pattern, and round-tripping it matters — but every NaN
   prints the one spelling "nan". *)
let float_to_string f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> s
  | Bool b -> string_of_bool b

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* Rank used to order values of different types in the total [compare]. *)
let rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let cmp3 a b =
  match a, b with
  | Null, _ | _, Null -> None
  | (Int _ | Float _), (Int _ | Float _)
  | Str _, Str _
  | Bool _, Bool _ ->
    Some (compare a b)
  | _ ->
    type_error "cannot compare %s with %s" (to_string a) (to_string b)

let arith name int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | Float x, Float y -> Float (float_op x y)
  | Int x, Float y -> Float (float_op (float_of_int x) y)
  | Float x, Int y -> Float (float_op x (float_of_int y))
  | _ -> type_error "%s: expected numeric operands, got %s and %s" name (to_string a) (to_string b)

let add a b = arith "+" ( + ) ( +. ) a b

let sub a b = arith "-" ( - ) ( -. ) a b

let mul a b = arith "*" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | _, Int 0 -> Null
  | _, Float f when f = 0.0 -> Null
  | _ -> arith "/" ( / ) ( /. ) a b

let modulo a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> Null
  | Int x, Int y -> Int (x mod y)
  | _ -> type_error "%%: expected int operands, got %s and %s" (to_string a) (to_string b)

let neg = function
  | Null -> Null
  | Int i -> Int (-i)
  | Float f -> Float (-.f)
  | (Str _ | Bool _) as v -> type_error "negation: expected numeric operand, got %s" (to_string v)

let to_csv_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> if Float.is_nan f then "nan" else Printf.sprintf "%h" f
  | Str s -> s
  | Bool b -> string_of_bool b

let of_csv_string ty s =
  if s = "" then Null
  else
    match ty with
    | Tint -> (
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> type_error "invalid int cell %S" s)
    | Tfloat -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> type_error "invalid float cell %S" s)
    | Tstring -> Str s
    | Tbool -> (
      match bool_of_string_opt s with
      | Some b -> Bool b
      | None -> type_error "invalid bool cell %S" s)
