(** A minimal JSON value type and serializer.

    The observability exports (Chrome traces, benchmark reports) need
    well-formed JSON but no parsing and no external dependency, so this
    module provides just the emitting half.  Strings are escaped per
    RFC 8259; non-finite floats, which JSON cannot represent, serialize
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val escape : string -> string
(** The RFC 8259 escaped form of a string, without the surrounding
    quotes. *)
