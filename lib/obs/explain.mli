(** The EXPLAIN ANALYZE plan annotation: a tree mirroring the physical
    plan where every operator carries what actually happened — input and
    output cardinalities, invocation counts, elapsed time, buffer-pool
    activity, and operator-specific attributes (a GMDJ node reports its
    detail-scan passes, making Prop. 4.1 coalescing directly visible as
    "1 scan vs k").

    The tree is built by the instrumented evaluator
    ([Subql.Eval.eval_analyzed]); this module only defines the shape and
    the renderers so it stays engine-agnostic. *)

type node = {
  label : string;  (** operator rendering *)
  rows_in : int;  (** total rows received from the children *)
  rows_out : int;
  calls : int;  (** times the operator ran (1 for tree evaluation) *)
  elapsed_s : float;  (** time in this operator, children excluded *)
  pool_hits : int;  (** buffer-pool hits attributable to this operator *)
  pool_reads : int;  (** buffer-pool misses (page loads) *)
  attrs : (string * string) list;  (** operator-specific annotations *)
  children : node list;
}

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Pre-order fold over the tree. *)

val total_elapsed : node -> float
(** Sum of per-node self times. *)

val attr : node -> string -> string option
(** The value of an attribute on this node, if present. *)

val sum_attr : node -> string -> int
(** Sum of an integer-valued attribute over the whole tree; nodes
    without the attribute (or with a non-integer value) contribute 0.
    [sum_attr t "detail-scans"] is the plan's total detail passes. *)

val pp : Format.formatter -> node -> unit
(** The annotated plan tree, one operator per line. *)

val to_json : node -> Json.t
