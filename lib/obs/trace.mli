(** Hierarchical trace spans with a Chrome-tracing exporter.

    A span records a name, string attributes, a start timestamp and a
    duration; spans nest by dynamic scope ({!with_}).  Tracing is off by
    default and {!with_} is then a direct tail call of the thunk, so
    leaving instrumentation in hot paths costs nearly nothing.

    All trace state is {e domain-local} ([Domain.DLS]): every domain
    runs its own independent span machine, so parallel exchange workers
    can trace on their own domains without racing the coordinator.  A
    worker enables tracing for itself, collects its completed spans with
    {!drain_local}, and the coordinator attaches them under its open
    span with {!absorb} when the workers join.

    Completed root spans accumulate per domain until {!clear};
    {!to_chrome_json} renders them in the Chrome [chrome://tracing] /
    Perfetto array-of-events JSON format using complete ("ph":"X")
    events with microsecond timestamps. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** [Unix.gettimeofday] in microseconds *)
  dur_us : float;
  children : span list;  (** in start order *)
}

val set_enabled : bool -> unit

val enabled : unit -> bool

val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span named [name].  The span is completed
    even when the thunk raises.  When tracing is disabled this is just
    [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when tracing
    is disabled or no span is open.  Lets an operator report values it
    only knows at the end (output cardinality, scan counts). *)

val roots : unit -> span list
(** Completed top-level spans, oldest first. *)

val clear : unit -> unit
(** Drop completed spans (open spans are unaffected). *)

val drain_local : unit -> span list
(** Take (and clear) the calling domain's completed top-level spans,
    oldest first — how an exchange worker hands its spans to the
    coordinator at join time. *)

val absorb : span list -> unit
(** Attach already-completed spans (oldest first) as children of the
    calling domain's innermost open span — or as top-level roots when no
    span is open.  The coordinator side of {!drain_local}. *)

val to_chrome_json : unit -> string
(** The completed spans as a Chrome-tracing JSON array. *)

val export : string -> unit
(** Write {!to_chrome_json} to the given path. *)
