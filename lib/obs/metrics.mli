(** A named-metric registry: counters, gauges, and fixed-bucket latency
    histograms.

    All state is plain mutable memory with no atomics — metrics are
    meant to be touched from a single domain (the engine's coordinator
    thread).  Parallel GMDJ workers therefore accumulate into local
    {!Subql_gmdj.Gmdj.stats} records and the coordinator publishes the
    merged totals here.

    Metrics are find-or-create: registering a name twice returns the
    same instrument, so independent modules can share series
    ("storage.buffer_pool.hits") without coordination.  Registering an
    existing name as a different kind raises [Invalid_argument].

    The conventional instance is {!default}; every engine component
    publishes there unless told otherwise. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry the engine publishes into. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find or create a monotonically increasing integer series. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1).  @raise Invalid_argument if [by < 0]. *)

val counter_value : counter -> int

val counter_value_by_name : t -> string -> int
(** 0 when the counter does not exist (or the name is a different
    kind) — lets readers observe series they do not own without
    creating them. *)

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** Find or create a point-in-time float series. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val default_buckets : float list
(** Latency-shaped: 1e-6 .. 10 seconds in decade/half-decade steps. *)

val histogram : ?buckets:float list -> t -> string -> histogram
(** Find or create; [buckets] are upper bounds (sorted and de-duplicated
    internally, an [infinity] overflow bucket is always appended).  When
    the histogram already exists the [buckets] argument is ignored.
    @raise Invalid_argument on an empty or non-finite bucket list. *)

val observe : histogram -> float -> unit
(** Record a value: the first bucket with [value <= upper_bound] is
    incremented (closed upper bounds, Prometheus-style). *)

(** {1 Snapshot, reset, rendering} *)

type histogram_snapshot = {
  upper_bounds : float array;  (** ascending; the last is [infinity] *)
  bucket_counts : int array;  (** per-bucket (non-cumulative) counts *)
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}
(** All series sorted by name.  The snapshot is a deep copy: later
    metric updates do not mutate it. *)

val snapshot : t -> snapshot

val quantile : histogram_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] in [\[0, 1\]]) from
    the bucket counts by linear interpolation inside the containing
    bucket (the Prometheus [histogram_quantile] estimator).  [0.] for an
    empty histogram; the lower edge of the overflow bucket when the
    quantile falls beyond the last finite bound.  The serving loop's
    latency summaries ([server.latency_seconds]) read p50/p99 through
    this.
    @raise Invalid_argument when [q] is outside [\[0, 1\]]. *)

val reset : t -> unit
(** Zero every series (instruments stay registered). *)

(** {1 Per-domain scratch counters}

    The registry itself is single-domain (see the module preamble).
    Parallel sections — exchange workers pulling chunks on their own
    domains — count into a private {!Scratch.t} instead, and the
    coordinator calls {!Scratch.merge_into} after joining the domains
    (at the close of the enclosing span), so the registry only ever sees
    single-domain writes and no count is lost. *)
module Scratch : sig
  type registry := t

  type t

  val create : unit -> t

  val incr : ?by:int -> t -> string -> unit
  (** Add [by] (default 1) to the named counter delta.
      @raise Invalid_argument if [by < 0]. *)

  val counter_value : t -> string -> int
  (** The accumulated delta; 0 for a name never incremented. *)

  val merge_into : registry -> t -> unit
  (** Fold every positive delta into the registry's counters
      (find-or-create, like {!val:counter}). *)
end

val pp : Format.formatter -> t -> unit
(** Plain-text rendering, one series per line. *)

val render : t -> string
