type node = {
  label : string;
  rows_in : int;
  rows_out : int;
  calls : int;
  elapsed_s : float;
  pool_hits : int;
  pool_reads : int;
  attrs : (string * string) list;
  children : node list;
}

let rec fold f acc node = List.fold_left (fold f) (f acc node) node.children

let total_elapsed node = fold (fun acc n -> acc +. n.elapsed_s) 0. node

let attr node key = List.assoc_opt key node.attrs

let sum_attr node key =
  fold
    (fun acc n ->
      match attr n key with
      | Some v -> ( match int_of_string_opt v with Some i -> acc + i | None -> acc)
      | None -> acc)
    0 node

let pp ppf root =
  let rec pp_node indent n =
    let label =
      if String.length n.label > 48 then String.sub n.label 0 45 ^ "..." else n.label
    in
    Format.fprintf ppf "%s-> %-*s rows-in=%-8d rows-out=%-8d calls=%-3d time=%8.3fms  pool: %d hit / %d read"
      (String.make indent ' ')
      (max 1 (50 - indent))
      label n.rows_in n.rows_out n.calls (n.elapsed_s *. 1000.) n.pool_hits n.pool_reads;
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) n.attrs;
    Format.fprintf ppf "@.";
    List.iter (pp_node (indent + 2)) n.children
  in
  pp_node 0 root

let rec to_json n =
  Json.Obj
    [
      ("label", Json.Str n.label);
      ("rows_in", Json.Int n.rows_in);
      ("rows_out", Json.Int n.rows_out);
      ("calls", Json.Int n.calls);
      ("elapsed_s", Json.Float n.elapsed_s);
      ("pool_hits", Json.Int n.pool_hits);
      ("pool_reads", Json.Int n.pool_reads);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) n.attrs));
      ("children", Json.List (List.map to_json n.children));
    ]
