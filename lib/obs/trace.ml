type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;
  dur_us : float;
  children : span list;
}

(* An open span under construction: extra attributes and completed
   children arrive in reverse order. *)
type frame = {
  f_name : string;
  mutable f_attrs : (string * string) list;  (* reversed *)
  f_start_us : float;
  mutable f_children : span list;  (* reversed *)
}

(* All span state is domain-local (one independent trace machine per
   domain), so exchange workers can open spans on their own domains
   without racing the coordinator.  Workers hand their completed spans
   back through {!drain_local}; the coordinator attaches them under its
   open span with {!absorb}. *)
type state = {
  mutable on : bool;
  mutable stack : frame list;
  mutable finished : span list;  (* reversed *)
}

let state_key =
  Domain.DLS.new_key (fun () -> { on = false; stack = []; finished = [] })

let state () = Domain.DLS.get state_key

let set_enabled b = (state ()).on <- b

let enabled () = (state ()).on

let now_us () = Unix.gettimeofday () *. 1e6

let push_completed st span =
  match st.stack with
  | parent :: _ -> parent.f_children <- span :: parent.f_children
  | [] -> st.finished <- span :: st.finished

let with_ ?(attrs = []) name f =
  let st = state () in
  if not st.on then f ()
  else begin
    let frame =
      { f_name = name; f_attrs = List.rev attrs; f_start_us = now_us (); f_children = [] }
    in
    st.stack <- frame :: st.stack;
    Fun.protect
      ~finally:(fun () ->
        (match st.stack with top :: rest when top == frame -> st.stack <- rest | _ -> ());
        push_completed st
          {
            name = frame.f_name;
            attrs = List.rev frame.f_attrs;
            start_us = frame.f_start_us;
            dur_us = now_us () -. frame.f_start_us;
            children = List.rev frame.f_children;
          })
      f
  end

let add_attr key value =
  let st = state () in
  if st.on then
    match st.stack with
    | frame :: _ -> frame.f_attrs <- (key, value) :: frame.f_attrs
    | [] -> ()

let roots () = List.rev (state ()).finished

let clear () = (state ()).finished <- []

let drain_local () =
  let st = state () in
  let spans = List.rev st.finished in
  st.finished <- [];
  spans

let absorb spans =
  let st = state () in
  List.iter (push_completed st) spans

let to_chrome_json () =
  let events = ref [] in
  let rec emit span =
    events :=
      Json.Obj
        [
          ("name", Json.Str span.name);
          ("cat", Json.Str "subql");
          ("ph", Json.Str "X");
          ("ts", Json.Float span.start_us);
          ("dur", Json.Float span.dur_us);
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) span.attrs));
        ]
      :: !events;
    List.iter emit span.children
  in
  List.iter emit (roots ());
  Json.to_string (Json.List (List.rev !events))

let export path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
