type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;
  dur_us : float;
  children : span list;
}

(* An open span under construction: extra attributes and completed
   children arrive in reverse order. *)
type frame = {
  f_name : string;
  mutable f_attrs : (string * string) list;  (* reversed *)
  f_start_us : float;
  mutable f_children : span list;  (* reversed *)
}

let on = ref false

let stack : frame list ref = ref []

let finished : span list ref = ref []  (* reversed *)

let set_enabled b = on := b

let enabled () = !on

let now_us () = Unix.gettimeofday () *. 1e6

let push_completed span =
  match !stack with
  | parent :: _ -> parent.f_children <- span :: parent.f_children
  | [] -> finished := span :: !finished

let with_ ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let frame =
      { f_name = name; f_attrs = List.rev attrs; f_start_us = now_us (); f_children = [] }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with top :: rest when top == frame -> stack := rest | _ -> ());
        push_completed
          {
            name = frame.f_name;
            attrs = List.rev frame.f_attrs;
            start_us = frame.f_start_us;
            dur_us = now_us () -. frame.f_start_us;
            children = List.rev frame.f_children;
          })
      f
  end

let add_attr key value =
  if !on then
    match !stack with
    | frame :: _ -> frame.f_attrs <- (key, value) :: frame.f_attrs
    | [] -> ()

let roots () = List.rev !finished

let clear () = finished := []

let to_chrome_json () =
  let events = ref [] in
  let rec emit span =
    events :=
      Json.Obj
        [
          ("name", Json.Str span.name);
          ("cat", Json.Str "subql");
          ("ph", Json.Str "X");
          ("ts", Json.Float span.start_us);
          ("dur", Json.Float span.dur_us);
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) span.attrs));
        ]
      :: !events;
    List.iter emit span.children
  in
  List.iter emit (roots ());
  Json.to_string (Json.List (List.rev !events))

let export path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
