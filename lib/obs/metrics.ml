type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  upper : float array;  (* ascending, last = infinity *)
  counts : int array;
  mutable n : int;
  mutable total : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let default = create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name make match_existing =
  match Hashtbl.find_opt t.table name with
  | None ->
    let m = make () in
    Hashtbl.replace t.table name m;
    m
  | Some existing -> (
    match match_existing existing with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s" name
           (kind_name existing)))

let counter t name =
  match
    register t name
      (fun () -> Counter { c = 0 })
      (function Counter _ as m -> Some m | _ -> None)
  with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters only go up";
  c.c <- c.c + by

let counter_value c = c.c

let counter_value_by_name t name =
  match Hashtbl.find_opt t.table name with Some (Counter c) -> c.c | _ -> 0

let gauge t name =
  match
    register t name
      (fun () -> Gauge { g = 0. })
      (function Gauge _ as m -> Some m | _ -> None)
  with
  | Gauge g -> g
  | _ -> assert false

let set g v = g.g <- v

let gauge_value g = g.g

let default_buckets =
  [ 1e-6; 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 1e-1; 5e-1; 1.; 5.; 10. ]

let histogram ?(buckets = default_buckets) t name =
  let make () =
    if buckets = [] then invalid_arg "Metrics.histogram: empty bucket list";
    if List.exists (fun b -> not (Float.is_finite b)) buckets then
      invalid_arg "Metrics.histogram: bucket bounds must be finite";
    let upper =
      Array.of_list (List.sort_uniq Float.compare buckets @ [ infinity ])
    in
    Histogram { upper; counts = Array.make (Array.length upper) 0; n = 0; total = 0. }
  in
  match register t name make (function Histogram _ as m -> Some m | _ -> None) with
  | Histogram h -> h
  | _ -> assert false

let observe h v =
  (* First bucket with v <= upper bound; the infinity bucket always matches. *)
  let rec find i = if v <= h.upper.(i) then i else find (i + 1) in
  let i = find 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.total <- h.total +. v

type histogram_snapshot = {
  upper_bounds : float array;
  bucket_counts : int array;
  count : int;
  sum : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let snapshot t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> counters := (name, c.c) :: !counters
      | Gauge g -> gauges := (name, g.g) :: !gauges
      | Histogram h ->
        histograms :=
          ( name,
            {
              upper_bounds = Array.copy h.upper;
              bucket_counts = Array.copy h.counts;
              count = h.n;
              sum = h.total;
            } )
          :: !histograms)
    t.table;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let quantile h q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q must be in [0, 1]";
  if h.count = 0 then 0.
  else begin
    (* Prometheus-style estimator: find the bucket containing the
       q-th observation, interpolate linearly inside it. *)
    let target = q *. float_of_int h.count in
    let n = Array.length h.upper_bounds in
    let rec find i cum =
      let cum' = cum + h.bucket_counts.(i) in
      if float_of_int cum' >= target || i = n - 1 then (i, cum) else find (i + 1) cum'
    in
    let i, before = find 0 0 in
    let lower = if i = 0 then 0. else h.upper_bounds.(i - 1) in
    if not (Float.is_finite h.upper_bounds.(i)) then lower
    else if h.bucket_counts.(i) = 0 then lower
    else
      lower
      +. (h.upper_bounds.(i) -. lower)
         *. ((target -. float_of_int before) /. float_of_int h.bucket_counts.(i))
  end

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.n <- 0;
        h.total <- 0.)
    t.table

(* Per-domain scratch counters for parallel sections.  A registry is
   single-domain mutable state; exchange workers therefore count into a
   private scratch table and the coordinator folds the deltas into the
   registry after joining the domains — at the close of the enclosing
   span, so no count is ever lost or torn. *)
module Scratch = struct
  let registry_incr = incr

  type nonrec t = { deltas : (string, int ref) Hashtbl.t }

  let create () = { deltas = Hashtbl.create 16 }

  let incr ?(by = 1) t name =
    if by < 0 then invalid_arg "Metrics.Scratch.incr: counters only go up";
    match Hashtbl.find_opt t.deltas name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t.deltas name (ref by)

  let counter_value t name =
    match Hashtbl.find_opt t.deltas name with Some r -> !r | None -> 0

  let merge_into registry t =
    Hashtbl.iter
      (fun name r -> if !r > 0 then registry_incr ~by:!r (counter registry name))
      t.deltas
end

let pp ppf t =
  let s = snapshot t in
  List.iter (fun (name, v) -> Format.fprintf ppf "%-44s %d@." name v) s.counters;
  List.iter (fun (name, v) -> Format.fprintf ppf "%-44s %g@." name v) s.gauges;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%-44s count %d, sum %g@." name h.count h.sum;
      Array.iteri
        (fun i c ->
          if c > 0 then
            Format.fprintf ppf "  %-42s %d@."
              (if Float.is_finite h.upper_bounds.(i) then
                 Printf.sprintf "le %g" h.upper_bounds.(i)
               else "le +inf")
              c)
        h.bucket_counts)
    s.histograms

let render t = Format.asprintf "%a" pp t
