(* Seeded arrival generation over the zoo templates: Poisson open-loop
   traces and per-client closed-loop template streams, with a skew knob
   concentrating draws on the shareable same-detail population. *)

type arrival = { at : float; template : string }

let all_templates = lazy (Array.of_list (List.map fst Zoo.queries))

let shareable_templates = lazy (Array.of_list Zoo.same_detail_templates)

let draw_template ~skew rng =
  if skew < 0. || skew > 1. then invalid_arg "Traffic.draw_template: skew must be in [0, 1]";
  if Rng.bernoulli rng skew then Rng.choose rng (Lazy.force shareable_templates)
  else Rng.choose rng (Lazy.force all_templates)

let open_loop ?(seed = 1L) ~rate ~count ~skew () =
  if rate <= 0. then invalid_arg "Traffic.open_loop: rate must be positive";
  if count < 0 then invalid_arg "Traffic.open_loop: count must be non-negative";
  let rng = Rng.create ~seed in
  let now = ref 0. in
  List.init count (fun _ ->
      (* Exponential gap with mean 1/rate; 1 - u keeps the log argument
         in (0, 1] since Rng.float is in [0, 1). *)
      let gap = -.log (1. -. Rng.float rng) /. rate in
      now := !now +. gap;
      { at = !now; template = draw_template ~skew rng })

let closed_loop ?(seed = 1L) ~clients ~per_client ~skew () =
  if clients <= 0 then invalid_arg "Traffic.closed_loop: clients must be positive";
  if per_client < 0 then invalid_arg "Traffic.closed_loop: per_client must be non-negative";
  let root = Rng.create ~seed in
  List.init clients (fun _ ->
      let rng = Rng.split root in
      List.init per_client (fun _ -> draw_template ~skew rng))
