(* Seeded arrival generation over the zoo templates: Poisson open-loop
   traces and per-client closed-loop template streams, with a skew knob
   concentrating draws on the shareable same-detail population. *)

type arrival = { at : float; template : string }

let all_templates = lazy (Array.of_list (List.map fst Zoo.queries))

let shareable_templates = lazy (Array.of_list Zoo.same_detail_templates)

let draw_template ~skew rng =
  if skew < 0. || skew > 1. then invalid_arg "Traffic.draw_template: skew must be in [0, 1]";
  if Rng.bernoulli rng skew then Rng.choose rng (Lazy.force shareable_templates)
  else Rng.choose rng (Lazy.force all_templates)

let open_loop ?(seed = 1L) ~rate ~count ~skew () =
  if rate <= 0. then invalid_arg "Traffic.open_loop: rate must be positive";
  if count < 0 then invalid_arg "Traffic.open_loop: count must be non-negative";
  let rng = Rng.create ~seed in
  let now = ref 0. in
  List.init count (fun _ ->
      (* Exponential gap with mean 1/rate; 1 - u keeps the log argument
         in (0, 1] since Rng.float is in [0, 1). *)
      let gap = -.log (1. -. Rng.float rng) /. rate in
      now := !now +. gap;
      { at = !now; template = draw_template ~skew rng })

type ingest_arrival = { at : float; rows : int }

type mixed = Query of arrival | Append of ingest_arrival

let with_ingest ?(rows = 100) ~every (arrivals : arrival list) =
  if every <= 0. then invalid_arg "Traffic.with_ingest: every must be positive";
  if rows <= 0 then invalid_arg "Traffic.with_ingest: rows must be positive";
  let horizon = List.fold_left (fun acc (a : arrival) -> max acc a.at) 0. arrivals in
  let n_appends = int_of_float (horizon /. every) in
  let appends =
    List.init n_appends (fun i -> Append { at = float_of_int (i + 1) *. every; rows })
  in
  let at = function Query q -> q.at | Append a -> a.at in
  (* Appends sort before queries at the same instant: a query arriving
     exactly when a batch lands reads the post-append state. *)
  List.merge
    (fun a b -> compare (at a, match a with Append _ -> 0 | Query _ -> 1)
                  (at b, match b with Append _ -> 0 | Query _ -> 1))
    (List.map (fun q -> Query q) arrivals)
    appends

let closed_loop ?(seed = 1L) ~clients ~per_client ~skew () =
  if clients <= 0 then invalid_arg "Traffic.closed_loop: clients must be positive";
  if per_client < 0 then invalid_arg "Traffic.closed_loop: per_client must be non-negative";
  let root = Rng.create ~seed in
  List.init clients (fun _ ->
      let rng = Rng.split root in
      List.init per_client (fun _ -> draw_template ~skew rng))
