(** Deterministic traffic generation over the query zoo.

    The serving loop ({!Subql_server}) only pays off when queries arrive
    {e concurrently}: cross-query GMDJ sharing needs same-detail
    templates inside one admitted batch, and the result cache needs
    repeats.  This module produces those streams reproducibly — every
    trace is a pure function of its seed ({!Rng}), so a latency
    measurement can be replayed exactly.

    Two driving disciplines:

    - {b open loop} ({!open_loop}): arrivals are a Poisson process at a
      fixed rate, independent of the server — the classical
      load-vs-latency experiment.  Arrival times are virtual seconds
      from 0; the driver ({!Subql_server.Driver.replay}) interprets
      them.
    - {b closed loop} ({!closed_loop}): a fixed population of clients,
      each submitting its next query only after the previous one
      completes (plus think time) — throughput emerges from the
      server's speed instead of being imposed.

    The [skew] knob clusters draws onto the same-detail template
    population ({!Zoo.same_detail_templates}): at [skew = 1.] every
    query is shareable/cacheable, at [skew = 0.] templates are uniform
    over the whole zoo. *)

type arrival = {
  at : float;  (** virtual arrival time, seconds from trace start *)
  template : string;  (** a {!Zoo} template name *)
}

val draw_template : skew:float -> Rng.t -> string
(** One template draw: with probability [skew] uniform over
    {!Zoo.same_detail_templates}, otherwise uniform over the whole zoo.
    @raise Invalid_argument when [skew] is outside [\[0, 1\]]. *)

val open_loop : ?seed:int64 -> rate:float -> count:int -> skew:float -> unit -> arrival list
(** [count] Poisson arrivals at [rate] per second: inter-arrival gaps
    are exponential with mean [1/rate].  Sorted by arrival time.
    @raise Invalid_argument when [rate <= 0.] or [count < 0]. *)

type ingest_arrival = {
  at : float;  (** virtual arrival time of the append batch *)
  rows : int;  (** rows in the batch *)
}

type mixed = Query of arrival | Append of ingest_arrival
(** One event of an interleaved ingest + query trace. *)

val with_ingest : ?rows:int -> every:float -> arrival list -> mixed list
(** Overlay a deterministic append schedule on a query trace: one
    [rows]-row batch (default 100) every [every] virtual seconds, up to
    the trace horizon.  The result is time-sorted; an append ties ahead
    of a query at the same instant, so that query reads the post-append
    state.
    @raise Invalid_argument when [every <= 0.] or [rows <= 0]. *)

val closed_loop :
  ?seed:int64 -> clients:int -> per_client:int -> skew:float -> unit -> string list list
(** One template sequence per client ([clients] lists of [per_client]
    names); the driver owns all timing.  Client streams are derived
    from split generators, so adding a client never perturbs the
    others' sequences.
    @raise Invalid_argument when [clients <= 0] or [per_client < 0]. *)
