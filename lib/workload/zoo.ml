(* The shared zoo of nested queries over the O/I/J schema, plus a
   deterministic database generator for it.  The test suites layer a
   QCheck generator on top (test/query_zoo.ml); the benchmark harness
   uses the deterministic catalog directly. *)

open Subql_relational
open Subql_nested
module N = Nested_ast

let attr = Expr.attr

let q where = N.query ~base:(N.table "O") ~alias:"o" where

let corr = Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k")

let local_i = Expr.gt (attr ~rel:"i" "y") (Expr.int 2)

let queries : (string * N.query) list =
  [
    ("exists", q (N.exists ~where:(N.atom (Expr.and_ corr local_i)) (N.table "I") "i"));
    ("not-exists", q (N.not_exists ~where:(N.atom corr) (N.table "I") "i"));
    ( "some",
      q
        (N.some_ (attr ~rel:"o" "x") Expr.Lt ~where:(N.atom corr) (N.table "I") "i" ~col:"y")
    );
    ( "all-ne",
      q (N.all_ (attr ~rel:"o" "x") Expr.Ne ~where:(N.atom local_i) (N.table "I") "i" ~col:"y")
    );
    ( "all-gt-correlated",
      q (N.all_ (attr ~rel:"o" "x") Expr.Gt ~where:(N.atom corr) (N.table "I") "i" ~col:"y")
    );
    ( "scalar",
      q
        (N.scalar_cmp (attr ~rel:"o" "x") Expr.Eq ~where:(N.atom corr) (N.table "I") "i"
           ~col:"y") );
    ( "agg-sum",
      q
        (N.agg_cmp (attr ~rel:"o" "x") Expr.Lt
           (Aggregate.Sum (attr ~rel:"i" "y"))
           ~where:(N.atom corr) (N.table "I") "i") );
    ( "agg-count",
      q
        (N.agg_cmp (attr ~rel:"o" "x") Expr.Ge
           (Aggregate.Count (attr ~rel:"i" "y"))
           ~where:(N.atom corr) (N.table "I") "i") );
    ( "agg-max-uncorrelated",
      q
        (N.agg_cmp (attr ~rel:"o" "x") Expr.Gt (Aggregate.Max (attr ~rel:"i" "y"))
           (N.table "I") "i") );
    ("in", q (N.in_ (attr ~rel:"o" "x") ~where:(N.atom local_i) (N.table "I") "i" ~col:"y"));
    ("not-in", q (N.not_in (attr ~rel:"o" "x") (N.table "I") "i" ~col:"y"));
    ( "negated-exists",
      q (N.pnot (N.exists ~where:(N.atom (Expr.and_ corr local_i)) (N.table "I") "i")) );
    ( "negated-some",
      q
        (N.pnot
           (N.some_ (attr ~rel:"o" "x") Expr.Le ~where:(N.atom corr) (N.table "I") "i"
              ~col:"y")) );
    ( "disjunction",
      q
        (N.por
           (N.exists ~where:(N.atom (Expr.and_ corr local_i)) (N.table "I") "i")
           (N.atom (Expr.gt (attr ~rel:"o" "x") (Expr.int 3)))) );
    ( "two-subqueries-same-table",
      q
        (N.pand
           (N.exists ~where:(N.atom (Expr.and_ corr local_i)) (N.table "I") "i")
           (N.not_exists
              ~where:(N.atom (Expr.eq (attr ~rel:"i2" "k") (attr ~rel:"o" "x")))
              (N.table "I") "i2")) );
    ( "two-subqueries-or",
      q
        (N.por
           (N.exists ~where:(N.atom corr) (N.table "I") "i")
           (N.exists
              ~where:(N.atom (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"o" "x")))
              (N.table "J") "j")) );
    ( "linear-nesting",
      q
        (N.exists
           ~where:
             (N.pand (N.atom corr)
                (N.exists
                   ~where:
                     (N.atom
                        (Expr.and_
                           (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k"))
                           (Expr.lt (attr ~rel:"j" "y") (attr ~rel:"i" "y"))))
                   (N.table "J") "j"))
           (N.table "I") "i") );
    ( "non-neighboring",
      (* j references o across i's scope: forces Thm 3.3/3.4 push-down. *)
      q
        (N.exists
           ~where:
             (N.pand (N.atom corr)
                (N.not_exists
                   ~where:
                     (N.atom
                        (Expr.and_
                           (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k"))
                           (Expr.eq (attr ~rel:"j" "y") (attr ~rel:"o" "x"))))
                   (N.table "J") "j"))
           (N.table "I") "i") );
    ( "double-negation-division",
      (* Example 3.3's shape: o's with no I-row lacking a J-witness. *)
      q
        (N.not_exists
           ~where:
             (N.pand (N.atom local_i)
                (N.not_exists
                   ~where:
                     (N.atom
                        (Expr.and_
                           (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k"))
                           (Expr.eq (attr ~rel:"j" "y") (attr ~rel:"o" "k"))))
                   (N.table "J") "j"))
           (N.table "I") "i") );
    ( "nested-agg",
      q
        (N.exists
           ~where:
             (N.pand (N.atom corr)
                (N.agg_cmp (attr ~rel:"i" "y") Expr.Gt
                   (Aggregate.Avg (attr ~rel:"j" "y"))
                   ~where:(N.atom (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k")))
                   (N.table "J") "j"))
           (N.table "I") "i") );
    ( "distinct-base",
      N.query
        ~base:(N.Bproject { cols = [ "k" ]; distinct = true; input = N.table "O" })
        ~alias:"o"
        (N.exists
           ~where:(N.atom (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"o" "k")))
           (N.table "I") "i") );
    ( "multi-from",
      (* FROM O a, I b: the block binds two aliases; the subquery
         correlates against both (neighboring for both). *)
      N.query
        ~base:(N.Bproduct (N.Balias ("a", N.table "O"), N.Balias ("b", N.table "I")))
        ~alias:""
        (N.pand
           (N.atom (Expr.eq (attr ~rel:"a" "k") (attr ~rel:"b" "k")))
           (N.exists
              ~where:
                (N.atom
                   (Expr.and_
                      (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"a" "k"))
                      (Expr.gt (attr ~rel:"j" "y") (attr ~rel:"b" "y"))))
              (N.table "J") "j")) );
    ( "multi-from-non-neighboring",
      (* The innermost subquery reaches the second FROM relation across
         an intermediate scope. *)
      N.query
        ~base:(N.Bproduct (N.Balias ("a", N.table "O"), N.Balias ("b", N.table "O")))
        ~alias:""
        (N.exists
           ~where:
             (N.pand
                (N.atom (Expr.eq (attr ~rel:"i" "k") (attr ~rel:"a" "k")))
                (N.not_exists
                   ~where:
                     (N.atom
                        (Expr.and_
                           (Expr.eq (attr ~rel:"j" "k") (attr ~rel:"i" "k"))
                           (Expr.eq (attr ~rel:"j" "y") (attr ~rel:"b" "x"))))
                   (N.table "J") "j"))
           (N.table "I") "i") );
    ( "mixed-atoms",
      q
        (N.pand
           (N.atom (Expr.Is_not_null (attr ~rel:"o" "k")))
           (N.pand
              (N.exists ~where:(N.atom corr) (N.table "I") "i")
              (N.atom (Expr.ne (attr ~rel:"o" "x") (Expr.int 0))))) );
  ]

let find_query name =
  match List.assoc_opt name queries with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Zoo.find_query: no query named %S" name)

(* Queries whose one subquery ranges over the detail table I with a plain
   single-block GMDJ translation — the repeated-template population for
   multi-query sharing experiments. *)
let same_detail_templates =
  [ "exists"; "not-exists"; "some"; "agg-sum"; "agg-count"; "in" ]

(* --- deterministic database ------------------------------------------ *)

let catalog ?(outer = 64) ?(inner = 4096) ?(key_range = 32) ?(seed = 7L) () =
  let rng = Rng.create ~seed in
  let mk cols n gen =
    let schema = Schema.of_list (List.map (fun c -> Schema.attr c Value.Tint) cols) in
    (* Values are typed by construction; skip per-row re-verification. *)
    Relation.create ~check:false schema (Array.init n (fun _ -> gen ()))
  in
  let cell r bound =
    (* Occasional NULLs keep the 3VL paths honest. *)
    if Rng.bernoulli r 0.05 then Value.Null else Value.Int (Rng.int r bound)
  in
  let o = mk [ "k"; "x" ] outer (fun () -> [| cell rng key_range; cell rng 16 |]) in
  let i = mk [ "k"; "y" ] inner (fun () -> [| cell rng key_range; cell rng 16 |]) in
  let j = mk [ "k"; "y" ] inner (fun () -> [| cell rng key_range; cell rng 16 |]) in
  Catalog.of_list [ ("O", o); ("I", i); ("J", j) ]

let detail_rows ?(seed = 11L) ?(key_range = 32) n =
  let rng = Rng.create ~seed in
  let cell r bound = if Rng.bernoulli r 0.05 then Value.Null else Value.Int (Rng.int r bound) in
  Array.init n (fun _ -> [| cell rng key_range; cell rng 16 |])
