(** The paper's motivating IP-flow data warehouse (Section 2.3).

    Generates three tables:

    - [Flow (SourceIP, DestIP, Protocol, StartTime, EndTime, NumBytes,
      NumPkts)] — one row per flow dumped by a router;
    - [Hours (HourDsc, StartInterval, EndInterval)] — the time dimension
      used to phrase complex OLAP queries;
    - [User (UserName, IPAddress, Quota)] — the account dimension.

    All knobs the paper's experiments vary are exposed: table sizes, key
    cardinalities (how many distinct IPs), and protocol mix.  Generation
    is deterministic in the seed. *)

open Subql_relational

type config = {
  n_flows : int;
  n_hours : int;
  n_users : int;
  n_source_ips : int;  (** distinct SourceIP values drawn by flows *)
  n_dest_ips : int;
  http_fraction : float;  (** share of flows with Protocol = "HTTP" *)
  user_ip_match_fraction : float;
      (** share of users whose IPAddress actually appears as a flow
          source — controls subquery selectivity *)
  seed : int64;
}

val default_config : config
(** 10k flows, 24 hours, 100 users. *)

val ip : int -> string
(** The [i]-th synthetic IP address (stable across tables). *)

val flow_schema : Schema.t

val hours_schema : Schema.t

val user_schema : Schema.t

val generate : config -> Catalog.t
(** Catalog with tables ["Flow"], ["Hours"], ["User"]. *)

val flow_rows : ?seed:int64 -> config -> int -> Tuple.t array
(** [n] fresh flow rows drawn from the same distribution as
    {!generate}'s [Flow] table — append batches for ingest experiments.
    Deterministic in [seed] (default [7L], distinct from the catalog's
    own stream so appended rows do not replicate existing ones). *)
