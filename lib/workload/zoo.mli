(** The query zoo: a fixed population of nested queries over a three-table
    O/I/J schema, shared by the cross-engine equivalence suites and the
    multi-query benchmark.

    The zoo lives in the workload library (not the test tree) so the
    benchmark harness can use the same templates the correctness suites
    exercise — a repeated-template OLAP workload is exactly what the
    multi-query optimizer targets. *)

open Subql_nested

val q : Nested_ast.pred -> Nested_ast.query
(** A query over [O] aliased [o] with the given WHERE predicate. *)

val corr : Subql_relational.Expr.t
(** The canonical correlation [i.k = o.k]. *)

val local_i : Subql_relational.Expr.t
(** The canonical detail-local conjunct [i.y > 2]. *)

val queries : (string * Nested_ast.query) list
(** Named query shapes covering every subquery kind in Table 1:
    EXISTS/NOT EXISTS, SOME/ALL, scalar and aggregate comparison, IN/NOT
    IN, negation, disjunction, linear nesting, non-neighboring
    references, multi-relation FROM blocks. *)

val find_query : string -> Nested_ast.query
(** @raise Invalid_argument for an unknown name. *)

val same_detail_templates : string list
(** Zoo names whose subquery ranges over the detail table [I] — the
    repeated-template population used by the GMDJ-sharing benchmark: a
    batch of these admits one shared detail scan (Prop. 4.1 lifted
    across queries). *)

val catalog :
  ?outer:int -> ?inner:int -> ?key_range:int -> ?seed:int64 -> unit -> Subql_relational.Catalog.t
(** A deterministic O/I/J database: [outer] rows in O, [inner] rows in
    each of I and J, integer keys uniform in [\[0, key_range)], ~5%
    NULLs.  Same seed, same database. *)

val detail_rows : ?seed:int64 -> ?key_range:int -> int -> Subql_relational.Tuple.t array
(** [n] fresh [(k, y)] rows from the same distribution as the detail
    tables [I]/[J] — append batches for ingest experiments.
    Deterministic in [seed] (default [11L], distinct from {!catalog}'s
    stream). *)
