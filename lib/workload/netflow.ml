open Subql_relational

type config = {
  n_flows : int;
  n_hours : int;
  n_users : int;
  n_source_ips : int;
  n_dest_ips : int;
  http_fraction : float;
  user_ip_match_fraction : float;
  seed : int64;
}

let default_config =
  {
    n_flows = 10_000;
    n_hours = 24;
    n_users = 100;
    n_source_ips = 500;
    n_dest_ips = 500;
    http_fraction = 0.6;
    user_ip_match_fraction = 0.8;
    seed = 42L;
  }

let ip i = Printf.sprintf "10.%d.%d.%d" (i / 65536 mod 256) (i / 256 mod 256) (i mod 256)

let flow_schema =
  Schema.of_list
    [
      Schema.attr "SourceIP" Value.Tstring;
      Schema.attr "DestIP" Value.Tstring;
      Schema.attr "Protocol" Value.Tstring;
      Schema.attr "StartTime" Value.Tint;
      Schema.attr "EndTime" Value.Tint;
      Schema.attr "NumBytes" Value.Tint;
      Schema.attr "NumPkts" Value.Tint;
    ]

let hours_schema =
  Schema.of_list
    [
      Schema.attr "HourDsc" Value.Tint;
      Schema.attr "StartInterval" Value.Tint;
      Schema.attr "EndInterval" Value.Tint;
    ]

let user_schema =
  Schema.of_list
    [
      Schema.attr "UserName" Value.Tstring;
      Schema.attr "IPAddress" Value.Tstring;
      Schema.attr "Quota" Value.Tint;
    ]

let protocols = [| "FTP"; "DNS"; "SMTP"; "SSH" |]

let flow_row config rng =
  let horizon = config.n_hours * 3600 in
  let src = Rng.int rng config.n_source_ips in
  let dst = Rng.int rng config.n_dest_ips in
  let protocol =
    if Rng.bernoulli rng config.http_fraction then "HTTP" else Rng.choose rng protocols
  in
  let start = Rng.int rng horizon in
  let duration = 1 + Rng.int rng 600 in
  let pkts = 1 + Rng.int rng 1000 in
  let bytes = pkts * (40 + Rng.int rng 1460) in
  [|
    Value.Str (ip src);
    Value.Str (ip dst);
    Value.Str protocol;
    Value.Int start;
    Value.Int (start + duration);
    Value.Int bytes;
    Value.Int pkts;
  |]

let flow_rows ?(seed = 7L) config n =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> flow_row config rng)

let generate config =
  let rng = Rng.create ~seed:config.seed in
  let hours =
    Array.init config.n_hours (fun i ->
        [| Value.Int (i + 1); Value.Int (i * 3600); Value.Int ((i + 1) * 3600) |])
  in
  let flows = Array.init config.n_flows (fun _ -> flow_row config rng) in
  let users =
    Array.init config.n_users (fun i ->
        let addr =
          if Rng.bernoulli rng config.user_ip_match_fraction then
            ip (Rng.int rng config.n_source_ips)
          else ip (1_000_000 + i)
        in
        [|
          Value.Str (Printf.sprintf "user%04d" i);
          Value.Str addr;
          Value.Int ((1 + Rng.int rng 100) * 1_000_000);
        |])
  in
  Catalog.of_list
    [
      ("Flow", Relation.create ~check:false flow_schema flows);
      ("Hours", Relation.create ~check:false hours_schema hours);
      ("User", Relation.create ~check:false user_schema users);
    ]
