open Subql_relational
open Subql

type report = {
  results : (int * Relation.t) list;
  cache_hits : int;
  cache_misses : int;
  deduplicated : int;
  groups : int;
  grouped : int;
  shared_detail_scans : int;
  naive_detail_scans : int;
}

let count_mds plan =
  let rec go acc alg =
    let acc =
      match alg with
      | Algebra.Md _ | Algebra.Md_completed _ -> acc + 1
      | _ -> acc
    in
    let child_acc = ref acc in
    ignore
      (Optimize.map_children
         (fun c ->
           child_acc := go !child_acc c;
           c)
         alg);
    !child_acc
  in
  go 0 plan

let solo_plan query = Optimize.optimize (Transform.to_algebra query)

type entry = {
  e_fp : string;
  e_shareable : Algebra.t Lazy.t;
      (* only cache misses need the shareable form; admission-time
         preparation must stay cheap for queries the cache answers *)
  e_solo : Algebra.t;
}

let prepare query =
  {
    e_fp = Fingerprint.of_query query;
    e_shareable = lazy (Share.shareable_plan query);
    e_solo = solo_plan query;
  }

let fingerprint e = e.e_fp

let run_prepared ?(config = Eval.default_config) ?cache
    ?(registry = Subql_obs.Metrics.default) catalog entries =
  let cache =
    match cache with Some c -> c | None -> Result_cache.create ~registry ()
  in
  let stats = Cost.Stats.of_catalog catalog in
  (* Phase 1: consult the cache under the prepared fingerprints. *)
  let looked =
    List.mapi (fun i e -> (i, e, Result_cache.lookup cache e.e_fp)) entries
  in
  let hits =
    List.filter_map (fun (i, _, r) -> Option.map (fun r -> (i, r)) r) looked
  in
  (* Phase 2: deduplicate the misses by fingerprint. *)
  let seen = Hashtbl.create 16 in
  let reps, dups =
    List.fold_left
      (fun (reps, dups) (i, e, cached) ->
        if Option.is_some cached then (reps, dups)
        else
          match Hashtbl.find_opt seen e.e_fp with
          | Some rep_index -> (reps, (i, rep_index) :: dups)
          | None ->
            Hashtbl.add seen e.e_fp i;
            ((i, e) :: reps, dups))
      ([], []) looked
  in
  let reps = List.rev reps and dups = List.rev dups in
  (* Phase 3: plan the distinct misses for shared evaluation and run. *)
  let batch =
    Share.plan catalog
      (List.map (fun (i, e) -> (i, Lazy.force e.e_shareable, e.e_solo)) reps)
  in
  let gmdj_stats = Subql_gmdj.Gmdj.fresh_stats () in
  let computed = Share.run ~config ~gmdj_stats ~registry catalog batch in
  (* Phase 4: admit computed results under the solo plan's cost. *)
  List.iter
    (fun (i, e) ->
      match List.assoc_opt i computed with
      | Some result ->
        let cost = (Cost.estimate stats ~config e.e_solo).Cost.cost in
        ignore (Result_cache.store cache ~fingerprint:e.e_fp ~cost result)
      | None -> ())
    reps;
  let dup_results = List.map (fun (i, rep) -> (i, List.assoc rep computed)) dups in
  let results =
    List.sort
      (fun (a, _) (b, _) -> compare (a : int) b)
      (hits @ computed @ dup_results)
  in
  (* The naive baseline: a cold, unshared run evaluates every GMDJ of
     every query's solo plan.  Duplicates count their representative's
     plan; cache hits count the plan they avoided running. *)
  let naive_detail_scans =
    List.fold_left (fun acc (_, e, _) -> acc + count_mds e.e_solo) 0 looked
  in
  {
    results;
    cache_hits = List.length hits;
    cache_misses = List.length looked - List.length hits;
    deduplicated = List.length dups;
    groups = List.length batch.Share.groups;
    grouped =
      List.fold_left
        (fun acc g -> acc + List.length g.Share.members)
        0 batch.Share.groups;
    shared_detail_scans = gmdj_stats.Subql_gmdj.Gmdj.detail_passes;
    naive_detail_scans;
  }

let run ?config ?cache ?registry catalog queries =
  run_prepared ?config ?cache ?registry catalog (List.map prepare queries)

(* Exported last: shadows the query-planning helper above with the
   entry accessor the interface declares. *)
let solo_plan e = e.e_solo

let install_planner_cache cache =
  Planner.set_result_cache
    {
      Planner.cache_lookup =
        (fun query -> Result_cache.lookup cache (Fingerprint.of_query query));
      cache_store =
        (fun query ~cost result ->
          Result_cache.store cache ~fingerprint:(Fingerprint.of_query query) ~cost
            result);
    }
