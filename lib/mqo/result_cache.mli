(** A fingerprint-keyed result cache with cost-aware admission.

    The cache maps plan fingerprints ({!Fingerprint}) to fully
    materialized result relations.  Three policies keep it honest:

    - {b admission} is cost-aware: only results whose estimated
      evaluation cost ({!Subql.Cost.estimate}) meets [min_cost] are
      admitted — caching a cheap scan evicts something expensive for no
      savings;
    - {b eviction} is LRU by estimated resident bytes: the cache holds at
      most [max_bytes] of result data and evicts the least-recently-used
      entries first;
    - {b invalidation} is epoch-based ({!Epoch}): entries stamped with an
      older epoch are dropped lazily on lookup, so no mutation can be
      followed by a stale hit.

    Activity is published to a metrics registry under
    ["mqo.cache.hits"], ["mqo.cache.misses"], ["mqo.cache.evictions"]
    and the gauge ["mqo.cache.bytes"]. *)

open Subql_relational

type t

val create :
  ?max_bytes:int -> ?min_cost:float -> ?registry:Subql_obs.Metrics.t -> unit -> t
(** [max_bytes] defaults to 64 MiB of estimated result data; [min_cost]
    (in the cost model's tuple-operation units) defaults to [1000.];
    [registry] defaults to {!Subql_obs.Metrics.default}.
    @raise Invalid_argument if [max_bytes <= 0]. *)

val lookup : t -> string -> Relation.t option
(** The cached result under this fingerprint, if present and current.
    Counts a hit or a miss; a stale entry is dropped and counts as a
    miss. *)

val store : t -> fingerprint:string -> cost:float -> Relation.t -> bool
(** Admit a result computed at the current epoch.  Returns [false]
    without caching when [cost < min_cost] or the result alone exceeds
    [max_bytes]; otherwise evicts LRU entries until the result fits and
    returns [true].  Re-storing an existing fingerprint replaces the
    entry. *)

val approx_bytes : Relation.t -> int
(** The size estimate used for accounting: summed cell sizes plus
    per-row overhead. *)

val entries : t -> int

val resident_bytes : t -> int

val clear : t -> unit
