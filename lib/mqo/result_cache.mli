(** A fingerprint-keyed result cache with cost-aware admission.

    The cache maps plan fingerprints ({!Fingerprint}) to fully
    materialized result relations.  Three policies keep it honest:

    - {b admission} is cost-aware: only results whose estimated
      evaluation cost ({!Subql.Cost.estimate}) meets [min_cost] are
      admitted — caching a cheap scan evicts something expensive for no
      savings;
    - {b eviction} is LRU by estimated resident bytes: the cache holds at
      most [max_bytes] of result data and evicts the least-recently-used
      entries first;
    - {b invalidation} is epoch-based ({!Epoch}): entries stamped with an
      older epoch are dropped lazily on lookup, so no mutation can be
      followed by a stale hit.

    Under ingest, dropping is not the only recourse: a maintenance
    planner can {!repair} an entry in place — replace the stale relation
    with a delta-maintained (or recomputed) one restamped at the current
    epoch — so warm entries survive appends instead of being rebuilt
    from scratch on the next miss.

    Activity is published to a metrics registry under
    ["mqo.cache.hits"], ["mqo.cache.misses"], ["mqo.cache.evictions"],
    ["mqo.cache.repaired"], ["mqo.cache.invalidated"] (stale entries
    dropped on lookup) and the gauge ["mqo.cache.bytes"]. *)

open Subql_relational

type t

val create :
  ?max_bytes:int -> ?min_cost:float -> ?registry:Subql_obs.Metrics.t -> unit -> t
(** [max_bytes] defaults to 64 MiB of estimated result data; [min_cost]
    (in the cost model's tuple-operation units) defaults to [1000.];
    [registry] defaults to {!Subql_obs.Metrics.default}.
    @raise Invalid_argument if [max_bytes <= 0]. *)

val lookup : t -> string -> Relation.t option
(** The cached result under this fingerprint, if present and current.
    Counts a hit or a miss; a stale entry is dropped and counts as a
    miss. *)

val store : t -> fingerprint:string -> cost:float -> Relation.t -> bool
(** Admit a result computed at the current epoch.  Returns [false]
    without caching when [cost < min_cost] or the result alone exceeds
    [max_bytes]; otherwise evicts LRU entries until the result fits and
    returns [true].  Re-storing an existing fingerprint replaces the
    entry. *)

val peek : t -> string -> Relation.t option
(** The entry under this fingerprint regardless of staleness — no epoch
    check, no metrics, no LRU touch.  For maintenance planners that need
    the stale contents as the {e input} to a repair; never serve a
    peeked relation to a query. *)

val repair : t -> fingerprint:string -> Relation.t -> bool
(** Replace an existing entry's relation in place, restamped at the
    current epoch with a fresh LRU tick; adjusts byte accounting and
    evicts other entries if the repaired result no longer fits.  Returns
    [false] (and caches nothing) when the fingerprint is absent — repair
    never admits new entries, that is {!store}'s job. *)

val approx_bytes : Relation.t -> int
(** The size estimate used for accounting: summed cell sizes plus
    per-row overhead. *)

val entries : t -> int

val resident_bytes : t -> int

val clear : t -> unit
