(** The multi-query front door: fingerprint → cache → share → evaluate.

    [run] takes a batch of nested queries and answers all of them,
    combining the three MQO layers:

    + every query is fingerprinted ({!Fingerprint}) and looked up in
      the result cache ({!Result_cache}) — hits are answered without
      planning or scanning;
    + cache misses are deduplicated by fingerprint (syntactic variants
      of one query are computed once);
    + the remaining distinct queries are planned for cross-query GMDJ
      sharing ({!Share}) and evaluated, and their results admitted to
      the cache under the solo plan's cost estimate.

    The report quantifies each layer: cache traffic, how many members
    actually shared a scan, and the detail-scan count against the
    one-scan-per-query naive baseline. *)

open Subql_relational

type report = {
  results : (int * Relation.t) list;
      (** one result per input query, keyed by input position, sorted *)
  cache_hits : int;
  cache_misses : int;  (** both counted over this run only *)
  deduplicated : int;  (** misses answered by an identical in-batch miss *)
  groups : int;  (** shared GMDJ groups formed *)
  grouped : int;  (** queries evaluated through a shared group *)
  shared_detail_scans : int;
      (** detail passes actually performed (GMDJ stats) *)
  naive_detail_scans : int;
      (** detail passes a cold, unshared run of the same batch would
          perform: one per GMDJ in each query's solo plan *)
}

val run :
  ?config:Subql.Eval.config ->
  ?cache:Result_cache.t ->
  ?registry:Subql_obs.Metrics.t ->
  Catalog.t ->
  Subql_nested.Nested_ast.query list ->
  report
(** Answer the whole batch.  Without [cache] every lookup misses (an
    empty throwaway cache is used); pass a persistent cache to benefit
    across calls. *)

(** {1 Prepared entries}

    A long-lived caller (the serving loop in [Subql_server]) already
    plans each query once at admission time — to price its memory
    footprint — before the query ever reaches a batch.  Preparing an
    entry keeps that work: the fingerprint and the solo plan are
    computed eagerly (admission needs both), the shareable plan lazily
    (only cache misses ever need it), and {!run_prepared} reuses all
    three instead of replanning. *)

type entry
(** A query prepared for batch evaluation: fingerprint + solo plan
    computed, shareable plan pending. *)

val prepare : Subql_nested.Nested_ast.query -> entry

val fingerprint : entry -> string

val solo_plan : entry -> Subql.Algebra.t
(** The fully optimized single-query plan — what admission control
    prices with {!Subql.Cost.memory_height} and what the cache admits
    results under. *)

val run_prepared :
  ?config:Subql.Eval.config ->
  ?cache:Result_cache.t ->
  ?registry:Subql_obs.Metrics.t ->
  Catalog.t ->
  entry list ->
  report
(** {!run} without the per-call planning: [run catalog qs] is
    [run_prepared catalog (List.map prepare qs)]. *)

val install_planner_cache : Result_cache.t -> unit
(** Wire the cache into {!Subql.Planner}: [run_with_feedback] first
    consults it (a hit is a zero-cost candidate) and stores qualifying
    results on miss.  Single-query execution then benefits from results
    computed by earlier runs or batches. *)
