open Subql_relational

type entry = {
  relation : Relation.t;
  bytes : int;
  epoch : int;
  mutable last_used : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  max_bytes : int;
  min_cost : float;
  mutable total_bytes : int;
  mutable clock : int;
  m_hits : Subql_obs.Metrics.counter;
  m_misses : Subql_obs.Metrics.counter;
  m_evictions : Subql_obs.Metrics.counter;
  m_repaired : Subql_obs.Metrics.counter;
  m_invalidated : Subql_obs.Metrics.counter;
  m_bytes : Subql_obs.Metrics.gauge;
}

let create ?(max_bytes = 64 * 1024 * 1024) ?(min_cost = 1000.)
    ?(registry = Subql_obs.Metrics.default) () =
  if max_bytes <= 0 then invalid_arg "Result_cache.create: max_bytes must be positive";
  {
    table = Hashtbl.create 64;
    max_bytes;
    min_cost;
    total_bytes = 0;
    clock = 0;
    m_hits = Subql_obs.Metrics.counter registry "mqo.cache.hits";
    m_misses = Subql_obs.Metrics.counter registry "mqo.cache.misses";
    m_evictions = Subql_obs.Metrics.counter registry "mqo.cache.evictions";
    m_repaired = Subql_obs.Metrics.counter registry "mqo.cache.repaired";
    m_invalidated = Subql_obs.Metrics.counter registry "mqo.cache.invalidated";
    m_bytes = Subql_obs.Metrics.gauge registry "mqo.cache.bytes";
  }

(* Estimated resident size: OCaml boxes most values, so charge word-level
   overheads rather than payload sizes alone. *)
let value_bytes = function
  | Value.Null | Value.Bool _ -> 8
  | Value.Int _ -> 8
  | Value.Float _ -> 16
  | Value.Str s -> 24 + String.length s

let approx_bytes rel =
  let per_row = 16 (* array header + slot *) in
  Relation.fold
    (fun acc row -> acc + per_row + Array.fold_left (fun a v -> a + value_bytes v) 0 row)
    0 rel

let publish t =
  Subql_obs.Metrics.set t.m_bytes (float_of_int t.total_bytes)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let remove t fp =
  match Hashtbl.find_opt t.table fp with
  | Some e ->
    Hashtbl.remove t.table fp;
    t.total_bytes <- t.total_bytes - e.bytes
  | None -> ()

let lookup t fp =
  match Hashtbl.find_opt t.table fp with
  | Some e when e.epoch = Epoch.current () ->
    e.last_used <- tick t;
    Subql_obs.Metrics.incr t.m_hits;
    Some e.relation
  | Some _ ->
    (* Stale: some table or maintained view changed since this was
       computed.  Drop eagerly so the space is reusable. *)
    remove t fp;
    publish t;
    Subql_obs.Metrics.incr t.m_invalidated;
    Subql_obs.Metrics.incr t.m_misses;
    None
  | None ->
    Subql_obs.Metrics.incr t.m_misses;
    None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun fp e ->
      match !victim with
      | Some (_, v) when v.last_used <= e.last_used -> ()
      | _ -> victim := Some (fp, e))
    t.table;
  match !victim with
  | Some (fp, _) ->
    remove t fp;
    Subql_obs.Metrics.incr t.m_evictions
  | None -> ()

let store t ~fingerprint ~cost relation =
  let bytes = approx_bytes relation in
  if cost < t.min_cost || bytes > t.max_bytes then false
  else begin
    remove t fingerprint;
    while t.total_bytes + bytes > t.max_bytes && Hashtbl.length t.table > 0 do
      evict_lru t
    done;
    Hashtbl.replace t.table fingerprint
      { relation; bytes; epoch = Epoch.current (); last_used = tick t };
    t.total_bytes <- t.total_bytes + bytes;
    publish t;
    true
  end

let peek t fp =
  Option.map (fun e -> e.relation) (Hashtbl.find_opt t.table fp)

let repair t ~fingerprint relation =
  match Hashtbl.find_opt t.table fingerprint with
  | None -> false
  | Some old ->
    let bytes = approx_bytes relation in
    t.total_bytes <- t.total_bytes - old.bytes + bytes;
    Hashtbl.replace t.table fingerprint
      { relation; bytes; epoch = Epoch.current (); last_used = tick t };
    (* The repaired entry just got the freshest tick, so LRU eviction
       spares it; the > 1 guard keeps an over-budget repair from spinning
       on its own entry. *)
    while t.total_bytes > t.max_bytes && Hashtbl.length t.table > 1 do
      evict_lru t
    done;
    publish t;
    Subql_obs.Metrics.incr t.m_repaired;
    true

let entries t = Hashtbl.length t.table

let resident_bytes t = t.total_bytes

let clear t =
  Hashtbl.reset t.table;
  t.total_bytes <- 0;
  publish t
