let manual = ref 0

let bump () = incr manual

let current () =
  Subql_relational.Catalog.generation () + Subql_gmdj.Gmdj.Maintain.generation () + !manual
