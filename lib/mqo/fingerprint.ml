open Subql_relational
open Subql_gmdj
open Subql

(* ------------------------------------------------------------------ *)
(* Alias collection                                                     *)
(* ------------------------------------------------------------------ *)

let children = function
  | Algebra.Table _ -> []
  | Algebra.Rename (_, x)
  | Algebra.Select (_, x)
  | Algebra.Project (_, x)
  | Algebra.Project_cols { input = x; _ }
  | Algebra.Project_rel (_, x)
  | Algebra.Add_rownum (_, x)
  | Algebra.Group_by { input = x; _ }
  | Algebra.Aggregate_all (_, x)
  | Algebra.Distinct x ->
    [ x ]
  | Algebra.Product (l, r)
  | Algebra.Join { left = l; right = r; _ }
  | Algebra.Md { base = l; detail = r; _ }
  | Algebra.Md_completed { base = l; detail = r; _ }
  | Algebra.Union_all (l, r)
  | Algebra.Diff_all (l, r) ->
    [ l; r ]

(* Aliases introduced by [Rename] nodes, in pre-order of first
   occurrence.  Plans that are equal up to a bijective renaming of their
   aliases list them in the same positions, so the positional mapping
   makes them identical.  The mapping is injective (distinct originals
   get distinct positions), so no two inequivalent plans are conflated
   by the renaming itself. *)
let alias_map alg =
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  let rec go alg =
    (match alg with
    | Algebra.Rename (a, _) ->
      if not (Hashtbl.mem tbl a) then begin
        incr next;
        Hashtbl.add tbl a (Printf.sprintf "~r%d" !next)
      end
    | _ -> ());
    List.iter go (children alg)
  in
  go alg;
  fun a -> match Hashtbl.find_opt tbl a with Some a' -> a' | None -> a

(* ------------------------------------------------------------------ *)
(* Expression normalization                                             *)
(* ------------------------------------------------------------------ *)

let rec flatten_and acc = function
  | Expr.And (a, b) -> flatten_and (flatten_and acc b) a
  | e -> e :: acc

let rec flatten_or acc = function
  | Expr.Or (a, b) -> flatten_or (flatten_or acc b) a
  | e -> e :: acc

let rebuild join = function
  | [] -> assert false (* flatten always yields at least one operand *)
  | e :: es -> List.fold_left join e es

let rec canon_expr rename e =
  let go = canon_expr rename in
  match e with
  | Expr.Const _ -> e
  | Expr.Attr (q, n) -> Expr.Attr (Option.map rename q, n)
  | Expr.Cmp (op, a, b) ->
    let a = go a and b = go b in
    if compare a b <= 0 then Expr.Cmp (op, a, b) else Expr.Cmp (Expr.swap_cmp op, b, a)
  | Expr.Null_safe_eq (a, b) ->
    let a = go a and b = go b in
    if compare a b <= 0 then Expr.Null_safe_eq (a, b) else Expr.Null_safe_eq (b, a)
  | Expr.And _ ->
    flatten_and [] e |> List.map go |> List.sort compare |> rebuild (fun a b -> Expr.And (a, b))
  | Expr.Or _ ->
    flatten_or [] e |> List.map go |> List.sort compare |> rebuild (fun a b -> Expr.Or (a, b))
  | Expr.Not x -> Expr.Not (go x)
  | Expr.Arith (op, a, b) -> Expr.Arith (op, go a, go b)
  | Expr.Neg x -> Expr.Neg (go x)
  | Expr.Is_null x -> Expr.Is_null (go x)
  | Expr.Is_not_null x -> Expr.Is_not_null (go x)
  | Expr.Is_true x -> Expr.Is_true (go x)

let canon_spec rename (s : Aggregate.spec) =
  let go = canon_expr rename in
  let func =
    match s.Aggregate.func with
    | Aggregate.Count_star -> Aggregate.Count_star
    | Aggregate.Count e -> Aggregate.Count (go e)
    | Aggregate.Sum e -> Aggregate.Sum (go e)
    | Aggregate.Min e -> Aggregate.Min (go e)
    | Aggregate.Max e -> Aggregate.Max (go e)
    | Aggregate.Avg e -> Aggregate.Avg (go e)
    | Aggregate.First e -> Aggregate.First (go e)
  in
  { s with Aggregate.func }

let canon_blocks rename blocks =
  blocks
  |> List.map (fun b ->
         {
           Gmdj.theta = canon_expr rename b.Gmdj.theta;
           aggs = List.map (canon_spec rename) b.Gmdj.aggs;
         })
  |> List.sort compare

let canon_completion rename (c : Gmdj.completion) =
  {
    Gmdj.kill_when = List.map (canon_expr rename) c.Gmdj.kill_when |> List.sort compare;
    require_fired = List.map (canon_expr rename) c.Gmdj.require_fired |> List.sort compare;
    maintain_aggregates = c.Gmdj.maintain_aggregates;
  }

(* ------------------------------------------------------------------ *)
(* Plan canonicalization                                                *)
(* ------------------------------------------------------------------ *)

let canonicalize alg =
  let rename = alias_map alg in
  let ce = canon_expr rename in
  let rec go alg =
    match alg with
    | Algebra.Table _ -> alg
    | Algebra.Rename (a, x) -> Algebra.Rename (rename a, go x)
    | Algebra.Select (e, x) -> (
      (* Merge adjacent selections so that pushed and unpushed variants of
         the same conjunction coincide, then sort the conjuncts. *)
      match go x with
      | Algebra.Select (f, y) ->
        let conjs = List.sort compare (Expr.conjuncts (ce e) @ Expr.conjuncts f) in
        Algebra.Select (rebuild (fun a b -> Expr.And (a, b)) conjs, y)
      | y -> Algebra.Select (ce e, y))
    | Algebra.Project (exprs, x) ->
      Algebra.Project (List.map (fun (e, n) -> (ce e, n)) exprs, go x)
    | Algebra.Project_cols c ->
      Algebra.Project_cols
        {
          c with
          cols = List.map (fun (q, n) -> (Option.map rename q, n)) c.cols;
          input = go c.input;
        }
    | Algebra.Project_rel (aliases, x) ->
      Algebra.Project_rel (List.sort String.compare (List.map rename aliases), go x)
    | Algebra.Add_rownum (n, x) -> Algebra.Add_rownum (n, go x)
    | Algebra.Product (l, r) -> Algebra.Product (go l, go r)
    | Algebra.Join j -> Algebra.Join { j with cond = ce j.cond; left = go j.left; right = go j.right }
    | Algebra.Group_by g ->
      Algebra.Group_by
        {
          keys = List.map (fun (q, n) -> (Option.map rename q, n)) g.keys;
          aggs = List.map (canon_spec rename) g.aggs;
          input = go g.input;
        }
    | Algebra.Aggregate_all (aggs, x) ->
      Algebra.Aggregate_all (List.map (canon_spec rename) aggs, go x)
    | Algebra.Md m ->
      Algebra.Md
        { base = go m.base; detail = go m.detail; blocks = canon_blocks rename m.blocks }
    | Algebra.Md_completed m ->
      Algebra.Md_completed
        {
          base = go m.base;
          detail = go m.detail;
          blocks = canon_blocks rename m.blocks;
          completion = canon_completion rename m.completion;
        }
    | Algebra.Union_all (l, r) -> Algebra.Union_all (go l, go r)
    | Algebra.Diff_all (l, r) -> Algebra.Diff_all (go l, go r)
    | Algebra.Distinct x -> Algebra.Distinct (go x)
  in
  go alg

let fingerprint alg =
  (* No_sharing: two structurally equal plans must serialize identically
     even when one shares subtrees physically and the other does not. *)
  Digest.to_hex (Digest.string (Marshal.to_string (canonicalize alg) [ Marshal.No_sharing ]))

let of_query query = fingerprint (Transform.to_algebra query)
