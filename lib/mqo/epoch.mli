(** The cache-invalidation epoch.

    Cached results are only valid as long as the data they were computed
    from is unchanged.  Rather than tracking per-table dependencies, the
    multi-query layer stamps every cache entry with a process-wide epoch
    and drops entries whose epoch is stale.  The epoch advances when:

    - any catalog registers or replaces a table
      ({!Subql_relational.Catalog.generation});
    - any maintained GMDJ view folds or retracts detail rows
      ({!Subql_gmdj.Gmdj.Maintain.generation}) — view deltas change the
      effective detail content without touching the catalog;
    - a client calls {!bump} explicitly (out-of-band mutations).

    Over-invalidation is the accepted trade: a spurious epoch change
    costs one recomputation; a missed one would serve stale data. *)

val current : unit -> int
(** The current epoch.  Monotonically non-decreasing. *)

val bump : unit -> unit
(** Advance the epoch manually, invalidating every cached result. *)
