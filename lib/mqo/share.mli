(** Cross-query GMDJ sharing: Prop. 4.1 lifted across queries.

    Within one plan, the optimizer coalesces a chain of GMDJs over the
    same detail occurrence into a single multi-block GMDJ
    ({!Subql.Optimize}).  This module applies the same merge {e across}
    a batch of independent queries: GMDJ operators whose base and detail
    agree (the detail up to alias) are grouped, their block lists are
    concatenated into one combined GMDJ, and that operator is evaluated
    once — a single scan of the shared detail table serves every member
    query.  Each member's plan is rewritten to read its own aggregate
    columns (renamed ["q<i>~<name>"] to keep the combined schema
    collision-free) out of the shared result.

    Sharing is conservative: a member joins a group only when the
    rewritten plan provably produces the member's original schema;
    anything else falls back to solo evaluation.  Correctness never
    depends on sharing — only the number of detail scans does. *)

open Subql_relational
open Subql

type member = {
  index : int;  (** caller-assigned position in the batch *)
  plan : Algebra.t;
      (** the member's plan rewritten to route through the combined GMDJ *)
}

type group = {
  combined : Algebra.t;
      (** the shared multi-block [Md]; physically embedded in every
          member plan, which is how {!run} recognizes it *)
  members : member list;  (** at least two *)
}

type batch = {
  groups : group list;
  solo : (int * Algebra.t) list;
      (** members that could not share, with their solo plans *)
}

val shareable_plan : Subql_nested.Nested_ast.query -> Algebra.t
(** Translate and optimize a query for sharing: coalescing and
    selection push-down are applied, completion is {e not} — completion
    compiles a particular query's count-conditions into kill/require
    rules inside the scan, which would filter the shared base for every
    other member. *)

val plan : Catalog.t -> (int * Algebra.t * Algebra.t) list -> batch
(** [plan catalog triples] groups the batch for shared evaluation.  Each
    triple is [(index, shareable, solo)]: [shareable] as produced by
    {!shareable_plan}, [solo] the plan to use when the member cannot
    share (typically the fully optimized one).  The catalog is needed to
    type-check rewritten plans against their solo schema. *)

val run :
  ?config:Eval.config ->
  ?gmdj_stats:Subql_gmdj.Gmdj.stats ->
  ?registry:Subql_obs.Metrics.t ->
  Catalog.t ->
  batch ->
  (int * Relation.t) list
(** Evaluate every member, computing each group's combined GMDJ exactly
    once, and return results keyed by the caller's indices (sorted).
    Counters ["mqo.shared_scans"] (combined GMDJs evaluated) and
    ["mqo.naive_scans"] (GMDJ evaluations an unshared batch would have
    performed for those members) record the savings. *)
