open Subql_relational
open Subql_gmdj
open Subql

type member = { index : int; plan : Algebra.t }

type group = { combined : Algebra.t; members : member list }

type batch = { groups : group list; solo : (int * Algebra.t) list }

let shareable_plan query =
  Optimize.optimize
    ~flags:(Optimize.only ~coalesce:true ~pushdown:true ())
    (Transform.to_algebra query)

let children alg =
  let acc = ref [] in
  ignore
    (Optimize.map_children
       (fun c ->
         acc := c :: !acc;
         c)
       alg);
  List.rev !acc

(* The rootmost GMDJ of a plan, in evaluation-independent DFS order.
   Returned physically, so the rewrite below can locate it with [==]. *)
let rec find_md alg =
  match alg with
  | Algebra.Md _ -> Some alg
  | _ ->
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find_md c)
      None (children alg)

let names_unique names =
  let sorted = List.sort String.compare names in
  let rec ok = function
    | a :: (b :: _ as rest) -> a <> b && ok rest
    | [ _ ] | [] -> true
  in
  ok sorted

(* Rename unqualified references to a member's aggregate columns.  The
   translation references GMDJ aggregates as [Attr (None, name)] (they
   exist in no source relation), so only unqualified attributes are
   candidates. *)
let rw_expr map e =
  Expr.map_attrs
    (fun (q, n) ->
      match q with
      | None -> (
        match Hashtbl.find_opt map n with
        | Some n' -> Expr.attr n'
        | None -> Expr.attr n)
      | Some rel -> Expr.attr ~rel n)
    e

let rw_col map (q, n) =
  match q with
  | None -> (
    match Hashtbl.find_opt map n with Some n' -> (None, n') | None -> (None, n))
  | Some _ -> (q, n)

let rw_func map = function
  | Aggregate.Count_star -> Aggregate.Count_star
  | Aggregate.Count e -> Aggregate.Count (rw_expr map e)
  | Aggregate.Sum e -> Aggregate.Sum (rw_expr map e)
  | Aggregate.Min e -> Aggregate.Min (rw_expr map e)
  | Aggregate.Max e -> Aggregate.Max (rw_expr map e)
  | Aggregate.Avg e -> Aggregate.Avg (rw_expr map e)
  | Aggregate.First e -> Aggregate.First (rw_expr map e)

let rw_spec map s = { s with Aggregate.func = rw_func map s.Aggregate.func }

let rw_block map b =
  {
    Gmdj.theta = rw_expr map b.Gmdj.theta;
    aggs = List.map (rw_spec map) b.Gmdj.aggs;
  }

(* Rewrite the expressions carried by one node (no recursion into
   children — the traversal below handles that). *)
let rw_node map alg =
  let rw = rw_expr map in
  match alg with
  | Algebra.Select (e, x) -> Algebra.Select (rw e, x)
  | Algebra.Project (ps, x) ->
    Algebra.Project (List.map (fun (e, n) -> (rw e, n)) ps, x)
  | Algebra.Project_cols c ->
    Algebra.Project_cols { c with cols = List.map (rw_col map) c.cols }
  | Algebra.Join j -> Algebra.Join { j with cond = rw j.cond }
  | Algebra.Group_by g ->
    Algebra.Group_by
      {
        g with
        keys = List.map (rw_col map) g.keys;
        aggs = List.map (rw_spec map) g.aggs;
      }
  | Algebra.Aggregate_all (specs, x) ->
    Algebra.Aggregate_all (List.map (rw_spec map) specs, x)
  | Algebra.Md m -> Algebra.Md { m with blocks = List.map (rw_block map) m.blocks }
  | Algebra.Md_completed m ->
    Algebra.Md_completed
      {
        m with
        blocks = List.map (rw_block map) m.blocks;
        completion =
          {
            m.completion with
            Gmdj.kill_when = List.map rw m.completion.Gmdj.kill_when;
            require_fired = List.map rw m.completion.Gmdj.require_fired;
          };
      }
  | Algebra.Table _ | Algebra.Rename _ | Algebra.Project_rel _
  | Algebra.Add_rownum _ | Algebra.Product _ | Algebra.Union_all _
  | Algebra.Diff_all _ | Algebra.Distinct _ ->
    alg

(* Replace the (physically identified) member GMDJ with the combined
   one and rename the member's aggregate references everywhere above
   it.  [rw_node] leaves children untouched, so physical identity of
   [target] survives until the substitution reaches it. *)
let rec rewrite_above ~target ~combined map alg =
  if alg == target then combined
  else Optimize.map_children (rewrite_above ~target ~combined map) (rw_node map alg)

type cand = {
  index : int;
  shareable : Algebra.t;
  solo_plan : Algebra.t;
  md : Algebra.t;
  base : Algebra.t;
  detail : Algebra.t;
  blocks : Gmdj.block list;
}

let agg_names blocks =
  List.concat_map (fun b -> List.map (fun s -> s.Aggregate.name) b.Gmdj.aggs) blocks

let candidate (index, shareable, solo_plan) =
  match find_md shareable with
  | Some (Algebra.Md { base; detail; blocks } as md)
    when Algebra.detail_alias detail <> None && names_unique (agg_names blocks) ->
    Ok { index; shareable; solo_plan; md; base; detail; blocks }
  | _ -> Error (index, solo_plan)

(* Bucket candidates by (base, detail occurrence): exactly the Prop. 4.1
   applicability test, with alias differences absorbed by requalification. *)
let bucket cands =
  let rec insert groups c =
    match groups with
    | [] -> [ [ c ] ]
    | (h :: _ as g) :: rest ->
      if
        Algebra.equal h.base c.base
        && Algebra.same_occurrence_modulo_alias h.detail c.detail
      then (g @ [ c ]) :: rest
      else g :: insert rest c
    | [] :: rest -> insert rest c
  in
  List.fold_left insert [] cands

(* Build one shared group from a bucket.  Members whose rewritten plan
   fails the schema guard fall back to solo; the group is rebuilt
   without them (strictly fewer members each round, so this
   terminates). *)
let rec build_group catalog cands =
  match cands with
  | [] | [ _ ] -> (None, List.map (fun c -> (c.index, c.solo_plan)) cands)
  | first :: _ ->
    let target_alias =
      match Algebra.detail_alias first.detail with
      | Some a -> a
      | None -> assert false (* candidates guarantee an alias *)
    in
    let prepared =
      List.map
        (fun c ->
          let from_alias =
            match Algebra.detail_alias c.detail with
            | Some a -> a
            | None -> assert false
          in
          let requalified =
            Optimize.requalify_blocks ~from_alias ~to_alias:target_alias c.blocks
          in
          let map = Hashtbl.create 8 in
          let renamed =
            List.map
              (fun b ->
                {
                  b with
                  Gmdj.aggs =
                    List.map
                      (fun s ->
                        let name' = Printf.sprintf "q%d~%s" c.index s.Aggregate.name in
                        Hashtbl.replace map s.Aggregate.name name';
                        { s with Aggregate.name = name' })
                      b.Gmdj.aggs;
                })
              requalified
          in
          (c, map, renamed))
        cands
    in
    let combined =
      Algebra.Md
        {
          base = first.base;
          detail = first.detail;
          blocks = List.concat_map (fun (_, _, bs) -> bs) prepared;
        }
    in
    let checked =
      List.map
        (fun (c, map, _) ->
          let plan = rewrite_above ~target:c.md ~combined map c.shareable in
          (* The merge claims plan ≡ solo_plan: the exact schema must be
             preserved and the static verifier must agree (same inferred
             schema, nullability at most narrowed, no fresh type
             errors) before the member may join the group. *)
          let ok =
            (try Schema.equal (Eval.schema catalog plan) (Eval.schema catalog c.solo_plan)
             with _ -> false)
            && not
                 (Diag.has_errors
                    (Subql_analysis.Verify.check_rewrite
                       (Subql_analysis.Typing.env_of_catalog catalog)
                       ~label:"mqo.share" ~before:c.solo_plan ~after:plan))
          in
          (c, plan, ok))
        prepared
    in
    let good, bad = List.partition (fun (_, _, ok) -> ok) checked in
    if bad = [] then
      ( Some
          {
            combined;
            members = List.map (fun (c, plan, _) -> { index = c.index; plan }) good;
          },
        [] )
    else
      let g, solos = build_group catalog (List.map (fun (c, _, _) -> c) good) in
      (g, List.map (fun (c, _, _) -> (c.index, c.solo_plan)) bad @ solos)

let plan catalog triples =
  let cands, solo =
    List.partition_map
      (fun t -> match candidate t with Ok c -> Left c | Error s -> Right s)
      triples
  in
  List.fold_left
    (fun acc bucket_cands ->
      let g, solos = build_group catalog bucket_cands in
      {
        groups = (match g with Some g -> g :: acc.groups | None -> acc.groups);
        solo = solos @ acc.solo;
      })
    { groups = []; solo } (bucket cands)

let run ?(config = Eval.default_config) ?gmdj_stats
    ?(registry = Subql_obs.Metrics.default) catalog batch =
  let m_shared = Subql_obs.Metrics.counter registry "mqo.shared_scans" in
  let m_naive = Subql_obs.Metrics.counter registry "mqo.naive_scans" in
  let memoized =
    List.map
      (fun g ->
        let memo =
          lazy
            (Subql_obs.Metrics.incr m_shared;
             Subql_obs.Metrics.incr ~by:(List.length g.members) m_naive;
             Eval.eval ~config ?gmdj_stats catalog g.combined)
        in
        (g, memo))
      batch.groups
  in
  let override node =
    List.find_map
      (fun (g, memo) -> if node == g.combined then Some (Lazy.force memo) else None)
      memoized
  in
  let grouped =
    List.concat_map
      (fun (g, _) ->
        List.map
          (fun (m : member) ->
            (m.index, Eval.eval_with_overrides ~config ?gmdj_stats ~override catalog m.plan))
          g.members)
      memoized
  in
  let solo =
    List.map (fun (i, p) -> (i, Eval.eval ~config ?gmdj_stats catalog p)) batch.solo
  in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) (grouped @ solo)
