(** Plan canonicalization and fingerprinting.

    A production front-end re-submits the same subquery templates with
    cosmetic variations: different relation aliases, WHERE conjuncts in a
    different order, equalities written both ways round.  The multi-query
    layer keys its result cache and its sharing groups on a {e canonical}
    form of the algebra plan, so that such variants collide:

    - {b alpha-renaming}: every alias introduced by a [Rename] node is
      replaced by a positional name ([~r1], [~r2], ... in first-occurrence
      pre-order), and every qualified reference follows;
    - {b commutative normalization}: [And]/[Or] operand lists are
      flattened and sorted structurally, comparisons are oriented by the
      structural order of their operands (using the mirror operator), and
      adjacent selections are merged;
    - {b canonical block order}: the blocks of a GMDJ are sorted
      structurally, as are [Project_rel] alias lists.

    Two plans with the same fingerprint are treated as equivalent by the
    cache; the canonicalization is conservative (it only applies
    identities of the algebra), so false merges require a Digest
    collision.  Distinct plans may still fingerprint apart even when some
    deeper theory would prove them equal — the fingerprint is a cache
    key, not a decision procedure. *)

open Subql

val canonicalize : Algebra.t -> Algebra.t
(** The canonical representative of the plan's equivalence class.  Used
    for fingerprinting only — the canonical plan is {e not} meant to be
    executed (block reordering changes the position of aggregate
    columns). *)

val fingerprint : Algebra.t -> string
(** Hex digest of the canonical form (stable within a process run and
    across runs). *)

val of_query : Subql_nested.Nested_ast.query -> string
(** Fingerprint of the query's [SubqueryToGMDJ] translation — the common
    key under which all engines' results for this query are cached. *)
