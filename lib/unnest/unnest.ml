open Subql_relational
open Subql_gmdj
module N = Subql_nested.Nested_ast
module Normalize = Subql_nested.Normalize
module Scope = Subql_nested.Scope
module Algebra = Subql.Algebra
module Transform = Subql.Transform

exception Not_applicable of string

let not_applicable fmt = Format.kasprintf (fun s -> raise (Not_applicable s)) fmt

type gensym = { mutable counter : int }

let fresh g prefix =
  g.counter <- g.counter + 1;
  Printf.sprintf "%s#%d" prefix g.counter

(* ------------------------------------------------------------------ *)
(* Shared building block: aggregate a correlated range via a           *)
(* row-numbered left outer join and group-by, then join back.          *)
(* ------------------------------------------------------------------ *)

(* Returns the plan extending [acc] (which must contain the row-number
   column [rid] identifying base rows) with one column per spec, each
   aggregated over the detail rows matching [theta].  [Count_star] is
   rewritten to a count over a fresh marker column on the detail side so
   that the outer join's NULL padding is not counted (the COUNT bug). *)
let attach_aggregates g ~acc ~rid ~detail ~theta specs =
  let mark = fresh g "mark" in
  let rid2 = fresh g "rid" in
  let detail_marked = Algebra.Add_rownum (mark, detail) in
  let joined = Algebra.Join { kind = Algebra.Left_outer; cond = theta; left = acc; right = detail_marked } in
  let adjusted =
    List.map
      (fun spec ->
        match spec.Aggregate.func with
        | Aggregate.Count_star -> { spec with Aggregate.func = Aggregate.Count (Expr.attr mark) }
        | Aggregate.Count _ | Aggregate.Sum _ | Aggregate.Min _ | Aggregate.Max _
        | Aggregate.Avg _ | Aggregate.First _ ->
          spec)
      specs
  in
  let grouped = Algebra.Group_by { keys = [ (None, rid) ]; aggs = adjusted; input = joined } in
  let renamed =
    Algebra.Project
      ( (Expr.attr rid, rid2)
        :: List.map (fun spec -> (Expr.attr spec.Aggregate.name, spec.Aggregate.name)) specs,
        grouped )
  in
  Algebra.Join
    {
      kind = Algebra.Inner;
      cond = Expr.eq (Expr.attr rid) (Expr.attr rid2);
      left = acc;
      right = renamed;
    }

(* ------------------------------------------------------------------ *)
(* Classical conjunctive plans                                          *)
(* ------------------------------------------------------------------ *)

let rec conjunction_items = function
  | N.Pand (a, b) -> conjunction_items a @ conjunction_items b
  | N.Ptrue -> []
  | p -> [ p ]

let atoms_only pred =
  let items = conjunction_items pred in
  let exprs =
    List.map
      (function
        | N.Atom e -> e
        | N.Ptrue -> Expr.bool true
        | N.Pand _ | N.Por _ | N.Pnot _ | N.Sub _ ->
          not_applicable "classical unnesting requires a flat conjunctive inner WHERE")
      items
  in
  Expr.conjoin exprs

let via_semijoins catalog query =
  ignore catalog;
  let query = Normalize.query query in
  let g = { counter = 0 } in
  let base_alg =
    if query.N.q_alias = "" then Transform.base_to_algebra query.N.q_base
    else Algebra.Rename (query.N.q_alias, Transform.base_to_algebra query.N.q_base)
  in
  (* One shared row number keys every aggregate attachment. *)
  let rid = fresh g "rid" in
  let acc = ref (Algebra.Add_rownum (rid, base_alg)) in
  let items = conjunction_items query.N.q_where in
  let handle_item = function
    | N.Atom e -> acc := Algebra.Select (e, !acc)
    | N.Ptrue -> ()
    | N.Por _ | N.Pnot _ | N.Pand _ ->
      not_applicable "classical unnesting requires a conjunctive WHERE"
    | N.Sub s ->
      (match Scope.non_neighboring ~enclosing:(N.scope_aliases query) s with
      | [] -> ()
      | alias :: _ ->
        not_applicable "classical unnesting cannot place non-neighboring reference to %s" alias);
      let theta = atoms_only s.N.s_where in
      let src = Algebra.Rename (s.N.s_alias, Transform.base_to_algebra s.N.source) in
      let local col = Expr.attr ~rel:s.N.s_alias col in
      (match s.N.kind with
      | N.Exists ->
        acc := Algebra.Join { kind = Algebra.Semi; cond = theta; left = !acc; right = src }
      | N.Not_exists ->
        acc := Algebra.Join { kind = Algebra.Anti; cond = theta; left = !acc; right = src }
      | N.Quant (lhs, op, N.Qsome, col) ->
        let cond = Expr.and_ theta (Expr.cmp op lhs (local col)) in
        acc := Algebra.Join { kind = Algebra.Semi; cond; left = !acc; right = src }
      | N.Quant (lhs, op, N.Qall, col) ->
        (* Keep a row iff no range row fails the comparison: anti-join on
           θ ∧ ¬(lhs φ col IS TRUE). *)
        let cond =
          Expr.and_ theta (Expr.not_ (Expr.Is_true (Expr.cmp op lhs (local col))))
        in
        acc := Algebra.Join { kind = Algebra.Anti; cond; left = !acc; right = src }
      | N.Cmp_scalar (lhs, op, col) ->
        let cnt = fresh g "cnt" in
        let cond = Expr.and_ theta (Expr.cmp op lhs (local col)) in
        acc :=
          attach_aggregates g ~acc:!acc ~rid ~detail:src ~theta:cond
            [ Aggregate.count_star cnt ];
        acc := Algebra.Select (Expr.eq (Expr.attr cnt) (Expr.int 1), !acc)
      | N.Cmp_agg (lhs, op, func) ->
        let a = fresh g "agg" in
        acc :=
          attach_aggregates g ~acc:!acc ~rid ~detail:src ~theta
            [ { Aggregate.func; name = a } ];
        acc := Algebra.Select (Expr.cmp op lhs (Expr.attr a), !acc)
      | N.In_ _ | N.Not_in _ -> assert false (* removed by normalization *))
  in
  List.iter handle_item items;
  match query.N.q_select with
  | N.Select_all -> Algebra.Project_rel (N.scope_aliases query, !acc)
  | N.Select_cols cols -> Algebra.Project_cols { cols; distinct = false; input = !acc }
  | N.Select_exprs exprs -> Algebra.Project (exprs, !acc)

(* ------------------------------------------------------------------ *)
(* General expansion: GMDJ → outer joins + grouping                     *)
(* ------------------------------------------------------------------ *)

let attr_ref (a : Schema.attr) =
  ((if a.Schema.rel = "" then None else Some a.Schema.rel), a.Schema.name)

let md_to_joins ~lookup alg =
  let g = { counter = 0 } in
  let rec go alg =
    match alg with
    | Algebra.Md_completed _ ->
      invalid_arg "Unnest.md_to_joins: expand before completion optimization"
    | Algebra.Md { base; detail; blocks } ->
      let base = go base and detail = go detail in
      let base_schema = Algebra.schema_of ~lookup base in
      let out_schema =
        Gmdj.output_schema ~base:base_schema
          ~detail:(Algebra.schema_of ~lookup detail)
          blocks
      in
      let rid = fresh g "rid" in
      let b0 = Algebra.Add_rownum (rid, base) in
      let acc =
        List.fold_left
          (fun acc block ->
            attach_aggregates g ~acc ~rid ~detail ~theta:block.Gmdj.theta block.Gmdj.aggs)
          b0 blocks
      in
      (* Restore the exact MD output schema (base columns then aggregate
         columns, in order). *)
      let cols = List.map attr_ref (Schema.to_list out_schema) in
      Algebra.Project_cols { cols; distinct = false; input = acc }
    | Algebra.Table _ | Algebra.Rename _ | Algebra.Select _ | Algebra.Project _
    | Algebra.Project_cols _ | Algebra.Project_rel _ | Algebra.Add_rownum _
    | Algebra.Product _ | Algebra.Join _ | Algebra.Group_by _ | Algebra.Aggregate_all _
    | Algebra.Union_all _ | Algebra.Diff_all _ | Algebra.Distinct _ ->
      Subql.Optimize.map_children go alg
  in
  go alg

let via_joins catalog query =
  let lookup name = Relation.schema (Catalog.find catalog name) in
  md_to_joins ~lookup (Transform.to_algebra query)

let best catalog query =
  match via_semijoins catalog query with
  | alg -> alg
  | exception Not_applicable _ -> via_joins catalog query

(* Register the unnesting plans with the cost-based planner (the planner
   lives below this library in the dependency order). *)
let () =
  Subql.Planner.set_unnest_providers
    ~semijoin:(fun catalog query ->
      match via_semijoins catalog query with
      | alg -> Some alg
      | exception Not_applicable _ -> None)
    ~outerjoin:(fun catalog query ->
      match via_joins catalog query with
      | alg -> Some alg
      | exception Transform.Unsupported _ -> None)
