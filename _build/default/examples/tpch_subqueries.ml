(* TPC-style subqueries through the SQL front-end.

   The paper's experiments ran on databases derived from the TPC(R)
   dbgen program; this example runs classic decision-support subquery
   patterns over the offline dbgen substitute, comparing all four
   engines on each query.

   Run with: dune exec examples/tpch_subqueries.exe *)

open Subql_relational
open Subql_workload

let catalog = Tpc.generate { Tpc.default_config with Tpc.customers = 400; orders = 4_000; lineitems = 16_000 }

let queries =
  [
    ( "customers with an urgent order (EXISTS)",
      "SELECT c.c_custkey FROM Customer c WHERE EXISTS (SELECT * FROM Orders o WHERE \
       o.o_custkey = c.c_custkey AND o.o_orderpriority = '1-URGENT')" );
    ( "customers who never ordered (NOT EXISTS)",
      "SELECT c.c_custkey FROM Customer c WHERE NOT EXISTS (SELECT * FROM Orders o WHERE \
       o.o_custkey = c.c_custkey)" );
    ( "orders above their customer's balance (scalar-style aggregate)",
      "SELECT o.o_orderkey FROM Orders o WHERE o.o_totalprice > (SELECT MAX(c.c_acctbal) \
       FROM Customer c WHERE c.c_custkey = o.o_custkey)" );
    ( "orders larger than every early shipment (ALL)",
      "SELECT o.o_orderkey FROM Orders o WHERE o.o_totalprice > ALL (SELECT \
       l.l_extendedprice FROM Lineitem l WHERE l.l_orderkey = o.o_orderkey AND \
       l.l_shipdate < 100)" );
    ( "customers in an order's nation set (IN)",
      "SELECT c.c_custkey FROM Customer c WHERE c.c_nationkey IN (SELECT cc.c_nationkey \
       FROM Customer cc WHERE cc.c_acctbal > 9000)" );
    ( "big spenders (SUM comparison)",
      "SELECT c.c_custkey FROM Customer c WHERE 100000.0 < (SELECT SUM(o.o_totalprice) \
       FROM Orders o WHERE o.o_custkey = c.c_custkey)" );
  ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  Format.printf "TPC-style catalog: %d customers, %d orders, %d lineitems@.@."
    (Relation.cardinality (Catalog.find catalog "Customer"))
    (Relation.cardinality (Catalog.find catalog "Orders"))
    (Relation.cardinality (Catalog.find catalog "Lineitem"));
  List.iter
    (fun (title, sql) ->
      Format.printf "--- %s ---@.%s@." title sql;
      match Subql_sql.Parser.parse sql with
      | exception Subql_sql.Parser.Parse_error _ ->
        print_endline (Subql_sql.Parser.parse_exn_to_string sql)
      | stmt ->
        let query = stmt.Subql_sql.Parser.query in
        let engines =
          [
            ("native", fun () -> Subql_nested.Naive_eval.eval catalog query);
            ( "unnest",
              fun () ->
                Subql.Eval.eval catalog (Subql_unnest.Unnest.best catalog query) );
            ("gmdj", fun () -> Subql.Eval.eval catalog (Subql.Transform.to_algebra query));
            ( "gmdj-opt",
              fun () ->
                Subql.Eval.eval catalog
                  (Subql.Optimize.optimize (Subql.Transform.to_algebra query)) );
          ]
        in
        let results = List.map (fun (name, f) -> (name, time f)) engines in
        let _, (_, reference) = List.hd results in
        List.iter
          (fun (name, (seconds, result)) ->
            let ok = Relation.equal_as_multiset reference result in
            Format.printf "  %-10s %6.3fs  %5d rows%s@." name seconds
              (Relation.cardinality result)
              (if ok then "" else "  <-- DISAGREES"))
          results;
        Format.printf "@.")
    queries
