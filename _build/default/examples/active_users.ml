(* Active users: Examples 3.3 and 3.4 of the paper.

   "Which user accounts have been the source of traffic in every hour?"
   — universal quantification phrased as a double existential negation.
   The inner NOT EXISTS references the User table across the Hours
   scope (a non-neighboring correlation predicate), so the translation
   pushes a distinct projection of User down into the inner GMDJ's
   base-values expression (Theorems 3.3/3.4) — the only case where the
   algorithm introduces an extra join.

   Run with: dune exec examples/active_users.exe *)

open Subql_relational
open Subql_nested
open Subql_workload
module N = Nested_ast

let attr = Expr.attr

let catalog =
  Netflow.generate
    {
      Netflow.default_config with
      Netflow.n_flows = 40_000;
      n_hours = 12;
      n_users = 50;
      n_source_ips = 30;
      n_dest_ips = 30;
      user_ip_match_fraction = 0.9;
    }

(* σ[∄ σ[θ_H ∧ ∄ σ[θ_F](Flow)](Hours)](User): no hour without traffic
   from the user's address. *)
let query =
  let theta_f =
    Expr.conjoin
      [
        Expr.ge (attr ~rel:"f" "StartTime") (attr ~rel:"h" "StartInterval");
        Expr.lt (attr ~rel:"f" "StartTime") (attr ~rel:"h" "EndInterval");
        Expr.eq (attr ~rel:"f" "SourceIP") (attr ~rel:"u" "IPAddress");
      ]
  in
  N.query
    ~select:(N.Select_cols [ (Some "u", "UserName"); (Some "u", "IPAddress") ])
    ~base:(N.table "User") ~alias:"u"
    (N.not_exists
       ~where:(N.not_exists ~where:(N.atom theta_f) (N.table "Flow") "f")
       (N.table "Hours") "h")

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  Format.printf "Relational division via double NOT EXISTS (Example 3.3):@.@.%a@.@."
    N.pp_query query;
  let plan = Subql.Transform.to_algebra query in
  Format.printf "Translated plan (note the pushed-down distinct User columns@.";
  Format.printf "in the inner GMDJ's base — Example 3.4):@.@.@[%a@]@.@." Subql.Algebra.pp plan;
  let t_naive, naive = time (fun () -> Naive_eval.eval catalog query) in
  let t_gmdj, gmdj = time (fun () -> Subql.Eval.eval catalog plan) in
  let t_opt, opt =
    time (fun () -> Subql.Eval.eval catalog (Subql.Optimize.optimize plan))
  in
  assert (Relation.equal_as_multiset naive gmdj);
  assert (Relation.equal_as_multiset naive opt);
  Format.printf "Users active in every hour:@.%a@." Relation.pp gmdj;
  Format.printf "naive tuple iteration: %.3fs, GMDJ: %.3fs, optimized GMDJ: %.3fs@." t_naive
    t_gmdj t_opt
